#!/usr/bin/env python3
"""Validate a tcpni --metrics JSON file against the tcpni-metrics-1 schema.

Usage: validate_metrics.py METRICS.json [METRICS.csv]

Checks (stdlib only, no third-party dependencies):
  - top level: schema tag, sampleInterval, tasks list
  - each task: label, sims, groups, samples
  - each group: counters {name: int}, gauges {name: {last, peak}},
    histograms {name: {count, min, max, mean, p50, p90, p99, p999}}
  - histogram invariants: min <= p50 <= p90 <= p99 <= p999 <= max,
    min <= mean <= max, count > 0
  - gauge invariant: last <= peak
  - sample rows: [sim, tick, series, value] with sim < sims, tick a
    multiple of sampleInterval, series naming an emitted group series,
    counter series monotone non-decreasing per (sim, series)
  - optional CSV: header line and row-count consistency with the JSON

Exit status 0 on success; prints the first failure and exits 1 otherwise.
"""

import json
import sys

HIST_KEYS = {"count", "min", "max", "mean", "p50", "p90", "p99", "p999"}


def fail(msg):
    print(f"validate_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def validate_histogram(where, h):
    expect(set(h.keys()) == HIST_KEYS,
           f"{where}: histogram keys {sorted(h.keys())} != "
           f"{sorted(HIST_KEYS)}")
    for k in HIST_KEYS - {"mean"}:
        expect(is_uint(h[k]), f"{where}.{k}: not a non-negative integer")
    expect(isinstance(h["mean"], (int, float)), f"{where}.mean: not a number")
    expect(h["count"] > 0, f"{where}: empty histogram was emitted")
    expect(h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["p999"]
           <= h["max"],
           f"{where}: percentiles not monotone: {h}")
    expect(h["min"] <= h["mean"] <= h["max"],
           f"{where}: mean {h['mean']} outside [min, max]")


def validate_group(where, g):
    expect(set(g.keys()) == {"name", "counters", "gauges", "histograms"},
           f"{where}: unexpected group keys {sorted(g.keys())}")
    expect(isinstance(g["name"], str) and g["name"],
           f"{where}: missing group name")
    series = set()
    for name, v in g["counters"].items():
        expect(is_uint(v), f"{where}.counters.{name}: not an integer")
        series.add(f"{g['name']}.{name}")
    for name, v in g["gauges"].items():
        expect(set(v.keys()) == {"last", "peak"},
               f"{where}.gauges.{name}: keys {sorted(v.keys())}")
        expect(is_uint(v["last"]) and is_uint(v["peak"]),
               f"{where}.gauges.{name}: not integers")
        expect(v["last"] <= v["peak"],
               f"{where}.gauges.{name}: last {v['last']} > peak "
               f"{v['peak']}")
        series.add(f"{g['name']}.{name}")
    for name, v in g["histograms"].items():
        validate_histogram(f"{where}.histograms.{name}", v)
    return series


def validate_task(where, t, interval):
    expect(set(t.keys()) == {"label", "sims", "groups", "samples"},
           f"{where}: unexpected task keys {sorted(t.keys())}")
    expect(isinstance(t["label"], str) and t["label"],
           f"{where}: missing label")
    expect(is_uint(t["sims"]), f"{where}: bad sims count")
    # A task that ran no event-driven simulation (e.g. a TAM abstract-
    # machine interpretation) legitimately observed nothing.
    if t["sims"] == 0:
        expect(not t["groups"] and not t["samples"]["rows"],
               f"{where}: groups/rows without a simulation")
    series = set()
    counter_series = set()
    for gi, g in enumerate(t["groups"]):
        series |= validate_group(f"{where}.groups[{gi}]", g)
        for name in g["counters"]:
            counter_series.add(f"{g['name']}.{name}")

    samples = t["samples"]
    expect(set(samples.keys()) == {"dropped", "rows"},
           f"{where}.samples: keys {sorted(samples.keys())}")
    expect(is_uint(samples["dropped"]), f"{where}.samples.dropped")
    last_counter = {}
    n_rows = 0
    for row in samples["rows"]:
        expect(isinstance(row, list) and len(row) == 4,
               f"{where}.samples.rows[{n_rows}]: not [sim,tick,"
               f"series,value]")
        sim, tick, name, value = row
        expect(is_uint(sim) and sim < t["sims"],
               f"{where}.samples.rows[{n_rows}]: sim {sim} out of "
               f"range")
        expect(is_uint(tick) and is_uint(value),
               f"{where}.samples.rows[{n_rows}]: non-integer "
               f"tick/value")
        expect(interval == 0 or tick % interval == 0,
               f"{where}.samples.rows[{n_rows}]: tick {tick} not a "
               f"multiple of the sample interval {interval}")
        expect(name in series,
               f"{where}.samples.rows[{n_rows}]: unknown series "
               f"'{name}'")
        if name in counter_series:
            key = (sim, name)
            expect(value >= last_counter.get(key, 0),
                   f"{where}.samples.rows[{n_rows}]: counter "
                   f"'{name}' went backwards")
            last_counter[key] = value
        n_rows += 1
    return n_rows


def validate_json(path):
    with open(path) as f:
        doc = json.load(f)
    expect(set(doc.keys()) == {"schema", "sampleInterval", "tasks"},
           f"top level keys {sorted(doc.keys())}")
    expect(doc["schema"] == "tcpni-metrics-1",
           f"schema tag '{doc.get('schema')}' != 'tcpni-metrics-1'")
    expect(is_uint(doc["sampleInterval"]), "sampleInterval")
    interval = doc["sampleInterval"]
    expect(isinstance(doc["tasks"], list) and doc["tasks"],
           "tasks missing or empty")
    labels = [t.get("label") for t in doc["tasks"]]
    expect(len(labels) == len(set(labels)),
           f"duplicate task labels: {labels}")
    total_rows = 0
    for ti, t in enumerate(doc["tasks"]):
        total_rows += validate_task(f"tasks[{ti}]", t, interval)
    return len(doc["tasks"]), total_rows


def validate_csv(path, json_rows):
    with open(path) as f:
        lines = f.read().splitlines()
    expect(lines, "CSV is empty")
    expect(lines[0] == "label,sim,tick,metric,value",
           f"CSV header '{lines[0]}'")
    expect(len(lines) - 1 == json_rows,
           f"CSV has {len(lines) - 1} rows, JSON has {json_rows}")
    for i, line in enumerate(lines[1:], start=2):
        cols = line.split(",")
        expect(len(cols) == 5, f"CSV line {i}: {len(cols)} columns")
        expect(cols[1].isdigit() and cols[2].isdigit()
               and cols[4].isdigit(),
               f"CSV line {i}: non-numeric sim/tick/value")


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    tasks, rows = validate_json(sys.argv[1])
    if len(sys.argv) == 3:
        validate_csv(sys.argv[2], rows)
    print(f"validate_metrics: OK: {sys.argv[1]}: {tasks} tasks, "
          f"{rows} sample rows")
    return 0


if __name__ == "__main__":
    sys.exit(main())
