/**
 * @file
 * tcpni_lint: statically verify the shipped handler and sender kernels
 * against the NI register contract, under every interface model, and
 * run the whole-system protocol analyzer (the `proto` check group)
 * over each model's kernel corpus.
 *
 * Exit status is severity-aware: 0 when every job is clean, 1 when any
 * job has errors (always) or warnings (only under --Werror), 2 on
 * usage errors.  Hazard notes are informational and never affect the
 * exit status.
 *
 *   tcpni_lint [--Werror] [--model NAME] [--notes] [--list] [-v]
 *              [--format=text|json|sarif] [--json FILE]
 *              [-Wno-CHECK]... [--only CHECK]...
 *
 *   --Werror        treat warnings as failures
 *   --model NAME    lint a single registered model (registry name or
 *                   short name, e.g. "reg-opt")
 *   --notes         print load-use hazard notes (hidden by default)
 *   --list          list the jobs that would run, then exit
 *   -v              print a line per job even when clean
 *   --format=FMT    stdout format: text (default), json, or sarif
 *   --json FILE     additionally write the json report to FILE
 *   -Wno-CHECK      suppress a check ("send") or group ("proto"
 *                   suppresses every proto-* check)
 *   --only CHECK    keep only matching checks (same prefix rules);
 *                   repeatable, e.g. `--only proto`
 */

#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "ni/model_registry.hh"
#include "ni/placement_policy.hh"
#include "verify/protocol.hh"
#include "verify/verifier.hh"

using namespace tcpni;

namespace
{

/** One finished lint job: a verified kernel or a per-model protocol
 *  analysis group. */
struct JobResult
{
    std::string name;
    verify::Report rep;
    bool assembled = true;

    bool
    failed(bool werror) const
    {
        return !assembled || !rep.clean(werror);
    }
};

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c; break;
        }
    }
    return os.str();
}

/** Job names can carry spaces/parens ("send-Send (0 words)"); keep
 *  SARIF artifact URIs plain. */
std::string
uriSafe(const std::string &s)
{
    std::string out;
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                  c == '/' || c == '.';
        out += ok ? c : '_';
    }
    return out;
}

std::string
sarifLevel(verify::Severity s)
{
    switch (s) {
      case verify::Severity::error: return "error";
      case verify::Severity::warning: return "warning";
      case verify::Severity::note: return "note";
    }
    return "none";
}

/** Stable machine-readable report (pinned by a golden test). */
void
writeJson(std::ostream &os, const std::vector<JobResult> &results,
          bool werror)
{
    os << "{\n  \"schema\": \"tcpni-lint-1\",\n";
    os << "  \"werror\": " << (werror ? "true" : "false") << ",\n";
    os << "  \"jobs\": [\n";
    unsigned terr = 0, twarn = 0, tnote = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const JobResult &r = results[i];
        unsigned err = r.rep.count(verify::Severity::error);
        unsigned warn = r.rep.count(verify::Severity::warning);
        unsigned note = r.rep.count(verify::Severity::note);
        terr += err;
        twarn += warn;
        tnote += note;
        os << "    {\"name\": \"" << jsonEscape(r.name) << "\", "
           << "\"assembled\": " << (r.assembled ? "true" : "false")
           << ", \"errors\": " << err << ", \"warnings\": " << warn
           << ", \"notes\": " << note << ", \"diags\": [";
        for (size_t d = 0; d < r.rep.diags.size(); ++d) {
            const verify::Diag &dg = r.rep.diags[d];
            os << (d ? ", " : "") << "{\"severity\": \""
               << verify::severityName(dg.severity) << "\", \"check\": \""
               << jsonEscape(dg.check) << "\", \"addr\": " << dg.addr
               << ", \"line\": " << dg.line << ", \"where\": \""
               << jsonEscape(dg.where) << "\", \"message\": \""
               << jsonEscape(dg.message) << "\"}";
        }
        os << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"totals\": {\"errors\": " << terr << ", \"warnings\": "
       << twarn << ", \"notes\": " << tnote << "}\n";
    os << "}\n";
}

/** SARIF 2.1.0 for GitHub code scanning. */
void
writeSarif(std::ostream &os, const std::vector<JobResult> &results)
{
    std::set<std::string> rules;
    for (const JobResult &r : results) {
        for (const verify::Diag &d : r.rep.diags)
            rules.insert(d.check);
    }

    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\"name\": \"tcpni_lint\", "
          "\"rules\": [";
    bool first = true;
    for (const std::string &rule : rules) {
        os << (first ? "" : ", ") << "{\"id\": \"" << jsonEscape(rule)
           << "\"}";
        first = false;
    }
    os << "]}},\n    \"results\": [\n";
    first = true;
    for (const JobResult &r : results) {
        for (const verify::Diag &d : r.rep.diags) {
            if (d.severity == verify::Severity::note)
                continue;   // stall estimates are not findings
            os << (first ? "" : ",\n");
            first = false;
            std::string text = r.name + ": " + d.message;
            if (!d.where.empty())
                text += " [" + d.where + "]";
            os << "      {\"ruleId\": \"" << jsonEscape(d.check)
               << "\", \"level\": \"" << sarifLevel(d.severity)
               << "\", \"message\": {\"text\": \"" << jsonEscape(text)
               << "\"}, \"locations\": [{\"physicalLocation\": "
                  "{\"artifactLocation\": {\"uri\": \"kernels/"
               << uriSafe(r.name) << ".s\"}, \"region\": "
                  "{\"startLine\": "
               << (d.line ? d.line : 1) << "}}}]}";
        }
    }
    os << "\n    ]\n  }]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool werror = false;
    bool notes = false;
    bool list = false;
    bool verbose = false;
    std::string only_model;
    std::string format = "text";
    std::string json_path;
    std::vector<std::string> suppressed;
    std::vector<std::string> selected;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--Werror") {
            werror = true;
        } else if (arg == "--notes") {
            notes = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "-v" || arg == "--verbose") {
            verbose = true;
        } else if (arg == "--model" && i + 1 < argc) {
            only_model = argv[++i];
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "json" &&
                format != "sarif") {
                std::cerr << "tcpni_lint: unknown format '" << format
                          << "'\n";
                return 2;
            }
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg.rfind("-Wno-", 0) == 0 && arg.size() > 5) {
            suppressed.push_back(arg.substr(5));
        } else if (arg == "--only" && i + 1 < argc) {
            selected.push_back(argv[++i]);
        } else if (arg == "-h" || arg == "--help") {
            std::cout
                << "usage: tcpni_lint [--Werror] [--model NAME] "
                   "[--notes] [--list] [-v]\n"
                   "                  [--format=text|json|sarif] "
                   "[--json FILE] [-Wno-CHECK]... [--only CHECK]...\n";
            return 0;
        } else {
            std::cerr << "tcpni_lint: unknown option '" << arg << "'\n";
            return 2;
        }
    }

    bool model_found = false;
    std::vector<JobResult> results;

    for (const ni::ModelInfo &info : ni::registeredModels()) {
        if (!only_model.empty() && info.shortName != only_model &&
            info.name != only_model)
            continue;
        model_found = true;

        // Verify each kernel of the model's corpus, exporting the
        // per-root summaries the protocol analyzer consumes.
        std::vector<verify::ProtoKernel> senders;
        std::vector<std::pair<std::string, verify::ProtoKernel>>
            handler_kernels;    //!< job name -> summary

        for (const msg::CorpusJob &cj : msg::kernelCorpus(info.model)) {
            JobResult jr;
            jr.name = info.shortName + "/" + cj.name;
            if (list) {
                if (cj.handlers)
                    handler_kernels.push_back({cj.name, {}});
                results.push_back(std::move(jr));
                continue;
            }
            isa::AsmResult res =
                isa::assembleAll(cj.source, msg::kernelSymbols());
            if (!res.ok()) {
                jr.assembled = false;
                for (const isa::AsmDiag &d : res.errors) {
                    jr.rep.add(verify::Severity::error, "assemble", 0,
                               d.line, "", d.message);
                }
                results.push_back(std::move(jr));
                continue;
            }
            verify::ProtoKernel pk;
            pk.name = cj.name;
            pk.handlers = cj.handlers;
            verify::VerifyOptions vo;
            vo.summary = &pk.summary;
            jr.rep = cj.handlers
                         ? verify::verifyHandlers(res.program,
                                                  info.model, vo)
                         : verify::verifySender(res.program, info.model,
                                                vo);
            if (cj.handlers)
                handler_kernels.push_back({cj.name, std::move(pk)});
            else
                senders.push_back(std::move(pk));
            results.push_back(std::move(jr));
        }

        // One protocol analysis per handler-kernel variant: the
        // variant plus every sender forms the corpus actually
        // deployed together.
        for (const auto &[hname, hk] : handler_kernels) {
            std::string suffix = hname.size() > 8 /* "handlers" */
                                     ? hname.substr(8)
                                     : "";
            JobResult jr;
            jr.name = info.shortName + "/proto" + suffix;
            if (!list) {
                std::vector<verify::ProtoKernel> corpus;
                corpus.push_back(hk);
                corpus.insert(corpus.end(), senders.begin(),
                              senders.end());
                jr.rep = verify::analyzeProtocol(info.model, corpus);
            }
            results.push_back(std::move(jr));
        }
    }

    if (!model_found) {
        std::cerr << "tcpni_lint: no model named '" << only_model
                  << "'\n";
        return 2;
    }

    if (list) {
        for (const JobResult &r : results)
            std::cout << r.name << "\n";
        return 0;
    }

    // Check filters.  Suppression applies after verification, so a
    // -Wno-* run still verifies everything; it only mutes reporting
    // and the exit status.
    for (JobResult &r : results) {
        if (!selected.empty())
            r.rep.select(selected);
        r.rep.suppress(suppressed);
    }

    unsigned failures = 0;
    unsigned errors = 0, warnings = 0, note_count = 0;
    for (const JobResult &r : results) {
        errors += r.rep.count(verify::Severity::error);
        warnings += r.rep.count(verify::Severity::warning);
        note_count += r.rep.count(verify::Severity::note);
        if (r.failed(werror))
            ++failures;
    }

    if (format == "json") {
        writeJson(std::cout, results, werror);
    } else if (format == "sarif") {
        writeSarif(std::cout, results);
    } else {
        for (const JobResult &r : results) {
            bool clean = !r.failed(werror);
            if (!r.assembled) {
                std::cout << r.name << ": FAILED (does not assemble)\n";
            } else if (!clean || verbose) {
                std::cout << r.name << ": "
                          << (clean ? "ok" : "FAILED") << "\n";
            }
            for (const verify::Diag &d : r.rep.diags) {
                if (d.severity == verify::Severity::note && !notes)
                    continue;
                std::cout << "  " << d.format() << "\n";
            }
        }
        std::cout << results.size() << " jobs linted: " << errors
                  << " error(s), " << warnings << " warning(s), "
                  << note_count << " note(s)";
        if (werror)
            std::cout << " [--Werror]";
        std::cout << (failures ? " -- FAILED\n" : " -- clean\n");
    }

    if (!json_path.empty()) {
        std::ofstream jf(json_path);
        if (!jf) {
            std::cerr << "tcpni_lint: cannot write '" << json_path
                      << "'\n";
            return 2;
        }
        writeJson(jf, results, werror);
    }

    // Severity-aware exit: errors (and assembly failures) always
    // fail; warnings fail only under --Werror.
    return failures ? 1 : 0;
}
