/**
 * @file
 * tcpni_lint: statically verify the shipped handler and sender kernels
 * against the NI register contract, under every interface model.
 *
 * Exit status is 0 when every linted kernel is clean (no errors; no
 * warnings either under --Werror), 1 otherwise.  Hazard notes are
 * informational and never affect the exit status.
 *
 *   tcpni_lint [--Werror] [--model NAME] [--notes] [--list] [-v]
 *
 *   --Werror      treat warnings as failures
 *   --model NAME  lint a single registered model (registry name or
 *                 short name, e.g. "reg-opt")
 *   --notes       print load-use hazard notes (hidden by default)
 *   --list        list the kernels that would be linted, then exit
 *   -v            print a line per kernel even when clean
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "ni/model_registry.hh"
#include "ni/placement_policy.hh"
#include "verify/verifier.hh"

using namespace tcpni;

namespace
{

struct Job
{
    std::string name;
    ni::Model model;
    std::string source;
    bool sender = false;
};

std::vector<Job>
jobsFor(const ni::ModelInfo &info)
{
    const ni::Model &model = info.model;
    std::vector<Job> jobs;
    const std::string &mname = info.shortName;

    if (model.optimized) {
        jobs.push_back({mname + "/handlers", model,
                        msg::handlerProgram(model), false});
        // The no-overlap variant exists only for the cache-mapped
        // host kernels; On-NI handlers are register-coupled.
        if (!model.policy().registerMapped() &&
            !model.policy().handlersOnNi()) {
            jobs.push_back({mname + "/handlers-no-overlap", model,
                            msg::handlerProgram(model, false, true),
                            false});
        }
    } else {
        jobs.push_back({mname + "/handlers", model,
                        msg::handlerProgram(model, false), false});
        jobs.push_back({mname + "/handlers-sw-checks", model,
                        msg::handlerProgram(model, true), false});
    }

    static const msg::Kind kinds[] = {
        msg::Kind::send0, msg::Kind::send1, msg::Kind::send2,
        msg::Kind::read, msg::Kind::write, msg::Kind::pread,
        msg::Kind::pwrite,
    };
    for (msg::Kind k : kinds) {
        jobs.push_back({mname + "/send-" + msg::kindName(k), model,
                        msg::senderProgram(model, k, 4), true});
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    bool werror = false;
    bool notes = false;
    bool list = false;
    bool verbose = false;
    std::string only_model;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--Werror") {
            werror = true;
        } else if (arg == "--notes") {
            notes = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "-v" || arg == "--verbose") {
            verbose = true;
        } else if (arg == "--model" && i + 1 < argc) {
            only_model = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            std::cout << "usage: tcpni_lint [--Werror] [--model NAME] "
                         "[--notes] [--list] [-v]\n";
            return 0;
        } else {
            std::cerr << "tcpni_lint: unknown option '" << arg << "'\n";
            return 2;
        }
    }

    std::vector<Job> jobs;
    bool model_found = false;
    for (const ni::ModelInfo &info : ni::registeredModels()) {
        if (!only_model.empty() && info.shortName != only_model &&
            info.name != only_model)
            continue;
        model_found = true;
        for (Job &j : jobsFor(info))
            jobs.push_back(std::move(j));
    }
    if (!model_found) {
        std::cerr << "tcpni_lint: no model named '" << only_model
                  << "'\n";
        return 2;
    }

    if (list) {
        for (const Job &j : jobs)
            std::cout << j.name << "\n";
        return 0;
    }

    unsigned failures = 0;
    unsigned errors = 0, warnings = 0, note_count = 0;
    for (const Job &j : jobs) {
        isa::AsmResult res =
            isa::assembleAll(j.source, msg::kernelSymbols());
        if (!res.ok()) {
            std::cout << j.name << ": FAILED (does not assemble)\n";
            for (const isa::AsmDiag &d : res.errors)
                std::cout << "  line " << d.line << ": " << d.message
                          << "\n";
            ++failures;
            continue;
        }

        verify::Report rep =
            j.sender ? verify::verifySender(res.program, j.model)
                     : verify::verifyHandlers(res.program, j.model);
        errors += rep.count(verify::Severity::error);
        warnings += rep.count(verify::Severity::warning);
        note_count += rep.count(verify::Severity::note);

        bool clean = rep.clean(werror);
        if (!clean)
            ++failures;
        if (!clean || verbose) {
            std::cout << j.name << ": "
                      << (clean ? "ok" : "FAILED") << "\n";
        }
        for (const verify::Diag &d : rep.diags) {
            if (d.severity == verify::Severity::note && !notes)
                continue;
            std::cout << "  " << d.format() << "\n";
        }
    }

    std::cout << jobs.size() << " kernels linted: " << errors
              << " error(s), " << warnings << " warning(s), "
              << note_count << " note(s)";
    if (werror)
        std::cout << " [--Werror]";
    std::cout << (failures ? " -- FAILED\n" : " -- clean\n");
    return failures ? 1 : 0;
}
