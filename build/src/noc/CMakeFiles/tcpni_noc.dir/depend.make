# Empty dependencies file for tcpni_noc.
# This may be replaced when dependencies are built.
