file(REMOVE_RECURSE
  "libtcpni_noc.a"
)
