file(REMOVE_RECURSE
  "CMakeFiles/tcpni_noc.dir/mesh.cc.o"
  "CMakeFiles/tcpni_noc.dir/mesh.cc.o.d"
  "CMakeFiles/tcpni_noc.dir/message.cc.o"
  "CMakeFiles/tcpni_noc.dir/message.cc.o.d"
  "CMakeFiles/tcpni_noc.dir/network.cc.o"
  "CMakeFiles/tcpni_noc.dir/network.cc.o.d"
  "libtcpni_noc.a"
  "libtcpni_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
