# Empty dependencies file for tcpni_cost.
# This may be replaced when dependencies are built.
