file(REMOVE_RECURSE
  "libtcpni_cost.a"
)
