file(REMOVE_RECURSE
  "CMakeFiles/tcpni_cost.dir/table1.cc.o"
  "CMakeFiles/tcpni_cost.dir/table1.cc.o.d"
  "libtcpni_cost.a"
  "libtcpni_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
