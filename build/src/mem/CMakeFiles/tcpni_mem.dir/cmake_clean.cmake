file(REMOVE_RECURSE
  "CMakeFiles/tcpni_mem.dir/istruct_memory.cc.o"
  "CMakeFiles/tcpni_mem.dir/istruct_memory.cc.o.d"
  "CMakeFiles/tcpni_mem.dir/memory.cc.o"
  "CMakeFiles/tcpni_mem.dir/memory.cc.o.d"
  "libtcpni_mem.a"
  "libtcpni_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
