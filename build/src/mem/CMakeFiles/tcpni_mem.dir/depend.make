# Empty dependencies file for tcpni_mem.
# This may be replaced when dependencies are built.
