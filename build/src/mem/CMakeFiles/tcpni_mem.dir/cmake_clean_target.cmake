file(REMOVE_RECURSE
  "libtcpni_mem.a"
)
