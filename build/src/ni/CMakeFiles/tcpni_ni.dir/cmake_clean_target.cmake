file(REMOVE_RECURSE
  "libtcpni_ni.a"
)
