file(REMOVE_RECURSE
  "CMakeFiles/tcpni_ni.dir/config.cc.o"
  "CMakeFiles/tcpni_ni.dir/config.cc.o.d"
  "CMakeFiles/tcpni_ni.dir/network_interface.cc.o"
  "CMakeFiles/tcpni_ni.dir/network_interface.cc.o.d"
  "CMakeFiles/tcpni_ni.dir/ni_regs.cc.o"
  "CMakeFiles/tcpni_ni.dir/ni_regs.cc.o.d"
  "libtcpni_ni.a"
  "libtcpni_ni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_ni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
