# Empty compiler generated dependencies file for tcpni_ni.
# This may be replaced when dependencies are built.
