
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ni/config.cc" "src/ni/CMakeFiles/tcpni_ni.dir/config.cc.o" "gcc" "src/ni/CMakeFiles/tcpni_ni.dir/config.cc.o.d"
  "/root/repo/src/ni/network_interface.cc" "src/ni/CMakeFiles/tcpni_ni.dir/network_interface.cc.o" "gcc" "src/ni/CMakeFiles/tcpni_ni.dir/network_interface.cc.o.d"
  "/root/repo/src/ni/ni_regs.cc" "src/ni/CMakeFiles/tcpni_ni.dir/ni_regs.cc.o" "gcc" "src/ni/CMakeFiles/tcpni_ni.dir/ni_regs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tcpni_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcpni_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tcpni_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tcpni_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
