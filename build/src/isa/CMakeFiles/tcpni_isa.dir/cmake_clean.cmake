file(REMOVE_RECURSE
  "CMakeFiles/tcpni_isa.dir/assembler.cc.o"
  "CMakeFiles/tcpni_isa.dir/assembler.cc.o.d"
  "CMakeFiles/tcpni_isa.dir/isa.cc.o"
  "CMakeFiles/tcpni_isa.dir/isa.cc.o.d"
  "libtcpni_isa.a"
  "libtcpni_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
