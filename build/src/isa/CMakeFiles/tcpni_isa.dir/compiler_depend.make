# Empty compiler generated dependencies file for tcpni_isa.
# This may be replaced when dependencies are built.
