file(REMOVE_RECURSE
  "libtcpni_isa.a"
)
