file(REMOVE_RECURSE
  "CMakeFiles/tcpni_apps.dir/fib.cc.o"
  "CMakeFiles/tcpni_apps.dir/fib.cc.o.d"
  "CMakeFiles/tcpni_apps.dir/gamteb.cc.o"
  "CMakeFiles/tcpni_apps.dir/gamteb.cc.o.d"
  "CMakeFiles/tcpni_apps.dir/matmul.cc.o"
  "CMakeFiles/tcpni_apps.dir/matmul.cc.o.d"
  "CMakeFiles/tcpni_apps.dir/pingpong.cc.o"
  "CMakeFiles/tcpni_apps.dir/pingpong.cc.o.d"
  "libtcpni_apps.a"
  "libtcpni_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
