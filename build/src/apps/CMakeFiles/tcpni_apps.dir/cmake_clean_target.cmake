file(REMOVE_RECURSE
  "libtcpni_apps.a"
)
