# Empty dependencies file for tcpni_apps.
# This may be replaced when dependencies are built.
