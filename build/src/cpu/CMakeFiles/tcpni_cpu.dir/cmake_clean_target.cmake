file(REMOVE_RECURSE
  "libtcpni_cpu.a"
)
