# Empty dependencies file for tcpni_cpu.
# This may be replaced when dependencies are built.
