file(REMOVE_RECURSE
  "CMakeFiles/tcpni_cpu.dir/cpu.cc.o"
  "CMakeFiles/tcpni_cpu.dir/cpu.cc.o.d"
  "libtcpni_cpu.a"
  "libtcpni_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
