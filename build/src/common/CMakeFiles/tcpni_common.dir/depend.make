# Empty dependencies file for tcpni_common.
# This may be replaced when dependencies are built.
