file(REMOVE_RECURSE
  "CMakeFiles/tcpni_common.dir/logging.cc.o"
  "CMakeFiles/tcpni_common.dir/logging.cc.o.d"
  "CMakeFiles/tcpni_common.dir/random.cc.o"
  "CMakeFiles/tcpni_common.dir/random.cc.o.d"
  "CMakeFiles/tcpni_common.dir/stats.cc.o"
  "CMakeFiles/tcpni_common.dir/stats.cc.o.d"
  "CMakeFiles/tcpni_common.dir/table.cc.o"
  "CMakeFiles/tcpni_common.dir/table.cc.o.d"
  "libtcpni_common.a"
  "libtcpni_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
