file(REMOVE_RECURSE
  "libtcpni_common.a"
)
