file(REMOVE_RECURSE
  "CMakeFiles/tcpni_msg.dir/kernels.cc.o"
  "CMakeFiles/tcpni_msg.dir/kernels.cc.o.d"
  "CMakeFiles/tcpni_msg.dir/protocol.cc.o"
  "CMakeFiles/tcpni_msg.dir/protocol.cc.o.d"
  "libtcpni_msg.a"
  "libtcpni_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
