file(REMOVE_RECURSE
  "libtcpni_msg.a"
)
