# Empty compiler generated dependencies file for tcpni_msg.
# This may be replaced when dependencies are built.
