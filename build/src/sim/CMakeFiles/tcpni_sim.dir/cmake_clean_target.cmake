file(REMOVE_RECURSE
  "libtcpni_sim.a"
)
