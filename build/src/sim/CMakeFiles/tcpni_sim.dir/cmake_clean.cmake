file(REMOVE_RECURSE
  "CMakeFiles/tcpni_sim.dir/event_queue.cc.o"
  "CMakeFiles/tcpni_sim.dir/event_queue.cc.o.d"
  "libtcpni_sim.a"
  "libtcpni_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
