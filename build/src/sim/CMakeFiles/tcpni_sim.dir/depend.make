# Empty dependencies file for tcpni_sim.
# This may be replaced when dependencies are built.
