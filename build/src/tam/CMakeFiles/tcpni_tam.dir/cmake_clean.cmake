file(REMOVE_RECURSE
  "CMakeFiles/tcpni_tam.dir/expand.cc.o"
  "CMakeFiles/tcpni_tam.dir/expand.cc.o.d"
  "CMakeFiles/tcpni_tam.dir/machine.cc.o"
  "CMakeFiles/tcpni_tam.dir/machine.cc.o.d"
  "libtcpni_tam.a"
  "libtcpni_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
