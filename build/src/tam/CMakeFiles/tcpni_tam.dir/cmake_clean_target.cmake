file(REMOVE_RECURSE
  "libtcpni_tam.a"
)
