# Empty compiler generated dependencies file for tcpni_tam.
# This may be replaced when dependencies are built.
