file(REMOVE_RECURSE
  "libtcpni_system.a"
)
