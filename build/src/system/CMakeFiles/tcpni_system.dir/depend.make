# Empty dependencies file for tcpni_system.
# This may be replaced when dependencies are built.
