file(REMOVE_RECURSE
  "CMakeFiles/tcpni_system.dir/system.cc.o"
  "CMakeFiles/tcpni_system.dir/system.cc.o.d"
  "libtcpni_system.a"
  "libtcpni_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcpni_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
