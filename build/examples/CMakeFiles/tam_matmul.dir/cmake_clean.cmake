file(REMOVE_RECURSE
  "CMakeFiles/tam_matmul.dir/tam_matmul.cpp.o"
  "CMakeFiles/tam_matmul.dir/tam_matmul.cpp.o.d"
  "tam_matmul"
  "tam_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tam_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
