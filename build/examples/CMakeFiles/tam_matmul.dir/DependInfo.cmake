
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tam_matmul.cpp" "examples/CMakeFiles/tam_matmul.dir/tam_matmul.cpp.o" "gcc" "examples/CMakeFiles/tam_matmul.dir/tam_matmul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/tcpni_system.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/tcpni_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tcpni_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tam/CMakeFiles/tcpni_tam.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/tcpni_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tcpni_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ni/CMakeFiles/tcpni_ni.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tcpni_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tcpni_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/tcpni_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcpni_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcpni_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
