# Empty compiler generated dependencies file for tam_matmul.
# This may be replaced when dependencies are built.
