# Empty compiler generated dependencies file for remote_memory.
# This may be replaced when dependencies are built.
