file(REMOVE_RECURSE
  "CMakeFiles/remote_memory.dir/remote_memory.cpp.o"
  "CMakeFiles/remote_memory.dir/remote_memory.cpp.o.d"
  "remote_memory"
  "remote_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
