# Empty dependencies file for interrupt_server.
# This may be replaced when dependencies are built.
