file(REMOVE_RECURSE
  "CMakeFiles/interrupt_server.dir/interrupt_server.cpp.o"
  "CMakeFiles/interrupt_server.dir/interrupt_server.cpp.o.d"
  "interrupt_server"
  "interrupt_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
