file(REMOVE_RECURSE
  "CMakeFiles/istructure.dir/istructure.cpp.o"
  "CMakeFiles/istructure.dir/istructure.cpp.o.d"
  "istructure"
  "istructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/istructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
