# Empty dependencies file for istructure.
# This may be replaced when dependencies are built.
