# Empty compiler generated dependencies file for congestion.
# This may be replaced when dependencies are built.
