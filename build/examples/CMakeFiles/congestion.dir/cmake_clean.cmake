file(REMOVE_RECURSE
  "CMakeFiles/congestion.dir/congestion.cpp.o"
  "CMakeFiles/congestion.dir/congestion.cpp.o.d"
  "congestion"
  "congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
