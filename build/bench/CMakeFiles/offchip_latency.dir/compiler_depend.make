# Empty compiler generated dependencies file for offchip_latency.
# This may be replaced when dependencies are built.
