file(REMOVE_RECURSE
  "CMakeFiles/offchip_latency.dir/offchip_latency.cc.o"
  "CMakeFiles/offchip_latency.dir/offchip_latency.cc.o.d"
  "offchip_latency"
  "offchip_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offchip_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
