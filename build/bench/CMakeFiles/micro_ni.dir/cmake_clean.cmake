file(REMOVE_RECURSE
  "CMakeFiles/micro_ni.dir/micro_ni.cc.o"
  "CMakeFiles/micro_ni.dir/micro_ni.cc.o.d"
  "micro_ni"
  "micro_ni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
