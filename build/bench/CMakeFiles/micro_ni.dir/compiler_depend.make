# Empty compiler generated dependencies file for micro_ni.
# This may be replaced when dependencies are built.
