file(REMOVE_RECURSE
  "CMakeFiles/figure12.dir/figure12.cc.o"
  "CMakeFiles/figure12.dir/figure12.cc.o.d"
  "figure12"
  "figure12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
