# Empty compiler generated dependencies file for figure12.
# This may be replaced when dependencies are built.
