# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_ni[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_tam[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
