file(REMOVE_RECURSE
  "CMakeFiles/test_ni.dir/ni/dispatch_test.cc.o"
  "CMakeFiles/test_ni.dir/ni/dispatch_test.cc.o.d"
  "CMakeFiles/test_ni.dir/ni/exception_test.cc.o"
  "CMakeFiles/test_ni.dir/ni/exception_test.cc.o.d"
  "CMakeFiles/test_ni.dir/ni/fuzz_test.cc.o"
  "CMakeFiles/test_ni.dir/ni/fuzz_test.cc.o.d"
  "CMakeFiles/test_ni.dir/ni/network_interface_test.cc.o"
  "CMakeFiles/test_ni.dir/ni/network_interface_test.cc.o.d"
  "CMakeFiles/test_ni.dir/ni/ni_regs_test.cc.o"
  "CMakeFiles/test_ni.dir/ni/ni_regs_test.cc.o.d"
  "CMakeFiles/test_ni.dir/ni/protection_test.cc.o"
  "CMakeFiles/test_ni.dir/ni/protection_test.cc.o.d"
  "CMakeFiles/test_ni.dir/ni/scroll_test.cc.o"
  "CMakeFiles/test_ni.dir/ni/scroll_test.cc.o.d"
  "test_ni"
  "test_ni.pdb"
  "test_ni[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
