file(REMOVE_RECURSE
  "CMakeFiles/test_tam.dir/tam/expand_test.cc.o"
  "CMakeFiles/test_tam.dir/tam/expand_test.cc.o.d"
  "CMakeFiles/test_tam.dir/tam/machine_test.cc.o"
  "CMakeFiles/test_tam.dir/tam/machine_test.cc.o.d"
  "test_tam"
  "test_tam.pdb"
  "test_tam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
