# Empty compiler generated dependencies file for test_tam.
# This may be replaced when dependencies are built.
