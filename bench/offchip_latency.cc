/**
 * @file
 * Section 4.2.3's sensitivity claim (claim C): "Figure 12 assumes a
 * two cycle latency for reads from the off-chip interface.  If,
 * however, the latency is increased to 8 cycles instead of 2, then the
 * communication costs of the off-chip optimized model will double.
 * As a result, relegating the network interface off-chip will not
 * remain a viable alternative for future generations of
 * multiprocessors."
 *
 * This bench sweeps the off-chip load-use delay over {2, 4, 6, 8}
 * cycles, re-measures the Table-1 kernels at each point, and expands
 * the Matrix Multiply workload -- reporting the off-chip models'
 * communication growth against the latency-immune register-mapped
 * model.
 *
 * Flags:  --n N      matrix dimension (default 100)
 *         --jobs N   run the kernel measurements and the workload on
 *                    N worker threads (default: hardware concurrency)
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "apps/matmul.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/sweep.hh"
#include "tam/expand.hh"

using namespace tcpni;

int
main(int argc, char **argv)
{
    unsigned n = 100;
    unsigned jobs = 0;      // 0: hardware concurrency
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--n") && i + 1 < argc)
            n = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    }

    logging::quiet = true;

    std::cout << "Off-chip read-latency sensitivity (Section 4.2.3), "
              << n << "x" << n << " Matrix Multiply\n";

    const ni::Model off_opt{ni::Placement::offChipCache, true};
    const ni::Model off_basic{ni::Placement::offChipCache, false};
    const ni::Model reg_opt{ni::Placement::registerFile, true};
    static const Cycles delays[] = {2, 4, 6, 8};
    static const ni::Model sweep_models[] = {off_opt, off_basic,
                                             reg_opt};

    // Thirteen independent simulations: the workload run plus three
    // model measurements at each of the four delay points.  Fan them
    // out; results land in fixed (delay, model) slots, so the table
    // is identical whatever the thread count.
    apps::MatMulResult mm;
    std::vector<tam::CommCosts> costs(12);
    SweepRunner sweep(jobs);
    sweep.run(13, [&](size_t i) {
        if (i == 0) {
            std::fprintf(stderr, "running matrix multiply...\n");
            mm = apps::runMatMul(n, 4);
            return;
        }
        size_t di = (i - 1) / 3, si = (i - 1) % 3;
        if (si == 0) {
            std::fprintf(stderr, "  measuring kernels at delay %u...\n",
                         static_cast<unsigned>(delays[di]));
        }
        costs[i - 1] =
            tam::measureCommCosts(sweep_models[si], delays[di]);
    });
    if (!mm.verified)
        fatal("matrix multiply failed verification");

    double base_comm_off = 0;

    TextTable t;
    t.header({"Off-chip delay", "Off-chip opt comm", "vs 2-cycle",
              "Off-chip opt total", "Off-chip basic total",
              "Register opt total"});
    for (size_t di = 0; di < 4; ++di) {
        Cycles d = delays[di];
        tam::Figure12Bar off = tam::expand(mm.stats, costs[di * 3]);
        tam::Figure12Bar offb =
            tam::expand(mm.stats, costs[di * 3 + 1]);
        tam::Figure12Bar reg = tam::expand(mm.stats, costs[di * 3 + 2]);

        double comm = off.dispatch + off.otherComm;
        if (d == 2)
            base_comm_off = comm;

        char growth[32];
        std::snprintf(growth, sizeof(growth), "%.2fx",
                      comm / base_comm_off);
        auto fmt = [](double v) {
            char b[32];
            std::snprintf(b, sizeof(b), "%.2fM", v / 1e6);
            return std::string(b);
        };
        t.row({std::to_string(d) + " cycles", fmt(comm), growth,
               fmt(off.total()), fmt(offb.total()),
               fmt(reg.total())});
    }
    t.print(std::cout);

    std::cout
        << "\nThe register-mapped column is latency-immune, while the "
           "off-chip models keep\ngrowing with the read latency -- "
           "the paper's conclusion that \"relegating the\nnetwork "
           "interface off-chip will not remain a viable "
           "alternative\".\n\nNote: the paper projects the off-chip "
           "optimized communication to double at 8\ncycles; our "
           "executed kernels hide part of the added latency behind "
           "the\nNextMsgIp dispatch overlap (Section 2.2.3), so the "
           "measured growth is smaller.\nSee EXPERIMENTS.md.\n";
    return 0;
}
