/**
 * @file
 * Section 4.2.3's sensitivity claim (claim C): sweep the off-chip
 * load-use delay over {2, 4, 6, 8} cycles, re-measure the Table-1
 * kernels at each point, and expand the Matrix Multiply workload --
 * reporting the off-chip models' communication growth against the
 * latency-immune register-mapped model.  (The single 8-cycle point is
 * also the registry's "faroff-opt" model under -DTCPNI_EXTRA_MODELS.)
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/matmul.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "experiments.hh"
#include "sim/sweep.hh"
#include "tam/expand.hh"

namespace tcpni
{
namespace bench
{

namespace
{

int
runOffchipLatency(const exp::Context &ctx)
{
    unsigned n = static_cast<unsigned>(ctx.num("--n"));

    std::cout << "Off-chip read-latency sensitivity (Section 4.2.3), "
              << n << "x" << n << " Matrix Multiply\n";

    const ni::Model off_opt{ni::Placement::offChipCache, true};
    const ni::Model off_basic{ni::Placement::offChipCache, false};
    const ni::Model reg_opt{ni::Placement::registerFile, true};
    static const Cycles delays[] = {2, 4, 6, 8};
    static const ni::Model sweep_models[] = {off_opt, off_basic,
                                             reg_opt};

    // Thirteen independent simulations: the workload run plus three
    // model measurements at each of the four delay points.  Fan them
    // out; results land in fixed (delay, model) slots, so the table
    // is identical whatever the thread count.
    apps::MatMulResult mm;
    std::vector<tam::CommCosts> costs(12);
    SweepRunner sweep(ctx.jobs);
    static const char *const sweep_labels[] = {"offchip-opt",
                                               "offchip-basic",
                                               "register-opt"};
    sweep.run(13, [&](size_t i) {
        if (i == 0) {
            auto ms = ctx.taskMetrics(i, "matmul");
            std::fprintf(stderr, "running matrix multiply...\n");
            mm = apps::runMatMul(n, 4);
            return;
        }
        size_t di = (i - 1) / 3, si = (i - 1) % 3;
        auto ms = ctx.taskMetrics(
            i, std::string(sweep_labels[si]) + "@" +
                   std::to_string(delays[di]));
        if (si == 0) {
            std::fprintf(stderr, "  measuring kernels at delay %u...\n",
                         static_cast<unsigned>(delays[di]));
        }
        costs[i - 1] = tam::measureCommCosts(
            sweep_models[si].withOffchipDelay(delays[di]));
    });
    if (!mm.verified)
        fatal("matrix multiply failed verification");

    double base_comm_off = 0;

    TextTable t;
    t.header({"Off-chip delay", "Off-chip opt comm", "vs 2-cycle",
              "Off-chip opt total", "Off-chip basic total",
              "Register opt total"});
    for (size_t di = 0; di < 4; ++di) {
        Cycles d = delays[di];
        tam::Figure12Bar off = tam::expand(mm.stats, costs[di * 3]);
        tam::Figure12Bar offb =
            tam::expand(mm.stats, costs[di * 3 + 1]);
        tam::Figure12Bar reg = tam::expand(mm.stats, costs[di * 3 + 2]);

        double comm = off.dispatch + off.otherComm;
        if (d == 2)
            base_comm_off = comm;

        char growth[32];
        std::snprintf(growth, sizeof(growth), "%.2fx",
                      comm / base_comm_off);
        auto fmt = [](double v) {
            char b[32];
            std::snprintf(b, sizeof(b), "%.2fM", v / 1e6);
            return std::string(b);
        };
        t.row({std::to_string(d) + " cycles", fmt(comm), growth,
               fmt(off.total()), fmt(offb.total()),
               fmt(reg.total())});
    }
    t.print(std::cout);

    std::cout
        << "\nThe register-mapped column is latency-immune, while the "
           "off-chip models keep\ngrowing with the read latency -- "
           "the paper's conclusion that \"relegating the\nnetwork "
           "interface off-chip will not remain a viable "
           "alternative\".\n\nNote: the paper projects the off-chip "
           "optimized communication to double at 8\ncycles; our "
           "executed kernels hide part of the added latency behind "
           "the\nNextMsgIp dispatch overlap (Section 2.2.3), so the "
           "measured growth is smaller.\nSee EXPERIMENTS.md.\n";
    return 0;
}

} // namespace

void
registerOffchipLatency(exp::ExperimentRegistry &reg)
{
    reg.add({
        "offchip_latency",
        "Section 4.2.3: off-chip load-use delay sweep over {2,4,6,8}",
        {
            {"--n", "N", "matrix dimension", "100", false},
        },
        false,  // no --json
        false,  // no --trace
        runOffchipLatency,
    });
}

} // namespace bench
} // namespace tcpni
