/**
 * @file
 * The optimization-ablation experiment: the Section-2.2 mechanisms
 * (hw dispatch, encoded types, REPLY/FORWARD) enabled one at a time by
 * splicing measured optimized rows into the measured basic cost model,
 * so every number traces back to an executed kernel.  See
 * EXPERIMENTS.md "Ablation".
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/matmul.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "experiments.hh"
#include "sim/sweep.hh"
#include "tam/expand.hh"

namespace tcpni
{
namespace bench
{

namespace
{

/** Splice optimized rows into a basic cost model. */
tam::CommCosts
hybrid(const tam::CommCosts &basic, const tam::CommCosts &opt,
       bool hw_dispatch, bool encoded_types, bool reply_forward)
{
    tam::CommCosts h = basic;
    if (hw_dispatch) {
        h.dispatch = opt.dispatch;
        h.dispSend0 = opt.dispSend0;
        h.dispSend1 = opt.dispSend1;
        h.dispSend2 = opt.dispSend2;
        h.dispRead = opt.dispRead;
        h.dispWrite = opt.dispWrite;
        h.dispPReadFull = opt.dispPReadFull;
        h.dispPReadEmpty = opt.dispPReadEmpty;
        h.dispPReadDeferred = opt.dispPReadDeferred;
        h.dispPWrite = opt.dispPWrite;
    }
    if (encoded_types) {
        // Sending without the id generation/store.
        h.sendSend0 = opt.sendSend0;
        h.sendSend1 = opt.sendSend1;
        h.sendSend2 = opt.sendSend2;
        h.sendRead = opt.sendRead;
        h.sendWrite = opt.sendWrite;
        h.sendPRead = opt.sendPRead;
        h.sendPWrite = opt.sendPWrite;
    }
    if (reply_forward) {
        // Reply-building handlers get the optimized processing.
        h.procRead = opt.procRead;
        h.procPReadFull = opt.procPReadFull;
        h.procPWriteDefBase = opt.procPWriteDefBase;
        h.procPWriteDefSlope = opt.procPWriteDefSlope;
    }
    return h;
}

int
runAblation(const exp::Context &ctx)
{
    unsigned n = static_cast<unsigned>(ctx.num("--n"));

    std::cout << "Optimization ablation on " << n << "x" << n
              << " Matrix Multiply (cycles; lower is better)\n";

    // Seven independent simulations: the workload run plus a basic
    // and an optimized kernel measurement per placement.  Fan them
    // out; results land in fixed slots, so the report is identical
    // whatever the thread count.
    static const ni::Placement places[] = {
        ni::Placement::registerFile, ni::Placement::onChipCache,
        ni::Placement::offChipCache};
    apps::MatMulResult mm;
    std::vector<tam::CommCosts> basics(3), opts(3);
    SweepRunner sweep(ctx.jobs);
    sweep.run(7, [&](size_t i) {
        if (i == 0) {
            auto ms = ctx.taskMetrics(i, "matmul");
            std::fprintf(stderr, "running matrix multiply...\n");
            mm = apps::runMatMul(n, 4);
            return;
        }
        size_t p = (i - 1) / 2;
        bool optimized = (i - 1) % 2 != 0;
        auto ms = ctx.taskMetrics(
            i, ni::placementName(places[p]) +
                   (optimized ? "-optimized" : "-basic"));
        std::fprintf(stderr, "measuring %s %s kernels...\n",
                     ni::placementName(places[p]).c_str(),
                     optimized ? "optimized" : "basic");
        (optimized ? opts : basics)[p] =
            tam::measureCommCosts(ni::Model{places[p], optimized});
    });
    if (!mm.verified)
        fatal("matrix multiply failed verification");

    for (size_t pi = 0; pi < 3; ++pi) {
        ni::Placement p = places[pi];
        const tam::CommCosts &basic = basics[pi];
        const tam::CommCosts &opt = opts[pi];

        struct Step
        {
            const char *label;
            bool hd, et, rf;
        };
        static const Step steps[] = {
            {"basic", false, false, false},
            {"+hw dispatch", true, false, false},
            {"+encoded types", true, true, false},
            {"+reply/forward (all)", true, true, true},
        };

        std::cout << "\n--- " << ni::placementName(p) << " ---\n";
        TextTable t;
        t.header({"Configuration", "Comm cycles", "Total cycles",
                  "vs basic"});
        double base_total = 0;
        for (const Step &s : steps) {
            tam::CommCosts c = hybrid(basic, opt, s.hd, s.et, s.rf);
            tam::Figure12Bar bar = tam::expand(mm.stats, c);
            if (s.label[0] == 'b')
                base_total = bar.total();
            char comm[32], total[32], rel[32];
            std::snprintf(comm, sizeof(comm), "%.2fM",
                          (bar.dispatch + bar.otherComm) / 1e6);
            std::snprintf(total, sizeof(total), "%.2fM",
                          bar.total() / 1e6);
            std::snprintf(rel, sizeof(rel), "-%.1f%%",
                          (1 - bar.total() / base_total) * 100);
            t.row({s.label, comm, total, rel});
        }
        // The fully optimized kernels (not spliced) as the reference.
        tam::Figure12Bar full = tam::expand(mm.stats, opt);
        char comm[32], total[32], rel[32];
        std::snprintf(comm, sizeof(comm), "%.2fM",
                      (full.dispatch + full.otherComm) / 1e6);
        std::snprintf(total, sizeof(total), "%.2fM", full.total() / 1e6);
        std::snprintf(rel, sizeof(rel), "-%.1f%%",
                      (1 - full.total() / base_total) * 100);
        t.row({"optimized kernels (reference)", comm, total, rel});
        t.print(std::cout);
    }

    std::cout << "\nHardware-assisted dispatch contributes the "
                 "largest single share, matching the\npaper's "
                 "observation that most savings come from the "
                 "hardware mechanisms\nrather than placement.\n";
    return 0;
}

} // namespace

void
registerAblation(exp::ExperimentRegistry &reg)
{
    reg.add({
        "ablation",
        "Per-optimization ablation of the Section-2.2 mechanisms",
        {
            {"--n", "N", "matrix dimension", "100", false},
        },
        false,  // no --json
        false,  // no --trace
        runAblation,
    });
}

} // namespace bench
} // namespace tcpni
