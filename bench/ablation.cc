/**
 * @file
 * Ablation of the Section-2.2 hardware optimizations.
 *
 * The paper evaluates the optimizations as a bundle; this bench
 * separates their contributions.  Starting from the measured *basic*
 * costs of each placement, it enables one mechanism at a time and
 * re-expands the Matrix Multiply workload:
 *
 *  - "+hw dispatch"  : dispatch cost drops to the measured optimized
 *    dispatch (MsgIp / NextMsgIp replace the Figure-5 software
 *    sequence);
 *  - "+encoded types": sending sheds the 32-bit id generation/store
 *    (the measured basic-vs-optimized sending delta);
 *  - "+reply/forward": reply-building processing drops to the
 *    measured optimized processing (REPLY/FORWARD modes remove the
 *    copies).
 *
 * Each hybrid cost model splices the corresponding measured optimized
 * rows into the measured basic model, so every number traces back to
 * an executed kernel.
 *
 * Flags:  --n N      matrix dimension (default 100)
 *         --jobs N   run the kernel measurements and the workload on
 *                    N worker threads (default: hardware concurrency)
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "apps/matmul.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/sweep.hh"
#include "tam/expand.hh"

using namespace tcpni;

namespace
{

/** Splice optimized rows into a basic cost model. */
tam::CommCosts
hybrid(const tam::CommCosts &basic, const tam::CommCosts &opt,
       bool hw_dispatch, bool encoded_types, bool reply_forward)
{
    tam::CommCosts h = basic;
    if (hw_dispatch) {
        h.dispatch = opt.dispatch;
        h.dispSend0 = opt.dispSend0;
        h.dispSend1 = opt.dispSend1;
        h.dispSend2 = opt.dispSend2;
        h.dispRead = opt.dispRead;
        h.dispWrite = opt.dispWrite;
        h.dispPReadFull = opt.dispPReadFull;
        h.dispPReadEmpty = opt.dispPReadEmpty;
        h.dispPReadDeferred = opt.dispPReadDeferred;
        h.dispPWrite = opt.dispPWrite;
    }
    if (encoded_types) {
        // Sending without the id generation/store.
        h.sendSend0 = opt.sendSend0;
        h.sendSend1 = opt.sendSend1;
        h.sendSend2 = opt.sendSend2;
        h.sendRead = opt.sendRead;
        h.sendWrite = opt.sendWrite;
        h.sendPRead = opt.sendPRead;
        h.sendPWrite = opt.sendPWrite;
    }
    if (reply_forward) {
        // Reply-building handlers get the optimized processing.
        h.procRead = opt.procRead;
        h.procPReadFull = opt.procPReadFull;
        h.procPWriteDefBase = opt.procPWriteDefBase;
        h.procPWriteDefSlope = opt.procPWriteDefSlope;
    }
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned n = 100;
    unsigned jobs = 0;      // 0: hardware concurrency
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--n") && i + 1 < argc)
            n = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    }

    logging::quiet = true;

    std::cout << "Optimization ablation on " << n << "x" << n
              << " Matrix Multiply (cycles; lower is better)\n";

    // Seven independent simulations: the workload run plus a basic
    // and an optimized kernel measurement per placement.  Fan them
    // out; results land in fixed slots, so the report is identical
    // whatever the thread count.
    static const ni::Placement places[] = {
        ni::Placement::registerFile, ni::Placement::onChipCache,
        ni::Placement::offChipCache};
    apps::MatMulResult mm;
    std::vector<tam::CommCosts> basics(3), opts(3);
    SweepRunner sweep(jobs);
    sweep.run(7, [&](size_t i) {
        if (i == 0) {
            std::fprintf(stderr, "running matrix multiply...\n");
            mm = apps::runMatMul(n, 4);
            return;
        }
        size_t p = (i - 1) / 2;
        bool optimized = (i - 1) % 2 != 0;
        std::fprintf(stderr, "measuring %s %s kernels...\n",
                     ni::placementName(places[p]).c_str(),
                     optimized ? "optimized" : "basic");
        (optimized ? opts : basics)[p] =
            tam::measureCommCosts(ni::Model{places[p], optimized});
    });
    if (!mm.verified)
        fatal("matrix multiply failed verification");

    for (size_t pi = 0; pi < 3; ++pi) {
        ni::Placement p = places[pi];
        const tam::CommCosts &basic = basics[pi];
        const tam::CommCosts &opt = opts[pi];

        struct Step
        {
            const char *label;
            bool hd, et, rf;
        };
        static const Step steps[] = {
            {"basic", false, false, false},
            {"+hw dispatch", true, false, false},
            {"+encoded types", true, true, false},
            {"+reply/forward (all)", true, true, true},
        };

        std::cout << "\n--- " << ni::placementName(p) << " ---\n";
        TextTable t;
        t.header({"Configuration", "Comm cycles", "Total cycles",
                  "vs basic"});
        double base_total = 0;
        for (const Step &s : steps) {
            tam::CommCosts c = hybrid(basic, opt, s.hd, s.et, s.rf);
            tam::Figure12Bar bar = tam::expand(mm.stats, c);
            if (s.label[0] == 'b')
                base_total = bar.total();
            char comm[32], total[32], rel[32];
            std::snprintf(comm, sizeof(comm), "%.2fM",
                          (bar.dispatch + bar.otherComm) / 1e6);
            std::snprintf(total, sizeof(total), "%.2fM",
                          bar.total() / 1e6);
            std::snprintf(rel, sizeof(rel), "-%.1f%%",
                          (1 - bar.total() / base_total) * 100);
            t.row({s.label, comm, total, rel});
        }
        // The fully optimized kernels (not spliced) as the reference.
        tam::Figure12Bar full = tam::expand(mm.stats, opt);
        char comm[32], total[32], rel[32];
        std::snprintf(comm, sizeof(comm), "%.2fM",
                      (full.dispatch + full.otherComm) / 1e6);
        std::snprintf(total, sizeof(total), "%.2fM", full.total() / 1e6);
        std::snprintf(rel, sizeof(rel), "-%.1f%%",
                      (1 - full.total() / base_total) * 100);
        t.row({"optimized kernels (reference)", comm, total, rel});
        t.print(std::cout);
    }

    std::cout << "\nHardware-assisted dispatch contributes the "
                 "largest single share, matching the\npaper's "
                 "observation that most savings come from the "
                 "hardware mechanisms\nrather than placement.\n";
    return 0;
}
