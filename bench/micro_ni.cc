/**
 * @file
 * Google-benchmark microbenchmarks of the message-handling hot paths:
 * NI send/receive throughput, the full two-instruction remote-read
 * server loop, and MsgIp computation.
 *
 * Flags (besides the standard --benchmark_* set):
 *   --json FILE    write benchmark results as JSON
 *                  (shorthand for --benchmark_out=FILE
 *                   --benchmark_out_format=json)
 *   --trace FILE   write a Chrome trace of the message lifecycles
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "cpu/cpu.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "ni/network_interface.hh"
#include "noc/network.hh"

using namespace tcpni;

namespace
{

void
BM_NiSendReceive(benchmark::State &state)
{
    // NI-to-NI message throughput over the ideal network.
    EventQueue eq;
    IdealNetwork net("n", eq, 2, 1);
    ni::NiConfig cfg;
    cfg.inputQueueDepth = 1u << 20;
    cfg.outputQueueDepth = 1u << 20;
    ni::NetworkInterface ni0("ni0", eq, 0, net, cfg);
    ni::NetworkInterface ni1("ni1", eq, 1, net, cfg);

    ni0.writeReg(ni::regO0, globalWord(1, 0));
    isa::NiCommand send;
    send.mode = isa::SendMode::send;
    send.type = 2;
    isa::NiCommand next;
    next.next = true;

    for (auto _ : state) {
        (void)_;
        ni0.command(send);
        eq.run();
        ni1.command(next);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NiSendReceive);

void
BM_MsgIpComputation(benchmark::State &state)
{
    EventQueue eq;
    IdealNetwork net("n", eq, 2, 1);
    ni::NiConfig cfg;
    ni::NetworkInterface ni1("ni1", eq, 1, net, cfg);
    ni1.writeReg(ni::regIpBase, 0x4000);
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(ni1.readReg(ni::regMsgIp));
    }
}
BENCHMARK(BM_MsgIpComputation);

void
BM_TwoInstructionServerLoop(benchmark::State &state)
{
    // Simulated remote-read server throughput: messages served per
    // host second through the full CPU+NI+kernel stack.
    ni::Model model{ni::Placement::registerFile, true};
    isa::Program prog = msg::assembleKernel(msg::handlerProgram(model));
    const unsigned batch = 192;    // below the 8-bit iafull threshold

    for (auto _ : state) {
        (void)_;
        EventQueue eq;
        IdealNetwork net("n", eq, 2, 1);
        ni::NiConfig cfg;
        cfg.inputQueueDepth = 2 * batch;
        cfg.outputQueueDepth = 2 * batch;
        cfg.inputThreshold = 255;
        cfg.outputThreshold = 255;
        ni::NiConfig sink = cfg;
        ni::NetworkInterface ni0("ni0", eq, 0, net, sink);
        ni::NetworkInterface ni1("ni1", eq, 1, net, cfg);
        Memory mem(1 << 20);
        mem.write(0x2100, 7);
        Cpu cpu("cpu", eq, mem, &ni1);
        cpu.loadProgram(prog);

        for (unsigned k = 0; k < batch; ++k) {
            Message m;
            m.words = {globalWord(1, 0x2100), globalWord(0, 0), 0, 0,
                       0};
            m.type = msg::typeRead;
            m.setDestFromWord0();
            ni1.acceptFromNetwork(m);
        }
        Message stop;
        stop.words = {globalWord(1, 0), 0, 0, 0, 0};
        stop.type = msg::typeStop;
        stop.setDestFromWord0();
        ni1.acceptFromNetwork(stop);

        cpu.reset(prog.addrOf("entry"));
        cpu.start();
        eq.run();
        benchmark::DoNotOptimize(cpu.instructions());
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TwoInstructionServerLoop);

} // namespace

int
main(int argc, char **argv)
{
    // Translate the repo-wide observability flags into the
    // google-benchmark equivalents before Initialize() consumes argv.
    std::string trace_file;
    std::vector<char *> args;
    std::vector<std::string> storage;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            storage.push_back(std::string("--benchmark_out=") +
                              argv[++i]);
            storage.push_back("--benchmark_out_format=json");
        } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
            trace_file = argv[++i];
        } else {
            args.push_back(argv[i]);
        }
    }
    for (std::string &s : storage)
        args.push_back(s.data());

    tcpni::trace::TraceSink lifecycle_sink;
    if (!trace_file.empty())
        tcpni::trace::setSink(&lifecycle_sink);

    int benchmark_argc = static_cast<int>(args.size());
    benchmark::Initialize(&benchmark_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (!trace_file.empty()) {
        tcpni::trace::setSink(nullptr);
        std::ofstream os(trace_file);
        if (!os) {
            std::cerr << "cannot open --trace file '" << trace_file
                      << "'\n";
            return 1;
        }
        lifecycle_sink.writeChromeTrace(os);
        std::cerr << "wrote Chrome trace ("
                  << lifecycle_sink.completeLifecycles()
                  << " complete message lifecycles) to " << trace_file
                  << "\n";
    }
    return 0;
}
