/**
 * @file
 * The Figure-12 experiment: dynamic 88100 cycle counts for the Matrix
 * Multiply and Gamteb programs under every registered interface model,
 * split into non-message work, dispatching, and all other
 * communication.  Also evaluates the paper's headline claims A, B, and
 * D (see EXPERIMENTS.md "Figure 12").
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/gamteb.hh"
#include "apps/matmul.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "experiments.hh"
#include "ni/model_registry.hh"
#include "sim/sweep.hh"
#include "tam/expand.hh"

namespace tcpni
{
namespace bench
{

namespace
{

struct ProgramBars
{
    std::string name;
    tam::TamStats stats;
    std::vector<tam::Figure12Bar> bars;     // per model
};

void
printProgram(const ProgramBars &p, const std::vector<std::string> &names)
{
    std::cout << "\n--- " << p.name << " ---\n";
    TextTable t;
    t.header({"Model", "Work", "Dispatch", "Other comm", "Total",
              "Comm share"});
    for (size_t i = 0; i < names.size(); ++i) {
        const tam::Figure12Bar &b = p.bars[i];
        t.row({names[i], fmtK(b.work), fmtK(b.dispatch),
               fmtK(b.otherComm), fmtK(b.total()),
               pct(b.commFraction())});
    }
    t.print(std::cout);

    // ASCII rendition of the stacked bars (normalized to the worst
    // model).
    double max_total = 0;
    for (const auto &b : p.bars)
        max_total = std::max(max_total, b.total());
    std::cout << "\n  (#: work, D: dispatch, C: other communication; "
                 "60 columns = worst model)\n";
    for (size_t i = 0; i < names.size(); ++i) {
        const tam::Figure12Bar &b = p.bars[i];
        auto cols = [&](double v) {
            return static_cast<int>(v / max_total * 60 + 0.5);
        };
        std::printf("  %-24s |%s%s%s\n", names[i].c_str(),
                    std::string(cols(b.work), '#').c_str(),
                    std::string(cols(b.dispatch), 'D').c_str(),
                    std::string(cols(b.otherComm), 'C').c_str());
    }
}

void
printClaims(const ProgramBars &p)
{
    // Paper-model order (the registry's first six entries): 0 opt-reg,
    // 1 opt-on, 2 opt-off, 3 bas-reg, 4 bas-on, 5 bas-off.
    const tam::Figure12Bar &best = p.bars[0];
    const tam::Figure12Bar &worst = p.bars[5];

    double comm_best = best.dispatch + best.otherComm;
    double comm_worst = worst.dispatch + worst.otherComm;

    double sd_best = best.sending + best.dispatch;
    double sd_worst = worst.sending + worst.dispatch;
    std::cout << "\n  Claim A (opt register vs basic off-chip):\n"
              << "    send+dispatch reduction: "
              << sd_worst / sd_best
              << "x (paper: \"as much as five fold\")\n"
              << "    total communication reduction: "
              << comm_worst / comm_best << "x\n"
              << "    total execution cut:     "
              << pct(1 - best.total() / worst.total())
              << " (paper: ~40%)\n"
              << "    comm share:              "
              << pct(worst.commFraction()) << " -> "
              << pct(best.commFraction())
              << " (paper: 51% -> 17%)\n";

    double slowest_opt = 0, fastest_basic = 1e300;
    for (int i = 0; i < 3; ++i)
        slowest_opt = std::max(slowest_opt, p.bars[i].total());
    for (int i = 3; i < 6; ++i)
        fastest_basic = std::min(fastest_basic, p.bars[i].total());
    std::cout << "  Claim B: slowest optimized ("
              << fmtK(slowest_opt) << ") "
              << (slowest_opt < fastest_basic ? "beats" : "LOSES TO")
              << " fastest basic (" << fmtK(fastest_basic) << ")\n";

    double comm_off_opt = p.bars[2].dispatch + p.bars[2].otherComm;
    std::cout << "  Claim D: optimized off-chip improves communication "
              << comm_worst / comm_off_opt << "x over basic off-chip "
              << "(paper: ~2x)\n";
}

void
writeJson(std::ostream &os, unsigned n, unsigned particles,
          Cycles offchip, const std::vector<std::string> &names,
          const std::vector<tam::CommCosts> &costs,
          const ProgramBars &mm, const ProgramBars &gt,
          uint64_t mm_msgs, uint64_t mm_flops, uint64_t gt_msgs)
{
    using stats::jsonNum;
    os << "{\"config\":{\"n\":" << n << ",\"particles\":" << particles
       << ",\"offchipDelay\":" << offchip << "},\n\"models\":{";
    for (size_t i = 0; i < costs.size(); ++i) {
        const tam::CommCosts &c = costs[i];
        os << (i ? ",\n" : "\n") << "\""
           << stats::jsonEscape(names[i]) << "\":{"
           << "\"send\":{\"send0\":" << jsonNum(c.sendSend0)
           << ",\"send1\":" << jsonNum(c.sendSend1)
           << ",\"send2\":" << jsonNum(c.sendSend2)
           << ",\"read\":" << jsonNum(c.sendRead)
           << ",\"write\":" << jsonNum(c.sendWrite)
           << ",\"pread\":" << jsonNum(c.sendPRead)
           << ",\"pwrite\":" << jsonNum(c.sendPWrite) << "},"
           << "\"dispatch\":" << jsonNum(c.dispatch) << ","
           << "\"process\":{\"send0\":" << jsonNum(c.procSend0)
           << ",\"send1\":" << jsonNum(c.procSend1)
           << ",\"send2\":" << jsonNum(c.procSend2)
           << ",\"read\":" << jsonNum(c.procRead)
           << ",\"write\":" << jsonNum(c.procWrite)
           << ",\"preadFull\":" << jsonNum(c.procPReadFull)
           << ",\"preadEmpty\":" << jsonNum(c.procPReadEmpty)
           << ",\"preadDeferred\":" << jsonNum(c.procPReadDeferred)
           << ",\"pwriteEmpty\":" << jsonNum(c.procPWriteEmpty)
           << ",\"pwriteDeferredBase\":" << jsonNum(c.procPWriteDefBase)
           << ",\"pwriteDeferredSlope\":"
           << jsonNum(c.procPWriteDefSlope) << "}}";
    }
    os << "},\n\"programs\":{";
    auto program = [&](const char *key, const ProgramBars &p,
                       uint64_t msgs, uint64_t flops) {
        os << "\"" << key << "\":{\"name\":\""
           << stats::jsonEscape(p.name) << "\",\"messages\":" << msgs
           << ",\"flops\":" << flops << ",\"models\":{";
        for (size_t i = 0; i < p.bars.size(); ++i) {
            const tam::Figure12Bar &b = p.bars[i];
            os << (i ? ",\n" : "\n") << "\""
               << stats::jsonEscape(names[i]) << "\":{"
               << "\"work\":" << jsonNum(b.work)
               << ",\"dispatch\":" << jsonNum(b.dispatch)
               << ",\"sending\":" << jsonNum(b.sending)
               << ",\"otherComm\":" << jsonNum(b.otherComm)
               << ",\"total\":" << jsonNum(b.total())
               << ",\"commFraction\":" << jsonNum(b.commFraction())
               << "}";
        }
        os << "}}";
    };
    program("matmul", mm, mm_msgs, mm_flops);
    os << ",\n";
    program("gamteb", gt, gt_msgs, 0);
    os << "}}\n";
}

int
runFigure12(const exp::Context &ctx)
{
    unsigned n = static_cast<unsigned>(ctx.num("--n"));
    unsigned particles = static_cast<unsigned>(ctx.num("--particles"));
    Cycles offchip = static_cast<Cycles>(ctx.num("--offchip-delay"));

    const auto &infos = ni::registeredModels();
    std::vector<ni::Model> models;
    std::vector<std::string> names;
    for (const ni::ModelInfo &info : infos) {
        models.push_back(ctx.given("--offchip-delay")
                             ? info.model.withOffchipDelay(offchip)
                             : info.model);
        names.push_back(info.name);
    }

    std::cout << "Figure 12 reproduction: dynamic cycle counts for "
              << n << "x" << n << " Matrix Multiply and " << particles
              << " Gamteb\nunder the six interface models (message "
                 "costs measured from the Table-1 kernels).\n";

    // Independent simulations: each model's message-cost measurement
    // plus the two TAM program runs (model-independent, exactly as in
    // the paper's methodology).  Fan them out across the sweep pool;
    // every result lands in its own slot, so the output is identical
    // whatever the thread count.
    std::vector<tam::CommCosts> costs(models.size());
    apps::MatMulResult mm;
    apps::GamtebResult gt;
    SweepRunner sweep(ctx.jobs);
    sweep.run(models.size() + 2, [&](size_t i) {
        if (i < models.size()) {
            auto ms = ctx.taskMetrics(i, names[i]);
            costs[i] = tam::measureCommCosts(models[i]);
        } else if (i == models.size()) {
            auto ms = ctx.taskMetrics(i, "matmul");
            std::fprintf(stderr, "running matrix multiply (%ux%u)...\n",
                         n, n);
            mm = apps::runMatMul(n, 4);
        } else {
            auto ms = ctx.taskMetrics(i, "gamteb");
            std::fprintf(stderr, "running gamteb (%u particles)...\n",
                         particles);
            gt = apps::runGamteb(particles);
        }
    });
    if (!mm.verified)
        fatal("matrix multiply failed verification");
    if (!gt.conserved())
        fatal("gamteb particle accounting failed");

    ProgramBars mm_bars{"Matrix Multiply " + std::to_string(n) + "x" +
                            std::to_string(n),
                        mm.stats, {}};
    ProgramBars gt_bars{"Gamteb " + std::to_string(particles),
                        gt.stats, {}};
    for (const tam::CommCosts &c : costs) {
        mm_bars.bars.push_back(tam::expand(mm.stats, c));
        gt_bars.bars.push_back(tam::expand(gt.stats, c));
    }

    std::cout << "\nMatrix Multiply: " << mm.stats.totalMessages()
              << " messages, " << mm.stats.flops() << " flops ("
              << mm.flopsPerMessage
              << " flops/message; paper quotes ~3)\n";
    std::cout << "Gamteb: " << gt.stats.totalMessages()
              << " messages, " << gt.totalParticles << " particles ("
              << gt.escaped << " escaped, " << gt.absorbed
              << " absorbed, " << gt.pairProductions << " pairs, "
              << gt.collisions << " collisions)\n";

    printProgram(mm_bars, names);
    printClaims(mm_bars);
    printProgram(gt_bars, names);
    printClaims(gt_bars);

    ctx.writeJson([&](std::ostream &os) {
        writeJson(os, n, particles, offchip, names, costs, mm_bars,
                  gt_bars, mm.stats.totalMessages(), mm.stats.flops(),
                  gt.stats.totalMessages());
    });
    return 0;
}

} // namespace

void
registerFigure12(exp::ExperimentRegistry &reg)
{
    reg.add({
        "figure12",
        "Figure 12: dynamic cycle counts for Matrix Multiply and "
        "Gamteb per model",
        {
            {"--n", "N", "matrix dimension for Matrix Multiply", "100",
             false},
            {"--particles", "P", "Gamteb source particles", "16",
             false},
            {"--offchip-delay", "D",
             "off-chip load-use delay override", "2", false},
        },
        true,   // --json
        true,   // --trace
        runFigure12,
    });
}

} // namespace bench
} // namespace tcpni
