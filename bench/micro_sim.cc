/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrates: event
 * queue, mesh network, network interface, assembler, CPU model, and
 * TAM interpreter throughput.  These guard the simulator's own
 * performance (host-side), not the simulated machine's.
 */

#include <benchmark/benchmark.h>

#include "apps/matmul.hh"
#include "common/logging.hh"
#include "cpu/cpu.hh"
#include "msg/kernels.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"

using namespace tcpni;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    struct Nop : Event
    {
        void process() override {}
    };
    std::vector<Nop> events(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        (void)_;
        EventQueue eq;
        Tick t = 0;
        for (auto &ev : events)
            eq.schedule(&ev, ++t);
        eq.run();
        benchmark::DoNotOptimize(eq.numProcessed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_MeshAllToAll(benchmark::State &state)
{
    const unsigned w = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        (void)_;
        EventQueue eq;
        MeshNetwork mesh("m", eq, w, w, 8);
        for (NodeId i = 0; i < w * w; ++i)
            mesh.setSink(i, [](const Message &) { return true; });
        for (NodeId s = 0; s < w * w; ++s) {
            Message m;
            m.words[0] = globalWord((s + 1) % (w * w), 0);
            m.setDestFromWord0();
            mesh.offer(s, m);
        }
        eq.run();
        benchmark::DoNotOptimize(mesh.delivered());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            state.range(0));
}
BENCHMARK(BM_MeshAllToAll)->Arg(4)->Arg(8);

void
BM_AssembleHandlerProgram(benchmark::State &state)
{
    ni::Model model{ni::Placement::registerFile, true};
    std::string src = msg::handlerProgram(model);
    for (auto _ : state) {
        (void)_;
        isa::Program p = msg::assembleKernel(src);
        benchmark::DoNotOptimize(p.words.size());
    }
}
BENCHMARK(BM_AssembleHandlerProgram);

void
BM_CpuSimulationRate(benchmark::State &state)
{
    // Instructions simulated per second on a tight loop.
    isa::Program prog = isa::assemble(R"(
        entry:
            li   r1, 100000
        loop:
            addi r2, r2, 3
            xor  r3, r2, r1
            addi r1, r1, -1
            bnez r1, loop
            nop
            halt
    )");
    for (auto _ : state) {
        (void)_;
        EventQueue eq;
        Memory mem(1 << 20);
        Cpu cpu("c", eq, mem, nullptr);
        cpu.loadProgram(prog);
        cpu.reset(prog.addrOf("entry"));
        cpu.start();
        eq.run();
        benchmark::DoNotOptimize(cpu.instructions());
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<int64_t>(
                                    cpu.instructions()));
    }
}
BENCHMARK(BM_CpuSimulationRate);

void
BM_TamMatMul(benchmark::State &state)
{
    logging::quiet = true;
    const unsigned n = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        (void)_;
        apps::MatMulResult r = apps::runMatMul(n, 4);
        benchmark::DoNotOptimize(r.stats.totalMessages());
        state.SetItemsProcessed(
            state.items_processed() +
            static_cast<int64_t>(r.stats.totalMessages()));
    }
}
BENCHMARK(BM_TamMatMul)->Arg(20)->Arg(40);

} // namespace

BENCHMARK_MAIN();
