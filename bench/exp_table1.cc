/**
 * @file
 * The Table-1 experiment: the RISC cycles each interface model takes
 * to send, dispatch, and process each message type -- measured by
 * executing the hand-written handler kernels on the CPU timing model.
 * Prints the measured table over every registered model, the paper's
 * published table, and a per-cell comparison for the six paper models.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "cost/table1.hh"
#include "experiments.hh"
#include "ni/model_registry.hh"
#include "ni/placement_policy.hh"
#include "sim/sweep.hh"

namespace tcpni
{
namespace bench
{

using namespace cost;
using msg::Kind;

namespace
{

/** One model's column of the table, keyed by row. */
using ModelCells = std::map<std::string, PaperCell>;

struct MeasuredTable
{
    // row key -> one cell (lo, hi, slope) per registered model.
    std::map<std::string, std::vector<PaperCell>> cells;
};

ModelCells
measureModel(const ni::Model &model, bool no_overlap)
{
    ModelCells cells;
    Table1Harness h(model, false, no_overlap);
    std::fprintf(stderr, "  measuring %s...\n", model.name().c_str());

    static const Kind kinds[] = {Kind::send0, Kind::send1,
                                 Kind::send2, Kind::pread,
                                 Kind::pwrite, Kind::read,
                                 Kind::write};
    for (Kind k : kinds) {
        double copy_cost = h.sendingCost(k);
        double lo = copy_cost;
        if (model.policy().directCompose())
            lo = copy_cost - msg::directlyComputableWords(k);
        cells[sendRowKey(k)] = {lo, copy_cost, 0};
    }

    // Dispatch, measured from the Read stream (the paper's
    // DISPATCHING row is message-type independent).
    ProcCost read_cost = h.processingCost(ProcCase::read);
    cells["dispatch"] = {read_cost.dispatching, read_cost.dispatching,
                         0};

    static const ProcCase cases[] = {
        ProcCase::send0, ProcCase::send1, ProcCase::send2,
        ProcCase::read, ProcCase::write, ProcCase::preadFull,
        ProcCase::preadEmpty, ProcCase::preadDeferred,
        ProcCase::pwriteEmpty,
    };
    for (ProcCase c : cases) {
        ProcCost pc = h.processingCost(c);
        cells[procRowKey(c)] = {pc.processing, pc.processing, 0};
    }

    LinearCost lin = h.pwriteDeferredCost();
    cells[procRowKey(ProcCase::pwriteDeferred)] = {lin.base, lin.base,
                                                   lin.slope};
    return cells;
}

MeasuredTable
measureAll(const std::vector<ni::Model> &models, bool no_overlap,
           const exp::Context &ctx)
{
    // The models are independent simulations: fan them out across the
    // sweep pool.  Results merge by model index, so the table is
    // identical whatever the thread count.
    SweepRunner sweep(ctx.jobs);
    std::vector<ModelCells> columns = sweep.map<ModelCells>(
        models.size(), [&](size_t mi) {
            auto ms = ctx.taskMetrics(mi, models[mi].name());
            return measureModel(models[mi], no_overlap);
        });

    MeasuredTable t;
    for (size_t mi = 0; mi < columns.size(); ++mi) {
        for (const auto &[key, cell] : columns[mi]) {
            auto &row = t.cells[key];
            row.resize(models.size());
            row[mi] = cell;
        }
    }
    return t;
}

struct RowSpec
{
    const char *section;
    const char *label;
    std::string key;
};

std::vector<RowSpec>
rowSpecs()
{
    return {
        {"SENDING", "Send (0 words)", sendRowKey(Kind::send0)},
        {"", "Send (1 word)", sendRowKey(Kind::send1)},
        {"", "Send (2 words)", sendRowKey(Kind::send2)},
        {"", "PRead", sendRowKey(Kind::pread)},
        {"", "PWrite", sendRowKey(Kind::pwrite)},
        {"", "Read", sendRowKey(Kind::read)},
        {"", "Write", sendRowKey(Kind::write)},
        {"DISPATCHING", "-", "dispatch"},
        {"PROCESSING", "Send (0 words)", procRowKey(ProcCase::send0)},
        {"", "Send (1 word)", procRowKey(ProcCase::send1)},
        {"", "Send (2 words)", procRowKey(ProcCase::send2)},
        {"", "Read", procRowKey(ProcCase::read)},
        {"", "Write", procRowKey(ProcCase::write)},
        {"", "PRead (full)", procRowKey(ProcCase::preadFull)},
        {"", "PRead (empty)", procRowKey(ProcCase::preadEmpty)},
        {"", "PRead (deferred)", procRowKey(ProcCase::preadDeferred)},
        {"", "PWrite (empty)", procRowKey(ProcCase::pwriteEmpty)},
        {"", "PWrite (deferred)",
         procRowKey(ProcCase::pwriteDeferred)},
    };
}

template <typename Cells>
void
printTable(const char *title, const std::vector<std::string> &labels,
           const Cells &cells)
{
    std::cout << "\n=== " << title << " ===\n";
    TextTable tt;
    std::vector<std::string> header{"Action", "Message Type"};
    header.insert(header.end(), labels.begin(), labels.end());
    tt.header(header);
    const char *last_section = "";
    for (const RowSpec &row : rowSpecs()) {
        if (row.section[0] && std::strcmp(row.section, last_section)) {
            tt.separator();
            last_section = row.section;
        }
        std::vector<std::string> cols{row.section, row.label};
        const auto &arr = cells.at(row.key);
        for (const PaperCell &c : arr) {
            cols.push_back(c.slope != 0 ? fmtLinear(c.lo, c.slope)
                                        : fmtRange(c.lo, c.hi));
        }
        tt.row(cols);
    }
    tt.print(std::cout);
}

void
printComparison(const MeasuredTable &m,
                const std::map<std::string,
                               std::array<PaperCell, 6>> &paper)
{
    // The comparison covers the six paper columns only; registry
    // extensions have no published reference cells.
    std::cout << "\n=== Measured vs paper (per cell; '=' exact, "
                 "otherwise measured/paper) ===\n";
    TextTable tt;
    tt.header({"Row", "Opt Reg", "Opt On", "Opt Off", "Bas Reg",
               "Bas On", "Bas Off"});
    int exact = 0, close = 0, off = 0;
    for (const RowSpec &row : rowSpecs()) {
        std::vector<std::string> cols{std::string(row.section) + " " +
                                      row.label};
        for (size_t i = 0; i < 6; ++i) {
            const PaperCell &mc = m.cells.at(row.key)[i];
            const PaperCell &pc = paper.at(row.key)[i];
            // Compare the upper bounds (the measured copy variant) and
            // slopes.
            bool same = mc.hi == pc.hi && mc.slope == pc.slope;
            double delta = (mc.hi - pc.hi) + 10 * (mc.slope - pc.slope);
            if (same) {
                cols.push_back("=");
                ++exact;
            } else {
                cols.push_back(
                    (mc.slope ? fmtLinear(mc.lo, mc.slope)
                              : fmt(mc.hi)) + "/" +
                    (pc.slope ? fmtLinear(pc.lo, pc.slope)
                              : fmt(pc.hi)));
                if (std::abs(delta) <= 3.0)
                    ++close;
                else
                    ++off;
            }
        }
        tt.row(cols);
    }
    tt.print(std::cout);
    std::cout << "\ncells exact: " << exact << ", within 3 cycles: "
              << close << ", larger deviation: " << off << "\n";
}

template <typename Cells>
void
writeCellsJson(std::ostream &os, const std::vector<std::string> &names,
               const Cells &cells)
{
    os << "{";
    bool first_row = true;
    for (const RowSpec &row : rowSpecs()) {
        os << (first_row ? "\n" : ",\n");
        first_row = false;
        os << "\"" << stats::jsonEscape(row.key) << "\":{"
           << "\"section\":\"" << row.section << "\",\"label\":\""
           << stats::jsonEscape(row.label) << "\",\"cells\":{";
        const auto &arr = cells.at(row.key);
        for (size_t i = 0; i < names.size(); ++i) {
            os << (i ? "," : "") << "\""
               << stats::jsonEscape(names[i])
               << "\":{\"lo\":" << stats::jsonNum(arr[i].lo)
               << ",\"hi\":" << stats::jsonNum(arr[i].hi)
               << ",\"slope\":" << stats::jsonNum(arr[i].slope) << "}";
        }
        os << "}}";
    }
    os << "\n}";
}

int
runTable1(const exp::Context &ctx)
{
    // The registered model set (the paper's six, plus any registry
    // extensions such as the far off-chip variant).
    const auto &infos = ni::registeredModels();
    // --offchip-delay overrides every model's off-chip latency (the
    // legacy flag); without it each model keeps its registered delay.
    std::vector<ni::Model> models;
    std::vector<std::string> labels, names;
    for (const ni::ModelInfo &info : infos) {
        models.push_back(ctx.given("--offchip-delay")
                             ? info.model.withOffchipDelay(
                                   ctx.num("--offchip-delay"))
                             : info.model);
        labels.push_back(info.tableLabel);
        names.push_back(info.name);
    }
    bool no_overlap = ctx.on("--no-overlap");
    Cycles offchip = static_cast<Cycles>(ctx.num("--offchip-delay"));

    std::cout << "Table 1 reproduction: RISC cycles to send, dispatch, "
                 "and process each message type\n"
              << "(measured by executing handler kernels; off-chip "
                 "load-use delay = " << offchip << " cycles)\n";

    if (no_overlap) {
        std::cout << "(cache-mapped optimized handlers dispatch "
                     "without the NextMsgIp overlap)\n";
    }
    MeasuredTable measured = measureAll(models, no_overlap, ctx);
    printTable("Measured (this reproduction)", labels, measured.cells);
    static const std::vector<std::string> paper_labels{
        "Opt Reg", "Opt On-chip", "Opt Off-chip", "Basic Reg",
        "Basic On-chip", "Basic Off-chip"};
    printTable("Paper (Henry & Joerg 1992, Table 1)", paper_labels,
               paperTable1());
    printComparison(measured, paperTable1());

    ctx.writeJson([&](std::ostream &os) {
        std::vector<std::string> paper_names;
        for (const ni::Model &m : ni::paperModels())
            paper_names.push_back(m.name());
        os << "{\"config\":{\"offchipDelay\":" << offchip
           << ",\"noOverlap\":" << (no_overlap ? "true" : "false")
           << "},\n\"measured\":";
        writeCellsJson(os, names, measured.cells);
        os << ",\n\"paper\":";
        writeCellsJson(os, paper_names, paperTable1());
        os << "}\n";
    });
    return 0;
}

} // namespace

void
registerTable1(exp::ExperimentRegistry &reg)
{
    reg.add({
        "table1",
        "Table 1: per-message send/dispatch/process cycles per model",
        {
            {"--offchip-delay", "N",
             "off-chip load-use delay override (Section 4.2.3 "
             "studies 8)", "2", false},
            {"--no-overlap", "",
             "dispatch without the NextMsgIp overlap", "", true},
        },
        true,   // --json
        true,   // --trace
        runTable1,
    });
}

} // namespace bench
} // namespace tcpni
