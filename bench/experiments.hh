/**
 * @file
 * The benchmark experiment definitions (Table 1, Figure 12, the
 * optimization ablation, the off-chip latency sensitivity, and the
 * host-side performance bench), registered into the shared
 * exp::ExperimentRegistry.  The `tcpni_bench` driver and the thin
 * compatibility binaries (`table1`, `figure12`, ...) all dispatch
 * through this registry.
 */

#ifndef TCPNI_BENCH_EXPERIMENTS_HH
#define TCPNI_BENCH_EXPERIMENTS_HH

#include "sim/experiment.hh"

namespace tcpni
{
namespace bench
{

void registerTable1(exp::ExperimentRegistry &reg);
void registerFigure12(exp::ExperimentRegistry &reg);
void registerAblation(exp::ExperimentRegistry &reg);
void registerOffchipLatency(exp::ExperimentRegistry &reg);
void registerHostPerf(exp::ExperimentRegistry &reg);
void registerOnNi(exp::ExperimentRegistry &reg);

/** Register every benchmark experiment. */
inline void
registerAll(exp::ExperimentRegistry &reg)
{
    registerTable1(reg);
    registerFigure12(reg);
    registerAblation(reg);
    registerOffchipLatency(reg);
    registerHostPerf(reg);
    registerOnNi(reg);
}

} // namespace bench
} // namespace tcpni

#endif // TCPNI_BENCH_EXPERIMENTS_HH
