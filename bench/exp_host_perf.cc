/**
 * @file
 * Host-side performance of the simulator itself (not of the modeled
 * machine): wall-time for the Table-1 model sweep run serially vs on
 * the SweepRunner thread pool, raw event-kernel throughput
 * (events/second) for the calendar queue vs the reference binary
 * heap, a per-event-type self-profile of where the simulator's own
 * wall-time goes, and the sweep pool's work-stealing balance.
 * Results go to stdout and to a JSON file for CI tracking.
 *
 * The JSON leads with the host's hardware concurrency; a machine with
 * fewer than two hardware threads cannot demonstrate a sweep speedup,
 * so the record is marked "degraded": true and the speedup numbers
 * should not be compared across hosts.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "experiments.hh"
#include "ni/model_registry.hh"
#include "sim/event_queue.hh"
#include "sim/sweep.hh"
#include "tam/expand.hh"

namespace tcpni
{
namespace bench
{

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Wall-time of the full registered-model Table-1 kernel sweep.
 *  When @p stats is non-null the pool's work-claiming accounting for
 *  the run is copied out. */
double
timeModelSweep(unsigned jobs, SweepRunner::RunStats *stats = nullptr)
{
    const auto &models = ni::registeredModels();
    SweepRunner sweep(jobs);
    auto t0 = std::chrono::steady_clock::now();
    sweep.run(models.size(), [&](size_t i) {
        tam::measureCommCosts(models[i].model);
    });
    double sec = seconds(t0);
    if (stats)
        *stats = sweep.lastRunStats();
    return sec;
}

/** Re-run the model sweep serially with per-event-type profiling
 *  enabled: every EventQueue constructed on this thread times each
 *  process() call and attributes it to the event's name().  The
 *  timing overhead perturbs the run, so this is kept separate from
 *  the wall-time measurements above. */
evprof::Profile
profileModelSweep()
{
    const auto &models = ni::registeredModels();
    evprof::setEnabled(true);
    evprof::take();  // drop anything a previous run accumulated
    SweepRunner(1).run(models.size(), [&](size_t i) {
        tam::measureCommCosts(models[i].model);
    });
    evprof::setEnabled(false);
    return evprof::take();
}

/** A self-rescheduling event with a cheap deterministic PRNG choosing
 *  the next delta: mostly short hops inside the calendar ring, with
 *  an occasional far-future jump into the overflow heap. */
class ChurnEvent : public Event
{
  public:
    ChurnEvent(EventQueue &eq, uint64_t seed, uint64_t budget)
        : eq_(eq), state_(seed), left_(budget)
    {}

    void
    process() override
    {
        if (--left_ == 0)
            return;
        state_ = state_ * 6364136223846793005ULL +
                 1442695040888963407ULL;
        uint32_t r = static_cast<uint32_t>(state_ >> 56);
        Tick delta = (r & 0xf0) == 0xf0 ? 2000 + (r & 0xf)
                                        : 1 + (r & 0x7);
        eq_.schedule(this, eq_.curTick() + delta);
    }

    std::string name() const override { return "churn"; }

  private:
    EventQueue &eq_;
    uint64_t state_;
    uint64_t left_;
};

/** Events/second for one kernel implementation at a given pending-
 *  event population (the heap's cost grows with the population; the
 *  calendar ring's does not). */
double
timeEventKernel(EventQueue::Impl impl, uint64_t total_events,
                unsigned population)
{
    EventQueue eq(impl);
    std::vector<std::unique_ptr<ChurnEvent>> events;
    for (unsigned i = 0; i < population; ++i) {
        events.push_back(std::make_unique<ChurnEvent>(
            eq, 0x9e3779b97f4a7c15ULL * (i + 1),
            total_events / population));
        eq.schedule(events.back().get(), i % 8);
    }
    auto t0 = std::chrono::steady_clock::now();
    eq.run();
    double sec = seconds(t0);
    return static_cast<double>(eq.numProcessed()) / sec;
}

int
runHostPerf(const exp::Context &ctx)
{
    unsigned jobs = ctx.jobs;
    uint64_t events = static_cast<uint64_t>(ctx.num("--events"));
    std::string out_file = ctx.str("--out");
    const unsigned hw_threads = SweepRunner::defaultJobs();
    const bool degraded = hw_threads < 2;
    if (jobs == 0)
        jobs = hw_threads;

    std::cout << "Host performance (simulator wall-time; "
              << hw_threads << " hardware thread"
              << (hw_threads == 1 ? "" : "s") << ")\n";
    if (degraded) {
        std::cout << "WARNING: fewer than 2 hardware threads -- the "
                     "sweep speedup cannot be\ndemonstrated on this "
                     "host; results are marked degraded.\n";
    }
    std::cout << "\n";

    // Warm up allocators and code paths, then measure.
    timeModelSweep(1);
    double serial = timeModelSweep(1);
    SweepRunner::RunStats pool;
    double parallel = timeModelSweep(jobs, &pool);
    double speedup = serial / parallel;
    std::printf("Table-1 model sweep: serial %.3fs, --jobs %u %.3fs "
                "(%.2fx speedup)\n",
                serial, jobs, parallel, speedup);
    for (unsigned w = 0; w < pool.workers; ++w) {
        std::printf("  worker %u: %llu tasks claimed, %.3fs busy "
                    "(%.0f%% of wall)\n",
                    w,
                    static_cast<unsigned long long>(pool.claimed[w]),
                    pool.busySeconds[w],
                    pool.wallSeconds > 0
                        ? pool.busySeconds[w] / pool.wallSeconds * 100
                        : 0.0);
    }

    // Where the simulator's own time goes, by event type.
    evprof::Profile prof = profileModelSweep();
    uint64_t prof_events = 0;
    double prof_seconds = 0;
    for (const auto &[type, ts] : prof) {
        prof_events += ts.count;
        prof_seconds += ts.seconds;
    }
    std::printf("\nSelf-profile (serial model sweep, instrumented): "
                "%llu events, %.3fs in process()\n",
                static_cast<unsigned long long>(prof_events),
                prof_seconds);
    for (const auto &[type, ts] : prof) {
        std::printf("  %-16s %10llu events  %8.3fs  (%.1f%%)\n",
                    type.c_str(),
                    static_cast<unsigned long long>(ts.count),
                    ts.seconds,
                    prof_seconds > 0 ? ts.seconds / prof_seconds * 100
                                     : 0.0);
    }

    // The population sweep shows where the calendar ring pays off:
    // the heap's per-event cost grows with the pending-event count,
    // the ring's does not.
    static const unsigned pops[] = {64, 512, 4096};
    double cal[3], heap[3];
    timeEventKernel(EventQueue::Impl::calendar, events / 10, 64);
    for (size_t i = 0; i < 3; ++i) {
        cal[i] = timeEventKernel(EventQueue::Impl::calendar, events,
                                 pops[i]);
        heap[i] = timeEventKernel(EventQueue::Impl::binaryHeap,
                                  events, pops[i]);
        std::printf("Event kernel (%llu events, %u pending): calendar "
                    "%.2fM ev/s, binary heap %.2fM ev/s (%.2fx)\n",
                    static_cast<unsigned long long>(events), pops[i],
                    cal[i] / 1e6, heap[i] / 1e6, cal[i] / heap[i]);
    }

    std::ofstream os(out_file);
    if (!os)
        fatal("cannot open --out file '%s'", out_file.c_str());
    os << "{\"host\":{\"hardwareConcurrency\":" << hw_threads
       << ",\"degraded\":" << (degraded ? "true" : "false") << "},\n"
       << "\"table1Sweep\":{\"jobs\":" << jobs << ",\"serialSec\":"
       << serial << ",\"parallelSec\":" << parallel << ",\"speedup\":"
       << speedup << "},\n"
       << "\"sweepRunner\":{\"workers\":" << pool.workers
       << ",\"tasks\":" << pool.tasks << ",\"wallSec\":"
       << pool.wallSeconds << ",\"perWorker\":[";
    for (unsigned w = 0; w < pool.workers; ++w) {
        os << (w ? "," : "") << "{\"claimed\":" << pool.claimed[w]
           << ",\"busySec\":" << pool.busySeconds[w] << "}";
    }
    os << "]},\n\"selfProfile\":{\"events\":" << prof_events
       << ",\"processSec\":" << prof_seconds << ",\"eventsPerSec\":"
       << (prof_seconds > 0 ? prof_events / prof_seconds : 0)
       << ",\"byType\":{";
    {
        bool first = true;
        for (const auto &[type, ts] : prof) {
            os << (first ? "" : ",") << "\n\""
               << stats::jsonEscape(type) << "\":{\"count\":"
               << ts.count << ",\"seconds\":" << ts.seconds << "}";
            first = false;
        }
    }
    os << "}},\n"
       << "\"eventKernel\":{\"events\":" << events
       << ",\"populations\":[";
    for (size_t i = 0; i < 3; ++i) {
        os << (i ? ",\n" : "\n") << "{\"pending\":" << pops[i]
           << ",\"calendarEventsPerSec\":" << cal[i]
           << ",\"heapEventsPerSec\":" << heap[i]
           << ",\"calendarVsHeap\":" << cal[i] / heap[i] << "}";
    }
    os << "]}}\n";
    std::cout << "wrote " << out_file << "\n";
    return 0;
}

} // namespace

void
registerHostPerf(exp::ExperimentRegistry &reg)
{
    reg.add({
        "host_perf",
        "Host wall-time: sweep-pool speedup and event-kernel "
        "throughput",
        {
            {"--events", "N", "events per kernel-throughput "
             "measurement", "1000000", false},
            {"--out", "FILE", "JSON output file", "BENCH_host.json",
             false},
        },
        false,  // JSON goes to --out, not --json
        false,  // no --trace
        runHostPerf,
    });
}

} // namespace bench
} // namespace tcpni
