/**
 * @file
 * Host-side performance of the simulator itself (not of the modeled
 * machine): wall-time for the Table-1 model sweep run serially vs on
 * the SweepRunner thread pool, and raw event-kernel throughput
 * (events/second) for the calendar queue vs the reference binary
 * heap.  Results go to stdout and to a JSON file for CI tracking.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "experiments.hh"
#include "ni/model_registry.hh"
#include "sim/event_queue.hh"
#include "sim/sweep.hh"
#include "tam/expand.hh"

namespace tcpni
{
namespace bench
{

namespace
{

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Wall-time of the full registered-model Table-1 kernel sweep. */
double
timeModelSweep(unsigned jobs)
{
    const auto &models = ni::registeredModels();
    auto t0 = std::chrono::steady_clock::now();
    SweepRunner(jobs).run(models.size(), [&](size_t i) {
        tam::measureCommCosts(models[i].model);
    });
    return seconds(t0);
}

/** A self-rescheduling event with a cheap deterministic PRNG choosing
 *  the next delta: mostly short hops inside the calendar ring, with
 *  an occasional far-future jump into the overflow heap. */
class ChurnEvent : public Event
{
  public:
    ChurnEvent(EventQueue &eq, uint64_t seed, uint64_t budget)
        : eq_(eq), state_(seed), left_(budget)
    {}

    void
    process() override
    {
        if (--left_ == 0)
            return;
        state_ = state_ * 6364136223846793005ULL +
                 1442695040888963407ULL;
        uint32_t r = static_cast<uint32_t>(state_ >> 56);
        Tick delta = (r & 0xf0) == 0xf0 ? 2000 + (r & 0xf)
                                        : 1 + (r & 0x7);
        eq_.schedule(this, eq_.curTick() + delta);
    }

    std::string name() const override { return "churn"; }

  private:
    EventQueue &eq_;
    uint64_t state_;
    uint64_t left_;
};

/** Events/second for one kernel implementation at a given pending-
 *  event population (the heap's cost grows with the population; the
 *  calendar ring's does not). */
double
timeEventKernel(EventQueue::Impl impl, uint64_t total_events,
                unsigned population)
{
    EventQueue eq(impl);
    std::vector<std::unique_ptr<ChurnEvent>> events;
    for (unsigned i = 0; i < population; ++i) {
        events.push_back(std::make_unique<ChurnEvent>(
            eq, 0x9e3779b97f4a7c15ULL * (i + 1),
            total_events / population));
        eq.schedule(events.back().get(), i % 8);
    }
    auto t0 = std::chrono::steady_clock::now();
    eq.run();
    double sec = seconds(t0);
    return static_cast<double>(eq.numProcessed()) / sec;
}

int
runHostPerf(const exp::Context &ctx)
{
    unsigned jobs = ctx.jobs;
    uint64_t events = static_cast<uint64_t>(ctx.num("--events"));
    std::string out_file = ctx.str("--out");
    if (jobs == 0)
        jobs = SweepRunner::defaultJobs();

    std::cout << "Host performance (simulator wall-time; "
              << SweepRunner::defaultJobs()
              << " hardware threads)\n\n";

    // Warm up allocators and code paths, then measure.
    timeModelSweep(1);
    double serial = timeModelSweep(1);
    double parallel = timeModelSweep(jobs);
    double speedup = serial / parallel;
    std::printf("Table-1 model sweep: serial %.3fs, --jobs %u %.3fs "
                "(%.2fx speedup)\n",
                serial, jobs, parallel, speedup);

    // The population sweep shows where the calendar ring pays off:
    // the heap's per-event cost grows with the pending-event count,
    // the ring's does not.
    static const unsigned pops[] = {64, 512, 4096};
    double cal[3], heap[3];
    timeEventKernel(EventQueue::Impl::calendar, events / 10, 64);
    for (size_t i = 0; i < 3; ++i) {
        cal[i] = timeEventKernel(EventQueue::Impl::calendar, events,
                                 pops[i]);
        heap[i] = timeEventKernel(EventQueue::Impl::binaryHeap,
                                  events, pops[i]);
        std::printf("Event kernel (%llu events, %u pending): calendar "
                    "%.2fM ev/s, binary heap %.2fM ev/s (%.2fx)\n",
                    static_cast<unsigned long long>(events), pops[i],
                    cal[i] / 1e6, heap[i] / 1e6, cal[i] / heap[i]);
    }

    std::ofstream os(out_file);
    if (!os)
        fatal("cannot open --out file '%s'", out_file.c_str());
    os << "{\"host\":{\"hardwareConcurrency\":"
       << SweepRunner::defaultJobs() << "},\n"
       << "\"table1Sweep\":{\"jobs\":" << jobs << ",\"serialSec\":"
       << serial << ",\"parallelSec\":" << parallel << ",\"speedup\":"
       << speedup << "},\n"
       << "\"eventKernel\":{\"events\":" << events
       << ",\"populations\":[";
    for (size_t i = 0; i < 3; ++i) {
        os << (i ? ",\n" : "\n") << "{\"pending\":" << pops[i]
           << ",\"calendarEventsPerSec\":" << cal[i]
           << ",\"heapEventsPerSec\":" << heap[i]
           << ",\"calendarVsHeap\":" << cal[i] / heap[i] << "}";
    }
    os << "]}}\n";
    std::cout << "wrote " << out_file << "\n";
    return 0;
}

} // namespace

void
registerHostPerf(exp::ExperimentRegistry &reg)
{
    reg.add({
        "host_perf",
        "Host wall-time: sweep-pool speedup and event-kernel "
        "throughput",
        {
            {"--events", "N", "events per kernel-throughput "
             "measurement", "1000000", false},
            {"--out", "FILE", "JSON output file", "BENCH_host.json",
             false},
        },
        false,  // JSON goes to --out, not --json
        false,  // no --trace
        runHostPerf,
    });
}

} // namespace bench
} // namespace tcpni
