/**
 * @file
 * Regenerates Figure 12 of the paper: dynamic 88100 cycle counts for
 * the Matrix Multiply and Gamteb programs under the six network
 * interface models, split into non-message work, dispatching, and all
 * other communication.  Also evaluates the paper's Section 4.2.3 /
 * Section 5 headline claims:
 *
 *   A. optimized register-mapped vs basic off-chip: communication
 *      cost drops ~5x, total execution ~40%, and the message-passing
 *      share falls from ~51% to ~17%;
 *   B. the slowest optimized implementation beats the fastest
 *      unoptimized one;
 *   D. the optimized off-chip interface alone improves communication
 *      ~2x over the basic off-chip interface.
 *
 * Flags:
 *   --n N          matrix dimension for Matrix Multiply (default 100)
 *   --particles P  Gamteb source particles (default 16)
 *   --offchip-delay D   off-chip load-use delay (default 2)
 *   --json FILE    write the measured costs and bars as JSON
 *   --trace FILE   write a Chrome trace of the kernel messages
 *                  (forces --jobs 1: the trace sink is thread-local)
 *   --jobs N       run the six model measurements and the two TAM
 *                  programs on N worker threads (default: hardware
 *                  concurrency)
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "apps/gamteb.hh"
#include "apps/matmul.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/trace.hh"
#include "sim/sweep.hh"
#include "tam/expand.hh"

using namespace tcpni;

namespace
{

std::string
fmtK(double v)
{
    char buf[32];
    if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
    return buf;
}

std::string
pct(double v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100);
    return buf;
}

struct ProgramBars
{
    std::string name;
    tam::TamStats stats;
    std::vector<tam::Figure12Bar> bars;     // per model
};

void
printProgram(const ProgramBars &p)
{
    std::cout << "\n--- " << p.name << " ---\n";
    TextTable t;
    t.header({"Model", "Work", "Dispatch", "Other comm", "Total",
              "Comm share"});
    auto models = ni::allModels();
    for (size_t i = 0; i < models.size(); ++i) {
        const tam::Figure12Bar &b = p.bars[i];
        t.row({models[i].name(), fmtK(b.work), fmtK(b.dispatch),
               fmtK(b.otherComm), fmtK(b.total()),
               pct(b.commFraction())});
    }
    t.print(std::cout);

    // ASCII rendition of the stacked bars (normalized to the worst
    // model).
    double max_total = 0;
    for (const auto &b : p.bars)
        max_total = std::max(max_total, b.total());
    std::cout << "\n  (#: work, D: dispatch, C: other communication; "
                 "60 columns = worst model)\n";
    for (size_t i = 0; i < models.size(); ++i) {
        const tam::Figure12Bar &b = p.bars[i];
        auto cols = [&](double v) {
            return static_cast<int>(v / max_total * 60 + 0.5);
        };
        std::printf("  %-24s |%s%s%s\n", models[i].name().c_str(),
                    std::string(cols(b.work), '#').c_str(),
                    std::string(cols(b.dispatch), 'D').c_str(),
                    std::string(cols(b.otherComm), 'C').c_str());
    }
}

void
printClaims(const ProgramBars &p)
{
    // Model order: 0 opt-reg, 1 opt-on, 2 opt-off, 3 bas-reg,
    // 4 bas-on, 5 bas-off.
    const tam::Figure12Bar &best = p.bars[0];
    const tam::Figure12Bar &worst = p.bars[5];

    double comm_best = best.dispatch + best.otherComm;
    double comm_worst = worst.dispatch + worst.otherComm;

    double sd_best = best.sending + best.dispatch;
    double sd_worst = worst.sending + worst.dispatch;
    std::cout << "\n  Claim A (opt register vs basic off-chip):\n"
              << "    send+dispatch reduction: "
              << sd_worst / sd_best
              << "x (paper: \"as much as five fold\")\n"
              << "    total communication reduction: "
              << comm_worst / comm_best << "x\n"
              << "    total execution cut:     "
              << pct(1 - best.total() / worst.total())
              << " (paper: ~40%)\n"
              << "    comm share:              "
              << pct(worst.commFraction()) << " -> "
              << pct(best.commFraction())
              << " (paper: 51% -> 17%)\n";

    double slowest_opt = 0, fastest_basic = 1e300;
    for (int i = 0; i < 3; ++i)
        slowest_opt = std::max(slowest_opt, p.bars[i].total());
    for (int i = 3; i < 6; ++i)
        fastest_basic = std::min(fastest_basic, p.bars[i].total());
    std::cout << "  Claim B: slowest optimized ("
              << fmtK(slowest_opt) << ") "
              << (slowest_opt < fastest_basic ? "beats" : "LOSES TO")
              << " fastest basic (" << fmtK(fastest_basic) << ")\n";

    double comm_off_opt = p.bars[2].dispatch + p.bars[2].otherComm;
    std::cout << "  Claim D: optimized off-chip improves communication "
              << comm_worst / comm_off_opt << "x over basic off-chip "
              << "(paper: ~2x)\n";
}

std::string
jnum(double v)
{
    char buf[40];
    if (!std::isfinite(v))
        return "0";
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

void
writeJson(std::ostream &os, unsigned n, unsigned particles,
          Cycles offchip, const std::vector<tam::CommCosts> &costs,
          const ProgramBars &mm, const ProgramBars &gt,
          uint64_t mm_msgs, uint64_t mm_flops, uint64_t gt_msgs)
{
    os << "{\"config\":{\"n\":" << n << ",\"particles\":" << particles
       << ",\"offchipDelay\":" << offchip << "},\n\"models\":{";
    for (size_t i = 0; i < costs.size(); ++i) {
        const tam::CommCosts &c = costs[i];
        os << (i ? ",\n" : "\n") << "\""
           << stats::jsonEscape(c.model.name()) << "\":{"
           << "\"send\":{\"send0\":" << jnum(c.sendSend0)
           << ",\"send1\":" << jnum(c.sendSend1)
           << ",\"send2\":" << jnum(c.sendSend2)
           << ",\"read\":" << jnum(c.sendRead)
           << ",\"write\":" << jnum(c.sendWrite)
           << ",\"pread\":" << jnum(c.sendPRead)
           << ",\"pwrite\":" << jnum(c.sendPWrite) << "},"
           << "\"dispatch\":" << jnum(c.dispatch) << ","
           << "\"process\":{\"send0\":" << jnum(c.procSend0)
           << ",\"send1\":" << jnum(c.procSend1)
           << ",\"send2\":" << jnum(c.procSend2)
           << ",\"read\":" << jnum(c.procRead)
           << ",\"write\":" << jnum(c.procWrite)
           << ",\"preadFull\":" << jnum(c.procPReadFull)
           << ",\"preadEmpty\":" << jnum(c.procPReadEmpty)
           << ",\"preadDeferred\":" << jnum(c.procPReadDeferred)
           << ",\"pwriteEmpty\":" << jnum(c.procPWriteEmpty)
           << ",\"pwriteDeferredBase\":" << jnum(c.procPWriteDefBase)
           << ",\"pwriteDeferredSlope\":" << jnum(c.procPWriteDefSlope)
           << "}}";
    }
    os << "},\n\"programs\":{";
    auto models = ni::allModels();
    auto program = [&](const char *key, const ProgramBars &p,
                       uint64_t msgs, uint64_t flops) {
        os << "\"" << key << "\":{\"name\":\""
           << stats::jsonEscape(p.name) << "\",\"messages\":" << msgs
           << ",\"flops\":" << flops << ",\"models\":{";
        for (size_t i = 0; i < p.bars.size(); ++i) {
            const tam::Figure12Bar &b = p.bars[i];
            os << (i ? ",\n" : "\n") << "\""
               << stats::jsonEscape(models[i].name()) << "\":{"
               << "\"work\":" << jnum(b.work)
               << ",\"dispatch\":" << jnum(b.dispatch)
               << ",\"sending\":" << jnum(b.sending)
               << ",\"otherComm\":" << jnum(b.otherComm)
               << ",\"total\":" << jnum(b.total())
               << ",\"commFraction\":" << jnum(b.commFraction())
               << "}";
        }
        os << "}}";
    };
    program("matmul", mm, mm_msgs, mm_flops);
    os << ",\n";
    program("gamteb", gt, gt_msgs, 0);
    os << "}}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned n = 100, particles = 16;
    Cycles offchip = 2;
    unsigned jobs = 0;      // 0: hardware concurrency
    std::string json_file, trace_file;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--n") && i + 1 < argc)
            n = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--particles") && i + 1 < argc)
            particles = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--offchip-delay") && i + 1 < argc)
            offchip = static_cast<Cycles>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_file = argv[++i];
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_file = argv[++i];
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    }

    trace::TraceSink lifecycle_sink;
    if (!trace_file.empty()) {
        // The lifecycle sink is thread-local: tracing needs every
        // simulation on this thread.
        trace::setSink(&lifecycle_sink);
        jobs = 1;
    }

    logging::quiet = true;

    std::cout << "Figure 12 reproduction: dynamic cycle counts for "
              << n << "x" << n << " Matrix Multiply and " << particles
              << " Gamteb\nunder the six interface models (message "
                 "costs measured from the Table-1 kernels).\n";

    // Eight independent simulations: the six models' message-cost
    // measurements plus the two TAM program runs (model-independent,
    // exactly as in the paper's methodology).  Fan them out across
    // the sweep pool; every result lands in its own slot, so the
    // output is identical whatever the thread count.
    auto models = ni::allModels();
    std::vector<tam::CommCosts> costs(models.size());
    apps::MatMulResult mm;
    apps::GamtebResult gt;
    SweepRunner sweep(jobs);
    sweep.run(models.size() + 2, [&](size_t i) {
        if (i < models.size()) {
            costs[i] = tam::measureCommCosts(models[i], offchip);
        } else if (i == models.size()) {
            std::fprintf(stderr, "running matrix multiply (%ux%u)...\n",
                         n, n);
            mm = apps::runMatMul(n, 4);
        } else {
            std::fprintf(stderr, "running gamteb (%u particles)...\n",
                         particles);
            gt = apps::runGamteb(particles);
        }
    });
    if (!mm.verified)
        fatal("matrix multiply failed verification");
    if (!gt.conserved())
        fatal("gamteb particle accounting failed");

    ProgramBars mm_bars{"Matrix Multiply " + std::to_string(n) + "x" +
                            std::to_string(n),
                        mm.stats, {}};
    ProgramBars gt_bars{"Gamteb " + std::to_string(particles),
                        gt.stats, {}};
    for (const tam::CommCosts &c : costs) {
        mm_bars.bars.push_back(tam::expand(mm.stats, c));
        gt_bars.bars.push_back(tam::expand(gt.stats, c));
    }

    std::cout << "\nMatrix Multiply: " << mm.stats.totalMessages()
              << " messages, " << mm.stats.flops() << " flops ("
              << mm.flopsPerMessage
              << " flops/message; paper quotes ~3)\n";
    std::cout << "Gamteb: " << gt.stats.totalMessages()
              << " messages, " << gt.totalParticles << " particles ("
              << gt.escaped << " escaped, " << gt.absorbed
              << " absorbed, " << gt.pairProductions << " pairs, "
              << gt.collisions << " collisions)\n";

    printProgram(mm_bars);
    printClaims(mm_bars);
    printProgram(gt_bars);
    printClaims(gt_bars);

    if (!json_file.empty()) {
        std::ofstream os(json_file);
        if (!os)
            fatal("cannot open --json file '%s'", json_file.c_str());
        writeJson(os, n, particles, offchip, costs, mm_bars, gt_bars,
                  mm.stats.totalMessages(), mm.stats.flops(),
                  gt.stats.totalMessages());
        std::cout << "\nwrote JSON results to " << json_file << "\n";
    }
    if (!trace_file.empty()) {
        trace::setSink(nullptr);
        std::ofstream os(trace_file);
        if (!os)
            fatal("cannot open --trace file '%s'", trace_file.c_str());
        lifecycle_sink.writeChromeTrace(os);
        std::cout << "wrote Chrome trace ("
                  << lifecycle_sink.completeLifecycles()
                  << " complete message lifecycles) to " << trace_file
                  << "\n";
    }
    return 0;
}
