/**
 * @file
 * The unified experiment driver: `tcpni_bench <experiment> [flags]`
 * runs any registered experiment with shared --jobs/--json/--trace
 * handling; `tcpni_bench list` shows what is registered.
 *
 * Compiled with -DTCPNI_WRAPPER="<name>" the same main becomes that
 * experiment's fixed-entry compatibility wrapper (the `table1`,
 * `figure12`, ... binaries).
 */

#include "experiments.hh"

int
main(int argc, char **argv)
{
    tcpni::exp::ExperimentRegistry reg;
    tcpni::bench::registerAll(reg);
#ifdef TCPNI_WRAPPER
    return tcpni::exp::runExperiment(reg, TCPNI_WRAPPER, argc - 1,
                                     argv + 1);
#else
    return tcpni::exp::driverMain(reg, argc, argv);
#endif
}
