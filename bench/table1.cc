/**
 * @file
 * Regenerates Table 1 of the paper: the number of RISC processor
 * cycles each network interface implementation takes to send a
 * message, to dispatch an arrived message, and to process a message --
 * measured by executing the hand-written handler kernels on the CPU
 * timing model (not by printing constants).
 *
 * Output: the measured table in the paper's layout, the paper's
 * published table, and a per-cell comparison.
 *
 * Flags:
 *   --offchip-delay N   off-chip load-use delay (default 2; Section
 *                       4.2.3 studies 8)
 *   --no-overlap        dispatch without the NextMsgIp overlap
 *   --json FILE         write measured + paper cells as JSON
 *   --trace FILE        write a Chrome trace of the kernel messages
 *                       (forces --jobs 1: the trace sink is
 *                       thread-local)
 *   --jobs N            measure the six models on N worker threads
 *                       (default: hardware concurrency)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/trace.hh"
#include "cost/table1.hh"
#include "sim/sweep.hh"

using namespace tcpni;
using namespace tcpni::cost;
using msg::Kind;

namespace
{

std::string
fmt(double v)
{
    char buf[32];
    if (v == static_cast<long>(v))
        std::snprintf(buf, sizeof(buf), "%ld", static_cast<long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

std::string
fmtRange(double lo, double hi)
{
    if (lo == hi)
        return fmt(lo);
    return fmt(lo) + "-" + fmt(hi);
}

std::string
fmtLinear(double base, double slope)
{
    if (slope == 0)
        return fmt(base);
    return fmt(base) + "+" + fmt(slope) + "n";
}

struct MeasuredTable
{
    // row key -> 6 cells (lo, hi, slope), same layout as paperTable1().
    std::map<std::string, std::array<PaperCell, 6>> cells;
};

/** One model's column of the table, keyed by row. */
using ModelCells = std::map<std::string, PaperCell>;

ModelCells
measureModel(const ni::Model &model, Cycles offchip_delay,
             bool no_overlap)
{
    ModelCells cells;
    Table1Harness h(model, offchip_delay, false, no_overlap);
    std::fprintf(stderr, "  measuring %s...\n", model.name().c_str());

    static const Kind kinds[] = {Kind::send0, Kind::send1,
                                 Kind::send2, Kind::pread,
                                 Kind::pwrite, Kind::read,
                                 Kind::write};
    for (Kind k : kinds) {
        double copy_cost = h.sendingCost(k);
        double lo = copy_cost;
        if (model.placement == ni::Placement::registerFile)
            lo = copy_cost - msg::directlyComputableWords(k);
        cells[sendRowKey(k)] = {lo, copy_cost, 0};
    }

    // Dispatch, measured from the Read stream (the paper's
    // DISPATCHING row is message-type independent).
    ProcCost read_cost = h.processingCost(ProcCase::read);
    cells["dispatch"] = {read_cost.dispatching, read_cost.dispatching,
                         0};

    static const ProcCase cases[] = {
        ProcCase::send0, ProcCase::send1, ProcCase::send2,
        ProcCase::read, ProcCase::write, ProcCase::preadFull,
        ProcCase::preadEmpty, ProcCase::preadDeferred,
        ProcCase::pwriteEmpty,
    };
    for (ProcCase c : cases) {
        ProcCost pc = h.processingCost(c);
        cells[procRowKey(c)] = {pc.processing, pc.processing, 0};
    }

    LinearCost lin = h.pwriteDeferredCost();
    cells[procRowKey(ProcCase::pwriteDeferred)] = {lin.base, lin.base,
                                                   lin.slope};
    return cells;
}

MeasuredTable
measureAll(Cycles offchip_delay, bool no_overlap, unsigned jobs)
{
    // The six models are independent simulations: fan them out across
    // the sweep pool.  Results merge by model index, so the table is
    // identical whatever the thread count.
    auto models = ni::allModels();
    SweepRunner sweep(jobs);
    std::vector<ModelCells> columns = sweep.map<ModelCells>(
        models.size(), [&](size_t mi) {
            return measureModel(models[mi], offchip_delay, no_overlap);
        });

    MeasuredTable t;
    for (size_t mi = 0; mi < columns.size(); ++mi)
        for (const auto &[key, cell] : columns[mi])
            t.cells[key][mi] = cell;
    return t;
}

struct RowSpec
{
    const char *section;
    const char *label;
    std::string key;
};

std::vector<RowSpec>
rowSpecs()
{
    return {
        {"SENDING", "Send (0 words)", sendRowKey(Kind::send0)},
        {"", "Send (1 word)", sendRowKey(Kind::send1)},
        {"", "Send (2 words)", sendRowKey(Kind::send2)},
        {"", "PRead", sendRowKey(Kind::pread)},
        {"", "PWrite", sendRowKey(Kind::pwrite)},
        {"", "Read", sendRowKey(Kind::read)},
        {"", "Write", sendRowKey(Kind::write)},
        {"DISPATCHING", "-", "dispatch"},
        {"PROCESSING", "Send (0 words)", procRowKey(ProcCase::send0)},
        {"", "Send (1 word)", procRowKey(ProcCase::send1)},
        {"", "Send (2 words)", procRowKey(ProcCase::send2)},
        {"", "Read", procRowKey(ProcCase::read)},
        {"", "Write", procRowKey(ProcCase::write)},
        {"", "PRead (full)", procRowKey(ProcCase::preadFull)},
        {"", "PRead (empty)", procRowKey(ProcCase::preadEmpty)},
        {"", "PRead (deferred)", procRowKey(ProcCase::preadDeferred)},
        {"", "PWrite (empty)", procRowKey(ProcCase::pwriteEmpty)},
        {"", "PWrite (deferred)",
         procRowKey(ProcCase::pwriteDeferred)},
    };
}

void
printTable(const char *title,
           const std::map<std::string, std::array<PaperCell, 6>> &cells)
{
    std::cout << "\n=== " << title << " ===\n";
    TextTable tt;
    tt.header({"Action", "Message Type", "Opt Reg", "Opt On-chip",
               "Opt Off-chip", "Basic Reg", "Basic On-chip",
               "Basic Off-chip"});
    const char *last_section = "";
    for (const RowSpec &row : rowSpecs()) {
        if (row.section[0] && std::strcmp(row.section, last_section)) {
            tt.separator();
            last_section = row.section;
        }
        std::vector<std::string> cols{row.section, row.label};
        const auto &arr = cells.at(row.key);
        for (const PaperCell &c : arr) {
            cols.push_back(c.slope != 0 ? fmtLinear(c.lo, c.slope)
                                        : fmtRange(c.lo, c.hi));
        }
        tt.row(cols);
    }
    tt.print(std::cout);
}

void
printComparison(const MeasuredTable &m,
                const std::map<std::string,
                               std::array<PaperCell, 6>> &paper)
{
    std::cout << "\n=== Measured vs paper (per cell; '=' exact, "
                 "otherwise measured/paper) ===\n";
    TextTable tt;
    tt.header({"Row", "Opt Reg", "Opt On", "Opt Off", "Bas Reg",
               "Bas On", "Bas Off"});
    int exact = 0, close = 0, off = 0;
    for (const RowSpec &row : rowSpecs()) {
        std::vector<std::string> cols{std::string(row.section) + " " +
                                      row.label};
        for (size_t i = 0; i < 6; ++i) {
            const PaperCell &mc = m.cells.at(row.key)[i];
            const PaperCell &pc = paper.at(row.key)[i];
            // Compare the upper bounds (the measured copy variant) and
            // slopes.
            bool same = mc.hi == pc.hi && mc.slope == pc.slope;
            double delta = (mc.hi - pc.hi) + 10 * (mc.slope - pc.slope);
            if (same) {
                cols.push_back("=");
                ++exact;
            } else {
                cols.push_back(
                    (mc.slope ? fmtLinear(mc.lo, mc.slope)
                              : fmt(mc.hi)) + "/" +
                    (pc.slope ? fmtLinear(pc.lo, pc.slope)
                              : fmt(pc.hi)));
                if (std::abs(delta) <= 3.0)
                    ++close;
                else
                    ++off;
            }
        }
        tt.row(cols);
    }
    tt.print(std::cout);
    std::cout << "\ncells exact: " << exact << ", within 3 cycles: "
              << close << ", larger deviation: " << off << "\n";
}

std::string
jnum(double v)
{
    char buf[40];
    if (!std::isfinite(v))
        return "0";
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

void
writeCellsJson(std::ostream &os,
               const std::map<std::string,
                              std::array<PaperCell, 6>> &cells)
{
    auto models = ni::allModels();
    os << "{";
    bool first_row = true;
    for (const RowSpec &row : rowSpecs()) {
        os << (first_row ? "\n" : ",\n");
        first_row = false;
        os << "\"" << stats::jsonEscape(row.key) << "\":{"
           << "\"section\":\"" << row.section << "\",\"label\":\""
           << stats::jsonEscape(row.label) << "\",\"cells\":{";
        const auto &arr = cells.at(row.key);
        for (size_t i = 0; i < 6; ++i) {
            os << (i ? "," : "") << "\""
               << stats::jsonEscape(models[i].name())
               << "\":{\"lo\":" << jnum(arr[i].lo) << ",\"hi\":"
               << jnum(arr[i].hi) << ",\"slope\":"
               << jnum(arr[i].slope) << "}";
        }
        os << "}}";
    }
    os << "\n}";
}

} // namespace

int
main(int argc, char **argv)
{
    Cycles offchip = 2;
    bool no_overlap = false;
    unsigned jobs = 0;      // 0: hardware concurrency
    std::string json_file, trace_file;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--offchip-delay") && i + 1 < argc)
            offchip = static_cast<Cycles>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--no-overlap"))
            no_overlap = true;
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_file = argv[++i];
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_file = argv[++i];
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    }

    trace::TraceSink lifecycle_sink;
    if (!trace_file.empty()) {
        // The lifecycle sink is thread-local: tracing needs the
        // measurements on this thread.
        trace::setSink(&lifecycle_sink);
        jobs = 1;
    }

    logging::quiet = true;

    std::cout << "Table 1 reproduction: RISC cycles to send, dispatch, "
                 "and process each message type\n"
              << "(measured by executing handler kernels; off-chip "
                 "load-use delay = " << offchip << " cycles)\n";

    if (no_overlap) {
        std::cout << "(cache-mapped optimized handlers dispatch "
                     "without the NextMsgIp overlap)\n";
    }
    MeasuredTable measured = measureAll(offchip, no_overlap, jobs);
    printTable("Measured (this reproduction)", measured.cells);
    printTable("Paper (Henry & Joerg 1992, Table 1)", paperTable1());
    printComparison(measured, paperTable1());

    if (!json_file.empty()) {
        std::ofstream os(json_file);
        if (!os)
            fatal("cannot open --json file '%s'", json_file.c_str());
        os << "{\"config\":{\"offchipDelay\":" << offchip
           << ",\"noOverlap\":" << (no_overlap ? "true" : "false")
           << "},\n\"measured\":";
        writeCellsJson(os, measured.cells);
        os << ",\n\"paper\":";
        writeCellsJson(os, paperTable1());
        os << "}\n";
        std::cout << "\nwrote JSON results to " << json_file << "\n";
    }
    if (!trace_file.empty()) {
        trace::setSink(nullptr);
        std::ofstream os(trace_file);
        if (!os)
            fatal("cannot open --trace file '%s'", trace_file.c_str());
        lifecycle_sink.writeChromeTrace(os);
        std::cout << "wrote Chrome trace ("
                  << lifecycle_sink.completeLifecycles()
                  << " complete message lifecycles) to " << trace_file
                  << "\n";
    }
    return 0;
}
