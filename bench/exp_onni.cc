/**
 * @file
 * The On-NI occupancy experiment: run the congestion workload (a
 * message burst plus an I-structure PRead/PWrite phase) end to end on
 * a two-node mesh under every registered interface model, and report
 * where the handler cycles land.
 *
 * On the paper's six models the dispatch and processing cycles occupy
 * the host CPU.  On the On-NI models (registered behind
 * -DTCPNI_EXTRA_MODELS) the same kernels run on the HPU inside the
 * interface; the host CPU is occupied only by the proxy service loop
 * that absorbs the escaped deferred-list work.  The experiment prints
 * both occupancies side by side, plus the escape/budget counters the
 * HPU keeps.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "experiments.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "ni/model_registry.hh"
#include "ni/placement_policy.hh"
#include "sim/sweep.hh"
#include "system/system.hh"

namespace tcpni
{
namespace bench
{

namespace
{

/** Handler-occupancy split for one model's run. */
struct OnNiResult
{
    bool quiesced = false;
    bool ok = false;            //!< I-structure values all forwarded
    uint64_t cpuHandler = 0;    //!< dispatch+processing cycles, host CPU
    uint64_t hpuHandler = 0;    //!< dispatch+processing cycles, HPU
    uint64_t hostProxy = 0;     //!< host proxy escaped-work cycles
                                //!< (the idle poll spin is excluded)
    uint64_t escapes = 0;       //!< messages escaped through the ring
    uint64_t overruns = 0;      //!< handler-time budget overruns
    uint64_t maxHandler = 0;    //!< longest handler activation (cycles)
    uint64_t clientStalls = 0;  //!< client SEND-stall cycles
    uint64_t received = 0;      //!< messages the server NI accepted
    uint64_t ticks = 0;
};

/** The register-mapped optimized client driving the workload:
 *  FLOOD send2 bursts, ELEMS deferred PReads, ELEMS PWrites that wake
 *  them, collect the forwarded values, stop the server, halt.
 *
 *  @p sendip is the server's two-word-Send inlet address (type-0
 *  messages dispatch through word 1 on optimized interfaces); word 4
 *  carries the software-dispatch id for basic servers. */
std::string
clientProgram(unsigned flood, unsigned elems, Addr sendip)
{
    return ".equ FLOOD, " + std::to_string(flood) +
           "\n.equ ELEMS, " + std::to_string(elems) +
           "\n.equ SENDIP, " + std::to_string(sendip) +
           "\n.equ ID_SEND2, 8\n" + R"(
    entry:
        ; ---- congestion burst: FLOOD four-word Send messages ----
        li   o0, (1 << NODE_SHIFT) | 0x2000
        li   o1, SENDIP
        li   o2, 0x11
        li   o3, 0x22
        li   o4, ID_SEND2
        li   r1, FLOOD
    flood:
        send 0
        addi r1, r1, -1
        bnez r1, flood
        nop

        ; ---- ELEMS PReads of empty elements: all defer ----
        li   r1, (1 << NODE_SHIFT) | 0x2200
        li   r2, 0x100             ; reply FP (node 0)
        li   r3, ELEMS
        addi o4, r0, T_PREAD
    preads:
        add  o0, r1, r0
        add  o1, r2, r0
        add  o2, r0, r0 !send=4    ; T_PREAD
        addi r1, r1, 8
        addi r3, r3, -1
        bnez r3, preads
        nop

        ; ---- PWrite the elements: the deferred readers wake ----
        li   r1, (1 << NODE_SHIFT) | 0x2200
        li   r5, 100
        li   r3, ELEMS
        addi o4, r0, T_PWRITE
    pwrites:
        add  o0, r1, r0
        add  o1, r0, r0            ; no ack
        add  o2, r5, r0 !send=5    ; T_PWRITE
        addi r1, r1, 8
        addi r5, r5, 11
        addi r3, r3, -1
        bnez r3, pwrites
        nop

        ; ---- collect the ELEMS forwarded values, sum at 0x200 ----
        li   r9, ELEMS
        li   r6, 0
    wait:
        and  r8, status, r7        ; r7 = msg-valid mask
        beqz r8, wait
        nop
        add  r6, r6, i2
        next
        addi r9, r9, -1
        bnez r9, wait
        nop
        sti  r6, r0, 0x200

        li   o0, (1 << NODE_SHIFT)
        addi o4, r0, T_STOP
        send 15
        halt
    )";
}

uint64_t
regionSum(const std::map<std::string, uint64_t> &regions,
          std::initializer_list<const char *> keys)
{
    uint64_t sum = 0;
    for (const char *k : keys) {
        auto it = regions.find(k);
        if (it != regions.end())
            sum += it->second;
    }
    return sum;
}

OnNiResult
runModel(const ni::Model &model, unsigned flood, unsigned elems)
{
    sys::NodeConfig client_cfg;
    client_cfg.ni = ni::Model{ni::Placement::registerFile, true}
                        .config();
    sys::NodeConfig server_cfg;
    server_cfg.ni = model.config();
    sys::System machine("onni", 2, 1, {client_cfg, server_cfg});

    // Server: the stock handler kernels.  Node::boot routes them to
    // the HPU on On-NI nodes; those also run the host proxy loop.
    isa::Program server =
        msg::assembleKernel(msg::handlerProgram(model));
    machine.node(1).boot(server, server.addrOf("entry"));
    machine.node(1).mem().write(msg::allocPtrAddr, 0x40000);
    if (model.policy().handlersOnNi()) {
        isa::Program host =
            msg::assembleKernel(msg::hostProxyProgram(model));
        machine.node(1).bootHost(host, host.addrOf("entry"));
    }

    isa::Program client = msg::assembleKernel(clientProgram(
        flood, elems,
        server.addrOf(model.optimized ? "h_send2" : "hb_send2")));
    machine.node(0).boot(client, client.addrOf("entry"));
    machine.node(0).cpu().setReg(7, 1u << ni::status::msgValidBit);

    OnNiResult r;
    r.quiesced = machine.run(2'000'000);

    // expected = sum of 100 + 11k over the ELEMS forwarded values.
    Word expected = 0;
    for (unsigned k = 0; k < elems; ++k)
        expected += 100 + 11 * k;
    r.ok = r.quiesced &&
           machine.node(0).mem().read(0x200) == expected;

    auto cpu_regions = machine.node(1).cpu().regionCycles();
    r.cpuHandler =
        regionSum(cpu_regions, {"dispatching", "processing"});
    r.hostProxy = regionSum(cpu_regions, {"host_setup", "host_proc"});
    if (Hpu *hpu = machine.node(1).hpu()) {
        r.hpuHandler = regionSum(hpu->regionCycles(),
                                 {"dispatching", "processing"});
        r.escapes = hpu->hostProxies();
        r.overruns = hpu->budgetOverruns();
        r.maxHandler = hpu->maxHandlerCycles();
    }
    r.clientStalls = machine.node(0).cpu().niStallCycles();
    r.received = machine.node(1).ni().numReceived();
    r.ticks = machine.eventq().curTick();
    return r;
}

int
runOnNi(const exp::Context &ctx)
{
    unsigned flood = static_cast<unsigned>(ctx.num("--flood"));
    unsigned elems = static_cast<unsigned>(ctx.num("--elems"));

    const auto &infos = ni::registeredModels();
    std::cout << "On-NI occupancy: the congestion workload (" << flood
              << "-message burst + " << elems
              << " deferred PRead/PWrite pairs) per model\n"
              << "(handler cycles = dispatching + processing regions; "
                 "On-NI models run them on the HPU)\n";

    SweepRunner sweep(ctx.jobs);
    std::vector<OnNiResult> results = sweep.map<OnNiResult>(
        infos.size(), [&](size_t mi) {
            auto ms = ctx.taskMetrics(mi, infos[mi].name);
            std::fprintf(stderr, "  running %s...\n",
                         infos[mi].model.name().c_str());
            return runModel(infos[mi].model, flood, elems);
        });

    TextTable tt;
    tt.header({"Model", "CPU handler", "HPU handler", "Host proxy",
               "Escapes", "Overruns", "Client stalls", "Ticks",
               "Result"});
    for (size_t mi = 0; mi < infos.size(); ++mi) {
        const OnNiResult &r = results[mi];
        tt.row({infos[mi].shortName, std::to_string(r.cpuHandler),
                std::to_string(r.hpuHandler),
                std::to_string(r.hostProxy),
                std::to_string(r.escapes), std::to_string(r.overruns),
                std::to_string(r.clientStalls),
                std::to_string(r.ticks), r.ok ? "ok" : "FAILED"});
    }
    tt.print(std::cout);

    bool any_onni = false;
    for (const ni::ModelInfo &info : infos)
        any_onni = any_onni || info.model.policy().handlersOnNi();
    if (!any_onni) {
        std::cout << "\n(no On-NI models registered: configure with "
                     "-DTCPNI_EXTRA_MODELS=ON for the HPU columns)\n";
    }

    ctx.writeJson([&](std::ostream &os) {
        os << "{\"config\":{\"flood\":" << flood
           << ",\"elems\":" << elems << "},\n\"models\":{";
        for (size_t mi = 0; mi < infos.size(); ++mi) {
            const OnNiResult &r = results[mi];
            os << (mi ? ",\n" : "\n") << "\""
               << stats::jsonEscape(infos[mi].name) << "\":{"
               << "\"ok\":" << (r.ok ? "true" : "false")
               << ",\"cpuHandlerCycles\":" << r.cpuHandler
               << ",\"hpuHandlerCycles\":" << r.hpuHandler
               << ",\"hostProxyCycles\":" << r.hostProxy
               << ",\"escapes\":" << r.escapes
               << ",\"budgetOverruns\":" << r.overruns
               << ",\"maxHandlerCycles\":" << r.maxHandler
               << ",\"clientStallCycles\":" << r.clientStalls
               << ",\"received\":" << r.received
               << ",\"ticks\":" << r.ticks << "}";
        }
        os << "\n}}\n";
    });

    bool all_ok = true;
    for (const OnNiResult &r : results)
        all_ok = all_ok && r.ok;
    return all_ok ? 0 : 1;
}

} // namespace

void
registerOnNi(exp::ExperimentRegistry &reg)
{
    reg.add({
        "onni",
        "On-NI handler occupancy vs the paper models (congestion "
        "workload)",
        {
            {"--flood", "N",
             "messages in the congestion burst", "40", false},
            {"--elems", "N",
             "I-structure elements deferred then written", "4", false},
        },
        true,   // --json
        true,   // --trace
        runOnNi,
    });
}

} // namespace bench
} // namespace tcpni
