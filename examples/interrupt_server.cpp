/**
 * @file
 * Interrupt-driven message reception.
 *
 * Section 2.1 leaves open whether the interface is polled or
 * interrupt-driven; this example runs the latter.  Node 1's processor
 * spends its time on a foreground computation (summing an array);
 * whenever a message arrives, the NI interrupts it, the type-2 handler
 * banks the payload and returns through `jmp r14` -- re-enabling
 * interrupts in the jump's delay slot so no arrival can slip through
 * the NEXT-to-return window.
 *
 * Node 0 sprinkles messages while node 1 computes; the example shows
 * the foreground result and the interrupt log are both intact.
 *
 * Build & run:  ./build/examples/interrupt_server
 */

#include <cstdio>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "system/system.hh"

using namespace tcpni;

int
main()
{
    sys::NodeConfig cfg;
    cfg.ni.placement = ni::Placement::registerFile;
    sys::System machine("interrupt", 2, 1, cfg);

    // Node 1: foreground work + interrupt handler.
    isa::Program server = msg::assembleKernel(R"(
        .org 0x4000
    poll:
        jmp  msgip
        nop
        .align HANDLER_STRIDE
    exc:
        halt
        .align HANDLER_STRIDE
    h2:                            ; the interrupt handler (type 2)
        ldi  r1, r0, 0x604         ; log cursor
        st   i1, r1, r0 !next      ; bank the payload
        addi r1, r1, 4
        sti  r1, r0, 0x604
        jmp  r14
        ori  control, control, CT_INTEN    ; re-enable in the delay slot
        .align HANDLER_STRIDE
        .space (HANDLER_STRIDE/4) * 12
    stop:
        halt
        .align HANDLER_STRIDE

    entry:
        li   ipbase, 0x4000
        lis  r1, 0x700
        sti  r1, r0, 0x604         ; interrupt log starts at 0x700
        ori  control, control, CT_INTEN

        ; foreground: sum the integers 1..1000 into 0x500
        lis  r2, 0
        lis  r3, 1000
    sum:
        add  r2, r2, r3
        addi r3, r3, -1
        bnez r3, sum
        nop
        sti  r2, r0, 0x500
    spin:                          ; then idle until the STOP interrupt
        br   spin
        nop
    )");
    machine.node(1).boot(server, server.addrOf("entry"));

    // Node 0: sends ten messages paced a few cycles apart, then STOP.
    isa::Program client = msg::assembleKernel(R"(
    entry:
        li   o0, (1 << NODE_SHIFT)
        lis  r1, 10
        lis  r2, 100               ; payload counter
    next_msg:
        add  o1, r2, r0 !send=2
        addi r2, r2, 1
        lis  r3, 500               ; pacing delay
    pace:
        addi r3, r3, -1
        bnez r3, pace
        nop
        addi r1, r1, -1
        bnez r1, next_msg
        nop
        send 15                    ; STOP interrupts the idle loop
        halt
    )");
    machine.node(0).boot(client, client.addrOf("entry"));

    machine.run(100000);

    Word sum = machine.node(1).mem().read(0x500);
    uint64_t taken = machine.node(1).cpu().interruptsTaken();
    std::printf("foreground sum(1..1000) = %u (expected 500500)\n",
                sum);
    std::printf("interrupts taken: %llu (10 messages + STOP)\n",
                static_cast<unsigned long long>(taken));
    std::printf("interrupt log:");
    bool ok = sum == 500500 && taken == 11;
    for (int k = 0; k < 10; ++k) {
        Word v = machine.node(1).mem().read(0x700 + 4 * k);
        std::printf(" %u", v);
        ok = ok && v == static_cast<Word>(100 + k);
    }
    std::printf("\n%s\n",
                ok ? "OK: computation and interrupt-driven reception "
                     "interleaved cleanly"
                   : "FAILED");
    return ok ? 0 : 1;
}
