/**
 * @file
 * A remote-memory server machine, Section 3.1 style.
 *
 * Four nodes on a 2x2 mesh, all with *off-chip cache-mapped*
 * interfaces -- the NIC-chip configuration the authors built, where
 * every interface access is a load or store to the 0xffff0000 window
 * with commands encoded in the low address bits (Figure 9).
 *
 * Nodes 1..3 run the basic cache-mapped handler server (the Figure-5
 * software dispatch loop).  Node 0 writes a value to each server with
 * WRITE messages, reads them back with READ messages, and sums the
 * results: 10 + 20 + 30 = 60.
 *
 * Build & run:  ./build/examples/remote_memory
 */

#include <cstdio>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "system/system.hh"

using namespace tcpni;

int
main()
{
    sys::NodeConfig cfg;
    cfg.ni.placement = ni::Placement::offChipCache;
    cfg.ni.features = ni::Features::basic();
    sys::System machine("remote-memory", 2, 2, cfg);

    // Servers on nodes 1..3: the basic (Figure 5) handler loop.
    ni::Model server_model{ni::Placement::offChipCache, false};
    isa::Program server =
        msg::assembleKernel(msg::handlerProgram(server_model));
    for (NodeId n = 1; n <= 3; ++n)
        machine.node(n).boot(server, server.addrOf("entry"));

    // Client on node 0: write 10*n to node n, read it back, sum, and
    // store the sum at local 0x200.  Basic interfaces carry the
    // message id in word 4 (o4).
    isa::Program client = msg::assembleKernel(R"(
        .org 0x1000
    entry:
        li   r10, NI_BASE
        li   r12, ST_MSGVALID
        li   r13, 0                ; our FP (node 0, local 0)
        lis  r11, 10
        lis  r1, 1                 ; current server node
        lis  r3, 0                 ; sum of read replies
        lis  r4, 3                 ; servers remaining

    next_server:
        ; WRITE 10*node to the server's address 0x3000.
        slli r5, r1, NODE_SHIFT
        ori  r5, r5, 0x3000
        sti  r5, r10, NI_O0        ; w0 = global address
        mul  r6, r1, r11
        sti  r6, r10, NI_O1        ; w1 = value
        addi r7, r0, T_WRITE
        sti  r7, r10, NI_O4        ; w4 = message id
        ldi  r0, r10, NI_SEND

        ; READ it back: w0 = addr, w1 = reply FP, w2 = reply IP.
        sti  r5, r10, NI_O0
        sti  r13, r10, NI_O1
        sti  r0, r10, NI_O2
        addi r7, r0, T_READ
        sti  r7, r10, NI_O4
        ldi  r0, r10, NI_SEND

        ; Poll for the reply (a Send message: value in word 2).
    wait:
        ldi  r8, r10, NI_STATUS
        and  r8, r8, r12
        beqz r8, wait
        nop
        ldi  r9, r10, NI_I2 | NI_NEXT
        add  r3, r3, r9            ; accumulate

        addi r1, r1, 1
        addi r4, r4, -1
        bnez r4, next_server
        nop

        sti  r3, r0, 0x200         ; publish the sum locally

        ; Stop all three servers.
        lis  r1, 1
        lis  r4, 3
    stop_loop:
        slli r5, r1, NODE_SHIFT
        sti  r5, r10, NI_O0
        addi r7, r0, T_STOP
        sti  r7, r10, NI_O4
        ldi  r0, r10, NI_SEND
        addi r1, r1, 1
        addi r4, r4, -1
        bnez r4, stop_loop
        nop
        halt
    )");
    machine.node(0).boot(client, client.addrOf("entry"));

    bool quiesced = machine.run(200000);

    Word sum = machine.node(0).mem().read(0x200);
    std::printf("quiesced: %s\n", quiesced ? "yes" : "no");
    for (NodeId n = 1; n <= 3; ++n) {
        std::printf("node %u mem[0x3000] = %u (halted: %s)\n", n,
                    machine.node(n).mem().read(0x3000),
                    machine.node(n).cpu().halted() ? "yes" : "no");
    }
    std::printf("sum of remote reads = %u (expected 60)\n", sum);

    bool ok = sum == 60 && machine.node(1).mem().read(0x3000) == 10 &&
              machine.node(2).mem().read(0x3000) == 20 &&
              machine.node(3).mem().read(0x3000) == 30;
    std::printf("%s\n", ok ? "OK: Figure-9 command addresses drove "
                             "remote memory across the mesh"
                           : "FAILED");
    return ok ? 0 : 1;
}
