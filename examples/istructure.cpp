/**
 * @file
 * I-structure producer/consumer over PRead / PWrite messages.
 *
 * Node 1 hosts an I-structure array and runs the optimized
 * register-mapped handler server.  Node 0's consumer requests three
 * elements *before* they exist -- the requests defer at the server,
 * building the deferred-reader list in the server's memory.  Then the
 * producer (also node 0) PWrites the elements; the server's PWrite
 * handler walks the deferred list and FORWARDs the value to each
 * waiting reader (the Section-2.2.2 FORWARD mode), waking the
 * consumer.
 *
 * Build & run:  ./build/examples/istructure
 */

#include <cstdio>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "system/system.hh"

using namespace tcpni;

int
main()
{
    sys::NodeConfig cfg;
    cfg.ni.placement = ni::Placement::registerFile;
    cfg.ni.features = ni::Features::optimized();
    sys::System machine("istructure", 2, 1, cfg);

    // Server: stock optimized register-mapped handler program.  The
    // I-structure elements live at 0x2200 (tag, value pairs); the
    // deferred-node allocator starts at 0x40000.
    ni::Model server_model{ni::Placement::registerFile, true};
    isa::Program server =
        msg::assembleKernel(msg::handlerProgram(server_model));
    machine.node(1).boot(server, server.addrOf("entry"));
    machine.node(1).mem().write(msg::allocPtrAddr, 0x40000);

    // Client: PRead elements 0..2 (they are EMPTY: the reads defer),
    // then PWrite them; replies arrive as the server forwards the
    // values.  Values land at local 0x100.
    isa::Program client = msg::assembleKernel(R"(
        .equ ELEM, (1 << NODE_SHIFT) | 0x2200
    entry:
        li   r1, ELEM
        li   r2, (0 << NODE_SHIFT) | 0x0   ; reply FP
        lis  r3, 3                         ; requests to issue
        lis  r9, 3                         ; replies to await
        lis  r4, 0x100

        ; -- consumer: three PReads of not-yet-written elements --
    request:
        add  o0, r1, r0
        add  o1, r2, r0 !send=4            ; T_PREAD
        addi r1, r1, 8                     ; next element (tag+value)
        addi r3, r3, -1
        bnez r3, request
        nop

        ; -- producer: now PWrite the three elements --
        li   r1, ELEM
        lis  r5, 100
        lis  r3, 3
    produce:
        add  o0, r1, r0                    ; w0 = element
        add  o1, r0, r0                    ; w1 = no ack
        add  o2, r5, r0 !send=5            ; w2 = value, T_PWRITE
        addi r1, r1, 8
        addi r5, r5, 11
        addi r3, r3, -1
        bnez r3, produce
        nop

        ; -- collect the three forwarded values --
    wait:
        and  r6, status, r7                ; r7 = msg-valid mask
        beqz r6, wait
        nop
        st   i2, r4, r0 !next
        addi r4, r4, 4
        addi r9, r9, -1
        bnez r9, wait
        nop

        ; stop the server, then halt
        li   o0, (1 << NODE_SHIFT)
        send 15
        halt
    )");
    machine.node(0).boot(client, client.addrOf("entry"));
    machine.node(0).cpu().setReg(7, 1u << ni::status::msgValidBit);

    bool quiesced = machine.run(200000);

    std::printf("quiesced: %s\n", quiesced ? "yes" : "no");
    bool ok = true;
    for (int k = 0; k < 3; ++k) {
        Word v = machine.node(0).mem().read(0x100 + 4 * k);
        std::printf("forwarded value %d = %u (expected %d)\n", k, v,
                    100 + 11 * k);
        ok = ok && v == static_cast<Word>(100 + 11 * k);
    }

    // The server's element tags are FULL now.
    for (int k = 0; k < 3; ++k) {
        Word tag = machine.node(1).mem().read(0x2200 + 8 * k);
        ok = ok && tag == msg::tagFull;
    }
    std::printf("%s\n", ok ? "OK: deferred readers woken by FORWARD-"
                             "mode PWrite handlers"
                           : "FAILED");
    return ok ? 0 : 1;
}
