/**
 * @file
 * Quickstart: the paper's headline result, end to end.
 *
 * Two nodes on a mesh.  Node 1 runs the optimized register-mapped
 * handler server -- whose remote-read handler is the famous *two
 * RISC instructions* (a jump through NextMsgIp with a fused
 * load / SEND-reply / NEXT in its delay slot).  Node 0 runs a small
 * client program that issues three remote read requests and spins on
 * the replies.
 *
 * Build & run:  ./build/examples/quickstart
 *
 * To watch every message cross the machine, enable the debug trace
 * flags:  TCPNI_TRACE=NI,NOC,DISPATCH ./build/examples/quickstart
 * (CPU adds per-instruction retire lines; "all" enables everything).
 */

#include <cstdio>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "system/system.hh"

using namespace tcpni;

int
main()
{
    // --- build a 2x1 machine with register-mapped optimized NIs ---
    sys::NodeConfig cfg;
    cfg.ni.placement = ni::Placement::registerFile;
    cfg.ni.features = ni::Features::optimized();
    sys::System machine("quickstart", 2, 1, cfg);

    // --- node 1: the server ---
    // The stock handler program from the kernel library: a dispatch
    // table at 0x4000 whose READ slot is the two-instruction handler.
    ni::Model server_model{ni::Placement::registerFile, true};
    isa::Program server =
        msg::assembleKernel(msg::handlerProgram(server_model));
    machine.node(1).boot(server, server.addrOf("entry"));

    // Data the client will read remotely.
    machine.node(1).mem().write(0x2000, 111);
    machine.node(1).mem().write(0x2004, 222);
    machine.node(1).mem().write(0x2008, 333);

    // --- node 0: the client ---
    // Issues three READ requests (type 2), then spins until three
    // replies arrive, stores the values at 0x100, sends STOP to the
    // server, and halts.
    isa::Program client = msg::assembleKernel(R"(
        .org 0x1000
    entry:
        li   r1, (1 << NODE_SHIFT) | 0x2000    ; remote address
        li   r2, (0 << NODE_SHIFT) | 0x0       ; reply FP: back to us
        lis  r3, 3                             ; outstanding replies
        lis  r4, 0x100                         ; where replies land
        lis  r6, 4

        ; -- send the three requests --
        add  o0, r1, r0
        add  o1, r2, r0 !send=2
        addi r1, r1, 4
        add  o0, r1, r0
        add  o1, r2, r0 !send=2
        addi r1, r1, 4
        add  o0, r1, r0
        add  o1, r2, r0 !send=2

        ; -- collect replies (type-0 Sends: value in word 2 = i2) --
    wait:
        and  r5, status, r7        ; r7 set below: msg-valid mask
        beqz r5, wait
        nop
        st   i2, r4, r0 !next      ; store reply value, advance
        addi r4, r4, 4
        addi r3, r3, -1
        bnez r3, wait
        nop

        ; -- stop the server and halt --
        li   o0, (1 << NODE_SHIFT)
        send 15
        halt

        ; constant setup executed first via the entry branch below
        ; (r7 = STATUS msg-valid mask)
    )");
    // Patch: set r7 before entering the loop by booting a tiny shim.
    // Simpler: the client reads STATUS's msg-valid bit; preload r7.
    machine.node(0).boot(client, client.addrOf("entry"));
    machine.node(0).cpu().setReg(7, 1u << ni::status::msgValidBit);

    // --- run ---
    bool quiesced = machine.run(100000);

    std::printf("quiesced: %s\n", quiesced ? "yes" : "no");
    std::printf("replies received by node 0:\n");
    for (int k = 0; k < 3; ++k) {
        std::printf("  mem[0x%x] = %u\n", 0x100 + 4 * k,
                    machine.node(0).mem().read(0x100 + 4 * k));
    }
    std::printf("server instructions: %llu (halted: %s)\n",
                static_cast<unsigned long long>(
                    machine.node(1).cpu().instructions()),
                machine.node(1).cpu().halted() ? "yes" : "no");

    bool ok = machine.node(0).mem().read(0x100) == 111 &&
              machine.node(0).mem().read(0x104) == 222 &&
              machine.node(0).mem().read(0x108) == 333;
    std::printf("%s\n", ok ? "OK: remote reads served by the "
                             "two-instruction handler"
                           : "FAILED");
    return ok ? 0 : 1;
}
