/**
 * @file
 * Runs the TAM-compiled blocked matrix multiply (the paper's Figure-12
 * workload) and prints its dynamic profile: instruction-class counts,
 * the message mix with I-structure presence outcomes, and the
 * projected cycle cost under each of the six interface models.
 *
 * Build & run:  ./build/examples/tam_matmul [n]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/matmul.hh"
#include "common/logging.hh"
#include "tam/expand.hh"
#include "ni/model_registry.hh"

using namespace tcpni;

int
main(int argc, char **argv)
{
    logging::quiet = true;
    unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
                          : 40;

    std::printf("TAM blocked matrix multiply, %ux%u (4x4 blocks)\n", n,
                n);
    apps::MatMulResult r = apps::runMatMul(n, 4);
    std::printf("verified: %s\n", r.verified ? "yes" : "NO");

    std::printf("\ndynamic TAM instruction classes:\n");
    for (size_t i = 0; i < static_cast<size_t>(tam::Op::numOps); ++i) {
        std::printf("  %-12s %12llu\n",
                    tam::opName(static_cast<tam::Op>(i)).c_str(),
                    static_cast<unsigned long long>(r.stats.ops[i]));
    }

    std::printf("\nmessage mix:\n");
    for (size_t i = 0; i < static_cast<size_t>(tam::MsgKind::numKinds);
         ++i) {
        std::printf("  %-16s %12llu\n",
                    tam::msgKindName(static_cast<tam::MsgKind>(i))
                        .c_str(),
                    static_cast<unsigned long long>(r.stats.msgs[i]));
    }
    std::printf("  %-16s %12llu\n", "replies",
                static_cast<unsigned long long>(r.stats.replies));
    std::printf("  total messages: %llu, flops/message: %.2f\n",
                static_cast<unsigned long long>(
                    r.stats.totalMessages()),
                r.flopsPerMessage);

    std::printf("\nprojected cycles per interface model:\n");
    for (const ni::Model &m : ni::paperModels()) {
        tam::CommCosts costs = tam::measureCommCosts(m);
        tam::Figure12Bar bar = tam::expand(r.stats, costs);
        std::printf("  %-26s total %12.0f  (comm share %.1f%%)\n",
                    m.name().c_str(), bar.total(),
                    bar.commFraction() * 100);
    }
    return r.verified ? 0 : 1;
}
