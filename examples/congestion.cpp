/**
 * @file
 * Flow control and hardware-assisted boundary conditions
 * (Sections 2.1.1 and 2.2.4), demonstrated end to end.
 *
 * Node 0 floods node 1 with messages.  Three mechanisms engage:
 *
 *  1. node 1's input queue crosses its threshold, so the MsgIp
 *     hardware starts dispatching to the *iafull variant* of the
 *     handler ("four versions of each message handler") -- here a
 *     fast-drain handler that defers its work;
 *  2. node 1's input queue fills entirely, backpressuring the mesh;
 *  3. node 0's output queue fills, and with the CONTROL stall-on-full
 *     policy the SEND instruction holds the processor at issue.
 *
 * The program prints how many messages each handler variant served
 * and how long the sender stalled.
 *
 * Build & run:  ./build/examples/congestion
 *
 * Observability: run with TCPNI_TRACE=NI,NOC to watch the queue
 * thresholds assert and the mesh backpressure engage cycle by cycle;
 * pass --json FILE to dump the per-node NI statistics (including the
 * time-weighted queue occupancies) as JSON.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "ni/placement_policy.hh"
#include "system/system.hh"

using namespace tcpni;

namespace
{

/** An off-chip cache-mapped client: flood two-word Sends at node 1
 *  through the memory-mapped interface window, then stop the server.
 *  @p sendip is the server's two-word-Send inlet (optimized
 *  interfaces dispatch type-0 messages through word 1). */
std::string
floodClient(unsigned flood, Addr sendip)
{
    return ".equ FLOOD, " + std::to_string(flood) +
           "\n.equ SENDIP, " + std::to_string(sendip) + R"(
    entry:
        li   r10, NI_BASE
        li   r1, (1 << NODE_SHIFT) | 0x2000
        sti  r1, r10, NI_O0
        li   r1, SENDIP
        sti  r1, r10, NI_O1
        li   r1, 0x11
        sti  r1, r10, NI_O2
        li   r1, 0x22
        sti  r1, r10, NI_O3
        li   r1, 8                 ; software id of the two-word Send
        sti  r1, r10, NI_O4
        lis  r2, FLOOD
    flood:
        ldi  r0, r10, NI_SEND      ; wire type 0
        addi r2, r2, -1
        bnez r2, flood
        nop
        li   r1, (1 << NODE_SHIFT)
        sti  r1, r10, NI_O0
        li   r1, T_STOP
        sti  r1, r10, NI_O4
        ldi  r0, r10, NI_SEND | NI_TYPE*T_STOP
        halt
    )";
}

/** Occupancy split for one mixed-vs-uniform variant run. */
struct VariantResult
{
    bool ok = false;
    uint64_t cpuHandler = 0;   //!< server CPU dispatch+processing
    uint64_t hpuHandler = 0;   //!< server HPU dispatch+processing
    uint64_t ticks = 0;
};

uint64_t
handlerCycles(const std::map<std::string, uint64_t> &regions)
{
    uint64_t sum = 0;
    for (const char *k : {"dispatching", "processing"}) {
        auto it = regions.find(k);
        if (it != regions.end())
            sum += it->second;
    }
    return sum;
}

/** Run the flood against a server built from @p server_model, with an
 *  off-chip cache-mapped client -- per-node interface configurations
 *  are free to differ across the machine. */
VariantResult
runVariant(const ni::Model &server_model, unsigned flood)
{
    sys::NodeConfig client_cfg;
    client_cfg.ni =
        ni::Model{ni::Placement::offChipCache, true}.config();
    sys::NodeConfig server_cfg;
    server_cfg.ni = server_model.config();
    sys::System machine("mixed", 2, 1, {client_cfg, server_cfg});

    isa::Program server =
        msg::assembleKernel(msg::handlerProgram(server_model));
    machine.node(1).boot(server, server.addrOf("entry"));
    machine.node(1).mem().write(msg::allocPtrAddr, 0x40000);
    if (server_model.policy().handlersOnNi()) {
        isa::Program host = msg::assembleKernel(
            msg::hostProxyProgram(server_model));
        machine.node(1).bootHost(host, host.addrOf("entry"));
    }

    isa::Program client = msg::assembleKernel(
        floodClient(flood, server.addrOf("h_send2")));
    machine.node(0).boot(client, client.addrOf("entry"));

    VariantResult r;
    bool quiesced = machine.run(1000000);
    r.ok = quiesced &&
           machine.node(1).mem().read(0x2000) == 0x11 &&
           machine.node(1).mem().read(0x2004) == 0x22 &&
           machine.node(1).ni().numReceived() == flood + 1;
    r.cpuHandler = handlerCycles(machine.node(1).cpu().regionCycles());
    if (Hpu *hpu = machine.node(1).hpu())
        r.hpuHandler = handlerCycles(hpu->regionCycles());
    r.ticks = machine.eventq().curTick();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_file;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_file = argv[++i];
    }
    sys::NodeConfig sender_cfg;
    sender_cfg.ni.placement = ni::Placement::registerFile;
    sender_cfg.ni.outputQueueDepth = 4;
    sender_cfg.ni.outputThreshold = 4;  // == depth: oafull never raises

    sys::NodeConfig server_cfg = sender_cfg;
    server_cfg.ni.inputQueueDepth = 8;
    server_cfg.ni.inputThreshold = 3;   // iafull above 3 queued

    sys::System machine("congestion", 2, 1,
                        {sender_cfg, server_cfg});

    // Server: type-2 messages have two handler variants.  The normal
    // one simulates expensive processing (a delay loop); the iafull
    // variant sheds load by just counting and draining.
    isa::Program server = msg::assembleKernel(R"(
        .org 0x4000
        ; ---- base variants (iafull = 0) ----
    poll:
        jmp  msgip
        nop
        .align HANDLER_STRIDE
    exc:
        halt
        .align HANDLER_STRIDE
    slow:                          ; type 2, queue healthy
        ldi  r1, r0, 0x600
        addi r1, r1, 1
        sti  r1, r0, 0x600         ; count[slow]++
        lis  r2, 8                 ; simulate expensive processing
    spin:
        addi r2, r2, -1
        bnez r2, spin
        nop
        next
        br   poll
        nop
        .align HANDLER_STRIDE
        .space (HANDLER_STRIDE/4) * 12      ; slots 3..14
    stop:
        halt
        .align HANDLER_STRIDE
        ; skip the 16 oafull-variant slots (+0x800, unused here)
        .space (HANDLER_STRIDE/4) * 16

        ; ---- iafull variants (+0x1000) ----
    poll_ia:
        jmp  msgip
        nop
        .align HANDLER_STRIDE
    exc_ia:
        halt
        .align HANDLER_STRIDE
    fast:                          ; type 2, input queue over threshold
        ldi  r1, r0, 0x604
        addi r1, r1, 1
        sti  r1, r0, 0x604         ; count[fast]++
        next
        br   poll
        nop
        .align HANDLER_STRIDE
        .space (HANDLER_STRIDE/4) * 12
    stop_ia:
        halt
        .align HANDLER_STRIDE

    entry:
        li   ipbase, 0x4000
        br   poll
        nop
    )");
    machine.node(1).boot(server, server.addrOf("entry"));

    // Sender: blast 40 type-2 messages, then STOP.
    isa::Program sender = msg::assembleKernel(R"(
    entry:
        li   o0, (1 << NODE_SHIFT)
        lis  r1, 40
    flood:
        send 2
        addi r1, r1, -1
        bnez r1, flood
        nop
        send 15
        halt
    )");
    machine.node(0).boot(sender, sender.addrOf("entry"));

    bool quiesced = machine.run(100000);

    Word slow_count = machine.node(1).mem().read(0x600);
    Word fast_count = machine.node(1).mem().read(0x604);
    uint64_t stalls = machine.node(0).cpu().niStallCycles();

    std::printf("quiesced: %s\n", quiesced ? "yes" : "no");
    std::printf("messages served by the normal handler:  %u\n",
                slow_count);
    std::printf("messages served by the iafull variant:  %u\n",
                fast_count);
    std::printf("sender SEND-stall cycles (full output queue): %llu\n",
                static_cast<unsigned long long>(stalls));

    if (!json_file.empty()) {
        std::ofstream os(json_file);
        machine.dumpStatsJson(os);
        std::printf("wrote NI statistics to %s\n", json_file.c_str());
    }

    bool ok = quiesced && slow_count + fast_count == 40 &&
              fast_count > 0 && slow_count > 0 && stalls > 0;
    std::printf("%s\n",
                ok ? "OK: thresholds, handler variants, and "
                     "stall-on-full all engaged"
                   : "FAILED");

    // ---- heterogeneous configurations: mixed vs uniform ----
    //
    // Interface configurations are per node, so one machine can mix
    // placements.  Re-run the flood against (a) a uniform fleet
    // (off-chip server, off-chip client) and (b) a mixed one where
    // only the congested server node pays for an On-NI interface: the
    // same stock handler kernels then run on the server's HPU and the
    // handler occupancy leaves its CPU entirely.
    std::printf("\nmixed vs uniform fleet (40-message flood, "
                "server handler cycles):\n");
    VariantResult uniform = runVariant(
        ni::Model{ni::Placement::offChipCache, true}, 40);
    VariantResult mixed =
        runVariant(ni::Model{ni::Placement::onNi, true}, 40);
    std::printf("  uniform (off-chip server): CPU %llu  HPU %llu  "
                "ticks %llu\n",
                static_cast<unsigned long long>(uniform.cpuHandler),
                static_cast<unsigned long long>(uniform.hpuHandler),
                static_cast<unsigned long long>(uniform.ticks));
    std::printf("  mixed   (On-NI server):    CPU %llu  HPU %llu  "
                "ticks %llu\n",
                static_cast<unsigned long long>(mixed.cpuHandler),
                static_cast<unsigned long long>(mixed.hpuHandler),
                static_cast<unsigned long long>(mixed.ticks));

    bool ok2 = uniform.ok && mixed.ok && uniform.cpuHandler > 0 &&
               mixed.cpuHandler == 0 && mixed.hpuHandler > 0;
    std::printf("%s\n",
                ok2 ? "OK: the mixed fleet moved the handler "
                      "occupancy off the server CPU"
                    : "FAILED (mixed-vs-uniform variant)");
    return ok && ok2 ? 0 : 1;
}
