/**
 * @file
 * Flow control and hardware-assisted boundary conditions
 * (Sections 2.1.1 and 2.2.4), demonstrated end to end.
 *
 * Node 0 floods node 1 with messages.  Three mechanisms engage:
 *
 *  1. node 1's input queue crosses its threshold, so the MsgIp
 *     hardware starts dispatching to the *iafull variant* of the
 *     handler ("four versions of each message handler") -- here a
 *     fast-drain handler that defers its work;
 *  2. node 1's input queue fills entirely, backpressuring the mesh;
 *  3. node 0's output queue fills, and with the CONTROL stall-on-full
 *     policy the SEND instruction holds the processor at issue.
 *
 * The program prints how many messages each handler variant served
 * and how long the sender stalled.
 *
 * Build & run:  ./build/examples/congestion
 *
 * Observability: run with TCPNI_TRACE=NI,NOC to watch the queue
 * thresholds assert and the mesh backpressure engage cycle by cycle;
 * pass --json FILE to dump the per-node NI statistics (including the
 * time-weighted queue occupancies) as JSON.
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "system/system.hh"

using namespace tcpni;

int
main(int argc, char **argv)
{
    std::string json_file;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_file = argv[++i];
    }
    sys::NodeConfig sender_cfg;
    sender_cfg.ni.placement = ni::Placement::registerFile;
    sender_cfg.ni.outputQueueDepth = 4;
    sender_cfg.ni.outputThreshold = 4;  // == depth: oafull never raises

    sys::NodeConfig server_cfg = sender_cfg;
    server_cfg.ni.inputQueueDepth = 8;
    server_cfg.ni.inputThreshold = 3;   // iafull above 3 queued

    sys::System machine("congestion", 2, 1,
                        {sender_cfg, server_cfg});

    // Server: type-2 messages have two handler variants.  The normal
    // one simulates expensive processing (a delay loop); the iafull
    // variant sheds load by just counting and draining.
    isa::Program server = msg::assembleKernel(R"(
        .org 0x4000
        ; ---- base variants (iafull = 0) ----
    poll:
        jmp  msgip
        nop
        .align HANDLER_STRIDE
    exc:
        halt
        .align HANDLER_STRIDE
    slow:                          ; type 2, queue healthy
        ldi  r1, r0, 0x600
        addi r1, r1, 1
        sti  r1, r0, 0x600         ; count[slow]++
        lis  r2, 8                 ; simulate expensive processing
    spin:
        addi r2, r2, -1
        bnez r2, spin
        nop
        next
        br   poll
        nop
        .align HANDLER_STRIDE
        .space (HANDLER_STRIDE/4) * 12      ; slots 3..14
    stop:
        halt
        .align HANDLER_STRIDE
        ; skip the 16 oafull-variant slots (+0x800, unused here)
        .space (HANDLER_STRIDE/4) * 16

        ; ---- iafull variants (+0x1000) ----
    poll_ia:
        jmp  msgip
        nop
        .align HANDLER_STRIDE
    exc_ia:
        halt
        .align HANDLER_STRIDE
    fast:                          ; type 2, input queue over threshold
        ldi  r1, r0, 0x604
        addi r1, r1, 1
        sti  r1, r0, 0x604         ; count[fast]++
        next
        br   poll
        nop
        .align HANDLER_STRIDE
        .space (HANDLER_STRIDE/4) * 12
    stop_ia:
        halt
        .align HANDLER_STRIDE

    entry:
        li   ipbase, 0x4000
        br   poll
        nop
    )");
    machine.node(1).boot(server, server.addrOf("entry"));

    // Sender: blast 40 type-2 messages, then STOP.
    isa::Program sender = msg::assembleKernel(R"(
    entry:
        li   o0, (1 << NODE_SHIFT)
        lis  r1, 40
    flood:
        send 2
        addi r1, r1, -1
        bnez r1, flood
        nop
        send 15
        halt
    )");
    machine.node(0).boot(sender, sender.addrOf("entry"));

    bool quiesced = machine.run(100000);

    Word slow_count = machine.node(1).mem().read(0x600);
    Word fast_count = machine.node(1).mem().read(0x604);
    uint64_t stalls = machine.node(0).cpu().niStallCycles();

    std::printf("quiesced: %s\n", quiesced ? "yes" : "no");
    std::printf("messages served by the normal handler:  %u\n",
                slow_count);
    std::printf("messages served by the iafull variant:  %u\n",
                fast_count);
    std::printf("sender SEND-stall cycles (full output queue): %llu\n",
                static_cast<unsigned long long>(stalls));

    if (!json_file.empty()) {
        std::ofstream os(json_file);
        machine.dumpStatsJson(os);
        std::printf("wrote NI statistics to %s\n", json_file.c_str());
    }

    bool ok = quiesced && slow_count + fast_count == 40 &&
              fast_count > 0 && slow_count > 0 && stalls > 0;
    std::printf("%s\n",
                ok ? "OK: thresholds, handler variants, and "
                     "stall-on-full all engaged"
                   : "FAILED");
    return ok ? 0 : 1;
}
