#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/logging.hh"
#include "cpu/cpu.hh"
#include "msg/kernels.hh"
#include "ni/model_registry.hh"
#include "msg/protocol.hh"
#include "ni/network_interface.hh"
#include "noc/network.hh"

using namespace tcpni;
using namespace tcpni::msg;

namespace
{

/** A two-node machine running a handler server on node 1. */
struct ServerRig
{
    EventQueue eq;
    IdealNetwork net{"net", eq, 2, 1};
    Memory mem0{1 << 20}, mem1{1 << 20};
    std::unique_ptr<ni::NetworkInterface> ni0, ni1;
    std::unique_ptr<Cpu> cpu1;
    isa::Program prog;
    bool optimized;

    explicit ServerRig(const ni::Model &model)
        : optimized(model.optimized)
    {
        ni::NiConfig cfg = model.config();
        cfg.inputQueueDepth = 64;
        cfg.outputQueueDepth = 64;
        cfg.inputThreshold = 255;
        cfg.outputThreshold = 255;
        ni::NiConfig client = cfg;
        client.inputQueueDepth = 1024;
        ni0 = std::make_unique<ni::NetworkInterface>("ni0", eq, 0, net,
                                                     client);
        ni1 = std::make_unique<ni::NetworkInterface>("ni1", eq, 1, net,
                                                     cfg);
        cpu1 = std::make_unique<Cpu>("cpu1", eq, mem1, ni1.get());
        prog = assembleKernel(handlerProgram(model));
        cpu1->loadProgram(prog);
        mem1.write(allocPtrAddr, 0x40000);
    }

    /** Inject a protocol message addressed to node 1.  @p basic_id
     *  overrides the word-4 id for basic models (Send variants have
     *  ids distinct from their shared type 0). */
    void
    inject(uint8_t type, Word w0, Word w1 = 0, Word w2 = 0, Word w3 = 0,
           int basic_id = -1)
    {
        Message m;
        Word id = basic_id >= 0 ? static_cast<Word>(basic_id) : type;
        m.words = {w0, w1, w2, w3, optimized ? 0u : id};
        m.type = optimized ? type : 0;
        m.setDestFromWord0();
        ASSERT_TRUE(ni1->acceptFromNetwork(m));
    }

    /** For optimized models, Send inlets dispatch via word 1. */
    Word
    sendIp(const char *label)
    {
        return optimized ? prog.addrOf(label) : 0x60;
    }

    void
    run()
    {
        inject(typeStop, globalWord(1, 0));
        cpu1->reset(prog.addrOf("entry"));
        cpu1->start();
        eq.run();
        ASSERT_TRUE(cpu1->halted());
    }

    /** Pop the next message received back at node 0. */
    Message
    reply()
    {
        EXPECT_TRUE(ni0->msgValid());
        Message m;
        for (unsigned k = 0; k < msgWords; ++k)
            m.words[k] = ni0->readReg(ni::regI0 + k);
        m.type = ni0->currentType();
        isa::NiCommand next;
        next.next = true;
        ni0->command(next);
        return m;
    }
};

class KernelModels : public ::testing::TestWithParam<ni::Model>
{
};

} // namespace

TEST_P(KernelModels, HandlerProgramAssembles)
{
    ni::Model m = GetParam();
    isa::Program p = assembleKernel(handlerProgram(m));
    EXPECT_GT(p.words.size(), 50u);
    EXPECT_NO_THROW(p.addrOf("entry"));
}

TEST_P(KernelModels, SenderProgramsAssemble)
{
    ni::Model m = GetParam();
    for (Kind k : {Kind::send0, Kind::send1, Kind::send2, Kind::read,
                   Kind::write, Kind::pread, Kind::pwrite}) {
        isa::Program p = assembleKernel(senderProgram(m, k, 4));
        EXPECT_GT(p.words.size(), 5u) << kindName(k);
    }
}

TEST_P(KernelModels, RemoteReadRoundTrip)
{
    ServerRig rig(GetParam());
    rig.mem1.write(0x2100, 0xabcd);
    rig.inject(typeRead, globalWord(1, 0x2100), globalWord(0, 0xf0),
               0x9999);
    rig.run();

    Message r = rig.reply();
    // The reply is a Send carrying (FP, IP, value).
    EXPECT_EQ(r.words[0], globalWord(0, 0xf0));
    EXPECT_EQ(r.words[1], 0x9999u);
    EXPECT_EQ(r.words[2], 0xabcdu);
}

TEST_P(KernelModels, RemoteWrite)
{
    ServerRig rig(GetParam());
    rig.inject(typeWrite, globalWord(1, 0x2104), 0x7777);
    rig.run();
    EXPECT_EQ(rig.mem1.read(0x2104), 0x7777u);
}

TEST_P(KernelModels, SendStoresWordsInFrame)
{
    ServerRig rig(GetParam());
    // Send with 2 data words: handler stores them at FP+0, FP+4.
    // Basic models dispatch Send variants by id (8 = send2).
    rig.inject(typeSend, globalWord(1, 0x2000), rig.sendIp("h_send2"),
               0x1111, 0x2222, static_cast<int>(basicId(Kind::send2)));
    rig.run();
    EXPECT_EQ(rig.mem1.read(0x2000), 0x1111u);
    EXPECT_EQ(rig.mem1.read(0x2004), 0x2222u);
}

TEST_P(KernelModels, PReadFullRepliesImmediately)
{
    ServerRig rig(GetParam());
    Addr elem = 0x2200;
    rig.mem1.write(elem + istructTagOffset, tagFull);
    rig.mem1.write(elem + istructValueOffset, 0x5a5a);
    rig.inject(typePRead, globalWord(1, elem), globalWord(0, 0xf0),
               0x8888);
    rig.run();

    Message r = rig.reply();
    EXPECT_EQ(r.words[0], globalWord(0, 0xf0));
    EXPECT_EQ(r.words[1], 0x8888u);
    EXPECT_EQ(r.words[2], 0x5a5au);
}

TEST_P(KernelModels, PReadEmptyDefers)
{
    ServerRig rig(GetParam());
    Addr elem = 0x2200;
    rig.inject(typePRead, globalWord(1, elem), globalWord(0, 0xf0),
               0x8888);
    rig.run();

    // No reply; the element is DEFERRED with one queued reader.
    EXPECT_FALSE(rig.ni0->msgValid());
    EXPECT_EQ(rig.mem1.read(elem + istructTagOffset), tagDeferred);
    Addr node = rig.mem1.read(elem + istructValueOffset);
    EXPECT_EQ(rig.mem1.read(node + defNodeFpOffset),
              globalWord(0, 0xf0));
    EXPECT_EQ(rig.mem1.read(node + defNodeIpOffset), 0x8888u);
    EXPECT_EQ(rig.mem1.read(node + defNodeNextOffset), 0u);
}

TEST_P(KernelModels, PReadDeferredChains)
{
    ServerRig rig(GetParam());
    Addr elem = 0x2200;
    rig.inject(typePRead, globalWord(1, elem), globalWord(0, 0x10), 1);
    rig.inject(typePRead, globalWord(1, elem), globalWord(0, 0x20), 2);
    rig.run();

    EXPECT_EQ(rig.mem1.read(elem + istructTagOffset), tagDeferred);
    // The second reader heads the list and chains to the first.
    Addr head = rig.mem1.read(elem + istructValueOffset);
    EXPECT_EQ(rig.mem1.read(head + defNodeIpOffset), 2u);
    Addr next = rig.mem1.read(head + defNodeNextOffset);
    ASSERT_NE(next, 0u);
    EXPECT_EQ(rig.mem1.read(next + defNodeIpOffset), 1u);
    EXPECT_EQ(rig.mem1.read(next + defNodeNextOffset), 0u);
}

TEST_P(KernelModels, PWriteEmptyFillsElement)
{
    ServerRig rig(GetParam());
    Addr elem = 0x2200;
    rig.inject(typePWrite, globalWord(1, elem), 0, 0x1234);
    rig.run();
    EXPECT_EQ(rig.mem1.read(elem + istructTagOffset), tagFull);
    EXPECT_EQ(rig.mem1.read(elem + istructValueOffset), 0x1234u);
    EXPECT_FALSE(rig.ni0->msgValid());
}

TEST_P(KernelModels, PWriteForwardsToDeferredReaders)
{
    ServerRig rig(GetParam());
    Addr elem = 0x2200;
    // Three readers defer, then the write arrives.
    rig.inject(typePRead, globalWord(1, elem), globalWord(0, 0x10), 1);
    rig.inject(typePRead, globalWord(1, elem), globalWord(0, 0x20), 2);
    rig.inject(typePRead, globalWord(1, elem), globalWord(0, 0x30), 3);
    rig.inject(typePWrite, globalWord(1, elem), 0, 0x4242);
    rig.run();

    EXPECT_EQ(rig.mem1.read(elem + istructTagOffset), tagFull);
    // All three readers receive the value (LIFO list order).
    std::set<Word> ips;
    for (int k = 0; k < 3; ++k) {
        Message r = rig.reply();
        EXPECT_EQ(r.words[2], 0x4242u);
        ips.insert(r.words[1]);
    }
    EXPECT_EQ(ips, (std::set<Word>{1, 2, 3}));
    EXPECT_FALSE(rig.ni0->msgValid());
}

TEST_P(KernelModels, PWriteSendsAck)
{
    ServerRig rig(GetParam());
    Addr elem = 0x2200;
    // Ack word points at a counter on node 0.
    rig.inject(typePWrite, globalWord(1, elem), globalWord(0, 0x300),
               0x77);
    rig.run();

    Message ack = rig.reply();
    EXPECT_EQ(ack.words[0], globalWord(0, 0x300));
    if (rig.optimized)
        EXPECT_EQ(ack.type, typeAck);
}

TEST_P(KernelModels, AckDecrementsCounter)
{
    ServerRig rig(GetParam());
    rig.mem1.write(0x400, 5);
    rig.inject(typeAck, globalWord(1, 0x400));
    rig.inject(typeAck, globalWord(1, 0x400));
    rig.run();
    EXPECT_EQ(rig.mem1.read(0x400), 3u);
}

TEST_P(KernelModels, MixedStream)
{
    // A mixed workload: write, read it back, I-structure produce and
    // consume -- all in one stream, exercising dispatch transitions.
    ServerRig rig(GetParam());
    Addr elem = 0x2200;
    rig.inject(typeWrite, globalWord(1, 0x2100), 0xcafe);
    rig.inject(typeRead, globalWord(1, 0x2100), globalWord(0, 0x10),
               0xaa);
    rig.inject(typePRead, globalWord(1, elem), globalWord(0, 0x20),
               0xbb);
    rig.inject(typePWrite, globalWord(1, elem), 0, 0xd00d);
    rig.inject(typeSend, globalWord(1, 0x2010),
               rig.sendIp("h_send1"), 0x77, 0,
               static_cast<int>(basicId(Kind::send1)));
    rig.run();

    Message r1 = rig.reply();      // read reply
    EXPECT_EQ(r1.words[2], 0xcafeu);
    Message r2 = rig.reply();      // forwarded I-structure value
    EXPECT_EQ(r2.words[1], 0xbbu);
    EXPECT_EQ(r2.words[2], 0xd00du);
    EXPECT_EQ(rig.mem1.read(0x2010), 0x77u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, KernelModels, ::testing::ValuesIn(ni::paperModels()),
    [](const ::testing::TestParamInfo<ni::Model> &info) {
        std::string n = info.param.shortName();
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST(EscapeType, Section221EscapeDispatch)
{
    // Messages whose identifier exceeds four bits use the ESCAPE type
    // (14); the escape handler reads the 32-bit id from word 4 and
    // dispatches through a software table.  Id 0 is a "poke" handler:
    // store word 2 at the address in word 1.
    ni::Model model{ni::Placement::registerFile, true};
    ServerRig rig(model);
    Message m;
    m.words = {globalWord(1, 0), 0x2400, 0xfeed, 0, /*escape id=*/0};
    m.type = typeEscape;
    m.setDestFromWord0();
    ASSERT_TRUE(rig.ni1->acceptFromNetwork(m));
    rig.run();
    EXPECT_EQ(rig.mem1.read(0x2400), 0xfeedu);
}
