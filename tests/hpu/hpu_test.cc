/**
 * @file
 * The Handler Processing Unit: dispatch cost, the host-proxy escape
 * ring, the handler-time budget, and the CPU-offload property.
 *
 * The On-NI placement itself is always compiled (only its *registry*
 * entries are gated behind TCPNI_EXTRA_MODELS), so these tests run in
 * every build.
 */

#include <gtest/gtest.h>

#include "cost/table1.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "ni/model_registry.hh"
#include "ni/placement_policy.hh"
#include "system/system.hh"

using namespace tcpni;
using namespace tcpni::sys;

namespace
{

const ni::Model onniOpt{ni::Placement::onNi, true};
const ni::Model onniBasic{ni::Placement::onNi, false};

/** A register-mapped client: PRead an empty element (defers), PWrite
 *  it, store the forwarded value at [r4], stop the server, halt.
 *  Word 4 always carries the software-dispatch id so the same client
 *  drives basic servers (which ignore the wire type). */
const char *istructClient = R"(
entry:
    li   o0, (1 << NODE_SHIFT) | 0x2200
    li   o1, 0x100             ; reply FP
    addi o4, r0, T_PREAD
    add  o2, r0, r0 !send=4    ; T_PREAD: defers
    li   o0, (1 << NODE_SHIFT) | 0x2200
    li   o1, 0                 ; no ack
    addi o4, r0, T_PWRITE
    addi r6, r0, 0x77
    add  o2, r6, r0 !send=5    ; T_PWRITE: wakes the reader
wait:
    and  r5, status, r7
    beqz r5, wait
    nop
    st   i2, r4, r0 !next
    li   o0, (1 << NODE_SHIFT)
    addi o4, r0, T_STOP
    send 15
    halt
)";

/** Two-node machine: register-mapped client, @p server_model server
 *  running the stock kernels (HPU + host proxy on On-NI nodes). */
struct Machine
{
    System sys;
    isa::Program server;

    explicit Machine(const ni::Model &server_model,
                     HpuConfig hpu_cfg = {})
        : sys("hpu_test", 2, 1, configs(server_model, hpu_cfg)),
          server(msg::assembleKernel(msg::handlerProgram(server_model)))
    {
        sys.node(1).boot(server, server.addrOf("entry"));
        sys.node(1).mem().write(msg::allocPtrAddr, 0x40000);
        if (server_model.policy().handlersOnNi()) {
            isa::Program host = msg::assembleKernel(
                msg::hostProxyProgram(server_model));
            sys.node(1).bootHost(host, host.addrOf("entry"));
        }
        isa::Program client = msg::assembleKernel(istructClient);
        sys.node(0).boot(client, client.addrOf("entry"));
        sys.node(0).cpu().setReg(7, 1u << ni::status::msgValidBit);
        sys.node(0).cpu().setReg(4, 0x100);
    }

    static std::vector<NodeConfig>
    configs(const ni::Model &server_model, const HpuConfig &hpu_cfg)
    {
        NodeConfig client;
        client.ni =
            ni::Model{ni::Placement::registerFile, true}.config();
        NodeConfig server;
        server.ni = server_model.config();
        server.hpu = hpu_cfg;
        return {client, server};
    }
};

} // namespace

// ---- dispatch cost ---------------------------------------------------

TEST(HpuDispatch, OptimizedOnNiMatchesRegisterMapped)
{
    // The acceptance bound: the HPU's permanent register coupling
    // must make dispatch no slower than the best host placement (the
    // optimized register-mapped interface dispatches in 1 cycle).
    cost::Table1Harness reg(
        ni::Model{ni::Placement::registerFile, true});
    cost::Table1Harness onni(onniOpt);
    double reg_disp =
        reg.processingCost(cost::ProcCase::read).dispatching;
    double onni_disp =
        onni.processingCost(cost::ProcCase::read).dispatching;
    EXPECT_DOUBLE_EQ(reg_disp, 1.0);
    EXPECT_LE(onni_disp, reg_disp);
}

TEST(HpuDispatch, BasicOnNiMatchesBasicRegisterMapped)
{
    // The basic HPU polls STATUS and indexes the software dispatch
    // table just like the basic register-mapped host -- same cost.
    cost::Table1Harness reg(
        ni::Model{ni::Placement::registerFile, false});
    cost::Table1Harness onni(onniBasic);
    EXPECT_DOUBLE_EQ(
        onni.processingCost(cost::ProcCase::read).dispatching,
        reg.processingCost(cost::ProcCase::read).dispatching);
}

// ---- end-to-end offload ----------------------------------------------

TEST(HpuSystem, HandlersRunOnHpuNotCpu)
{
    Machine m(onniOpt);
    ASSERT_TRUE(m.sys.run(100000));
    EXPECT_EQ(m.sys.node(0).mem().read(0x100), 0x77u);

    Hpu *hpu = m.sys.node(1).hpu();
    ASSERT_NE(hpu, nullptr);
    EXPECT_GT(hpu->handlersRun(), 0u);

    // The host CPU never touches a handler region: it only runs the
    // proxy loop (host_* regions).
    auto cpu_regions = m.sys.node(1).cpu().regionCycles();
    EXPECT_EQ(cpu_regions.count("dispatching"), 0u);
    EXPECT_EQ(cpu_regions.count("processing"), 0u);
    EXPECT_GT(cpu_regions.count("host_proc"), 0u);
}

TEST(HpuSystem, NonOnNiNodesHaveNoHpu)
{
    Machine m(ni::Model{ni::Placement::registerFile, true});
    EXPECT_EQ(m.sys.node(1).hpu(), nullptr);
    EXPECT_EQ(m.sys.node(0).hpu(), nullptr);
    ASSERT_TRUE(m.sys.run(100000));
    EXPECT_EQ(m.sys.node(0).mem().read(0x100), 0x77u);
}

// ---- host-proxy escape ring ------------------------------------------

TEST(HpuSystem, EscapesPostToHostRing)
{
    Machine m(onniOpt);
    ASSERT_TRUE(m.sys.run(100000));

    // Three escapes: the deferred PRead, the PWrite (the host is the
    // single writer of I-structure state), and STOP.
    Hpu *hpu = m.sys.node(1).hpu();
    ASSERT_NE(hpu, nullptr);
    EXPECT_EQ(hpu->hostProxies(), 3u);

    Memory &mem = m.sys.node(1).mem();
    EXPECT_EQ(mem.read(msg::hostRingPiAddr), 3u);
    // Slot 0 holds the PRead: effective id, then i0.. (the element).
    EXPECT_EQ(mem.read(msg::hostRingBase),
              static_cast<Word>(msg::typePRead));
    EXPECT_EQ(mem.read(msg::hostRingBase + 4) & 0xffffffu, 0x2200u);
}

// ---- handler-time budget ---------------------------------------------

TEST(HpuSystem, BudgetOverrunsAreCountedNotEnforced)
{
    HpuConfig tight;
    tight.handlerBudget = 1;    // nothing real fits in one cycle
    Machine m(onniOpt, tight);
    ASSERT_TRUE(m.sys.run(100000));

    Hpu *hpu = m.sys.node(1).hpu();
    ASSERT_NE(hpu, nullptr);
    EXPECT_GT(hpu->budgetOverruns(), 0u);
    EXPECT_GT(hpu->maxHandlerCycles(), 1u);
    // The budget is a diagnostic contract, not a watchdog: the run
    // still completes correctly.
    EXPECT_EQ(m.sys.node(0).mem().read(0x100), 0x77u);
}

TEST(HpuSystem, GenerousBudgetNeverOverruns)
{
    HpuConfig loose;
    loose.handlerBudget = 10000;
    Machine m(onniOpt, loose);
    ASSERT_TRUE(m.sys.run(100000));
    EXPECT_EQ(m.sys.node(1).hpu()->budgetOverruns(), 0u);
}

// ---- basic variant ---------------------------------------------------

TEST(HpuSystem, BasicOnNiAlsoCompletes)
{
    // Basic servers ignore the wire type and software-dispatch on the
    // id the client carries in word 4.
    Machine m(onniBasic);
    ASSERT_TRUE(m.sys.run(200000));
    EXPECT_EQ(m.sys.node(0).mem().read(0x100), 0x77u);
    EXPECT_GT(m.sys.node(1).hpu()->handlersRun(), 0u);
}
