#include <gtest/gtest.h>

#include "common/bitfield.hh"

using namespace tcpni;

TEST(Bitfield, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(4), 0xfu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(64), ~0ULL);
    EXPECT_EQ(mask(65), ~0ULL);
}

TEST(Bitfield, ExtractRange)
{
    uint64_t v = 0xdeadbeefcafef00dULL;
    EXPECT_EQ(bits(v, 3, 0), 0xdu);
    EXPECT_EQ(bits(v, 7, 4), 0x0u);
    EXPECT_EQ(bits(v, 15, 0), 0xf00du);
    EXPECT_EQ(bits(v, 63, 32), 0xdeadbeefu);
    EXPECT_EQ(bits(v, 63, 0), v);
}

TEST(Bitfield, ExtractSingle)
{
    EXPECT_EQ(bits(0b1010u, 0), 0u);
    EXPECT_EQ(bits(0b1010u, 1), 1u);
    EXPECT_EQ(bits(0b1010u, 2), 0u);
    EXPECT_EQ(bits(0b1010u, 3), 1u);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 3, 0, 0xf), 0xfu);
    EXPECT_EQ(insertBits(0xffffffffu, 7, 4, 0), 0xffffff0fu);
    EXPECT_EQ(insertBits(0, 31, 26, 63), 0xfc000000u);
    // Value wider than the field is truncated.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(Bitfield, InsertPreservesOthers)
{
    uint64_t v = 0x1234'5678u;
    uint64_t w = insertBits(v, 15, 8, 0xab);
    EXPECT_EQ(w, 0x1234'ab78u);
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x7fff, 16), 32767);
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0, 16), 0);
    EXPECT_EQ(sext(0xf, 4), -1);
    EXPECT_EQ(sext(0x7, 4), 7);
}

TEST(Bitfield, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_TRUE(fitsSigned(-32768, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_FALSE(fitsSigned(-32769, 16));
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(Bitfield, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(65535, 16));
    EXPECT_FALSE(fitsUnsigned(65536, 16));
    EXPECT_TRUE(fitsUnsigned(0, 1));
}

// Round-trip property: inserting then extracting returns the value.
class BitfieldRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitfieldRoundTrip, InsertExtract)
{
    unsigned last = GetParam();
    unsigned first = last + 7;
    for (uint64_t v : {0ULL, 1ULL, 0x5aULL, 0xffULL}) {
        uint64_t w = insertBits(0xffffffffffffffffULL, first, last, v);
        EXPECT_EQ(bits(w, first, last), v & 0xff);
    }
}

INSTANTIATE_TEST_SUITE_P(Positions, BitfieldRoundTrip,
                         ::testing::Values(0u, 4u, 13u, 24u, 42u, 56u));
