#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/trace.hh"
#include "sim/event_queue.hh"

using namespace tcpni;
using namespace tcpni::trace;

namespace
{

/** Reset global trace state around every test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        disableAll();
        setStream(&captured_);
        setSink(nullptr);
    }

    void
    TearDown() override
    {
        disableAll();
        setStream(nullptr);
        setSink(nullptr);
    }

    std::string out() const { return captured_.str(); }

    std::ostringstream captured_;
};

TEST_F(TraceTest, FlagsStartDisabled)
{
    for (Flag f : {Flag::NI, Flag::NOC, Flag::CPU, Flag::DISPATCH,
                   Flag::EVENT, Flag::TAM})
        EXPECT_FALSE(enabled(f)) << flagName(f);
}

TEST_F(TraceTest, EnableDisable)
{
    enable(Flag::NI);
    EXPECT_TRUE(enabled(Flag::NI));
    EXPECT_FALSE(enabled(Flag::NOC));
    enable(Flag::NOC);
    disable(Flag::NI);
    EXPECT_FALSE(enabled(Flag::NI));
    EXPECT_TRUE(enabled(Flag::NOC));
    enableAll();
    EXPECT_TRUE(enabled(Flag::TAM));
    EXPECT_TRUE(enabled(Flag::EVENT));
    disableAll();
    EXPECT_FALSE(enabled(Flag::TAM));
}

TEST_F(TraceTest, ParseFlagIsCaseInsensitive)
{
    Flag f;
    EXPECT_TRUE(parseFlag("NI", f));
    EXPECT_EQ(f, Flag::NI);
    EXPECT_TRUE(parseFlag("dispatch", f));
    EXPECT_EQ(f, Flag::DISPATCH);
    EXPECT_TRUE(parseFlag("Noc", f));
    EXPECT_EQ(f, Flag::NOC);
    EXPECT_FALSE(parseFlag("bogus", f));
}

TEST_F(TraceTest, SetFromString)
{
    EXPECT_TRUE(setFromString("NI,NOC"));
    EXPECT_TRUE(enabled(Flag::NI));
    EXPECT_TRUE(enabled(Flag::NOC));
    EXPECT_FALSE(enabled(Flag::CPU));

    disableAll();
    EXPECT_TRUE(setFromString("all"));
    for (Flag f : {Flag::NI, Flag::NOC, Flag::CPU, Flag::DISPATCH,
                   Flag::EVENT, Flag::TAM})
        EXPECT_TRUE(enabled(f)) << flagName(f);

    disableAll();
    // Unknown tokens are skipped (with a warning) but known ones still
    // take effect.
    EXPECT_FALSE(setFromString("NI,bogus"));
    EXPECT_TRUE(enabled(Flag::NI));
}

TEST_F(TraceTest, InitFromEnv)
{
    ::setenv("TCPNI_TRACE", "CPU,TAM", 1);
    initFromEnv();
    ::unsetenv("TCPNI_TRACE");
    EXPECT_TRUE(enabled(Flag::CPU));
    EXPECT_TRUE(enabled(Flag::TAM));
    EXPECT_FALSE(enabled(Flag::NI));
}

TEST_F(TraceTest, EmitFormat)
{
    enable(Flag::NI);
    emit(Flag::NI, 42, "node0.ni", "send type=%u", 3u);
    EXPECT_EQ(out(), "42: node0.ni: send type=3\n");
}

TEST_F(TraceTest, MacroSkipsWhenDisabled)
{
    int evaluations = 0;
    auto cost = [&]() { ++evaluations; return 1; };
    TCPNI_TRACE_AT(NI, 0, "t", "%d", cost());
    EXPECT_EQ(evaluations, 0);      // disabled: args unevaluated
    enable(Flag::NI);
    TCPNI_TRACE_AT(NI, 0, "t", "%d", cost());
    EXPECT_EQ(evaluations, 1);
    EXPECT_EQ(out(), "0: t: 1\n");
}

TEST_F(TraceTest, TraceIdsAreMonotonicAndPerQueue)
{
    // Trace ids are allocated per EventQueue so independent
    // simulations (including parallel sweep workers) see identical,
    // reproducible sequences.
    EventQueue eq1, eq2;
    uint64_t a = eq1.nextTraceId();
    uint64_t b = eq1.nextTraceId();
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(eq2.nextTraceId(), 1u);
}

TEST_F(TraceTest, SinkRecordsLifecycle)
{
    TraceSink s;
    setSink(&s);
    ASSERT_EQ(sink(), &s);

    sink()->record(7, Stage::inject, 0, 100, 2);
    sink()->record(7, Stage::hop, 1, 101, 2);
    sink()->record(7, Stage::arrive, 2, 102, 2);
    sink()->record(7, Stage::dispatch, 2, 103, 2);
    sink()->record(7, Stage::done, 2, 110, 2);
    sink()->record(8, Stage::inject, 1, 105, 0);    // incomplete

    EXPECT_EQ(s.events().size(), 6u);
    auto life = s.lifecycle(7);
    ASSERT_EQ(life.size(), 5u);
    EXPECT_EQ(life.front().stage, Stage::inject);
    EXPECT_EQ(life.back().stage, Stage::done);
    EXPECT_EQ(s.completeLifecycles(), 1u);

    s.clear();
    EXPECT_TRUE(s.events().empty());
}

TEST_F(TraceTest, SinkLimitCountsDrops)
{
    TraceSink s;
    s.setLimit(2);
    s.record(1, Stage::inject, 0, 0, 0);
    s.record(1, Stage::arrive, 0, 1, 0);
    s.record(1, Stage::dispatch, 0, 2, 0);
    EXPECT_EQ(s.events().size(), 2u);
    EXPECT_EQ(s.dropped(), 1u);
}

TEST_F(TraceTest, ChromeTraceOutput)
{
    TraceSink s;
    s.record(9, Stage::inject, 0, 10, 2);
    s.record(9, Stage::hop, 1, 11, 2);
    s.record(9, Stage::arrive, 2, 12, 2);
    s.record(9, Stage::dispatch, 2, 14, 2);
    s.record(9, Stage::done, 2, 20, 2);

    std::ostringstream os;
    s.writeChromeTrace(os);
    std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"network\""), std::string::npos);
    EXPECT_NE(json.find("\"queued\""), std::string::npos);
    EXPECT_NE(json.find("\"handler\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Balanced JSON braces/brackets.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

} // namespace
