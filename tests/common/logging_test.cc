#include <gtest/gtest.h>

#include "common/logging.hh"

using namespace tcpni;

TEST(Logging, PanicThrowsInTestMode)
{
    ASSERT_TRUE(logging::throwOnError);
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(Logging, FatalThrowsInTestMode)
{
    EXPECT_THROW(fatal("user error: %s", "bad config"), FatalError);
}

TEST(Logging, PanicMessageFormatting)
{
    try {
        panic("value=%d name=%s", 7, "seven");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=seven");
    }
}

TEST(Logging, FatalIsNotPanic)
{
    // FatalError and PanicError are distinct types under SimError.
    EXPECT_THROW(fatal("x"), SimError);
    try {
        fatal("x");
    } catch (const PanicError &) {
        FAIL() << "fatal threw PanicError";
    } catch (const FatalError &) {
        SUCCEED();
    }
}

TEST(Logging, AssertMacro)
{
    EXPECT_NO_THROW(tcpni_assert(1 + 1 == 2));
    EXPECT_THROW(tcpni_assert(1 + 1 == 3), PanicError);
}

TEST(Logging, InformAndWarnDoNotThrow)
{
    bool saved = logging::quiet;
    logging::quiet = true;
    EXPECT_NO_THROW(inform("hello %d", 1));
    EXPECT_NO_THROW(warn("careful %s", "there"));
    logging::quiet = saved;
}
