#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

using namespace tcpni;

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"Action", "Count"});
    t.row({"send", "2"});
    t.row({"dispatch-long-name", "12345"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();

    // Both data rows contain the separator at the same column.
    std::istringstream lines(out);
    std::string header, sep, r1, r2;
    std::getline(lines, header);
    std::getline(lines, sep);
    std::getline(lines, r1);
    std::getline(lines, r2);
    EXPECT_EQ(r1.find('|'), r2.find('|'));
    EXPECT_EQ(header.find('|'), r1.find('|'));
}

TEST(TextTable, SeparatorRendersAsDashes)
{
    TextTable t;
    t.header({"a"});
    t.row({"x"});
    t.separator();
    t.row({"y"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // header separator + explicit separator = at least 2 dash lines
    size_t dashes = 0;
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        if (!line.empty() && line.find_first_not_of('-') ==
                                 std::string::npos)
            ++dashes;
    }
    EXPECT_EQ(dashes, 2u);
}

TEST(TextTable, ShortRowsPad)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"1", "2", "3"});
    std::ostringstream os;
    EXPECT_NO_THROW(t.print(os));
}
