#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stats.hh"

using namespace tcpni;
using namespace tcpni::stats;

TEST(Scalar, IncrementAndAssign)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0);
    ++s;
    ++s;
    EXPECT_EQ(s.value(), 2);
    s += 10;
    EXPECT_EQ(s.value(), 12);
    s = 5;
    EXPECT_EQ(s.value(), 5);
    s.reset();
    EXPECT_EQ(s.value(), 0);
}

TEST(Vector, GrowsOnDemand)
{
    Vector v;
    v[3] = 7;
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v.at(3), 7);
    EXPECT_EQ(v.at(0), 0);
    EXPECT_EQ(v.at(100), 0);    // out-of-range reads as 0
}

TEST(Vector, Total)
{
    Vector v(4);
    v[0] = 1;
    v[1] = 2;
    v[3] = 4;
    EXPECT_EQ(v.total(), 7);
    v.reset();
    EXPECT_EQ(v.total(), 0);
}

TEST(Distribution, MeanAndBounds)
{
    Distribution d(0, 100, 10);
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
}

TEST(Distribution, Stddev)
{
    Distribution d(0, 100, 10);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    // Known sample stddev of this set is ~2.138 (n-1 denominator).
    EXPECT_NEAR(d.stddev(), 2.138, 0.01);
}

TEST(Distribution, Buckets)
{
    Distribution d(0, 10, 10);
    d.sample(0.5);
    d.sample(5.5);
    d.sample(5.7);
    d.sample(9.9);
    EXPECT_EQ(d.buckets()[0], 1);
    EXPECT_EQ(d.buckets()[5], 2);
    EXPECT_EQ(d.buckets()[9], 1);
}

TEST(Distribution, OverflowUnderflow)
{
    Distribution d(10, 20, 5);
    d.sample(5);
    d.sample(25);
    d.sample(15);
    EXPECT_EQ(d.underflow(), 1);
    EXPECT_EQ(d.overflow(), 1);
    EXPECT_EQ(d.count(), 3);
}

TEST(Distribution, EmptyIsWellDefined)
{
    Distribution d(0, 100, 10);
    EXPECT_EQ(d.count(), 0);
    // No samples: the moments must be 0, never NaN or a division by
    // zero.
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_FALSE(std::isnan(d.mean()));
    EXPECT_FALSE(std::isnan(d.stddev()));
}

TEST(Distribution, SingleSampleStddevIsZero)
{
    Distribution d(0, 100, 10);
    d.sample(42.0);
    // count < 2: the n-1 denominator would divide by zero; the guard
    // must return 0 instead.
    EXPECT_EQ(d.count(), 1);
    EXPECT_DOUBLE_EQ(d.mean(), 42.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_FALSE(std::isnan(d.stddev()));
}

TEST(TimeWeighted, TimeWeightedAverage)
{
    TimeWeighted tw;
    tw.update(4, 0);        // level 4 from tick 0
    tw.update(0, 10);       // ...until tick 10, then empty
    tw.update(0, 20);       // stays empty until tick 20
    // 4*10 + 0*10 over 20 ticks = 2.0, even though 2 of the 3 samples
    // were 0 (a sample-weighted mean would say 1.33).
    EXPECT_DOUBLE_EQ(tw.avg(), 2.0);
    EXPECT_EQ(tw.max(), 4u);
    EXPECT_EQ(tw.current(), 0u);
}

TEST(TimeWeighted, NoTimeElapsed)
{
    TimeWeighted tw;
    EXPECT_DOUBLE_EQ(tw.avg(), 0.0);
    tw.update(3, 0);
    EXPECT_DOUBLE_EQ(tw.avg(), 3.0);    // degenerate: current level
    EXPECT_EQ(tw.max(), 3u);
}

TEST(Distribution, WeightedSamples)
{
    Distribution d(0, 10, 10);
    d.sample(2.0, 3);
    EXPECT_EQ(d.count(), 3);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(StatGroup, DumpFormat)
{
    Scalar s;
    s = 42;
    StatGroup g("node0.ni");
    g.addScalar("sent", &s, "messages sent");
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("node0.ni.sent"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("messages sent"), std::string::npos);
}

TEST(StatGroup, DumpVector)
{
    Vector v(2);
    v[0] = 1;
    v[1] = 2;
    StatGroup g("g");
    g.addVector("counts", &v);
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("g.counts[0]"), std::string::npos);
    EXPECT_NE(out.find("g.counts.total"), std::string::npos);
}

TEST(StatGroup, DumpJson)
{
    Scalar s;
    s = 7;
    Vector v(2);
    v[0] = 1;
    v[1] = 2;
    Distribution d(0, 10, 2);
    d.sample(1);
    d.sample(9);
    TimeWeighted tw;
    tw.update(2, 0);
    tw.update(0, 4);

    StatGroup g("node0.ni");
    g.addScalar("sent", &s, "messages sent");
    g.addVector("byType", &v);
    g.addDistribution("latency", &d);
    g.addTimeWeighted("occupancy", &tw);

    std::ostringstream os;
    g.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"name\":\"node0.ni\""), std::string::npos);
    EXPECT_NE(out.find("\"sent\":7"), std::string::npos);
    EXPECT_NE(out.find("\"total\":3"), std::string::npos);
    EXPECT_NE(out.find("\"count\":2"), std::string::npos);
    EXPECT_NE(out.find("\"mean\":5"), std::string::npos);
    EXPECT_NE(out.find("\"avg\":2"), std::string::npos);
    // Must be one syntactically balanced object.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
}

TEST(JsonEscape, SpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
}
