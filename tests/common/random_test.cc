#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"

using namespace tcpni;

TEST(Random, DeterministicFromSeed)
{
    Random a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next32() == b.next32())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Random, ReseedRestoresStream)
{
    Random a(99);
    std::vector<uint32_t> first;
    for (int i = 0; i < 10; ++i)
        first.push_back(a.next32());
    a.seed(99);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next32(), first[i]);
}

TEST(Random, UniformRespectsBounds)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i) {
        uint32_t v = r.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Random, UniformCoversRange)
{
    Random r(7);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.uniform(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, UniformSingleValue)
{
    Random r(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(Random, UniformDoubleInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U(0,1) is 0.5; a 10k-sample mean should be near it.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ExponentialMean)
{
    Random r(13);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Random, ChanceExtremes)
{
    Random r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, ZeroSeedIsValid)
{
    Random r(0);
    // Must not get stuck producing zeros.
    int nonzero = 0;
    for (int i = 0; i < 100; ++i) {
        if (r.next32() != 0)
            ++nonzero;
    }
    EXPECT_GT(nonzero, 90);
}
