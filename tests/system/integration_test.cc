#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "ni/model_registry.hh"
#include "msg/protocol.hh"
#include "system/system.hh"

using namespace tcpni;
using namespace tcpni::sys;

namespace
{

NodeConfig
nodeCfg(ni::Placement p, bool optimized)
{
    NodeConfig cfg;
    cfg.ni.placement = p;
    cfg.ni.features =
        optimized ? ni::Features::optimized() : ni::Features::basic();
    return cfg;
}

/** Boot the stock handler server on @p node. */
isa::Program
bootServer(System &m, NodeId node, const ni::Model &model)
{
    isa::Program server =
        msg::assembleKernel(msg::handlerProgram(model));
    m.node(node).boot(server, server.addrOf("entry"));
    m.node(node).mem().write(msg::allocPtrAddr, 0x40000);
    return server;
}

/** A client that issues one READ to node 1 address 0x2100, stores the
 *  reply at 0x100, stops the server, and halts. */
std::string
readClient(bool optimized)
{
    if (optimized) {
        return R"(
        entry:
            li   o0, (1 << NODE_SHIFT) | 0x2100
            li   o1, 0
            add  o2, r0, r0 !send=2
        wait:
            and  r5, status, r7
            beqz r5, wait
            nop
            st   i2, r4, r0 !next
            li   o0, (1 << NODE_SHIFT)
            send 15
            halt
        )";
    }
    // Basic: id in o4, poll STATUS.
    return R"(
    entry:
        li   o0, (1 << NODE_SHIFT) | 0x2100
        li   o1, 0
        li   o2, 0
        addi o4, r0, T_READ
        send
    wait:
        and  r5, status, r7
        beqz r5, wait
        nop
        st   i2, r4, r0 !next
        li   o0, (1 << NODE_SHIFT)
        addi o4, r0, T_STOP
        send
        halt
    )";
}

class SystemModels
    : public ::testing::TestWithParam<ni::Model>
{
};

} // namespace

TEST_P(SystemModels, ReadRoundTripOverMesh)
{
    ni::Model model = GetParam();
    // Register-mapped clients only (the client kernel above uses
    // register aliases); cache-mapped servers get a register client.
    NodeConfig server_cfg = nodeCfg(model.placement, model.optimized);
    NodeConfig client_cfg =
        nodeCfg(ni::Placement::registerFile, model.optimized);
    System machine("it", 2, 1, {client_cfg, server_cfg});

    bootServer(machine, 1, model);
    machine.node(1).mem().write(0x2100, 0xbeef);

    isa::Program client =
        msg::assembleKernel(readClient(model.optimized));
    machine.node(0).boot(client, client.addrOf("entry"));
    machine.node(0).cpu().setReg(7, 1u << ni::status::msgValidBit);
    machine.node(0).cpu().setReg(4, 0x100);

    ASSERT_TRUE(machine.run(100000));
    EXPECT_EQ(machine.node(0).mem().read(0x100), 0xbeefu);
    EXPECT_TRUE(machine.node(1).cpu().halted());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, SystemModels, ::testing::ValuesIn(ni::paperModels()),
    [](const ::testing::TestParamInfo<ni::Model> &info) {
        std::string n = info.param.shortName();
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST(SystemIntegration, FourNodeMeshAllServersServed)
{
    // One client, three servers on a 2x2 mesh; the client writes then
    // reads each server (the remote_memory example's scenario).
    NodeConfig cfg = nodeCfg(ni::Placement::registerFile, true);
    System machine("quad", 2, 2, cfg);

    ni::Model model{ni::Placement::registerFile, true};
    for (NodeId n = 1; n <= 3; ++n)
        bootServer(machine, n, model);

    isa::Program client = msg::assembleKernel(R"(
    entry:
        lis  r1, 1                 ; server
        lis  r3, 0                 ; sum
        lis  r9, 3
    next_server:
        slli r5, r1, NODE_SHIFT
        ori  r5, r5, 0x3000
        mul  r6, r1, r11           ; r11 = 10
        add  o0, r5, r0
        add  o1, r6, r0 !send=3    ; WRITE
        add  o0, r5, r0
        add  o1, r13, r0           ; reply FP = node 0
        add  o2, r0, r0 !send=2    ; READ
    wait:
        and  r8, status, r7
        beqz r8, wait
        nop
        add  r3, r3, i2
        next
        addi r1, r1, 1
        addi r9, r9, -1
        bnez r9, next_server
        nop
        sti  r3, r0, 0x200
        lis  r1, 1
        lis  r9, 3
    stops:
        slli r5, r1, NODE_SHIFT
        add  o0, r5, r0
        send 15
        addi r1, r1, 1
        addi r9, r9, -1
        bnez r9, stops
        nop
        halt
    )");
    machine.node(0).boot(client, client.addrOf("entry"));
    machine.node(0).cpu().setReg(7, 1u << ni::status::msgValidBit);
    machine.node(0).cpu().setReg(11, 10);
    machine.node(0).cpu().setReg(13, globalWord(0, 0));

    ASSERT_TRUE(machine.run(200000));
    EXPECT_EQ(machine.node(0).mem().read(0x200), 60u);
    for (NodeId n = 1; n <= 3; ++n) {
        EXPECT_EQ(machine.node(n).mem().read(0x3000), 10u * n);
        EXPECT_TRUE(machine.node(n).cpu().halted());
    }
}

TEST(SystemIntegration, BackpressurePreservesEveryMessage)
{
    // A sender floods a slow receiver through tiny queues; nothing is
    // lost and the sender observes SEND stalls.
    NodeConfig sender = nodeCfg(ni::Placement::registerFile, true);
    sender.ni.outputQueueDepth = 2;
    sender.ni.outputThreshold = 2;      // == depth: oafull never raises
    NodeConfig receiver = sender;
    receiver.ni.inputQueueDepth = 2;
    receiver.ni.inputThreshold = 2;
    System machine("flood", 2, 1, {sender, receiver});

    // Receiver: count type-2 messages at 0x600 with a slow handler.
    isa::Program server = msg::assembleKernel(R"(
        .org 0x4000
    poll:
        jmp  msgip
        nop
        .align HANDLER_STRIDE
        halt
        .align HANDLER_STRIDE
    h2:
        ldi  r1, r0, 0x600
        addi r1, r1, 1
        sti  r1, r0, 0x600
        lis  r2, 6
    spin:
        addi r2, r2, -1
        bnez r2, spin
        nop
        next
        br   poll
        nop
        .align HANDLER_STRIDE
        .space (HANDLER_STRIDE/4) * 12
    stop:
        halt
        .align HANDLER_STRIDE
    entry:
        li   ipbase, 0x4000
        br   poll
        nop
    )");
    machine.node(1).boot(server, server.addrOf("entry"));

    isa::Program client = msg::assembleKernel(R"(
    entry:
        li   o0, (1 << NODE_SHIFT)
        lis  r1, 25
    flood:
        send 2
        addi r1, r1, -1
        bnez r1, flood
        nop
        send 15
        halt
    )");
    machine.node(0).boot(client, client.addrOf("entry"));

    ASSERT_TRUE(machine.run(100000));
    EXPECT_EQ(machine.node(1).mem().read(0x600), 25u);
    EXPECT_GT(machine.node(0).cpu().niStallCycles(), 0u);
}

TEST(SystemIntegration, PinMismatchEscrowedSystemWide)
{
    // Two processes share the machine; a message tagged with the
    // wrong PIN is escrowed at the receiver, not delivered.
    NodeConfig cfg = nodeCfg(ni::Placement::registerFile, true);
    System machine("pins", 2, 1, cfg);

    // Receiver checks PINs; its active process is 7.
    Word ctl = machine.node(1).ni().readReg(ni::regControl);
    ctl |= 1u << ni::control::checkPinBit;
    ctl = static_cast<Word>(insertBits(ctl, ni::control::pinShift + 7,
                                       ni::control::pinShift, 7));
    machine.node(1).ni().writeReg(ni::regControl, ctl);

    // Sender's process is 3.
    Word sctl = machine.node(0).ni().readReg(ni::regControl);
    sctl = static_cast<Word>(insertBits(
        sctl, ni::control::pinShift + 7, ni::control::pinShift, 3));
    machine.node(0).ni().writeReg(ni::regControl, sctl);

    isa::Program client = msg::assembleKernel(R"(
    entry:
        li   o0, (1 << NODE_SHIFT)
        lis  o1, 0x77
        send 2
        halt
    )");
    machine.node(0).boot(client, client.addrOf("entry"));
    machine.run(10000);

    EXPECT_FALSE(machine.node(1).ni().msgValid());
    ASSERT_TRUE(machine.node(1).ni().hasPrivileged());
    Message m = machine.node(1).ni().popPrivileged();
    EXPECT_EQ(m.pin, 3);
    EXPECT_EQ(m.words[1], 0x77u);
}

TEST(SystemIntegration, MeshLatencyVisibleEndToEnd)
{
    // The same request takes longer across a 4x1 mesh than 2x1.
    auto round_trip = [](unsigned width) {
        NodeConfig cfg = nodeCfg(ni::Placement::registerFile, true);
        System machine("lat", width, 1, cfg);
        NodeId server = width - 1;

        ni::Model model{ni::Placement::registerFile, true};
        isa::Program sp =
            msg::assembleKernel(msg::handlerProgram(model));
        machine.node(server).boot(sp, sp.addrOf("entry"));
        machine.node(server).mem().write(0x2100, 1);

        std::string src = R"(
        entry:
            li   o0, (DEST << NODE_SHIFT) | 0x2100
            li   o1, 0
            add  o2, r0, r0 !send=2
        wait:
            and  r5, status, r7
            beqz r5, wait
            nop
            li   o0, (DEST << NODE_SHIFT)
            send 15
            halt
        )";
        isa::Program client = isa::assemble(
            ".equ DEST, " + std::to_string(server) + "\n" + src,
            msg::kernelSymbols());
        machine.node(0).boot(client, client.addrOf("entry"));
        machine.node(0).cpu().setReg(7,
                                     1u << ni::status::msgValidBit);
        EXPECT_TRUE(machine.run(100000));
        return machine.node(0).cpu().cycles();
    };

    uint64_t near = round_trip(2);
    uint64_t far = round_trip(4);
    EXPECT_GT(far, near);
}

TEST(SystemIntegration, StatsDumpContainsComponents)
{
    NodeConfig cfg = nodeCfg(ni::Placement::registerFile, true);
    System machine("statsy", 2, 1, cfg);

    isa::Program client = msg::assembleKernel(R"(
    entry:
        li   o0, (1 << NODE_SHIFT)
        send 2
        send 2
        halt
    )");
    machine.node(0).boot(client, client.addrOf("entry"));
    machine.run(10000);

    std::ostringstream os;
    machine.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("statsy.node0.ni.sent"), std::string::npos);
    EXPECT_NE(out.find("statsy.node1.ni.received"), std::string::npos);
    EXPECT_NE(out.find("statsy.mesh.latency"), std::string::npos);
    // The two sends show up in the sender's counter line.
    std::istringstream lines(out);
    std::string line;
    bool found = false;
    while (std::getline(lines, line)) {
        if (line.find("node0.ni.sent") != std::string::npos) {
            EXPECT_NE(line.find(" 2"), std::string::npos) << line;
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(SystemIntegration, GangTimeSliceWithNetworkDrain)
{
    // Section 2.1.3's first multi-user mechanism: "if all processors
    // context switch synchronously, or time-slice, then [messages for
    // inactive processes] can be avoided by draining the network in
    // between time-slices" (the CM-5 strategy).  Process 3 runs,
    // sends traffic, the OS drains, every node gang-switches to
    // process 9 -- and nothing lands in privileged escrow.
    NodeConfig cfg = nodeCfg(ni::Placement::registerFile, true);
    System machine("gang", 2, 1, cfg);

    auto set_pin = [&](NodeId n, uint8_t pin) {
        Word ctl = machine.node(n).ni().readReg(ni::regControl);
        ctl |= 1u << ni::control::checkPinBit;
        ctl = static_cast<Word>(insertBits(
            ctl, ni::control::pinShift + 7, ni::control::pinShift,
            pin));
        machine.node(n).ni().writeReg(ni::regControl, ctl);
    };
    set_pin(0, 3);
    set_pin(1, 3);

    // Process 3 sends a burst from node 0 to node 1.
    isa::Program burst = msg::assembleKernel(R"(
    entry:
        li   o0, (1 << NODE_SHIFT)
        lis  r1, 6
    go: send 2
        addi r1, r1, -1
        bnez r1, go
        nop
        halt
    )");
    machine.node(0).boot(burst, burst.addrOf("entry"));

    // Time-slice boundary: drain the network before switching.
    ASSERT_TRUE(machine.run(100000));
    EXPECT_TRUE(machine.mesh().idle());
    EXPECT_EQ(machine.node(0).ni().outputQueueLen(), 0u);

    // The OS consumes process 3's delivered messages, then
    // gang-switches both nodes to process 9.
    isa::NiCommand next;
    next.next = true;
    while (machine.node(1).ni().msgValid())
        machine.node(1).ni().command(next);
    set_pin(0, 9);
    set_pin(1, 9);

    // Process 9 runs; its traffic flows normally and nothing was
    // escrowed across the switch.
    machine.node(0).cpu().reset(burst.addrOf("entry"));
    machine.node(0).cpu().start();
    ASSERT_TRUE(machine.run(100000));
    EXPECT_FALSE(machine.node(1).ni().hasPrivileged());
    EXPECT_EQ(machine.node(1).ni().numReceived(), 12u);
    EXPECT_EQ(machine.node(1).ni().pendingException(),
              ni::ExcCode::none);
}
