/**
 * @file
 * Determinism regression tests: the same System configuration must
 * produce bit-identical statistics JSON and an identical message
 * trace-id sequence on every run -- serially, and for every copy of
 * the simulation when several run concurrently under SweepRunner.
 * This is the contract that makes the parallel sweep engine's output
 * byte-equal to a serial run's.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "sim/sweep.hh"
#include "system/system.hh"

using namespace tcpni;
using namespace tcpni::sys;

namespace
{

struct RunFingerprint
{
    std::string statsJson;
    /** Message trace ids in lifecycle-event record order, with the
     *  stage at which each was recorded. */
    std::vector<std::pair<uint64_t, trace::Stage>> idSequence;

    bool
    operator==(const RunFingerprint &o) const
    {
        return statsJson == o.statsJson && idSequence == o.idSequence;
    }
};

/**
 * One client on a 2x2 mesh writing then reading three servers (the
 * remote-memory scenario of the integration tests): enough traffic to
 * exercise the NIs, the mesh, dispatch, and replies.
 */
RunFingerprint
runWorkload(EventQueue::Impl impl = EventQueue::Impl::calendar)
{
    // The lifecycle sink is thread-local: each SweepRunner worker
    // installs its own and unhooks before returning.
    trace::TraceSink sink;
    trace::setSink(&sink);

    NodeConfig cfg;
    cfg.ni.placement = ni::Placement::registerFile;
    cfg.ni.features = ni::Features::optimized();
    System machine("det", 2, 2, cfg, impl);

    ni::Model model{ni::Placement::registerFile, true};
    isa::Program server =
        msg::assembleKernel(msg::handlerProgram(model));
    for (NodeId n = 1; n <= 3; ++n) {
        machine.node(n).boot(server, server.addrOf("entry"));
        machine.node(n).mem().write(msg::allocPtrAddr, 0x40000);
    }

    isa::Program client = msg::assembleKernel(R"(
    entry:
        lis  r1, 1
        lis  r3, 0
        lis  r9, 3
    next_server:
        slli r5, r1, NODE_SHIFT
        ori  r5, r5, 0x3000
        mul  r6, r1, r11
        add  o0, r5, r0
        add  o1, r6, r0 !send=3
        add  o0, r5, r0
        add  o1, r13, r0
        add  o2, r0, r0 !send=2
    wait:
        and  r8, status, r7
        beqz r8, wait
        nop
        add  r3, r3, i2
        next
        addi r1, r1, 1
        addi r9, r9, -1
        bnez r9, next_server
        nop
        sti  r3, r0, 0x200
        lis  r1, 1
        lis  r9, 3
    stops:
        slli r5, r1, NODE_SHIFT
        add  o0, r5, r0
        send 15
        addi r1, r1, 1
        addi r9, r9, -1
        bnez r9, stops
        nop
        halt
    )");
    machine.node(0).boot(client, client.addrOf("entry"));
    machine.node(0).cpu().setReg(7, 1u << ni::status::msgValidBit);
    machine.node(0).cpu().setReg(11, 10);
    machine.node(0).cpu().setReg(13, globalWord(0, 0));

    EXPECT_TRUE(machine.run(200000));
    EXPECT_EQ(machine.node(0).mem().read(0x200), 60u);

    RunFingerprint fp;
    std::ostringstream os;
    machine.dumpStatsJson(os);
    fp.statsJson = os.str();
    for (const trace::LifecycleEvent &e : sink.events())
        fp.idSequence.emplace_back(e.id, e.stage);

    trace::setSink(nullptr);
    return fp;
}

} // namespace

TEST(Determinism, RepeatedSerialRunsAreBitIdentical)
{
    RunFingerprint a = runWorkload();
    RunFingerprint b = runWorkload();
    ASSERT_FALSE(a.statsJson.empty());
    ASSERT_FALSE(a.idSequence.empty());
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.idSequence, b.idSequence);
}

TEST(Determinism, TraceIdsRestartPerSimulation)
{
    // Per-EventQueue id allocation: every run's first tagged message
    // gets id 1, so sequences are comparable across runs.
    RunFingerprint fp = runWorkload();
    ASSERT_FALSE(fp.idSequence.empty());
    EXPECT_EQ(fp.idSequence.front().first, 1u);
}

TEST(Determinism, ParallelSweepCopiesMatchSerialRun)
{
    // Four copies of the same simulation racing on a thread pool must
    // each reproduce the serial fingerprint exactly.
    RunFingerprint serial = runWorkload();
    SweepRunner sweep(4);
    std::vector<RunFingerprint> copies = sweep.map<RunFingerprint>(
        4, [](size_t) { return runWorkload(); });
    for (size_t i = 0; i < copies.size(); ++i) {
        EXPECT_EQ(copies[i].statsJson, serial.statsJson)
            << "stats diverged in parallel copy " << i;
        EXPECT_EQ(copies[i].idSequence, serial.idSequence)
            << "trace ids diverged in parallel copy " << i;
    }
}

TEST(Determinism, CalendarAndHeapKernelsProduceIdenticalRuns)
{
    // The full machine under the calendar event kernel must be
    // indistinguishable -- stats, ticks, and message ids -- from the
    // same machine under the reference binary heap.
    RunFingerprint cal = runWorkload(EventQueue::Impl::calendar);
    RunFingerprint heap = runWorkload(EventQueue::Impl::binaryHeap);
    EXPECT_EQ(cal.statsJson, heap.statsJson);
    EXPECT_EQ(cal.idSequence, heap.idSequence);
}
