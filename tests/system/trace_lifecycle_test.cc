/**
 * @file
 * End-to-end message-lifecycle tracing over a real mesh: a pingpong
 * between the two nodes of a 2x1 mesh must produce a complete
 * inject -> hop -> arrive -> dispatch -> done record whose timing
 * matches the configured mesh latencies (1 cycle NI pump, 1 cycle per
 * hop, 1 cycle ejection).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/trace.hh"
#include "ni/network_interface.hh"
#include "noc/mesh.hh"

using namespace tcpni;
using namespace tcpni::trace;

namespace
{

class LifecycleTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        disableAll();
        setSink(&sink_);
    }

    void
    TearDown() override
    {
        setSink(nullptr);
        disableAll();
    }

    /** The inject events recorded so far, in order. */
    std::vector<LifecycleEvent>
    stage(Stage s) const
    {
        std::vector<LifecycleEvent> out;
        for (const LifecycleEvent &e : sink_.events())
            if (e.stage == s)
                out.push_back(e);
        return out;
    }

    TraceSink sink_;
};

/** Send one 1-word message src -> dst over the mesh, run the queue to
 *  completion, and consume the arrival with NEXT. */
void
sendAndConsume(EventQueue &eq, ni::NetworkInterface &src,
               ni::NetworkInterface &dst, NodeId dst_id)
{
    src.writeReg(ni::regO0, globalWord(dst_id, 0x100));
    src.writeReg(ni::regO1, 0xabcd);
    isa::NiCommand send;
    send.mode = isa::SendMode::send;
    send.type = 2;
    src.command(send);
    eq.run();

    isa::NiCommand next;
    next.next = true;
    dst.command(next);
}

TEST_F(LifecycleTest, PingpongLatencyMatchesMeshTiming)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 2, 1);
    ni::NiConfig cfg;
    ni::NetworkInterface ni0("node0.ni", eq, 0, mesh, cfg);
    ni::NetworkInterface ni1("node1.ni", eq, 1, mesh, cfg);

    // Ping: node 0 -> node 1.
    sendAndConsume(eq, ni0, ni1, 1);

    auto injects = stage(Stage::inject);
    auto hops = stage(Stage::hop);
    auto arrives = stage(Stage::arrive);
    auto dispatches = stage(Stage::dispatch);
    auto dones = stage(Stage::done);
    ASSERT_EQ(injects.size(), 1u);
    ASSERT_EQ(arrives.size(), 1u);
    ASSERT_EQ(dispatches.size(), 1u);
    ASSERT_EQ(dones.size(), 1u);

    uint64_t id = injects[0].id;
    EXPECT_GT(id, 0u);
    EXPECT_EQ(arrives[0].id, id);
    EXPECT_EQ(dispatches[0].id, id);
    EXPECT_EQ(dones[0].id, id);

    // One hop: nodes 0 and 1 are Manhattan distance 1 apart.
    ASSERT_EQ(hops.size(), 1u);
    EXPECT_EQ(hops[0].id, id);
    EXPECT_EQ(hops[0].node, 1u);

    // Timing: 1 cycle NI pump to enter the fabric, 1 cycle per hop,
    // 1 cycle to eject into the destination input queue; dispatch
    // happens the cycle the message reaches the head of the queue.
    Tick inject_tick = injects[0].tick;
    Tick dispatch_tick = dispatches[0].tick;
    EXPECT_EQ(dispatch_tick - inject_tick,
              static_cast<Tick>(1 + hops.size() + 1));

    // Stage ordering is strictly causal.
    EXPECT_LT(inject_tick, hops[0].tick);
    EXPECT_LE(hops[0].tick, arrives[0].tick);
    EXPECT_LE(arrives[0].tick, dispatch_tick);
    EXPECT_LE(dispatch_tick, dones[0].tick);

    // The whole round trip shows up as one complete lifecycle.
    EXPECT_EQ(sink_.completeLifecycles(), 1u);

    // Pong: node 1 -> node 0 behaves symmetrically.
    sink_.clear();
    sendAndConsume(eq, ni1, ni0, 0);
    auto pong_injects = stage(Stage::inject);
    auto pong_dispatches = stage(Stage::dispatch);
    ASSERT_EQ(pong_injects.size(), 1u);
    ASSERT_EQ(pong_dispatches.size(), 1u);
    EXPECT_EQ(pong_dispatches[0].id, pong_injects[0].id);
    EXPECT_EQ(stage(Stage::hop).size(), 1u);
    EXPECT_EQ(pong_dispatches[0].tick - pong_injects[0].tick,
              static_cast<Tick>(3));
    EXPECT_EQ(sink_.completeLifecycles(), 1u);
}

TEST_F(LifecycleTest, LatencyStatsMatchLifecycle)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 2, 1);
    ni::NiConfig cfg;
    ni::NetworkInterface ni0("node0.ni", eq, 0, mesh, cfg);
    ni::NetworkInterface ni1("node1.ni", eq, 1, mesh, cfg);

    sendAndConsume(eq, ni0, ni1, 1);

    // The NI's end-to-end latency distribution must agree with the
    // lifecycle record: one sample of inject -> dispatch cycles.
    EXPECT_EQ(ni1.e2eLatency().count(), 1);
    EXPECT_DOUBLE_EQ(ni1.e2eLatency().mean(), 3.0);
    EXPECT_EQ(ni1.netLatency().count(), 1);
    EXPECT_EQ(ni1.queueLatency().count(), 1);
    // net + queued = end-to-end.
    EXPECT_DOUBLE_EQ(ni1.netLatency().mean() +
                         ni1.queueLatency().mean(),
                     ni1.e2eLatency().mean());

    // Occupancy stats saw the queues become non-empty.
    EXPECT_GE(ni1.inputOccupancy().max(), 1u);
    EXPECT_GE(ni0.outputOccupancy().max(), 1u);
}

} // namespace
