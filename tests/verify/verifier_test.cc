/**
 * @file
 * Tests for the static kernel verifier.
 *
 * Two halves: the shipped kernels must verify clean under every model
 * (the positive corpus, mirroring the `lint_kernels` ctest), and each
 * diagnostic must provably fire on a kernel built to violate it (the
 * negative corpus).  The hazard analysis is additionally cross-checked
 * against the Table-1 timing harness: the statically-predicted load-use
 * stalls in the READ handler must equal the measured off-chip-minus-
 * on-chip processing-cycle delta.
 */

#include <gtest/gtest.h>

#include <string>

#include "cost/table1.hh"
#include "isa/assembler.hh"
#include "msg/kernels.hh"
#include "ni/config.hh"
#include "ni/model_registry.hh"
#include "ni/ni_regs.hh"
#include "verify/verifier.hh"

using namespace tcpni;
namespace v = tcpni::verify;

namespace
{

ni::Model
model(const std::string &short_name)
{
    for (const ni::Model &m : ni::paperModels()) {
        if (m.shortName() == short_name)
            return m;
    }
    ADD_FAILURE() << "no model " << short_name;
    return {};
}

isa::Program
asmProg(const std::string &src)
{
    isa::AsmResult res = isa::assembleAll(src, msg::kernelSymbols());
    EXPECT_TRUE(res.ok()) << (res.errors.empty()
                                  ? "?"
                                  : res.errors.front().message);
    return res.program;
}

/** A contract with a single hand-built root (isolates one check). */
v::Contract
oneRoot(const isa::Program &prog, const std::string &label,
        v::RootKind kind, unsigned type = 0, unsigned min_words = 0,
        unsigned max_words = 0)
{
    v::Contract c;
    v::Root r;
    r.entry = static_cast<Addr>(prog.symbols.at(label));
    r.name = label;
    r.kind = kind;
    r.type = type;
    r.minWords = min_words;
    r.maxWords = max_words;
    c.roots.push_back(r);
    return c;
}

bool
has(const v::Report &rep, v::Severity sev, const std::string &check,
    const std::string &substr)
{
    for (const v::Diag &d : rep.diags) {
        if (d.severity == sev && d.check == check &&
            d.message.find(substr) != std::string::npos)
            return true;
    }
    return false;
}

std::string
dump(const v::Report &rep)
{
    return rep.format();
}

} // namespace

// ---------------------------------------------------------------------
// Positive corpus: every shipped kernel is clean under its model.
// ---------------------------------------------------------------------

TEST(LintShipped, AllKernelsCleanUnderWerror)
{
    for (const ni::Model &m : ni::paperModels()) {
        std::vector<std::pair<std::string, std::string>> handlers;
        if (m.optimized) {
            handlers.emplace_back("handlers", msg::handlerProgram(m));
            if (m.placement != ni::Placement::registerFile) {
                handlers.emplace_back(
                    "handlers-no-overlap",
                    msg::handlerProgram(m, false, true));
            }
        } else {
            handlers.emplace_back("handlers",
                                  msg::handlerProgram(m, false));
            handlers.emplace_back("handlers-sw-checks",
                                  msg::handlerProgram(m, true));
        }
        for (const auto &[name, src] : handlers) {
            isa::Program prog = asmProg(src);
            v::Report rep = v::verifyHandlers(prog, m);
            EXPECT_TRUE(rep.clean(true))
                << m.shortName() << "/" << name << ":\n" << dump(rep);
        }

        static const msg::Kind kinds[] = {
            msg::Kind::send0, msg::Kind::send1, msg::Kind::send2,
            msg::Kind::read, msg::Kind::write, msg::Kind::pread,
            msg::Kind::pwrite,
        };
        for (msg::Kind k : kinds) {
            isa::Program prog = asmProg(msg::senderProgram(m, k, 4));
            v::Report rep = v::verifySender(prog, m);
            EXPECT_TRUE(rep.clean(true))
                << m.shortName() << "/send-" << msg::kindName(k)
                << ":\n" << dump(rep);
        }
    }
}

// ---------------------------------------------------------------------
// def-use
// ---------------------------------------------------------------------

TEST(DefUse, UndefinedGprRead)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    add  r6, r5, r0
    next
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      0, 0));
    EXPECT_TRUE(has(rep, v::Severity::error, "def-use", "r5"))
        << dump(rep);
}

TEST(DefUse, NiAliasReadsAreNotUndefined)
{
    // i0..i4 / status etc. are interface registers, not GPRs: reading
    // them without a prior write is the whole point.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    st   i1, i0, r0 !next
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      2, 2));
    EXPECT_FALSE(has(rep, v::Severity::error, "def-use", ""))
        << dump(rep);
}

// ---------------------------------------------------------------------
// consume
// ---------------------------------------------------------------------

TEST(Consume, ReadPastMessageLength)
{
    // WRITE messages carry two words; i2 is past the end.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    st   i2, i0, r0 !next
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      2, 2));
    EXPECT_TRUE(has(rep, v::Severity::error, "consume",
                    "reads message word 2"))
        << dump(rep);
}

TEST(Consume, DispatchWithoutNext)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      0, 2));
    EXPECT_TRUE(has(rep, v::Severity::error, "consume",
                    "without issuing NEXT"))
        << dump(rep);
}

TEST(Consume, DoubleNext)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    next
    next
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      0, 2));
    EXPECT_TRUE(has(rep, v::Severity::warning, "consume",
                    "NEXT may execute twice"))
        << dump(rep);
}

TEST(Consume, WordNeverConsumed)
{
    // A two-word message whose handler touches neither word.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    next
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      2, 2));
    EXPECT_TRUE(has(rep, v::Severity::warning, "consume",
                    "message word 0 is never consumed"))
        << dump(rep);
    EXPECT_TRUE(has(rep, v::Severity::warning, "consume",
                    "message word 1 is never consumed"))
        << dump(rep);
}

// ---------------------------------------------------------------------
// send
// ---------------------------------------------------------------------

TEST(Send, WrongWordCountForType)
{
    // READ messages are exactly three words; this sends one.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
s:
    addi o0, r0, 1
    send T_READ
    halt
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::error, "send",
                    "sends 1 message words"))
        << dump(rep);
}

TEST(Send, GapInOutputWords)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
s:
    addi o0, r0, 1
    addi o2, r0, 3
    send T_READ
    halt
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::error, "send", "gap"))
        << dump(rep);
}

TEST(Send, ReplyAfterWritingSubstitutedRegs)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    addi o0, r0, 7
    reply 0 !next
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 2,
                                      3, 3));
    EXPECT_TRUE(has(rep, v::Severity::error, "send",
                    "REPLY substitutes"))
        << dump(rep);
}

TEST(Send, ForwardAfterWritingSubstitutedRegs)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    addi o2, r0, 7
    forward 0 !next
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 2,
                                      3, 3));
    EXPECT_TRUE(has(rep, v::Severity::error, "send",
                    "FORWARD substitutes"))
        << dump(rep);
}

TEST(Send, BasicModelWithoutIdWord)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
s:
    addi o0, r0, 1
    addi o1, r0, 2
    send 0
    halt
)");
    v::Report rep = v::verify(p, model("reg-basic"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::error, "send",
                    "without a defined o4"))
        << dump(rep);
}

TEST(Send, BasicModelUnknownId)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
s:
    addi o0, r0, 1
    addi o1, r0, 2
    addi o4, r0, 9
    send 0
    halt
)");
    v::Report rep = v::verify(p, model("reg-basic"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::error, "send",
                    "unknown message id 9"))
        << dump(rep);
}

TEST(Send, UnresolvableCommandOffsetWarns)
{
    // Cache-mapped NI access whose command offset is a run-time value:
    // the verifier cannot know which Figure-9 command fires.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
s:
    li   r10, NI_BASE
    ld   r7, r0, r0
    ld   r6, r10, r7
    halt
)");
    v::Report rep = v::verify(p, model("on-opt"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::warning, "send",
                    "cannot be resolved statically"))
        << dump(rep);
}

// ---------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------

TEST(Dispatch, JumpThroughNonDispatchValue)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    ldi  r6, r0, ALLOC_PTR
    next
    jmp  r6
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      0, 2));
    EXPECT_TRUE(has(rep, v::Severity::error, "dispatch",
                    "not derived from a dispatch source"))
        << dump(rep);
}

TEST(Dispatch, JumpThroughWrongMessageWord)
{
    // Only word 1 of a type-0 message is a dispatch address (Fig. 7).
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    next
    jmp  i2
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 0,
                                      0, 4));
    EXPECT_TRUE(has(rep, v::Severity::error, "dispatch",
                    "only word 1"))
        << dump(rep);
}

TEST(Dispatch, MissingInletLabel)
{
    ni::Model m = model("reg-opt");
    std::string src = msg::handlerProgram(m);
    size_t pos = src.find("h_send1:");
    ASSERT_NE(pos, std::string::npos);
    src.replace(pos, 8, "h_sendX:");

    isa::Program p = asmProg(src);
    v::Report rep = v::verifyHandlers(p, m);
    EXPECT_TRUE(has(rep, v::Severity::error, "dispatch",
                    "inlet label missing"))
        << dump(rep);
}

TEST(Dispatch, MissingIpBaseInstall)
{
    ni::Model m = model("on-opt");
    std::string src = msg::handlerProgram(m);
    size_t pos = src.find("sti  r5, r10, NI_IPBASE");
    ASSERT_NE(pos, std::string::npos);
    src.replace(pos, 23, "add  r3, r5, r0        ");

    isa::Program p = asmProg(src);
    v::Report rep = v::verifyHandlers(p, m);
    EXPECT_TRUE(has(rep, v::Severity::error, "dispatch",
                    "never installs IpBase"))
        << dump(rep);
}

TEST(Dispatch, MissingSoftwareTableEntry)
{
    ni::Model m = model("reg-basic");
    std::string src = msg::handlerProgram(m, false);
    // Drop the READ entry (id 2) from the setup's table stores.
    size_t pos = src.find("    li   r2, hb_read\n"
                          "    sti  r2, r13, 8\n");
    ASSERT_NE(pos, std::string::npos);
    src.erase(pos, std::string("    li   r2, hb_read\n"
                               "    sti  r2, r13, 8\n").size());

    isa::Program p = asmProg(src);
    v::Report rep = v::verifyHandlers(p, m);
    EXPECT_TRUE(has(rep, v::Severity::error, "dispatch",
                    "software dispatch table has no entry"))
        << dump(rep);
}

TEST(Dispatch, KernelWithoutEntryLabel)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
start:
    halt
)");
    v::Report rep = v::verifySender(p, model("reg-opt"));
    EXPECT_TRUE(has(rep, v::Severity::error, "structure",
                    "no 'entry' label"))
        << dump(rep);
}

// ---------------------------------------------------------------------
// structure / region
// ---------------------------------------------------------------------

TEST(Structure, FallThroughIntoPad)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
s:
    addi r5, r0, 1
    .align HANDLER_STRIDE
x:
    halt
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::error, "structure",
                    "falls through into non-code"))
        << dump(rep);
}

TEST(Structure, JumpLeavesImage)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
s:
    li   r6, 0x9000
    jmp  r6
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::error, "structure",
                    "outside the program's code"))
        << dump(rep);
}

TEST(Structure, UnreachableCode)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
s:
    halt
    addi r5, r0, 1
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::warning, "structure",
                    "unreachable"))
        << dump(rep);
}

TEST(Region, ReachableCodeWithoutCostTag)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
s:
    addi r5, r0, 1
    halt
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::warning, "region",
                    "no .region cost tag"))
        << dump(rep);
}

// ---------------------------------------------------------------------
// hazard
// ---------------------------------------------------------------------

TEST(Hazard, OffChipLoadUseStallNoted)
{
    const std::string src = R"(
    .org 0x4000
    .region processing
s:
    li   r10, NI_BASE
    ldi  r5, r10, NI_I0
    add  r6, r5, r0
    halt
)";
    isa::Program p = asmProg(src);
    v::Report off = v::verify(p, model("off-opt"),
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(off, v::Severity::note, "hazard",
                    "2-cycle load-use stall on r5"))
        << dump(off);

    // The identical kernel on the on-chip interface has no stall: the
    // 2-cycle penalty is the off-chip placement's, not the code's.
    v::Report on = v::verify(p, model("on-opt"),
                             oneRoot(p, "s", v::RootKind::setup));
    EXPECT_EQ(on.count(v::Severity::note), 0u) << dump(on);
}

TEST(Hazard, StallDepthFollowsPlacementPolicy)
{
    // The note's cycle count comes from PlacementPolicy::loadUseDelay,
    // not a hard-wired constant: the far off-chip variant (delay 8)
    // must report an 8-cycle stall for the very same kernel that
    // stalls 2 cycles on the paper's off-chip model.
    const std::string src = R"(
    .org 0x4000
    .region processing
s:
    li   r10, NI_BASE
    ldi  r5, r10, NI_I0
    add  r6, r5, r0
    halt
)";
    isa::Program p = asmProg(src);
    ni::Model far =
        ni::Model{ni::Placement::offChipCache, true}.withOffchipDelay(8);
    v::Report rep = v::verify(p, far,
                              oneRoot(p, "s", v::RootKind::setup));
    EXPECT_TRUE(has(rep, v::Severity::note, "hazard",
                    "8-cycle load-use stall on r5"))
        << dump(rep);
    EXPECT_FALSE(has(rep, v::Severity::note, "hazard", "2-cycle"))
        << dump(rep);
}

TEST(Hazard, OnNiHandlersNeverInterlock)
{
    // HPU-resident handlers address the queues as registers, so the
    // NI load-use delay is zero regardless of the memory hierarchy.
    for (bool optimized : {false, true}) {
        ni::Model onni{ni::Placement::onNi, optimized};
        isa::Program p = asmProg(msg::handlerProgram(onni, false));
        v::Report rep = v::verifyHandlers(p, onni);
        EXPECT_EQ(rep.count(v::Severity::note), 0u)
            << onni.shortName() << ":\n" << dump(rep);
    }
}

TEST(Hazard, RegisterMappedNeverInterlocks)
{
    for (const ni::Model &m : {model("reg-opt"), model("reg-basic")}) {
        isa::Program p = asmProg(msg::handlerProgram(m, false));
        v::Report rep = v::verifyHandlers(p, m);
        EXPECT_EQ(rep.count(v::Severity::note), 0u)
            << m.shortName() << ":\n" << dump(rep);
    }
}

// ---------------------------------------------------------------------
// budget (On-NI handler-time contract)
// ---------------------------------------------------------------------

TEST(Budget, LoopingHandlerWarnsUnbounded)
{
    // A loop on the path to NEXT makes the worst-case occupancy
    // unbounded: the sPIN-style contract says that work belongs on
    // the host, reached through the proxy ring.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    addi r5, r0, 8
spin:
    addi r5, r5, -1
    bnez r5, spin
    nop
    st   i1, i0, r0 !next
    jmp  nextmsgip
    nop
)");
    ni::Model onni{ni::Placement::onNi, true};
    v::Report rep = v::verify(p, onni,
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      2, 2));
    EXPECT_TRUE(has(rep, v::Severity::warning, "budget", "unbounded"))
        << dump(rep);
}

TEST(Budget, StraightLineOverrunWarnsWithCycleCount)
{
    // 100 straight-line instructions against the On-NI policy's
    // 64-cycle budget: bounded, but over.
    std::string src = ".org 0x4000\n.region processing\nh:\n";
    for (int i = 0; i < 100; ++i)
        src += "    addi r5, r0, 1\n";
    src += "    st   i1, i0, r0 !next\n"
           "    jmp  nextmsgip\n"
           "    nop\n";
    isa::Program p = asmProg(src);
    ni::Model onni{ni::Placement::onNi, true};
    v::Report rep = v::verify(p, onni,
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      2, 2));
    EXPECT_TRUE(has(rep, v::Severity::warning, "budget",
                    "exceeds the handler-time budget"))
        << dump(rep);
}

TEST(Budget, HostPlacementsHaveNoBudget)
{
    // The same looping kernel is fine on a host placement: only the
    // On-NI policy publishes a handler-time budget.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    addi r5, r0, 8
spin:
    addi r5, r5, -1
    bnez r5, spin
    nop
    st   i1, i0, r0 !next
    jmp  nextmsgip
    nop
)");
    v::Report rep = v::verify(p, model("reg-opt"),
                              oneRoot(p, "h", v::RootKind::handler, 3,
                                      2, 2));
    EXPECT_FALSE(has(rep, v::Severity::warning, "budget", ""))
        << dump(rep);
}

TEST(Budget, ShippedHpuKernelsStayWithinBudget)
{
    // The shipped On-NI kernels must honor their own contract: no
    // budget diagnostics on either variant.
    for (bool optimized : {false, true}) {
        ni::Model onni{ni::Placement::onNi, optimized};
        isa::Program p = asmProg(msg::handlerProgram(onni));
        v::Report rep = v::verifyHandlers(p, onni);
        EXPECT_FALSE(has(rep, v::Severity::warning, "budget", ""))
            << onni.shortName() << ":\n" << dump(rep);
    }
}

TEST(Hazard, ReadHandlerStallsMatchTable1Delta)
{
    // The statically-predicted stall cycles in the READ handler's slot
    // must equal the measured off-chip minus on-chip processing delta:
    // the only difference between those two models is the 2-cycle
    // load-use penalty the hazard analysis charges.
    ni::Model on = model("on-opt");
    ni::Model off = model("off-opt");

    cost::Table1Harness hon(on);
    cost::Table1Harness hoff(off);
    double d_on = hon.processingCost(cost::ProcCase::read).processing;
    double d_off = hoff.processingCost(cost::ProcCase::read).processing;

    isa::Program p = asmProg(msg::handlerProgram(off));
    v::Report rep = v::verifyHandlers(p, off);

    Addr h_read = static_cast<Addr>(p.symbols.at("h_read"));
    Addr stride = 1u << ni::dispatch::handlerShift;
    int static_stalls = 0;
    for (const v::Diag &d : rep.diags) {
        if (d.severity == v::Severity::note && d.check == "hazard" &&
            d.addr >= h_read && d.addr < h_read + stride)
            static_stalls += std::stoi(d.message);
    }
    EXPECT_DOUBLE_EQ(d_off - d_on, static_stalls) << dump(rep);
}
