/**
 * @file
 * Tests for the whole-system protocol analyzer (verify/protocol.hh).
 *
 * Three layers:
 *
 *  - the shipped corpus of every model (paper six, far off-chip, and
 *    both On-NI variants) must analyze clean under --Werror semantics;
 *  - the kernel-summary export must capture emit sites faithfully
 *    (type, length, substitution, before-NEXT, decremented hop);
 *  - each proto-* diagnostic must provably fire on a minimal corpus
 *    built to violate it, and each must be suppressible through the
 *    -Wno-* / --only machinery (Report::suppress / select).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "msg/kernels.hh"
#include "msg/protocol.hh"
#include "ni/config.hh"
#include "ni/model_registry.hh"
#include "ni/placement_policy.hh"
#include "verify/protocol.hh"
#include "verify/verifier.hh"

using namespace tcpni;
namespace v = tcpni::verify;

namespace
{

std::vector<ni::Model>
allModels()
{
    std::vector<ni::Model> models;
    for (const ni::Model &m : ni::paperModels())
        models.push_back(m);
    models.push_back(
        ni::Model{ni::Placement::offChipCache, true}.withOffchipDelay(8));
    models.push_back({ni::Placement::onNi, false});
    models.push_back({ni::Placement::onNi, true});
    return models;
}

ni::Model
regOpt()
{
    return {ni::Placement::registerFile, true};
}

ni::Model
onniOpt()
{
    return {ni::Placement::onNi, true};
}

isa::Program
asmProg(const std::string &src)
{
    isa::AsmResult res = isa::assembleAll(src, msg::kernelSymbols());
    EXPECT_TRUE(res.ok()) << (res.errors.empty()
                                  ? "?"
                                  : res.errors.front().message);
    return res.program;
}

/** Verify one program under a hand-built single-root contract and
 *  return the exported summary. */
v::KernelSummary
summarize(const isa::Program &prog, const ni::Model &model,
          const std::string &label, v::RootKind kind, unsigned type,
          unsigned min_words, unsigned max_words, bool iafull = true)
{
    v::Contract c;
    c.kernelRegMapped = model.policy().registerMapped() ||
                        model.policy().handlersOnNi();
    v::Root r;
    r.entry = static_cast<Addr>(prog.symbols.at(label));
    r.name = label;
    r.kind = kind;
    r.type = type;
    r.minWords = min_words;
    r.maxWords = max_words;
    r.iafull = iafull;
    c.roots.push_back(r);

    v::KernelSummary ks;
    v::VerifyOptions opts;
    opts.summary = &ks;
    v::verify(prog, model, c, opts);
    return ks;
}

/** Build a synthetic handler summary: one root of @p type emitting
 *  the given sites. */
v::ProtoKernel
handlerOf(unsigned type, std::vector<v::EmitSite> sites,
          bool iafull = true)
{
    v::ProtoKernel pk;
    pk.name = "h" + std::to_string(type);
    pk.handlers = true;
    v::RootSummary r;
    r.name = "h_" + std::to_string(type);
    r.kind = v::RootKind::handler;
    r.type = type;
    r.iafull = iafull;
    r.emits = std::move(sites);
    r.exits = 1;
    pk.summary.roots.push_back(std::move(r));
    return pk;
}

/** A synthetic sender marking demand for @p type. */
v::ProtoKernel
senderOf(unsigned type, unsigned words)
{
    v::ProtoKernel pk;
    pk.name = "send" + std::to_string(type);
    v::RootSummary r;
    r.name = "sender";
    r.kind = v::RootKind::setup;
    v::EmitSite s;
    s.mode = isa::SendMode::send;
    s.typeKnown = true;
    s.type = type;
    s.words = words;
    r.emits.push_back(s);
    pk.summary.roots.push_back(std::move(r));
    return pk;
}

v::EmitSite
emit(unsigned type, unsigned words, bool before_next = false,
     bool decremented = false,
     isa::SendMode mode = isa::SendMode::send)
{
    v::EmitSite s;
    s.mode = mode;
    s.typeKnown = true;
    s.type = type;
    s.words = words;
    s.beforeNext = before_next;
    s.decremented = decremented;
    return s;
}

bool
has(const v::Report &rep, v::Severity sev, const std::string &check,
    const std::string &substr)
{
    for (const v::Diag &d : rep.diags) {
        if (d.severity == sev && d.check == check &&
            d.message.find(substr) != std::string::npos)
            return true;
    }
    return false;
}

/** The standard live-handler marking so single-check corpora don't
 *  trip the unrelated proto-reply/proto-dead checks: every protocol
 *  type gets a no-op handler, every handled type a sender. */
std::vector<v::ProtoKernel>
quietCorpus()
{
    std::vector<v::ProtoKernel> corpus;
    for (unsigned t : {msg::typeSend, msg::typeRead, msg::typeWrite,
                       msg::typePRead, msg::typePWrite, msg::typeAck}) {
        std::vector<v::EmitSite> sites;
        if (auto r = msg::replyObligation(t))
            sites.push_back(emit(*r, msg::typeContract(*r).minWords));
        corpus.push_back(handlerOf(t, std::move(sites)));
        corpus.push_back(senderOf(t, msg::typeContract(t).minWords));
    }
    return corpus;
}

} // namespace

// ---------------------------------------------------------------------
// Positive corpus: every model's shipped kernels analyze clean.
// ---------------------------------------------------------------------

TEST(ProtoShipped, AllModelsAnalyzeCleanUnderWerror)
{
    for (const ni::Model &m : allModels()) {
        std::vector<v::ProtoKernel> senders;
        std::vector<v::ProtoKernel> handlers;
        for (const msg::CorpusJob &cj : msg::kernelCorpus(m)) {
            isa::Program prog = asmProg(cj.source);
            v::ProtoKernel pk;
            pk.name = cj.name;
            pk.handlers = cj.handlers;
            v::VerifyOptions opts;
            opts.summary = &pk.summary;
            v::Report rep =
                cj.handlers ? v::verifyHandlers(prog, m, opts)
                            : v::verifySender(prog, m, opts);
            EXPECT_TRUE(rep.clean(true))
                << m.shortName() << "/" << cj.name << ":\n"
                << rep.format();
            (cj.handlers ? handlers : senders).push_back(std::move(pk));
        }
        for (const v::ProtoKernel &h : handlers) {
            std::vector<v::ProtoKernel> corpus{h};
            corpus.insert(corpus.end(), senders.begin(), senders.end());
            v::Report rep = v::analyzeProtocol(m, corpus);
            EXPECT_TRUE(rep.clean(true))
                << m.shortName() << "/" << h.name << ":\n"
                << rep.format();
        }
    }
}

TEST(ProtoShipped, RegOptGraphShape)
{
    ni::Model m = regOpt();
    std::vector<v::ProtoKernel> corpus;
    for (const msg::CorpusJob &cj : msg::kernelCorpus(m)) {
        isa::Program prog = asmProg(cj.source);
        v::ProtoKernel pk;
        pk.name = cj.name;
        pk.handlers = cj.handlers;
        v::VerifyOptions opts;
        opts.summary = &pk.summary;
        if (cj.handlers)
            v::verifyHandlers(prog, m, opts);
        else
            v::verifySender(prog, m, opts);
        corpus.push_back(std::move(pk));
    }
    v::MessageFlowGraph g = v::buildFlowGraph(m, corpus);

    // Every protocol type is both handled and demanded.
    for (unsigned t : {msg::typeSend, msg::typeRead, msg::typeWrite,
                       msg::typePRead, msg::typePWrite, msg::typeAck}) {
        EXPECT_TRUE(g.handled[t]) << v::nodeName(t);
        EXPECT_TRUE(g.emitted[t]) << v::nodeName(t);
    }

    // The request/reply edges the kernels implement.
    auto edge = [&](unsigned from, unsigned to) {
        for (const v::FlowEdge &e : g.edges) {
            if (e.from == from && e.to == to)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(edge(msg::typeRead, msg::typeSend));    // READ reply
    EXPECT_TRUE(edge(msg::typePRead, msg::typeSend));   // PREAD reply
    EXPECT_TRUE(edge(msg::typePWrite, msg::typeAck));   // PWRITE ack
    EXPECT_FALSE(edge(msg::typeWrite, msg::typeSend));  // fire-and-forget
}

// ---------------------------------------------------------------------
// Summary export: emit sites carry the facts the graph needs.
// ---------------------------------------------------------------------

TEST(ProtoSummary, EmitSiteCapturesTypeWordsAndConsumeDiscipline)
{
    // A WRITE handler that sends a 1-word ACK folded with !next: the
    // send retires the input slot, so beforeNext must be false.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    st   i1, i0, r0
    addi o0, r0, 7
    send T_ACK !next
    jmp  nextmsgip
    nop
)");
    v::KernelSummary ks = summarize(p, regOpt(), "h",
                                    v::RootKind::handler, msg::typeWrite,
                                    2, 2);
    ASSERT_EQ(ks.roots.size(), 1u);
    ASSERT_EQ(ks.roots[0].emits.size(), 1u);
    const v::EmitSite &s = ks.roots[0].emits[0];
    EXPECT_TRUE(s.typeKnown);
    EXPECT_EQ(s.type, unsigned{msg::typeAck});
    EXPECT_EQ(s.words, 1u);
    EXPECT_FALSE(s.beforeNext);
    EXPECT_FALSE(s.decremented);
}

TEST(ProtoSummary, SendBeforeNextIsFlagged)
{
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    addi o0, r0, 7
    send T_ACK
    st   i1, i0, r0 !next
    jmp  nextmsgip
    nop
)");
    v::KernelSummary ks = summarize(p, regOpt(), "h",
                                    v::RootKind::handler, msg::typeWrite,
                                    2, 2);
    ASSERT_EQ(ks.roots[0].emits.size(), 1u);
    EXPECT_TRUE(ks.roots[0].emits[0].beforeNext);
}

TEST(ProtoSummary, DecrementedHopBoundIsRecognized)
{
    // o1 carries i1 - 1: a statically-decremented hop bound.
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    addi r6, i1, -1
    add  o0, i0, r0
    add  o1, r6, r0
    send T_SEND !next
    jmp  nextmsgip
    nop
)");
    v::KernelSummary ks = summarize(p, regOpt(), "h",
                                    v::RootKind::handler, msg::typeSend,
                                    2, 4);
    ASSERT_EQ(ks.roots[0].emits.size(), 1u);
    const v::EmitSite &s = ks.roots[0].emits[0];
    EXPECT_EQ(s.words, 2u);
    EXPECT_TRUE(s.decremented);
}

TEST(ProtoSummary, HpuEscapePostIsRecordedPerExit)
{
    // The shipped On-NI optimized kernel: every PWRITE exit escapes;
    // PREAD has a non-escaping (read-only FULL) exit too.
    ni::Model m = onniOpt();
    isa::Program p = asmProg(msg::handlerProgram(m));
    v::KernelSummary ks;
    v::VerifyOptions opts;
    opts.summary = &ks;
    v::verifyHandlers(p, m, opts);

    bool saw_pwrite = false, saw_pread = false;
    for (const v::RootSummary &r : ks.roots) {
        if (r.kind != v::RootKind::handler)
            continue;
        if (r.type == msg::typePWrite) {
            saw_pwrite = true;
            EXPECT_TRUE(r.escapes) << r.name;
            EXPECT_TRUE(r.escapesAlways()) << r.name;
            EXPECT_FALSE(r.plainStores) << r.name;
        } else if (r.type == msg::typePRead) {
            saw_pread = true;
            EXPECT_TRUE(r.escapes) << r.name;
            EXPECT_FALSE(r.escapesAlways()) << r.name;
            EXPECT_FALSE(r.plainStores) << r.name;
        }
    }
    EXPECT_TRUE(saw_pwrite);
    EXPECT_TRUE(saw_pread);
}

// ---------------------------------------------------------------------
// Negative corpus: every proto-* diagnostic fires on a minimal
// violation, and the quiet corpus stays quiet.
// ---------------------------------------------------------------------

TEST(ProtoNegative, QuietCorpusIsClean)
{
    v::Report rep = v::analyzeProtocol(regOpt(), quietCorpus());
    EXPECT_TRUE(rep.clean(true)) << rep.format();
}

TEST(ProtoNegative, MissingReplyObligation)
{
    // The READ handler consumes the request but never sends the value
    // back (and never escapes): the requester blocks forever.
    auto corpus = quietCorpus();
    for (v::ProtoKernel &pk : corpus) {
        if (pk.name == "h2")
            pk.summary.roots[0].emits.clear();
    }
    v::Report rep = v::analyzeProtocol(regOpt(), corpus);
    EXPECT_TRUE(has(rep, v::Severity::error, "proto-reply",
                    "never emits its obliged reply SEND(0)"))
        << rep.format();
}

TEST(ProtoNegative, EmittedTypeWithoutHandler)
{
    auto corpus = quietCorpus();
    corpus.push_back(senderOf(9, 1));   // nothing handles type 9
    v::Report rep = v::analyzeProtocol(regOpt(), corpus);
    EXPECT_TRUE(has(rep, v::Severity::error, "proto-reply",
                    "no handler in the corpus implements it"))
        << rep.format();
}

TEST(ProtoNegative, ForwardCycleWithoutHopBound)
{
    // SEND handler forwards a SEND: unbounded fan-out.
    auto corpus = quietCorpus();
    for (v::ProtoKernel &pk : corpus) {
        if (pk.name == "h0") {
            pk.summary.roots[0].emits.push_back(
                emit(msg::typeSend, 2, false, false,
                     isa::SendMode::forward));
        }
    }
    v::Report rep = v::analyzeProtocol(regOpt(), corpus);
    EXPECT_TRUE(has(rep, v::Severity::error, "proto-forward",
                    "cycle without a statically-decremented hop bound"))
        << rep.format();
}

TEST(ProtoNegative, DecrementedHopBoundBreaksForwardCycle)
{
    // The same cycle with a decremented hop word terminates.
    auto corpus = quietCorpus();
    for (v::ProtoKernel &pk : corpus) {
        if (pk.name == "h0") {
            pk.summary.roots[0].emits.push_back(
                emit(msg::typeSend, 2, false, /*decremented=*/true,
                     isa::SendMode::forward));
        }
    }
    v::Report rep = v::analyzeProtocol(regOpt(), corpus);
    EXPECT_FALSE(has(rep, v::Severity::error, "proto-forward", ""))
        << rep.format();
}

TEST(ProtoNegative, SendAboveIafullDeadlockCycle)
{
    // READ handler sends to WRITE before NEXT, WRITE back to READ:
    // both hold input slots while demanding downstream space.
    auto corpus = quietCorpus();
    for (v::ProtoKernel &pk : corpus) {
        if (pk.name == "h2") {
            pk.summary.roots[0].emits.push_back(
                emit(msg::typeWrite, 2, /*before_next=*/true));
        } else if (pk.name == "h3") {
            pk.summary.roots[0].emits.push_back(
                emit(msg::typeRead, 3, /*before_next=*/true));
        }
    }
    v::Report rep = v::analyzeProtocol(regOpt(), corpus);
    EXPECT_TRUE(has(rep, v::Severity::error, "proto-deadlock",
                    "consume-before-send"))
        << rep.format();
}

TEST(ProtoNegative, ConsumeBeforeSendBreaksDeadlockCycle)
{
    // The same cycle is fine when each handler retires NEXT first.
    auto corpus = quietCorpus();
    for (v::ProtoKernel &pk : corpus) {
        if (pk.name == "h2")
            pk.summary.roots[0].emits.push_back(emit(msg::typeWrite, 2));
        else if (pk.name == "h3")
            pk.summary.roots[0].emits.push_back(emit(msg::typeRead, 3));
    }
    v::Report rep = v::analyzeProtocol(regOpt(), corpus);
    EXPECT_FALSE(has(rep, v::Severity::error, "proto-deadlock", ""))
        << rep.format();

    // ...or when the root is never entered above the iafull threshold.
    auto low = quietCorpus();
    for (v::ProtoKernel &pk : low) {
        if (pk.name == "h2" || pk.name == "h3") {
            pk.summary.roots[0].iafull = false;
            pk.summary.roots[0].emits.push_back(
                emit(pk.name == "h2" ? msg::typeWrite : msg::typeRead,
                     2, /*before_next=*/true));
        }
    }
    v::Report low_rep = v::analyzeProtocol(regOpt(), low);
    EXPECT_FALSE(has(low_rep, v::Severity::error, "proto-deadlock", ""))
        << low_rep.format();
}

TEST(ProtoNegative, HpuPWriteWithoutEscape)
{
    // An On-NI PWRITE handler that completes the write on the HPU:
    // breaks the single-writer I-structure rule both ways (a
    // non-escaping exit and a plain store).
    isa::Program p = asmProg(R"(
    .org 0x4000
    .region processing
h:
    ld   r5, i1, r0
    st   r5, i0, r0 !next
    jmp  nextmsgip
    nop
)");
    v::KernelSummary ks = summarize(p, onniOpt(), "h",
                                    v::RootKind::handler,
                                    msg::typePWrite, 3, 3);
    v::ProtoKernel pk;
    pk.name = "handlers";
    pk.handlers = true;
    pk.summary = ks;
    v::Report rep = v::analyzeProtocol(onniOpt(), {pk});
    EXPECT_TRUE(has(rep, v::Severity::error, "proto-escape",
                    "without escaping through the host ring"))
        << rep.format();
    EXPECT_TRUE(has(rep, v::Severity::error, "proto-escape",
                    "stores to memory from the HPU"))
        << rep.format();

    // The same kernel is legal on a host placement: the rule only
    // binds HPU-resident handlers.
    v::KernelSummary host = summarize(p, regOpt(), "h",
                                      v::RootKind::handler,
                                      msg::typePWrite, 3, 3);
    v::ProtoKernel hpk;
    hpk.name = "handlers";
    hpk.handlers = true;
    hpk.summary = host;
    v::Report host_rep = v::analyzeProtocol(regOpt(), {hpk});
    EXPECT_FALSE(has(host_rep, v::Severity::error, "proto-escape", ""))
        << host_rep.format();
}

TEST(ProtoNegative, DeadHandlerType)
{
    auto corpus = quietCorpus();
    // Nothing demands WRITE any more.
    std::erase_if(corpus, [](const v::ProtoKernel &pk) {
        return pk.name == "send3";
    });
    v::Report rep = v::analyzeProtocol(regOpt(), corpus);
    EXPECT_TRUE(has(rep, v::Severity::warning, "proto-dead",
                    "nothing in the corpus emits it"))
        << rep.format();

    // Control types (EXC / ESCAPE / STOP) are exempt.
    auto ctl = quietCorpus();
    ctl.push_back(handlerOf(msg::typeStop, {}));
    v::Report ctl_rep = v::analyzeProtocol(regOpt(), ctl);
    EXPECT_FALSE(has(ctl_rep, v::Severity::warning, "proto-dead", ""))
        << ctl_rep.format();
}

// ---------------------------------------------------------------------
// Suppression: the -Wno-* / --only machinery.
// ---------------------------------------------------------------------

TEST(ProtoSuppress, CheckMatchesExactAndGroupPrefix)
{
    EXPECT_TRUE(v::checkMatches("proto-reply", "proto-reply"));
    EXPECT_TRUE(v::checkMatches("proto-reply", "proto"));
    EXPECT_FALSE(v::checkMatches("proto-reply", "proto-re"));
    EXPECT_FALSE(v::checkMatches("protocol", "proto"));
    EXPECT_FALSE(v::checkMatches("send", "proto"));
}

TEST(ProtoSuppress, EveryProtoCheckIsSuppressible)
{
    // A corpus that trips reply, forward, deadlock and dead at once.
    auto corpus = quietCorpus();
    corpus.push_back(senderOf(9, 1));                     // proto-reply
    std::erase_if(corpus, [](const v::ProtoKernel &pk) {
        return pk.name == "send3";                        // proto-dead
    });
    for (v::ProtoKernel &pk : corpus) {
        if (pk.name == "h0") {
            pk.summary.roots[0].emits.push_back(
                emit(msg::typeSend, 2, /*before_next=*/true, false,
                     isa::SendMode::forward));   // forward + deadlock
        }
    }
    v::Report rep = v::analyzeProtocol(regOpt(), corpus);
    ASSERT_FALSE(rep.clean(true));

    for (const std::string check :
         {"proto-reply", "proto-forward", "proto-deadlock",
          "proto-dead"}) {
        EXPECT_TRUE(has(rep, rep.diags[0].severity, check, "") ||
                    std::any_of(rep.diags.begin(), rep.diags.end(),
                                [&](const v::Diag &d) {
                                    return d.check == check;
                                }))
            << check << " did not fire:\n" << rep.format();
        v::Report one = rep;
        one.suppress({check});
        for (const v::Diag &d : one.diags)
            EXPECT_NE(d.check, check);
        EXPECT_LT(one.diags.size(), rep.diags.size()) << check;
    }

    // The group suffices for all of them.
    v::Report group = rep;
    group.suppress({"proto"});
    EXPECT_TRUE(group.diags.empty()) << group.format();

    // --only keeps exactly the group.
    v::Report only = rep;
    only.select({"proto"});
    EXPECT_EQ(only.diags.size(), rep.diags.size());
    only.select({"proto-forward"});
    for (const v::Diag &d : only.diags)
        EXPECT_EQ(d.check, "proto-forward");
}
