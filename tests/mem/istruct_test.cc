#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/istruct_memory.hh"

using namespace tcpni;

TEST(IStruct, StartsEmpty)
{
    IStructMemory m(8);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(m.state(i), Presence::empty);
}

TEST(IStruct, WriteThenReadIsFull)
{
    IStructMemory m(4);
    auto w = m.write(2, 99);
    EXPECT_TRUE(w.readers.empty());
    EXPECT_EQ(m.state(2), Presence::full);

    auto r = m.read(2, 0x10, 0x20);
    EXPECT_TRUE(r.full);
    EXPECT_EQ(r.value, 99u);
    // Reading a full element leaves it full.
    EXPECT_EQ(m.state(2), Presence::full);
}

TEST(IStruct, ReadOfEmptyDefers)
{
    IStructMemory m(4);
    auto r = m.read(1, 0xaa, 0xbb);
    EXPECT_FALSE(r.full);
    EXPECT_EQ(m.state(1), Presence::deferred);
    EXPECT_EQ(m.deferredCount(1), 1u);
}

TEST(IStruct, WriteReleasesDeferredInArrivalOrder)
{
    IStructMemory m(4);
    m.read(0, 1, 10);
    m.read(0, 2, 20);
    m.read(0, 3, 30);
    EXPECT_EQ(m.deferredCount(0), 3u);

    auto w = m.write(0, 555);
    ASSERT_EQ(w.readers.size(), 3u);
    EXPECT_EQ(w.readers[0].fp, 1u);
    EXPECT_EQ(w.readers[0].ip, 10u);
    EXPECT_EQ(w.readers[1].fp, 2u);
    EXPECT_EQ(w.readers[2].fp, 3u);

    EXPECT_EQ(m.state(0), Presence::full);
    EXPECT_EQ(m.deferredCount(0), 0u);
    EXPECT_EQ(m.peek(0), 555u);
}

TEST(IStruct, ReadAfterDeferredWriteIsImmediate)
{
    IStructMemory m(2);
    m.read(0, 1, 1);
    m.write(0, 7);
    auto r = m.read(0, 2, 2);
    EXPECT_TRUE(r.full);
    EXPECT_EQ(r.value, 7u);
}

TEST(IStruct, DoubleWritePanics)
{
    IStructMemory m(2);
    m.write(0, 1);
    EXPECT_THROW(m.write(0, 2), PanicError);
}

TEST(IStruct, OutOfRangePanics)
{
    IStructMemory m(2);
    EXPECT_THROW(m.read(2, 0, 0), PanicError);
    EXPECT_THROW(m.write(5, 0), PanicError);
    EXPECT_THROW(m.state(99), PanicError);
}

TEST(IStruct, PeekNonFullPanics)
{
    IStructMemory m(2);
    EXPECT_THROW(m.peek(0), PanicError);
    m.read(0, 0, 0);
    EXPECT_THROW(m.peek(0), PanicError);
}

TEST(IStruct, Clear)
{
    IStructMemory m(2);
    m.write(0, 1);
    m.read(1, 1, 1);
    m.clear();
    EXPECT_EQ(m.state(0), Presence::empty);
    EXPECT_EQ(m.state(1), Presence::empty);
    EXPECT_EQ(m.deferredCount(1), 0u);
}

// Property sweep: n deferred readers are all released by one write,
// matching the PWrite(deferred) handler's n-iteration forwarding loop.
class DeferredSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DeferredSweep, AllReadersReleased)
{
    int n = GetParam();
    IStructMemory m(1);
    for (int i = 0; i < n; ++i)
        m.read(0, static_cast<Word>(i), static_cast<Word>(i * 2));
    auto w = m.write(0, 42);
    EXPECT_EQ(w.readers.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(w.readers[i].fp, static_cast<Word>(i));
}

INSTANTIATE_TEST_SUITE_P(Counts, DeferredSweep,
                         ::testing::Values(0, 1, 2, 5, 16, 100));
