#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/memory.hh"

using namespace tcpni;

TEST(Memory, ReadWriteRoundTrip)
{
    Memory m(1024);
    m.write(0, 0xdeadbeef);
    m.write(4, 42);
    m.write(1020, 7);
    EXPECT_EQ(m.read(0), 0xdeadbeefu);
    EXPECT_EQ(m.read(4), 42u);
    EXPECT_EQ(m.read(1020), 7u);
}

TEST(Memory, InitiallyZero)
{
    Memory m(64);
    for (Addr a = 0; a < 64; a += 4)
        EXPECT_EQ(m.read(a), 0u);
}

TEST(Memory, UnalignedPanics)
{
    Memory m(64);
    EXPECT_THROW(m.read(2), PanicError);
    EXPECT_THROW(m.write(1, 0), PanicError);
}

TEST(Memory, OutOfBoundsPanics)
{
    Memory m(64);
    EXPECT_THROW(m.read(64), PanicError);
    EXPECT_THROW(m.write(1 << 20, 0), PanicError);
}

TEST(Memory, SizeRoundsUpToWord)
{
    Memory m(5);
    EXPECT_EQ(m.size(), 8u);
    EXPECT_NO_THROW(m.write(4, 1));
}

TEST(Memory, Clear)
{
    Memory m(16);
    m.write(8, 99);
    m.clear();
    EXPECT_EQ(m.read(8), 0u);
}
