#include <gtest/gtest.h>

#include "apps/pingpong.hh"

using namespace tcpni;
using namespace tcpni::apps;

TEST(PingPong, ExchangesExactCount)
{
    PingPongResult r = runPingPong(100);
    // Serve + 2*N exchanges (each side hits N times).
    EXPECT_EQ(r.stats.msg(tam::MsgKind::send1), 201u);
    EXPECT_EQ(r.finalValue, 200.0);
}

TEST(PingPong, PureSendProfile)
{
    PingPongResult r = runPingPong(10);
    EXPECT_EQ(r.stats.msg(tam::MsgKind::read), 0u);
    EXPECT_EQ(r.stats.msg(tam::MsgKind::pwrite), 0u);
    EXPECT_EQ(r.stats.replies, 0u);
}

TEST(PingPong, ZeroTripsJustServes)
{
    PingPongResult r = runPingPong(0);
    EXPECT_EQ(r.stats.msg(tam::MsgKind::send1), 1u);
}
