#include <gtest/gtest.h>

#include "apps/matmul.hh"
#include "common/logging.hh"

using namespace tcpni;
using namespace tcpni::apps;

TEST(MatMul, SmallSizeVerifies)
{
    MatMulResult r = runMatMul(8, 4);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stats.totalMessages(), 100u);
}

TEST(MatMul, BadSizeIsFatal)
{
    EXPECT_THROW(runMatMul(10, 4), FatalError);
    EXPECT_THROW(runMatMul(0, 4), FatalError);
}

TEST(MatMul, Deterministic)
{
    MatMulResult a = runMatMul(12, 4);
    MatMulResult b = runMatMul(12, 4);
    EXPECT_EQ(a.stats.totalMessages(), b.stats.totalMessages());
    EXPECT_EQ(a.stats.flops(), b.stats.flops());
    for (size_t i = 0; i < static_cast<size_t>(tam::MsgKind::numKinds);
         ++i)
        EXPECT_EQ(a.stats.msgs[i], b.stats.msgs[i]);
}

TEST(MatMul, FlopCountMatchesDimensions)
{
    // n^3 multiply-adds = 2 n^3 flops.
    MatMulResult r = runMatMul(16, 4);
    EXPECT_EQ(r.stats.flops(), 2ull * 16 * 16 * 16);
}

TEST(MatMul, MessageCountsScaleWithSize)
{
    // PRead requests: 2 per element per k-block per output block =
    // 2 * n^2 * (n/4); PWrites: 2 n^2 init + n^2 results.
    MatMulResult r = runMatMul(16, 4);
    uint64_t preads = r.stats.msg(tam::MsgKind::preadFull) +
                      r.stats.msg(tam::MsgKind::preadEmpty) +
                      r.stats.msg(tam::MsgKind::preadDeferred);
    EXPECT_EQ(preads, 2ull * 16 * 16 * 4);
    EXPECT_EQ(r.stats.msg(tam::MsgKind::pwrite), 3ull * 16 * 16);
}

TEST(MatMul, MostFetchesAreFull)
{
    // The producer runs ahead of most consumers (the paper's Mint run
    // likewise saw predominantly full PReads), but some fetches must
    // defer thanks to the delayed tail initialization.
    MatMulResult r = runMatMul(24, 4);
    uint64_t full = r.stats.msg(tam::MsgKind::preadFull);
    uint64_t not_full = r.stats.msg(tam::MsgKind::preadEmpty) +
                        r.stats.msg(tam::MsgKind::preadDeferred);
    EXPECT_GT(not_full, 0u);
    EXPECT_GT(full, not_full * 4);
}

TEST(MatMul, DeferredReadersReleasedExactly)
{
    // Every deferred or empty PRead is eventually released by exactly
    // one PWrite, and all replies add up.
    MatMulResult r = runMatMul(24, 4);
    uint64_t waiting = r.stats.msg(tam::MsgKind::preadEmpty) +
                       r.stats.msg(tam::MsgKind::preadDeferred);
    EXPECT_EQ(r.stats.pwriteReleases, waiting);
    uint64_t preads = waiting + r.stats.msg(tam::MsgKind::preadFull);
    // One reply per PRead (immediate or deferred) + none for writes.
    EXPECT_EQ(r.stats.replies, preads);
}

TEST(MatMul, FlopsPerMessageNearPaper)
{
    // The paper quotes ~3 flops per message *sent* for this program.
    MatMulResult r = runMatMul(40, 4);
    uint64_t requests = r.stats.totalMessages() - r.stats.replies;
    double per_request =
        static_cast<double>(r.stats.flops()) / requests;
    EXPECT_GT(per_request, 2.0);
    EXPECT_LT(per_request, 6.0);
}

class MatMulSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MatMulSizes, Verifies)
{
    MatMulResult r = runMatMul(GetParam(), 4);
    EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatMulSizes,
                         ::testing::Values(4u, 8u, 12u, 20u, 28u));
