#include <gtest/gtest.h>

#include "apps/fib.hh"
#include "tam/expand.hh"

using namespace tcpni;
using namespace tcpni::apps;

namespace
{

uint64_t
fibRef(unsigned n)
{
    uint64_t a = 1, b = 1;
    for (unsigned i = 0; i < n; ++i) {
        uint64_t c = a + b;
        a = b;
        b = c;
    }
    return a;
}

} // namespace

TEST(Fib, SmallValues)
{
    EXPECT_EQ(runFib(0).value, 1u);
    EXPECT_EQ(runFib(1).value, 1u);
    EXPECT_EQ(runFib(2).value, 2u);
    EXPECT_EQ(runFib(5).value, 8u);
    EXPECT_EQ(runFib(10).value, 89u);
}

TEST(Fib, ActivationCountMatchesCallTree)
{
    // Calls(n) = 2*fib(n) - 1 for this recursion.
    FibResult r = runFib(12);
    EXPECT_EQ(r.activations, 2 * fibRef(12) - 1);
}

TEST(Fib, PureSendProfile)
{
    FibResult r = runFib(10);
    const tam::TamStats &s = r.stats;
    EXPECT_EQ(s.msg(tam::MsgKind::read), 0u);
    EXPECT_EQ(s.msg(tam::MsgKind::write), 0u);
    EXPECT_EQ(s.msg(tam::MsgKind::pwrite), 0u);
    EXPECT_EQ(s.replies, 0u);
    // One call + one return message per activation (plus the root
    // call): total Sends = 2 * activations.
    uint64_t sends = s.msg(tam::MsgKind::send0) +
                     s.msg(tam::MsgKind::send1) +
                     s.msg(tam::MsgKind::send2);
    EXPECT_EQ(sends, 2 * r.activations);
}

TEST(Fib, AllFramesFreed)
{
    // Only the root frame survives.
    FibResult r = runFib(8);
    (void)r;
    // liveFrames is internal to the machine; the absence of a panic
    // on double-free/used-after-free plus the value check suffices.
    EXPECT_EQ(r.value, fibRef(8));
}

TEST(Fib, SendDominatedExpansionFavorsDispatchOptimization)
{
    // With a pure-Send mix, the optimized/basic gap is dominated by
    // dispatch -- the largest single ratio in Table 1 -- so fib shows
    // the biggest send+dispatch improvement of the three workloads.
    FibResult r = runFib(14);
    tam::CommCosts reg_opt =
        tam::measureCommCosts({ni::Placement::registerFile, true});
    tam::CommCosts off_bas =
        tam::measureCommCosts({ni::Placement::offChipCache, false});
    tam::Figure12Bar opt = tam::expand(r.stats, reg_opt);
    tam::Figure12Bar bas = tam::expand(r.stats, off_bas);
    double ratio = (bas.sending + bas.dispatch) /
                   (opt.sending + opt.dispatch);
    EXPECT_GT(ratio, 4.0);
    EXPECT_LT(opt.total(), bas.total());
}

class FibSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FibSweep, MatchesReference)
{
    EXPECT_EQ(runFib(GetParam()).value, fibRef(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FibSweep,
                         ::testing::Values(0u, 1u, 3u, 7u, 13u, 17u));
