#include <gtest/gtest.h>

#include "apps/gamteb.hh"
#include "common/logging.hh"

using namespace tcpni;
using namespace tcpni::apps;

TEST(Gamteb, SixteenParticlesConserve)
{
    GamtebResult r = runGamteb(16);
    EXPECT_TRUE(r.conserved());
    EXPECT_EQ(r.sourceParticles, 16u);
    EXPECT_GE(r.totalParticles, 16u);
    EXPECT_GT(r.collisions, 0u);
}

TEST(Gamteb, Deterministic)
{
    GamtebResult a = runGamteb(16);
    GamtebResult b = runGamteb(16);
    EXPECT_EQ(a.escaped, b.escaped);
    EXPECT_EQ(a.absorbed, b.absorbed);
    EXPECT_EQ(a.pairProductions, b.pairProductions);
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_EQ(a.stats.totalMessages(), b.stats.totalMessages());
}

TEST(Gamteb, SeedChangesOutcome)
{
    tam::MachineConfig cfg;
    cfg.rngSeed = 1234;
    GamtebResult a = runGamteb(64);
    GamtebResult b = runGamteb(64, cfg);
    EXPECT_TRUE(b.conserved());
    // Different seeds should give a different trajectory (collision
    // totals almost surely differ at this particle count).
    EXPECT_NE(a.collisions, b.collisions);
}

TEST(Gamteb, UsesEveryMessageClass)
{
    // Gamteb's profile covers Sends (spawns/notifications), PReads
    // (cross-section lookups), PWrites (table init), and Read/Write
    // (tallies) -- the full protocol.
    GamtebResult r = runGamteb(32);
    const tam::TamStats &s = r.stats;
    EXPECT_GT(s.msg(tam::MsgKind::send0) + s.msg(tam::MsgKind::send1) +
                  s.msg(tam::MsgKind::send2),
              0u);
    EXPECT_GT(s.msg(tam::MsgKind::preadFull) +
                  s.msg(tam::MsgKind::preadEmpty) +
                  s.msg(tam::MsgKind::preadDeferred),
              0u);
    EXPECT_GT(s.msg(tam::MsgKind::pwrite), 0u);
    EXPECT_GT(s.msg(tam::MsgKind::read), 0u);
    EXPECT_GT(s.msg(tam::MsgKind::write), 0u);
}

TEST(Gamteb, EarlyFetchesDefer)
{
    // Photons start before the cross-section table is initialized
    // (LIFO), so the first lookups defer -- exercising the deferred
    // I-structure machinery the paper's Table 1 prices.
    GamtebResult r = runGamteb(16);
    EXPECT_GT(r.stats.msg(tam::MsgKind::preadEmpty) +
                  r.stats.msg(tam::MsgKind::preadDeferred),
              0u);
    EXPECT_EQ(r.stats.pwriteReleases,
              r.stats.msg(tam::MsgKind::preadEmpty) +
                  r.stats.msg(tam::MsgKind::preadDeferred));
}

TEST(Gamteb, ZeroParticlesIsFatal)
{
    EXPECT_THROW(runGamteb(0), FatalError);
}

class GamtebSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GamtebSweep, Conserves)
{
    GamtebResult r = runGamteb(GetParam());
    EXPECT_TRUE(r.conserved()) << "particles=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, GamtebSweep,
                         ::testing::Values(1u, 2u, 16u, 64u, 256u));
