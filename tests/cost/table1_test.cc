#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cost/table1.hh"
#include "ni/model_registry.hh"

using namespace tcpni;
using namespace tcpni::cost;
using msg::Kind;

namespace
{

/** Shared harnesses (measurement is deterministic but not free). */
Table1Harness &
harness(size_t model_idx)
{
    static std::array<std::unique_ptr<Table1Harness>, 6> cache;
    if (!cache[model_idx]) {
        cache[model_idx] = std::make_unique<Table1Harness>(
            ni::paperModels()[model_idx]);
    }
    return *cache[model_idx];
}

constexpr size_t optReg = 0, optOn = 1, optOff = 2;
constexpr size_t basReg = 3, basOn = 4, basOff = 5;

} // namespace

// ---- Exact-match headline cells -------------------------------------

TEST(Table1Exact, TwoInstructionRemoteRead)
{
    // Abstract claim E: receive, process, and reply to a remote read
    // in a total of two RISC instructions on the optimized
    // register-mapped interface: 1 dispatch + 1 processing.
    ProcCost c = harness(optReg).processingCost(ProcCase::read);
    EXPECT_DOUBLE_EQ(c.dispatching, 1.0);
    EXPECT_DOUBLE_EQ(c.processing, 1.0);
}

TEST(Table1Exact, OptimizedDispatchCosts)
{
    EXPECT_DOUBLE_EQ(
        harness(optReg).processingCost(ProcCase::read).dispatching, 1.0);
    EXPECT_DOUBLE_EQ(
        harness(optOn).processingCost(ProcCase::read).dispatching, 2.0);
    EXPECT_DOUBLE_EQ(
        harness(optOff).processingCost(ProcCase::read).dispatching, 2.0);
}

TEST(Table1Exact, ReadProcessingRow)
{
    // The paper's Read PROCESSING row: 1 / 3 / 5 / 4 / 8 / 8.
    const double expect[6] = {1, 3, 5, 4, 8, 8};
    for (size_t i = 0; i < 6; ++i) {
        EXPECT_DOUBLE_EQ(
            harness(i).processingCost(ProcCase::read).processing,
            expect[i])
            << ni::paperModels()[i].name();
    }
}

TEST(Table1Exact, ReadSendingRow)
{
    const double expect[6] = {3, 4, 4, 4, 6, 6};    // copy variant
    for (size_t i = 0; i < 6; ++i) {
        EXPECT_DOUBLE_EQ(harness(i).sendingCost(Kind::read), expect[i])
            << ni::paperModels()[i].name();
    }
}

TEST(Table1Exact, PWriteDeferredSlopes)
{
    // 6 cycles per deferred reader on register-mapped interfaces,
    // 8 on cache-mapped ones (Table 1's 15+6n / 19+8n rows).
    EXPECT_DOUBLE_EQ(harness(optReg).pwriteDeferredCost().slope, 6.0);
    EXPECT_DOUBLE_EQ(harness(optOn).pwriteDeferredCost().slope, 8.0);
    EXPECT_DOUBLE_EQ(harness(optOff).pwriteDeferredCost().slope, 8.0);
    EXPECT_DOUBLE_EQ(harness(basReg).pwriteDeferredCost().slope, 6.0);
    EXPECT_DOUBLE_EQ(harness(basOn).pwriteDeferredCost().slope, 8.0);
    EXPECT_DOUBLE_EQ(harness(basOff).pwriteDeferredCost().slope, 8.0);
}

// ---- Tolerance sweep over the full table -----------------------------

struct CellCase
{
    std::string row;
    size_t model;
};

class Table1Sweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(Table1Sweep, AllCellsWithinTolerance)
{
    // Every measured cell must be within 5 cycles of the paper's
    // value (the paper's exact instruction schedules are unpublished;
    // EXPERIMENTS.md documents each deviation).  Slopes must be exact.
    size_t mi = GetParam();
    Table1Harness &h = harness(mi);
    auto paper = paperTable1();

    static const Kind kinds[] = {Kind::send0, Kind::send1, Kind::send2,
                                 Kind::pread, Kind::pwrite, Kind::read,
                                 Kind::write};
    for (Kind k : kinds) {
        double v = h.sendingCost(k);
        const PaperCell &p = paper.at(sendRowKey(k))[mi];
        EXPECT_NEAR(v, p.hi, 1.01) << "sending " << msg::kindName(k);
    }

    static const ProcCase cases[] = {
        ProcCase::send0, ProcCase::send1, ProcCase::send2,
        ProcCase::read, ProcCase::write, ProcCase::preadFull,
        ProcCase::preadEmpty, ProcCase::preadDeferred,
        ProcCase::pwriteEmpty,
    };
    for (ProcCase c : cases) {
        double v = h.processingCost(c).processing;
        const PaperCell &p = paper.at(procRowKey(c))[mi];
        EXPECT_NEAR(v, p.hi, 5.01) << "processing " << procCaseName(c);
    }

    LinearCost lin = h.pwriteDeferredCost();
    const PaperCell &p = paper.at(
        procRowKey(ProcCase::pwriteDeferred))[mi];
    EXPECT_DOUBLE_EQ(lin.slope, p.slope);
    EXPECT_NEAR(lin.base, p.lo, 5.01);

    double d = h.processingCost(ProcCase::read).dispatching;
    EXPECT_NEAR(d, paper.at("dispatch")[mi].hi, 1.01);
}

INSTANTIATE_TEST_SUITE_P(
    Models, Table1Sweep, ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string n = ni::paperModels()[info.param].shortName();
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

// ---- Structural properties of the table -------------------------------

TEST(Table1Shape, OptimizedBeatsBasicEverywhere)
{
    // Total per-message cost (dispatch + processing of a Read) must be
    // strictly lower for every optimized model than for every basic
    // model with the same placement.
    for (size_t i = 0; i < 3; ++i) {
        ProcCost opt = harness(i).processingCost(ProcCase::read);
        ProcCost bas = harness(i + 3).processingCost(ProcCase::read);
        EXPECT_LT(opt.dispatching + opt.processing,
                  bas.dispatching + bas.processing)
            << ni::paperModels()[i].name();
    }
}

TEST(Table1Shape, RegisterBeatsCacheMapped)
{
    for (size_t base : {0u, 3u}) {
        double reg =
            harness(base).processingCost(ProcCase::read).processing;
        double on =
            harness(base + 1).processingCost(ProcCase::read).processing;
        double off =
            harness(base + 2).processingCost(ProcCase::read).processing;
        EXPECT_LE(reg, on);
        EXPECT_LE(on, off);
    }
}

TEST(Table1Shape, SlowestOptimizedBeatsFastestBasicOnDispatch)
{
    // Section 4.2.3 claim B is driven largely by dispatch: the worst
    // optimized dispatch (off-chip, 2) beats the best basic (register,
    // 5).
    double worst_opt =
        harness(optOff).processingCost(ProcCase::read).dispatching;
    double best_bas =
        harness(basReg).processingCost(ProcCase::read).dispatching;
    EXPECT_LT(worst_opt, best_bas);
}

TEST(Table1Shape, PWriteDeferredLinearInN)
{
    // Property: processing(n) is exactly linear over n = 1..4.
    Table1Harness &h = harness(optReg);
    double c1 = h.processingCost(ProcCase::pwriteDeferred, 1).processing;
    double c2 = h.processingCost(ProcCase::pwriteDeferred, 2).processing;
    double c3 = h.processingCost(ProcCase::pwriteDeferred, 3).processing;
    double c4 = h.processingCost(ProcCase::pwriteDeferred, 4).processing;
    EXPECT_DOUBLE_EQ(c2 - c1, c3 - c2);
    EXPECT_DOUBLE_EQ(c3 - c2, c4 - c3);
}

TEST(Table1Shape, OffChipLatencySensitivity)
{
    // Section 4.2.3 claim C: raising the off-chip read latency from 2
    // to 8 cycles substantially increases off-chip costs while leaving
    // the register-mapped model untouched.
    Table1Harness off2(ni::paperModels()[optOff].withOffchipDelay(2));
    Table1Harness off8(ni::paperModels()[optOff].withOffchipDelay(8));
    double p2 = off2.processingCost(ProcCase::read).processing;
    double p8 = off8.processingCost(ProcCase::read).processing;
    EXPECT_GT(p8, p2 + 3);

    Table1Harness reg2(ni::paperModels()[optReg].withOffchipDelay(2));
    Table1Harness reg8(ni::paperModels()[optReg].withOffchipDelay(8));
    EXPECT_DOUBLE_EQ(reg2.processingCost(ProcCase::read).processing,
                     reg8.processingCost(ProcCase::read).processing);
}

TEST(Table1Overlap, NextMsgIpHidesDispatchLatency)
{
    // Section 2.2.3: without the NextMsgIp overlap, the MsgIp read's
    // latency and the jump's delay slot are exposed in dispatch.
    Table1Harness with(ni::paperModels()[2], false, false);
    Table1Harness without(ni::paperModels()[2], false, true);
    double d_with = with.processingCost(ProcCase::read).dispatching;
    double d_without =
        without.processingCost(ProcCase::read).dispatching;
    EXPECT_DOUBLE_EQ(d_with, 2.0);
    EXPECT_DOUBLE_EQ(d_without, 5.0);   // ld + 2 stalls + jmp + nop

    // On-chip: only the unfillable delay slot is exposed.
    Table1Harness on_with(ni::paperModels()[1], false, false);
    Table1Harness on_without(ni::paperModels()[1], false, true);
    EXPECT_DOUBLE_EQ(
        on_with.processingCost(ProcCase::read).dispatching, 2.0);
    EXPECT_DOUBLE_EQ(
        on_without.processingCost(ProcCase::read).dispatching, 3.0);
}

TEST(Table1Overlap, ProcessingUnaffectedByOverlapChoice)
{
    // The overlap is purely a dispatch-side optimization: the handler
    // bodies do the same work.
    Table1Harness with(ni::paperModels()[1], false, false);
    Table1Harness without(ni::paperModels()[1], false, true);
    for (ProcCase c : {ProcCase::read, ProcCase::write,
                       ProcCase::preadFull, ProcCase::preadEmpty,
                       ProcCase::pwriteEmpty}) {
        EXPECT_NEAR(with.processingCost(c).processing,
                    without.processingCost(c).processing, 1.01)
            << procCaseName(c);
    }
}
