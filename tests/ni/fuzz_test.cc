#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "common/random.hh"
#include "ni/network_interface.hh"
#include "noc/network.hh"

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

/**
 * Model-based fuzzing: drive one NetworkInterface with a random
 * interleaving of SENDs, NEXTs, register writes, and network
 * deliveries, mirroring every step in a trivial reference model
 * (two std::deques and a register array).  Any divergence in
 * observable state -- queue lengths, input-register contents, message
 * ordering, composed messages -- is a bug in the real thing.
 */
struct RefModel
{
    Word out[msgWords] = {};
    Word in[msgWords] = {};
    bool inValid = false;
    uint8_t curType = 0;
    std::deque<Message> inq;
    std::deque<Message> outq;
    unsigned outDepth;

    explicit RefModel(unsigned depth) : outDepth(depth) {}

    void
    refill()
    {
        if (inValid || inq.empty())
            return;
        Message m = inq.front();
        inq.pop_front();
        for (unsigned k = 0; k < msgWords; ++k)
            in[k] = m.words[k];
        curType = m.type;
        inValid = true;
    }

    bool
    send(isa::SendMode mode, uint8_t type)
    {
        if (outq.size() >= outDepth)
            return false;   // the real NI stalls
        Message m;
        for (unsigned k = 0; k < msgWords; ++k)
            m.words[k] = out[k];
        if (mode == isa::SendMode::reply) {
            m.words[0] = in[1];
            m.words[1] = in[2];
        } else if (mode == isa::SendMode::forward) {
            m.words[2] = in[2];
            m.words[3] = in[3];
            m.words[4] = in[4];
        }
        m.type = type;
        m.setDestFromWord0();
        outq.push_back(m);
        return true;
    }

    void
    next()
    {
        inValid = false;
        refill();
    }

    bool
    accept(const Message &m, unsigned depth)
    {
        if (inq.size() >= depth)
            return false;
        inq.push_back(m);
        refill();
        return true;
    }
};

} // namespace

class NiFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(NiFuzz, MatchesReferenceModel)
{
    Random rng(GetParam());
    const unsigned in_depth = 4, out_depth = 4;

    EventQueue eq;
    IdealNetwork net("net", eq, 2, 1);
    NiConfig cfg;
    cfg.inputQueueDepth = in_depth;
    cfg.outputQueueDepth = out_depth;
    NetworkInterface ni("ni", eq, 1, net, cfg);
    // Keep the pump from draining the output queue: never run the
    // event queue, so the output queue is fully observable.
    RefModel ref(out_depth);

    for (int step = 0; step < 4000; ++step) {
        switch (rng.uniform(0, 4)) {
          case 0: {   // write an output register
            unsigned r = rng.uniform(0, msgWords - 1);
            Word v = rng.next32();
            ni.writeReg(regO0 + r, v);
            ref.out[r] = v;
            break;
          }
          case 1: {   // SEND in a random mode
            isa::NiCommand cmd;
            unsigned mode = rng.uniform(1, 3);
            cmd.mode = static_cast<isa::SendMode>(mode);
            cmd.type = static_cast<uint8_t>(
                rng.uniform(2, 15));
            // Make the destination word routable.
            if (cmd.mode != isa::SendMode::reply) {
                Word dest = globalWord(0, rng.next32());
                ni.writeReg(regO0, dest);
                ref.out[0] = dest;
            }
            bool ref_ok = ref.send(cmd.mode, cmd.type);
            CmdResult res = ni.command(cmd);
            ASSERT_EQ(res == CmdResult::ok, ref_ok) << "step " << step;
            break;
          }
          case 2: {   // NEXT
            isa::NiCommand cmd;
            cmd.next = true;
            ni.command(cmd);
            ref.next();
            break;
          }
          case 3: {   // a message arrives from the network
            Message m;
            for (unsigned k = 0; k < msgWords; ++k)
                m.words[k] = rng.next32();
            m.words[0] = globalWord(1, m.words[0]);
            m.type = static_cast<uint8_t>(rng.uniform(2, 15));
            m.setDestFromWord0();
            bool got = ni.acceptFromNetwork(m);
            bool ref_got = ref.accept(m, in_depth);
            ASSERT_EQ(got, ref_got) << "step " << step;
            break;
          }
          default: {  // read-only probes never perturb state
            ni.readReg(regStatus);
            ni.readReg(regMsgIp);
            ni.readReg(regNextMsgIp);
            break;
          }
        }

        // Observable state must match exactly at every step.
        ASSERT_EQ(ni.inputQueueLen(), ref.inq.size()) << step;
        ASSERT_EQ(ni.outputQueueLen(), ref.outq.size()) << step;
        ASSERT_EQ(ni.msgValid(), ref.inValid) << step;
        if (ref.inValid) {
            ASSERT_EQ(ni.currentType(), ref.curType) << step;
            for (unsigned k = 0; k < msgWords; ++k)
                ASSERT_EQ(ni.readReg(regI0 + k), ref.in[k]) << step;
        }
        for (unsigned k = 0; k < msgWords; ++k)
            ASSERT_EQ(ni.readReg(regO0 + k), ref.out[k]) << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NiFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u,
                                           505u, 606u));
