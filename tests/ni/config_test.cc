/**
 * @file
 * NiConfig::validate(), the placement-policy layer, and the model
 * registry.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "ni/config.hh"
#include "ni/model_registry.hh"
#include "ni/placement_policy.hh"

using namespace tcpni;

namespace
{

TEST(NiConfigValidate, DefaultConfigIsValid)
{
    ni::NiConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(NiConfigValidate, ThresholdEqualToDepthIsValid)
{
    // threshold == depth means "the full bit never raises" -- a legal
    // stall-free configuration, not an error.
    ni::NiConfig cfg;
    cfg.inputQueueDepth = 4;
    cfg.inputThreshold = 4;
    cfg.outputQueueDepth = 4;
    cfg.outputThreshold = 4;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(NiConfigValidate, RejectsInputThresholdAboveDepth)
{
    ni::NiConfig cfg;
    cfg.inputQueueDepth = 4;
    cfg.inputThreshold = 5;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(NiConfigValidate, RejectsOutputThresholdAboveDepth)
{
    ni::NiConfig cfg;
    cfg.outputQueueDepth = 8;
    cfg.outputThreshold = 9;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(NiConfigValidate, RejectsZeroInputDepth)
{
    ni::NiConfig cfg;
    cfg.inputQueueDepth = 0;
    cfg.inputThreshold = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(NiConfigValidate, RejectsZeroOutputDepth)
{
    ni::NiConfig cfg;
    cfg.outputQueueDepth = 0;
    cfg.outputThreshold = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(PlacementPolicy, SingletonsMatchPlacement)
{
    for (ni::Placement p : {ni::Placement::offChipCache,
                            ni::Placement::onChipCache,
                            ni::Placement::registerFile}) {
        EXPECT_EQ(ni::placementPolicy(p).kind(), p);
    }
}

TEST(PlacementPolicy, AddressingAndFolding)
{
    const auto &reg = ni::placementPolicy(ni::Placement::registerFile);
    EXPECT_TRUE(reg.registerMapped());
    EXPECT_TRUE(reg.foldedNiCommands());
    EXPECT_TRUE(reg.directCompose());
    EXPECT_TRUE(reg.optimizedKernelHasEscape());

    for (ni::Placement p : {ni::Placement::offChipCache,
                            ni::Placement::onChipCache}) {
        const auto &pol = ni::placementPolicy(p);
        EXPECT_FALSE(pol.registerMapped());
        EXPECT_FALSE(pol.foldedNiCommands());
        EXPECT_FALSE(pol.directCompose());
        EXPECT_FALSE(pol.optimizedKernelHasEscape());
    }
}

TEST(PlacementPolicy, LoadUseDelayTracksConfig)
{
    ni::NiConfig cfg;
    cfg.placement = ni::Placement::offChipCache;
    cfg.offChipLoadUseDelay = 8;
    EXPECT_EQ(cfg.loadUseDelay(), 8u);

    cfg.placement = ni::Placement::onChipCache;
    EXPECT_EQ(cfg.loadUseDelay(), 0u);
    cfg.placement = ni::Placement::registerFile;
    EXPECT_EQ(cfg.loadUseDelay(), 0u);
}

TEST(ModelRegistry, PaperModelsComeFirstInPaperOrder)
{
    const auto &models = ni::registeredModels();
    ASSERT_GE(models.size(), 6u);
    const auto &paper = ni::paperModels();
    for (size_t i = 0; i < paper.size(); ++i) {
        EXPECT_EQ(models[i].model.placement, paper[i].placement);
        EXPECT_EQ(models[i].model.optimized, paper[i].optimized);
        EXPECT_EQ(models[i].name, paper[i].name());
        EXPECT_EQ(models[i].shortName, paper[i].shortName());
    }
}

TEST(ModelRegistry, FindByNameAndShortName)
{
    const ni::ModelInfo *by_short =
        ni::ModelRegistry::instance().find("reg-opt");
    ASSERT_NE(by_short, nullptr);
    EXPECT_EQ(by_short->model.placement, ni::Placement::registerFile);
    EXPECT_TRUE(by_short->model.optimized);

    const ni::ModelInfo *by_name =
        ni::ModelRegistry::instance().find(by_short->name);
    EXPECT_EQ(by_name, by_short);

    EXPECT_EQ(ni::ModelRegistry::instance().find("no-such-model"),
              nullptr);
}

TEST(ModelRegistry, RejectsDuplicateNames)
{
    ni::ModelRegistry &reg = ni::ModelRegistry::instance();
    ASSERT_GE(reg.size(), 1u);
    const ni::ModelInfo first = reg.all().front();
    const size_t before = reg.size();

    ni::ModelInfo dup_name = first;
    dup_name.shortName = "unique-short-name";
    EXPECT_THROW(reg.add(dup_name), FatalError);

    ni::ModelInfo dup_short = first;
    dup_short.name = "A Unique Long Name";
    EXPECT_THROW(reg.add(dup_short), FatalError);

    // add() validates before mutating: the registry is unchanged.
    EXPECT_EQ(reg.size(), before);
    EXPECT_EQ(reg.find("unique-short-name"), nullptr);
    EXPECT_EQ(reg.find("A Unique Long Name"), nullptr);
}

TEST(ModelRegistry, NamesAreUnique)
{
    std::set<std::string> names, shorts;
    for (const ni::ModelInfo &info : ni::registeredModels()) {
        EXPECT_TRUE(names.insert(info.name).second)
            << "duplicate name " << info.name;
        EXPECT_TRUE(shorts.insert(info.shortName).second)
            << "duplicate short name " << info.shortName;
    }
}

#ifdef TCPNI_EXTRA_MODELS
TEST(ModelRegistry, FarOffchipVariantRegistered)
{
    const ni::ModelInfo *far =
        ni::ModelRegistry::instance().find("faroff-opt");
    ASSERT_NE(far, nullptr);
    EXPECT_EQ(far->model.placement, ni::Placement::offChipCache);
    EXPECT_TRUE(far->model.optimized);
    EXPECT_EQ(far->model.offchipLoadUseDelay, 8u);
}

TEST(ModelRegistry, OnNiPairRegistered)
{
    for (const char *name : {"onni-basic", "onni-opt"}) {
        const ni::ModelInfo *info =
            ni::ModelRegistry::instance().find(name);
        ASSERT_NE(info, nullptr) << name;
        EXPECT_EQ(info->model.placement, ni::Placement::onNi);
        EXPECT_TRUE(info->model.policy().handlersOnNi());
    }
}
#endif

TEST(ModelNames, DelegateToPolicyCanonicalNames)
{
    ni::Model m{ni::Placement::onChipCache, false};
    EXPECT_EQ(m.name(), "Basic On-chip Cache");
    EXPECT_EQ(m.shortName(), "on-basic");
    EXPECT_EQ(ni::placementName(ni::Placement::onChipCache),
              "On-chip Cache");
}

} // namespace
