#include "ni_fixture.hh"

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

NiConfig
cfg()
{
    NiConfig c;
    c.features = Features::optimized();
    return c;
}

} // namespace

class NiScroll : public NiPairTest
{
  protected:
    void
    SetUp() override
    {
        build(cfg());
    }

    void
    setOut(ni::NetworkInterface &ni, Word a, Word b, Word c, Word d,
           Word e)
    {
        ni.writeReg(regO0, a);
        ni.writeReg(regO1, b);
        ni.writeReg(regO2, c);
        ni.writeReg(regO3, d);
        ni.writeReg(regO4, e);
    }
};

TEST_F(NiScroll, TenWordMessage)
{
    // Compose a 10-word message: SCROLL-OUT banks the first five
    // words, SEND ships them plus the final five.
    setOut(*ni0, globalWord(1, 0), 11, 12, 13, 14);
    ni0->scrollOut();
    setOut(*ni0, 15, 16, 17, 18, 19);
    isa::NiCommand send_cmd;
    send_cmd.mode = isa::SendMode::send;
    send_cmd.type = 2;
    ni0->command(send_cmd);
    drain();

    // Receiver sees the first window...
    ASSERT_TRUE(ni1->msgValid());
    EXPECT_EQ(ni1->readReg(regI1), 11u);
    EXPECT_EQ(ni1->readReg(regI4), 14u);

    // ...then scrolls in the second.
    ni1->scrollIn();
    EXPECT_EQ(ni1->readReg(regI0), 15u);
    EXPECT_EQ(ni1->readReg(regI4), 19u);
    EXPECT_EQ(ni1->pendingException(), ExcCode::none);
}

TEST_F(NiScroll, ArbitrarilyLongMessage)
{
    const int segments = 7;
    for (int s = 0; s < segments; ++s) {
        Word base = static_cast<Word>(s * 10);
        if (s == 0) {
            setOut(*ni0, globalWord(1, 0), base + 1, base + 2, base + 3,
                   base + 4);
        } else {
            setOut(*ni0, base, base + 1, base + 2, base + 3, base + 4);
        }
        if (s < segments - 1) {
            ni0->scrollOut();
        } else {
            isa::NiCommand c;
            c.mode = isa::SendMode::send;
            c.type = 2;
            ni0->command(c);
        }
    }
    drain();

    ASSERT_TRUE(ni1->msgValid());
    for (int s = 1; s < segments; ++s) {
        ni1->scrollIn();
        EXPECT_EQ(ni1->readReg(regI1), static_cast<Word>(s * 10 + 1));
    }
    EXPECT_EQ(ni1->pendingException(), ExcCode::none);
}

TEST_F(NiScroll, ScrollPastEndRaisesInputPortError)
{
    setOut(*ni0, globalWord(1, 0), 1, 2, 3, 4);
    isa::NiCommand c;
    c.mode = isa::SendMode::send;
    c.type = 2;
    ni0->command(c);
    drain();
    ASSERT_TRUE(ni1->msgValid());

    // A plain 5-word message has nothing to scroll.
    ni1->scrollIn();
    EXPECT_EQ(ni1->pendingException(), ExcCode::inputPortError);
}

TEST_F(NiScroll, ScrollInWithoutMessageRaises)
{
    ni1->scrollIn();
    EXPECT_EQ(ni1->pendingException(), ExcCode::inputPortError);
}

TEST_F(NiScroll, NextSkipsUnconsumedTail)
{
    // Send a long message followed by a short one; NEXT after partial
    // consumption advances to the short message.
    setOut(*ni0, globalWord(1, 0), 1, 2, 3, 4);
    ni0->scrollOut();
    setOut(*ni0, 5, 6, 7, 8, 9);
    isa::NiCommand c;
    c.mode = isa::SendMode::send;
    c.type = 2;
    ni0->command(c);
    send(*ni0, 1, 3, 0x99);
    drain();

    ASSERT_TRUE(ni1->msgValid());
    EXPECT_EQ(ni1->currentType(), 2);
    ni1->command(nextCmd());    // discard the rest of the long message
    EXPECT_EQ(ni1->currentType(), 3);
    EXPECT_EQ(ni1->readReg(regI1), 0x99u);
}

TEST_F(NiScroll, ScrollStateResetsPerMessage)
{
    for (int rep = 0; rep < 2; ++rep) {
        setOut(*ni0, globalWord(1, 0), 1, 2, 3, 4);
        ni0->scrollOut();
        setOut(*ni0, 100 + rep, 0, 0, 0, 0);
        isa::NiCommand c;
        c.mode = isa::SendMode::send;
        c.type = 2;
        ni0->command(c);
    }
    drain();

    ni1->scrollIn();
    EXPECT_EQ(ni1->readReg(regI0), 100u);
    ni1->command(nextCmd());
    ni1->scrollIn();
    EXPECT_EQ(ni1->readReg(regI0), 101u);
    EXPECT_EQ(ni1->pendingException(), ExcCode::none);
}

TEST_F(NiScroll, LongMessagePreservedThroughQueue)
{
    // Two long messages queued back-to-back keep their extra words
    // associated correctly.
    for (Word tag = 0; tag < 2; ++tag) {
        setOut(*ni0, globalWord(1, 0), tag, 0, 0, 0);
        ni0->scrollOut();
        setOut(*ni0, 0x50 + tag, 0, 0, 0, 0);
        isa::NiCommand c;
        c.mode = isa::SendMode::send;
        c.type = 2;
        ni0->command(c);
    }
    drain();

    EXPECT_EQ(ni1->readReg(regI1), 0u);
    ni1->scrollIn();
    EXPECT_EQ(ni1->readReg(regI0), 0x50u);
    ni1->command(nextCmd());
    EXPECT_EQ(ni1->readReg(regI1), 1u);
    ni1->scrollIn();
    EXPECT_EQ(ni1->readReg(regI0), 0x51u);
}
