#include <gtest/gtest.h>

#include "ni/ni_regs.hh"
#include "noc/message.hh"

using namespace tcpni;
using namespace tcpni::ni;

TEST(CmdAddr, Figure9Example)
{
    // The paper's example: "return the contents of the sixth interface
    // register, i1, ... send a reply message of type 7, and load its
    // input registers with the next message".  The low address bits are
    // register 6, type 7, mode 10 (reply), NEXT.
    Word off = cmdaddr::offset(regI1, 2, 7, true);
    EXPECT_EQ(bits(off, 5, 2), 6u);
    EXPECT_EQ(bits(off, 9, 6), 7u);
    EXPECT_EQ(bits(off, 11, 10), 2u);
    EXPECT_EQ(bits(off, 12), 1u);
}

TEST(CmdAddr, RegisterNumbers)
{
    // Output registers come first (Figure 9 decodes register 6 as i1).
    EXPECT_EQ(regO0, 0u);
    EXPECT_EQ(regO4, 4u);
    EXPECT_EQ(regI0, 5u);
    EXPECT_EQ(regI1, 6u);
    EXPECT_EQ(regI4, 9u);
    EXPECT_EQ(regStatus, 10u);
    EXPECT_EQ(regIpBase, 14u);
}

TEST(CmdAddr, PlainAccessHasNoCommands)
{
    Word off = cmdaddr::offset(regStatus);
    EXPECT_EQ(bits(off, 11, 10), 0u);
    EXPECT_EQ(bits(off, 12), 0u);
}

TEST(CmdAddr, ScrollBits)
{
    Word in = cmdaddr::offset(regI0, 0, 0, false, true, false);
    Word out = cmdaddr::offset(regO0, 0, 0, false, false, true);
    EXPECT_EQ(bits(in, cmdaddr::scrollInBit), 1u);
    EXPECT_EQ(bits(out, cmdaddr::scrollOutBit), 1u);
}

TEST(Dispatch, HandlerAddrLayout)
{
    Word base = 0x4000;
    EXPECT_EQ(dispatch::handlerAddr(base, 0), 0x4000u);
    EXPECT_EQ(dispatch::handlerAddr(base, 1), 0x4080u);
    EXPECT_EQ(dispatch::handlerAddr(base, 15), 0x4780u);
    // oafull and iafull select the "four versions of each handler".
    EXPECT_EQ(dispatch::handlerAddr(base, 2, false, true), 0x4900u);
    EXPECT_EQ(dispatch::handlerAddr(base, 2, true, false), 0x5100u);
    EXPECT_EQ(dispatch::handlerAddr(base, 2, true, true), 0x5900u);
}

TEST(Dispatch, IpBaseLowBitsIgnored)
{
    EXPECT_EQ(dispatch::handlerAddr(0x5fff, 0), 0x4000u);
}

TEST(AsmSymbols, ContainsCoreDefinitions)
{
    auto syms = asmSymbols();
    EXPECT_EQ(syms.at("NI_BASE"), cmdaddr::niAddrBase);
    EXPECT_EQ(syms.at("NI_I1"), 6u << 2);
    EXPECT_EQ(syms.at("NI_O0"), 0u);
    EXPECT_EQ(syms.at("NI_STATUS"), 10u << 2);
    EXPECT_EQ(syms.at("NI_SEND"), 1u << 10);
    EXPECT_EQ(syms.at("NI_REPLY"), 2u << 10);
    EXPECT_EQ(syms.at("NI_FWD"), 3u << 10);
    EXPECT_EQ(syms.at("NI_NEXT"), 1u << 12);
    EXPECT_EQ(syms.at("NI_TYPE"), 1u << 6);
    EXPECT_EQ(syms.at("HANDLER_STRIDE"), 128u);
    EXPECT_EQ(syms.at("NODE_SHIFT"), nodeShift);
}

TEST(AsmSymbols, Figure9ExampleViaSymbols)
{
    // NI_BASE | NI_I1 | NI_REPLY | NI_TYPE*7 | NI_NEXT reproduces the
    // paper's example address.
    auto syms = asmSymbols();
    Word addr = static_cast<Word>(syms["NI_BASE"] | syms["NI_I1"] |
                                  syms["NI_REPLY"] | syms["NI_TYPE"] * 7 |
                                  syms["NI_NEXT"]);
    EXPECT_EQ(addr & 0xffff0000u, 0xffff0000u);
    EXPECT_EQ(addr & 0x1fff,
              cmdaddr::offset(regI1, 2, 7, true));
}
