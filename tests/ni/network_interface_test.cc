#include "ni_fixture.hh"

#include "common/logging.hh"

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

NiConfig
optCfg()
{
    NiConfig c;
    c.features = Features::optimized();
    return c;
}

NiConfig
basicCfg()
{
    NiConfig c;
    c.features = Features::basic();
    return c;
}

} // namespace

class NiBasicOps : public NiPairTest
{
};

TEST_F(NiBasicOps, SendDeliversToInputRegs)
{
    build(optCfg());
    send(*ni0, 1, 3, 0x11, 0x22, 0x33, 0x44, 0x100);
    drain();

    // The message auto-advances into ni1's input registers.
    EXPECT_TRUE(ni1->msgValid());
    EXPECT_EQ(ni1->currentType(), 3);
    EXPECT_EQ(ni1->readReg(regI0), globalWord(1, 0x100));
    EXPECT_EQ(ni1->readReg(regI1), 0x11u);
    EXPECT_EQ(ni1->readReg(regI2), 0x22u);
    EXPECT_EQ(ni1->readReg(regI3), 0x33u);
    EXPECT_EQ(ni1->readReg(regI4), 0x44u);
    EXPECT_EQ(ni1->inputQueueLen(), 0u);
}

TEST_F(NiBasicOps, StatusReflectsMessage)
{
    build(optCfg());
    EXPECT_EQ(bits(ni1->readReg(regStatus), status::msgValidBit), 0u);
    send(*ni0, 1, 5);
    drain();
    Word st = ni1->readReg(regStatus);
    EXPECT_EQ(bits(st, status::msgValidBit), 1u);
    EXPECT_EQ(bits(st, status::msgTypeShift + 3, status::msgTypeShift),
              5u);
}

TEST_F(NiBasicOps, NextPopsQueueInOrder)
{
    build(optCfg());
    send(*ni0, 1, 2, 100);
    send(*ni0, 1, 3, 200);
    send(*ni0, 1, 4, 300);
    drain();

    EXPECT_EQ(ni1->currentType(), 2);
    EXPECT_EQ(ni1->inputQueueLen(), 2u);

    ni1->command(nextCmd());
    EXPECT_EQ(ni1->currentType(), 3);
    EXPECT_EQ(ni1->readReg(regI1), 200u);

    ni1->command(nextCmd());
    EXPECT_EQ(ni1->currentType(), 4);

    ni1->command(nextCmd());
    EXPECT_FALSE(ni1->msgValid());
}

TEST_F(NiBasicOps, NextOnEmptyLeavesInvalidThenRefills)
{
    build(optCfg());
    ni1->command(nextCmd());
    EXPECT_FALSE(ni1->msgValid());
    // A later arrival goes straight into the registers.
    send(*ni0, 1, 6);
    drain();
    EXPECT_TRUE(ni1->msgValid());
    EXPECT_EQ(ni1->currentType(), 6);
}

TEST_F(NiBasicOps, ReplyModeSubstitutesContinuation)
{
    build(optCfg());
    // A remote-read-style request: w1 = FP (with requester node in the
    // high bits), w2 = IP.
    send(*ni0, 1, 3, globalWord(0, 0xf00), 0xbeef, 0, 0, 0x40);
    drain();
    ASSERT_TRUE(ni1->msgValid());

    // Handler computes the value into o2 and replies.
    ni1->writeReg(regO2, 0x777);
    isa::NiCommand cmd;
    cmd.mode = isa::SendMode::reply;
    cmd.type = 4;
    cmd.next = true;
    ni1->command(cmd);
    drain();

    // The reply arrived back at ni0, headed by the FP/IP continuation.
    ASSERT_TRUE(ni0->msgValid());
    EXPECT_EQ(ni0->currentType(), 4);
    EXPECT_EQ(ni0->readReg(regI0), globalWord(0, 0xf00));
    EXPECT_EQ(ni0->readReg(regI1), 0xbeefu);
    EXPECT_EQ(ni0->readReg(regI2), 0x777u);
    // And ni1 advanced past the request.
    EXPECT_FALSE(ni1->msgValid());
}

TEST_F(NiBasicOps, ForwardModeSubstitutesData)
{
    build(optCfg());
    send(*ni0, 1, 5, 0, 0xd2, 0xd3, 0xd4, 0x0);
    drain();
    ASSERT_TRUE(ni1->msgValid());

    // Forward the data words to node 0 with a fresh header.
    ni1->writeReg(regO0, globalWord(0, 0x50));
    ni1->writeReg(regO1, 0xaa);
    isa::NiCommand cmd;
    cmd.mode = isa::SendMode::forward;
    cmd.type = 6;
    ni1->command(cmd);
    drain();

    ASSERT_TRUE(ni0->msgValid());
    EXPECT_EQ(ni0->readReg(regI0), globalWord(0, 0x50));
    EXPECT_EQ(ni0->readReg(regI1), 0xaau);
    EXPECT_EQ(ni0->readReg(regI2), 0xd2u);
    EXPECT_EQ(ni0->readReg(regI3), 0xd3u);
    EXPECT_EQ(ni0->readReg(regI4), 0xd4u);
}

TEST_F(NiBasicOps, BasicInterfaceIgnoresEncodedType)
{
    build(basicCfg());
    isa::NiCommand cmd;
    cmd.mode = isa::SendMode::send;
    cmd.type = 9;   // must be ignored: basic has no encoded types
    ni0->writeReg(regO0, globalWord(1, 0));
    ni0->command(cmd);
    drain();
    EXPECT_TRUE(ni1->msgValid());
    EXPECT_EQ(ni1->currentType(), 0);
}

TEST_F(NiBasicOps, BasicInterfaceRejectsReplyMode)
{
    build(basicCfg());
    isa::NiCommand cmd;
    cmd.mode = isa::SendMode::reply;
    EXPECT_THROW(ni0->command(cmd), PanicError);
}

TEST_F(NiBasicOps, Type1ReservedWhenHwDispatch)
{
    build(optCfg());
    isa::NiCommand cmd;
    cmd.mode = isa::SendMode::send;
    cmd.type = 1;
    EXPECT_THROW(ni0->command(cmd), PanicError);
}

TEST_F(NiBasicOps, InputRegsWritableAsScratch)
{
    build(optCfg());
    ni0->writeReg(regI3, 0x123);
    EXPECT_EQ(ni0->readReg(regI3), 0x123u);
}

TEST_F(NiBasicOps, MsgIpReadOnly)
{
    build(optCfg());
    bool saved = logging::quiet;
    logging::quiet = true;
    ni0->writeReg(regMsgIp, 0x1234);
    logging::quiet = saved;
    EXPECT_NE(ni0->readReg(regMsgIp), 0x1234u);
}

class NiFlowControl : public NiPairTest
{
};

TEST_F(NiFlowControl, OutputQueueFillsWithoutPump)
{
    NiConfig cfg = optCfg();
    cfg.outputQueueDepth = 4;
    build(cfg);

    // Without running the event queue the pump never fires, so sends
    // accumulate in the output queue.
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(send(*ni0, 1, 2), CmdResult::ok);
    EXPECT_EQ(ni0->outputQueueLen(), 4u);
    EXPECT_TRUE(ni0->sendWouldStall());

    // Stall policy (the reset default): SEND returns stall.
    EXPECT_EQ(send(*ni0, 1, 2), CmdResult::stall);
    // Nothing was enqueued or lost.
    EXPECT_EQ(ni0->outputQueueLen(), 4u);
    EXPECT_EQ(ni0->pendingException(), ExcCode::none);
}

TEST_F(NiFlowControl, ExceptionPolicyRaisesOverflow)
{
    NiConfig cfg = optCfg();
    cfg.outputQueueDepth = 2;
    build(cfg);

    // Clear the stall bit: full queue now raises an exception.
    Word ctl = ni0->readReg(regControl);
    ni0->writeReg(regControl, ctl & ~(1u << control::stallOnFullBit));

    send(*ni0, 1, 2);
    send(*ni0, 1, 2);
    EXPECT_EQ(send(*ni0, 1, 2), CmdResult::ok);
    EXPECT_EQ(ni0->pendingException(), ExcCode::outputOverflow);
    Word st = ni0->readReg(regStatus);
    EXPECT_EQ(bits(st, status::excPendingBit), 1u);
    EXPECT_EQ(bits(st, status::excCodeShift + 3, status::excCodeShift),
              static_cast<Word>(ExcCode::outputOverflow));

    // Writing STATUS acknowledges the exception.
    ni0->writeReg(regStatus, 0);
    EXPECT_EQ(ni0->pendingException(), ExcCode::none);
}

TEST_F(NiFlowControl, StalledSendProceedsAfterDrain)
{
    NiConfig cfg = optCfg();
    cfg.outputQueueDepth = 2;
    build(cfg);
    send(*ni0, 1, 2);
    send(*ni0, 1, 2);
    EXPECT_EQ(send(*ni0, 1, 2), CmdResult::stall);
    drain();    // pump empties the output queue
    EXPECT_EQ(send(*ni0, 1, 2), CmdResult::ok);
    drain();
    EXPECT_EQ(ni1->numReceived(), 3u);
}

TEST_F(NiFlowControl, InputQueueBackpressuresNetwork)
{
    NiConfig cfg = optCfg();
    cfg.inputQueueDepth = 2;
    build(cfg);

    // 1 in the input regs + 2 in the queue fit; the 4th waits in the
    // network until the receiver pops.
    for (int k = 0; k < 4; ++k)
        send(*ni0, 1, 2);
    eq.run(eq.curTick() + 50);
    EXPECT_EQ(ni1->inputQueueLen(), 2u);
    EXPECT_FALSE(net->idle());

    ni1->command(nextCmd());
    drain();
    EXPECT_TRUE(net->idle());
    EXPECT_EQ(ni1->numReceived(), 4u);
}

TEST_F(NiFlowControl, QueueLengthsInStatus)
{
    NiConfig cfg = optCfg();
    build(cfg);
    send(*ni0, 1, 2);
    send(*ni0, 1, 2);
    Word st = ni0->readReg(regStatus);
    EXPECT_EQ(bits(st, status::outputLenShift + 7,
                   status::outputLenShift), 2u);
    drain();
    // After draining: 1 in ni1's input regs, 1 queued.
    st = ni1->readReg(regStatus);
    EXPECT_EQ(bits(st, status::inputLenShift + 7,
                   status::inputLenShift), 1u);
}

TEST_F(NiBasicOps, MessageTracing)
{
    NiConfig cfg = optCfg();
    cfg.traceMessages = true;
    build(cfg);

    // Capture stderr around a traced send + receive.
    testing::internal::CaptureStderr();
    bool saved = logging::quiet;
    logging::quiet = false;
    send(*ni0, 1, 3, 0x42);
    drain();
    logging::quiet = saved;
    std::string log = testing::internal::GetCapturedStderr();

    EXPECT_NE(log.find("ni0 TX"), std::string::npos) << log;
    EXPECT_NE(log.find("ni1 RX"), std::string::npos) << log;
    EXPECT_NE(log.find("type=3"), std::string::npos) << log;
}
