/**
 * @file
 * Shared fixture for network-interface unit tests: two NIs on an ideal
 * network, with helpers to compose and pump messages.
 */

#ifndef TCPNI_TESTS_NI_FIXTURE_HH
#define TCPNI_TESTS_NI_FIXTURE_HH

#include <gtest/gtest.h>

#include <memory>

#include "ni/network_interface.hh"
#include "noc/network.hh"

namespace tcpni
{

class NiPairTest : public ::testing::Test
{
  protected:
    void
    build(ni::NiConfig cfg0, ni::NiConfig cfg1)
    {
        net = std::make_unique<IdealNetwork>("net", eq, 2, 1);
        ni0 = std::make_unique<ni::NetworkInterface>("ni0", eq, 0, *net,
                                                     cfg0);
        ni1 = std::make_unique<ni::NetworkInterface>("ni1", eq, 1, *net,
                                                     cfg1);
    }

    void
    build(ni::NiConfig cfg)
    {
        build(cfg, cfg);
    }

    /** Compose a message in @p src's output registers and SEND it. */
    ni::CmdResult
    send(ni::NetworkInterface &src, NodeId dst, uint8_t type,
         Word w1 = 0, Word w2 = 0, Word w3 = 0, Word w4 = 0,
         Word local0 = 0)
    {
        src.writeReg(ni::regO0, globalWord(dst, local0));
        src.writeReg(ni::regO1, w1);
        src.writeReg(ni::regO2, w2);
        src.writeReg(ni::regO3, w3);
        src.writeReg(ni::regO4, w4);
        isa::NiCommand cmd;
        cmd.mode = isa::SendMode::send;
        cmd.type = type;
        return src.command(cmd);
    }

    /** Run the event queue until quiescent. */
    void drain() { eq.run(); }

    isa::NiCommand
    nextCmd()
    {
        isa::NiCommand c;
        c.next = true;
        return c;
    }

    EventQueue eq;
    std::unique_ptr<IdealNetwork> net;
    std::unique_ptr<ni::NetworkInterface> ni0, ni1;
};

} // namespace tcpni

#endif // TCPNI_TESTS_NI_FIXTURE_HH
