#include "ni_fixture.hh"

#include <set>

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

constexpr Word ipBase = 0x8000;

NiConfig
optCfg()
{
    NiConfig c;
    c.features = Features::optimized();
    return c;
}

} // namespace

class MsgIpDispatch : public NiPairTest
{
  protected:
    void
    SetUp() override
    {
        build(optCfg());
        ni1->writeReg(regIpBase, ipBase);
    }
};

TEST_F(MsgIpDispatch, NoMessageGivesPollHandler)
{
    // Type bits 0000: the poll/idle handler.
    EXPECT_EQ(ni1->readReg(regMsgIp), dispatch::handlerAddr(ipBase, 0));
}

TEST_F(MsgIpDispatch, TypedMessageSelectsHandlerSlot)
{
    send(*ni0, 1, 7);
    drain();
    EXPECT_EQ(ni1->readReg(regMsgIp), dispatch::handlerAddr(ipBase, 7));
}

TEST_F(MsgIpDispatch, EachTypeGetsDistinctHandler)
{
    std::set<Word> addrs;
    addrs.insert(ni1->readReg(regMsgIp));
    for (uint8_t t = 2; t <= 15; ++t) {
        send(*ni0, 1, t);
        drain();
        addrs.insert(ni1->readReg(regMsgIp));
        ni1->command(nextCmd());
    }
    EXPECT_EQ(addrs.size(), 15u);   // 14 types + poll
}

TEST_F(MsgIpDispatch, Type0DispatchesThroughWord1)
{
    // Figure 7 case 2: type-0 messages carry their handler IP in
    // word 1.
    send(*ni0, 1, 0, /*w1=*/0xcafe0);
    drain();
    EXPECT_EQ(ni1->readReg(regMsgIp), 0xcafe0u);
}

TEST_F(MsgIpDispatch, NextMsgIpTracksQueueHead)
{
    send(*ni0, 1, 7);
    send(*ni0, 1, 9);
    drain();
    EXPECT_EQ(ni1->readReg(regMsgIp), dispatch::handlerAddr(ipBase, 7));
    EXPECT_EQ(ni1->readReg(regNextMsgIp),
              dispatch::handlerAddr(ipBase, 9));

    // After NEXT, MsgIp becomes the old NextMsgIp.
    ni1->command(nextCmd());
    EXPECT_EQ(ni1->readReg(regMsgIp), dispatch::handlerAddr(ipBase, 9));
    EXPECT_EQ(ni1->readReg(regNextMsgIp),
              dispatch::handlerAddr(ipBase, 0));
}

TEST_F(MsgIpDispatch, NextMsgIpHandlesType0Head)
{
    send(*ni0, 1, 7);
    send(*ni0, 1, 0, 0xabcd0);
    drain();
    EXPECT_EQ(ni1->readReg(regNextMsgIp), 0xabcd0u);
}

TEST_F(MsgIpDispatch, IafullSelectsThresholdVariant)
{
    // Lower the input threshold to 2 so three queued messages trip it.
    Word ctl = ni1->readReg(regControl);
    ctl = insertBits(ctl, control::inThresholdShift + 7,
                     control::inThresholdShift, 2);
    ni1->writeReg(regControl, static_cast<Word>(ctl));

    for (int k = 0; k < 4; ++k)
        send(*ni0, 1, 7);
    drain();
    // 1 in regs + 3 queued > threshold 2.
    EXPECT_EQ(ni1->inputQueueLen(), 3u);
    EXPECT_EQ(ni1->readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, 7, /*iafull=*/true));

    // Popping below the threshold restores the plain handler.
    ni1->command(nextCmd());
    ni1->command(nextCmd());
    EXPECT_EQ(ni1->readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, 7, false));
}

TEST_F(MsgIpDispatch, OafullSelectsThresholdVariant)
{
    Word ctl = ni1->readReg(regControl);
    ctl = insertBits(ctl, control::outThresholdShift + 7,
                     control::outThresholdShift, 1);
    ni1->writeReg(regControl, static_cast<Word>(ctl));

    send(*ni0, 1, 7);
    drain();
    // Queue two outgoing messages without draining.
    send(*ni1, 0, 2);
    send(*ni1, 0, 2);
    EXPECT_EQ(ni1->readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, 7, false, /*oafull=*/true));
}

TEST_F(MsgIpDispatch, ThresholdSuppressesType0Shortcut)
{
    // A type-0 message above a threshold must take the table path so
    // the boundary condition is noticed (Figure 7 case 1).
    Word ctl = ni1->readReg(regControl);
    ctl = insertBits(ctl, control::inThresholdShift + 7,
                     control::inThresholdShift, 0);
    ni1->writeReg(regControl, static_cast<Word>(ctl));

    send(*ni0, 1, 0, 0xcafe0);
    send(*ni0, 1, 7);
    drain();
    EXPECT_EQ(ni1->inputQueueLen(), 1u);    // > threshold 0
    EXPECT_EQ(ni1->readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, 0, /*iafull=*/true));
}

TEST_F(MsgIpDispatch, ExceptionOverridesDispatch)
{
    NiConfig cfg = optCfg();
    cfg.outputQueueDepth = 1;
    build(cfg);
    ni1->writeReg(regIpBase, ipBase);
    Word ctl = ni1->readReg(regControl);
    ni1->writeReg(regControl,
                  ctl & ~(1u << control::stallOnFullBit));

    send(*ni1, 0, 2);
    send(*ni1, 0, 2);   // overflows: exception
    EXPECT_EQ(ni1->pendingException(), ExcCode::outputOverflow);
    EXPECT_EQ(ni1->readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, dispatch::excType));

    // Acknowledging restores normal dispatch.
    ni1->writeReg(regStatus, 0);
    EXPECT_NE(ni1->readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, dispatch::excType));
}

TEST_F(MsgIpDispatch, BasicInterfaceHasNoMsgIp)
{
    NiConfig basic;
    basic.features = Features::basic();
    build(basic);
    send(*ni0, 1, 0);
    drain();
    EXPECT_EQ(ni1->readReg(regMsgIp), 0u);
    EXPECT_EQ(ni1->readReg(regNextMsgIp), 0u);
}

// Parameterized sweep over the full (type x iafull x oafull) dispatch
// space: every combination must land in its own slot.
struct DispatchCase
{
    unsigned type;
    bool ia, oa;
};

class DispatchMatrix : public ::testing::TestWithParam<DispatchCase>
{
};

TEST_P(DispatchMatrix, SlotFormula)
{
    auto [type, ia, oa] = GetParam();
    Word addr = dispatch::handlerAddr(0x10000, type, ia, oa);
    Word expect = 0x10000u | (type << 7) | (ia ? 1u << 12 : 0) |
                  (oa ? 1u << 11 : 0);
    EXPECT_EQ(addr, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, DispatchMatrix,
    ::testing::Values(DispatchCase{0, false, false},
                      DispatchCase{0, true, true},
                      DispatchCase{3, false, true},
                      DispatchCase{3, true, false},
                      DispatchCase{15, true, true},
                      DispatchCase{8, false, false}));

// Exhaustive variant addressing: the 64 (type, iafull, oafull) slots
// must be distinct, 128-byte aligned, and confined to the 8 KB window
// above IpBase; low IpBase bits must not leak into the slot address.
TEST(DispatchMatrixFull, AllSixtyFourSlotsDistinctAndInWindow)
{
    const Word ip_base = 0x4000;
    std::set<Word> slots;
    for (unsigned type = 0; type < 16; ++type) {
        for (unsigned variant = 0; variant < 4; ++variant) {
            bool ia = variant & 2;
            bool oa = variant & 1;
            Word addr = dispatch::handlerAddr(ip_base, type, ia, oa);
            EXPECT_EQ(addr % (1u << dispatch::handlerShift), 0u);
            EXPECT_GE(addr, ip_base);
            EXPECT_LT(addr, ip_base + 0x2000u);
            slots.insert(addr);
        }
    }
    EXPECT_EQ(slots.size(), 64u);
}

TEST(DispatchMatrixFull, IpBaseLowBitsIgnored)
{
    // A misaligned IpBase must dispatch as if aligned: only the bits
    // above the 8 KB table window participate (Figure 7).
    EXPECT_EQ(dispatch::handlerAddr(0x4abc, 7, true, false),
              dispatch::handlerAddr(0x4000, 7, true, false));
    EXPECT_EQ(dispatch::handlerAddr(0x6000, 7, true, false),
              dispatch::handlerAddr(0x6000 & dispatch::tableMask, 7,
                                    true, false));
}

TEST(DispatchMatrixFull, VariantBitsSelectThresholdBanks)
{
    // The four variants of one type sit exactly one oafull / iafull
    // bit apart: 2 KB and 4 KB above the base slot.
    const Word ip_base = 0x4000;
    Word base = dispatch::handlerAddr(ip_base, 3, false, false);
    EXPECT_EQ(dispatch::handlerAddr(ip_base, 3, false, true),
              base + (1u << dispatch::oafullShift));
    EXPECT_EQ(dispatch::handlerAddr(ip_base, 3, true, false),
              base + (1u << dispatch::iafullShift));
    EXPECT_EQ(dispatch::handlerAddr(ip_base, 3, true, true),
              base + (1u << dispatch::iafullShift) +
                  (1u << dispatch::oafullShift));
}
