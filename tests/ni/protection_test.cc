#include "ni_fixture.hh"

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

NiConfig
cfg()
{
    NiConfig c;
    c.features = Features::optimized();
    return c;
}

} // namespace

class NiProtection : public NiPairTest
{
  protected:
    void
    SetUp() override
    {
        build(cfg());
    }

    void
    setPin(ni::NetworkInterface &ni, uint8_t pin, bool check)
    {
        Word ctl = ni.readReg(regControl);
        ctl = static_cast<Word>(insertBits(ctl, control::pinShift + 7,
                                           control::pinShift, pin));
        if (check)
            ctl |= 1u << control::checkPinBit;
        else
            ctl &= ~(1u << control::checkPinBit);
        ni.writeReg(regControl, ctl);
    }
};

TEST_F(NiProtection, MatchingPinDeliversNormally)
{
    setPin(*ni0, 7, false);
    setPin(*ni1, 7, true);
    send(*ni0, 1, 2);
    drain();
    EXPECT_TRUE(ni1->msgValid());
    EXPECT_FALSE(ni1->hasPrivileged());
    EXPECT_EQ(ni1->pendingException(), ExcCode::none);
}

TEST_F(NiProtection, MismatchedPinGoesToPrivilegedState)
{
    setPin(*ni0, 3, false);     // sender runs process 3
    setPin(*ni1, 7, true);      // receiver runs process 7
    send(*ni0, 1, 2, 0xaa);
    drain();

    // Not visible to the user-level interface...
    EXPECT_FALSE(ni1->msgValid());
    EXPECT_EQ(ni1->inputQueueLen(), 0u);
    // ...but held for the operating system.
    EXPECT_TRUE(ni1->hasPrivileged());
    EXPECT_EQ(ni1->pendingException(), ExcCode::pinMismatch);

    Message m = ni1->popPrivileged();
    EXPECT_EQ(m.pin, 3);
    EXPECT_EQ(m.words[1], 0xaau);
    EXPECT_FALSE(ni1->hasPrivileged());
}

TEST_F(NiProtection, PinCheckingOffAcceptsAnyPin)
{
    setPin(*ni0, 3, false);
    setPin(*ni1, 7, false);     // checking disabled
    send(*ni0, 1, 2);
    drain();
    EXPECT_TRUE(ni1->msgValid());
    EXPECT_FALSE(ni1->hasPrivileged());
}

TEST_F(NiProtection, PrivilegedMessageAlwaysEscrowed)
{
    // Privileged (OS-destined) messages bypass the user interface even
    // with PIN checking off.
    Message m;
    m.words[0] = globalWord(1, 0);
    m.type = 2;
    m.privileged = true;
    m.setDestFromWord0();
    net->offer(0, m);
    drain();

    EXPECT_FALSE(ni1->msgValid());
    EXPECT_TRUE(ni1->hasPrivileged());
    EXPECT_EQ(ni1->pendingException(), ExcCode::privilegedPending);
}

TEST_F(NiProtection, MessagesCarrySenderPin)
{
    setPin(*ni0, 9, false);
    send(*ni0, 1, 2);
    drain();
    // Receiver checking is off; inspect via the exposed counters and a
    // second, mismatching receiver.
    setPin(*ni1, 5, true);
    send(*ni0, 1, 2);
    drain();
    EXPECT_TRUE(ni1->hasPrivileged());
    EXPECT_EQ(ni1->popPrivileged().pin, 9);
}

TEST_F(NiProtection, PrivilegedDoesNotBlockUserTraffic)
{
    setPin(*ni0, 3, false);
    setPin(*ni1, 3, true);
    // Interleave a privileged message with user messages.
    send(*ni0, 1, 2, 1);
    Message m;
    m.words[0] = globalWord(1, 0);
    m.privileged = true;
    m.setDestFromWord0();
    net->offer(0, m);
    send(*ni0, 1, 2, 2);
    drain();

    EXPECT_TRUE(ni1->msgValid());
    EXPECT_EQ(ni1->readReg(regI1), 1u);
    ni1->command(nextCmd());
    EXPECT_EQ(ni1->readReg(regI1), 2u);
    EXPECT_TRUE(ni1->hasPrivileged());
}

TEST_F(NiProtection, PopPrivilegedEmptyPanics)
{
    EXPECT_THROW(ni1->popPrivileged(), PanicError);
}
