#include <gtest/gtest.h>

#include "common/logging.hh"
#include "msg/kernels.hh"
#include "ni/ni_regs.hh"
#include "system/system.hh"

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

/**
 * A program that floods a dead node until its own output queue
 * overflows under the exception (non-stall) policy, then falls into
 * the poll loop; MsgIp must redirect it to the type-1 exception
 * handler (Section 2.2.4), which records STATUS, acknowledges, and
 * halts.
 */
const char *overflowProgram = R"(
    .org 0x4000
poll:
    jmp  msgip
    nop
    .align HANDLER_STRIDE
exc:
    add  r1, status, r0
    sti  r1, r0, 0x600         ; record STATUS at the exception
    add  status, r0, r0        ; acknowledge (write clears)
    add  r2, status, r0
    sti  r2, r0, 0x604         ; record STATUS after the ack
    halt
    .align HANDLER_STRIDE
    .space (HANDLER_STRIDE/4) * 14

entry:
    li   ipbase, 0x4000
    ; select the exception policy: clear the stall-on-full bit
    li   r3, 0xfffffffe
    and  control, control, r3
    li   o0, (1 << NODE_SHIFT)
    lis  r1, 64
flood:
    send 2
    addi r1, r1, -1
    bnez r1, flood
    nop
    br   poll
    nop
)";

} // namespace

TEST(ExceptionDispatch, OutputOverflowReachesType1Handler)
{
    sys::NodeConfig cfg;
    cfg.ni.placement = ni::Placement::registerFile;
    cfg.ni.outputQueueDepth = 4;
    cfg.ni.inputQueueDepth = 4;
    cfg.ni.outputThreshold = 4;     // == depth: never raises
    cfg.ni.inputThreshold = 4;
    sys::System machine("exc", 2, 1, cfg);

    // Node 1's CPU never starts: its input queue fills, the mesh backs
    // up, node 0's output queue overflows.
    isa::Program prog = msg::assembleKernel(overflowProgram);
    machine.node(0).boot(prog, prog.addrOf("entry"));

    machine.run(100000);
    ASSERT_TRUE(machine.node(0).cpu().halted());

    Word at_exc = machine.node(0).mem().read(0x600);
    Word after_ack = machine.node(0).mem().read(0x604);

    // The recorded STATUS shows a pending output-overflow exception.
    EXPECT_EQ(bits(at_exc, status::excPendingBit), 1u);
    EXPECT_EQ(bits(at_exc, status::excCodeShift + 3,
                   status::excCodeShift),
              static_cast<Word>(ExcCode::outputOverflow));
    // The acknowledgment cleared it.
    EXPECT_EQ(bits(after_ack, status::excPendingBit), 0u);

    // Messages were genuinely dropped (overflow), not stalled.
    EXPECT_GT(machine.node(0).ni().numSent(), 0u);
    EXPECT_LT(machine.node(0).ni().numSent(), 64u);
    EXPECT_EQ(machine.node(0).cpu().niStallCycles(), 0u);
}

TEST(ExceptionDispatch, StallPolicyNeverRaises)
{
    // Same flood under the stall policy: no exception, every message
    // eventually... stays queued (nothing drains node 1), so the CPU
    // wedges in the stalled SEND -- exactly the behavior the paper
    // warns about ("stalling the processor should not be done if the
    // processor needs to participate in emptying the network").
    sys::NodeConfig cfg;
    cfg.ni.placement = ni::Placement::registerFile;
    cfg.ni.outputQueueDepth = 4;
    cfg.ni.inputQueueDepth = 4;
    cfg.ni.outputThreshold = 4;     // == depth: never raises
    cfg.ni.inputThreshold = 4;
    sys::System machine("stall", 2, 1, cfg);

    isa::Program prog = msg::assembleKernel(R"(
    entry:
        li   o0, (1 << NODE_SHIFT)
        lis  r1, 64
    flood:
        send 2
        addi r1, r1, -1
        bnez r1, flood
        nop
        halt
    )");
    machine.node(0).boot(prog, prog.addrOf("entry"));

    machine.run(5000);
    EXPECT_FALSE(machine.node(0).cpu().halted());
    EXPECT_GT(machine.node(0).cpu().niStallCycles(), 1000u);
    EXPECT_EQ(machine.node(0).ni().pendingException(), ExcCode::none);
}
