#include <gtest/gtest.h>

#include "isa/isa.hh"
#include "msg/kernels.hh"
#include "ni/model_registry.hh"

using namespace tcpni;
using namespace tcpni::isa;

TEST(Disassembler, EveryKernelInstructionRenders)
{
    // Every instruction word of every handler program must decode and
    // disassemble without panicking, and render non-trivially.
    for (const ni::Model &model : ni::paperModels()) {
        isa::Program p =
            msg::assembleKernel(msg::handlerProgram(model));
        unsigned rendered = 0;
        for (Word w : p.words) {
            if (w == 0)
                continue;   // .space padding
            Instruction inst = decode(w);
            std::string s = disassemble(inst);
            EXPECT_FALSE(s.empty());
            EXPECT_EQ(s.find("???"), std::string::npos) << s;
            ++rendered;
        }
        EXPECT_GT(rendered, 40u) << model.name();
    }
}

TEST(Disassembler, KnownForms)
{
    auto dis = [](const char *src) {
        isa::Program p = isa::assemble(src);
        return disassemble(decode(p.words.at(0)));
    };
    EXPECT_EQ(dis("add r1, r2, r3\n"), "add r1, r2, r3");
    EXPECT_EQ(dis("addi r1, r2, -5\n"), "addi r1, r2, -5");
    EXPECT_EQ(dis("ld o2, i0, r0\n"), "ld o2, i0, r0");
    EXPECT_EQ(dis("halt\n"), "halt");
    EXPECT_EQ(dis("jmp r4\n"), "jmp r4");
    EXPECT_EQ(dis("st i1, i0, r0 !next\n"), "st i1, i0, r0 !next");
    EXPECT_EQ(dis("add o2, i1, i2 !reply=7 !next\n"),
              "add o2, i1, i2 !reply=7 !next");
}

TEST(Disassembler, ReassemblyRoundTrip)
{
    // For the plain register and immediate forms, disassembler output
    // is valid assembler input producing the identical encoding.
    static const char *cases[] = {
        "add r1, r2, r3\n",
        "sub r4, r5, r6\n",
        "mul r7, r8, r9\n",
        "addi r1, r2, 100\n",
        "andi r1, r2, 255\n",
        "ldi r3, r4, 16\n",
        "sti r3, r4, 16\n",
        "slli r1, r2, 5\n",
        "ld o2, i0, r4 !reply=3 !next\n",
        "st r7, r8, r9 !send=5\n",
        "add r0, r0, r0 !forward=2\n",
        "halt\n",
    };
    for (const char *src : cases) {
        Word w1 = isa::assemble(src).words.at(0);
        std::string round = disassemble(decode(w1)) + "\n";
        Word w2 = isa::assemble(round).words.at(0);
        EXPECT_EQ(w1, w2) << src << " -> " << round;
    }
}
