#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"

using namespace tcpni;
using namespace tcpni::isa;

namespace
{

Instruction
instAt(const Program &p, size_t idx)
{
    return decode(p.words.at(idx));
}

} // namespace

TEST(Assembler, SimpleInstruction)
{
    Program p = assemble("add r1, r2, r3\n");
    ASSERT_EQ(p.words.size(), 1u);
    Instruction i = instAt(p, 0);
    EXPECT_EQ(i.op, Opcode::add);
    EXPECT_EQ(i.rd, 1);
    EXPECT_EQ(i.rs1, 2);
    EXPECT_EQ(i.rs2, 3);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = assemble(R"(
        ; a comment
        // another comment
        add r1, r2, r3   ; trailing comment

        sub r4, r5, r6   // trailing too
    )");
    ASSERT_EQ(p.words.size(), 2u);
    EXPECT_EQ(instAt(p, 1).op, Opcode::sub);
}

TEST(Assembler, NiAliases)
{
    Program p = assemble("add o2, i1, i2\n");
    Instruction i = instAt(p, 0);
    EXPECT_EQ(i.rd, 18);
    EXPECT_EQ(i.rs1, 22);
    EXPECT_EQ(i.rs2, 23);
}

TEST(Assembler, NiClauses)
{
    Program p = assemble("add o1, i1, i2 !send=5 !next\n");
    Instruction i = instAt(p, 0);
    EXPECT_EQ(i.ni.mode, SendMode::send);
    EXPECT_EQ(i.ni.type, 5);
    EXPECT_TRUE(i.ni.next);
}

TEST(Assembler, ReplyForwardClauses)
{
    Program p = assemble(
        "ld o2, i0, r0 !reply=7\n"
        "st r1, r2, r3 !forward=3 !next\n");
    EXPECT_EQ(instAt(p, 0).ni.mode, SendMode::reply);
    EXPECT_EQ(instAt(p, 0).ni.type, 7);
    EXPECT_EQ(instAt(p, 1).ni.mode, SendMode::forward);
    EXPECT_TRUE(instAt(p, 1).ni.next);
}

TEST(Assembler, ClauseOnImmediateFormFails)
{
    EXPECT_THROW(assemble("addi r1, r2, 4 !next\n"), SimError);
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = assemble(R"(
        start:
            addi r1, r0, 10
        loop:
            addi r1, r1, -1
            bnez r1, loop
            nop
            halt
    )");
    EXPECT_EQ(p.addrOf("start"), 0u);
    EXPECT_EQ(p.addrOf("loop"), 4u);
    // bnez at address 8: offset = (4 - 12) / 4 = -2
    Instruction b = instAt(p, 2);
    EXPECT_EQ(b.op, Opcode::bnez);
    EXPECT_EQ(b.imm, -2);
}

TEST(Assembler, ForwardReferences)
{
    Program p = assemble(R"(
            br done
            nop
            nop
        done:
            halt
    )");
    Instruction b = instAt(p, 0);
    EXPECT_EQ(b.op, Opcode::br);
    EXPECT_EQ(b.imm, 2);    // target 12, pc+4 = 4, (12-4)/4 = 2
}

TEST(Assembler, OrgSetsBase)
{
    Program p = assemble(R"(
        .org 0x1000
        entry:
            nop
    )");
    EXPECT_EQ(p.base, 0x1000u);
    EXPECT_EQ(p.addrOf("entry"), 0x1000u);
}

TEST(Assembler, EquAndExpressions)
{
    Program p = assemble(R"(
        .equ BASE, 0x100
        .equ OFF, (1<<4) | 3
        ldi r1, r2, BASE + OFF
    )");
    EXPECT_EQ(instAt(p, 0).imm, 0x113);
}

TEST(Assembler, ExpressionPrecedence)
{
    Program p = assemble(".word 2 + 3 * 4\n"
                         ".word (2 + 3) * 4\n"
                         ".word 1 << 4 | 1 << 2\n"
                         ".word 0xff & 0x0f\n"
                         ".word ~0 & 0xffff\n"
                         ".word 10 % 3\n"
                         ".word 7 / 2\n");
    EXPECT_EQ(p.words[0], 14u);
    EXPECT_EQ(p.words[1], 20u);
    EXPECT_EQ(p.words[2], 20u);
    EXPECT_EQ(p.words[3], 0xfu);
    EXPECT_EQ(p.words[4], 0xffffu);
    EXPECT_EQ(p.words[5], 1u);
    EXPECT_EQ(p.words[6], 3u);
}

TEST(Assembler, NumberBases)
{
    Program p = assemble(".word 0x10\n.word 0b101\n.word 1_000\n");
    EXPECT_EQ(p.words[0], 16u);
    EXPECT_EQ(p.words[1], 5u);
    EXPECT_EQ(p.words[2], 1000u);
}

TEST(Assembler, Hi16Lo16)
{
    Program p = assemble(".equ V, 0x12345678\n"
                         ".word hi16(V)\n"
                         ".word lo16(V)\n");
    EXPECT_EQ(p.words[0], 0x1234u);
    EXPECT_EQ(p.words[1], 0x5678u);
}

TEST(Assembler, LiExpandsToTwoWords)
{
    Program p = assemble("li r5, 0x12345678\nhalt\n");
    ASSERT_EQ(p.words.size(), 3u);
    Instruction hi = instAt(p, 0);
    Instruction lo = instAt(p, 1);
    EXPECT_EQ(hi.op, Opcode::lui);
    EXPECT_EQ(hi.imm, 0x1234);
    EXPECT_EQ(lo.op, Opcode::ori);
    EXPECT_EQ(lo.imm, 0x5678);
    EXPECT_EQ(lo.rd, 5);
    EXPECT_EQ(lo.rs1, 5);
}

TEST(Assembler, LiSizingWithForwardLabel)
{
    // li before a label must still give the label the right address.
    Program p = assemble(R"(
            li r1, target
            br target
            nop
        target:
            halt
    )");
    EXPECT_EQ(p.addrOf("target"), 16u);
}

TEST(Assembler, Pseudos)
{
    Program p = assemble(R"(
        nop
        mov r3, r4
        lis r5, -7
        send 5
        reply 3
        forward 2
        next
        ret
    )");
    EXPECT_EQ(instAt(p, 0).op, Opcode::add);
    EXPECT_EQ(instAt(p, 1).rs1, 4);
    EXPECT_EQ(instAt(p, 2).imm, -7);
    EXPECT_EQ(instAt(p, 3).ni.mode, SendMode::send);
    EXPECT_EQ(instAt(p, 3).ni.type, 5);
    EXPECT_EQ(instAt(p, 4).ni.mode, SendMode::reply);
    EXPECT_EQ(instAt(p, 5).ni.mode, SendMode::forward);
    EXPECT_TRUE(instAt(p, 6).ni.next);
    EXPECT_EQ(instAt(p, 7).op, Opcode::jmp);
    EXPECT_EQ(instAt(p, 7).rs1, 31);
}

TEST(Assembler, SendWithNextClause)
{
    Program p = assemble("send 5 !next\n");
    Instruction i = instAt(p, 0);
    EXPECT_EQ(i.ni.mode, SendMode::send);
    EXPECT_TRUE(i.ni.next);
}

TEST(Assembler, CallAndJmpl)
{
    Program p = assemble(R"(
            call f
            nop
            halt
        f:
            jmpl r9, r4
    )");
    Instruction c = instAt(p, 0);
    EXPECT_EQ(c.op, Opcode::br);
    EXPECT_EQ(c.rd, 31);
    Instruction j = instAt(p, 3);
    EXPECT_EQ(j.op, Opcode::jmp);
    EXPECT_EQ(j.rd, 9);
    EXPECT_EQ(j.rs1, 4);
}

TEST(Assembler, Regions)
{
    Program p = assemble(R"(
        .region sending
            nop
            nop
        .region processing
            nop
        .region sending
            nop
    )");
    ASSERT_EQ(p.words.size(), 4u);
    uint16_t s = p.regionId("sending");
    uint16_t pr = p.regionId("processing");
    EXPECT_EQ(p.regionOf[0], s);
    EXPECT_EQ(p.regionOf[1], s);
    EXPECT_EQ(p.regionOf[2], pr);
    EXPECT_EQ(p.regionOf[3], s);
}

TEST(Assembler, SpaceAndAlign)
{
    Program p = assemble(R"(
            nop
            .space 3
            .align 16
        here:
            nop
    )");
    EXPECT_EQ(p.addrOf("here"), 16u);
    EXPECT_EQ(p.words.size(), 5u);
}

TEST(Assembler, WordDirective)
{
    Program p = assemble("data: .word 0xcafebabe\n");
    EXPECT_EQ(p.words[0], 0xcafebabeu);
}

TEST(Assembler, PredefinedSymbols)
{
    std::map<std::string, uint64_t> pre{{"MAGIC", 0x42}};
    Program p = assemble(".word MAGIC\n", pre);
    EXPECT_EQ(p.words[0], 0x42u);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("frobnicate r1\n"), SimError);
    EXPECT_THROW(assemble("add r1, r2\n"), SimError);        // missing op
    EXPECT_THROW(assemble("add r1, r2, r99\n"), SimError);   // bad reg
    EXPECT_THROW(assemble("br nowhere\n"), SimError);        // undef label
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), SimError);    // redefined
    EXPECT_THROW(assemble(".word 1 +\n"), SimError);         // bad expr
    EXPECT_THROW(assemble("addi r1, r0, 99999\n"), SimError);    // range
    EXPECT_THROW(assemble("add r1, r2, r3 !send=16\n"), SimError);
    EXPECT_THROW(assemble("add r1, r2, r3 !bogus\n"), SimError);
}

TEST(Assembler, CurrentAddressSymbol)
{
    Program p = assemble(R"(
        .org 0x100
        nop
        .word .
    )");
    EXPECT_EQ(p.words[1], 0x104u);
}

TEST(Assembler, UnknownRegionFails)
{
    Program p = assemble("nop\n");
    EXPECT_THROW(p.regionId("nope"), SimError);
}

TEST(Assembler, AddrOfUndefinedFails)
{
    Program p = assemble("nop\n");
    EXPECT_THROW(p.addrOf("missing"), SimError);
}

// ---------------------------------------------------------------------
// assembleAll: every error in one pass, each tied to its source line.
// ---------------------------------------------------------------------

TEST(AssembleAll, CleanSourceHasNoErrors)
{
    AsmResult res = assembleAll("start:\n    nop\n    halt\n");
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.program.words.size(), 2u);
}

TEST(AssembleAll, CollectsEveryErrorWithLineNumbers)
{
    AsmResult res = assembleAll(
        "    frobnicate r1\n"        // line 1: unknown mnemonic
        "    nop\n"
        "    add r1, r2, r99\n"      // line 3: bad register
        "    nop\n"
        "    br nowhere\n"           // line 5: undefined symbol
        "    nop\n");
    ASSERT_EQ(res.errors.size(), 3u);
    EXPECT_EQ(res.errors[0].line, 1u);
    EXPECT_EQ(res.errors[1].line, 3u);
    EXPECT_EQ(res.errors[2].line, 5u);
}

TEST(AssembleAll, OutOfRangeImmediate)
{
    AsmResult res = assembleAll("    addi r1, r0, 99999\n");
    ASSERT_EQ(res.errors.size(), 1u);
    EXPECT_EQ(res.errors[0].line, 1u);
}

TEST(AssembleAll, BadAlignDirective)
{
    AsmResult res = assembleAll("    .align 3\n    nop\n");
    ASSERT_EQ(res.errors.size(), 1u);
    EXPECT_NE(res.errors[0].message.find(".align"), std::string::npos);
}

TEST(AssembleAll, RedefinedLabel)
{
    AsmResult res = assembleAll("x:\n    nop\nx:\n    nop\n");
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.errors[0].message.find("x"), std::string::npos);
}

TEST(AssembleAll, ErrorsDoNotStopTheScan)
{
    // An early error must not hide a late one.
    AsmResult res = assembleAll(
        "    add r1, r2\n"                   // line 1: missing operand
        "    add r1, r2, r3 !bogus\n"        // line 2: bad NI suffix
        "    .word 1 +\n");                  // line 3: bad expression
    EXPECT_EQ(res.errors.size(), 3u);
}
