#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/isa.hh"

using namespace tcpni;
using namespace tcpni::isa;

TEST(Encoding, TriadicRoundTrip)
{
    Instruction in;
    in.op = Opcode::add;
    in.rd = 3;
    in.rs1 = 17;
    in.rs2 = 31;
    Instruction out = decode(encode(in));
    EXPECT_EQ(in, out);
}

TEST(Encoding, TriadicWithNiCommands)
{
    Instruction in;
    in.op = Opcode::ld;
    in.rd = 18;     // o2
    in.rs1 = 21;    // i0
    in.rs2 = 0;
    in.ni.mode = SendMode::reply;
    in.ni.type = 7;
    in.ni.next = true;
    Instruction out = decode(encode(in));
    EXPECT_EQ(in, out);
    EXPECT_EQ(out.ni.mode, SendMode::reply);
    EXPECT_EQ(out.ni.type, 7);
    EXPECT_TRUE(out.ni.next);
}

TEST(Encoding, ImmediateSignedRoundTrip)
{
    for (int32_t imm : {0, 1, -1, 32767, -32768, 1234, -999}) {
        Instruction in;
        in.op = Opcode::addi;
        in.rd = 1;
        in.rs1 = 2;
        in.imm = imm;
        Instruction out = decode(encode(in));
        EXPECT_EQ(out.imm, imm) << "imm=" << imm;
    }
}

TEST(Encoding, ImmediateUnsignedRoundTrip)
{
    for (int32_t imm : {0, 1, 0xffff, 0x8000}) {
        Instruction in;
        in.op = Opcode::ori;
        in.rd = 1;
        in.rs1 = 2;
        in.imm = imm;
        Instruction out = decode(encode(in));
        EXPECT_EQ(out.imm, imm) << "imm=" << imm;
    }
}

TEST(Encoding, SignedImmediateOutOfRangePanics)
{
    Instruction in;
    in.op = Opcode::addi;
    in.imm = 40000;
    EXPECT_THROW(encode(in), PanicError);
    in.imm = -40000;
    EXPECT_THROW(encode(in), PanicError);
}

TEST(Encoding, UnsignedImmediateOutOfRangePanics)
{
    Instruction in;
    in.op = Opcode::ori;
    in.imm = 0x10000;
    EXPECT_THROW(encode(in), PanicError);
}

TEST(Encoding, NiCommandsOnImmediateFormPanics)
{
    Instruction in;
    in.op = Opcode::addi;
    in.ni.next = true;
    EXPECT_THROW(encode(in), PanicError);
}

TEST(Encoding, UnknownOpcodePanics)
{
    // Opcode 40 is unassigned.
    Word w = 40u << 26;
    EXPECT_THROW(decode(w), PanicError);
}

TEST(Encoding, RegNames)
{
    EXPECT_EQ(regName(0), "r0");
    EXPECT_EQ(regName(15), "r15");
    EXPECT_EQ(regName(16), "o0");
    EXPECT_EQ(regName(21), "i0");
    EXPECT_EQ(regName(26), "status");
    EXPECT_EQ(regName(30), "ipbase");
    EXPECT_EQ(regName(31), "r31");
}

TEST(Encoding, ParseRegNames)
{
    EXPECT_EQ(parseRegName("r7").value(), 7u);
    EXPECT_EQ(parseRegName("r31").value(), 31u);
    EXPECT_EQ(parseRegName("o0").value(), 16u);
    EXPECT_EQ(parseRegName("i4").value(), 25u);
    EXPECT_EQ(parseRegName("msgip").value(), 28u);
    EXPECT_FALSE(parseRegName("r32").has_value());
    EXPECT_FALSE(parseRegName("x5").has_value());
    EXPECT_FALSE(parseRegName("").has_value());
}

TEST(Encoding, DisassembleShowsNiClauses)
{
    Instruction in;
    in.op = Opcode::add;
    in.rd = 17;
    in.rs1 = 22;
    in.rs2 = 23;
    in.ni.mode = SendMode::send;
    in.ni.type = 5;
    in.ni.next = true;
    std::string s = disassemble(in);
    EXPECT_NE(s.find("add o1, i1, i2"), std::string::npos) << s;
    EXPECT_NE(s.find("!send=5"), std::string::npos) << s;
    EXPECT_NE(s.find("!next"), std::string::npos) << s;
}

// Exhaustive-ish round-trip property across all opcodes.
class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(OpcodeRoundTrip, EncodeDecode)
{
    Opcode op = GetParam();
    Instruction in;
    in.op = op;
    in.rd = writesRd(op) || readsRdAsSource(op) ? 5 : 0;
    in.rs1 = readsRs1(op) ? 6 : 0;
    if (isTriadic(op)) {
        in.rs2 = readsRs2(op) ? 7 : 0;
        in.ni.mode = SendMode::forward;
        in.ni.type = 9;
        in.ni.next = true;
    } else {
        in.imm = immIsSigned(op) ? -5 : 5;
    }
    Instruction out = decode(encode(in));
    EXPECT_EQ(in, out) << opcodeName(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Values(Opcode::add, Opcode::sub, Opcode::and_, Opcode::or_,
                      Opcode::xor_, Opcode::sll, Opcode::srl, Opcode::sra,
                      Opcode::slt, Opcode::sltu, Opcode::mul, Opcode::ld,
                      Opcode::st, Opcode::jmp, Opcode::addi, Opcode::andi,
                      Opcode::ori, Opcode::xori, Opcode::lui, Opcode::ldi,
                      Opcode::sti, Opcode::slli, Opcode::srli,
                      Opcode::beqz, Opcode::bnez, Opcode::bltz,
                      Opcode::bgez, Opcode::br, Opcode::halt),
    [](const ::testing::TestParamInfo<Opcode> &info) {
        std::string n = opcodeName(info.param);
        if (!n.empty() && n.back() == '_')
            n.pop_back();
        return n;
    });
