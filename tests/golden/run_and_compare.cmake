# Run a bench binary that writes a JSON result file, then compare the
# file byte-for-byte against the checked-in golden.
#
# Usage:
#   cmake -DBIN=<binary> -DARGS=<;-separated args> -DOUT=<produced file>
#         -DGOLDEN=<reference file> -P run_and_compare.cmake
#
# Regenerating goldens (after an intentional change to the measured
# numbers or the JSON schema):
#   build/bench/table1 --json tests/golden/table1.json
#   build/bench/figure12 --n 8 --particles 2 --json tests/golden/figure12.json

separate_arguments(ARGS)

execute_process(COMMAND ${BIN} ${ARGS}
                RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BIN} exited with status ${rc}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${OUT} ${GOLDEN}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    file(READ ${OUT} produced)
    file(READ ${GOLDEN} expected)
    message(FATAL_ERROR
        "golden mismatch: ${OUT} differs from ${GOLDEN}\n"
        "--- produced ---\n${produced}\n"
        "--- expected ---\n${expected}\n"
        "If the change is intentional, regenerate the golden "
        "(see tests/golden/run_and_compare.cmake).")
endif()
