#include <gtest/gtest.h>

#include "noc/message.hh"

using namespace tcpni;

TEST(MessageFormat, GlobalWordComposition)
{
    Word g = globalWord(3, 0x1234);
    EXPECT_EQ(nodeOf(g), 3u);
    EXPECT_EQ(localOf(g), 0x1234u);
}

TEST(MessageFormat, GlobalWordMasksLocal)
{
    // Local part wider than 24 bits is truncated, never corrupting the
    // node field.
    Word g = globalWord(1, 0xff123456);
    EXPECT_EQ(nodeOf(g), 1u);
    EXPECT_EQ(localOf(g), 0x123456u);
}

TEST(MessageFormat, MaxNode)
{
    Word g = globalWord(255, 0);
    EXPECT_EQ(nodeOf(g), 255u);
}

TEST(MessageFormat, DestFromWord0)
{
    Message m;
    m.words[0] = globalWord(7, 0x100);
    m.setDestFromWord0();
    EXPECT_EQ(m.dest(), 7u);
}

TEST(MessageFormat, LengthWithExtra)
{
    Message m;
    EXPECT_EQ(m.length(), 5u);
    m.extra = {1, 2, 3};
    EXPECT_EQ(m.length(), 8u);
}

TEST(MessageFormat, ToStringContainsFields)
{
    Message m;
    m.type = 9;
    m.words[0] = globalWord(2, 0);
    m.setDestFromWord0();
    std::string s = m.toString();
    EXPECT_NE(s.find("type=9"), std::string::npos);
    EXPECT_NE(s.find("dst=2"), std::string::npos);
}
