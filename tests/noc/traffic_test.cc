#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hh"
#include "noc/mesh.hh"

using namespace tcpni;

namespace
{

struct TrafficSink
{
    std::vector<Message> got;
    Random *rng = nullptr;
    double refuse_p = 0;

    MessageSink
    sink()
    {
        return [this](const Message &m) {
            if (rng && rng->chance(refuse_p))
                return false;
            got.push_back(m);
            return true;
        };
    }
};

} // namespace

class RandomTraffic : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomTraffic, EveryMessageDeliveredOnceInPairOrder)
{
    // Random sources/destinations on a 4x4 mesh with flaky sinks that
    // refuse 30% of deliveries: nothing may be lost or duplicated, and
    // per source-destination order must hold.
    Random rng(GetParam());
    const unsigned w = 4, h = 4, n = w * h;
    const unsigned total = 400;

    EventQueue eq;
    MeshNetwork mesh("mesh", eq, w, h, 4);
    std::vector<TrafficSink> sinks(n);
    for (NodeId i = 0; i < n; ++i) {
        sinks[i].rng = &rng;
        sinks[i].refuse_p = 0.3;
        mesh.setSink(i, sinks[i].sink());
    }

    // Per (src,dst) sequence numbers to check FIFO order.
    std::map<std::pair<NodeId, NodeId>, Word> seq;
    unsigned sent = 0;
    uint64_t guard = 0;
    while (sent < total) {
        NodeId s = rng.uniform(0, n - 1);
        NodeId d = rng.uniform(0, n - 1);
        Message m;
        m.words[0] = globalWord(d, 0);
        m.words[1] = seq[{s, d}];
        m.words[2] = s;
        m.setDestFromWord0();
        if (mesh.offer(s, m)) {
            ++seq[{s, d}];
            ++sent;
        }
        // Let the fabric make progress between injections.
        eq.run(eq.curTick() + rng.uniform(0, 3));
        ASSERT_LT(++guard, 1000000u);
    }
    eq.run();
    ASSERT_TRUE(mesh.idle());

    // Conservation: exactly `total` deliveries.
    unsigned delivered = 0;
    for (const TrafficSink &snk : sinks)
        delivered += static_cast<unsigned>(snk.got.size());
    EXPECT_EQ(delivered, total);

    // Per-pair FIFO: sequence numbers from one source arrive in order.
    for (NodeId d = 0; d < n; ++d) {
        std::map<NodeId, Word> next;
        for (const Message &m : sinks[d].got) {
            NodeId s = m.words[2];
            EXPECT_EQ(m.words[1], next[s])
                << "pair " << s << "->" << d;
            ++next[s];
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraffic,
                         ::testing::Values(11u, 22u, 33u, 44u));
