/**
 * @file
 * Randomized stress tests for the mesh fabric and its interaction
 * with the NI flow-control machinery: many-node message storms with
 * flaky sinks and tiny router buffers must lose nothing and preserve
 * per-source FIFO order; saturating real NIs across the mesh must
 * assert the iafull/oafull threshold bits in MsgIp (Section 2.2.4)
 * and, under the exception policy, raise output-overflow exactly as
 * Section 2.1.1 describes.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "ni/network_interface.hh"
#include "ni/ni_regs.hh"
#include "noc/mesh.hh"

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

struct StormSink
{
    std::vector<Message> got;
    Random *rng = nullptr;
    double refuse_p = 0;

    MessageSink
    sink()
    {
        return [this](const Message &m) {
            if (rng && rng->chance(refuse_p))
                return false;
            got.push_back(m);
            return true;
        };
    }
};

/**
 * Drive @p total messages through @p mesh in bursts, with hotspot
 * destinations, then assert conservation and per-pair FIFO order.
 */
void
runStorm(MeshNetwork &mesh, EventQueue &eq, Random &rng, unsigned n,
         unsigned total, std::vector<StormSink> &sinks,
         unsigned extra_words = 0)
{
    std::map<std::pair<NodeId, NodeId>, Word> seq;
    unsigned sent = 0;
    uint64_t guard = 0;
    while (sent < total) {
        // A burst of back-to-back injections from one source; half
        // the bursts aim at a hotspot corner to pile up contention.
        NodeId s = rng.uniform(0, n - 1);
        NodeId hot = rng.chance(0.5) ? 0 : rng.uniform(0, n - 1);
        unsigned burst = rng.uniform(1, 8);
        for (unsigned b = 0; b < burst && sent < total; ++b) {
            NodeId d = rng.chance(0.3) ? rng.uniform(0, n - 1) : hot;
            Message m;
            m.words[0] = globalWord(d, 0);
            m.words[1] = seq[{s, d}];
            m.words[2] = s;
            m.setDestFromWord0();
            for (unsigned w = 0; w < extra_words; ++w)
                m.extra.push_back(w);
            if (mesh.offer(s, m)) {
                ++seq[{s, d}];
                ++sent;
            } else {
                break;  // router inject queue full: back off
            }
        }
        eq.run(eq.curTick() + rng.uniform(0, 4));
        ASSERT_LT(++guard, 4000000u);
    }
    eq.run();
    ASSERT_TRUE(mesh.idle());

    unsigned delivered = 0;
    for (const StormSink &snk : sinks)
        delivered += static_cast<unsigned>(snk.got.size());
    EXPECT_EQ(delivered, total);
    EXPECT_EQ(mesh.injected(), total);

    for (NodeId d = 0; d < n; ++d) {
        std::map<NodeId, Word> next;
        for (const Message &m : sinks[d].got) {
            NodeId s = m.words[2];
            ASSERT_EQ(m.words[1], next[s]) << "pair " << s << "->" << d;
            ++next[s];
        }
    }
}

} // namespace

class MeshStorm : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MeshStorm, BurstyHotspotStormNoLossPerSourceFifo)
{
    // 6x6 mesh, router buffers of 2: deep backpressure trees form
    // behind the hotspot, and flaky sinks (40% refusal) keep ejection
    // retrying.  Conservation and per-pair FIFO must survive.
    Random rng(GetParam());
    const unsigned w = 6, h = 6, n = w * h;

    EventQueue eq;
    MeshNetwork mesh("storm", eq, w, h, /*buffer_depth=*/2);
    std::vector<StormSink> sinks(n);
    for (NodeId i = 0; i < n; ++i) {
        sinks[i].rng = &rng;
        sinks[i].refuse_p = 0.4;
        mesh.setSink(i, sinks[i].sink());
    }
    runStorm(mesh, eq, rng, n, 1500, sinks);
}

TEST_P(MeshStorm, SerializedLongMessageStormKeepsOrder)
{
    // Link serialization on (2 cycles/word) with 8-word payloads:
    // long messages hold links the way multi-flit wormhole packets
    // do, stretching contention windows.  Same invariants must hold.
    Random rng(GetParam() ^ 0x5eedULL);
    const unsigned w = 3, h = 3, n = w * h;

    EventQueue eq;
    MeshNetwork mesh("serstorm", eq, w, h, /*buffer_depth=*/2,
                     /*cycles_per_word=*/2);
    std::vector<StormSink> sinks(n);
    for (NodeId i = 0; i < n; ++i) {
        sinks[i].rng = &rng;
        sinks[i].refuse_p = 0.25;
        mesh.setSink(i, sinks[i].sink());
    }
    runStorm(mesh, eq, rng, n, 400, sinks, /*extra_words=*/3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshStorm,
                         ::testing::Values(7u, 77u, 777u, 7777u));

namespace
{

constexpr Word ipBase = 0x8000;

/** Compose and SEND one typed message carrying (seq, src). */
CmdResult
sendMsg(NetworkInterface &src, NodeId dst, uint8_t type, Word seq,
        Word from)
{
    src.writeReg(regO0, globalWord(dst, 0));
    src.writeReg(regO1, seq);
    src.writeReg(regO2, from);
    src.writeReg(regO3, 0);
    src.writeReg(regO4, 0);
    isa::NiCommand cmd;
    cmd.mode = isa::SendMode::send;
    cmd.type = type;
    return src.command(cmd);
}

bool
msgValid(NetworkInterface &ni)
{
    return bits(ni.readReg(regStatus), status::msgValidBit) != 0;
}

} // namespace

TEST(NiSaturation, FloodAssertsIafullVariantThenDrains)
{
    // Three NIs on a 2x2 mesh flood node 0, whose processor never
    // consumes: the receiver's input queue crosses its threshold and
    // MsgIp must select the iafull handler variant.  Draining below
    // the threshold must restore the plain handler, and every message
    // must come out -- in per-source FIFO order.
    EventQueue eq;
    MeshNetwork mesh("sat", eq, 2, 2, /*buffer_depth=*/2);

    NiConfig cfg;
    cfg.placement = Placement::registerFile;
    cfg.features = Features::optimized();
    cfg.inputQueueDepth = 8;
    cfg.inputThreshold = 4;
    std::vector<std::unique_ptr<NetworkInterface>> nis;
    for (NodeId i = 0; i < 4; ++i) {
        nis.push_back(std::make_unique<NetworkInterface>(
            "sat.ni" + std::to_string(i), eq, i, mesh, cfg));
    }
    nis[0]->writeReg(regIpBase, ipBase);

    // Flood: 12 messages per sender, retrying stalled SENDs as the
    // mesh backs up against the saturated receiver.
    const unsigned perSender = 12;
    std::vector<Word> seq(4, 0);
    uint64_t guard = 0;
    for (bool progress = true; progress;) {
        progress = false;
        for (NodeId s = 1; s <= 3; ++s) {
            if (seq[s] >= perSender)
                continue;
            if (sendMsg(*nis[s], 0, 7, seq[s], s) == CmdResult::ok)
                ++seq[s];
            progress = true;
        }
        eq.run(eq.curTick() + 2);
        ASSERT_LT(++guard, 100000u);
    }
    eq.run(eq.curTick() + 50);

    // The receiver is saturated well past its threshold.
    EXPECT_GT(nis[0]->inputQueueLen(), 4u);
    ASSERT_TRUE(msgValid(*nis[0]));
    EXPECT_EQ(nis[0]->readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, 7, /*iafull=*/true));

    // Drain everything via NEXT, recording per-source sequences.
    std::map<Word, Word> next;
    unsigned drained = 0;
    isa::NiCommand nextCmd;
    nextCmd.next = true;
    guard = 0;
    while (true) {
        if (!msgValid(*nis[0])) {
            if (eq.empty() && nis[0]->inputQueueLen() == 0)
                break;
            eq.run(eq.curTick() + 4);
            ASSERT_LT(++guard, 100000u);
            continue;
        }
        Word from = nis[0]->readReg(regI2);
        EXPECT_EQ(nis[0]->readReg(regI1), next[from])
            << "source " << from;
        ++next[from];
        ++drained;
        nis[0]->command(nextCmd);
    }
    EXPECT_EQ(drained, 3 * perSender);
    for (NodeId s = 1; s <= 3; ++s)
        EXPECT_EQ(nis[s]->numSent(), perSender);

    // Below threshold again: the plain poll handler is back.
    EXPECT_EQ(nis[0]->readReg(regMsgIp), dispatch::handlerAddr(ipBase, 0));
    EXPECT_TRUE(mesh.idle());
}

TEST(NiSaturation, BackpressureAssertsOafullThenOverflowException)
{
    // A sender behind a wedged receiver on a real mesh: its output
    // queue crosses the threshold (oafull in MsgIp), then -- under the
    // exception policy -- overflows, raising ExcCode::outputOverflow
    // in STATUS rather than stalling.
    EventQueue eq;
    MeshNetwork mesh("bp", eq, 2, 1, /*buffer_depth=*/2);

    NiConfig cfg;
    cfg.placement = Placement::registerFile;
    cfg.features = Features::optimized();
    cfg.outputQueueDepth = 4;
    cfg.outputThreshold = 2;
    cfg.inputQueueDepth = 2;
    NetworkInterface src("bp.ni0", eq, 0, mesh, cfg);
    NetworkInterface dst("bp.ni1", eq, 1, mesh, cfg);
    src.writeReg(regIpBase, ipBase);

    // Select the exception (non-stall) policy on the sender.
    Word ctl = src.readReg(regControl);
    ctl &= ~(1u << control::stallOnFullBit);
    src.writeReg(regControl, ctl);

    // Send until the output queue crosses its threshold.  The
    // receiver's queue and the mesh soak up the first few, so keep
    // injecting without running the queue once backpressure forms.
    Word n = 0;
    uint64_t guard = 0;
    while (src.outputQueueLen() <= cfg.outputThreshold) {
        ASSERT_EQ(sendMsg(src, 1, 7, n, 0), CmdResult::ok);
        ++n;
        if (src.outputQueueLen() <= cfg.outputThreshold)
            eq.run(eq.curTick() + 1);
        ASSERT_LT(++guard, 100000u);
    }
    EXPECT_EQ(src.readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, 0, false, /*oafull=*/true));
    EXPECT_EQ(bits(src.readReg(regStatus), status::oafullBit), 1u);
    EXPECT_EQ(src.pendingException(), ExcCode::none);

    // Push past the queue depth: the overflowing SENDs are dropped
    // and the exception is raised (not a stall).
    while (src.outputQueueLen() < cfg.outputQueueDepth) {
        ASSERT_EQ(sendMsg(src, 1, 7, n, 0), CmdResult::ok);
        ++n;
        ASSERT_LT(++guard, 100000u);
    }
    ASSERT_EQ(sendMsg(src, 1, 7, n, 0), CmdResult::ok);
    EXPECT_EQ(src.pendingException(), ExcCode::outputOverflow);
    Word st = src.readReg(regStatus);
    EXPECT_EQ(bits(st, status::excPendingBit), 1u);
    EXPECT_EQ(bits(st, status::excCodeShift + 3, status::excCodeShift),
              static_cast<Word>(ExcCode::outputOverflow));
    // The exception variant of the dispatch table is selected.
    EXPECT_EQ(src.readReg(regMsgIp),
              dispatch::handlerAddr(ipBase, dispatch::excType));
}
