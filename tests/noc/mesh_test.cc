#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/logging.hh"
#include "noc/mesh.hh"

using namespace tcpni;

namespace
{

Message
makeMsg(NodeId dst, Word tag = 0)
{
    Message m;
    m.words[0] = globalWord(dst, tag);
    m.words[1] = tag;
    m.setDestFromWord0();
    return m;
}

struct Collector
{
    std::vector<Message> got;
    bool accept = true;

    MessageSink
    sink()
    {
        return [this](const Message &m) {
            if (!accept)
                return false;
            got.push_back(m);
            return true;
        };
    }
};

} // namespace

TEST(MeshRouting, XYRoute)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 4, 4);
    using P = MeshNetwork::Port;
    // node 5 is at (1,1)
    EXPECT_EQ(mesh.route(5, 5), P::local);
    EXPECT_EQ(mesh.route(5, 6), P::east);
    EXPECT_EQ(mesh.route(5, 4), P::west);
    EXPECT_EQ(mesh.route(5, 1), P::north);
    EXPECT_EQ(mesh.route(5, 9), P::south);
    // X is corrected before Y: 5 -> 10 (2,2) goes east first.
    EXPECT_EQ(mesh.route(5, 10), P::east);
    EXPECT_EQ(mesh.route(5, 8), P::west);
}

TEST(MeshDelivery, SingleHop)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 2, 1);
    Collector c0, c1;
    mesh.setSink(0, c0.sink());
    mesh.setSink(1, c1.sink());

    EXPECT_TRUE(mesh.offer(0, makeMsg(1, 42)));
    eq.run();
    ASSERT_EQ(c1.got.size(), 1u);
    EXPECT_EQ(c1.got[0].words[1], 42u);
    EXPECT_TRUE(mesh.idle());
}

TEST(MeshDelivery, ToSelf)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 2, 2);
    Collector c;
    mesh.setSink(0, c.sink());
    mesh.setSink(1, [](const Message &) { return true; });
    mesh.setSink(2, [](const Message &) { return true; });
    mesh.setSink(3, [](const Message &) { return true; });
    mesh.offer(0, makeMsg(0, 9));
    eq.run();
    ASSERT_EQ(c.got.size(), 1u);
}

TEST(MeshDelivery, CornerToCorner)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 4, 4);
    std::vector<Collector> cs(16);
    for (NodeId n = 0; n < 16; ++n)
        mesh.setSink(n, cs[n].sink());

    mesh.offer(0, makeMsg(15, 1));
    eq.run();
    ASSERT_EQ(cs[15].got.size(), 1u);
    // 6 hops plus injection/ejection: latency is bounded and > hops.
    EXPECT_GE(eq.curTick(), 6u);
    EXPECT_LE(eq.curTick(), 16u);
}

TEST(MeshDelivery, AllPairs)
{
    EventQueue eq;
    const unsigned w = 3, h = 3, n = w * h;
    MeshNetwork mesh("mesh", eq, w, h);
    std::vector<Collector> cs(n);
    for (NodeId i = 0; i < n; ++i)
        mesh.setSink(i, cs[i].sink());

    unsigned sent = 0;
    for (NodeId s = 0; s < n; ++s) {
        for (NodeId d = 0; d < n; ++d) {
            ASSERT_TRUE(mesh.offer(s, makeMsg(d, s * 100 + d)));
            ++sent;
            eq.run();    // drain between offers: injection queue is
                         // finite
        }
    }
    unsigned got = 0;
    for (NodeId d = 0; d < n; ++d)
        got += cs[d].got.size();
    EXPECT_EQ(got, sent);
}

TEST(MeshOrdering, SameSrcDstPairInOrder)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 4, 1, 16);
    Collector c;
    for (NodeId i = 0; i < 4; ++i)
        mesh.setSink(i, i == 3 ? c.sink()
                               : MessageSink([](const Message &) {
                                     return true;
                                 }));
    for (Word k = 0; k < 10; ++k)
        ASSERT_TRUE(mesh.offer(0, makeMsg(3, k)));
    eq.run();
    ASSERT_EQ(c.got.size(), 10u);
    for (Word k = 0; k < 10; ++k)
        EXPECT_EQ(c.got[k].words[1], k);
}

TEST(MeshBackpressure, InjectionRefusedWhenFull)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 2, 1, 2);
    Collector c0, c1;
    c1.accept = false;      // destination refuses everything
    mesh.setSink(0, c0.sink());
    mesh.setSink(1, c1.sink());

    // Keep stuffing; with all buffers full the fabric must refuse.
    int accepted = 0;
    for (int k = 0; k < 20; ++k) {
        if (mesh.offer(0, makeMsg(1, static_cast<Word>(k))))
            ++accepted;
        eq.run(eq.curTick() + 5);
    }
    EXPECT_LT(accepted, 20);
    EXPECT_EQ(c1.got.size(), 0u);
    EXPECT_FALSE(mesh.idle());

    // Un-refuse and drain: nothing was lost.
    c1.accept = true;
    eq.run();
    EXPECT_EQ(static_cast<int>(c1.got.size()), accepted);
    EXPECT_TRUE(mesh.idle());
}

TEST(MeshBackpressure, ContentionResolvesFairly)
{
    // Two senders to the same destination; both streams arrive whole.
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 3, 1, 4);
    Collector c;
    mesh.setSink(0, [](const Message &) { return true; });
    mesh.setSink(2, [](const Message &) { return true; });
    mesh.setSink(1, c.sink());

    unsigned from0 = 0, from2 = 0;
    for (int round = 0; round < 12; ++round) {
        if (mesh.offer(0, makeMsg(1, 0x1000)))
            ++from0;
        if (mesh.offer(2, makeMsg(1, 0x2000)))
            ++from2;
        eq.run(eq.curTick() + 2);
    }
    eq.run();
    EXPECT_EQ(c.got.size(), from0 + from2);
}

TEST(MeshStats, LatencyRecorded)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 2, 1);
    mesh.setSink(0, [](const Message &) { return true; });
    mesh.setSink(1, [](const Message &) { return true; });
    mesh.offer(0, makeMsg(1));
    eq.run();
    EXPECT_EQ(mesh.latencyDist().count(), 1);
    EXPECT_GT(mesh.latencyDist().mean(), 0.0);
    EXPECT_EQ(mesh.injected(), 1u);
    EXPECT_EQ(mesh.delivered(), 1u);
}

TEST(MeshErrors, BadDestinationPanics)
{
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 2, 1);
    mesh.setSink(0, [](const Message &) { return true; });
    mesh.setSink(1, [](const Message &) { return true; });
    EXPECT_THROW(mesh.offer(0, makeMsg(5)), PanicError);
}

TEST(IdealNetwork, DeliversWithLatency)
{
    EventQueue eq;
    IdealNetwork net("net", eq, 2, 3);
    Collector c;
    net.setSink(0, [](const Message &) { return true; });
    net.setSink(1, c.sink());
    net.offer(0, makeMsg(1, 5));
    eq.run();
    EXPECT_EQ(eq.curTick(), 3u);
    ASSERT_EQ(c.got.size(), 1u);
}

TEST(IdealNetwork, RetriesRefusedDelivery)
{
    EventQueue eq;
    IdealNetwork net("net", eq, 2, 1);
    Collector c;
    c.accept = false;
    net.setSink(0, [](const Message &) { return true; });
    net.setSink(1, c.sink());
    net.offer(0, makeMsg(1));
    eq.run(10);
    EXPECT_TRUE(c.got.empty());
    EXPECT_FALSE(net.idle());
    c.accept = true;
    eq.run();
    EXPECT_EQ(c.got.size(), 1u);
    EXPECT_TRUE(net.idle());
}

TEST(MeshSerialization, LongMessagesHoldLinks)
{
    // With serialization enabled, two 5-word messages cross a link in
    // 5-cycle slots; a 20-word (scrolled) message holds it four times
    // as long.
    auto drain_time = [](size_t extra_words) -> Tick {
        EventQueue eq;
        MeshNetwork mesh("mesh", eq, 2, 1, 8, /*cycles_per_word=*/1);
        mesh.setSink(0, [](const Message &) { return true; });
        mesh.setSink(1, [](const Message &) { return true; });
        for (int k = 0; k < 4; ++k) {
            Message m = makeMsg(1);
            m.extra.assign(extra_words, 0);
            EXPECT_TRUE(mesh.offer(0, m)) << k;
        }
        eq.run();
        EXPECT_EQ(mesh.delivered(), 4u);
        return eq.curTick();
    };

    Tick short_time = drain_time(0);
    Tick long_time = drain_time(15);    // 20-word messages
    EXPECT_GT(long_time, short_time * 2);
}

TEST(MeshSerialization, DefaultIsMessageGranularity)
{
    // cycles_per_word = 0 (the default): back-to-back messages move
    // one hop per cycle regardless of length.
    EventQueue eq;
    MeshNetwork mesh("mesh", eq, 2, 1, 8);
    mesh.setSink(0, [](const Message &) { return true; });
    mesh.setSink(1, [](const Message &) { return true; });
    Message m = makeMsg(1);
    m.extra.assign(100, 0);
    mesh.offer(0, m);
    eq.run();
    EXPECT_LE(eq.curTick(), 5u);
}
