/**
 * @file
 * Unit tests for the metrics registry, group retirement, cross-
 * simulation aggregation, the periodic Sampler, and the determinism
 * contract: the Collector's JSON/CSV output must be byte-identical
 * whether the sweep tasks ran serially or on a 4-worker pool.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/sweep.hh"

namespace tcpni::metrics
{
namespace
{

/** A tiny fake component: registers a group, bumps counters from
 *  events, and retires its group on destruction like real SimObjects
 *  do. */
struct FakeNic
{
    FakeNic(const std::string &name, EventQueue &eq)
    {
        if (auto *r = registry()) {
            group = r->addGroup(name, eq);
            group->addCounter("sent", [this] { return sent; });
            group->addGauge("depth", [this] { return depth; });
            group->addHistogram("lat", &lat);
        }
    }

    ~FakeNic()
    {
        if (group)
            group->retire();
    }

    uint64_t sent = 0;
    uint64_t depth = 0;
    Histogram lat;
    std::shared_ptr<Group> group;
};

TEST(Metrics, NoRegistryMeansNoGroup)
{
    ASSERT_EQ(registry(), nullptr);
    EventQueue eq;
    FakeNic nic("ni0", eq);
    EXPECT_EQ(nic.group, nullptr);
}

TEST(Metrics, RetireSnapshotsFinalValues)
{
    Registry reg(0);
    setRegistry(&reg);
    {
        EventQueue eq;
        FakeNic nic("ni0", eq);
        nic.sent = 42;
        nic.depth = 7;
        nic.lat.record(100);
    }
    setRegistry(nullptr);
    // The component is gone; finalize must report the values captured
    // at retire time without touching any dead closure.
    TaskMetrics tm = reg.finalize("t");
    ASSERT_EQ(tm.groups.size(), 1u);
    EXPECT_EQ(tm.groups[0].name, "ni0");
    ASSERT_EQ(tm.groups[0].series.size(), 3u);
    EXPECT_EQ(tm.groups[0].series[0].name, "sent");
    EXPECT_EQ(tm.groups[0].series[0].value, 42u);
    EXPECT_EQ(tm.groups[0].series[1].value, 7u);
    EXPECT_EQ(tm.groups[0].series[2].hist.count(), 1u);
}

TEST(Metrics, GroupsMergeAcrossSimulations)
{
    // Two simulations in one task (two queues): same-named groups
    // merge -- counters sum, gauges keep last/peak, histograms fold.
    Registry reg(0);
    setRegistry(&reg);
    for (int sim = 0; sim < 2; ++sim) {
        EventQueue eq;
        FakeNic nic("ni0", eq);
        nic.sent = sim == 0 ? 10 : 32;
        nic.depth = sim == 0 ? 9 : 4;
        nic.lat.record(sim == 0 ? 50 : 500);
    }
    setRegistry(nullptr);
    TaskMetrics tm = reg.finalize("t");
    EXPECT_EQ(tm.sims, 2u);
    ASSERT_EQ(tm.groups.size(), 1u);
    const auto &s = tm.groups[0].series;
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].value, 42u);      // counter: 10 + 32
    EXPECT_EQ(s[1].value, 4u);       // gauge: last simulation's value
    EXPECT_EQ(s[1].peak, 9u);        // gauge: peak across both
    EXPECT_EQ(s[2].hist.count(), 2u);
    EXPECT_EQ(s[2].hist.min(), 50u);
    EXPECT_EQ(s[2].hist.max(), 500u);
}

TEST(Metrics, SamplerRecordsTimeSeries)
{
    Registry reg(100);  // sample every 100 ticks
    setRegistry(&reg);
    {
        EventQueue eq;
        FakeNic nic("ni0", eq);
        // Ramp the counter over 350 ticks; depth spikes across the
        // tick-200 sample boundary so only sampling can observe the
        // peak (it is back down before the run ends).
        std::vector<std::unique_ptr<LambdaEvent>> events;
        for (Tick t = 1; t <= 350; ++t) {
            events.push_back(std::make_unique<LambdaEvent>([&nic, t] {
                ++nic.sent;
                nic.depth = t >= 150 && t < 250 ? 99 : 1;
            }));
            eq.schedule(events.back().get(), t);
        }
        eq.run();
        nic.depth = 0;
    }
    setRegistry(nullptr);
    TaskMetrics tm = reg.finalize("t");

    // The automatic "eventq" group plus the component's group.
    ASSERT_EQ(tm.groups.size(), 2u);
    EXPECT_EQ(tm.groups[0].name, "eventq");
    EXPECT_EQ(tm.groups[1].name, "ni0");
    // The gauge peak was caught by the tick-150 neighborhood sample
    // (the sampler fires at statsPri after the functional events).
    const auto &depth = tm.groups[1].series[1];
    EXPECT_EQ(depth.name, "depth");
    EXPECT_EQ(depth.value, 0u);
    EXPECT_EQ(depth.peak, 99u);

    // Samples landed on exact interval boundaries with monotone
    // counter values.
    ASSERT_FALSE(tm.rows.empty());
    uint32_t sent_id = UINT32_MAX;
    for (uint32_t i = 0; i < tm.seriesNames.size(); ++i) {
        if (tm.seriesNames[i] == "ni0.sent")
            sent_id = i;
    }
    ASSERT_NE(sent_id, UINT32_MAX);
    uint64_t prev = 0;
    unsigned seen = 0;
    for (const SampleRow &row : tm.rows) {
        EXPECT_EQ(row.tick % 100, 0u);
        if (row.series == sent_id) {
            EXPECT_GE(row.value, prev);
            // One functional event per tick has fired by the sample.
            EXPECT_EQ(row.value, std::min<uint64_t>(row.tick, 350));
            prev = row.value;
            ++seen;
        }
    }
    EXPECT_GE(seen, 3u);
    EXPECT_EQ(tm.droppedRows, 0u);
}

TEST(Metrics, InertTaskScopeInstallsNothing)
{
    ASSERT_EQ(registry(), nullptr);
    {
        TaskScope scope(nullptr, 0, "off");
        EXPECT_EQ(registry(), nullptr);
    }
    EXPECT_EQ(registry(), nullptr);
}

TEST(Metrics, TaskScopeInstallsAndRestoresRegistry)
{
    Collector collector(0);
    ASSERT_EQ(registry(), nullptr);
    {
        TaskScope scope = collector.task(0, "a");
        EXPECT_NE(registry(), nullptr);
    }
    EXPECT_EQ(registry(), nullptr);
}

/** One synthetic sweep task: its own queue, component, and a
 *  deterministic event pattern derived from the slot index. */
void
sweepTask(Collector &collector, size_t slot)
{
    TaskScope scope =
        collector.task(slot, "task" + std::to_string(slot));
    EventQueue eq;
    FakeNic nic("ni0", eq);
    std::vector<std::unique_ptr<LambdaEvent>> events;
    const Tick span = 200 + 40 * static_cast<Tick>(slot);
    for (Tick t = 1; t <= span; t += 3) {
        events.push_back(std::make_unique<LambdaEvent>([&nic, t, slot] {
            ++nic.sent;
            nic.depth = (t + slot) % 17;
            nic.lat.record(t * (slot + 1));
        }));
        eq.schedule(events.back().get(), t);
    }
    eq.run();
}

std::string
runSweep(unsigned jobs, const std::function<std::string(
                            const Collector &)> &render)
{
    Collector collector(64);
    SweepRunner sweep(jobs);
    sweep.run(6, [&](size_t slot) { sweepTask(collector, slot); });
    return render(collector);
}

TEST(Metrics, OutputByteIdenticalSerialVsParallel)
{
    auto json = [](const Collector &c) {
        std::ostringstream os;
        c.writeJson(os);
        return os.str();
    };
    auto csv = [](const Collector &c) {
        std::ostringstream os;
        c.writeCsv(os);
        return os.str();
    };
    std::string json1 = runSweep(1, json);
    std::string json4 = runSweep(4, json);
    EXPECT_EQ(json1, json4);
    EXPECT_FALSE(json1.empty());
    EXPECT_NE(json1.find("\"schema\":\"tcpni-metrics-1\""),
              std::string::npos);
    EXPECT_NE(json1.find("\"label\":\"task5\""), std::string::npos);

    std::string csv1 = runSweep(1, csv);
    std::string csv4 = runSweep(4, csv);
    EXPECT_EQ(csv1, csv4);
    EXPECT_EQ(csv1.substr(0, csv1.find('\n')),
              "label,sim,tick,metric,value");
    EXPECT_NE(csv1.find("task3,0,"), std::string::npos);
}

} // namespace
} // namespace tcpni::metrics
