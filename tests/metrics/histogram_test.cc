/**
 * @file
 * Unit tests for the log-bucketed latency histogram: bucket-boundary
 * math, exact small-N percentiles against a sorted-vector oracle,
 * bounded relative error for large values, and per-thread merge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "metrics/histogram.hh"

namespace tcpni::metrics
{
namespace
{

/** Nearest-rank percentile on the raw sample vector. */
uint64_t
oracle(std::vector<uint64_t> v, double q)
{
    std::sort(v.begin(), v.end());
    size_t rank = static_cast<size_t>(std::ceil(q * v.size()));
    rank = std::max<size_t>(rank, 1);
    rank = std::min(rank, v.size());
    return v[rank - 1];
}

TEST(Histogram, SmallValuesHaveExactBuckets)
{
    // Values below the sub-bucket count index themselves.
    for (uint64_t v = 0; v < 64; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), v);
        EXPECT_EQ(Histogram::bucketLow(v), v);
        EXPECT_EQ(Histogram::bucketHigh(v), v);
    }
}

TEST(Histogram, BucketBoundaries)
{
    // The first log bucket starts exactly where the unit buckets end.
    EXPECT_EQ(Histogram::bucketIndex(63), 63u);
    EXPECT_EQ(Histogram::bucketIndex(64), 64u);
    EXPECT_EQ(Histogram::bucketLow(64), 64u);
    EXPECT_EQ(Histogram::bucketHigh(64), 65u);
    // Last bucket of the first log half-decade: [126, 127].
    EXPECT_EQ(Histogram::bucketIndex(127), 95u);
    EXPECT_EQ(Histogram::bucketLow(95), 126u);
    EXPECT_EQ(Histogram::bucketHigh(95), 127u);
    // The next half-decade doubles the bucket width.
    EXPECT_EQ(Histogram::bucketIndex(128), 96u);
    EXPECT_EQ(Histogram::bucketLow(96), 128u);
    EXPECT_EQ(Histogram::bucketHigh(96), 131u);
}

TEST(Histogram, BucketRoundTrip)
{
    // Every value lands inside its bucket's [low, high] range, and
    // both endpoints map back to the same bucket.
    std::vector<uint64_t> probes;
    for (uint64_t v = 0; v < 2048; ++v)
        probes.push_back(v);
    for (int s = 11; s < 63; ++s) {
        probes.push_back((uint64_t{1} << s) - 1);
        probes.push_back(uint64_t{1} << s);
        probes.push_back((uint64_t{1} << s) + 12345 % (uint64_t{1} << s));
    }
    probes.push_back(UINT64_MAX);
    for (uint64_t v : probes) {
        unsigned idx = Histogram::bucketIndex(v);
        uint64_t lo = Histogram::bucketLow(idx);
        uint64_t hi = Histogram::bucketHigh(idx);
        EXPECT_LE(lo, v) << "v=" << v;
        EXPECT_GE(hi, v) << "v=" << v;
        EXPECT_EQ(Histogram::bucketIndex(lo), idx) << "v=" << v;
        EXPECT_EQ(Histogram::bucketIndex(hi), idx) << "v=" << v;
        // Bounded relative width: the HDR guarantee.
        EXPECT_LE(hi - lo, lo / 32 + 1) << "v=" << v;
    }
}

TEST(Histogram, ExactStatsAndCounts)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    h.record(7);
    h.record(3, 2);
    h.record(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 7u + 3 + 3 + 1000);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), (7.0 + 3 + 3 + 1000) / 4);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST(Histogram, SmallNPercentilesMatchOracleExactly)
{
    // All samples below 64 sit in exact unit buckets, so every
    // percentile must equal the nearest-rank oracle.
    std::vector<uint64_t> samples{5, 1, 9, 3, 3, 60, 22, 0, 17, 42, 8};
    Histogram h;
    for (uint64_t v : samples)
        h.record(v);
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(h.percentile(q), oracle(samples, q)) << "q=" << q;
}

TEST(Histogram, SingleSamplePercentiles)
{
    Histogram h;
    h.record(123456);
    // Whatever the quantile, the only sample is the answer (the
    // bucket bound is clamped to [min, max]).
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(h.percentile(q), 123456u);
}

TEST(Histogram, LargeValuePercentilesWithinRelativeErrorBound)
{
    // A deterministic LCG stream spanning several decades.
    std::vector<uint64_t> samples;
    uint64_t state = 12345;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        samples.push_back((state >> 20) % 10'000'000);
    }
    Histogram h;
    for (uint64_t v : samples)
        h.record(v);
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        uint64_t want = oracle(samples, q);
        uint64_t got = h.percentile(q);
        // Nearest-rank on buckets returns the containing bucket's
        // upper bound: never below the oracle, and at most one
        // bucket width (<= want/32 + 1) above it.
        EXPECT_GE(got, want) << "q=" << q;
        EXPECT_LE(got, want + want / 32 + 1) << "q=" << q;
    }
}

TEST(Histogram, MergeEqualsCombinedRecording)
{
    // Per-thread histograms merged must be indistinguishable from one
    // histogram that saw every sample.
    std::vector<uint64_t> a{1, 70, 500, 500, 12, 99999};
    std::vector<uint64_t> b{0, 2, 70, 1'000'000, 31};
    Histogram ha, hb, hall;
    for (uint64_t v : a) {
        ha.record(v);
        hall.record(v);
    }
    for (uint64_t v : b) {
        hb.record(v);
        hall.record(v);
    }
    ha.merge(hb);
    EXPECT_EQ(ha.count(), hall.count());
    EXPECT_EQ(ha.sum(), hall.sum());
    EXPECT_EQ(ha.min(), hall.min());
    EXPECT_EQ(ha.max(), hall.max());
    EXPECT_EQ(ha.buckets(), hall.buckets());
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(ha.percentile(q), hall.percentile(q)) << "q=" << q;
}

TEST(Histogram, MergeIntoEmpty)
{
    Histogram src, dst;
    src.record(42);
    src.record(4242);
    dst.merge(src);
    EXPECT_EQ(dst.count(), 2u);
    EXPECT_EQ(dst.min(), 42u);
    EXPECT_EQ(dst.max(), 4242u);
    // Merging an empty histogram changes nothing.
    Histogram empty;
    dst.merge(empty);
    EXPECT_EQ(dst.count(), 2u);
    EXPECT_EQ(dst.min(), 42u);
}

} // namespace
} // namespace tcpni::metrics
