#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.hh"
#include "cpu/cpu.hh"
#include "isa/isa.hh"

using namespace tcpni;
using namespace tcpni::isa;

namespace
{

/**
 * A straight-line architectural reference interpreter: evaluates the
 * same instruction semantics as the Cpu model with none of its timing
 * machinery.  Random-program equivalence between the two catches
 * decode/execute divergence.
 */
struct GoldenModel
{
    Word regs[numRegs] = {};
    std::vector<Word> mem = std::vector<Word>(0x4000, 0);

    Word r(unsigned k) const { return k == 0 ? 0 : regs[k]; }
    void w(unsigned k, Word v) { if (k) regs[k] = v; }

    void
    step(const Instruction &i)
    {
        auto mref = [&](Word addr) -> Word & {
            return mem.at((localOf(addr) / 4) % mem.size());
        };
        switch (i.op) {
          case Opcode::add: w(i.rd, r(i.rs1) + r(i.rs2)); break;
          case Opcode::sub: w(i.rd, r(i.rs1) - r(i.rs2)); break;
          case Opcode::and_: w(i.rd, r(i.rs1) & r(i.rs2)); break;
          case Opcode::or_: w(i.rd, r(i.rs1) | r(i.rs2)); break;
          case Opcode::xor_: w(i.rd, r(i.rs1) ^ r(i.rs2)); break;
          case Opcode::sll: w(i.rd, r(i.rs1) << (r(i.rs2) & 31)); break;
          case Opcode::srl: w(i.rd, r(i.rs1) >> (r(i.rs2) & 31)); break;
          case Opcode::sra:
            w(i.rd, static_cast<Word>(
                        static_cast<int32_t>(r(i.rs1)) >>
                        (r(i.rs2) & 31)));
            break;
          case Opcode::slt:
            w(i.rd, static_cast<int32_t>(r(i.rs1)) <
                            static_cast<int32_t>(r(i.rs2))
                        ? 1 : 0);
            break;
          case Opcode::sltu:
            w(i.rd, r(i.rs1) < r(i.rs2) ? 1 : 0);
            break;
          case Opcode::mul: w(i.rd, r(i.rs1) * r(i.rs2)); break;
          case Opcode::addi:
            w(i.rd, r(i.rs1) + static_cast<Word>(i.imm));
            break;
          case Opcode::andi:
            w(i.rd, r(i.rs1) & static_cast<Word>(i.imm));
            break;
          case Opcode::ori:
            w(i.rd, r(i.rs1) | static_cast<Word>(i.imm));
            break;
          case Opcode::xori:
            w(i.rd, r(i.rs1) ^ static_cast<Word>(i.imm));
            break;
          case Opcode::lui:
            w(i.rd, static_cast<Word>(i.imm) << 16);
            break;
          case Opcode::slli: w(i.rd, r(i.rs1) << (i.imm & 31)); break;
          case Opcode::srli: w(i.rd, r(i.rs1) >> (i.imm & 31)); break;
          case Opcode::ldi:
            w(i.rd, mref(r(i.rs1) + static_cast<Word>(i.imm)));
            break;
          case Opcode::sti:
            mref(r(i.rs1) + static_cast<Word>(i.imm)) = r(i.rd);
            break;
          default:
            FAIL() << "unexpected opcode in golden test";
        }
    }
};

/** Generate a random straight-line program of ALU + memory ops. */
std::vector<Instruction>
randomProgram(Random &rng, size_t len)
{
    static const Opcode alu3[] = {
        Opcode::add, Opcode::sub, Opcode::and_, Opcode::or_,
        Opcode::xor_, Opcode::sll, Opcode::srl, Opcode::sra,
        Opcode::slt, Opcode::sltu, Opcode::mul,
    };
    static const Opcode alui[] = {
        Opcode::addi, Opcode::andi, Opcode::ori, Opcode::xori,
        Opcode::lui, Opcode::slli, Opcode::srli,
    };

    std::vector<Instruction> prog;
    for (size_t k = 0; k < len; ++k) {
        Instruction i;
        // Registers r1..r13 only (r14+ reserved/NI aliases elsewhere).
        auto reg = [&]() { return rng.uniform(1, 13); };
        switch (rng.uniform(0, 3)) {
          case 0:
            i.op = alu3[rng.uniform(0, 10)];
            i.rd = static_cast<uint8_t>(reg());
            i.rs1 = static_cast<uint8_t>(reg());
            i.rs2 = static_cast<uint8_t>(reg());
            break;
          case 1:
            i.op = alui[rng.uniform(0, 6)];
            i.rd = static_cast<uint8_t>(reg());
            i.rs1 = static_cast<uint8_t>(reg());
            i.imm = immIsSigned(i.op)
                        ? static_cast<int32_t>(rng.uniform(0, 0xffff)) -
                              0x8000
                        : static_cast<int32_t>(rng.uniform(0, 0xffff));
            if (i.op == Opcode::slli || i.op == Opcode::srli)
                i.imm &= 31;
            break;
          case 2:
            i.op = Opcode::ldi;
            i.rd = static_cast<uint8_t>(reg());
            i.rs1 = 0;
            i.imm = static_cast<int32_t>(rng.uniform(0, 0xfff)) * 4;
            break;
          default:
            i.op = Opcode::sti;
            i.rd = static_cast<uint8_t>(reg());
            i.rs1 = 0;
            i.imm = static_cast<int32_t>(rng.uniform(0, 0xfff)) * 4;
            break;
        }
        prog.push_back(i);
    }
    Instruction halt;
    halt.op = Opcode::halt;
    prog.push_back(halt);
    return prog;
}

} // namespace

class GoldenEquivalence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GoldenEquivalence, RandomProgramsAgree)
{
    Random rng(GetParam());
    std::vector<Instruction> prog = randomProgram(rng, 300);

    // Reference execution.
    GoldenModel gold;
    for (const Instruction &i : prog) {
        if (i.op == Opcode::halt)
            break;
        gold.step(i);
    }

    // Timing-model execution of the encoded program.
    EventQueue eq;
    Memory mem(0x20000);
    Cpu cpu("cpu", eq, mem, nullptr);
    isa::Program image;
    image.base = 0x10000;   // program above the data region
    for (const Instruction &i : prog) {
        image.words.push_back(encode(i));
        image.regionOf.push_back(0);
        image.lineOf.push_back(0);
    }
    image.regionNames.push_back("");
    cpu.loadProgram(image);
    cpu.reset(image.base);
    cpu.start();
    eq.run();
    ASSERT_TRUE(cpu.halted());

    for (unsigned r = 0; r < 14; ++r)
        EXPECT_EQ(cpu.reg(r), gold.r(r)) << "r" << r;
    for (Word a = 0; a < 0x4000; a += 4) {
        ASSERT_EQ(mem.read(a), gold.mem[a / 4])
            << "mem @ 0x" << std::hex << a;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenEquivalence,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u, 55u, 89u));
