#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "cpu/cpu.hh"
#include "isa/assembler.hh"
#include "msg/kernels.hh"
#include "ni/ni_regs.hh"
#include "noc/network.hh"

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

/** Two register-mapped nodes; node 1's CPU runs interrupt-driven. */
struct IntRig
{
    EventQueue eq;
    IdealNetwork net{"net", eq, 2, 1};
    Memory mem0{1 << 20}, mem1{1 << 20};
    std::unique_ptr<NetworkInterface> ni0, ni1;
    std::unique_ptr<Cpu> cpu1;

    IntRig()
    {
        NiConfig cfg;
        cfg.placement = Placement::registerFile;
        ni0 = std::make_unique<NetworkInterface>("ni0", eq, 0, net,
                                                 cfg);
        ni1 = std::make_unique<NetworkInterface>("ni1", eq, 1, net,
                                                 cfg);
        cpu1 = std::make_unique<Cpu>("cpu1", eq, mem1, ni1.get());
    }

    void
    sendType(uint8_t type, Word w1 = 0)
    {
        ni0->writeReg(regO0, globalWord(1, 0));
        ni0->writeReg(regO1, w1);
        isa::NiCommand c;
        c.mode = isa::SendMode::send;
        c.type = type;
        ni0->command(c);
    }

    void
    boot(const std::string &src)
    {
        isa::Program p = msg::assembleKernel(src);
        cpu1->loadProgram(p);
        cpu1->reset(p.addrOf("entry"));
        cpu1->start();
    }
};

/**
 * An interrupt-driven server: the main "application" loop counts
 * iterations at 0x500; type-2 message handlers run as interrupts,
 * appending the message's word 1 at 0x600+, and resume the loop.
 * The conventional epilogue re-enables interrupts in the delay slot
 * of the `jmp r14` return, so an arrival in the NEXT..return window
 * cannot be lost and r14 cannot be clobbered mid-handler.
 */
const char *interruptServer = R"(
    .org 0x4000
poll:                          ; slot 0: unused under interrupts
    jmp  msgip
    nop
    .align HANDLER_STRIDE
exc:
    halt
    .align HANDLER_STRIDE
h2:                            ; slot 2: the interrupt handler
    ldi  r1, r0, 0x604         ; cursor
    st   i1, r1, r0 !next      ; store payload, advance input regs
    addi r1, r1, 4
    sti  r1, r0, 0x604
    jmp  r14                   ; return to the interrupted code...
    ori  control, control, CT_INTEN   ; ...re-enabling in the delay slot
    .align HANDLER_STRIDE
    .space (HANDLER_STRIDE/4) * 12
stop:
    halt
    .align HANDLER_STRIDE

entry:
    li   ipbase, 0x4000
    lis  r1, 0x608
    sti  r1, r0, 0x604         ; payload cursor
    ori  control, control, CT_INTEN
    ; the application: count loop iterations until told to stop
loop:
    ldi  r2, r0, 0x500
    addi r2, r2, 1
    sti  r2, r0, 0x500
    ldi  r3, r0, 0x700         ; stop flag (set by the test)
    beqz r3, loop
    nop
    halt
)";

} // namespace

TEST(InterruptDriven, HandlerRunsAndResumes)
{
    IntRig rig;
    rig.boot(interruptServer);

    // Let the application loop spin a while, then interrupt it.
    rig.eq.run(200);
    Word count_before = rig.mem1.read(0x500);
    EXPECT_GT(count_before, 5u);

    rig.sendType(2, 0xaaaa);
    rig.eq.run(rig.eq.curTick() + 100);

    EXPECT_EQ(rig.cpu1->interruptsTaken(), 1u);
    EXPECT_EQ(rig.ni1->numReceived(), 1u);
    EXPECT_EQ(rig.mem1.read(0x608), 0xaaaau);
    // The application kept running afterwards.
    Word count_after = rig.mem1.read(0x500);
    EXPECT_GT(count_after, count_before);

    rig.mem1.write(0x700, 1);
    rig.eq.run(rig.eq.curTick() + 100);
    EXPECT_TRUE(rig.cpu1->halted());
}

TEST(InterruptDriven, BackToBackMessagesAllHandled)
{
    IntRig rig;
    rig.boot(interruptServer);
    rig.eq.run(50);

    for (Word k = 0; k < 5; ++k)
        rig.sendType(2, 0x100 + k);
    rig.eq.run(rig.eq.curTick() + 500);

    // Every message was handled exactly once, in order.
    for (Word k = 0; k < 5; ++k)
        EXPECT_EQ(rig.mem1.read(0x608 + 4 * k), 0x100 + k);
    EXPECT_EQ(rig.cpu1->interruptsTaken(), 5u);

    rig.mem1.write(0x700, 1);
    rig.eq.run(rig.eq.curTick() + 100);
    EXPECT_TRUE(rig.cpu1->halted());
}

TEST(InterruptDriven, DisabledMeansNoInterrupt)
{
    IntRig rig;
    // Same server but without enabling interrupts: arrivals just sit
    // in the input registers.
    std::string src = interruptServer;
    size_t pos = src.find("    ori  control, control, CT_INTEN\n"
                          "    ; the application");
    ASSERT_NE(pos, std::string::npos);
    src.replace(pos, std::string("    ori  control, control, "
                                 "CT_INTEN\n").size(), "");
    rig.boot(src);
    rig.eq.run(50);

    rig.sendType(2, 0x55);
    rig.eq.run(rig.eq.curTick() + 200);
    EXPECT_EQ(rig.cpu1->interruptsTaken(), 0u);
    EXPECT_TRUE(rig.ni1->msgValid());

    rig.mem1.write(0x700, 1);
    rig.eq.run(rig.eq.curTick() + 100);
    EXPECT_TRUE(rig.cpu1->halted());
}

TEST(InterruptDriven, ReenableWithPendingMessageFiresImmediately)
{
    // Level-triggered semantics: two messages arrive while the first
    // is being handled; re-enabling fires again for the second.
    IntRig rig;
    rig.boot(interruptServer);
    rig.eq.run(50);

    rig.sendType(2, 1);
    rig.sendType(2, 2);
    rig.sendType(2, 3);
    rig.eq.run(rig.eq.curTick() + 400);
    EXPECT_EQ(rig.cpu1->interruptsTaken(), 3u);
    EXPECT_EQ(rig.mem1.read(0x608), 1u);
    EXPECT_EQ(rig.mem1.read(0x60c), 2u);
    EXPECT_EQ(rig.mem1.read(0x610), 3u);

    rig.mem1.write(0x700, 1);
    rig.eq.run(rig.eq.curTick() + 100);
    EXPECT_TRUE(rig.cpu1->halted());
}

TEST(InterruptDriven, EnableBitClearsOnDelivery)
{
    IntRig rig;
    rig.boot(interruptServer);
    rig.eq.run(50);
    EXPECT_EQ(bits(rig.ni1->readReg(regControl),
                   control::intEnableBit), 1u);
    rig.sendType(2, 7);
    rig.eq.run(rig.eq.curTick() + 200);
    EXPECT_EQ(rig.cpu1->interruptsTaken(), 1u);
    // After the handler's epilogue the enable bit is set again.
    EXPECT_EQ(bits(rig.ni1->readReg(regControl),
                   control::intEnableBit), 1u);

    rig.mem1.write(0x700, 1);
    rig.eq.run(rig.eq.curTick() + 100);
}
