#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "cpu/cpu.hh"
#include "isa/assembler.hh"
#include "ni/ni_regs.hh"
#include "noc/network.hh"

using namespace tcpni;
using namespace tcpni::ni;

namespace
{

/** A two-node machine: each node has memory, an NI, and a CPU. */
struct Machine
{
    EventQueue eq;
    IdealNetwork net{"net", eq, 2, 1};
    Memory mem0{256 * 1024}, mem1{256 * 1024};
    std::unique_ptr<NetworkInterface> ni0, ni1;
    std::unique_ptr<Cpu> cpu0, cpu1;

    explicit Machine(NiConfig cfg)
    {
        ni0 = std::make_unique<NetworkInterface>("ni0", eq, 0, net, cfg);
        ni1 = std::make_unique<NetworkInterface>("ni1", eq, 1, net, cfg);
        cpu0 = std::make_unique<Cpu>("cpu0", eq, mem0, ni0.get());
        cpu1 = std::make_unique<Cpu>("cpu1", eq, mem1, ni1.get());
    }

    isa::Program
    loadAndStart(Cpu &cpu, const std::string &src)
    {
        isa::Program p = isa::assemble(src, asmSymbols());
        cpu.loadProgram(p);
        cpu.reset(p.base);
        cpu.start();
        return p;
    }

    /** Send a message from node 0's NI directly (no CPU involved). */
    void
    injectFrom0(uint8_t type, Word local0, Word w1 = 0, Word w2 = 0,
                Word w3 = 0, Word w4 = 0)
    {
        ni0->writeReg(regO0, globalWord(1, local0));
        ni0->writeReg(regO1, w1);
        ni0->writeReg(regO2, w2);
        ni0->writeReg(regO3, w3);
        ni0->writeReg(regO4, w4);
        isa::NiCommand c;
        c.mode = isa::SendMode::send;
        c.type = type;
        ni0->command(c);
    }
};

NiConfig
regMapped()
{
    NiConfig c;
    c.placement = Placement::registerFile;
    return c;
}

NiConfig
cacheMapped(Placement p)
{
    NiConfig c;
    c.placement = p;
    return c;
}

} // namespace

TEST(RegMappedCoupling, OutputRegsAreRegisters)
{
    Machine m(regMapped());
    m.loadAndStart(*m.cpu0, R"(
        li  o0, (1 << 24) | 0x100
        lis o1, 0x42
        halt
    )");
    m.eq.run();
    EXPECT_EQ(m.ni0->readReg(regO0), globalWord(1, 0x100));
    EXPECT_EQ(m.ni0->readReg(regO1), 0x42u);
}

TEST(RegMappedCoupling, SendViaInstructionBits)
{
    Machine m(regMapped());
    m.loadAndStart(*m.cpu0, R"(
        li  o0, (1 << 24) | 0x0
        lis o1, 7
        lis o2, 9
        add o3, o1, o2 !send=5
        halt
    )");
    m.eq.run();
    ASSERT_TRUE(m.ni1->msgValid());
    EXPECT_EQ(m.ni1->currentType(), 5);
    EXPECT_EQ(m.ni1->readReg(regI1), 7u);
    EXPECT_EQ(m.ni1->readReg(regI2), 9u);
    EXPECT_EQ(m.ni1->readReg(regI3), 16u);  // computed into o3 same insn
}

TEST(RegMappedCoupling, InputRegsReadableAndNext)
{
    Machine m(regMapped());
    m.injectFrom0(6, 0, 0x11, 0x22);
    m.injectFrom0(7, 0, 0x33);
    m.eq.run();

    m.loadAndStart(*m.cpu1, R"(
        add r1, i1, r0
        add r2, i2, r0
        next
        add r3, i1, r0
        add r4, status, r0
        halt
    )");
    m.eq.run();
    EXPECT_EQ(m.cpu1->reg(1), 0x11u);
    EXPECT_EQ(m.cpu1->reg(2), 0x22u);
    EXPECT_EQ(m.cpu1->reg(3), 0x33u);
    // STATUS msgValid bit visible through the register file.
    EXPECT_EQ(bits(m.cpu1->reg(4), status::msgValidBit), 1u);
}

TEST(RegMappedCoupling, NiRegsNeverInterlock)
{
    Machine m(regMapped());
    m.injectFrom0(6, 0, 5);
    m.eq.run();
    m.loadAndStart(*m.cpu1, R"(
        add r1, i1, i1
        add r2, r1, r1
        halt
    )");
    m.eq.run();
    EXPECT_EQ(m.cpu1->reg(2), 20u);
    EXPECT_EQ(m.cpu1->stallCycles(), 0u);
}

TEST(RegMappedCoupling, TwoInstructionRemoteReadServer)
{
    // The paper's headline: "a register-mapped interface can receive,
    // process, and reply to a remote read request in a total of two
    // RISC instructions" -- a jump through NextMsgIp whose delay slot
    // holds a fused load/SEND-reply/NEXT.
    Machine m(regMapped());

    // Server data.
    m.mem1.write(0x100, 0xaaa);
    m.mem1.write(0x104, 0xbbb);
    m.mem1.write(0x108, 0xccc);

    m.loadAndStart(*m.cpu1, R"(
        .org 0x4000
        ; slot 0 (type 0000): poll handler -- spin on MsgIp.
        poll:
            jmp msgip
            nop
            .align HANDLER_STRIDE

        ; slot 1: exception handler (unused here).
        exc:
            halt
            .align HANDLER_STRIDE

        ; slot 2 (unused).
            halt
            .align HANDLER_STRIDE

        ; slot 3: remote read. Two instructions per message:
        ;   dispatch on the next message, and in the delay slot load
        ;   the requested word into o2, SEND-reply it, and advance.
        read:
            jmp nextmsgip
            ld o2, i0, r0 !reply=4 !next
            .align HANDLER_STRIDE

        ; slots 4..14 unused.
            .space (HANDLER_STRIDE/4) * 11

        ; slot 15: stop message halts the server.
        stop:
            halt
            .align HANDLER_STRIDE

        start:
            li   ipbase, 0x4000
            br   poll
            nop
    )");
    // Enter at `start` (after the table).
    m.cpu1->reset(0x4000 + 16 * 128);
    m.cpu1->start();

    // Three read requests; the reply continuation is (FP, IP) =
    // (node-0 global word, arbitrary IP); then a stop.
    m.injectFrom0(3, 0x100, globalWord(0, 0x10), 0x1111);
    m.injectFrom0(3, 0x104, globalWord(0, 0x20), 0x2222);
    m.injectFrom0(3, 0x108, globalWord(0, 0x30), 0x3333);
    m.injectFrom0(15, 0);
    m.eq.run();

    EXPECT_TRUE(m.cpu1->halted());

    // Node 0 received three type-4 replies carrying FP, IP, value.
    ASSERT_TRUE(m.ni0->msgValid());
    EXPECT_EQ(m.ni0->currentType(), 4);
    EXPECT_EQ(m.ni0->readReg(regI0), globalWord(0, 0x10));
    EXPECT_EQ(m.ni0->readReg(regI1), 0x1111u);
    EXPECT_EQ(m.ni0->readReg(regI2), 0xaaau);

    isa::NiCommand next;
    next.next = true;
    m.ni0->command(next);
    EXPECT_EQ(m.ni0->readReg(regI2), 0xbbbu);
    m.ni0->command(next);
    EXPECT_EQ(m.ni0->readReg(regI2), 0xcccu);
}

TEST(CacheMappedCoupling, StoreAndSend)
{
    Machine m(cacheMapped(Placement::onChipCache));
    m.loadAndStart(*m.cpu0, R"(
        li  r10, NI_BASE
        li  r1, (1 << 24) | 0x0
        sti r1, r10, NI_O0
        lis r2, 0x55
        sti r2, r10, NI_O1
        ; final store carries the SEND command and the type
        lis r3, 0x66
        sti r3, r10, NI_O2 | NI_SEND | NI_TYPE*6
        halt
    )");
    m.eq.run();
    ASSERT_TRUE(m.ni1->msgValid());
    EXPECT_EQ(m.ni1->currentType(), 6);
    EXPECT_EQ(m.ni1->readReg(regI1), 0x55u);
    EXPECT_EQ(m.ni1->readReg(regI2), 0x66u);
}

TEST(CacheMappedCoupling, LoadWithReplyAndNext)
{
    // The Figure-9 example access: one load returns i1, sends a
    // type-7 reply, and advances the input registers.
    Machine m(cacheMapped(Placement::onChipCache));
    m.injectFrom0(5, 0x0, globalWord(0, 0x88), 0x99);
    m.injectFrom0(6, 0x0, 0x77);
    m.eq.run();

    m.ni1->writeReg(regO2, 0xd00d);
    m.loadAndStart(*m.cpu1, R"(
        li  r10, NI_BASE
        ldi r1, r10, NI_I1 | NI_REPLY | NI_TYPE*7 | NI_NEXT
        halt
    )");
    m.eq.run();

    // The load returned i1's pre-NEXT value.
    EXPECT_EQ(m.cpu1->reg(1), globalWord(0, 0x88));
    // NEXT advanced to the second message.
    EXPECT_EQ(m.ni1->currentType(), 6);
    EXPECT_EQ(m.ni1->readReg(regI1), 0x77u);
    // The reply went back to node 0 headed by (i1, i2).
    ASSERT_TRUE(m.ni0->msgValid());
    EXPECT_EQ(m.ni0->currentType(), 7);
    EXPECT_EQ(m.ni0->readReg(regI0), globalWord(0, 0x88));
    EXPECT_EQ(m.ni0->readReg(regI1), 0x99u);
    EXPECT_EQ(m.ni0->readReg(regI2), 0xd00du);
}

TEST(CacheMappedCoupling, StatusPolling)
{
    Machine m(cacheMapped(Placement::onChipCache));
    m.injectFrom0(4, 0);
    m.eq.run();
    m.loadAndStart(*m.cpu1, R"(
        li   r10, NI_BASE
        ldi  r1, r10, NI_STATUS
        andi r2, r1, 0xffff     ; queue lengths
        halt
    )");
    m.eq.run();
    EXPECT_EQ(bits(m.cpu1->reg(1), status::msgValidBit), 1u);
}

TEST(CacheMappedCoupling, OffChipLoadUseDelay)
{
    // Off-chip: a loaded NI value is unusable for two cycles; using it
    // immediately costs two interlock stalls (Section 3.1).
    Machine off(cacheMapped(Placement::offChipCache));
    off.injectFrom0(4, 0, 21);
    off.eq.run();
    off.loadAndStart(*off.cpu1, R"(
        li   r10, NI_BASE
        ldi  r1, r10, NI_I1
        addi r2, r1, 1
        halt
    )");
    off.eq.run();
    EXPECT_EQ(off.cpu1->reg(2), 22u);
    EXPECT_EQ(off.cpu1->stallCycles(), 2u);

    Machine on(cacheMapped(Placement::onChipCache));
    on.injectFrom0(4, 0, 21);
    on.eq.run();
    on.loadAndStart(*on.cpu1, R"(
        li   r10, NI_BASE
        ldi  r1, r10, NI_I1
        addi r2, r1, 1
        halt
    )");
    on.eq.run();
    EXPECT_EQ(on.cpu1->stallCycles(), 0u);
}

TEST(CacheMappedCoupling, ConfigurableOffChipLatency)
{
    // Section 4.2.3: raise the off-chip read latency from 2 to 8.
    NiConfig cfg = cacheMapped(Placement::offChipCache);
    cfg.offChipLoadUseDelay = 8;
    Machine m(cfg);
    m.injectFrom0(4, 0, 21);
    m.eq.run();
    m.loadAndStart(*m.cpu1, R"(
        li   r10, NI_BASE
        ldi  r1, r10, NI_I1
        addi r2, r1, 1
        halt
    )");
    m.eq.run();
    EXPECT_EQ(m.cpu1->stallCycles(), 8u);
}

TEST(CacheMappedCoupling, NiBitsOnTriadicPanicWithoutRegFile)
{
    Machine m(cacheMapped(Placement::onChipCache));
    m.loadAndStart(*m.cpu0, R"(
        add r1, r2, r3 !next
        halt
    )");
    EXPECT_THROW(m.eq.run(), PanicError);
}

TEST(RegMappedCoupling, CacheWindowPanicsWithRegFileNi)
{
    Machine m(regMapped());
    m.loadAndStart(*m.cpu0, R"(
        li  r10, NI_BASE
        ldi r1, r10, NI_STATUS
        halt
    )");
    EXPECT_THROW(m.eq.run(), PanicError);
}
