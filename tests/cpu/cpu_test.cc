#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "cpu/cpu.hh"
#include "isa/assembler.hh"

using namespace tcpni;

namespace
{

/** Assemble, load, run to halt; exposes the CPU for inspection. */
struct Runner
{
    EventQueue eq;
    Memory mem{64 * 1024};
    std::unique_ptr<Cpu> cpu;

    explicit Runner(const std::string &src, CpuConfig cfg = {})
    {
        cpu = std::make_unique<Cpu>("cpu", eq, mem, nullptr, cfg);
        isa::Program p = isa::assemble(src);
        cpu->loadProgram(p);
        cpu->reset(p.base);
        cpu->start();
        eq.run();
        EXPECT_TRUE(cpu->halted());
    }

    Word r(unsigned n) const { return cpu->reg(n); }
};

} // namespace

TEST(CpuExec, Arithmetic)
{
    Runner run(R"(
        addi r1, r0, 10
        addi r2, r0, 3
        add  r3, r1, r2
        sub  r4, r1, r2
        mul  r5, r1, r2
        halt
    )");
    EXPECT_EQ(run.r(3), 13u);
    EXPECT_EQ(run.r(4), 7u);
    EXPECT_EQ(run.r(5), 30u);
}

TEST(CpuExec, Logic)
{
    Runner run(R"(
        addi r1, r0, 0xff
        andi r2, r1, 0x0f
        ori  r3, r1, 0xf00
        xori r4, r1, 0xff
        and  r5, r1, r2
        or   r6, r2, r3
        xor  r7, r1, r1
        halt
    )");
    EXPECT_EQ(run.r(2), 0x0fu);
    EXPECT_EQ(run.r(3), 0xfffu);
    EXPECT_EQ(run.r(4), 0u);
    EXPECT_EQ(run.r(5), 0x0fu);
    EXPECT_EQ(run.r(6), 0xfffu);
    EXPECT_EQ(run.r(7), 0u);
}

TEST(CpuExec, Shifts)
{
    Runner run(R"(
        addi r1, r0, -16
        addi r2, r0, 2
        sll  r3, r1, r2
        srl  r4, r1, r2
        sra  r5, r1, r2
        slli r6, r1, 4
        srli r7, r1, 28
        halt
    )");
    EXPECT_EQ(run.r(3), static_cast<Word>(-64));
    EXPECT_EQ(run.r(4), 0x3ffffffcu);
    EXPECT_EQ(run.r(5), static_cast<Word>(-4));
    EXPECT_EQ(run.r(6), static_cast<Word>(-256));
    EXPECT_EQ(run.r(7), 0xfu);
}

TEST(CpuExec, Compare)
{
    Runner run(R"(
        addi r1, r0, -1
        addi r2, r0, 1
        slt  r3, r1, r2
        slt  r4, r2, r1
        sltu r5, r1, r2
        sltu r6, r2, r1
        halt
    )");
    EXPECT_EQ(run.r(3), 1u);
    EXPECT_EQ(run.r(4), 0u);
    EXPECT_EQ(run.r(5), 0u);    // 0xffffffff not < 1 unsigned
    EXPECT_EQ(run.r(6), 1u);
}

TEST(CpuExec, LuiLi)
{
    Runner run(R"(
        lui r1, 0x1234
        li  r2, 0xdeadbeef
        halt
    )");
    EXPECT_EQ(run.r(1), 0x12340000u);
    EXPECT_EQ(run.r(2), 0xdeadbeefu);
}

TEST(CpuExec, R0Hardwired)
{
    Runner run(R"(
        addi r0, r0, 99
        add  r1, r0, r0
        halt
    )");
    EXPECT_EQ(run.r(0), 0u);
    EXPECT_EQ(run.r(1), 0u);
}

TEST(CpuExec, LoadStore)
{
    Runner run(R"(
        .equ BUF, 0x1000
        li   r1, BUF
        addi r2, r0, 77
        sti  r2, r1, 0
        sti  r2, r1, 4
        ldi  r3, r1, 0
        addi r4, r0, 4
        ld   r5, r1, r4
        addi r6, r0, 88
        st   r6, r1, r4
        ldi  r7, r1, 4
        halt
    )");
    EXPECT_EQ(run.r(3), 77u);
    EXPECT_EQ(run.r(5), 77u);
    EXPECT_EQ(run.r(7), 88u);
    EXPECT_EQ(run.mem.read(0x1000), 77u);
}

TEST(CpuExec, GlobalAddressBitsIgnoredLocally)
{
    // Loads/stores mask off the node-id bits: a global address whose
    // node field is this node behaves as the local address.
    Runner run(R"(
        li   r1, 0x03001000    ; node 3, local 0x1000
        addi r2, r0, 55
        sti  r2, r1, 0
        ldi  r3, r1, 0
        halt
    )");
    EXPECT_EQ(run.r(3), 55u);
    EXPECT_EQ(run.mem.read(0x1000), 55u);
}

TEST(CpuExec, BranchesAndLoop)
{
    Runner run(R"(
        addi r1, r0, 5      ; counter
        addi r2, r0, 0      ; sum
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bnez r1, loop
        nop                 ; delay slot
        halt
    )");
    EXPECT_EQ(run.r(2), 15u);
}

TEST(CpuExec, DelaySlotAlwaysExecutes)
{
    Runner run(R"(
        addi r1, r0, 1
        br   past
        addi r2, r0, 42     ; delay slot: executes
        addi r3, r0, 99     ; skipped
    past:
        halt
    )");
    EXPECT_EQ(run.r(2), 42u);
    EXPECT_EQ(run.r(3), 0u);
}

TEST(CpuExec, NotTakenBranchFallsThrough)
{
    Runner run(R"(
        addi r1, r0, 1
        beqz r1, away
        addi r2, r0, 5      ; delay slot
        addi r3, r0, 6
        halt
    away:
        addi r4, r0, 7
        halt
    )");
    EXPECT_EQ(run.r(2), 5u);
    EXPECT_EQ(run.r(3), 6u);
    EXPECT_EQ(run.r(4), 0u);
}

TEST(CpuExec, ConditionalVariants)
{
    Runner run(R"(
        addi r1, r0, -3
        addi r10, r0, 0
        bltz r1, neg
        nop
        addi r10, r0, 1     ; skipped
    neg:
        bgez r1, pos
        nop
        addi r11, r0, 1     ; executes (branch not taken)
        halt
    pos:
        addi r12, r0, 1
        halt
    )");
    EXPECT_EQ(run.r(10), 0u);
    EXPECT_EQ(run.r(11), 1u);
    EXPECT_EQ(run.r(12), 0u);
}

TEST(CpuExec, CallAndReturn)
{
    Runner run(R"(
            call func
            nop
            addi r2, r0, 20
            halt
        func:
            addi r1, r0, 10
            ret
            nop
    )");
    EXPECT_EQ(run.r(1), 10u);
    EXPECT_EQ(run.r(2), 20u);
}

TEST(CpuExec, JmpRegister)
{
    Runner run(R"(
            li  r4, target
            jmp r4
            addi r1, r0, 1  ; delay slot
            addi r2, r0, 2  ; skipped
        target:
            halt
    )");
    EXPECT_EQ(run.r(1), 1u);
    EXPECT_EQ(run.r(2), 0u);
}

TEST(CpuExec, JmplLinks)
{
    Runner run(R"(
            li   r4, func
            jmpl r9, r4
            nop
            addi r2, r0, 5
            halt
        func:
            jmp r9
            nop
    )");
    EXPECT_EQ(run.r(2), 5u);
}

TEST(CpuTiming, OneCyclePerInstruction)
{
    Runner run(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        addi r3, r0, 3
        halt
    )");
    EXPECT_EQ(run.cpu->instructions(), 4u);
    EXPECT_EQ(run.cpu->cycles(), 4u);
    EXPECT_EQ(run.cpu->stallCycles(), 0u);
}

TEST(CpuTiming, LocalLoadNoStall)
{
    // Local memory loads are usable the next cycle.
    Runner run(R"(
        ldi  r1, r0, 0x100
        addi r2, r1, 1
        halt
    )");
    EXPECT_EQ(run.cpu->stallCycles(), 0u);
}

TEST(CpuTiming, ConfigurableMemLoadDelayInterlocks)
{
    CpuConfig cfg;
    cfg.memLoadUseDelay = 2;
    Runner run(R"(
        ldi  r1, r0, 0x100
        addi r2, r1, 1      ; needs r1: 2 stall cycles
        halt
    )", cfg);
    EXPECT_EQ(run.cpu->stallCycles(), 2u);
    EXPECT_EQ(run.cpu->cycles(), 5u);   // 3 instructions + 2 stalls
}

TEST(CpuTiming, IndependentWorkFillsDelay)
{
    CpuConfig cfg;
    cfg.memLoadUseDelay = 2;
    Runner run(R"(
        ldi  r1, r0, 0x100
        addi r5, r0, 1      ; independent
        addi r6, r0, 2      ; independent
        addi r2, r1, 1      ; r1 ready by now
        halt
    )", cfg);
    EXPECT_EQ(run.cpu->stallCycles(), 0u);
    EXPECT_EQ(run.cpu->cycles(), 5u);
}

TEST(CpuTiming, StoreDataInterlocks)
{
    CpuConfig cfg;
    cfg.memLoadUseDelay = 2;
    Runner run(R"(
        ldi  r1, r0, 0x100
        sti  r1, r0, 0x200  ; store data depends on the load
        halt
    )", cfg);
    EXPECT_EQ(run.cpu->stallCycles(), 2u);
}

TEST(CpuTiming, RegionAttribution)
{
    Runner run(R"(
        .region alpha
        addi r1, r0, 1
        addi r2, r0, 2
        .region beta
        addi r3, r0, 3
        .region epilogue
        halt
    )");
    (void)run;
    auto cycles = run.cpu->regionCycles();
    EXPECT_EQ(cycles.at("alpha"), 2u);
    EXPECT_EQ(cycles.at("beta"), 1u);
    auto insts = run.cpu->regionInstructions();
    EXPECT_EQ(insts.at("alpha"), 2u);
}

TEST(CpuGuards, RunawayLoopPanics)
{
    CpuConfig cfg;
    cfg.maxInstructions = 1000;
    EXPECT_THROW(Runner run(R"(
        loop:
            br loop
            nop
    )", cfg), PanicError);
}

TEST(CpuGuards, BranchInDelaySlotPanics)
{
    EXPECT_THROW(Runner run(R"(
        br a
        br a        ; branch in delay slot: architecture violation
    a:
        halt
    )"), PanicError);
}
