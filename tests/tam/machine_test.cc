#include <gtest/gtest.h>

#include <memory>

#include "common/logging.hh"
#include "tam/machine.hh"

using namespace tcpni;
using namespace tcpni::tam;

namespace
{

/** A code block whose single thread runs a callback. */
std::unique_ptr<CodeBlock>
simpleBlock(CodeBlock::Thread t, unsigned locals = 4)
{
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "simple";
    cb->numLocals = locals;
    cb->threads.push_back(std::move(t));
    return cb;
}

} // namespace

TEST(TamMachine, RunsForkedThread)
{
    Machine m;
    int hits = 0;
    auto cb = simpleBlock([&](Machine &, Frame &) { ++hits; });
    Frame &f = m.falloc(cb.get());
    m.fork(f, 0);
    m.run();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(m.stats().op(Op::ctlSwitch), 1u);
    EXPECT_EQ(m.stats().op(Op::ctlFork), 1u);
}

TEST(TamMachine, LifoOrder)
{
    Machine m;
    std::vector<int> order;
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "lifo";
    cb->numLocals = 1;
    for (int t = 0; t < 3; ++t) {
        cb->threads.push_back(
            [&order, t](Machine &, Frame &) { order.push_back(t); });
    }
    Frame &f = m.falloc(cb.get());
    m.fork(f, 0);
    m.fork(f, 1);
    m.fork(f, 2);
    m.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(TamMachine, FrameSlotsCounted)
{
    Machine m;
    auto cb = simpleBlock([](Machine &mm, Frame &f) {
        mm.frameSet(f, 0, 41);
        mm.frameSet(f, 1, mm.frameGet(f, 0) + 1);
    });
    Frame &f = m.falloc(cb.get());
    m.fork(f, 0);
    m.run();
    EXPECT_EQ(f.locals[1], 42.0);
    EXPECT_EQ(m.stats().op(Op::frameStore), 2u);
    EXPECT_EQ(m.stats().op(Op::frameLoad), 1u);
}

TEST(TamMachine, FrameSlotOutOfRangePanics)
{
    Machine m;
    auto cb = simpleBlock([](Machine &mm, Frame &f) {
        mm.frameSet(f, 99, 1);
    });
    Frame &f = m.falloc(cb.get());
    m.fork(f, 0);
    EXPECT_THROW(m.run(), PanicError);
}

TEST(TamMachine, SyncCounterEnablesAtZero)
{
    Machine m;
    int fired = 0;
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "sync";
    cb->numLocals = 1;
    cb->threads.push_back([&](Machine &, Frame &) { ++fired; });
    Frame &f = m.falloc(cb.get());
    m.frameSet(f, 0, 3);
    m.syncDec(f, 0, 0);
    m.syncDec(f, 0, 0);
    EXPECT_EQ(fired, 0);
    m.syncDec(f, 0, 0);
    m.run();
    EXPECT_EQ(fired, 1);
}

TEST(TamMachine, SyncUnderflowPanics)
{
    Machine m;
    auto cb = simpleBlock([](Machine &, Frame &) {});
    Frame &f = m.falloc(cb.get());
    m.frameSet(f, 0, 1);
    m.syncDec(f, 0, 0);     // reaches zero: fires
    EXPECT_THROW(m.syncDec(f, 0, 0), PanicError);
}

TEST(TamMachine, SendInvokesInlet)
{
    Machine m;
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "recv";
    cb->numLocals = 2;
    cb->inlets.push_back(
        [](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.frameSet(f, 0, vals.at(0));
            mm.frameSet(f, 1, vals.at(1));
        });
    Frame &f = m.falloc(cb.get());
    m.send(m.cont(f, 0), {7, 8});
    EXPECT_EQ(f.locals[0], 7.0);
    EXPECT_EQ(f.locals[1], 8.0);
    EXPECT_EQ(m.stats().msg(MsgKind::send2), 1u);
}

TEST(TamMachine, SendWordCountClassifies)
{
    Machine m;
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "recv";
    cb->numLocals = 1;
    cb->inlets.push_back(
        [](Machine &, Frame &, const std::vector<Value> &) {});
    Frame &f = m.falloc(cb.get());
    m.send(m.cont(f, 0), {});
    m.send(m.cont(f, 0), {1});
    m.send(m.cont(f, 0), {1, 2});
    EXPECT_EQ(m.stats().msg(MsgKind::send0), 1u);
    EXPECT_EQ(m.stats().msg(MsgKind::send1), 1u);
    EXPECT_EQ(m.stats().msg(MsgKind::send2), 1u);
    EXPECT_THROW(m.send(m.cont(f, 0), {1, 2, 3}), PanicError);
}

TEST(TamMachine, FreedFramePanicsOnUse)
{
    Machine m;
    auto cb = simpleBlock([](Machine &, Frame &) {});
    Frame &f = m.falloc(cb.get());
    uint32_t id = f.id();
    m.ffree(f);
    EXPECT_THROW(m.frame(id), PanicError);
    EXPECT_THROW(m.ffree(f), PanicError);
    EXPECT_EQ(m.liveFrames(), 0u);
}

TEST(TamIStruct, FullFetchRepliesImmediately)
{
    Machine m;
    ArrayRef a = m.heapAlloc(4);
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "reader";
    cb->numLocals = 1;
    cb->inlets.push_back(
        [](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.frameSet(f, 0, vals.at(0));
        });
    Frame &f = m.falloc(cb.get());

    m.istore(a, 2, 3.5);
    m.ifetch(a, 2, m.cont(f, 0));
    EXPECT_EQ(f.locals[0], 3.5);
    EXPECT_EQ(m.stats().msg(MsgKind::preadFull), 1u);
    EXPECT_EQ(m.stats().msg(MsgKind::pwrite), 1u);
    EXPECT_EQ(m.stats().replies, 1u);
}

TEST(TamIStruct, EmptyFetchDefersUntilStore)
{
    Machine m;
    ArrayRef a = m.heapAlloc(4);
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "reader";
    cb->numLocals = 2;
    cb->inlets.push_back(
        [](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.frameSet(f, 0, vals.at(0));
            mm.frameSet(f, 1, 1);   // arrived flag
        });
    Frame &f = m.falloc(cb.get());

    m.ifetch(a, 0, m.cont(f, 0));
    EXPECT_EQ(f.locals[1], 0.0);
    EXPECT_EQ(m.stats().msg(MsgKind::preadEmpty), 1u);

    m.istore(a, 0, 9.25);
    EXPECT_EQ(f.locals[0], 9.25);
    EXPECT_EQ(f.locals[1], 1.0);
    EXPECT_EQ(m.stats().pwriteWithDeferred, 1u);
    EXPECT_EQ(m.stats().pwriteReleases, 1u);
}

TEST(TamIStruct, DeferredClassification)
{
    Machine m;
    ArrayRef a = m.heapAlloc(1);
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "reader";
    cb->numLocals = 1;
    cb->inlets.push_back(
        [](Machine &, Frame &, const std::vector<Value> &) {});
    Frame &f = m.falloc(cb.get());

    m.ifetch(a, 0, m.cont(f, 0));   // empty
    m.ifetch(a, 0, m.cont(f, 0));   // deferred
    m.ifetch(a, 0, m.cont(f, 0));   // deferred
    EXPECT_EQ(m.stats().msg(MsgKind::preadEmpty), 1u);
    EXPECT_EQ(m.stats().msg(MsgKind::preadDeferred), 2u);

    m.istore(a, 0, 1);
    EXPECT_EQ(m.stats().pwriteReleases, 3u);
    EXPECT_EQ(m.stats().replies, 3u);
}

TEST(TamCells, ReadWriteRoundTrip)
{
    Machine m;
    CellRef c = m.cellAlloc(5);
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "tally";
    cb->numLocals = 1;
    cb->inlets.push_back(
        [](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.frameSet(f, 0, vals.at(0));
        });
    Frame &f = m.falloc(cb.get());

    m.remoteRead(c, m.cont(f, 0));
    EXPECT_EQ(f.locals[0], 5.0);
    m.remoteWrite(c, 6);
    EXPECT_EQ(m.cellValue(c), 6.0);
    EXPECT_EQ(m.stats().msg(MsgKind::read), 1u);
    EXPECT_EQ(m.stats().msg(MsgKind::write), 1u);
}

TEST(TamStatsTest, TotalMessagesIncludesReplies)
{
    Machine m;
    ArrayRef a = m.heapAlloc(1);
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "x";
    cb->numLocals = 1;
    cb->inlets.push_back(
        [](Machine &, Frame &, const std::vector<Value> &) {});
    Frame &f = m.falloc(cb.get());
    m.istore(a, 0, 1);
    m.ifetch(a, 0, m.cont(f, 0));
    // pwrite + pread_full + 1 reply = 3 network messages.
    EXPECT_EQ(m.stats().totalMessages(), 3u);
}

TEST(TamMachine, RunawayGuard)
{
    MachineConfig cfg;
    cfg.maxSteps = 1000;
    Machine m(cfg);
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "loop";
    cb->numLocals = 1;
    cb->threads.push_back([](Machine &mm, Frame &f) {
        mm.iop(10);
        mm.fork(f, 0);      // forever
    });
    Frame &f = m.falloc(cb.get());
    m.fork(f, 0);
    EXPECT_THROW(m.run(), PanicError);
}
