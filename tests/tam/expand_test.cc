#include <gtest/gtest.h>

#include "ni/model_registry.hh"
#include "tam/expand.hh"

using namespace tcpni;
using namespace tcpni::tam;

namespace
{

/** Shared measured costs (deterministic, measured once). */
const CommCosts &
costs(size_t model_idx)
{
    static std::array<std::unique_ptr<CommCosts>, 6> cache;
    if (!cache[model_idx]) {
        cache[model_idx] = std::make_unique<CommCosts>(
            measureCommCosts(ni::paperModels()[model_idx]));
    }
    return *cache[model_idx];
}

} // namespace

TEST(Expand, PureWorkHasNoCommComponent)
{
    TamStats s{};
    s.ops[static_cast<size_t>(Op::iop)] = 100;
    s.ops[static_cast<size_t>(Op::fop)] = 50;
    Figure12Bar bar = expand(s, costs(0));
    EXPECT_GT(bar.work, 0);
    EXPECT_EQ(bar.dispatch, 0);
    EXPECT_EQ(bar.otherComm, 0);
}

TEST(Expand, WorkIsModelIndependent)
{
    TamStats s{};
    s.ops[static_cast<size_t>(Op::iop)] = 1000;
    s.msgs[static_cast<size_t>(MsgKind::send1)] = 10;
    double w0 = expand(s, costs(0)).work;
    for (size_t i = 1; i < 6; ++i)
        EXPECT_DOUBLE_EQ(expand(s, costs(i)).work, w0);
}

TEST(Expand, EveryMessagePaysOneDispatch)
{
    TamStats s{};
    s.msgs[static_cast<size_t>(MsgKind::send0)] = 7;
    Figure12Bar bar = expand(s, costs(0));
    EXPECT_DOUBLE_EQ(bar.dispatch, 7 * costs(0).dispatch);
}

TEST(Expand, RepliesPayDispatchAndSend1Processing)
{
    TamStats a{}, b{};
    a.msgs[static_cast<size_t>(MsgKind::read)] = 1;
    b.msgs[static_cast<size_t>(MsgKind::read)] = 1;
    b.replies = 1;
    const CommCosts &c = costs(0);
    Figure12Bar ba = expand(a, c), bb = expand(b, c);
    EXPECT_DOUBLE_EQ(bb.dispatch - ba.dispatch, c.dispatch);
    EXPECT_DOUBLE_EQ(bb.otherComm - ba.otherComm, c.procSend1);
}

TEST(Expand, PWriteDeferredUsesLinearCost)
{
    TamStats s{};
    s.msgs[static_cast<size_t>(MsgKind::pwrite)] = 1;
    s.pwriteWithDeferred = 1;
    s.pwriteReleases = 5;
    const CommCosts &c = costs(0);
    Figure12Bar bar = expand(s, c);
    double expected = c.sendPWrite + c.procPWriteDefBase +
                      5 * c.procPWriteDefSlope;
    EXPECT_DOUBLE_EQ(bar.otherComm, expected);
}

TEST(Expand, SendingComponentSubsetOfOtherComm)
{
    TamStats s{};
    s.msgs[static_cast<size_t>(MsgKind::send2)] = 3;
    s.msgs[static_cast<size_t>(MsgKind::write)] = 2;
    Figure12Bar bar = expand(s, costs(2));
    EXPECT_GT(bar.sending, 0);
    EXPECT_LE(bar.sending, bar.otherComm);
}

TEST(Expand, ModelOrderingOnMixedTraffic)
{
    // Any nontrivial traffic must rank: opt-reg cheapest comm, basic
    // off-chip most expensive.
    TamStats s{};
    s.msgs[static_cast<size_t>(MsgKind::send1)] = 100;
    s.msgs[static_cast<size_t>(MsgKind::read)] = 50;
    s.msgs[static_cast<size_t>(MsgKind::preadFull)] = 200;
    s.msgs[static_cast<size_t>(MsgKind::pwrite)] = 30;
    s.replies = 250;

    double prev = 0;
    // Within each family, comm cost rises with placement distance.
    for (size_t i : {0u, 1u, 2u}) {
        Figure12Bar b = expand(s, costs(i));
        EXPECT_GT(b.dispatch + b.otherComm, prev);
        prev = b.dispatch + b.otherComm;
    }
    double opt_off = prev;
    prev = 0;
    for (size_t i : {3u, 4u, 5u}) {
        Figure12Bar b = expand(s, costs(i));
        EXPECT_GT(b.dispatch + b.otherComm, prev);
        prev = b.dispatch + b.otherComm;
    }
    // Claim B at the comm level: even basic register-mapped comm is
    // costlier than optimized off-chip comm.
    Figure12Bar basic_reg = expand(s, costs(3));
    EXPECT_GT(basic_reg.dispatch + basic_reg.otherComm, opt_off * 0.9);
}

TEST(Expand, WorkCostModelDefaultsPositive)
{
    WorkCostModel w = WorkCostModel::default88100();
    for (size_t i = 0; i < static_cast<size_t>(Op::numOps); ++i)
        EXPECT_GT(w.cost[i], 0) << opName(static_cast<Op>(i));
}

TEST(Expand, OffChipDelayRaisesOffChipCommOnly)
{
    TamStats s{};
    s.msgs[static_cast<size_t>(MsgKind::read)] = 100;
    s.replies = 100;

    CommCosts off2 = measureCommCosts(
        ni::paperModels()[2].withOffchipDelay(2));
    CommCosts off8 = measureCommCosts(
        ni::paperModels()[2].withOffchipDelay(8));
    CommCosts reg2 = measureCommCosts(
        ni::paperModels()[0].withOffchipDelay(2));
    CommCosts reg8 = measureCommCosts(
        ni::paperModels()[0].withOffchipDelay(8));

    double c_off2 = expand(s, off2).dispatch + expand(s, off2).otherComm;
    double c_off8 = expand(s, off8).dispatch + expand(s, off8).otherComm;
    double c_reg2 = expand(s, reg2).dispatch + expand(s, reg2).otherComm;
    double c_reg8 = expand(s, reg8).dispatch + expand(s, reg8).otherComm;

    EXPECT_GT(c_off8, c_off2 * 1.3);
    EXPECT_DOUBLE_EQ(c_reg2, c_reg8);
}
