/**
 * @file
 * Differential property test for the event kernel: randomized
 * (tick, priority) event streams -- including in-process()
 * reschedules, deschedules, and cross-scheduling -- are driven
 * through both EventQueue implementations (the calendar/bucket queue
 * and the reference binary heap), which must produce bit-identical
 * firing orders.  The corpus forces same-tick/same-priority ties,
 * far-future overflow traffic, ring-window boundary crossings, and
 * maxTick edges.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "sim/event_queue.hh"

using namespace tcpni;

namespace
{

struct World;

class FuzzEvent : public Event
{
  public:
    FuzzEvent(World &w, int id, int pri)
        : Event(pri), world_(w), id_(id)
    {}

    void process() override;
    std::string name() const override
    {
        return "fuzz" + std::to_string(id_);
    }

  private:
    World &world_;
    int id_;
};

/** One queue implementation plus its identically-seeded decision
 *  stream and firing log. */
struct World
{
    World(EventQueue::Impl impl, uint64_t seed, size_t nevents,
          size_t budget)
        : eq(impl), rng(seed), budget_(budget)
    {
        // Priority pool: the simulator's bands plus odd stragglers,
        // repeated so same-priority ties are common.
        static const int pris[] = {10, 10, 20, 30, 50, 50, 90, 7, 50};
        for (size_t i = 0; i < nevents; ++i) {
            events.push_back(std::make_unique<FuzzEvent>(
                *this, static_cast<int>(i),
                pris[i % (sizeof(pris) / sizeof(pris[0]))]));
        }
    }

    ~World()
    {
        for (auto &ev : events)
            if (ev->scheduled())
                eq.deschedule(ev.get());
    }

    /** Initial schedule: clustered near ticks (ties), sprinkled
     *  across the ring window edge and deep into overflow range. */
    void
    seedSchedule()
    {
        for (auto &ev : events) {
            uint32_t bucket = rng.uniform(0, 9);
            Tick when;
            if (bucket < 5)
                when = rng.uniform(0, 8);           // heavy ties
            else if (bucket < 7)
                when = rng.uniform(0, 2000);        // window span
            else if (bucket < 9)
                when = 1020 + rng.uniform(0, 8);    // ring boundary
            else
                when = 100000 + rng.uniform(0, 500); // far overflow
            eq.schedule(ev.get(), when);
        }
    }

    bool
    spendBudget()
    {
        if (budget_ == 0)
            return false;
        --budget_;
        return true;
    }

    EventQueue eq;
    Random rng;
    std::vector<std::unique_ptr<FuzzEvent>> events;
    std::vector<std::pair<int, Tick>> log;

  private:
    size_t budget_;
};

void
FuzzEvent::process()
{
    World &w = world_;
    w.log.emplace_back(id_, w.eq.curTick());

    if (!w.spendBudget())
        return;     // drain: stop generating new work

    Tick now = w.eq.curTick();
    uint32_t action = w.rng.uniform(0, 9);
    if (action < 4) {
        // Reschedule self: same tick, near future, or past the ring
        // window into the overflow heap.
        static const Tick deltas[] = {0, 1, 3, 40, 1023, 1024, 1025,
                                      5000};
        w.eq.schedule(this, now + deltas[w.rng.uniform(0, 7)]);
    } else if (action < 7) {
        // Schedule an idle peer (possibly for the current tick, which
        // must fire later this tick in seq order).
        FuzzEvent &p = *w.events[w.rng.uniform(
            0, static_cast<uint32_t>(w.events.size()) - 1)];
        if (!p.scheduled())
            w.eq.schedule(&p, now + w.rng.uniform(0, 6));
    } else if (action < 9) {
        // Deschedule a random scheduled peer (stale-entry pressure).
        FuzzEvent &p = *w.events[w.rng.uniform(
            0, static_cast<uint32_t>(w.events.size()) - 1)];
        if (&p != this && p.scheduled())
            w.eq.deschedule(&p);
    } else {
        // Deschedule + immediately reschedule (seq bump).
        FuzzEvent &p = *w.events[w.rng.uniform(
            0, static_cast<uint32_t>(w.events.size()) - 1)];
        if (&p != this && p.scheduled())
            w.eq.reschedule(&p, now + w.rng.uniform(0, 100));
    }
}

/** Drive both worlds with an identical interleaving of bounded run()
 *  and step() calls, then compare every observable. */
void
runDifferential(uint64_t seed, size_t nevents, size_t budget)
{
    World cal(EventQueue::Impl::calendar, seed, nevents, budget);
    World heap(EventQueue::Impl::binaryHeap, seed, nevents, budget);
    cal.seedSchedule();
    heap.seedSchedule();

    // Shared driver decisions from a third stream.
    Random driver(seed ^ 0xdecafbadULL);
    while (!cal.eq.empty() || !heap.eq.empty()) {
        uint32_t mode = driver.uniform(0, 3);
        if (mode == 0) {
            // A few single steps.
            unsigned steps = driver.uniform(1, 5);
            for (unsigned i = 0; i < steps; ++i) {
                bool a = cal.eq.step();
                bool b = heap.eq.step();
                ASSERT_EQ(a, b);
            }
        } else if (mode == 1) {
            // Bounded run ending between events (max_tick edges).
            Tick bound = cal.eq.curTick() + driver.uniform(0, 1500);
            cal.eq.run(bound);
            heap.eq.run(bound);
        } else {
            cal.eq.run();
            heap.eq.run();
        }
        ASSERT_EQ(cal.eq.curTick(), heap.eq.curTick());
        ASSERT_EQ(cal.eq.size(), heap.eq.size());
        ASSERT_EQ(cal.log.size(), heap.log.size());
    }

    EXPECT_EQ(cal.log, heap.log);
    EXPECT_EQ(cal.eq.numProcessed(), heap.eq.numProcessed());
    EXPECT_GT(cal.eq.numProcessed(), nevents);  // reschedules happened
}

} // namespace

class EventKernelFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EventKernelFuzz, CalendarMatchesHeapExactly)
{
    runDifferential(GetParam(), 40, 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventKernelFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           0xdeadbeefULL,
                                           0x1234567890ULL));

TEST(EventKernelEdge, MaxTickEventsFire)
{
    // maxTick is a legal schedule target; the calendar queue must park
    // it in the overflow heap (the ring window saturates) and still
    // fire it last, in (priority, seq) order.
    for (auto impl :
         {EventQueue::Impl::calendar, EventQueue::Impl::binaryHeap}) {
        EventQueue eq(impl);
        std::vector<int> order;
        LambdaEvent near([&] { order.push_back(0); });
        LambdaEvent atMax1([&] { order.push_back(1); },
                           Event::defaultPri);
        LambdaEvent atMax2([&] { order.push_back(2); },
                           Event::networkPri);
        eq.schedule(&near, 10);
        eq.schedule(&atMax1, maxTick);
        eq.schedule(&atMax2, maxTick);
        eq.run();
        EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
        EXPECT_EQ(eq.curTick(), maxTick);
        EXPECT_TRUE(eq.empty());
    }
}

TEST(EventKernelEdge, BoundedRunStopsBeforeLaterEvents)
{
    // run(max_tick) must not fire events past the bound, must not
    // advance curTick to the bound, and must resume correctly -- both
    // for ring-window events and overflow events.
    for (auto impl :
         {EventQueue::Impl::calendar, EventQueue::Impl::binaryHeap}) {
        EventQueue eq(impl);
        std::vector<int> order;
        LambdaEvent a([&] { order.push_back(0); });
        LambdaEvent b([&] { order.push_back(1); });
        LambdaEvent c([&] { order.push_back(2); });
        eq.schedule(&a, 100);
        eq.schedule(&b, 2000);      // beyond the first ring window
        eq.schedule(&c, 100000);    // overflow
        EXPECT_EQ(eq.run(99), 0u);
        EXPECT_TRUE(order.empty());
        EXPECT_EQ(eq.run(100), 100u);
        EXPECT_EQ(order, (std::vector<int>{0}));
        EXPECT_EQ(eq.run(99999), 2000u);
        EXPECT_EQ(order, (std::vector<int>{0, 1}));
        eq.run();
        EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
        EXPECT_EQ(eq.curTick(), 100000u);
    }
}

TEST(EventKernelEdge, RingBoundaryTies)
{
    // Events straddling the 1024-tick ring boundary with equal
    // priorities keep insertion order per tick.
    for (auto impl :
         {EventQueue::Impl::calendar, EventQueue::Impl::binaryHeap}) {
        EventQueue eq(impl);
        std::vector<int> order;
        std::vector<std::unique_ptr<LambdaEvent>> evs;
        // Interleave schedule ticks 1023, 1024, 1025 repeatedly; all
        // equal priority, so per-tick order must follow seq.
        for (int i = 0; i < 12; ++i) {
            evs.push_back(std::make_unique<LambdaEvent>(
                [&order, i] { order.push_back(i); }));
            eq.schedule(evs.back().get(),
                        1023 + static_cast<Tick>(i % 3));
        }
        eq.run();
        std::vector<int> expect{0, 3, 6, 9, 1, 4, 7, 10, 2, 5, 8, 11};
        EXPECT_EQ(order, expect);
    }
}
