#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "sim/event_queue.hh"

using namespace tcpni;

namespace
{

struct Recorder : public Event
{
    Recorder(std::vector<int> &log, int id, int pri = Event::defaultPri)
        : Event(pri), log_(log), id_(id)
    {}
    void process() override { log_.push_back(id_); }
    std::string name() const override
    {
        return "rec" + std::to_string(id_);
    }

    std::vector<int> &log_;
    int id_;
};

} // namespace

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.schedule(&c, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityWithinTick)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder lo(log, 1, Event::cpuPri);
    Recorder hi(log, 2, Event::networkPri);
    eq.schedule(&lo, 5);
    eq.schedule(&hi, 5);
    eq.run();
    // Lower priority value fires first.
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, ScheduleInPastPanics)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.run();
    EXPECT_THROW(eq.schedule(&b, 5), PanicError);
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), PanicError);
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, DescheduleUnscheduledPanics)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    EXPECT_THROW(eq.deschedule(&a), PanicError);
}

TEST(EventQueue, Reschedule)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 30);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RescheduleAfterSquashReuses)
{
    // Deschedule then reschedule the same event: the squashed heap
    // entry must not cause a double fire.
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.schedule(&a, 10);
    eq.deschedule(&a);
    eq.schedule(&a, 15);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.numProcessed(), 1u);
}

TEST(EventQueue, SelfRescheduling)
{
    EventQueue eq;

    struct Ticker : public Event
    {
        EventQueue &eq;
        int count = 0;
        explicit Ticker(EventQueue &q) : eq(q) {}
        void process() override
        {
            if (++count < 5)
                eq.schedule(this, eq.curTick() + 2);
        }
    } t(eq);

    eq.schedule(&t, 0);
    eq.run();
    EXPECT_EQ(t.count, 5);
    EXPECT_EQ(eq.curTick(), 8u);
}

TEST(EventQueue, RunWithMaxTick)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 100);
    eq.run(50);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, StepOne)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(log.size(), 1u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, LambdaEvent)
{
    EventQueue eq;
    int hits = 0;
    LambdaEvent ev([&] { ++hits; });
    eq.schedule(&ev, 3);
    eq.run();
    EXPECT_EQ(hits, 1);
}

TEST(EventQueue, SizeTracksScheduled)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    EXPECT_TRUE(eq.empty());
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
}
