#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sweep.hh"

using namespace tcpni;

TEST(SweepRunner, DefaultJobsAtLeastOne)
{
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
    EXPECT_EQ(SweepRunner().jobs(), SweepRunner::defaultJobs());
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunner, RunsEveryTaskExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        const size_t n = 100;
        std::vector<std::atomic<int>> hits(n);
        SweepRunner(jobs).run(n, [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
}

TEST(SweepRunner, MapPreservesIndexOrder)
{
    // Results must land by index regardless of completion order.
    SweepRunner sweep(4);
    std::vector<int> out = sweep.map<int>(
        50, [](size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 50u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(SweepRunner, SerialAndParallelResultsIdentical)
{
    auto fn = [](size_t i) {
        // A task with some index-dependent arithmetic.
        uint64_t h = i * 0x9e3779b97f4a7c15ULL;
        h ^= h >> 31;
        return std::to_string(h);
    };
    std::vector<std::string> serial =
        SweepRunner(1).map<std::string>(64, fn);
    std::vector<std::string> parallel =
        SweepRunner(4).map<std::string>(64, fn);
    EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, ZeroTasksIsANoop)
{
    int hits = 0;
    SweepRunner(4).run(0, [&](size_t) { ++hits; });
    EXPECT_EQ(hits, 0);
}

TEST(SweepRunner, SingleJobRunsInline)
{
    // jobs == 1 must execute on the calling thread in index order
    // (exact serial semantics, needed by --trace runs).
    std::vector<size_t> order;
    SweepRunner(1).run(10, [&](size_t i) { order.push_back(i); });
    std::vector<size_t> expect(10);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(SweepRunner, TaskExceptionPropagates)
{
    for (unsigned jobs : {1u, 4u}) {
        SweepRunner sweep(jobs);
        EXPECT_THROW(sweep.run(8,
                               [](size_t i) {
                                   if (i == 3)
                                       throw std::runtime_error("boom");
                               }),
                     std::runtime_error);
    }
}

TEST(SweepRunner, MoreTasksThanJobs)
{
    std::atomic<int> sum{0};
    SweepRunner(2).run(1000, [&](size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}
