/**
 * @file
 * The experiment driver's crash-resilience contract: when an
 * experiment's run() throws (a panic in throw mode), the driver must
 * still flush a valid, closed-bracket Chrome trace and the metrics
 * JSON/CSV before reporting failure -- the run that died is exactly
 * the one worth inspecting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"
#include "sim/event_queue.hh"
#include "sim/experiment.hh"

namespace tcpni::exp
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Net brace/bracket depth outside strings: 0 means every opened
 *  scope was closed (the "valid closed-bracket JSON" contract). */
long
jsonDepth(const std::string &s)
{
    long depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
    }
    return in_string ? -1 : depth;
}

/** An experiment that records one lifecycle event, registers one
 *  metric counter, then dies mid-run. */
ExperimentRegistry
boomRegistry()
{
    ExperimentRegistry reg;
    reg.add({
        "boom",
        "aborts mid-run",
        {},
        false,
        true,  // --trace
        [](const Context &ctx) -> int {
            auto ms = ctx.taskMetrics(0, "doomed");
            EventQueue eq;
            std::shared_ptr<metrics::Group> group;
            uint64_t progress = 21;
            if (auto *r = metrics::registry()) {
                group = r->addGroup("victim", eq);
                group->addCounter("progress",
                                  [&progress] { return progress; });
            }
            if (auto *s = trace::sink()) {
                s->record(7, trace::Stage::inject, 0, 100, 2);
                s->record(7, trace::Stage::arrive, 1, 140, 2);
            }
            if (group)
                group->retire();
            panic("simulated mid-run failure");
        },
    });
    return reg;
}

int
runBoom(const std::vector<std::string> &flags)
{
    ExperimentRegistry reg = boomRegistry();
    std::vector<char *> argv;
    std::vector<std::string> storage = flags;
    for (std::string &f : storage)
        argv.push_back(f.data());
    bool saved_quiet = logging::quiet;
    int rc = runExperiment(reg, "boom",
                           static_cast<int>(argv.size()), argv.data());
    logging::quiet = saved_quiet;
    return rc;
}

TEST(ExperimentAbort, TraceStillClosedValidJson)
{
    const std::string path = "abort_trace_test.json";
    std::remove(path.c_str());
    int rc = runBoom({"--trace", path});
    EXPECT_EQ(rc, 1);

    std::string trace = slurp(path);
    ASSERT_FALSE(trace.empty()) << "trace was not flushed";
    // Structurally valid: everything opened is closed, and the
    // recorded events made it in.
    EXPECT_EQ(jsonDepth(trace), 0);
    EXPECT_EQ(trace.substr(0, 1), "{");
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"network\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(ExperimentAbort, MetricsStillFlushed)
{
    const std::string base = "abort_metrics_test";
    std::remove((base + ".json").c_str());
    std::remove((base + ".csv").c_str());
    int rc = runBoom({"--metrics-out", base});
    EXPECT_EQ(rc, 1);

    std::string json = slurp(base + ".json");
    ASSERT_FALSE(json.empty()) << "metrics were not flushed";
    EXPECT_EQ(jsonDepth(json), 0);
    EXPECT_NE(json.find("\"schema\":\"tcpni-metrics-1\""),
              std::string::npos);
    // The doomed task's partial counters were deposited on unwind.
    EXPECT_NE(json.find("\"label\":\"doomed\""), std::string::npos);
    EXPECT_NE(json.find("\"progress\":21"), std::string::npos);

    std::string csv = slurp(base + ".csv");
    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "label,sim,tick,metric,value");
    std::remove((base + ".json").c_str());
    std::remove((base + ".csv").c_str());
}

TEST(ExperimentAbort, ExitCodeWithoutSinks)
{
    // No --trace, no --metrics: the error still converts to exit
    // code 1 instead of escaping as an exception.
    EXPECT_EQ(runBoom({}), 1);
}

} // namespace
} // namespace tcpni::exp
