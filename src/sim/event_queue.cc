#include "sim/event_queue.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace tcpni
{

Event::~Event()
{
    // Callers must deschedule an event before destroying it; the queue
    // cannot detect the violation here without risking a throw from a
    // destructor.
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    tcpni_assert(ev != nullptr);
    if (ev->scheduled_)
        panic("event '%s' scheduled twice", ev->name().c_str());
    if (when < curTick_) {
        panic("event '%s' scheduled in the past (%llu < %llu)",
              ev->name().c_str(),
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    }
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    heap_.push(Entry{when, ev->priority_, ev->seq_, ev});
    ++nscheduled_;
}

void
EventQueue::deschedule(Event *ev)
{
    tcpni_assert(ev != nullptr);
    if (!ev->scheduled_)
        panic("deschedule of unscheduled event '%s'", ev->name().c_str());
    // Lazy deletion: the heap entry becomes stale (its seq no longer
    // matches once the event is rescheduled, and scheduled_ is false
    // until then).
    ev->scheduled_ = false;
    --nscheduled_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled())
        deschedule(ev);
    schedule(ev, when);
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (!live(e))
            continue;
        curTick_ = e.when;
        e.ev->scheduled_ = false;
        --nscheduled_;
        ++numProcessed_;
        TCPNI_TRACE_AT(EVENT, e.when, "eventq", "fire %s pri=%d",
                       e.ev->name().c_str(), e.priority);
        e.ev->process();
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick max_tick)
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (!live(top)) {
            heap_.pop();
            continue;
        }
        if (top.when > max_tick)
            break;
        Entry e = top;
        heap_.pop();
        curTick_ = e.when;
        e.ev->scheduled_ = false;
        --nscheduled_;
        ++numProcessed_;
        TCPNI_TRACE_AT(EVENT, e.when, "eventq", "fire %s pri=%d",
                       e.ev->name().c_str(), e.priority);
        e.ev->process();
    }
    return curTick_;
}

} // namespace tcpni
