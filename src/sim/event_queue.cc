#include "sim/event_queue.hh"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/logging.hh"
#include "common/trace.hh"

namespace tcpni
{

namespace evprof
{

namespace
{
thread_local bool tl_enabled = false;
thread_local Profile tl_profile;
} // namespace

void
setEnabled(bool on)
{
    tl_enabled = on;
}

bool
enabled()
{
    return tl_enabled;
}

Profile
take()
{
    Profile out = std::move(tl_profile);
    tl_profile.clear();
    return out;
}

void
detail::account(const std::string &type, double seconds)
{
    TypeStats &s = tl_profile[type];
    ++s.count;
    s.seconds += seconds;
}

} // namespace evprof

namespace
{
/** Allocator for EventQueue::queueId(): 1-based, never reused. */
std::atomic<uint64_t> nextQueueId{1};
} // namespace

Event::~Event()
{
    // Callers must deschedule an event before destroying it; the queue
    // cannot detect the violation here without risking a throw from a
    // destructor.
}

EventQueue::EventQueue(Impl impl)
    : impl_(impl), queueId_(nextQueueId.fetch_add(1)),
      profile_(evprof::enabled())
{
    if (impl_ == Impl::calendar)
        ring_.resize(ringSize_);
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    tcpni_assert(ev != nullptr);
    if (ev->scheduled_)
        panic("event '%s' scheduled twice", ev->name().c_str());
    if (when < curTick_) {
        panic("event '%s' scheduled in the past (%llu < %llu)",
              ev->name().c_str(),
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    }
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    Entry e{when, ev->priority_, ev->seq_, ev};
    if (impl_ == Impl::binaryHeap)
        heap_.push(e);
    else if (when < windowEnd())
        ringInsert(e);
    else
        overflow_.push(e);
    ++nscheduled_;
}

void
EventQueue::deschedule(Event *ev)
{
    tcpni_assert(ev != nullptr);
    if (!ev->scheduled_)
        panic("deschedule of unscheduled event '%s'", ev->name().c_str());
    // Lazy deletion: the stored entry becomes stale (its seq no longer
    // matches once the event is rescheduled, and scheduled_ is false
    // until then).
    ev->scheduled_ = false;
    --nscheduled_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled())
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::ringInsert(const Entry &e)
{
    std::vector<Entry> &b = ring_[e.when & ringMask_];
    b.push_back(e);
    std::push_heap(b.begin(), b.end(), BucketCmp{});
    ++ringCount_;
}

void
EventQueue::pruneBucket(std::vector<Entry> &b)
{
    while (!b.empty() && !live(b.front())) {
        std::pop_heap(b.begin(), b.end(), BucketCmp{});
        b.pop_back();
        --ringCount_;
    }
}

bool
EventQueue::popNextHeap(Tick bound, Entry &out)
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (!live(top)) {
            heap_.pop();
            continue;
        }
        if (top.when > bound)
            return false;
        out = top;
        heap_.pop();
        curTick_ = out.when;
        return true;
    }
    return false;
}

bool
EventQueue::popNextCalendar(Tick bound, Entry &out)
{
    // Migrate overflow entries whose tick has entered the ring window.
    while (!overflow_.empty()) {
        const Entry &top = overflow_.top();
        if (!live(top)) {
            overflow_.pop();
            continue;
        }
        if (top.when >= windowEnd())
            break;
        ringInsert(top);
        overflow_.pop();
    }

    // Scan the window from the current tick; every slot before the
    // next live entry holds only stale entries, which the prune
    // empties in passing (this keeps the one-tick-per-bucket
    // invariant as the window slides forward).
    const Tick end = windowEnd();
    for (Tick t = curTick_; t < end && ringCount_ > 0; ++t) {
        // Anything at t > bound stays put (the overflow minimum is
        // >= windowEnd() > bound here, so it cannot be next either).
        if (t > bound)
            return false;
        std::vector<Entry> &b = ring_[t & ringMask_];
        pruneBucket(b);
        if (b.empty())
            continue;
        out = b.front();
        std::pop_heap(b.begin(), b.end(), BucketCmp{});
        b.pop_back();
        --ringCount_;
        curTick_ = t;
        return true;
    }

    // The window is clear: the overflow top (if any) is the global
    // minimum, beyond the window by at least a full ring.
    while (!overflow_.empty()) {
        const Entry &top = overflow_.top();
        if (!live(top)) {
            overflow_.pop();
            continue;
        }
        if (top.when > bound)
            return false;
        out = top;
        overflow_.pop();
        curTick_ = out.when;
        return true;
    }
    return false;
}

bool
EventQueue::popNext(Tick bound, Entry &out)
{
    return impl_ == Impl::binaryHeap ? popNextHeap(bound, out)
                                     : popNextCalendar(bound, out);
}

void
EventQueue::fire(const Entry &e)
{
    e.ev->scheduled_ = false;
    --nscheduled_;
    ++numProcessed_;
    TCPNI_TRACE_AT(EVENT, e.when, "eventq", "fire %s pri=%d",
                   e.ev->name().c_str(), e.priority);
    if (profile_) {
        // Take the name first: process() may invalidate the event.
        std::string type = e.ev->name();
        auto start = std::chrono::steady_clock::now();
        e.ev->process();
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start;
        evprof::detail::account(type, dt.count());
        return;
    }
    e.ev->process();
}

bool
EventQueue::step()
{
    Entry e;
    if (!popNext(maxTick, e))
        return false;
    fire(e);
    return true;
}

Tick
EventQueue::run(Tick max_tick)
{
    Entry e;
    while (popNext(max_tick, e))
        fire(e);
    return curTick_;
}

} // namespace tcpni
