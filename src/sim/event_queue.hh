/**
 * @file
 * The discrete-event kernel.
 *
 * A single EventQueue orders Events by (tick, priority, insertion
 * sequence).  Events scheduled for the same tick and priority fire in
 * the order they were scheduled, which keeps multi-node simulations
 * deterministic.
 *
 * Two interchangeable internal implementations provide exactly the
 * same firing order:
 *
 *  - Impl::calendar (the default): a two-tier calendar queue.  A ring
 *    of per-tick buckets covers the near future
 *    [curTick, curTick + ringSize); events beyond the window go to an
 *    overflow binary heap and migrate into the ring as time advances.
 *    Most simulator events are scheduled a handful of ticks ahead, so
 *    scheduling and firing are O(1) amortized instead of O(log n).
 *
 *  - Impl::binaryHeap: the classic std::priority_queue kernel.  Kept
 *    selectable so differential property tests can check the calendar
 *    path against it, and for A/B host-performance measurements.
 *
 * Each EventQueue also allocates the message trace ids for its
 * simulation (see nextTraceId()), so independent simulations -- e.g.
 * parameter sweeps fanned across worker threads -- produce identical,
 * reproducible id sequences with no shared state.
 */

#ifndef TCPNI_SIM_EVENT_QUEUE_HH
#define TCPNI_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tcpni
{

class EventQueue;

/**
 * Host-side event-kernel self-profiling.
 *
 * When enabled on a thread (before its EventQueues are constructed),
 * every queue times each Event::process() call with the host's steady
 * clock and attributes the wall time to the event's name().  The
 * accumulated per-type profile is thread-local; take() moves it out.
 * Intended for BENCH_host-style runs only -- the per-event name()
 * call and clock reads are far too slow to leave on by default, which
 * is why each queue latches the flag once at construction.
 */
namespace evprof
{

struct TypeStats
{
    uint64_t count = 0;
    double seconds = 0;
};

using Profile = std::map<std::string, TypeStats>;

/** Enable or disable profiling for queues later constructed on this
 *  thread. */
void setEnabled(bool on);
bool enabled();

/** Move out (and clear) this thread's accumulated profile. */
Profile take();

namespace detail
{
void account(const std::string &type, double seconds);
} // namespace detail

} // namespace evprof

/**
 * An event that can be scheduled on an EventQueue.
 *
 * Subclasses override process().  An event may be rescheduled from
 * within its own process() method.  Events are externally owned; the
 * queue never deletes them.
 */
class Event
{
  public:
    /** Default priority bands; lower fires first within a tick. */
    enum Priority : int
    {
        networkPri = 10,
        niPri = 20,
        cpuPri = 30,
        defaultPri = 50,
        statsPri = 90,
    };

    explicit Event(int priority = defaultPri) : priority_(priority) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called when the event fires. */
    virtual void process() = 0;

    /** A name for tracing and error messages. */
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    /** Sequence number of the latest schedule() of this event; heap
     *  entries carrying an older number are stale and skipped. */
    uint64_t seq_ = 0;
    int priority_;
    bool scheduled_ = false;
};

/** A convenience Event wrapping a std::function callback. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = defaultPri)
        : Event(priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }
    std::string name() const override { return "lambda-event"; }

  private:
    std::function<void()> fn_;
};

/** The global event queue for one simulation. */
class EventQueue
{
  public:
    /** Selectable internal ordering structure; both produce the same
     *  firing order. */
    enum class Impl
    {
        calendar,       //!< per-tick bucket ring + overflow heap
        binaryHeap,     //!< single std::priority_queue
    };

    explicit EventQueue(Impl impl = Impl::calendar);

    Impl impl() const { return impl_; }

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p ev at absolute tick @p when.
     * Scheduling in the past, or double-scheduling, is a simulator bug.
     */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event; it will not fire. */
    void deschedule(Event *ev);

    /** Deschedule (if needed) and reschedule at a new time. */
    void reschedule(Event *ev, Tick when);

    /** True when no events remain. */
    bool empty() const { return nscheduled_ == 0; }

    /** Number of scheduled (non-squashed) events. */
    size_t size() const { return nscheduled_; }

    /**
     * Run until the queue empties or @p max_tick passes.
     * @return the tick of the last processed event.
     */
    Tick run(Tick max_tick = maxTick);

    /** Process exactly one event, if any. @return true if one fired. */
    bool step();

    /** Total number of events processed so far. */
    uint64_t numProcessed() const { return numProcessed_; }

    /**
     * Allocate the next message trace id of this simulation
     * (monotonic, starts at 1; 0 means untagged).  Per-queue so that
     * every run of the same configuration yields the same id
     * sequence, even when many simulations execute concurrently.
     */
    uint64_t nextTraceId() { return nextTraceId_++; }

    /**
     * Process-unique id of this queue (monotonic, never reused).
     * Lets observers distinguish "a new simulation started" from "the
     * same stack slot was reused for another EventQueue", which raw
     * addresses cannot.  The id is never part of simulation output,
     * so its process-global allocation order does not perturb
     * determinism.
     */
    uint64_t queueId() const { return queueId_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        uint64_t seq;
        Event *ev;
    };

    struct Cmp
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** Min-heap order for same-tick bucket entries. */
    struct BucketCmp
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** True when a popped heap entry still refers to a live schedule. */
    static bool
    live(const Entry &e)
    {
        return e.ev->scheduled_ && e.ev->seq_ == e.seq;
    }

    /** Ticks covered by the near-future bucket ring (power of two). */
    static constexpr size_t ringSize_ = 1024;
    static constexpr Tick ringMask_ = ringSize_ - 1;

    /** Exclusive upper tick of the ring window, saturating at
     *  maxTick so the window never wraps. */
    Tick
    windowEnd() const
    {
        return curTick_ > maxTick - ringSize_ ? maxTick
                                              : curTick_ + ringSize_;
    }

    void ringInsert(const Entry &e);

    /** Drop stale entries from the top of @p b. */
    void pruneBucket(std::vector<Entry> &b);

    /**
     * Extract the next live entry with when <= @p bound into @p out.
     * @return false if none exists (events beyond @p bound stay put).
     * On success curTick_ has been advanced to the entry's tick.
     */
    bool popNext(Tick bound, Entry &out);
    bool popNextHeap(Tick bound, Entry &out);
    bool popNextCalendar(Tick bound, Entry &out);

    void fire(const Entry &e);

    Impl impl_;
    uint64_t queueId_;
    /** Latched evprof::enabled() at construction (hot-path guard). */
    bool profile_;
    Tick curTick_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t numProcessed_ = 0;
    uint64_t nextTraceId_ = 1;
    size_t nscheduled_ = 0;

    // --- Impl::binaryHeap state.
    std::priority_queue<Entry, std::vector<Entry>, Cmp> heap_;

    // --- Impl::calendar state.  Bucket t & ringMask_ holds the
    // entries of tick t; all ring entries satisfy
    // curTick_ <= when < windowEnd().  Buckets are BucketCmp
    // min-heaps.  ringCount_ counts physical ring entries, stale
    // included.
    std::vector<std::vector<Entry>> ring_;
    size_t ringCount_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Cmp> overflow_;
};

} // namespace tcpni

#endif // TCPNI_SIM_EVENT_QUEUE_HH
