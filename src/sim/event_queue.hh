/**
 * @file
 * The discrete-event kernel.
 *
 * A single EventQueue orders Events by (tick, priority, insertion
 * sequence).  Events scheduled for the same tick and priority fire in
 * the order they were scheduled, which keeps multi-node simulations
 * deterministic.
 */

#ifndef TCPNI_SIM_EVENT_QUEUE_HH
#define TCPNI_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tcpni
{

class EventQueue;

/**
 * An event that can be scheduled on an EventQueue.
 *
 * Subclasses override process().  An event may be rescheduled from
 * within its own process() method.  Events are externally owned; the
 * queue never deletes them.
 */
class Event
{
  public:
    /** Default priority bands; lower fires first within a tick. */
    enum Priority : int
    {
        networkPri = 10,
        niPri = 20,
        cpuPri = 30,
        defaultPri = 50,
        statsPri = 90,
    };

    explicit Event(int priority = defaultPri) : priority_(priority) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called when the event fires. */
    virtual void process() = 0;

    /** A name for tracing and error messages. */
    virtual std::string name() const { return "anon-event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    /** Sequence number of the latest schedule() of this event; heap
     *  entries carrying an older number are stale and skipped. */
    uint64_t seq_ = 0;
    int priority_;
    bool scheduled_ = false;
};

/** A convenience Event wrapping a std::function callback. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = defaultPri)
        : Event(priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }
    std::string name() const override { return "lambda-event"; }

  private:
    std::function<void()> fn_;
};

/** The global event queue for one simulation. */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /**
     * Schedule @p ev at absolute tick @p when.
     * Scheduling in the past, or double-scheduling, is a simulator bug.
     */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event; it will not fire. */
    void deschedule(Event *ev);

    /** Deschedule (if needed) and reschedule at a new time. */
    void reschedule(Event *ev, Tick when);

    /** True when no events remain. */
    bool empty() const { return nscheduled_ == 0; }

    /** Number of scheduled (non-squashed) events. */
    size_t size() const { return nscheduled_; }

    /**
     * Run until the queue empties or @p max_tick passes.
     * @return the tick of the last processed event.
     */
    Tick run(Tick max_tick = maxTick);

    /** Process exactly one event, if any. @return true if one fired. */
    bool step();

    /** Total number of events processed so far. */
    uint64_t numProcessed() const { return numProcessed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        uint64_t seq;
        Event *ev;
    };

    struct Cmp
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** True when a popped heap entry still refers to a live schedule. */
    static bool
    live(const Entry &e)
    {
        return e.ev->scheduled_ && e.ev->seq_ == e.seq;
    }

    Tick curTick_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t numProcessed_ = 0;
    size_t nscheduled_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Cmp> heap_;
};

} // namespace tcpni

#endif // TCPNI_SIM_EVENT_QUEUE_HH
