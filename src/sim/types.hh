/**
 * @file
 * Fundamental simulation types.
 */

#ifndef TCPNI_SIM_TYPES_HH
#define TCPNI_SIM_TYPES_HH

#include <cstdint>

namespace tcpni
{

/** Simulated time, in processor clock cycles. */
using Tick = uint64_t;

/** A count of cycles (durations). */
using Cycles = uint64_t;

/** Sentinel for "no tick". */
constexpr Tick maxTick = ~0ULL;

/** A word of simulated 32-bit architectural state. */
using Word = uint32_t;

/** A local byte address within one node's memory. */
using Addr = uint32_t;

/** A node number in the machine. */
using NodeId = uint32_t;

} // namespace tcpni

#endif // TCPNI_SIM_TYPES_HH
