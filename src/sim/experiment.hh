/**
 * @file
 * The experiment framework: one place for everything the benchmark
 * drivers used to copy-paste — CLI parsing, SweepRunner job selection,
 * message-lifecycle trace gating, and JSON output plumbing.
 *
 * An experiment is a named definition: a description, the parameters
 * it accepts, whether it supports --json / --trace, and a run
 * function.  Definitions register in an ExperimentRegistry; the
 * shared driver (`tcpni_bench <name> [flags]`) and the thin
 * compatibility wrappers (`table1`, `figure12`, ...) both dispatch
 * through runExperiment(), so every experiment gets uniform
 * `--jobs/--json/--trace` handling for free.
 *
 * Invariants the driver maintains (matching the legacy binaries
 * byte-for-byte):
 *  - `--trace FILE` installs a thread-local lifecycle sink and forces
 *    --jobs 1 before run() starts; after run() returns, the driver
 *    writes the Chrome trace and prints the standard epilogue line.
 *  - logging::quiet is set for the duration of the run.
 *  - Context::writeJson() opens the --json file (fatal on failure),
 *    invokes the writer, and prints the standard epilogue line.
 *  - `--metrics` (or `--metrics-out` / `--sample-interval`, which
 *    imply it) creates a metrics::Collector for the run; experiments
 *    opt their sweep tasks in with Context::taskMetrics().  After
 *    run() returns -- or throws -- the driver writes BASE.json and
 *    BASE.csv in the "tcpni-metrics-1" schema.  With metrics off the
 *    collector is null and every instrumentation site reduces to one
 *    null-pointer test, keeping stdout and JSON bit-identical.
 *  - run() is exception-guarded: a SimError escaping an experiment
 *    still flushes the Chrome trace (valid, closed JSON) and the
 *    metrics files before the driver reports the error and returns 1.
 */

#ifndef TCPNI_SIM_EXPERIMENT_HH
#define TCPNI_SIM_EXPERIMENT_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/types.hh"

namespace tcpni
{
namespace exp
{

/** One experiment-specific CLI parameter. */
struct ParamSpec
{
    std::string flag;       //!< e.g. "--n"
    std::string valueName;  //!< metavar for help; empty for switches
    std::string help;
    std::string def;        //!< default value (ignored for switches)
    bool isSwitch = false;  //!< boolean flag taking no value
};

/** Parsed invocation handed to an experiment's run function. */
class Context
{
  public:
    unsigned jobs = 0;      //!< --jobs (0: hardware concurrency)
    std::string jsonFile;   //!< --json FILE ("" when absent)
    std::string traceFile;  //!< --trace FILE ("" when absent)

    /** Run-wide telemetry accumulator; null unless --metrics (or a
     *  flag implying it) was given. */
    metrics::Collector *metricsCollector = nullptr;

    /**
     * Begin telemetry for sweep slot @p slot labelled @p label.
     * Declare the returned scope FIRST in the task body, before any
     * simulation objects, so it outlives (and thus observes the
     * retirement of) everything it registers.  Inert when metrics are
     * off.
     */
    metrics::TaskScope taskMetrics(size_t slot,
                                   std::string label) const;

    /** Parameter value by flag (e.g. "--n"); default when unset. */
    const std::string &str(const std::string &flag) const;
    long num(const std::string &flag) const;
    bool on(const std::string &flag) const;     //!< switch given?

    /** Was the parameter explicitly passed on the command line? */
    bool given(const std::string &flag) const;

    /**
     * If --json was given: open the file (fatal on failure), hand the
     * stream to @p writer, then print the standard
     * "wrote JSON results to FILE" epilogue.  No-op otherwise.
     */
    void writeJson(
        const std::function<void(std::ostream &)> &writer) const;

    std::map<std::string, std::string> values;
    std::set<std::string> explicitFlags;
};

/** A registered experiment definition. */
struct Experiment
{
    std::string name;
    std::string description;
    std::vector<ParamSpec> params;
    bool acceptsJson = false;
    bool acceptsTrace = false;
    std::function<int(const Context &)> run;
};

class ExperimentRegistry
{
  public:
    /** Register @p e; fatal()s on a duplicate name. */
    void add(Experiment e);

    const Experiment *find(const std::string &name) const;
    const std::vector<Experiment> &all() const { return entries_; }

  private:
    std::vector<Experiment> entries_;
};

/**
 * Parse @p argv (flags only, the experiment name already consumed)
 * against @p name's definition and run it with shared
 * --jobs/--json/--trace handling.  Returns the process exit code;
 * unknown flags or a missing experiment report an error and return 1.
 */
int runExperiment(const ExperimentRegistry &reg,
                  const std::string &name, int argc, char **argv);

/**
 * Full driver entry point for `tcpni_bench`: argv[1] selects the
 * experiment ("list" / --list prints the registry), remaining flags
 * go to runExperiment().
 */
int driverMain(const ExperimentRegistry &reg, int argc, char **argv);

} // namespace exp
} // namespace tcpni

#endif // TCPNI_SIM_EXPERIMENT_HH
