#include "sim/experiment.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "common/logging.hh"
#include "common/trace.hh"
#include "metrics/metrics.hh"

namespace tcpni
{
namespace exp
{

namespace
{

const ParamSpec *
findParam(const Experiment &e, const char *flag)
{
    for (const ParamSpec &p : e.params) {
        if (p.flag == flag)
            return &p;
    }
    return nullptr;
}

void
printUsage(const Experiment &e, const char *prog)
{
    std::fprintf(stderr, "usage: %s %s [flags]\n  %s\n", prog,
                 e.name.c_str(), e.description.c_str());
    std::fprintf(stderr,
                 "  --jobs N       worker threads (default: hardware "
                 "concurrency)\n");
    std::fprintf(stderr,
                 "  --metrics      collect performance-counter "
                 "telemetry\n"
                 "  --metrics-out BASE\n"
                 "                 telemetry file base: writes "
                 "BASE.json + BASE.csv\n"
                 "                 (default: <json file>.metrics, or "
                 "'metrics'; implies --metrics)\n"
                 "  --sample-interval N\n"
                 "                 time-series sample period in ticks, "
                 "0 disables\n"
                 "                 (default 1024; implies --metrics)\n");
    if (e.acceptsJson)
        std::fprintf(stderr, "  --json FILE    write results as JSON\n");
    if (e.acceptsTrace) {
        std::fprintf(stderr,
                     "  --trace FILE   write a Chrome trace of the "
                     "kernel messages (forces --jobs 1)\n");
    }
    for (const ParamSpec &p : e.params) {
        std::string left = p.flag;
        if (!p.valueName.empty())
            left += " " + p.valueName;
        std::fprintf(stderr, "  %-14s %s%s\n", left.c_str(),
                     p.help.c_str(),
                     p.def.empty() || p.isSwitch
                         ? ""
                         : (" (default " + p.def + ")").c_str());
    }
}

} // namespace

const std::string &
Context::str(const std::string &flag) const
{
    auto it = values.find(flag);
    if (it == values.end())
        panic("experiment read undeclared parameter '%s'", flag.c_str());
    return it->second;
}

long
Context::num(const std::string &flag) const
{
    return std::atol(str(flag).c_str());
}

bool
Context::on(const std::string &flag) const
{
    return str(flag) == "1";
}

bool
Context::given(const std::string &flag) const
{
    return explicitFlags.count(flag) != 0;
}

metrics::TaskScope
Context::taskMetrics(size_t slot, std::string label) const
{
    // TaskScope tolerates a null collector (inert scope), so the
    // metrics-off path costs one pointer store per task.
    return metrics::TaskScope(metricsCollector, slot, std::move(label));
}

void
Context::writeJson(
    const std::function<void(std::ostream &)> &writer) const
{
    if (jsonFile.empty())
        return;
    std::ofstream os(jsonFile);
    if (!os)
        fatal("cannot open --json file '%s'", jsonFile.c_str());
    writer(os);
    std::cout << "\nwrote JSON results to " << jsonFile << "\n";
}

void
ExperimentRegistry::add(Experiment e)
{
    if (find(e.name))
        fatal("experiment registry: duplicate name '%s'", e.name.c_str());
    entries_.push_back(std::move(e));
}

const Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    for (const Experiment &e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

int
runExperiment(const ExperimentRegistry &reg, const std::string &name,
              int argc, char **argv)
{
    const Experiment *e = reg.find(name);
    if (!e) {
        std::fprintf(stderr, "unknown experiment '%s'\n", name.c_str());
        return 1;
    }

    Context ctx;
    for (const ParamSpec &p : e->params)
        ctx.values[p.flag] = p.isSwitch ? "0" : p.def;

    bool metrics_on = false;
    std::string metrics_out;
    Tick sample_interval = 1024;

    for (int i = 0; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--jobs") && i + 1 < argc) {
            ctx.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (!std::strcmp(a, "--metrics")) {
            metrics_on = true;
        } else if (!std::strcmp(a, "--metrics-out") && i + 1 < argc) {
            metrics_out = argv[++i];
            metrics_on = true;
        } else if (!std::strcmp(a, "--sample-interval") &&
                   i + 1 < argc) {
            sample_interval =
                static_cast<Tick>(std::strtoull(argv[++i], nullptr, 10));
            metrics_on = true;
        } else if (e->acceptsJson && !std::strcmp(a, "--json") &&
                   i + 1 < argc) {
            ctx.jsonFile = argv[++i];
        } else if (e->acceptsTrace && !std::strcmp(a, "--trace") &&
                   i + 1 < argc) {
            ctx.traceFile = argv[++i];
        } else if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            printUsage(*e, "tcpni_bench");
            return 0;
        } else if (const ParamSpec *p = findParam(*e, a)) {
            if (p->isSwitch) {
                ctx.values[p->flag] = "1";
            } else if (i + 1 < argc) {
                ctx.values[p->flag] = argv[++i];
            } else {
                std::fprintf(stderr, "%s needs a value\n", a);
                return 1;
            }
            ctx.explicitFlags.insert(p->flag);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", a);
            printUsage(*e, "tcpni_bench");
            return 1;
        }
    }

    trace::TraceSink lifecycle_sink;
    if (!ctx.traceFile.empty()) {
        // The lifecycle sink is thread-local: tracing needs every
        // simulation on this thread.
        trace::setSink(&lifecycle_sink);
        ctx.jobs = 1;
    }

    std::unique_ptr<metrics::Collector> collector;
    if (metrics_on) {
        if (metrics_out.empty()) {
            metrics_out = ctx.jsonFile.empty()
                              ? "metrics"
                              : ctx.jsonFile + ".metrics";
        }
        collector =
            std::make_unique<metrics::Collector>(sample_interval);
        ctx.metricsCollector = collector.get();
    }

    logging::quiet = true;

    // Run under an exception guard: a SimError escaping the experiment
    // (a panic in throw mode) must not lose the telemetry gathered so
    // far -- in particular the Chrome trace must still be valid,
    // closed JSON so the run that died is the one you can inspect.
    int rc = 0;
    std::string error;
    try {
        rc = e->run(ctx);
    } catch (const SimError &err) {
        error = err.what();
        rc = 1;
    }

    if (!ctx.traceFile.empty()) {
        trace::setSink(nullptr);
        std::ofstream os(ctx.traceFile);
        if (!os)
            fatal("cannot open --trace file '%s'", ctx.traceFile.c_str());
        lifecycle_sink.writeChromeTrace(os);
        std::cout << "wrote Chrome trace ("
                  << lifecycle_sink.completeLifecycles()
                  << " complete message lifecycles) to " << ctx.traceFile
                  << "\n";
    }

    if (collector) {
        const std::string json_path = metrics_out + ".json";
        const std::string csv_path = metrics_out + ".csv";
        std::ofstream js(json_path);
        if (!js)
            fatal("cannot open metrics file '%s'", json_path.c_str());
        collector->writeJson(js);
        std::ofstream cs(csv_path);
        if (!cs)
            fatal("cannot open metrics file '%s'", csv_path.c_str());
        collector->writeCsv(cs);
        std::cout << "wrote metrics telemetry to " << json_path
                  << " and " << csv_path << "\n";
    }

    if (!error.empty()) {
        std::fprintf(stderr, "experiment '%s' aborted: %s\n",
                     e->name.c_str(), error.c_str());
    }
    return rc;
}

int
driverMain(const ExperimentRegistry &reg, int argc, char **argv)
{
    auto list = [&] {
        std::printf("registered experiments:\n");
        for (const Experiment &e : reg.all())
            std::printf("  %-16s %s\n", e.name.c_str(),
                        e.description.c_str());
        std::printf("\nrun one with: tcpni_bench <name> [flags] "
                    "(--help for per-experiment flags)\n");
    };
    if (argc < 2 || !std::strcmp(argv[1], "list") ||
        !std::strcmp(argv[1], "--list") ||
        !std::strcmp(argv[1], "--help") || !std::strcmp(argv[1], "-h")) {
        list();
        return argc < 2 ? 1 : 0;
    }
    if (!reg.find(argv[1])) {
        std::fprintf(stderr, "unknown experiment '%s'\n\n", argv[1]);
        list();
        return 1;
    }
    return runExperiment(reg, argv[1], argc - 2, argv + 2);
}

} // namespace exp
} // namespace tcpni
