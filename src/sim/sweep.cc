#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace tcpni
{

unsigned
SweepRunner::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{}

void
SweepRunner::run(std::size_t n,
                 const std::function<void(std::size_t)> &task) const
{
    using clock = std::chrono::steady_clock;
    using seconds = std::chrono::duration<double>;

    lastStats_ = RunStats{};
    lastStats_.tasks = n;
    if (n == 0)
        return;

    const auto run_start = clock::now();

    if (jobs_ == 1 || n == 1) {
        lastStats_.workers = 1;
        lastStats_.claimed.assign(1, 0);
        lastStats_.busySeconds.assign(1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto t0 = clock::now();
            task(i);
            lastStats_.busySeconds[0] +=
                seconds(clock::now() - t0).count();
            ++lastStats_.claimed[0];
        }
        lastStats_.wallSeconds =
            seconds(clock::now() - run_start).count();
        return;
    }

    // Work-stealing by atomic index: workers pull the next unclaimed
    // point.  Each task writes only its own result slot (the caller's
    // closure indexes by i), so completion order is irrelevant.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errMutex;
    std::size_t firstErrIndex = n;
    std::exception_ptr firstErr;

    const unsigned nthreads =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n));
    lastStats_.workers = nthreads;
    lastStats_.claimed.assign(nthreads, 0);
    lastStats_.busySeconds.assign(nthreads, 0);

    auto worker = [&](unsigned wi) {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            ++lastStats_.claimed[wi];
            const auto t0 = clock::now();
            try {
                task(i);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(errMutex);
                if (i < firstErrIndex) {
                    firstErrIndex = i;
                    firstErr = std::current_exception();
                }
            }
            lastStats_.busySeconds[wi] +=
                seconds(clock::now() - t0).count();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(worker, t);
    for (std::thread &t : pool)
        t.join();

    lastStats_.wallSeconds = seconds(clock::now() - run_start).count();

    if (firstErr)
        std::rethrow_exception(firstErr);
}

} // namespace tcpni
