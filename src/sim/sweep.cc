#include "sim/sweep.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace tcpni
{

unsigned
SweepRunner::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{}

void
SweepRunner::run(std::size_t n,
                 const std::function<void(std::size_t)> &task) const
{
    if (n == 0)
        return;

    if (jobs_ == 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        return;
    }

    // Work-stealing by atomic index: workers pull the next unclaimed
    // point.  Each task writes only its own result slot (the caller's
    // closure indexes by i), so completion order is irrelevant.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex errMutex;
    std::size_t firstErrIndex = n;
    std::exception_ptr firstErr;

    auto worker = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                task(i);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(errMutex);
                if (i < firstErrIndex) {
                    firstErrIndex = i;
                    firstErr = std::current_exception();
                }
            }
        }
    };

    const unsigned nthreads =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n));
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (firstErr)
        std::rethrow_exception(firstErr);
}

} // namespace tcpni
