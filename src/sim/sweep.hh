/**
 * @file
 * The parallel experiment engine.
 *
 * The paper's evaluation sweeps (Table 1, Figure 12, the off-chip
 * latency sensitivity) are embarrassingly parallel: every (interface
 * model, parameter point) pair simulates an independent System with
 * its own EventQueue.  SweepRunner fans such independent points
 * across a pool of std::threads with *deterministic result ordering*:
 * results land in slots indexed by point, so the output is
 * bit-identical to a serial run no matter how many workers raced.
 *
 * Determinism contract for tasks: a task may touch only its own
 * simulation state (its System / EventQueue / harness).  The
 * simulator's process-global knobs (logging::quiet, trace flags) must
 * not be written while a sweep runs; the lifecycle trace sink and
 * stream are thread-local, so a task that wants tracing installs its
 * own sink inside the task body.
 */

#ifndef TCPNI_SIM_SWEEP_HH
#define TCPNI_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace tcpni
{

class SweepRunner
{
  public:
    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /** The host's hardware concurrency, at least 1. */
    static unsigned defaultJobs();

    /**
     * Execute task(0) ... task(n-1), each exactly once, across the
     * worker pool; blocks until all complete.  With jobs() == 1 (or
     * n <= 1) the tasks run inline on the calling thread in index
     * order -- exact serial semantics.
     *
     * On a task exception the pool stops claiming new points, drains
     * the in-flight ones, and rethrows the lowest-indexed recorded
     * failure.  (With jobs() == 1 that is exactly the first failure,
     * serial-style.)
     */
    void run(std::size_t n, const std::function<void(std::size_t)> &task) const;

    /**
     * Map variant: collect task results into a vector ordered by
     * index, independent of completion order.  T must be default
     * constructible.
     */
    template <typename T>
    std::vector<T>
    map(std::size_t n, const std::function<T(std::size_t)> &fn) const
    {
        std::vector<T> out(n);
        run(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    unsigned jobs_;
};

} // namespace tcpni

#endif // TCPNI_SIM_SWEEP_HH
