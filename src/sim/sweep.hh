/**
 * @file
 * The parallel experiment engine.
 *
 * The paper's evaluation sweeps (Table 1, Figure 12, the off-chip
 * latency sensitivity) are embarrassingly parallel: every (interface
 * model, parameter point) pair simulates an independent System with
 * its own EventQueue.  SweepRunner fans such independent points
 * across a pool of std::threads with *deterministic result ordering*:
 * results land in slots indexed by point, so the output is
 * bit-identical to a serial run no matter how many workers raced.
 *
 * Determinism contract for tasks: a task may touch only its own
 * simulation state (its System / EventQueue / harness).  The
 * simulator's process-global knobs (logging::quiet, trace flags) must
 * not be written while a sweep runs; the lifecycle trace sink and
 * stream are thread-local, so a task that wants tracing installs its
 * own sink inside the task body.
 */

#ifndef TCPNI_SIM_SWEEP_HH
#define TCPNI_SIM_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace tcpni
{

class SweepRunner
{
  public:
    /**
     * Host-side accounting of the last run(): how evenly the atomic
     * work claiming spread the points across the pool, and how much
     * of each worker's lifetime was spent inside tasks (the rest is
     * claim overhead plus idling after the work ran out).  Feeds the
     * BENCH_host self-profile; never touches simulated state.
     */
    struct RunStats
    {
        unsigned workers = 0;            //!< threads used (1 = inline)
        std::size_t tasks = 0;           //!< points executed
        std::vector<uint64_t> claimed;   //!< tasks claimed per worker
        std::vector<double> busySeconds; //!< in-task time per worker
        double wallSeconds = 0;          //!< whole-run wall time
    };

    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);

    /** Accounting for the most recent run() (empty before any run). */
    const RunStats &lastRunStats() const { return lastStats_; }

    unsigned jobs() const { return jobs_; }

    /** The host's hardware concurrency, at least 1. */
    static unsigned defaultJobs();

    /**
     * Execute task(0) ... task(n-1), each exactly once, across the
     * worker pool; blocks until all complete.  With jobs() == 1 (or
     * n <= 1) the tasks run inline on the calling thread in index
     * order -- exact serial semantics.
     *
     * On a task exception the pool stops claiming new points, drains
     * the in-flight ones, and rethrows the lowest-indexed recorded
     * failure.  (With jobs() == 1 that is exactly the first failure,
     * serial-style.)
     */
    void run(std::size_t n, const std::function<void(std::size_t)> &task) const;

    /**
     * Map variant: collect task results into a vector ordered by
     * index, independent of completion order.  T must be default
     * constructible.
     */
    template <typename T>
    std::vector<T>
    map(std::size_t n, const std::function<T(std::size_t)> &fn) const
    {
        std::vector<T> out(n);
        run(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    unsigned jobs_;
    /** run() is logically const (the sweep configuration does not
     *  change); the accounting is a host-side side channel. */
    mutable RunStats lastStats_;
};

} // namespace tcpni

#endif // TCPNI_SIM_SWEEP_HH
