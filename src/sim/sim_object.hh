/**
 * @file
 * Base class for named simulation components.
 */

#ifndef TCPNI_SIM_SIM_OBJECT_HH
#define TCPNI_SIM_SIM_OBJECT_HH

#include <string>

#include "common/stats.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace tcpni
{

/**
 * A named component attached to an event queue.
 *
 * SimObjects expose a StatGroup for their counters and share the
 * simulation's EventQueue.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eventq_(eventQueueRef(eq)),
          statGroup_(name_)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    EventQueue &eventq() { return eventq_; }
    Tick curTick() const { return eventq_.curTick(); }

    stats::StatGroup &statGroup() { return statGroup_; }
    const stats::StatGroup &statGroup() const { return statGroup_; }

  private:
    static EventQueue &eventQueueRef(EventQueue &eq) { return eq; }

    std::string name_;
    EventQueue &eventq_;
    stats::StatGroup statGroup_;
};

} // namespace tcpni

#endif // TCPNI_SIM_SIM_OBJECT_HH
