#include "metrics/sampler.hh"

#include "metrics/metrics.hh"

namespace tcpni
{
namespace metrics
{

Sampler::Sampler(const std::string &name, EventQueue &eq,
                 Registry &owner, uint64_t queue_id, Tick interval)
    : SimObject(name, eq), owner_(owner), queueId_(queue_id),
      interval_(interval),
      sampleEvent_([this] { fire(); }, Event::statsPri)
{
    group_ = owner_.addGroup(name, eq);
    group_->addCounter("processed", [this] { return processed_; },
                       "events processed (as of last sample)");
    group_->addGauge("size", [this] { return qsize_; },
                     "scheduled events (as of last sample)");
    eventq().schedule(&sampleEvent_, curTick() + interval_);
}

Sampler::~Sampler()
{
    // Deliberately no deschedule: the owning Registry outlives the
    // simulation, so the queue (and any still-pending sample event
    // entry) is already gone by the time the Sampler is destroyed.
    if (group_)
        group_->retire();
}

void
Sampler::fire()
{
    qsize_ = eventq().size();
    processed_ = eventq().numProcessed();
    owner_.sampleNow(queueId_, curTick());
    // Reschedule only while the simulation still has work: the
    // sampler must never keep the queue from draining.
    if (!eventq().empty())
        eventq().schedule(&sampleEvent_, curTick() + interval_);
}

} // namespace metrics
} // namespace tcpni
