#include "metrics/metrics.hh"

#include <algorithm>

#include "common/stats.hh"
#include "metrics/sampler.hh"
#include "sim/event_queue.hh"

namespace tcpni
{
namespace metrics
{

namespace
{

thread_local Registry *tl_registry = nullptr;

} // namespace

Registry *
registry()
{
    return tl_registry;
}

void
setRegistry(Registry *r)
{
    tl_registry = r;
}

// ---------------------------------------------------------------- Group

void
Group::add(Kind kind, const std::string &name,
           std::function<uint64_t()> read, const Histogram *hist,
           const std::string &desc)
{
    Series s;
    s.kind = kind;
    s.name = name;
    s.desc = desc;
    s.id = owner_->internSeries(name_ + "." + name);
    s.read = std::move(read);
    s.live = hist;
    series_.push_back(std::move(s));
}

void
Group::addCounter(const std::string &name,
                  std::function<uint64_t()> read,
                  const std::string &desc)
{
    add(Kind::counter, name, std::move(read), nullptr, desc);
}

void
Group::addGauge(const std::string &name, std::function<uint64_t()> read,
                const std::string &desc)
{
    add(Kind::gauge, name, std::move(read), nullptr, desc);
}

void
Group::addHistogram(const std::string &name, const Histogram *hist,
                    const std::string &desc)
{
    add(Kind::histogram, name, nullptr, hist, desc);
}

void
Group::retire()
{
    if (retired_)
        return;
    retired_ = true;
    for (Series &s : series_) {
        switch (s.kind) {
          case Kind::counter:
          case Kind::gauge:
            if (s.read) {
                s.value = s.read();
                if (s.kind == Kind::gauge && s.value > s.peak)
                    s.peak = s.value;
            }
            s.read = nullptr;
            break;
          case Kind::histogram:
            if (s.live)
                s.hist = *s.live;
            s.live = nullptr;
            break;
        }
    }
}

// -------------------------------------------------------------- Registry

Registry::Registry(Tick sample_interval) : interval_(sample_interval)
{
}

Registry::~Registry() = default;

std::shared_ptr<Group>
Registry::addGroup(const std::string &name, EventQueue &eq)
{
    uint64_t qid = eq.queueId();
    if (!haveQueue_ || qid != lastQueueId_) {
        haveQueue_ = true;
        lastQueueId_ = qid;
        ++sims_;
        // The Sampler's own constructor re-enters addGroup for its
        // "eventq" group; the queue id now matches, so it lands in
        // the plain-registration path below.
        if (interval_ > 0)
            samplers_.push_back(std::make_unique<Sampler>(
                "eventq", eq, *this, qid, interval_));
    }
    auto g = std::shared_ptr<Group>(
        new Group(this, name, sims_ - 1, qid));
    groups_.push_back(g);
    return g;
}

uint32_t
Registry::internSeries(const std::string &full_name)
{
    auto it = seriesIds_.find(full_name);
    if (it != seriesIds_.end())
        return it->second;
    uint32_t id = static_cast<uint32_t>(seriesNames_.size());
    seriesNames_.push_back(full_name);
    seriesIds_.emplace(full_name, id);
    return id;
}

void
Registry::sampleNow(uint64_t queue_id, Tick tick)
{
    for (auto &g : groups_) {
        if (g->queueId_ != queue_id || g->retired_)
            continue;
        for (Group::Series &s : g->series_) {
            if (s.kind == Kind::histogram)
                continue;
            uint64_t v = s.read ? s.read() : s.value;
            if (s.kind == Kind::gauge && v > s.peak)
                s.peak = v;
            if (rows_.size() < maxRows)
                rows_.push_back({g->sim_, tick, s.id, v});
            else
                ++droppedRows_;
        }
    }
}

TaskMetrics
Registry::finalize(std::string label)
{
    for (auto &g : groups_)
        g->retire();

    TaskMetrics out;
    out.label = std::move(label);
    out.sims = sims_;
    out.seriesNames = seriesNames_;
    out.rows = std::move(rows_);
    out.droppedRows = droppedRows_;
    rows_.clear();

    // Merge same-named groups across the task's simulations:
    // counters sum, gauges keep {last, peak}, histograms merge.
    std::map<std::string, size_t> group_index;
    for (auto &g : groups_) {
        size_t gi;
        auto it = group_index.find(g->name());
        if (it == group_index.end()) {
            gi = out.groups.size();
            group_index.emplace(g->name(), gi);
            out.groups.push_back({g->name(), {}});
        } else {
            gi = it->second;
        }
        TaskMetrics::GroupResult &mg = out.groups[gi];
        for (const Group::Series &s : g->series_) {
            TaskMetrics::SeriesResult *ms = nullptr;
            for (auto &cand : mg.series) {
                if (cand.name == s.name) {
                    ms = &cand;
                    break;
                }
            }
            if (!ms) {
                mg.series.emplace_back();
                ms = &mg.series.back();
                ms->kind = s.kind;
                ms->name = s.name;
                ms->desc = s.desc;
            }
            switch (s.kind) {
              case Kind::counter:
                ms->value += s.value;
                break;
              case Kind::gauge:
                ms->value = s.value;
                ms->peak = std::max(ms->peak, s.peak);
                break;
              case Kind::histogram:
                ms->hist.merge(s.hist);
                break;
            }
        }
    }
    return out;
}

// -------------------------------------------- Collector and TaskScope

TaskScope
Collector::task(size_t slot, std::string label)
{
    return TaskScope(this, slot, std::move(label));
}

void
Collector::deposit(size_t slot, TaskMetrics &&m)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_[slot] = std::move(m);
}

void
Collector::writeJson(std::ostream &os) const
{
    using stats::jsonEscape;
    using stats::jsonNum;

    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"schema\":\"tcpni-metrics-1\",\"sampleInterval\":"
       << interval_ << ",\"tasks\":[";
    bool first_task = true;
    for (const auto &[slot, task] : tasks_) {
        (void)slot;
        if (!first_task)
            os << ",";
        first_task = false;
        os << "\n{\"label\":\"" << jsonEscape(task.label)
           << "\",\"sims\":" << task.sims << ",\"groups\":[";
        bool first_group = true;
        for (const auto &g : task.groups) {
            if (!first_group)
                os << ",";
            first_group = false;
            os << "\n{\"name\":\"" << jsonEscape(g.name) << "\"";
            for (Kind kind : {Kind::counter, Kind::gauge,
                              Kind::histogram}) {
                os << ",\""
                   << (kind == Kind::counter
                           ? "counters"
                           : kind == Kind::gauge ? "gauges"
                                                 : "histograms")
                   << "\":{";
                bool first_series = true;
                for (const auto &s : g.series) {
                    if (s.kind != kind)
                        continue;
                    if (!first_series)
                        os << ",";
                    first_series = false;
                    os << "\"" << jsonEscape(s.name) << "\":";
                    switch (kind) {
                      case Kind::counter:
                        os << s.value;
                        break;
                      case Kind::gauge:
                        os << "{\"last\":" << s.value
                           << ",\"peak\":" << s.peak << "}";
                        break;
                      case Kind::histogram:
                        os << "{\"count\":" << s.hist.count()
                           << ",\"min\":" << s.hist.min()
                           << ",\"max\":" << s.hist.max()
                           << ",\"mean\":" << jsonNum(s.hist.mean())
                           << ",\"p50\":" << s.hist.percentile(0.50)
                           << ",\"p90\":" << s.hist.percentile(0.90)
                           << ",\"p99\":" << s.hist.percentile(0.99)
                           << ",\"p999\":"
                           << s.hist.percentile(0.999) << "}";
                        break;
                    }
                }
                os << "}";
            }
            os << "}";
        }
        os << "],\"samples\":{\"dropped\":" << task.droppedRows
           << ",\"rows\":[";
        bool first_row = true;
        for (const SampleRow &r : task.rows) {
            if (!first_row)
                os << ",";
            first_row = false;
            os << "[" << r.sim << "," << r.tick << ",\""
               << jsonEscape(task.seriesNames[r.series]) << "\","
               << r.value << "]";
        }
        os << "]}}";
    }
    os << "\n]}\n";
}

void
Collector::writeCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "label,sim,tick,metric,value\n";
    for (const auto &[slot, task] : tasks_) {
        (void)slot;
        for (const SampleRow &r : task.rows) {
            os << task.label << "," << r.sim << "," << r.tick << ","
               << task.seriesNames[r.series] << "," << r.value
               << "\n";
        }
    }
}

TaskScope::TaskScope(Collector *collector, size_t slot,
                     std::string label)
    : collector_(collector), slot_(slot), label_(std::move(label))
{
    if (!collector_)
        return;
    registry_ =
        std::make_unique<Registry>(collector_->sampleInterval());
    prev_ = registry();
    setRegistry(registry_.get());
}

TaskScope::~TaskScope()
{
    if (!registry_)
        return;
    setRegistry(prev_);
    collector_->deposit(slot_, registry_->finalize(label_));
}

} // namespace metrics
} // namespace tcpni
