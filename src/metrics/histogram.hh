/**
 * @file
 * A log-bucketed ("HDR-style") latency histogram.
 *
 * Values are non-negative integers (cycle counts).  Small values
 * (< 2^subBucketBits) land in exact unit-width buckets; larger values
 * are bucketed with 2^(subBucketBits-1) sub-buckets per power of two,
 * bounding the relative quantization error of any recorded value to
 * 1 / 2^(subBucketBits-1) (about 3% at the default 6 bits).  This is
 * the classic high-dynamic-range histogram layout: O(1) record, fixed
 * small footprint regardless of the value range, and percentiles that
 * stay accurate into the tail -- which is what the incast/tail-latency
 * experiments need and what a linear-bucket stats::Distribution cannot
 * provide.
 *
 * Exact count, sum, min and max are kept alongside the buckets, so
 * count()/mean()/min()/max() are exact even though percentiles are
 * quantized to a bucket boundary.  merge() folds another histogram in
 * (same geometry), which is how per-thread or per-simulation
 * histograms are aggregated deterministically.
 */

#ifndef TCPNI_METRICS_HISTOGRAM_HH
#define TCPNI_METRICS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcpni
{
namespace metrics
{

class Histogram
{
  public:
    /** Sub-bucket resolution: 2^6 exact unit buckets, then 32
     *  sub-buckets per power of two. */
    static constexpr unsigned subBucketBits = 6;
    static constexpr uint64_t subBucketCount = 1ull << subBucketBits;
    static constexpr uint64_t halfSubBuckets = subBucketCount / 2;

    Histogram() = default;

    /** Bucket index of @p v.  Contiguous: index 0..63 are the exact
     *  values 0..63; thereafter each power of two contributes 32
     *  buckets of width 2^(msb-5). */
    static size_t
    bucketIndex(uint64_t v)
    {
        if (v < subBucketCount)
            return static_cast<size_t>(v);
        unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(v));
        unsigned shift = msb - (subBucketBits - 1);
        return static_cast<size_t>(shift * halfSubBuckets +
                                   (v >> shift));
    }

    /** Smallest value mapping to bucket @p index. */
    static uint64_t
    bucketLow(size_t index)
    {
        if (index < subBucketCount)
            return index;
        // index = shift * 32 + sub with sub in [32, 64), so the
        // shift for a given index is index/32 - 1.
        unsigned shift =
            static_cast<unsigned>(index / halfSubBuckets) - 1;
        uint64_t sub = index % halfSubBuckets + halfSubBuckets;
        return sub << shift;
    }

    /** Largest value mapping to bucket @p index (inclusive). */
    static uint64_t
    bucketHigh(size_t index)
    {
        if (index < subBucketCount)
            return index;
        unsigned shift =
            static_cast<unsigned>(index / halfSubBuckets) - 1;
        uint64_t sub = index % halfSubBuckets + halfSubBuckets;
        return ((sub + 1) << shift) - 1;
    }

    void
    record(uint64_t v, uint64_t count = 1)
    {
        if (count == 0)
            return;
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            if (v < min_) min_ = v;
            if (v > max_) max_ = v;
        }
        count_ += count;
        sum_ += v * count;
        size_t idx = bucketIndex(v);
        if (idx >= counts_.size())
            counts_.resize(idx + 1, 0);
        counts_[idx] += count;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Nearest-rank percentile: the smallest recorded-bucket upper
     * bound covering at least ceil(q * count) samples, clamped into
     * [min, max] so exact extremes are reported exactly.  @p q is in
     * [0, 1]; returns 0 on an empty histogram.
     */
    uint64_t
    percentile(double q) const
    {
        if (count_ == 0)
            return 0;
        if (q <= 0.0)
            return min_;
        // ceil(q * count) without floating-point edge surprises for
        // q close to 1: use >= comparison against q*count directly.
        uint64_t rank = static_cast<uint64_t>(q *
                            static_cast<double>(count_));
        if (static_cast<double>(rank) <
                q * static_cast<double>(count_))
            ++rank;
        if (rank < 1)
            rank = 1;
        if (rank > count_)
            rank = count_;
        uint64_t seen = 0;
        for (size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= rank) {
                uint64_t v = bucketHigh(i);
                if (v < min_) v = min_;
                if (v > max_) v = max_;
                return v;
            }
        }
        return max_;
    }

    /** Fold @p other into this histogram. */
    void
    merge(const Histogram &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            min_ = other.min_;
            max_ = other.max_;
        } else {
            if (other.min_ < min_) min_ = other.min_;
            if (other.max_ > max_) max_ = other.max_;
        }
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.counts_.size() > counts_.size())
            counts_.resize(other.counts_.size(), 0);
        for (size_t i = 0; i < other.counts_.size(); ++i)
            counts_[i] += other.counts_[i];
    }

    void
    reset()
    {
        counts_.clear();
        count_ = sum_ = min_ = max_ = 0;
    }

    /** Raw bucket counts (index -> count), for tests and export. */
    const std::vector<uint64_t> &buckets() const { return counts_; }

  private:
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

} // namespace metrics
} // namespace tcpni

#endif // TCPNI_METRICS_HISTOGRAM_HH
