/**
 * @file
 * Hardware-style performance-counter telemetry for the simulator.
 *
 * The design has three layers:
 *
 *  - **Group / Registry** (per worker thread, per sweep task).  While
 *    a task's Registry is installed (thread-local, see registry() /
 *    setRegistry()), every instrumented SimObject constructor hangs a
 *    Group of named counters, gauges and histograms off it.  With no
 *    registry installed -- the default, and always the case when the
 *    driver runs without --metrics -- registration is a single
 *    null-pointer test and the simulation is bit-identical to an
 *    uninstrumented build.
 *
 *  - **Sampler** (one per simulation, created automatically by the
 *    Registry when a sample interval is configured).  A SimObject at
 *    statsPri that snapshots every live counter/gauge of its
 *    simulation on a fixed tick interval, producing the time-series
 *    rows behind the per-link utilization heatmap.
 *
 *  - **Collector / TaskScope** (per experiment run).  A TaskScope is
 *    an RAII guard a sweep task holds for its whole body: it installs
 *    a fresh Registry on entry and, on exit, folds the task's merged
 *    counters and sample rows into the process-wide Collector, keyed
 *    by the task's slot index so the final JSON/CSV is byte-identical
 *    whether the sweep ran serially or on N worker threads.
 *
 * Ownership and lifetime rules (the part that keeps this safe):
 * counter/gauge read functions capture their component, so a
 * component MUST call Group::retire() from its destructor; retire()
 * snapshots the final values into the Group and drops the closures.
 * The Group itself is shared_ptr-held by both the component and the
 * Registry, so either side may die first.  A TaskScope must be
 * declared BEFORE the simulation objects it observes (scope exits
 * last), so every group is retired by the time the scope aggregates.
 */

#ifndef TCPNI_METRICS_METRICS_HH
#define TCPNI_METRICS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/histogram.hh"
#include "sim/types.hh"

namespace tcpni
{

class EventQueue;

namespace metrics
{

class Registry;
class Sampler;

/** What a series measures; fixes its merge rule across simulations. */
enum class Kind : uint8_t
{
    counter,    //!< monotonic count; merged by summing
    gauge,      //!< instantaneous level; merged as {last, peak}
    histogram,  //!< latency histogram; merged by bucket addition
};

/**
 * One component's named metric series ("node0.ni" owning "sent",
 * "oq.stall_cycles", ...).  Obtained from Registry::addGroup(); the
 * component keeps the shared_ptr and calls retire() in its destructor.
 */
class Group
{
  public:
    void addCounter(const std::string &name,
                    std::function<uint64_t()> read,
                    const std::string &desc = "");
    void addGauge(const std::string &name,
                  std::function<uint64_t()> read,
                  const std::string &desc = "");
    void addHistogram(const std::string &name, const Histogram *hist,
                      const std::string &desc = "");

    /**
     * Snapshot final values and drop the read closures.  Call from
     * the owning component's destructor; idempotent.
     */
    void retire();

    bool retired() const { return retired_; }
    const std::string &name() const { return name_; }

  private:
    friend class Registry;

    Group(Registry *owner, std::string name, unsigned sim,
          uint64_t queue_id)
        : owner_(owner), name_(std::move(name)), sim_(sim),
          queueId_(queue_id)
    {}

    struct Series
    {
        Kind kind;
        std::string name;
        std::string desc;
        uint32_t id;         //!< interned "group.series" name
        std::function<uint64_t()> read;  //!< counter/gauge, until retire
        const Histogram *live = nullptr; //!< histogram, until retire
        uint64_t value = 0;  //!< counter total / gauge last
        uint64_t peak = 0;   //!< gauge: max over samples and retire
        Histogram hist;      //!< histogram snapshot at retire
    };

    void add(Kind kind, const std::string &name,
             std::function<uint64_t()> read, const Histogram *hist,
             const std::string &desc);

    Registry *owner_;
    std::string name_;
    unsigned sim_;
    uint64_t queueId_;
    bool retired_ = false;
    std::vector<Series> series_;
};

/** One time-series sample: series @p series had @p value at @p tick
 *  in simulation @p sim of the task. */
struct SampleRow
{
    uint32_t sim;
    Tick tick;
    uint32_t series;
    uint64_t value;
};

/** A task's aggregated telemetry, produced when its TaskScope exits. */
struct TaskMetrics
{
    struct SeriesResult
    {
        Kind kind;
        std::string name;
        std::string desc;
        uint64_t value = 0;  //!< counter sum / gauge last
        uint64_t peak = 0;   //!< gauge peak
        Histogram hist;      //!< histogram merge
    };

    struct GroupResult
    {
        std::string name;
        std::vector<SeriesResult> series;
    };

    std::string label;
    unsigned sims = 0;                 //!< simulations observed
    std::vector<GroupResult> groups;   //!< merged across sims by name
    std::vector<std::string> seriesNames;  //!< SampleRow::series -> name
    std::vector<SampleRow> rows;
    uint64_t droppedRows = 0;
};

/**
 * The per-task registry instrumented components register with.
 *
 * Detects simulation boundaries by EventQueue identity: the first
 * group registered against a new queue starts a new simulation index
 * and (when a sample interval is configured) spawns a Sampler on that
 * queue.
 */
class Registry
{
  public:
    /** @p sample_interval of 0 disables time-series sampling. */
    explicit Registry(Tick sample_interval);
    ~Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Register a component's metric group named @p name (the
     *  SimObject name) in the simulation owning @p eq. */
    std::shared_ptr<Group> addGroup(const std::string &name,
                                    EventQueue &eq);

    Tick sampleInterval() const { return interval_; }

    /** Called by the Sampler: record one sample of every live series
     *  of the simulation owning @p queue_id. */
    void sampleNow(uint64_t queue_id, Tick tick);

    /** Retire anything still live and aggregate across simulations.
     *  The registry is inert afterwards. */
    TaskMetrics finalize(std::string label);

  private:
    friend class Group;

    uint32_t internSeries(const std::string &full_name);

    /** Bound on stored rows so a tight sample interval on a long run
     *  cannot exhaust host memory; overflow is counted. */
    static constexpr size_t maxRows = 1u << 20;

    Tick interval_;
    bool haveQueue_ = false;
    uint64_t lastQueueId_ = 0;
    unsigned sims_ = 0;
    std::vector<std::shared_ptr<Group>> groups_;
    std::vector<std::unique_ptr<Sampler>> samplers_;
    std::vector<std::string> seriesNames_;
    std::map<std::string, uint32_t> seriesIds_;
    std::vector<SampleRow> rows_;
    uint64_t droppedRows_ = 0;
};

/**
 * This thread's installed registry, or nullptr when telemetry is off.
 * Thread-local for the same reason the trace sink is: every parallel
 * sweep worker observes only its own task's simulations, lock-free.
 */
Registry *registry();

/** Install (or, with nullptr, remove) this thread's registry. */
void setRegistry(Registry *r);

class TaskScope;

/**
 * Process-wide accumulator of per-task telemetry for one experiment
 * run.  Tasks deposit under a mutex, keyed by slot index, so output
 * order is independent of worker scheduling.
 */
class Collector
{
  public:
    explicit Collector(Tick sample_interval)
        : interval_(sample_interval)
    {}

    /** Begin telemetry for sweep slot @p slot labelled @p label.
     *  Hold the returned scope for the whole task body, declared
     *  before the task's simulation objects. */
    TaskScope task(size_t slot, std::string label);

    Tick sampleInterval() const { return interval_; }

    /**
     * Write all deposited tasks as the documented
     * "tcpni-metrics-1" JSON schema.
     */
    void writeJson(std::ostream &os) const;

    /** Write the time-series rows as long-format CSV:
     *  label,sim,tick,metric,value. */
    void writeCsv(std::ostream &os) const;

  private:
    friend class TaskScope;

    void deposit(size_t slot, TaskMetrics &&m);

    Tick interval_;
    mutable std::mutex mutex_;
    std::map<size_t, TaskMetrics> tasks_;
};

/**
 * RAII guard installing a task's Registry on this thread.  Inert when
 * created from a null collector (the --metrics-off path).
 */
class TaskScope
{
  public:
    TaskScope(Collector *collector, size_t slot, std::string label);
    ~TaskScope();

    TaskScope(const TaskScope &) = delete;
    TaskScope &operator=(const TaskScope &) = delete;

  private:
    Collector *collector_;
    size_t slot_;
    std::string label_;
    std::unique_ptr<Registry> registry_;
    Registry *prev_ = nullptr;
};

} // namespace metrics
} // namespace tcpni

#endif // TCPNI_METRICS_METRICS_HH
