/**
 * @file
 * Periodic counter snapshots for one simulation.
 *
 * The Sampler is a SimObject created by the Registry when the first
 * metric group of a new simulation registers (so every simulation of
 * a task is sampled, including ones built from raw components with no
 * sys::System).  It fires at statsPri -- after all functional events
 * of its tick -- records one sample of every live series via
 * Registry::sampleNow(), and reschedules only while other events
 * remain, so it never keeps a finished simulation alive (it can at
 * most round the final tick up to the next sample boundary).
 *
 * The Sampler also contributes its own "eventq" group (events
 * processed, queue size).  The group's read functions capture the
 * Sampler -- which the Registry owns and keeps alive through
 * finalize() -- never the EventQueue, whose lifetime ends with the
 * task's simulation.  The destructor likewise never touches the
 * queue: a still-scheduled sample event simply dies with its queue.
 */

#ifndef TCPNI_METRICS_SAMPLER_HH
#define TCPNI_METRICS_SAMPLER_HH

#include <memory>

#include "sim/sim_object.hh"

namespace tcpni
{
namespace metrics
{

class Group;
class Registry;

class Sampler : public SimObject
{
  public:
    Sampler(const std::string &name, EventQueue &eq, Registry &owner,
            uint64_t queue_id, Tick interval);
    ~Sampler() override;

  private:
    void fire();

    Registry &owner_;
    uint64_t queueId_;
    Tick interval_;
    /** Queue state as of the last sample; read by the "eventq" group
     *  so finalize() never touches a dead EventQueue. */
    uint64_t processed_ = 0;
    uint64_t qsize_ = 0;
    std::shared_ptr<Group> group_;
    LambdaEvent sampleEvent_;
};

} // namespace metrics
} // namespace tcpni

#endif // TCPNI_METRICS_SAMPLER_HH
