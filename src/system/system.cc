#include "system/system.hh"

#include "common/logging.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{
namespace sys
{

Node::Node(const std::string &name, EventQueue &eq, NodeId id,
           Network &net, const NodeConfig &cfg)
    : id_(id)
{
    cfg.ni.validate();
    mem_ = std::make_unique<Memory>(cfg.memBytes);
    ni_ = std::make_unique<ni::NetworkInterface>(name + ".ni", eq, id,
                                                 net, cfg.ni);
    if (cfg.ni.policy().handlersOnNi()) {
        hpu_ = std::make_unique<Hpu>(name + ".hpu", eq, *mem_, *ni_,
                                     cfg.hpu);
    }
    // The CPU comes last so its interrupt sink is the one installed
    // (the HPU registers none: it *is* the reception path).
    cpu_ = std::make_unique<Cpu>(name + ".cpu", eq, *mem_, ni_.get(),
                                 cfg.cpu);
}

void
Node::boot(const isa::Program &prog, Addr entry)
{
    if (hpu_) {
        hpu_->loadProgram(prog);
        hpu_->reset(entry);
        hpu_->start();
        return;
    }
    cpu_->loadProgram(prog);
    cpu_->reset(entry);
    cpu_->start();
}

void
Node::bootHost(const isa::Program &prog, Addr entry)
{
    cpu_->loadProgram(prog);
    cpu_->reset(entry);
    cpu_->start();
}

System::System(std::string name, unsigned width, unsigned height,
               const NodeConfig &cfg, EventQueue::Impl eq_impl)
    : System(std::move(name), width, height,
             std::vector<NodeConfig>(width * height, cfg), eq_impl)
{
}

System::System(std::string name, unsigned width, unsigned height,
               const std::vector<NodeConfig> &cfgs,
               EventQueue::Impl eq_impl)
    : eq_(eq_impl)
{
    tcpni_assert(cfgs.size() == static_cast<size_t>(width) * height);
    mesh_ = std::make_unique<MeshNetwork>(name + ".mesh", eq_, width,
                                          height);
    for (NodeId id = 0; id < width * height; ++id) {
        nodes_.push_back(std::make_unique<Node>(
            name + ".node" + std::to_string(id), eq_, id, *mesh_,
            cfgs[id]));
    }
    booted_.assign(nodes_.size(), false);
}

bool
System::run(Tick max_ticks)
{
    // Run until the event queue empties (all CPUs halted and the
    // fabric drained -- halted CPUs schedule no further events) or the
    // deadline passes (e.g. a server is still polling).
    Tick deadline = eq_.curTick() + max_ticks;
    eq_.run(deadline);

    bool quiesced = true;
    for (auto &n : nodes_) {
        if (n->cpu().instructions() > 0 && !n->cpu().halted())
            quiesced = false;
        if (n->hpu() && n->hpu()->instructions() > 0 &&
            !n->hpu()->halted())
            quiesced = false;
        if (n->ni().outputQueueLen() > 0)
            quiesced = false;
    }
    if (!mesh_->idle())
        quiesced = false;
    return quiesced;
}

void
System::dumpStats(std::ostream &os) const
{
    for (const auto &n : nodes_)
        n->ni().statGroup().dump(os);
    mesh_->statGroup().dump(os);
}

void
System::dumpStatsJson(std::ostream &os) const
{
    os << "{\"ticks\":" << eq_.curTick() << ",\"groups\":[";
    bool first = true;
    for (const auto &n : nodes_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
        n->ni().statGroup().dumpJson(os);
    }
    if (!first)
        os << ",";
    os << "\n";
    mesh_->statGroup().dumpJson(os);
    os << "\n]}\n";
}

} // namespace sys
} // namespace tcpni
