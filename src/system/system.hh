/**
 * @file
 * The full-system harness: a mesh of nodes, each with a processor, a
 * network interface (any of the six models), and local memory.
 *
 * This is the configuration the examples and integration tests run:
 * real assembled handler programs executing on every node, messages
 * crossing a backpressured mesh, and the NI flow-control machinery
 * (queue thresholds, stall-on-full, privileged escrow) exercised
 * end-to-end.
 */

#ifndef TCPNI_SYSTEM_SYSTEM_HH
#define TCPNI_SYSTEM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "hpu/hpu.hh"
#include "mem/memory.hh"
#include "ni/network_interface.hh"
#include "noc/mesh.hh"

namespace tcpni
{
namespace sys
{

/** Per-node configuration. */
struct NodeConfig
{
    Addr memBytes = 1 << 20;
    ni::NiConfig ni;
    CpuConfig cpu;
    HpuConfig hpu;      //!< used only by On-NI placements
};

/**
 * One node: memory + NI + CPU -- plus an HPU when the node's
 * placement executes handlers on the interface itself (a mesh can mix
 * On-NI server nodes with plain clients; heterogeneous NodeConfig
 * vectors are first-class).
 */
class Node
{
  public:
    Node(const std::string &name, EventQueue &eq, NodeId id,
         Network &net, const NodeConfig &cfg);

    Memory &mem() { return *mem_; }
    ni::NetworkInterface &ni() { return *ni_; }
    Cpu &cpu() { return *cpu_; }
    NodeId id() const { return id_; }

    /** The node's HPU; null unless the placement is On-NI. */
    Hpu *hpu() { return hpu_.get(); }

    /**
     * Load a program and prepare the node's handler engine to run
     * from @p entry: the CPU normally, the HPU on On-NI nodes (where
     * the handler loop belongs to the interface; use bootHost() for
     * the CPU-side program).
     */
    void boot(const isa::Program &prog, Addr entry);

    /** Load a program onto the host CPU explicitly (On-NI nodes run
     *  the proxy service loop -- or anything else -- here). */
    void bootHost(const isa::Program &prog, Addr entry);

  private:
    NodeId id_;
    std::unique_ptr<Memory> mem_;
    std::unique_ptr<ni::NetworkInterface> ni_;
    std::unique_ptr<Cpu> cpu_;
    std::unique_ptr<Hpu> hpu_;
};

/** A width x height mesh machine. */
class System
{
  public:
    System(std::string name, unsigned width, unsigned height,
           const NodeConfig &cfg,
           EventQueue::Impl eq_impl = EventQueue::Impl::calendar);

    /** Same configuration on every node except where overridden.
     *  @p eq_impl selects the event-kernel structure (the calendar
     *  queue by default; the binary heap for A/B testing). */
    System(std::string name, unsigned width, unsigned height,
           const std::vector<NodeConfig> &cfgs,
           EventQueue::Impl eq_impl = EventQueue::Impl::calendar);

    unsigned numNodes() const
    {
        return static_cast<unsigned>(nodes_.size());
    }

    Node &node(NodeId id) { return *nodes_.at(id); }
    EventQueue &eventq() { return eq_; }
    MeshNetwork &mesh() { return *mesh_; }

    /**
     * Run until every booted CPU halts and the network drains, or
     * @p max_ticks elapse.  @return true if the machine quiesced.
     */
    bool run(Tick max_ticks = 10'000'000);

    /** Dump every component's statistics (gem5-style name/value
     *  lines): per-node NI counters and the mesh latency profile. */
    void dumpStats(std::ostream &os) const;

    /** Dump the same statistics as machine-readable JSON:
     *  {"ticks":N,"groups":[{"name":...,"stats":{...}}, ...]}. */
    void dumpStatsJson(std::ostream &os) const;

  private:
    EventQueue eq_;
    std::unique_ptr<MeshNetwork> mesh_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<bool> booted_;
};

} // namespace sys
} // namespace tcpni

#endif // TCPNI_SYSTEM_SYSTEM_HH
