#include "cost/table1.hh"

#include <memory>

#include "common/logging.hh"
#include "cpu/cpu.hh"
#include "hpu/hpu.hh"
#include "msg/protocol.hh"
#include "ni/network_interface.hh"
#include "ni/placement_policy.hh"
#include "noc/network.hh"

namespace tcpni
{
namespace cost
{

using msg::Kind;

namespace
{

// Local addresses used by the measurement workload on the server node.
constexpr Addr frameAddr = 0x2000;      //!< Send-message target frame
constexpr Addr readVarAddr = 0x2100;    //!< Read/Write target word
constexpr Addr elemBase = 0x2200;       //!< I-structure elements
constexpr Addr nodeHeap = 0x30000;      //!< preallocated deferred nodes
constexpr Addr allocHeap = 0x40000;     //!< bump-allocator arena

constexpr unsigned kSmall = 4;
constexpr unsigned kLarge = 12;

Addr
elemAddr(unsigned k)
{
    return elemBase + k * msg::istructElemSize;
}

} // namespace

std::string
procCaseName(ProcCase c)
{
    switch (c) {
      case ProcCase::send0: return "Send (0 words)";
      case ProcCase::send1: return "Send (1 word)";
      case ProcCase::send2: return "Send (2 words)";
      case ProcCase::read: return "Read";
      case ProcCase::write: return "Write";
      case ProcCase::preadFull: return "PRead (full)";
      case ProcCase::preadEmpty: return "PRead (empty)";
      case ProcCase::preadDeferred: return "PRead (deferred)";
      case ProcCase::pwriteEmpty: return "PWrite (empty)";
      case ProcCase::pwriteDeferred: return "PWrite (deferred)";
    }
    return "?";
}

Table1Harness::Table1Harness(ni::Model model, bool basic_sw_checks,
                             bool no_overlap)
    : model_(model)
{
    handlerProg_ = msg::assembleKernel(
        msg::handlerProgram(model_, basic_sw_checks, no_overlap));
}

ni::NiConfig
Table1Harness::config() const
{
    ni::NiConfig cfg = model_.config();
    cfg.inputQueueDepth = 64;
    cfg.outputQueueDepth = 64;
    // Thresholds high enough that the preloaded stream never trips the
    // iafull/oafull variants.
    cfg.inputThreshold = 255;
    cfg.outputThreshold = 255;
    return cfg;
}

std::vector<Message>
Table1Harness::makeMsgs(ProcCase c, unsigned n, unsigned k)
{
    const bool opt = model_.optimized;
    std::vector<Message> msgs;

    auto craft = [&](uint8_t type, unsigned basic_id, Word w0, Word w1,
                     Word w2, Word w3) {
        Message m;
        m.words = {w0, w1, w2, w3, opt ? 0u : basic_id};
        m.type = opt ? type : 0;
        m.src = 0;
        m.setDestFromWord0();
        return m;
    };

    // Continuations point back at node 0 (a plain NI absorbs replies).
    const Word reply_fp = globalWord(0, 0x50);
    const Word reply_ip = 0x60;

    for (unsigned i = 0; i < k; ++i) {
        switch (c) {
          case ProcCase::send0:
          case ProcCase::send1:
          case ProcCase::send2: {
            const char *label = c == ProcCase::send0   ? "h_send0"
                                : c == ProcCase::send1 ? "h_send1"
                                                       : "h_send2";
            unsigned id = c == ProcCase::send0   ? 0
                          : c == ProcCase::send1 ? 7 : 8;
            Word ip = opt ? handlerProg_->addrOf(label) : 0x60;
            msgs.push_back(craft(msg::typeSend, id,
                                 globalWord(1, frameAddr), ip, 0x1234,
                                 0x5678));
            break;
          }
          case ProcCase::read:
            msgs.push_back(craft(msg::typeRead, msg::typeRead,
                                 globalWord(1, readVarAddr), reply_fp,
                                 reply_ip, 0));
            break;
          case ProcCase::write:
            msgs.push_back(craft(msg::typeWrite, msg::typeWrite,
                                 globalWord(1, readVarAddr), 0xbeef, 0,
                                 0));
            break;
          case ProcCase::preadFull:
          case ProcCase::preadEmpty:
          case ProcCase::preadDeferred:
            msgs.push_back(craft(msg::typePRead, msg::typePRead,
                                 globalWord(1, elemAddr(i)), reply_fp,
                                 reply_ip, 0));
            break;
          case ProcCase::pwriteEmpty:
          case ProcCase::pwriteDeferred:
            // w1 = ack word (0: no ack), w2 = value.
            msgs.push_back(craft(msg::typePWrite, msg::typePWrite,
                                 globalWord(1, elemAddr(i)), 0, 0x4242,
                                 0));
            break;
        }
    }

    // The STOP message halts the server.
    msgs.push_back(craft(msg::typeStop, msg::typeStop,
                         globalWord(1, 0), 0, 0, 0));
    (void)n;
    return msgs;
}

std::function<void(Memory &)>
Table1Harness::memPrep(ProcCase c, unsigned n, unsigned k)
{
    return [c, n, k](Memory &mem) {
        mem.write(msg::allocPtrAddr, allocHeap);
        mem.write(readVarAddr, 0x7777);

        auto chain = [&](unsigned i) {
            // Build an n-node deferred chain for element i; returns the
            // head node address.
            Addr first = nodeHeap +
                         (i * 8) * msg::defNodeSize;    // 8 > max n
            for (unsigned j = 0; j < n; ++j) {
                Addr node = first + j * msg::defNodeSize;
                mem.write(node + msg::defNodeFpOffset,
                          globalWord(0, 0x70));
                mem.write(node + msg::defNodeIpOffset, 0x80);
                Addr next = j + 1 < n ? node + msg::defNodeSize : 0;
                mem.write(node + msg::defNodeNextOffset, next);
            }
            return first;
        };

        for (unsigned i = 0; i < k; ++i) {
            Addr e = elemAddr(i);
            switch (c) {
              case ProcCase::preadFull:
                mem.write(e + msg::istructTagOffset, msg::tagFull);
                mem.write(e + msg::istructValueOffset, 0x1000 + i);
                break;
              case ProcCase::preadEmpty:
              case ProcCase::pwriteEmpty:
                mem.write(e + msg::istructTagOffset, msg::tagEmpty);
                break;
              case ProcCase::preadDeferred:
              case ProcCase::pwriteDeferred:
                mem.write(e + msg::istructTagOffset, msg::tagDeferred);
                mem.write(e + msg::istructValueOffset,
                          chain(i));
                break;
              default:
                break;
            }
        }
    };
}

Table1Harness::RunResult
Table1Harness::runServer(const std::vector<Message> &msgs,
                         const std::function<void(Memory &)> &mem_prep)
{
    EventQueue eq;
    IdealNetwork net("net", eq, 2, 1);
    Memory mem1(1 << 20);
    ni::NiConfig cfg = config();
    ni::NiConfig client_cfg = cfg;
    client_cfg.inputQueueDepth = 1024;
    ni::NetworkInterface ni0("ni0", eq, 0, net, client_cfg);
    ni::NetworkInterface ni1("ni1", eq, 1, net, cfg);

    mem_prep(mem1);

    if (model_.policy().handlersOnNi()) {
        // On-NI models: the handler kernel runs on the interface's
        // HPU; the host CPU runs the proxy service loop that drains
        // the escape ring (deferred-list work and the STOP).
        Hpu hpu1("hpu1", eq, mem1, ni1);
        Cpu cpu1("cpu1", eq, mem1, &ni1);
        isa::Program host =
            msg::assembleKernel(msg::hostProxyProgram(model_));

        hpu1.loadProgram(*handlerProg_);
        cpu1.loadProgram(host);
        for (const Message &m : msgs) {
            bool ok = ni1.acceptFromNetwork(m);
            tcpni_assert(ok);
        }
        hpu1.reset(handlerProg_->addrOf("entry"));
        cpu1.reset(host.addrOf("entry"));
        hpu1.start();
        cpu1.start();
        eq.run();
        tcpni_assert(hpu1.halted());
        tcpni_assert(cpu1.halted());

        // The table's "dispatching"/"processing" cells measure HPU
        // occupancy; the host's host_* regions ride along so callers
        // can report the work that moved off the interface.
        auto regions = hpu1.regionCycles();
        for (const auto &[key, cycles] : cpu1.regionCycles())
            regions[key] += cycles;
        return RunResult{regions};
    }

    Cpu cpu1("cpu1", eq, mem1, &ni1);

    cpu1.loadProgram(*handlerProg_);
    for (const Message &m : msgs) {
        bool ok = ni1.acceptFromNetwork(m);
        tcpni_assert(ok);
    }
    cpu1.reset(handlerProg_->addrOf("entry"));
    cpu1.start();
    eq.run();
    tcpni_assert(cpu1.halted());

    return RunResult{cpu1.regionCycles()};
}

Table1Harness::RunResult
Table1Harness::runSender(Kind kind, unsigned count)
{
    EventQueue eq;
    IdealNetwork net("net", eq, 2, 1);
    Memory mem0(1 << 20);
    ni::NiConfig cfg = config();
    ni::NiConfig sink_cfg = cfg;
    sink_cfg.inputQueueDepth = 1024;
    ni::NetworkInterface ni0("ni0", eq, 0, net, cfg);
    ni::NetworkInterface ni1("ni1", eq, 1, net, sink_cfg);
    Cpu cpu0("cpu0", eq, mem0, &ni0);

    isa::Program prog = msg::assembleKernel(
        msg::senderProgram(model_, kind, count));
    cpu0.loadProgram(prog);
    cpu0.reset(prog.addrOf("entry"));
    cpu0.start();
    eq.run();
    tcpni_assert(cpu0.halted());
    tcpni_assert(ni1.numReceived() == count);

    return RunResult{cpu0.regionCycles()};
}

double
Table1Harness::sendingCost(Kind kind)
{
    RunResult small = runSender(kind, kSmall);
    RunResult large = runSender(kind, kLarge);
    uint64_t a = small.regionCycles.count("sending")
                     ? small.regionCycles.at("sending") : 0;
    uint64_t b = large.regionCycles.count("sending")
                     ? large.regionCycles.at("sending") : 0;
    return static_cast<double>(b - a) / (kLarge - kSmall);
}

ProcCost
Table1Harness::processingCost(ProcCase c, unsigned n)
{
    auto get = [](const RunResult &r, const char *key) -> uint64_t {
        auto it = r.regionCycles.find(key);
        return it == r.regionCycles.end() ? 0 : it->second;
    };

    RunResult small = runServer(makeMsgs(c, n, kSmall),
                                memPrep(c, n, kSmall));
    RunResult large = runServer(makeMsgs(c, n, kLarge),
                                memPrep(c, n, kLarge));

    double denom = kLarge - kSmall;
    ProcCost cost;
    cost.dispatching =
        static_cast<double>(get(large, "dispatching") -
                            get(small, "dispatching")) / denom;
    cost.processing =
        static_cast<double>(get(large, "processing") -
                            get(small, "processing")) / denom;
    return cost;
}

LinearCost
Table1Harness::pwriteDeferredCost()
{
    ProcCost one = processingCost(ProcCase::pwriteDeferred, 1);
    ProcCost three = processingCost(ProcCase::pwriteDeferred, 3);
    LinearCost lin;
    lin.slope = (three.processing - one.processing) / 2.0;
    lin.base = one.processing - lin.slope;
    return lin;
}

std::string
sendRowKey(Kind k)
{
    switch (k) {
      case Kind::send0: return "send:send0";
      case Kind::send1: return "send:send1";
      case Kind::send2: return "send:send2";
      case Kind::read: return "send:read";
      case Kind::write: return "send:write";
      case Kind::pread: return "send:pread";
      case Kind::pwrite: return "send:pwrite";
    }
    return "?";
}

std::string
procRowKey(ProcCase c)
{
    switch (c) {
      case ProcCase::send0: return "proc:send0";
      case ProcCase::send1: return "proc:send1";
      case ProcCase::send2: return "proc:send2";
      case ProcCase::read: return "proc:read";
      case ProcCase::write: return "proc:write";
      case ProcCase::preadFull: return "proc:pread_full";
      case ProcCase::preadEmpty: return "proc:pread_empty";
      case ProcCase::preadDeferred: return "proc:pread_deferred";
      case ProcCase::pwriteEmpty: return "proc:pwrite_empty";
      case ProcCase::pwriteDeferred: return "proc:pwrite_deferred";
    }
    return "?";
}

std::map<std::string, std::array<PaperCell, 6>>
paperTable1()
{
    // Column order matches ni::paperModels(): optimized register /
    // on-chip / off-chip, then basic register / on-chip / off-chip.
    auto exact = [](double v) { return PaperCell{v, v, 0}; };
    auto range = [](double lo, double hi) { return PaperCell{lo, hi, 0}; };
    auto lin = [](double base, double slope) {
        return PaperCell{base, base, slope};
    };

    std::map<std::string, std::array<PaperCell, 6>> t;
    t["send:send0"] = {range(2, 2), exact(3), exact(3),
                       exact(3), exact(4), exact(4)};
    t["send:send1"] = {range(2, 3), exact(4), exact(4),
                       range(3, 4), exact(5), exact(5)};
    t["send:send2"] = {range(2, 4), exact(5), exact(5),
                       range(3, 5), exact(6), exact(6)};
    t["send:pread"] = {range(2, 4), exact(5), exact(5),
                       range(3, 5), exact(7), exact(7)};
    t["send:pwrite"] = {range(0, 3), exact(3), exact(3),
                        range(1, 4), exact(5), exact(5)};
    t["send:read"] = {range(2, 3), exact(4), exact(4),
                      range(3, 4), exact(6), exact(6)};
    t["send:write"] = {range(0, 2), exact(2), exact(2),
                       range(1, 3), exact(4), exact(4)};

    t["dispatch"] = {exact(1), exact(2), exact(2),
                     exact(5), exact(7), exact(8)};

    t["proc:send0"] = {exact(1), exact(1), exact(3),
                       exact(1), exact(1), exact(3)};
    t["proc:send1"] = {exact(2), exact(3), exact(5),
                       exact(2), exact(3), exact(5)};
    t["proc:send2"] = {exact(3), exact(5), exact(6),
                       exact(3), exact(5), exact(6)};
    t["proc:read"] = {exact(1), exact(3), exact(5),
                      exact(4), exact(8), exact(8)};
    t["proc:write"] = {exact(1), exact(3), exact(4),
                       exact(1), exact(3), exact(4)};
    t["proc:pread_full"] = {exact(9), exact(12), exact(13),
                            exact(12), exact(17), exact(17)};
    t["proc:pread_empty"] = {exact(19), exact(23), exact(23),
                             exact(19), exact(23), exact(23)};
    t["proc:pread_deferred"] = {exact(15), exact(19), exact(19),
                                exact(15), exact(19), exact(19)};
    t["proc:pwrite_empty"] = {exact(14), exact(17), exact(17),
                              exact(14), exact(17), exact(17)};
    t["proc:pwrite_deferred"] = {lin(15, 6), lin(19, 8), lin(19, 8),
                                 lin(16, 6), lin(20, 8), lin(20, 8)};
    return t;
}

} // namespace cost
} // namespace tcpni
