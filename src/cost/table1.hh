/**
 * @file
 * The Table-1 harness: measures the per-message cost of sending,
 * dispatching, and processing each protocol message type under each of
 * the paper's six interface models, by executing the hand-written
 * kernels of msg/kernels.hh on the CPU timing model.
 *
 * Methodology (matching Section 4.1): a stream of K identical messages
 * is preloaded into the server's input queue and the handler loop runs
 * to completion; per-region cycle counts are differenced between a
 * K=4 and a K=12 run so that startup and shutdown constants cancel,
 * leaving the exact steady-state cost per message.  Sending costs come
 * from an unrolled sender loop the same way.
 *
 * The harness also evaluates the paper's reference values (Table 1)
 * for comparison; see paperTable1().
 */

#ifndef TCPNI_COST_TABLE1_HH
#define TCPNI_COST_TABLE1_HH

#include <array>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory.hh"
#include "msg/kernels.hh"
#include "ni/config.hh"
#include "noc/message.hh"

namespace tcpni
{
namespace cost
{

/** Processing cases measured (Table 1's PROCESSING rows). */
enum class ProcCase
{
    send0,
    send1,
    send2,
    read,
    write,
    preadFull,
    preadEmpty,
    preadDeferred,      //!< element already has one waiting reader
    pwriteEmpty,
    pwriteDeferred,     //!< parameterized by the number of readers n
};

std::string procCaseName(ProcCase c);

/** Result of one processing measurement. */
struct ProcCost
{
    double dispatching;     //!< cycles per message spent dispatching
    double processing;      //!< cycles per message spent in the handler
};

/** A measured (base + slope * n) pair for PWrite with n readers. */
struct LinearCost
{
    double base;
    double slope;
};

/** Measures one interface model. */
class Table1Harness
{
  public:
    /**
     * @param basic_sw_checks  include software queue-threshold checks
     *   in the basic models' dispatch (Section 2.2.4).  Table 1 itself
     *   omits them (its caption says the comparison favors the basic
     *   models); the Figure-12 expansion includes them.
     *
     * The off-chip load-use delay comes from the model itself
     * (Model::withOffchipDelay for the Section 4.2.3 sensitivity).
     */
    explicit Table1Harness(ni::Model model,
                           bool basic_sw_checks = false,
                           bool no_overlap = false);

    const ni::Model &model() const { return model_; }

    /** Sending cost in cycles per message (the copy variant; the
     *  paper's register-mapped lower bounds subtract
     *  msg::directlyComputableWords()). */
    double sendingCost(msg::Kind kind);

    /** Dispatch + processing cost for one case.  @p n is the deferred
     *  reader count for pwriteDeferred. */
    ProcCost processingCost(ProcCase c, unsigned n = 1);

    /** Fit PWrite-deferred processing as base + slope*n (Table 1's
     *  "15+6n" style entries), measured at n = 1 and n = 3. */
    LinearCost pwriteDeferredCost();

  private:
    struct RunResult
    {
        std::map<std::string, uint64_t> regionCycles;
    };

    /** Run the handler server over @p msgs; @p mem_prep initializes
     *  the server's memory before execution. */
    RunResult runServer(const std::vector<Message> &msgs,
                        const std::function<void(Memory &)> &mem_prep);

    RunResult runSender(msg::Kind kind, unsigned count);

    /** Craft the K-message stream (plus STOP) for a processing case. */
    std::vector<Message> makeMsgs(ProcCase c, unsigned n, unsigned k);

    /** Memory initializer for a processing case sized for @p k
     *  messages with @p n deferred readers each. */
    std::function<void(Memory &)> memPrep(ProcCase c, unsigned n,
                                          unsigned k);

    ni::NiConfig config() const;

    ni::Model model_;
    std::optional<isa::Program> handlerProg_;
};

/** One cell of the paper's published Table 1. */
struct PaperCell
{
    double lo;                  //!< lower bound (ranges) or the value
    double hi;                  //!< upper bound; == lo when exact
    double slope = 0;           //!< per-n slope for PWrite (deferred)
};

/**
 * The paper's Table 1, keyed by (row, model index) where the model
 * index follows ni::paperModels() order: optimized reg / on-chip /
 * off-chip, then basic reg / on-chip / off-chip.  Row keys:
 * "send:<kind>", "dispatch", "proc:<case>".
 */
std::map<std::string, std::array<PaperCell, 6>> paperTable1();

/** Row key helpers. */
std::string sendRowKey(msg::Kind k);
std::string procRowKey(ProcCase c);

} // namespace cost
} // namespace tcpni

#endif // TCPNI_COST_TABLE1_HH
