/**
 * @file
 * A 2D-mesh packet network with finite buffering and backpressure.
 *
 * The paper's machines (J-Machine, CM-5, *T) used low-dimensional
 * direct networks; we model a W x H mesh with dimension-order (XY)
 * routing.  Each router has five input queues (local inject, N, S, E,
 * W) of configurable depth.  Every cycle each output port forwards at
 * most one message from a competing input queue (round-robin
 * arbitration), and only if the downstream queue has space; ejection at
 * the destination is subject to the node sink accepting the message.
 * A full NI input queue therefore backs the network up exactly as
 * Section 2.1.1 describes, eventually refusing injections and filling
 * sender output queues.
 *
 * Messages are transferred whole (store-and-forward at message
 * granularity); a hop takes one cycle.  This is coarser than a
 * flit-level wormhole model but preserves the property the paper's
 * architecture interacts with: finite buffering with backpressure and
 * in-order delivery per source-destination pair.
 */

#ifndef TCPNI_NOC_MESH_HH
#define TCPNI_NOC_MESH_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "metrics/metrics.hh"
#include "noc/network.hh"

namespace tcpni
{

/** A W x H mesh network. */
class MeshNetwork : public Network
{
  public:
    /**
     * @param width,height    mesh dimensions; node n is at
     *                        (n % width, n / width)
     * @param buffer_depth    capacity of each router input queue
     * @param cycles_per_word link serialization: a message occupies
     *                        the link it traverses for
     *                        length * cycles_per_word cycles (0 =
     *                        message-granularity transfers, the
     *                        default).  With serialization on, long
     *                        SCROLL-OUT messages hold links longer,
     *                        the way multi-flit wormhole packets do.
     */
    MeshNetwork(std::string name, EventQueue &eq, unsigned width,
                unsigned height, unsigned buffer_depth = 4,
                unsigned cycles_per_word = 0);
    ~MeshNetwork() override;

    bool offer(NodeId src, const Message &msg) override;
    bool idle() const override;

    unsigned width() const { return width_; }
    unsigned height() const { return height_; }

    /** Next-hop port (exposed for routing unit tests). */
    enum class Port : uint8_t { local = 0, north, south, east, west };
    Port route(NodeId here, NodeId dest) const;

    /** Occupancy of a router input queue (for tests). */
    size_t queueDepth(NodeId node, Port port) const;

    uint64_t injected() const { return injected_; }
    const metrics::Histogram &latencyDist() const { return latency_; }

  private:
    static constexpr unsigned numPorts = 5;

    struct InFlight
    {
        Message msg;
        Tick injectTick;    //!< when the message entered the fabric
        Tick movedAt;       //!< last cycle this message advanced a hop
    };

    struct RouterState
    {
        std::deque<InFlight> inq[numPorts];
        // Round-robin arbitration pointer per output port.
        unsigned rr[numPorts] = {0, 0, 0, 0, 0};
        // Link serialization: the output port is busy until this tick.
        Tick busyUntil[numPorts] = {0, 0, 0, 0, 0};
    };

    class TickEvent : public Event
    {
      public:
        explicit TickEvent(MeshNetwork &net)
            : Event(networkPri), net_(net)
        {}
        void process() override { net_.tick(); }
        std::string name() const override { return "mesh-tick"; }

      private:
        MeshNetwork &net_;
    };

    void tick();
    void activate();
    NodeId neighbor(NodeId here, Port out) const;
    static Port inputPortFor(Port out);

    /** True when some head wants output @p out of router @p r and has
     *  not already advanced this cycle (link-contention accounting). */
    bool hasWaiter(const RouterState &router, NodeId r, Port out,
                   Tick now) const;

    unsigned width_, height_, bufferDepth_;
    unsigned cyclesPerWord_;
    std::vector<RouterState> routers_;
    TickEvent tickEvent_;

    uint64_t injected_ = 0;
    uint64_t occupied_ = 0;     //!< total messages in router queues
    metrics::Histogram latency_;

    /** @{ Per-link accounting (index router * numPorts + port),
     *     maintained only when telemetry is on -- the tick loop is
     *     the simulator's hottest path. */
    bool linkStats_ = false;
    std::vector<uint64_t> linkXfers_;    //!< messages moved per link
    std::vector<uint64_t> linkBusy_;     //!< busy (flit-)cycles
    std::vector<uint64_t> linkBlocked_;  //!< cycles a waiter stalled
    /** @} */

    std::shared_ptr<metrics::Group> mgroup_;
};

} // namespace tcpni

#endif // TCPNI_NOC_MESH_HH
