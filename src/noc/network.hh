/**
 * @file
 * Abstract network interface between the nodes' NIs and the fabric.
 *
 * A Network moves Messages between nodes.  Flow control is exactly the
 * paper's Section 2.1.1 model: a node *offers* a message to the fabric;
 * the fabric may refuse (its injection buffer is full), in which case
 * the node's NI output queue backs up; at the far end the fabric offers
 * the message to the destination node's sink, which may also refuse
 * (the NI input queue is full), in which case the message stalls inside
 * the fabric and the congestion propagates backwards.
 */

#ifndef TCPNI_NOC_NETWORK_HH
#define TCPNI_NOC_NETWORK_HH

#include <functional>
#include <vector>

#include "common/logging.hh"
#include "noc/message.hh"
#include "sim/sim_object.hh"

namespace tcpni
{

/** Consumer of delivered messages; returns false to refuse (backpressure). */
using MessageSink = std::function<bool(const Message &)>;

/** Abstract message fabric. */
class Network : public SimObject
{
  public:
    Network(std::string name, EventQueue &eq, unsigned num_nodes)
        : SimObject(std::move(name), eq), sinks_(num_nodes)
    {}

    unsigned numNodes() const { return static_cast<unsigned>(sinks_.size()); }

    /** Register the delivery callback for @p node. */
    void
    setSink(NodeId node, MessageSink sink)
    {
        sinks_.at(node) = std::move(sink);
    }

    /**
     * Offer a message for injection at @p src.
     * @return false if the fabric cannot accept it this cycle.
     */
    virtual bool offer(NodeId src, const Message &msg) = 0;

    /** True when no messages are in flight. */
    virtual bool idle() const = 0;

    /** Messages delivered so far. */
    uint64_t delivered() const { return delivered_; }

  protected:
    /** Deliver to the registered sink; false if the sink refused. */
    bool
    deliver(const Message &msg)
    {
        NodeId d = msg.dest();
        if (d >= sinks_.size())
            panic("message to nonexistent node %u: %s", d,
                  msg.toString().c_str());
        if (!sinks_[d])
            panic("no sink registered for node %u", d);
        if (!sinks_[d](msg))
            return false;
        ++delivered_;
        return true;
    }

    uint64_t delivered_ = 0;

  private:
    std::vector<MessageSink> sinks_;
};

/**
 * A contention-free network: every accepted message arrives a fixed
 * number of cycles later.  If the destination refuses, delivery retries
 * every cycle.  Used by the Table-1 kernel harness, where the paper's
 * methodology explicitly excludes network latency effects.
 */
class IdealNetwork : public Network
{
  public:
    IdealNetwork(std::string name, EventQueue &eq, unsigned num_nodes,
                 Cycles latency = 1);

    bool offer(NodeId src, const Message &msg) override;
    bool idle() const override { return inFlight_ == 0; }

  private:
    class DeliverEvent : public Event
    {
      public:
        DeliverEvent(IdealNetwork &net, Message msg)
            : Event(networkPri), net_(net), msg_(std::move(msg))
        {}
        void process() override;
        std::string name() const override { return "ideal-deliver"; }

      private:
        IdealNetwork &net_;
        Message msg_;
    };

    Cycles latency_;
    uint64_t inFlight_ = 0;
};

} // namespace tcpni

#endif // TCPNI_NOC_NETWORK_HH
