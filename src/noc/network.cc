#include "noc/network.hh"

#include "common/trace.hh"

namespace tcpni
{

IdealNetwork::IdealNetwork(std::string name, EventQueue &eq,
                           unsigned num_nodes, Cycles latency)
    : Network(std::move(name), eq, num_nodes), latency_(latency)
{
}

bool
IdealNetwork::offer(NodeId src, const Message &msg)
{
    TCPNI_TRACE(NOC, "accept id=%llu at node %u for node %u "
                "(ideal, %llu-cycle latency)",
                static_cast<unsigned long long>(msg.traceId), src,
                msg.dest(), static_cast<unsigned long long>(latency_));
    auto *ev = new DeliverEvent(*this, msg);
    eventq().schedule(ev, curTick() + latency_);
    ++inFlight_;
    return true;
}

void
IdealNetwork::DeliverEvent::process()
{
    if (net_.deliver(msg_)) {
        --net_.inFlight_;
        delete this;
    } else {
        // Destination refused; retry next cycle.
        net_.eventq().schedule(this, net_.curTick() + 1);
    }
}

} // namespace tcpni
