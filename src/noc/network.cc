#include "noc/network.hh"

namespace tcpni
{

IdealNetwork::IdealNetwork(std::string name, EventQueue &eq,
                           unsigned num_nodes, Cycles latency)
    : Network(std::move(name), eq, num_nodes), latency_(latency)
{
}

bool
IdealNetwork::offer(NodeId, const Message &msg)
{
    auto *ev = new DeliverEvent(*this, msg);
    eventq().schedule(ev, curTick() + latency_);
    ++inFlight_;
    return true;
}

void
IdealNetwork::DeliverEvent::process()
{
    if (net_.deliver(msg_)) {
        --net_.inFlight_;
        delete this;
    } else {
        // Destination refused; retry next cycle.
        net_.eventq().schedule(this, net_.curTick() + 1);
    }
}

} // namespace tcpni
