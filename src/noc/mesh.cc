#include "noc/mesh.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace tcpni
{

MeshNetwork::MeshNetwork(std::string name, EventQueue &eq, unsigned width,
                         unsigned height, unsigned buffer_depth,
                         unsigned cycles_per_word)
    : Network(std::move(name), eq, width * height), width_(width),
      height_(height), bufferDepth_(buffer_depth),
      cyclesPerWord_(cycles_per_word), routers_(width * height),
      tickEvent_(*this)
{
    tcpni_assert(width_ > 0 && height_ > 0);
    tcpni_assert(bufferDepth_ > 0);
    statGroup().addHistogram("latency", &latency_,
                             "end-to-end message latency (cycles)");

    if (auto *reg = metrics::registry()) {
        mgroup_ = reg->addGroup(this->name(), eventq());
        mgroup_->addCounter("injected", [this] { return injected_; },
                            "messages accepted into the fabric");
        mgroup_->addGauge("occupied", [this] { return occupied_; },
                          "messages resident in router queues");
        mgroup_->addHistogram("latency", &latency_,
                              "inject to eject (cycles)");

        // Per-link utilization counters: these feed the congestion
        // heatmap, one series triple per (router, output port).
        linkStats_ = true;
        linkXfers_.assign(numNodes() * numPorts, 0);
        linkBusy_.assign(numNodes() * numPorts, 0);
        linkBlocked_.assign(numNodes() * numPorts, 0);
        static const char *const port_names[numPorts] = {
            "local", "north", "south", "east", "west"};
        for (NodeId r = 0; r < numNodes(); ++r) {
            for (unsigned p = 0; p < numPorts; ++p) {
                const size_t li = r * numPorts + p;
                const std::string base = "node" + std::to_string(r) +
                                         "." + port_names[p];
                mgroup_->addCounter(
                    base + ".xfers",
                    [this, li] { return linkXfers_[li]; },
                    "messages forwarded over this link");
                mgroup_->addCounter(
                    base + ".busy_cycles",
                    [this, li] { return linkBusy_[li]; },
                    "cycles this link spent transferring");
                mgroup_->addCounter(
                    base + ".blocked_cycles",
                    [this, li] { return linkBlocked_[li]; },
                    "cycles a ready message waited for this link");
            }
        }
    }
}

MeshNetwork::~MeshNetwork()
{
    if (mgroup_)
        mgroup_->retire();
}

MeshNetwork::Port
MeshNetwork::route(NodeId here, NodeId dest) const
{
    tcpni_assert(here < numNodes() && dest < numNodes());
    unsigned hx = here % width_, hy = here / width_;
    unsigned dx = dest % width_, dy = dest / width_;
    // Dimension-order: correct X first, then Y.
    if (dx > hx)
        return Port::east;
    if (dx < hx)
        return Port::west;
    if (dy > hy)
        return Port::south;
    if (dy < hy)
        return Port::north;
    return Port::local;
}

NodeId
MeshNetwork::neighbor(NodeId here, Port out) const
{
    unsigned hx = here % width_, hy = here / width_;
    switch (out) {
      case Port::east:
        tcpni_assert(hx + 1 < width_);
        return here + 1;
      case Port::west:
        tcpni_assert(hx > 0);
        return here - 1;
      case Port::south:
        tcpni_assert(hy + 1 < height_);
        return here + width_;
      case Port::north:
        tcpni_assert(hy > 0);
        return here - width_;
      default:
        panic("neighbor() of local port");
    }
}

MeshNetwork::Port
MeshNetwork::inputPortFor(Port out)
{
    // A message leaving my east port arrives on the neighbor's west
    // input, and so on.
    switch (out) {
      case Port::east: return Port::west;
      case Port::west: return Port::east;
      case Port::north: return Port::south;
      case Port::south: return Port::north;
      default: panic("inputPortFor(local)");
    }
}

size_t
MeshNetwork::queueDepth(NodeId node, Port port) const
{
    return routers_.at(node).inq[static_cast<unsigned>(port)].size();
}

bool
MeshNetwork::offer(NodeId src, const Message &msg)
{
    tcpni_assert(src < numNodes());
    if (msg.dest() >= numNodes()) {
        panic("message addressed to nonexistent node %u: %s", msg.dest(),
              msg.toString().c_str());
    }
    auto &q = routers_[src].inq[static_cast<unsigned>(Port::local)];
    if (q.size() >= bufferDepth_) {
        TCPNI_TRACE(NOC, "refuse injection at node %u (buffer full)",
                    src);
        return false;
    }
    TCPNI_TRACE(NOC, "accept id=%llu at node %u for node %u",
                static_cast<unsigned long long>(msg.traceId), src,
                msg.dest());
    q.push_back({msg, curTick(), curTick()});
    ++injected_;
    ++occupied_;
    activate();
    return true;
}

void
MeshNetwork::activate()
{
    if (!tickEvent_.scheduled() && occupied_ > 0)
        eventq().schedule(&tickEvent_, curTick() + 1);
}

bool
MeshNetwork::idle() const
{
    return occupied_ == 0;
}

bool
MeshNetwork::hasWaiter(const RouterState &router, NodeId r, Port out,
                       Tick now) const
{
    for (unsigned in = 0; in < numPorts; ++in) {
        const auto &q = router.inq[in];
        if (q.empty())
            continue;
        const InFlight &head = q.front();
        if (head.movedAt == now)
            continue;
        if (route(r, head.msg.dest()) == out)
            return true;
    }
    return false;
}

void
MeshNetwork::tick()
{
    const Tick now = curTick();

    for (NodeId r = 0; r < numNodes(); ++r) {
        RouterState &router = routers_[r];
        // Consider each output port in a fixed order; each forwards at
        // most one message per cycle.
        static const Port outputs[] = {Port::local, Port::north,
                                       Port::south, Port::east,
                                       Port::west};
        for (Port out : outputs) {
            unsigned out_idx = static_cast<unsigned>(out);
            // Link serialization: a long message holds the port.
            if (router.busyUntil[out_idx] > now) {
                if (linkStats_ && hasWaiter(router, r, out, now))
                    ++linkBlocked_[r * numPorts + out_idx];
                continue;
            }
            bool moved_any = false;
            bool contended = false;
            // Round-robin over input ports for this output.
            for (unsigned k = 0; k < numPorts; ++k) {
                unsigned in_idx = (router.rr[out_idx] + k) % numPorts;
                auto &q = router.inq[in_idx];
                if (q.empty())
                    continue;
                InFlight &head = q.front();
                // A message that already advanced this cycle (a router
                // with a lower index pushed it downstream) must wait
                // for the next cycle: one hop per cycle.
                if (head.movedAt == now)
                    continue;
                if (route(r, head.msg.dest()) != out)
                    continue;
                contended = true;
                const size_t head_len = head.msg.length();

                bool moved = false;
                if (out == Port::local) {
                    if (deliver(head.msg)) {
                        latency_.record(now - head.injectTick);
                        TCPNI_TRACE(NOC, "eject id=%llu at node %u "
                                    "(%llu cycles in fabric)",
                                    static_cast<unsigned long long>(
                                        head.msg.traceId), r,
                                    static_cast<unsigned long long>(
                                        now - head.injectTick));
                        q.pop_front();
                        --occupied_;
                        moved = true;
                    }
                } else {
                    NodeId dst = neighbor(r, out);
                    auto &dq = routers_[dst]
                        .inq[static_cast<unsigned>(inputPortFor(out))];
                    if (dq.size() < bufferDepth_) {
                        InFlight m = head;
                        q.pop_front();
                        m.movedAt = now;
                        if (auto *s = trace::sink())
                            s->record(m.msg.traceId, trace::Stage::hop,
                                      dst, now, m.msg.type);
                        TCPNI_TRACE(NOC, "hop id=%llu node %u -> %u",
                                    static_cast<unsigned long long>(
                                        m.msg.traceId), r, dst);
                        dq.push_back(std::move(m));
                        moved = true;
                    }
                }
                if (moved) {
                    router.rr[out_idx] = (in_idx + 1) % numPorts;
                    if (cyclesPerWord_ > 0) {
                        router.busyUntil[out_idx] =
                            now + static_cast<Tick>(cyclesPerWord_) *
                                      head_len;
                    }
                    if (linkStats_) {
                        const size_t li = r * numPorts + out_idx;
                        ++linkXfers_[li];
                        linkBusy_[li] +=
                            cyclesPerWord_ > 0
                                ? static_cast<uint64_t>(
                                      cyclesPerWord_) * head_len
                                : 1;
                    }
                    moved_any = true;
                    break;
                }
            }
            // A ready head wanted this output but nothing moved:
            // charge one contention cycle to the link.
            if (linkStats_ && contended && !moved_any)
                ++linkBlocked_[r * numPorts + out_idx];
        }
    }

    if (occupied_ > 0)
        eventq().schedule(&tickEvent_, now + 1);
}

} // namespace tcpni
