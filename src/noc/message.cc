#include "noc/message.hh"

#include <cstdio>

namespace tcpni
{

std::string
Message::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "msg[type=%u dst=%u src=%u pin=%u%s len=%zu "
                  "w={%08x %08x %08x %08x %08x}]",
                  type, dest(), src, pin, privileged ? " priv" : "",
                  length(),
                  words[0], words[1], words[2], words[3], words[4]);
    return buf;
}

} // namespace tcpni
