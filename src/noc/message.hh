/**
 * @file
 * The network message format defined by the paper's architecture
 * (Figure 2): five 32-bit data words m0..m4 plus a 4-bit type field.
 *
 * The logical address of the destination processor is carried in the
 * high bits of the first word (m0); we use the top 8 bits, allowing
 * machines of up to 256 nodes.  The same convention applies to global
 * memory addresses and global frame pointers used by the message
 * protocols: a global word is (node << 24) | local_address.
 *
 * For the multi-user extensions of Section 2.1.3, each message also
 * carries the sending process's PIN and a privileged flag; these ride
 * alongside the architectural words the way a real network would carry
 * them in the routing envelope.
 */

#ifndef TCPNI_NOC_MESSAGE_HH
#define TCPNI_NOC_MESSAGE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tcpni
{

/** Number of data words in a message. */
constexpr unsigned msgWords = 5;

/** Bit position of the node id within a global word. */
constexpr unsigned nodeShift = 24;

/** Number of node-id bits in a global word. */
constexpr unsigned nodeBits = 8;

/** Compose a global word from a node id and a local value. */
constexpr Word
globalWord(NodeId node, Word local)
{
    return (node << nodeShift) | (local & ((1u << nodeShift) - 1));
}

/** Node id field of a global word. */
constexpr NodeId
nodeOf(Word global)
{
    return global >> nodeShift;
}

/** Local part of a global word. */
constexpr Word
localOf(Word global)
{
    return global & ((1u << nodeShift) - 1);
}

/** A network message (Figure 2). */
struct Message
{
    std::array<Word, msgWords> words{};  //!< m0..m4
    uint8_t type = 0;                    //!< 4-bit message type
    uint8_t pin = 0;                     //!< sending process id
    bool privileged = false;             //!< OS-destined message
    NodeId src = 0;                      //!< source node (for tracing)

    /**
     * Routing envelope.  The NI derives this from the high bits of m0
     * at SEND time (for a long SCROLL-OUT message, from the first five
     * words composed, whose m0 carries the destination).
     */
    NodeId dst = 0;

    /**
     * Words beyond the first five of a variable-length message
     * (Section 2.1.2).  A long message is composed with SCROLL-OUT and
     * consumed with SCROLL-IN; it travels the fabric as one unit, the
     * way a wormhole-routed multi-flit packet would.
     */
    std::vector<Word> extra;

    /**
     * @{ Instrumentation envelope (not architectural state): the
     * monotonically increasing lifecycle trace id assigned when the
     * message enters an NI output queue (0 = untagged), and the ticks
     * at which it was injected and arrived, used for the NI latency
     * distributions.  Excluded from equality.
     */
    uint64_t traceId = 0;
    Tick injectTick = 0;
    Tick arriveTick = 0;
    /** @} */

    /** Total payload length in words. */
    size_t length() const { return msgWords + extra.size(); }

    /** Destination node (routing envelope). */
    NodeId dest() const { return dst; }

    /** Set the envelope destination from the high bits of m0. */
    void setDestFromWord0() { dst = nodeOf(words[0]); }

    /** Human-readable rendering for traces and test failures. */
    std::string toString() const;

    /** Architectural equality: the instrumentation envelope (trace id
     *  and timestamps) is ignored. */
    bool
    operator==(const Message &o) const
    {
        return words == o.words && type == o.type && pin == o.pin &&
               privileged == o.privileged && src == o.src &&
               dst == o.dst && extra == o.extra;
    }
};

} // namespace tcpni

#endif // TCPNI_NOC_MESSAGE_HH
