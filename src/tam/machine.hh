/**
 * @file
 * The TAM interpreter (see tam.hh for the methodology).
 */

#ifndef TCPNI_TAM_MACHINE_HH
#define TCPNI_TAM_MACHINE_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "mem/istruct_memory.hh"
#include "tam/tam.hh"

namespace tcpni
{
namespace tam
{

/** An activation frame. */
class Frame
{
  public:
    Frame(uint32_t id, const CodeBlock *cb, NodeId node)
        : locals(cb->numLocals, 0.0), id_(id), cb_(cb), node_(node)
    {}

    std::vector<Value> locals;

    uint32_t id() const { return id_; }
    const CodeBlock *codeBlock() const { return cb_; }
    NodeId node() const { return node_; }
    bool freed() const { return freed_; }

  private:
    friend class Machine;

    uint32_t id_;
    const CodeBlock *cb_;
    NodeId node_;
    bool freed_ = false;
};

/** Machine configuration. */
struct MachineConfig
{
    unsigned numNodes = 64;     //!< logical nodes frames round-robin over
    uint64_t rngSeed = 42;
    uint64_t maxSteps = 2'000'000'000;  //!< runaway guard (ops)
};

/** The sequential TAM machine. */
class Machine
{
  public:
    explicit Machine(MachineConfig config = {});
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** @{ Accounting primitives: threads and inlets report the work
     *     they perform. */
    void iop(unsigned n = 1) { count(Op::iop, n); }
    void fop(unsigned n = 1) { count(Op::fop, n); }
    void move(unsigned n = 1) { count(Op::move, n); }
    /** @} */

    /** @{ Frame-slot access (counted). */
    Value frameGet(Frame &f, unsigned slot);
    void frameSet(Frame &f, unsigned slot, Value v);
    /** @} */

    /** Allocate an activation frame; frames round-robin over nodes. */
    Frame &falloc(const CodeBlock *cb);

    /** Release a frame (it must not be referenced afterwards). */
    void ffree(Frame &f);

    /** Enable a thread of @p f (LIFO scheduling). */
    void fork(Frame &f, unsigned thread);

    /**
     * Decrement the synchronization counter in @p slot; when it
     * reaches zero, enable @p thread.
     */
    void syncDec(Frame &f, unsigned slot, unsigned thread);

    /** Continuation pointing at an inlet of @p f. */
    Continuation
    cont(const Frame &f, unsigned inlet) const
    {
        return {f.id(), static_cast<uint16_t>(inlet)};
    }

    /** @{ Messaging: each call is one network message event.  The
     *     sequential machine delivers immediately. */

    /** SEND 0..2 data words to a continuation (argument/result
     *  passing; also the format of all replies). */
    void send(Continuation c, const std::vector<Value> &vals);

    /** Remote read of a cell; the value arrives via @p c as a
     *  1-word Send reply. */
    void remoteRead(CellRef cell, Continuation c);

    /** Remote write of a cell. */
    void remoteWrite(CellRef cell, Value v);

    /** I-structure fetch; the value arrives via @p c (immediately if
     *  FULL, or when the producing istore executes). */
    void ifetch(ArrayRef array, size_t idx, Continuation c);

    /** I-structure store; releases any deferred readers. */
    void istore(ArrayRef array, size_t idx, Value v);
    /** @} */

    /** @{ Heap management (not counted as messages). */
    ArrayRef heapAlloc(size_t nelems);
    CellRef cellAlloc(Value initial = 0);
    Value cellValue(CellRef cell) const;
    /** Peek a FULL array element (verification only). */
    Value arrayPeek(ArrayRef array, size_t idx) const;
    Presence arrayState(ArrayRef array, size_t idx) const;
    /** @} */

    /** Deterministic RNG for stochastic workloads (Gamteb). */
    Random &rng() { return rng_; }

    /** Run the scheduler until no threads remain enabled. */
    void run();

    const TamStats &stats() const { return stats_; }
    Frame &frame(uint32_t id);

    uint32_t liveFrames() const { return liveFrames_; }

  private:
    struct WorkItem
    {
        uint32_t frame;
        unsigned thread;
    };

    void count(Op op, unsigned n = 1);
    void deliver(Continuation c, const std::vector<Value> &vals);

    MachineConfig config_;
    TamStats stats_;
    Random rng_;

    std::vector<std::unique_ptr<Frame>> frames_;
    std::vector<WorkItem> stack_;
    std::vector<std::unique_ptr<IStructMemory>> arrays_;
    /** Exact double values of stored elements (IStructMemory tracks
     *  presence and continuations; verification reads this shadow). */
    std::vector<std::vector<Value>> shadow_;
    std::vector<Value> cells_;
    uint32_t nextNode_ = 0;
    uint32_t liveFrames_ = 0;
    uint64_t steps_ = 0;
};

} // namespace tam
} // namespace tcpni

#endif // TCPNI_TAM_MACHINE_HH
