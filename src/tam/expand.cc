#include "tam/expand.hh"

#include "cost/table1.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{
namespace tam
{

WorkCostModel
WorkCostModel::default88100()
{
    WorkCostModel m{};
    auto set = [&](Op op, double v) {
        m.cost[static_cast<size_t>(op)] = v;
    };
    set(Op::iop, 1);
    set(Op::fop, 2);            // 88100 FP latency on dependent chains
    set(Op::move, 1);
    set(Op::frameLoad, 2);      // fp-relative load incl. address arith
    set(Op::frameStore, 2);
    set(Op::ctlFork, 3);        // post a thread to the quantum
    set(Op::ctlSwitch, 10);     // TL0 quantum swap: cv restore + jump
    set(Op::syncDec, 5);        // load-decrement-branch-store on entry
    set(Op::falloc, 30);        // free-list allocation + cv init
    set(Op::ffree, 10);
    return m;
}

CommCosts
measureCommCosts(const ni::Model &model, bool basic_sw_checks)
{
    using cost::ProcCase;
    using msg::Kind;

    cost::Table1Harness h(model, basic_sw_checks);

    auto send_cost = [&](Kind k) {
        double copy = h.sendingCost(k);
        if (model.policy().directCompose()) {
            // Midpoint of the paper's range: some values are computed
            // directly into the output registers.
            copy -= msg::directlyComputableWords(k) / 2.0;
        }
        return copy;
    };

    CommCosts c;
    c.model = model;
    c.sendSend0 = send_cost(Kind::send0);
    c.sendSend1 = send_cost(Kind::send1);
    c.sendSend2 = send_cost(Kind::send2);
    c.sendRead = send_cost(Kind::read);
    c.sendWrite = send_cost(Kind::write);
    c.sendPRead = send_cost(Kind::pread);
    c.sendPWrite = send_cost(Kind::pwrite);

    auto send0 = h.processingCost(ProcCase::send0);
    auto send1 = h.processingCost(ProcCase::send1);
    auto send2 = h.processingCost(ProcCase::send2);
    auto read = h.processingCost(ProcCase::read);
    auto write = h.processingCost(ProcCase::write);
    auto pr_full = h.processingCost(ProcCase::preadFull);
    auto pr_empty = h.processingCost(ProcCase::preadEmpty);
    auto pr_def = h.processingCost(ProcCase::preadDeferred);
    auto pw_empty = h.processingCost(ProcCase::pwriteEmpty);

    c.dispatch = read.dispatching;
    c.dispSend0 = send0.dispatching;
    c.dispSend1 = send1.dispatching;
    c.dispSend2 = send2.dispatching;
    c.dispRead = read.dispatching;
    c.dispWrite = write.dispatching;
    c.dispPReadFull = pr_full.dispatching;
    c.dispPReadEmpty = pr_empty.dispatching;
    c.dispPReadDeferred = pr_def.dispatching;
    c.dispPWrite = pw_empty.dispatching;

    c.procSend0 = send0.processing;
    c.procSend1 = send1.processing;
    c.procSend2 = send2.processing;
    c.procRead = read.processing;
    c.procWrite = write.processing;
    c.procPReadFull = pr_full.processing;
    c.procPReadEmpty = pr_empty.processing;
    c.procPReadDeferred = pr_def.processing;
    c.procPWriteEmpty = pw_empty.processing;

    cost::LinearCost lin = h.pwriteDeferredCost();
    c.procPWriteDefBase = lin.base;
    c.procPWriteDefSlope = lin.slope;
    return c;
}

Figure12Bar
expand(const TamStats &s, const CommCosts &c, const WorkCostModel &w)
{
    Figure12Bar bar;

    for (size_t i = 0; i < static_cast<size_t>(Op::numOps); ++i)
        bar.work += static_cast<double>(s.ops[i]) * w.cost[i];

    auto n = [&](MsgKind k) {
        return static_cast<double>(s.msg(k));
    };

    // Every message reception pays one dispatch (per-case: unhidden
    // load-use stalls surface in short handlers' dispatch at high
    // off-chip latencies); replies are 1-word Send receptions.
    bar.dispatch += n(MsgKind::send0) * c.dispSend0;
    bar.dispatch += n(MsgKind::send1) * c.dispSend1;
    bar.dispatch += n(MsgKind::send2) * c.dispSend2;
    bar.dispatch += n(MsgKind::read) * c.dispRead;
    bar.dispatch += n(MsgKind::write) * c.dispWrite;
    bar.dispatch += n(MsgKind::preadFull) * c.dispPReadFull;
    bar.dispatch += n(MsgKind::preadEmpty) * c.dispPReadEmpty;
    bar.dispatch += n(MsgKind::preadDeferred) * c.dispPReadDeferred;
    bar.dispatch += n(MsgKind::pwrite) * c.dispPWrite;
    bar.dispatch += static_cast<double>(s.replies) * c.dispSend1;

    // Sending costs (request composition at the source).  Reply
    // composition is already inside the serving handler's processing
    // cost (Table 1's Read/PRead rows include the SEND-reply).
    bar.sending += n(MsgKind::send0) * c.sendSend0;
    bar.sending += n(MsgKind::send1) * c.sendSend1;
    bar.sending += n(MsgKind::send2) * c.sendSend2;
    bar.sending += n(MsgKind::read) * c.sendRead;
    bar.sending += n(MsgKind::write) * c.sendWrite;
    bar.sending += (n(MsgKind::preadFull) + n(MsgKind::preadEmpty) +
                    n(MsgKind::preadDeferred)) *
                   c.sendPRead;
    bar.sending += n(MsgKind::pwrite) * c.sendPWrite;
    bar.otherComm += bar.sending;

    // Processing costs at the receiver.
    bar.otherComm += n(MsgKind::send0) * c.procSend0;
    bar.otherComm += n(MsgKind::send1) * c.procSend1;
    bar.otherComm += n(MsgKind::send2) * c.procSend2;
    bar.otherComm += n(MsgKind::read) * c.procRead;
    bar.otherComm += n(MsgKind::write) * c.procWrite;
    bar.otherComm += n(MsgKind::preadFull) * c.procPReadFull;
    bar.otherComm += n(MsgKind::preadEmpty) * c.procPReadEmpty;
    bar.otherComm += n(MsgKind::preadDeferred) * c.procPReadDeferred;

    double pwrites = n(MsgKind::pwrite);
    double pw_deferred = static_cast<double>(s.pwriteWithDeferred);
    double pw_empty = pwrites - pw_deferred;
    bar.otherComm += pw_empty * c.procPWriteEmpty;
    bar.otherComm += pw_deferred * c.procPWriteDefBase;
    bar.otherComm += static_cast<double>(s.pwriteReleases) *
                     c.procPWriteDefSlope;

    // Reply receptions process as 1-word Sends.
    bar.otherComm += static_cast<double>(s.replies) * c.procSend1;

    return bar;
}

} // namespace tam
} // namespace tcpni
