/**
 * @file
 * Expansion of a TAM run into 88100 RISC cycles under each network
 * interface model -- the Figure-12 methodology.
 *
 * The paper "computed [total cycles] by simulating each program and
 * replacing the dynamic instruction count of each TAM intermediate
 * instruction by the appropriate number of RISC instructions"
 * (Section 4.2.3).  Work instructions expand through a fixed per-class
 * cost table; message events expand through the *measured* Table-1
 * costs of the chosen interface model, split into the figure's three
 * stacked components: non-message work, dispatching, and all other
 * communication (sending plus receiving message values).
 */

#ifndef TCPNI_TAM_EXPAND_HH
#define TCPNI_TAM_EXPAND_HH

#include <array>

#include "ni/config.hh"
#include "tam/tam.hh"

namespace tcpni
{
namespace tam
{

/** RISC cycles per TAM instruction class.  The 88100 issues one
 *  instruction per cycle; multi-step abstractions (scheduling, frame
 *  management) cost several. */
struct WorkCostModel
{
    std::array<double, static_cast<size_t>(Op::numOps)> cost;

    double
    of(Op op) const
    {
        return cost[static_cast<size_t>(op)];
    }

    /** Default expansion used throughout the reproduction. */
    static WorkCostModel default88100();
};

/** Per-message-event costs of one interface model (from Table 1). */
struct CommCosts
{
    ni::Model model;

    /** Sending cost per request kind (Kind order of msg::Kind). */
    double sendSend0, sendSend1, sendSend2;
    double sendRead, sendWrite, sendPRead, sendPWrite;

    /**
     * Dispatch cost per received message, per case.  At the paper's
     * 2-cycle off-chip latency these are all equal (Table 1 has a
     * single DISPATCHING row), but at higher latencies unhidden
     * load-use stalls surface in the dispatch of short handlers, so
     * the expansion keeps them separate.
     */
    double dispatch;        //!< the canonical (Read-case) value
    double dispSend0, dispSend1, dispSend2;
    double dispRead, dispWrite;
    double dispPReadFull, dispPReadEmpty, dispPReadDeferred;
    double dispPWrite;

    /** Processing costs. */
    double procSend0, procSend1, procSend2;
    double procRead, procWrite;
    double procPReadFull, procPReadEmpty, procPReadDeferred;
    double procPWriteEmpty, procPWriteDefBase, procPWriteDefSlope;
};

/**
 * Measure CommCosts for @p model by running the Table-1 kernel
 * harness.  Register-mapped sending costs use the midpoint of the
 * paper's range ("typically in the low to middle part of this range",
 * Section 4.1).  Basic models' dispatch includes the software
 * queue-threshold checks a deployed basic interface performs
 * (Section 2.2.4); pass @p basic_sw_checks = false for the raw
 * Table-1 dispatch costs.  The off-chip load-use delay comes from the
 * model itself (Model::withOffchipDelay for the Section 4.2.3 sweep).
 */
CommCosts measureCommCosts(const ni::Model &model,
                           bool basic_sw_checks = true);

/** One bar of Figure 12, in cycles. */
struct Figure12Bar
{
    double work = 0;        //!< non-message-passing cycles
    double dispatch = 0;    //!< message-dispatch cycles
    double otherComm = 0;   //!< sending + receiving message values

    /** Sending-only cycles (a subset of otherComm), kept separately
     *  for the paper's "sending and dispatching" five-fold claim. */
    double sending = 0;

    double total() const { return work + dispatch + otherComm; }

    /** Fraction of all cycles spent on message passing. */
    double
    commFraction() const
    {
        return total() > 0 ? (dispatch + otherComm) / total() : 0;
    }
};

/** Expand a TAM run under one interface model. */
Figure12Bar expand(const TamStats &stats, const CommCosts &comm,
                   const WorkCostModel &work =
                       WorkCostModel::default88100());

} // namespace tam
} // namespace tcpni

#endif // TCPNI_TAM_EXPAND_HH
