#include "tam/machine.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace tcpni
{
namespace tam
{

std::string
opName(Op op)
{
    switch (op) {
      case Op::iop: return "iop";
      case Op::fop: return "fop";
      case Op::move: return "move";
      case Op::frameLoad: return "frame_load";
      case Op::frameStore: return "frame_store";
      case Op::ctlFork: return "ctl_fork";
      case Op::ctlSwitch: return "ctl_switch";
      case Op::syncDec: return "sync_dec";
      case Op::falloc: return "falloc";
      case Op::ffree: return "ffree";
      case Op::numOps: break;
    }
    return "?";
}

std::string
msgKindName(MsgKind k)
{
    switch (k) {
      case MsgKind::send0: return "send0";
      case MsgKind::send1: return "send1";
      case MsgKind::send2: return "send2";
      case MsgKind::read: return "read";
      case MsgKind::write: return "write";
      case MsgKind::preadFull: return "pread_full";
      case MsgKind::preadEmpty: return "pread_empty";
      case MsgKind::preadDeferred: return "pread_deferred";
      case MsgKind::pwrite: return "pwrite";
      case MsgKind::numKinds: break;
    }
    return "?";
}

uint64_t
TamStats::totalMessages() const
{
    uint64_t total = 0;
    for (uint64_t m : msgs)
        total += m;
    return total + replies;
}

Machine::Machine(MachineConfig config)
    : config_(config), rng_(config.rngSeed)
{
}

Machine::~Machine() = default;

void
Machine::count(Op op, unsigned n)
{
    stats_.ops[static_cast<size_t>(op)] += n;
    steps_ += n;
    if (steps_ > config_.maxSteps)
        panic("TAM machine exceeded %llu steps; runaway program?",
              static_cast<unsigned long long>(config_.maxSteps));
}

Value
Machine::frameGet(Frame &f, unsigned slot)
{
    count(Op::frameLoad);
    if (slot >= f.locals.size())
        panic("frame %u slot %u out of range (%zu locals) in '%s'",
              f.id(), slot, f.locals.size(), f.codeBlock()->name.c_str());
    return f.locals[slot];
}

void
Machine::frameSet(Frame &f, unsigned slot, Value v)
{
    count(Op::frameStore);
    if (slot >= f.locals.size())
        panic("frame %u slot %u out of range (%zu locals) in '%s'",
              f.id(), slot, f.locals.size(), f.codeBlock()->name.c_str());
    f.locals[slot] = v;
}

Frame &
Machine::falloc(const CodeBlock *cb)
{
    count(Op::falloc);
    uint32_t id = static_cast<uint32_t>(frames_.size());
    NodeId node = nextNode_;
    nextNode_ = (nextNode_ + 1) % config_.numNodes;
    frames_.push_back(std::make_unique<Frame>(id, cb, node));
    ++liveFrames_;
    return *frames_.back();
}

void
Machine::ffree(Frame &f)
{
    count(Op::ffree);
    if (f.freed_)
        panic("double ffree of frame %u ('%s')", f.id(),
              f.codeBlock()->name.c_str());
    f.freed_ = true;
    --liveFrames_;
}

Frame &
Machine::frame(uint32_t id)
{
    if (id >= frames_.size())
        panic("unknown frame id %u", id);
    Frame &f = *frames_[id];
    if (f.freed_)
        panic("access to freed frame %u ('%s')", id,
              f.codeBlock()->name.c_str());
    return f;
}

void
Machine::fork(Frame &f, unsigned thread)
{
    count(Op::ctlFork);
    if (thread >= f.codeBlock()->threads.size())
        panic("fork of nonexistent thread %u in '%s'", thread,
              f.codeBlock()->name.c_str());
    stack_.push_back({f.id(), thread});
}

void
Machine::syncDec(Frame &f, unsigned slot, unsigned thread)
{
    count(Op::syncDec);
    if (slot >= f.locals.size())
        panic("sync slot %u out of range in '%s'", slot,
              f.codeBlock()->name.c_str());
    f.locals[slot] -= 1.0;
    if (f.locals[slot] < -0.5)
        panic("sync counter underflow in '%s' slot %u",
              f.codeBlock()->name.c_str(), slot);
    if (f.locals[slot] < 0.5)
        fork(f, thread);
}

void
Machine::deliver(Continuation c, const std::vector<Value> &vals)
{
    Frame &f = frame(c.frame);
    const CodeBlock *cb = f.codeBlock();
    if (c.inlet >= cb->inlets.size())
        panic("message to nonexistent inlet %u of '%s'", c.inlet,
              cb->name.c_str());
    cb->inlets[c.inlet](*this, f, vals);
}

void
Machine::send(Continuation c, const std::vector<Value> &vals)
{
    if (vals.size() > 2)
        panic("send with %zu data words (max 2 in a 5-word message)",
              vals.size());
    MsgKind kind = vals.size() == 0   ? MsgKind::send0
                   : vals.size() == 1 ? MsgKind::send1
                                      : MsgKind::send2;
    ++stats_.msgs[static_cast<size_t>(kind)];
    TCPNI_TRACE_AT(TAM, steps_, "tam", "send%zu to frame %u inlet %u",
                   vals.size(), c.frame, c.inlet);
    deliver(c, vals);
}

void
Machine::remoteRead(CellRef cell, Continuation c)
{
    ++stats_.msgs[static_cast<size_t>(MsgKind::read)];
    TCPNI_TRACE_AT(TAM, steps_, "tam", "read cell %u -> frame %u "
                   "inlet %u", cell.id, c.frame, c.inlet);
    if (cell.id >= cells_.size())
        panic("remoteRead of unknown cell %u", cell.id);
    // The remote handler replies with a 1-word Send.
    ++stats_.replies;
    deliver(c, {cells_[cell.id]});
}

void
Machine::remoteWrite(CellRef cell, Value v)
{
    ++stats_.msgs[static_cast<size_t>(MsgKind::write)];
    TCPNI_TRACE_AT(TAM, steps_, "tam", "write cell %u", cell.id);
    if (cell.id >= cells_.size())
        panic("remoteWrite of unknown cell %u", cell.id);
    cells_[cell.id] = v;
}

void
Machine::ifetch(ArrayRef array, size_t idx, Continuation c)
{
    if (array.id >= arrays_.size())
        panic("ifetch of unknown array %u", array.id);
    IStructMemory &mem = *arrays_[array.id];

    // Classify the access the way Mint classified the paper's PReads.
    Presence before = mem.state(idx);
    MsgKind kind = before == Presence::full     ? MsgKind::preadFull
                   : before == Presence::empty  ? MsgKind::preadEmpty
                                                : MsgKind::preadDeferred;
    ++stats_.msgs[static_cast<size_t>(kind)];
    TCPNI_TRACE_AT(TAM, steps_, "tam", "pread array %u[%zu] %s",
                   array.id, idx,
                   before == Presence::full
                       ? "FULL -> reply"
                       : before == Presence::empty
                             ? "EMPTY -> DEFERRED (reader queued)"
                             : "DEFERRED -> reader appended");

    IReadResult r = mem.read(idx, c.frame, c.inlet);
    if (r.full) {
        // Immediate 1-word Send reply from the element's home node.
        // The exact value lives in the shadow (see istore()).
        ++stats_.replies;
        deliver(c, {shadow_[array.id][idx]});
    }
}

void
Machine::istore(ArrayRef array, size_t idx, Value v)
{
    if (array.id >= arrays_.size())
        panic("istore of unknown array %u", array.id);
    IStructMemory &mem = *arrays_[array.id];

    ++stats_.msgs[static_cast<size_t>(MsgKind::pwrite)];

    // I-structure values are word-encoded; the workloads store either
    // small integers or scaled fixed-point floats.  We keep the exact
    // double alongside in a shadow so numeric verification is exact,
    // while the IStructMemory tracks presence and continuations.
    IWriteResult w = mem.write(idx, 0);
    shadow_[array.id][idx] = v;
    TCPNI_TRACE_AT(TAM, steps_, "tam", "pwrite array %u[%zu] %s -> "
                   "FULL (releases %zu deferred readers)", array.id,
                   idx, w.readers.empty() ? "EMPTY" : "DEFERRED",
                   w.readers.size());

    if (!w.readers.empty()) {
        ++stats_.pwriteWithDeferred;
        stats_.pwriteReleases += w.readers.size();
    }
    for (const DeferredReader &reader : w.readers) {
        ++stats_.replies;
        deliver({reader.fp, static_cast<uint16_t>(reader.ip)}, {v});
    }
}

ArrayRef
Machine::heapAlloc(size_t nelems)
{
    uint32_t id = static_cast<uint32_t>(arrays_.size());
    arrays_.push_back(std::make_unique<IStructMemory>(nelems));
    shadow_.emplace_back(nelems, 0.0);
    return {id};
}

CellRef
Machine::cellAlloc(Value initial)
{
    uint32_t id = static_cast<uint32_t>(cells_.size());
    cells_.push_back(initial);
    return {id};
}

Value
Machine::cellValue(CellRef cell) const
{
    if (cell.id >= cells_.size())
        panic("unknown cell %u", cell.id);
    return cells_[cell.id];
}

Value
Machine::arrayPeek(ArrayRef array, size_t idx) const
{
    if (array.id >= arrays_.size())
        panic("unknown array %u", array.id);
    if (arrays_[array.id]->state(idx) != Presence::full)
        panic("arrayPeek of non-full element %zu", idx);
    return shadow_[array.id][idx];
}

Presence
Machine::arrayState(ArrayRef array, size_t idx) const
{
    if (array.id >= arrays_.size())
        panic("unknown array %u", array.id);
    return arrays_[array.id]->state(idx);
}

void
Machine::run()
{
    while (!stack_.empty()) {
        WorkItem item = stack_.back();
        stack_.pop_back();
        count(Op::ctlSwitch);
        Frame &f = frame(item.frame);
        f.codeBlock()->threads[item.thread](*this, f);
    }
}

} // namespace tam
} // namespace tcpni
