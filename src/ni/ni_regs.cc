#include "ni/ni_regs.hh"

#include "noc/message.hh"

namespace tcpni
{
namespace ni
{

std::map<std::string, uint64_t>
asmSymbols()
{
    using namespace cmdaddr;
    std::map<std::string, uint64_t> syms;

    syms["NI_BASE"] = niAddrBase;

    static const char *reg_names[numNiRegs] = {
        "NI_O0", "NI_O1", "NI_O2", "NI_O3", "NI_O4",
        "NI_I0", "NI_I1", "NI_I2", "NI_I3", "NI_I4",
        "NI_STATUS", "NI_CONTROL", "NI_MSGIP", "NI_NEXTMSGIP",
        "NI_IPBASE",
    };
    for (unsigned r = 0; r < numNiRegs; ++r)
        syms[reg_names[r]] = static_cast<uint64_t>(r) << regShift;

    // Command bits for cache-mapped accesses (Figure 9).
    syms["NI_SEND"] = 1ull << modeShift;
    syms["NI_REPLY"] = 2ull << modeShift;
    syms["NI_FWD"] = 3ull << modeShift;
    syms["NI_TYPE"] = 1ull << typeShift;    // multiply by the type
    syms["NI_NEXT"] = 1ull << nextBit;
    syms["NI_SCRLIN"] = 1ull << scrollInBit;
    syms["NI_SCRLOUT"] = 1ull << scrollOutBit;

    // Dispatch table layout (Section 2.2.3).
    syms["HANDLER_STRIDE"] = 1ull << dispatch::handlerShift;
    syms["DISP_IAFULL"] = 1ull << dispatch::iafullShift;
    syms["DISP_OAFULL"] = 1ull << dispatch::oafullShift;

    // STATUS register fields.
    syms["ST_MSGVALID"] = 1ull << status::msgValidBit;
    syms["ST_VALID_SHIFT"] = status::msgValidBit;
    syms["ST_TYPE_SHIFT"] = status::msgTypeShift;
    syms["ST_IAFULL"] = 1ull << status::iafullBit;
    syms["ST_OAFULL"] = 1ull << status::oafullBit;
    syms["ST_EXC"] = 1ull << status::excPendingBit;

    // CONTROL register fields.
    syms["CT_STALL"] = 1ull << control::stallOnFullBit;
    syms["CT_CHECKPIN"] = 1ull << control::checkPinBit;
    syms["CT_INTEN"] = 1ull << control::intEnableBit;

    // Global-word composition helpers.
    syms["NODE_SHIFT"] = nodeShift;

    return syms;
}

} // namespace ni
} // namespace tcpni
