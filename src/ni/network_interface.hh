/**
 * @file
 * The network interface architecture of Section 2.
 *
 * One NetworkInterface instance models the programmer-visible state of
 * Figure 1 -- the five output registers, five input registers, STATUS,
 * CONTROL, and (when the hardware-dispatch optimization is present) the
 * IpBase / MsgIp / NextMsgIp registers -- together with the input and
 * output message queues and the SEND / NEXT / SCROLL command engine.
 *
 * The same class serves all three placements of Section 3; placement
 * determines how the processor reaches these registers (and with what
 * latency), which is modeled in the Cpu coupling:
 *
 *  - cache-mapped placements access registers and issue commands
 *    through load/store addresses encoded per Figure 9
 *    (see access());
 *  - the register-file placement accesses registers as r16..r30 and
 *    issues commands through the spare bits of triadic instructions
 *    (see Cpu).
 *
 * Command ordering within a single instruction (or single cache
 * access) follows the paper's examples: the register read/write takes
 * effect first, then SEND (composing from the current register
 * contents), then NEXT.
 */

#ifndef TCPNI_NI_NETWORK_INTERFACE_HH
#define TCPNI_NI_NETWORK_INTERFACE_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "isa/isa.hh"
#include "metrics/metrics.hh"
#include "ni/config.hh"
#include "ni/ni_regs.hh"
#include "noc/network.hh"
#include "sim/sim_object.hh"

namespace tcpni
{
namespace ni
{

/** Outcome of a SEND/NEXT command group. */
enum class CmdResult : uint8_t
{
    ok,     //!< commands executed (possibly raising an exception)
    stall,  //!< output queue full with stall policy: retry next cycle
};

/** The paper's network interface. */
class NetworkInterface : public SimObject
{
  public:
    NetworkInterface(std::string name, EventQueue &eq, NodeId node,
                     Network &network, NiConfig config);
    ~NetworkInterface() override;

    const NiConfig &config() const { return config_; }
    NodeId node() const { return node_; }

    /** @{ Register-level access (both couplings use these). */
    Word readReg(unsigned reg);
    void writeReg(unsigned reg, Word value);
    /** @} */

    /**
     * Execute the SEND and/or NEXT commands carried by one instruction
     * or one command address.  SEND happens before NEXT.
     */
    CmdResult command(const isa::NiCommand &cmd);

    /** SCROLL-OUT: bank the output registers as the next five words of
     *  a long message and continue composing it (Section 2.1.2). */
    void scrollOut();

    /** SCROLL-IN: advance the input registers to the next five words of
     *  the current long message.  Scrolling past the end raises the
     *  inputPortError exception. */
    void scrollIn();

    /**
     * Cache-mapped access (Figure 9): decode @p addr, perform the
     * register read or write, then execute any encoded commands.
     *
     * @param addr      full address; low bits encode register+commands
     * @param data      store data (ignored for loads)
     * @param is_store  store vs load
     * @param result    out: loaded value (pre-command register value)
     * @return stall indication, as for command()
     */
    CmdResult access(Word addr, Word data, bool is_store, Word &result);

    /** True if @p addr falls in the cache-mapped interface window. */
    static bool
    isNiAddr(Word addr)
    {
        return (addr & cmdaddr::niAddrBase) == cmdaddr::niAddrBase;
    }

    /** Network-side delivery sink; false refuses (input queue full). */
    bool acceptFromNetwork(const Message &msg);

    /** @{ Supervisor-level access to the privileged message queue
     *     (Section 2.1.3).  In hardware these messages would be held in
     *     privileged state and drained by the operating system. */
    bool hasPrivileged() const { return !privQueue_.empty(); }
    Message popPrivileged();
    /** @} */

    /** @{ Introspection for tests and harnesses. */
    size_t inputQueueLen() const { return inputQueue_.size(); }
    size_t outputQueueLen() const { return outputQueue_.size(); }
    bool msgValid() const { return inputValid_; }
    uint8_t currentType() const { return currentType_; }
    ExcCode pendingException() const { return excCode_; }
    uint64_t numSent() const { return sent_.value(); }
    uint64_t numReceived() const { return received_.value(); }
    /** Trace id of the message currently in the input registers. */
    uint64_t currentTraceId() const { return currentTraceId_; }
    /** @} */

    /** @{ Latency and occupancy statistics (see the stat
     *     descriptions registered in the constructor). */
    const metrics::Histogram &e2eLatency() const { return e2eLatency_; }
    const metrics::Histogram &netLatency() const { return netLatency_; }
    const metrics::Histogram &queueLatency() const
    {
        return queueLatency_;
    }
    const stats::TimeWeighted &inputOccupancy() const
    {
        return inputOcc_;
    }
    const stats::TimeWeighted &outputOccupancy() const
    {
        return outputOcc_;
    }
    /** @} */

    /** True if a SEND issued now would stall under the stall-on-full
     *  policy (used by the CPU to hold the instruction at issue). */
    bool sendWouldStall() const;

    /** Compute the current MsgIp value (Figure 7). */
    Word msgIp() const;

    /** Compute the NextMsgIp value: MsgIp of the message NEXT would
     *  load (the head of the input queue). */
    Word nextMsgIp() const;

    /**
     * Register the processor's interrupt sink (interrupt-driven
     * reception, CONTROL bit 2).  Called with the handler address
     * (the MsgIp value) when a message advances into empty input
     * registers while interrupts are enabled.
     */
    void setInterruptSink(std::function<void(Word)> sink)
    {
        interruptSink_ = std::move(sink);
    }

  private:
    class PumpEvent : public Event
    {
      public:
        explicit PumpEvent(NetworkInterface &ni)
            : Event(niPri), ni_(ni)
        {}
        void process() override { ni_.pump(); }
        std::string name() const override { return "ni-pump"; }

      private:
        NetworkInterface &ni_;
    };

    /** Compose an outgoing message per the SEND mode and type. */
    Message compose(isa::SendMode mode, uint8_t type) const;

    /** Try to enqueue a composed message; applies the full-queue
     *  policy.  @return stall or ok. */
    CmdResult enqueueSend(Message msg);

    /** Execute NEXT. */
    void doNext();

    /** Pop the queue into the input registers if they are invalid. */
    void refill();

    /** Offer queued output messages to the network. */
    void pump();
    void schedulePump();

    /** Record an exceptional condition (first pending wins). */
    void raise(ExcCode code);

    /** Fold the current queue depths into the time-weighted
     *  occupancy stats (call after any queue size change). */
    void noteQueueLevels();

    /** Figure-7 case analysis for an arbitrary "current" message. */
    Word dispatchFor(bool valid, uint8_t type, Word word1) const;

    bool iafull() const;
    bool oafull() const;
    unsigned inThreshold() const;
    unsigned outThreshold() const;

    NodeId node_;
    Network &network_;
    NiConfig config_;

    Word outputRegs_[msgWords] = {0, 0, 0, 0, 0};
    Word inputRegs_[msgWords] = {0, 0, 0, 0, 0};
    bool inputValid_ = false;
    uint8_t currentType_ = 0;

    Word control_ = 0;
    Word ipBase_ = 0;
    ExcCode excCode_ = ExcCode::none;

    std::deque<Message> inputQueue_;
    std::deque<Message> outputQueue_;
    std::deque<Message> privQueue_;

    /** SCROLL-OUT accumulation buffer for the message being composed. */
    std::vector<Word> pendingOut_;

    /** SCROLL-IN offset into the current message's extra words. */
    size_t scrollOffset_ = 0;

    /** Extra words of the message currently in the input registers. */
    std::vector<Word> currentExtra_;

    /** Lifecycle trace id of the message in the input registers. */
    uint64_t currentTraceId_ = 0;

    PumpEvent pumpEvent_;
    std::function<void(Word)> interruptSink_;

    stats::Scalar sent_;
    stats::Scalar interrupts_;
    stats::Scalar received_;
    stats::Scalar refused_;
    stats::Scalar overflowExc_;
    stats::Scalar privReceived_;

    /** @{ Message-latency histograms (cycles), recorded when a
     *     message advances into the input registers; HDR-bucketed so
     *     tail percentiles (p99/p999) stay exact-to-3% however long
     *     the run. */
    metrics::Histogram e2eLatency_;    //!< send -> dispatch
    metrics::Histogram netLatency_;    //!< send -> arrival
    metrics::Histogram queueLatency_;  //!< arrival -> dispatch
    /** @} */

    /** @{ Time-weighted input/output queue occupancy. */
    stats::TimeWeighted inputOcc_;
    stats::TimeWeighted outputOcc_;
    /** @} */

    /** @{ Hardware-style event counters (always maintained; the cost
     *     is one increment on an already-rare path). */
    uint64_t oqStallCycles_ = 0;    //!< SEND stall cycles (full queue)
    uint64_t iafullCrossings_ = 0;  //!< iafull rising edges
    uint64_t oafullCrossings_ = 0;  //!< oafull rising edges
    /** @} */

    /** Telemetry group; null unless a metrics registry was installed
     *  when this NI was constructed. */
    std::shared_ptr<metrics::Group> mgroup_;
};

} // namespace ni
} // namespace tcpni

#endif // TCPNI_NI_NETWORK_INTERFACE_HH
