#include "ni/placement_policy.hh"

#include "common/logging.hh"

namespace tcpni
{
namespace ni
{

namespace
{

/** Section 3.1: the interface on the external cache bus.  Reads cross
 *  the chip boundary, so loads carry the configurable off-chip
 *  load-use delay. */
class OffChipCachePolicy final : public PlacementPolicy
{
  public:
    Placement kind() const override { return Placement::offChipCache; }
    std::string name() const override { return "Off-chip Cache"; }
    std::string shortName() const override { return "off"; }
    std::string columnLabel() const override { return "Off-chip"; }
    Addressing addressing() const override
    {
        return Addressing::memoryMapped;
    }
    bool foldedNiCommands() const override { return false; }
    Cycles
    loadUseDelay(const NiConfig &cfg) const override
    {
        return cfg.offChipLoadUseDelay;
    }
    bool directCompose() const override { return false; }
    bool optimizedKernelHasEscape() const override { return false; }
};

/** Section 3.2: the interface on the internal cache bus.  Same
 *  load/store addressing, but reads complete at cache speed. */
class OnChipCachePolicy final : public PlacementPolicy
{
  public:
    Placement kind() const override { return Placement::onChipCache; }
    std::string name() const override { return "On-chip Cache"; }
    std::string shortName() const override { return "on"; }
    std::string columnLabel() const override { return "On-chip"; }
    Addressing addressing() const override
    {
        return Addressing::memoryMapped;
    }
    bool foldedNiCommands() const override { return false; }
    Cycles loadUseDelay(const NiConfig &) const override { return 0; }
    bool directCompose() const override { return false; }
    bool optimizedKernelHasEscape() const override { return false; }
};

/** Section 3.3: interface registers aliased into the register file;
 *  NI commands fold into instruction bits and values can be computed
 *  directly into the output registers. */
class RegisterFilePolicy final : public PlacementPolicy
{
  public:
    Placement kind() const override { return Placement::registerFile; }
    std::string name() const override { return "Register Mapped"; }
    std::string shortName() const override { return "reg"; }
    std::string columnLabel() const override { return "Reg"; }
    Addressing addressing() const override
    {
        return Addressing::registerFile;
    }
    bool foldedNiCommands() const override { return true; }
    Cycles loadUseDelay(const NiConfig &) const override { return 0; }
    bool directCompose() const override { return true; }
    bool optimizedKernelHasEscape() const override { return true; }
};

/** On-NI handler execution (sPIN-style): the handlers run on a
 *  handler processing unit inside the interface, register-coupled to
 *  the NI state with no load-use penalty.  The *host* still reaches
 *  the interface through the memory-mapped window of an off-chip NIC
 *  (so senders and the proxy kernel pay the off-chip delay), but
 *  dispatch and processing never touch the CPU load-use path. */
class OnNiPolicy final : public PlacementPolicy
{
  public:
    Placement kind() const override { return Placement::onNi; }
    std::string name() const override { return "On-NI"; }
    std::string shortName() const override { return "onni"; }
    std::string columnLabel() const override { return "On-NI"; }
    Addressing addressing() const override
    {
        return Addressing::memoryMapped;
    }
    bool foldedNiCommands() const override { return false; }
    Cycles
    loadUseDelay(const NiConfig &cfg) const override
    {
        return cfg.offChipLoadUseDelay;
    }
    bool directCompose() const override { return false; }
    bool optimizedKernelHasEscape() const override { return true; }
    bool handlersOnNi() const override { return true; }
    Cycles handlerTimeBudget() const override { return 64; }
};

} // namespace

const PlacementPolicy &
placementPolicy(Placement p)
{
    static const OffChipCachePolicy off_chip;
    static const OnChipCachePolicy on_chip;
    static const RegisterFilePolicy reg_file;
    static const OnNiPolicy on_ni;
    switch (p) {
      case Placement::offChipCache: return off_chip;
      case Placement::onChipCache: return on_chip;
      case Placement::registerFile: return reg_file;
      case Placement::onNi: return on_ni;
    }
    panic("unknown placement %d", static_cast<int>(p));
}

} // namespace ni
} // namespace tcpni
