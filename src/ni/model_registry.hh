/**
 * @file
 * The evaluation-model registry: the single authority for which
 * (placement, feature-set) models exist, replacing the hardwired
 * allModels() six-tuple.  Benchmarks, tests, and tcpni_lint iterate
 * the registry, so adding a model is one registration — no driver or
 * tool edits.
 *
 * The paper's six models (three placements x {basic, optimized}) are
 * always registered.  Building with -DTCPNI_EXTRA_MODELS=ON also
 * registers the Section 4.2.3 "far off-chip" variant (off-chip
 * placement with load-use delay 8), demonstrating that a new model
 * flows through every consumer without further code changes.
 */

#ifndef TCPNI_NI_MODEL_REGISTRY_HH
#define TCPNI_NI_MODEL_REGISTRY_HH

#include <array>
#include <string>
#include <vector>

#include "ni/config.hh"

namespace tcpni
{
namespace ni
{

/** One registry entry: canonical names plus the model they denote. */
struct ModelInfo
{
    std::string name;       //!< e.g. "Optimized Register Mapped"
    std::string shortName;  //!< e.g. "reg-opt" (CLI --model tag)
    std::string tableLabel; //!< e.g. "Opt Reg" (bench table column)
    Model model;
};

class ModelRegistry
{
  public:
    /** The process-wide registry, seeded with the paper's six models
     *  (and the far-off-chip variant under TCPNI_EXTRA_MODELS). */
    static ModelRegistry &instance();

    /** Register a model under its canonical names.  fatal()s on a
     *  duplicate name or shortName. */
    void add(ModelInfo info);

    /** All registered models, in registration order. */
    const std::vector<ModelInfo> &all() const { return entries_; }

    /** Look up by name or shortName; nullptr when absent. */
    const ModelInfo *find(const std::string &name_or_short) const;

    size_t size() const { return entries_.size(); }

  private:
    ModelRegistry();

    std::vector<ModelInfo> entries_;
};

/** Shorthand for ModelRegistry::instance().all(). */
const std::vector<ModelInfo> &registeredModels();

/**
 * The paper's six models in the evaluation's canonical order
 * (optimized reg/on/off, then basic reg/on/off) — the fixed set the
 * golden outputs are pinned to, independent of registry extensions.
 */
const std::array<Model, 6> &paperModels();

} // namespace ni
} // namespace tcpni

#endif // TCPNI_NI_MODEL_REGISTRY_HH
