/**
 * @file
 * Architectural constants of the network interface: register numbers,
 * STATUS / CONTROL register layouts, the Figure-9 command-address
 * encoding used by the cache-mapped implementations, and the MsgIp
 * dispatch-table layout.
 */

#ifndef TCPNI_NI_NI_REGS_HH
#define TCPNI_NI_NI_REGS_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/bitfield.hh"
#include "sim/types.hh"

namespace tcpni
{
namespace ni
{

/**
 * Interface register numbers (Figure 1).  The paper's Figure-9 example
 * decodes register number 6 as i1, fixing the order: the five output
 * registers first, then the five input registers, then the control and
 * dispatch registers.
 */
enum NiReg : unsigned
{
    regO0 = 0,
    regO1 = 1,
    regO2 = 2,
    regO3 = 3,
    regO4 = 4,
    regI0 = 5,
    regI1 = 6,
    regI2 = 7,
    regI3 = 8,
    regI4 = 9,
    regStatus = 10,
    regControl = 11,
    regMsgIp = 12,
    regNextMsgIp = 13,
    regIpBase = 14,

    numNiRegs = 15,
};

/**
 * STATUS register layout.  The STATUS register reports the current
 * state of the interface (Section 2.1): queue occupancies, whether the
 * input registers hold a valid message and its type, the queue
 * threshold bits, and any pending exceptional condition.
 */
namespace status
{
constexpr unsigned inputLenShift = 0;      //!< [7:0] input queue length
constexpr unsigned outputLenShift = 8;     //!< [15:8] output queue length
constexpr unsigned msgValidBit = 16;       //!< input regs hold a message
constexpr unsigned msgTypeShift = 17;      //!< [20:17] current msg type
constexpr unsigned iafullBit = 21;         //!< input queue over threshold
constexpr unsigned oafullBit = 22;         //!< output queue over threshold
constexpr unsigned excPendingBit = 23;     //!< exception pending
constexpr unsigned excCodeShift = 24;      //!< [27:24] exception code

/* The fields must tile without overlap; handler code extracts the
 * type with a single shift-and-mask relative to msgValidBit. */
static_assert(msgValidBit == outputLenShift + 8 &&
              msgTypeShift == msgValidBit + 1 &&
              iafullBit == msgTypeShift + 4 &&
              oafullBit == iafullBit + 1 &&
              excPendingBit == oafullBit + 1 &&
              excCodeShift == excPendingBit + 1,
              "STATUS fields must be adjacent and non-overlapping");
} // namespace status

/** Exception codes reported through STATUS [27:24]. */
enum class ExcCode : uint8_t
{
    none = 0,
    outputOverflow = 1,     //!< SEND with a full output queue
    inputPortError = 2,     //!< malformed input (e.g. bad SCROLL-IN)
    privilegedPending = 3,  //!< privileged message awaiting the OS
    pinMismatch = 4,        //!< message for an inactive process queued
};

/**
 * CONTROL register layout (Section 2.1): the full-output-queue policy,
 * PIN checking, the two queue thresholds, and the active process PIN.
 */
namespace control
{
constexpr unsigned stallOnFullBit = 0;     //!< 1: stall SEND, 0: raise exc
constexpr unsigned checkPinBit = 1;        //!< enable PIN matching
/**
 * Interrupt-driven reception (Section 2.1 leaves the choice of polled
 * vs interrupt-driven open; both are implemented).  While set, the
 * arrival of a message into empty input registers interrupts the
 * processor: the return address is placed in the interrupt link
 * register (r14 by convention) and control transfers to the MsgIp
 * handler.  The bit clears on interrupt entry; the handler re-enables
 * it (write CONTROL) before returning.
 */
constexpr unsigned intEnableBit = 2;
constexpr unsigned inThresholdShift = 8;   //!< [15:8]
constexpr unsigned outThresholdShift = 16; //!< [23:16]
constexpr unsigned pinShift = 24;          //!< [31:24] active process PIN
} // namespace control

/**
 * Figure 9: encoding of network interface commands and register number
 * into a memory address for the cache-mapped implementations.
 *
 *   [5:2]   interface register number
 *   [9:6]   type of message to be sent
 *   [11:10] 01 SEND / 10 SEND-reply / 11 SEND-forward / 00 none
 *   [12]    NEXT command
 *   [13]    SCROLL-IN command   (our variable-length extension)
 *   [14]    SCROLL-OUT command  (our variable-length extension)
 *
 * The interface claims the top of the address space: any access whose
 * upper bits match niAddrBase is directed to the interface.
 */
namespace cmdaddr
{
constexpr unsigned regShift = 2;
constexpr unsigned typeShift = 6;
constexpr unsigned modeShift = 10;
constexpr unsigned nextBit = 12;
constexpr unsigned scrollInBit = 13;
constexpr unsigned scrollOutBit = 14;

static_assert(typeShift == regShift + 4 &&
              modeShift == typeShift + 4 &&
              nextBit == modeShift + 2 &&
              scrollInBit == nextBit + 1 &&
              scrollOutBit == scrollInBit + 1,
              "Figure-9 command-address fields must tile the offset");

/** Base address of the cache-mapped interface window. */
constexpr Word niAddrBase = 0xffff0000u;

/** Compose a command address (offset part only). */
constexpr Word
offset(unsigned reg, unsigned mode = 0, unsigned type = 0,
       bool next = false, bool scroll_in = false, bool scroll_out = false)
{
    return static_cast<Word>((reg << regShift) | (type << typeShift) |
                             (mode << modeShift) |
                             (next ? 1u << nextBit : 0) |
                             (scroll_in ? 1u << scrollInBit : 0) |
                             (scroll_out ? 1u << scrollOutBit : 0));
}
} // namespace cmdaddr

/**
 * MsgIp dispatch-table layout (Section 2.2.3 / Figure 7).
 *
 * Each handler stub occupies a fixed 128-byte (32-instruction) slot,
 * large enough to hold the paper's biggest handler (PRead on an empty
 * element) entirely inline.  The slot index concatenates the queue-
 * threshold bits with the 4-bit message type -- giving the paper's
 * "four versions of each message handler" -- so the table spans 64
 * slots / 8 KB and IpBase must be 8 KB aligned:
 *
 *   MsgIp = IpBase[31:13] | iafull << 12 | oafull << 11 | type << 7
 *
 * Special indices: type 0000 with no valid message is the poll/idle
 * handler; type 0001 is reserved for the exception handler (messages of
 * type 1 are disallowed); a valid type-0 message below both thresholds
 * dispatches through the message's word 1 instead (case 2 of Figure 7).
 */
namespace dispatch
{
constexpr unsigned handlerShift = 7;    //!< log2(handler slot bytes)
constexpr unsigned typeShift = 7;       //!< type -> address bits [10:7]
constexpr unsigned oafullShift = 11;
constexpr unsigned iafullShift = 12;
constexpr Word tableMask = 0xffffe000u; //!< IpBase bits used

constexpr Word
handlerAddr(Word ip_base, unsigned type, bool iafull = false,
            bool oafull = false)
{
    return (ip_base & tableMask) | (static_cast<Word>(type) << typeShift) |
           (iafull ? 1u << iafullShift : 0) |
           (oafull ? 1u << oafullShift : 0);
}

/** The exception handler's reserved type. */
constexpr unsigned excType = 1;

/*
 * The MsgIp composition only works if the three inserted fields tile
 * the 13 bits below the IpBase window without overlapping each other
 * or the window.  Everything downstream (the 128-byte handler slots,
 * the four threshold variants, the 8 KB table size, the verifier's
 * slot enumeration) is derived from these relationships, so pin them
 * down at compile time.
 */
static_assert(typeShift == handlerShift,
              "type index must start at the handler-slot stride");
static_assert(oafullShift == typeShift + 4,
              "oafull must sit directly above the 4-bit type field");
static_assert(iafullShift == oafullShift + 1,
              "iafull must sit directly above oafull");
static_assert(tableMask == static_cast<Word>(~mask(iafullShift + 1)),
              "IpBase window must start directly above iafull");
static_assert((handlerAddr(0, 0xf, true, true) & tableMask) == 0,
              "type/iafull/oafull fields must not reach the IpBase "
              "window");
static_assert(handlerAddr(tableMask, 0xf, true, true) ==
                  (tableMask | (0xfu << typeShift) |
                   (1u << iafullShift) | (1u << oafullShift)),
              "the four MsgIp fields must be disjoint");
} // namespace dispatch

/**
 * Symbols describing this encoding, for use as assembler predefines.
 * Kernels reference e.g. "NI_I1 | NI_REPLY | NI_TYPE*7 | NI_NEXT".
 */
std::map<std::string, uint64_t> asmSymbols();

} // namespace ni
} // namespace tcpni

#endif // TCPNI_NI_NI_REGS_HH
