/**
 * @file
 * The placement-policy layer: everything that differs between the
 * paper's three NI placements (Section 3) expressed as one small
 * interface, so that the CPU coupling, the kernel library, the Table-1
 * cost model, and the static verifier never branch on the raw
 * Placement enum.
 *
 * A policy answers four questions about its placement:
 *
 *  - addressing: are the NI registers aliased into the processor's
 *    register file, or reached through a memory-mapped command window?
 *    This is also the kernel-library's instruction-sequence selection
 *    hook: msg/kernels.cc picks the register-operand or load/store
 *    handler and sender sequences from it.
 *  - folded commands: can SEND / NEXT / REPLY / FORWARD be encoded as
 *    instruction bits (`!send`, `!next`) instead of command-window
 *    accesses?  (Section 2.1's register-file coupling only.)
 *  - access latency: how many extra load-use delay cycles does the
 *    processor see on a read from the interface?
 *  - composition: can a compiler compute message values straight into
 *    the output registers (the lower bound of the paper's sending-cost
 *    ranges), and does the optimized handler set carry an escape
 *    dispatch table for >4-bit identifiers?
 *
 * Adding a placement means writing one policy implementation here and
 * registering a model in model_registry.cc; no other layer changes.
 */

#ifndef TCPNI_NI_PLACEMENT_POLICY_HH
#define TCPNI_NI_PLACEMENT_POLICY_HH

#include <string>

#include "ni/config.hh"

namespace tcpni
{
namespace ni
{

/** How the processor addresses the interface registers. */
enum class Addressing : uint8_t
{
    registerFile,   //!< NI registers aliased into the GPR file
    memoryMapped,   //!< loads/stores into the NI command window
};

class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** The placement this policy implements. */
    virtual Placement kind() const = 0;

    /** Canonical placement name ("Register Mapped", ...). */
    virtual std::string name() const = 0;

    /** Canonical short tag ("reg", "on", "off"). */
    virtual std::string shortName() const = 0;

    /** Canonical table-column label ("Reg", "On-chip", "Off-chip"). */
    virtual std::string columnLabel() const = 0;

    /**
     * Addressing mode; also the kernel instruction-sequence selection
     * hook (msg/kernels.cc emits register-operand sequences for
     * registerFile and load/store sequences for memoryMapped).
     */
    virtual Addressing addressing() const = 0;

    /** NI registers live in the register file? */
    bool
    registerMapped() const
    {
        return addressing() == Addressing::registerFile;
    }

    /** SEND/NEXT/REPLY/FORWARD encodable as instruction bits
     *  (Section 2.1); otherwise they are command-window accesses. */
    virtual bool foldedNiCommands() const = 0;

    /**
     * Extra load-use delay cycles the processor sees on a read from
     * this interface, given the configuration's off-chip latency knob
     * (Section 3.1: two cycles on an 88100; Section 4.2.3 raises it).
     */
    virtual Cycles loadUseDelay(const NiConfig &cfg) const = 0;

    /** Can a compiler compute message values directly into the output
     *  registers (lower bound of the paper's sending ranges)? */
    virtual bool directCompose() const = 0;

    /** Does the optimized handler set dispatch >4-bit identifiers
     *  through an escape table (Section 2.2.1)? */
    virtual bool optimizedKernelHasEscape() const = 0;

    /**
     * Do the message handlers execute on the interface itself (a
     * handler processing unit in the style of sPIN), rather than on
     * the host CPU?  When true, handler kernels are compiled against
     * HPU-local register access (register-file view with zero NI
     * load-use delay) regardless of how the *host* addresses the
     * interface, and CPU-only work escapes through the host proxy.
     */
    virtual bool handlersOnNi() const { return false; }

    /**
     * Bound on the cycles one handler activation may occupy the HPU
     * (sPIN's handler contract).  Zero means no budget; nonzero only
     * makes sense together with handlersOnNi().
     */
    virtual Cycles handlerTimeBudget() const { return 0; }
};

/** The policy implementation for @p p (a process-lifetime singleton). */
const PlacementPolicy &placementPolicy(Placement p);

} // namespace ni
} // namespace tcpni

#endif // TCPNI_NI_PLACEMENT_POLICY_HH
