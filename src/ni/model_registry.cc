#include "ni/model_registry.hh"

#include "common/logging.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{
namespace ni
{

const std::array<Model, 6> &
paperModels()
{
    static const std::array<Model, 6> models = {{
        {Placement::registerFile, true},
        {Placement::onChipCache, true},
        {Placement::offChipCache, true},
        {Placement::registerFile, false},
        {Placement::onChipCache, false},
        {Placement::offChipCache, false},
    }};
    return models;
}

ModelRegistry::ModelRegistry()
{
    for (const Model &m : paperModels()) {
        std::string label = (m.optimized ? "Opt " : "Basic ") +
                            m.policy().columnLabel();
        add({m.name(), m.shortName(), label, m});
    }
#ifdef TCPNI_EXTRA_MODELS
    // Section 4.2.3's far off-chip variant: same off-chip placement
    // policy, load-use delay raised from 2 to 8 cycles.  Registered
    // here (rather than special-cased in a bench loop) to prove new
    // models flow through every registry consumer unchanged.
    add({"Optimized Far Off-chip", "faroff-opt", "Opt Far-off",
         Model{Placement::offChipCache, true}.withOffchipDelay(8)});
    // On-NI handler execution (src/hpu): handlers run on the
    // interface's HPU, so dispatching and processing cycles leave the
    // CPU load-use path entirely.  Registered as a full
    // basic/optimized pair to flow through the same consumers.
    for (bool optimized : {false, true}) {
        Model m{Placement::onNi, optimized};
        add({m.name(), m.shortName(),
             (optimized ? "Opt " : "Basic ") + m.policy().columnLabel(),
             m});
    }
#endif
}

ModelRegistry &
ModelRegistry::instance()
{
    static ModelRegistry registry;
    return registry;
}

void
ModelRegistry::add(ModelInfo info)
{
    for (const ModelInfo &e : entries_) {
        if (e.name == info.name || e.shortName == info.shortName) {
            fatal("model registry: duplicate model name '%s' / '%s'",
                  info.name.c_str(), info.shortName.c_str());
        }
    }
    entries_.push_back(std::move(info));
}

const ModelInfo *
ModelRegistry::find(const std::string &name_or_short) const
{
    for (const ModelInfo &e : entries_) {
        if (e.name == name_or_short || e.shortName == name_or_short)
            return &e;
    }
    return nullptr;
}

const std::vector<ModelInfo> &
registeredModels()
{
    return ModelRegistry::instance().all();
}

} // namespace ni
} // namespace tcpni
