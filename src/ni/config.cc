#include "ni/config.hh"

#include "common/logging.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{
namespace ni
{

const PlacementPolicy &
NiConfig::policy() const
{
    return placementPolicy(placement);
}

Cycles
NiConfig::loadUseDelay() const
{
    return policy().loadUseDelay(*this);
}

void
NiConfig::validate() const
{
    if (inputQueueDepth == 0)
        fatal("NiConfig: inputQueueDepth must be nonzero");
    if (outputQueueDepth == 0)
        fatal("NiConfig: outputQueueDepth must be nonzero");
    if (inputThreshold > inputQueueDepth) {
        fatal("NiConfig: inputThreshold (%u) exceeds inputQueueDepth (%u); "
              "iafull would never raise", inputThreshold, inputQueueDepth);
    }
    if (outputThreshold > outputQueueDepth) {
        fatal("NiConfig: outputThreshold (%u) exceeds outputQueueDepth (%u); "
              "oafull would never raise", outputThreshold, outputQueueDepth);
    }
}

const PlacementPolicy &
Model::policy() const
{
    return placementPolicy(placement);
}

std::string
Model::name() const
{
    return std::string(optimized ? "Optimized " : "Basic ") +
           policy().name();
}

std::string
Model::shortName() const
{
    return policy().shortName() + (optimized ? "-opt" : "-basic");
}

std::string
placementName(Placement p)
{
    return placementPolicy(p).name();
}

} // namespace ni
} // namespace tcpni
