#include "ni/config.hh"

namespace tcpni
{
namespace ni
{

std::string
placementName(Placement p)
{
    switch (p) {
      case Placement::offChipCache: return "Off-chip Cache";
      case Placement::onChipCache: return "On-chip Cache";
      case Placement::registerFile: return "Register Mapped";
    }
    return "?";
}

std::string
Model::name() const
{
    return std::string(optimized ? "Optimized " : "Basic ") +
           placementName(placement);
}

std::string
Model::shortName() const
{
    std::string p;
    switch (placement) {
      case Placement::offChipCache: p = "off"; break;
      case Placement::onChipCache: p = "on"; break;
      case Placement::registerFile: p = "reg"; break;
    }
    return p + (optimized ? "-opt" : "-basic");
}

} // namespace ni
} // namespace tcpni
