/**
 * @file
 * Configuration of a network interface instance: its placement
 * (Section 3's three implementations) and which of the Section-2.2
 * hardware optimizations are present.
 *
 * The paper's six evaluation models are the cross product of
 * { off-chip cache, on-chip cache, register-file } placement with
 * { basic, optimized } feature sets.  For the ablation benchmarks the
 * individual optimizations can also be toggled independently.
 */

#ifndef TCPNI_NI_CONFIG_HH
#define TCPNI_NI_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace tcpni
{
namespace ni
{

/** Where the interface sits relative to the processor (Section 3). */
enum class Placement : uint8_t
{
    offChipCache,   //!< Sec 3.1: on the external cache bus (the NIC chip)
    onChipCache,    //!< Sec 3.2: on the internal cache bus
    registerFile,   //!< Sec 3.3: mapped into the register file
};

/** Which Section-2.2 hardware optimizations are implemented. */
struct Features
{
    bool encodedTypes = true;       //!< Sec 2.2.1: 4-bit type in SEND
    bool fastReplyForward = true;   //!< Sec 2.2.2: REPLY / FORWARD modes
    bool hwDispatch = true;         //!< Sec 2.2.3: MsgIp / NextMsgIp
    bool hwBoundaryChecks = true;   //!< Sec 2.2.4: iafull/oafull in MsgIp

    static Features basic()
    {
        return {false, false, false, false};
    }
    static Features optimized() { return {}; }

    bool
    anyOptimization() const
    {
        return encodedTypes || fastReplyForward || hwDispatch ||
               hwBoundaryChecks;
    }

    bool operator==(const Features &) const = default;
};

/** Full configuration of one network interface. */
struct NiConfig
{
    Placement placement = Placement::registerFile;
    Features features = Features::optimized();

    unsigned inputQueueDepth = 16;
    unsigned outputQueueDepth = 16;

    /** Default queue thresholds loaded into CONTROL at reset. */
    unsigned inputThreshold = 12;
    unsigned outputThreshold = 12;

    /**
     * Extra load-use delay cycles the processor sees on a load from
     * this interface (Section 3.1: two cycles for the off-chip NIC on
     * an 88100; Section 4.2.3 studies raising it to 8).
     */
    Cycles
    loadUseDelay() const
    {
        return placement == Placement::offChipCache ? offChipLoadUseDelay
                                                    : 0;
    }

    /** Off-chip read latency knob for the Section 4.2.3 sensitivity. */
    Cycles offChipLoadUseDelay = 2;

    /** Emit an inform() line for every message sent and received
     *  (suppressed when logging::quiet is set). */
    bool traceMessages = false;
};

/** One of the paper's six evaluation models. */
struct Model
{
    Placement placement;
    bool optimized;

    NiConfig
    config() const
    {
        NiConfig c;
        c.placement = placement;
        c.features = optimized ? Features::optimized() : Features::basic();
        return c;
    }

    std::string name() const;
    std::string shortName() const;
};

/** The six models in the paper's column order (optimized first). */
constexpr std::array<Model, 6> allModels()
{
    return {{
        {Placement::registerFile, true},
        {Placement::onChipCache, true},
        {Placement::offChipCache, true},
        {Placement::registerFile, false},
        {Placement::onChipCache, false},
        {Placement::offChipCache, false},
    }};
}

std::string placementName(Placement p);

} // namespace ni
} // namespace tcpni

#endif // TCPNI_NI_CONFIG_HH
