/**
 * @file
 * Configuration of a network interface instance: its placement
 * (Section 3's three implementations) and which of the Section-2.2
 * hardware optimizations are present.
 *
 * The paper's six evaluation models are the cross product of
 * { off-chip cache, on-chip cache, register-file } placement with
 * { basic, optimized } feature sets.  For the ablation benchmarks the
 * individual optimizations can also be toggled independently.
 *
 * Everything that *differs by placement* (access latency, addressing
 * mode, folded NI commands, kernel sequence selection) lives behind
 * the PlacementPolicy interface (placement_policy.hh); the model set
 * itself is extensible through the registry (model_registry.hh).
 */

#ifndef TCPNI_NI_CONFIG_HH
#define TCPNI_NI_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace tcpni
{
namespace ni
{

class PlacementPolicy;

/** Where the interface sits relative to the processor (Section 3). */
enum class Placement : uint8_t
{
    offChipCache,   //!< Sec 3.1: on the external cache bus (the NIC chip)
    onChipCache,    //!< Sec 3.2: on the internal cache bus
    registerFile,   //!< Sec 3.3: mapped into the register file
    onNi,           //!< handlers execute on the interface itself (HPU)
};

/** Which Section-2.2 hardware optimizations are implemented. */
struct Features
{
    bool encodedTypes = true;       //!< Sec 2.2.1: 4-bit type in SEND
    bool fastReplyForward = true;   //!< Sec 2.2.2: REPLY / FORWARD modes
    bool hwDispatch = true;         //!< Sec 2.2.3: MsgIp / NextMsgIp
    bool hwBoundaryChecks = true;   //!< Sec 2.2.4: iafull/oafull in MsgIp

    static Features basic()
    {
        return {false, false, false, false};
    }
    static Features optimized() { return {}; }

    bool
    anyOptimization() const
    {
        return encodedTypes || fastReplyForward || hwDispatch ||
               hwBoundaryChecks;
    }

    bool operator==(const Features &) const = default;
};

/** Full configuration of one network interface. */
struct NiConfig
{
    Placement placement = Placement::registerFile;
    Features features = Features::optimized();

    unsigned inputQueueDepth = 16;
    unsigned outputQueueDepth = 16;

    /** Default queue thresholds loaded into CONTROL at reset. */
    unsigned inputThreshold = 12;
    unsigned outputThreshold = 12;

    /**
     * Extra load-use delay cycles the processor sees on a load from
     * this interface; placement-dependent (see PlacementPolicy).
     */
    Cycles loadUseDelay() const;

    /** Off-chip read latency knob for the Section 4.2.3 sensitivity. */
    Cycles offChipLoadUseDelay = 2;

    /** Emit an inform() line for every message sent and received
     *  (suppressed when logging::quiet is set). */
    bool traceMessages = false;

    /** The placement-policy implementation for this configuration. */
    const PlacementPolicy &policy() const;

    /**
     * Check the configuration's internal consistency: queue depths
     * must be nonzero and thresholds must not exceed the depths (a
     * threshold above its queue depth silently produces an interface
     * that never raises iafull/oafull).  fatal()s on violation;
     * called at System construction.
     */
    void validate() const;
};

/** One evaluation model: a placement plus a feature set.  The paper's
 *  six models use the default off-chip latency; registry extensions
 *  (the Section 4.2.3 "far off-chip" variant) parameterize it. */
struct Model
{
    Placement placement;
    bool optimized;

    /** Off-chip load-use delay this model's config carries (2 is the
     *  paper's 88100 value; Section 4.2.3 studies up to 8). */
    Cycles offchipLoadUseDelay = 2;

    NiConfig
    config() const
    {
        NiConfig c;
        c.placement = placement;
        c.features = optimized ? Features::optimized() : Features::basic();
        c.offChipLoadUseDelay = offchipLoadUseDelay;
        return c;
    }

    /** A copy of this model with a different off-chip latency (the
     *  Section 4.2.3 parameterization). */
    Model
    withOffchipDelay(Cycles d) const
    {
        Model m = *this;
        m.offchipLoadUseDelay = d;
        return m;
    }

    /** The placement-policy implementation for this model. */
    const PlacementPolicy &policy() const;

    std::string name() const;
    std::string shortName() const;
};

/** Canonical placement name, from the placement policy. */
std::string placementName(Placement p);

} // namespace ni
} // namespace tcpni

#endif // TCPNI_NI_CONFIG_HH
