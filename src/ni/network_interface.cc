#include "ni/network_interface.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/trace.hh"

namespace tcpni
{
namespace ni
{

NetworkInterface::NetworkInterface(std::string name, EventQueue &eq,
                                   NodeId node, Network &network,
                                   NiConfig config)
    : SimObject(std::move(name), eq), node_(node), network_(network),
      config_(config), pumpEvent_(*this)
{
    // Reset CONTROL: stall-on-full policy, configured thresholds,
    // PIN 0, PIN checking off.
    control_ = (1u << control::stallOnFullBit) |
               (static_cast<Word>(config_.inputThreshold)
                << control::inThresholdShift) |
               (static_cast<Word>(config_.outputThreshold)
                << control::outThresholdShift);

    network_.setSink(node_, [this](const Message &m) {
        return acceptFromNetwork(m);
    });

    statGroup().addScalar("sent", &sent_, "messages injected");
    statGroup().addScalar("received", &received_, "messages accepted");
    statGroup().addScalar("refused", &refused_,
                          "deliveries refused (input queue full)");
    statGroup().addScalar("overflowExc", &overflowExc_,
                          "output-overflow exceptions raised");
    statGroup().addScalar("privReceived", &privReceived_,
                          "privileged/PIN-mismatched messages queued");
    statGroup().addScalar("interrupts", &interrupts_,
                          "message-arrival interrupts delivered");
    statGroup().addHistogram("e2eLatency", &e2eLatency_,
                             "send-enqueue to dispatch (cycles)");
    statGroup().addHistogram("netLatency", &netLatency_,
                             "send-enqueue to arrival (cycles)");
    statGroup().addHistogram("queueLatency", &queueLatency_,
                             "arrival to dispatch (cycles)");
    statGroup().addTimeWeighted("inputOccupancy", &inputOcc_,
                                "time-weighted input queue depth");
    statGroup().addTimeWeighted("outputOccupancy", &outputOcc_,
                                "time-weighted output queue depth");

    if (auto *r = metrics::registry()) {
        mgroup_ = r->addGroup(this->name(), eq);
        mgroup_->addCounter("sent", [this] { return sent_.value(); },
                            "messages injected");
        mgroup_->addCounter("received",
                            [this] { return received_.value(); },
                            "messages accepted");
        mgroup_->addCounter("refused",
                            [this] { return refused_.value(); },
                            "deliveries refused (input queue full)");
        mgroup_->addCounter("overflow_exc",
                            [this] { return overflowExc_.value(); },
                            "output-overflow exceptions raised");
        mgroup_->addCounter("priv_received",
                            [this] { return privReceived_.value(); },
                            "privileged/PIN-mismatched messages");
        mgroup_->addCounter("interrupts",
                            [this] { return interrupts_.value(); },
                            "message-arrival interrupts delivered");
        mgroup_->addCounter("oq.stall_cycles",
                            [this] { return oqStallCycles_; },
                            "cycles SEND stalled on a full output "
                            "queue");
        mgroup_->addCounter("iq.full_crossings",
                            [this] { return iafullCrossings_; },
                            "iafull threshold rising edges");
        mgroup_->addCounter("oq.full_crossings",
                            [this] { return oafullCrossings_; },
                            "oafull threshold rising edges");
        mgroup_->addGauge("iq.depth",
                          [this] { return inputQueue_.size(); },
                          "input queue depth");
        mgroup_->addGauge("oq.depth",
                          [this] { return outputQueue_.size(); },
                          "output queue depth");
        mgroup_->addHistogram("e2e_latency", &e2eLatency_,
                              "send-enqueue to dispatch (cycles)");
        mgroup_->addHistogram("net_latency", &netLatency_,
                              "send-enqueue to arrival (cycles)");
        mgroup_->addHistogram("queue_latency", &queueLatency_,
                              "arrival to dispatch (cycles)");
    }
}

NetworkInterface::~NetworkInterface()
{
    if (mgroup_)
        mgroup_->retire();
}

void
NetworkInterface::noteQueueLevels()
{
    inputOcc_.update(inputQueue_.size(), curTick());
    outputOcc_.update(outputQueue_.size(), curTick());
}

unsigned
NetworkInterface::inThreshold() const
{
    return static_cast<unsigned>(
        bits(control_, control::inThresholdShift + 7,
             control::inThresholdShift));
}

unsigned
NetworkInterface::outThreshold() const
{
    return static_cast<unsigned>(
        bits(control_, control::outThresholdShift + 7,
             control::outThresholdShift));
}

bool
NetworkInterface::iafull() const
{
    return inputQueue_.size() > inThreshold();
}

bool
NetworkInterface::oafull() const
{
    return outputQueue_.size() > outThreshold();
}

Word
NetworkInterface::readReg(unsigned reg)
{
    switch (reg) {
      case regO0: case regO1: case regO2: case regO3: case regO4:
        return outputRegs_[reg - regO0];
      case regI0: case regI1: case regI2: case regI3: case regI4:
        return inputRegs_[reg - regI0];
      case regStatus: {
        Word s = 0;
        s |= static_cast<Word>(
                 std::min<size_t>(inputQueue_.size(), 255))
             << status::inputLenShift;
        s |= static_cast<Word>(
                 std::min<size_t>(outputQueue_.size(), 255))
             << status::outputLenShift;
        if (inputValid_)
            s |= 1u << status::msgValidBit;
        s |= static_cast<Word>(inputValid_ ? currentType_ & 0xf : 0)
             << status::msgTypeShift;
        if (iafull())
            s |= 1u << status::iafullBit;
        if (oafull())
            s |= 1u << status::oafullBit;
        if (excCode_ != ExcCode::none) {
            s |= 1u << status::excPendingBit;
            s |= static_cast<Word>(excCode_) << status::excCodeShift;
        }
        return s;
      }
      case regControl:
        return control_;
      case regMsgIp:
        return msgIp();
      case regNextMsgIp:
        return nextMsgIp();
      case regIpBase:
        return ipBase_;
      default:
        panic("read of unknown NI register %u", reg);
    }
}

void
NetworkInterface::writeReg(unsigned reg, Word value)
{
    switch (reg) {
      case regO0: case regO1: case regO2: case regO3: case regO4:
        outputRegs_[reg - regO0] = value;
        return;
      case regI0: case regI1: case regI2: case regI3: case regI4:
        // Input registers are writable scratch between messages; NEXT
        // overwrites them.
        inputRegs_[reg - regI0] = value;
        return;
      case regStatus:
        // Writing STATUS acknowledges the pending exception.
        excCode_ = ExcCode::none;
        return;
      case regControl:
        control_ = value;
        // Level-triggered interrupt semantics: re-enabling while a
        // message already sits in the input registers fires at once,
        // so no arrival between NEXT and re-enable can be lost.  The
        // conventional handler epilogue therefore re-enables in the
        // delay slot of its `jmp r14` return.
        if (interruptSink_ && bits(control_, control::intEnableBit) &&
            inputValid_ && config_.features.hwDispatch) {
            control_ &= ~(1u << control::intEnableBit);
            ++interrupts_;
            interruptSink_(msgIp());
        }
        return;
      case regMsgIp:
      case regNextMsgIp:
        warn("write to read-only NI register %u ignored", reg);
        return;
      case regIpBase:
        if (value & ~dispatch::tableMask)
            warn("IpBase 0x%08x not 4KB aligned; low bits ignored",
                 value);
        ipBase_ = value & dispatch::tableMask;
        return;
      default:
        panic("write of unknown NI register %u", reg);
    }
}

Word
NetworkInterface::dispatchFor(bool valid, uint8_t type, Word word1) const
{
    if (excCode_ != ExcCode::none)
        return dispatch::handlerAddr(ipBase_, dispatch::excType);

    bool ia = config_.features.hwBoundaryChecks && iafull();
    bool oa = config_.features.hwBoundaryChecks && oafull();

    // Figure 7 case 2: a type-0 message below both thresholds carries
    // its handler address in word 1.
    if (valid && type == 0 && !ia && !oa)
        return word1;

    return dispatch::handlerAddr(ipBase_, valid ? type : 0, ia, oa);
}

Word
NetworkInterface::msgIp() const
{
    if (!config_.features.hwDispatch)
        return 0;
    return dispatchFor(inputValid_, currentType_, inputRegs_[1]);
}

Word
NetworkInterface::nextMsgIp() const
{
    if (!config_.features.hwDispatch)
        return 0;
    if (inputQueue_.empty())
        return dispatchFor(false, 0, 0);
    const Message &head = inputQueue_.front();
    return dispatchFor(true, head.type, head.words[1]);
}

Message
NetworkInterface::compose(isa::SendMode mode, uint8_t type) const
{
    Message m;

    if (pendingOut_.empty()) {
        for (unsigned k = 0; k < msgWords; ++k)
            m.words[k] = outputRegs_[k];
    } else {
        // Long message: the banked SCROLL-OUT words come first, the
        // current output registers last.
        std::vector<Word> full = pendingOut_;
        full.insert(full.end(), outputRegs_, outputRegs_ + msgWords);
        for (unsigned k = 0; k < msgWords; ++k)
            m.words[k] = full[k];
        m.extra.assign(full.begin() + msgWords, full.end());
    }

    switch (mode) {
      case isa::SendMode::reply:
        // Section 2.2.2: i1 and i2 substitute for o0 and o1: the
        // requester's continuation (FP, IP) heads the reply.
        m.words[0] = inputRegs_[1];
        m.words[1] = inputRegs_[2];
        break;
      case isa::SendMode::forward:
        // Data words of the incoming message substitute for o2..o4.
        m.words[2] = inputRegs_[2];
        m.words[3] = inputRegs_[3];
        m.words[4] = inputRegs_[4];
        break;
      default:
        break;
    }

    m.type = type & 0xf;
    m.pin = static_cast<uint8_t>(bits(control_, control::pinShift + 7,
                                      control::pinShift));
    m.src = node_;
    m.setDestFromWord0();
    return m;
}

bool
NetworkInterface::sendWouldStall() const
{
    return outputQueue_.size() >= config_.outputQueueDepth &&
           bits(control_, control::stallOnFullBit) != 0;
}

CmdResult
NetworkInterface::enqueueSend(Message msg)
{
    if (outputQueue_.size() >= config_.outputQueueDepth) {
        if (bits(control_, control::stallOnFullBit)) {
            // Section 2.1.1: stall the processor until the output
            // queue empties.
            TCPNI_TRACE(NI, "SEND stalls: output queue full (%zu)",
                        outputQueue_.size());
            ++oqStallCycles_;
            return CmdResult::stall;
        }
        ++overflowExc_;
        raise(ExcCode::outputOverflow);
        TCPNI_TRACE(NI, "SEND overflows: output queue full (%zu)",
                    outputQueue_.size());
        return CmdResult::ok;
    }
    if (config_.traceMessages) {
        inform("%llu %s TX %s",
               static_cast<unsigned long long>(curTick()),
               name().c_str(), msg.toString().c_str());
    }

    msg.traceId = eventq().nextTraceId();
    msg.injectTick = curTick();
    if (auto *s = trace::sink())
        s->record(msg.traceId, trace::Stage::inject, node_, curTick(),
                  msg.type);
    TCPNI_TRACE(NI, "SEND id=%llu %s",
                static_cast<unsigned long long>(msg.traceId),
                msg.toString().c_str());

    const bool was_oafull = oafull();
    outputQueue_.push_back(std::move(msg));
    ++sent_;
    noteQueueLevels();
    if (!was_oafull && oafull()) {
        ++oafullCrossings_;
        TCPNI_TRACE(NI, "oafull asserted (output queue %zu > "
                    "threshold %u)", outputQueue_.size(),
                    outThreshold());
    }
    schedulePump();
    return CmdResult::ok;
}

CmdResult
NetworkInterface::command(const isa::NiCommand &cmd)
{
    if (cmd.mode != isa::SendMode::none) {
        if (cmd.mode != isa::SendMode::send &&
            !config_.features.fastReplyForward) {
            panic("REPLY/FORWARD send modes are a Section-2.2.2 "
                  "optimization absent from this (basic) interface");
        }
        uint8_t type = config_.features.encodedTypes ? cmd.type : 0;
        if (config_.features.hwDispatch && type == dispatch::excType) {
            panic("message type 1 is reserved for the exception "
                  "handler (Section 2.2.4)");
        }
        CmdResult res = enqueueSend(compose(cmd.mode, type));
        if (res == CmdResult::stall)
            return res;
        pendingOut_.clear();
    }
    if (cmd.next)
        doNext();
    return CmdResult::ok;
}

void
NetworkInterface::scrollOut()
{
    TCPNI_TRACE(NI, "SCROLL-OUT banks 5 words (%zu pending)",
                pendingOut_.size() + msgWords);
    for (unsigned k = 0; k < msgWords; ++k)
        pendingOut_.push_back(outputRegs_[k]);
}

void
NetworkInterface::scrollIn()
{
    if (!inputValid_ || scrollOffset_ >= currentExtra_.size()) {
        TCPNI_TRACE(NI, "SCROLL-IN past end raises inputPortError");
        raise(ExcCode::inputPortError);
        return;
    }
    TCPNI_TRACE(NI, "SCROLL-IN advances to offset %zu of %zu",
                scrollOffset_ + msgWords, currentExtra_.size());
    for (unsigned k = 0; k < msgWords; ++k) {
        size_t idx = scrollOffset_ + k;
        inputRegs_[k] = idx < currentExtra_.size() ? currentExtra_[idx]
                                                   : 0;
    }
    scrollOffset_ += msgWords;
}

void
NetworkInterface::doNext()
{
    if (inputValid_ && currentTraceId_ != 0) {
        // The handler is finished with the current message.
        if (auto *s = trace::sink())
            s->record(currentTraceId_, trace::Stage::done, node_,
                      curTick(), currentType_);
        TCPNI_TRACE(NI, "NEXT retires id=%llu type=%u",
                    static_cast<unsigned long long>(currentTraceId_),
                    currentType_);
    }
    inputValid_ = false;
    currentTraceId_ = 0;
    currentExtra_.clear();
    scrollOffset_ = 0;
    refill();
}

void
NetworkInterface::refill()
{
    if (inputValid_ || inputQueue_.empty())
        return;
    const bool was_iafull = iafull();
    Message m = std::move(inputQueue_.front());
    inputQueue_.pop_front();
    noteQueueLevels();
    if (was_iafull && !iafull()) {
        TCPNI_TRACE(NI, "iafull deasserted (input queue %zu <= "
                    "threshold %u)", inputQueue_.size(), inThreshold());
    }
    for (unsigned k = 0; k < msgWords; ++k)
        inputRegs_[k] = m.words[k];
    currentType_ = m.type & 0xf;
    currentExtra_ = std::move(m.extra);
    scrollOffset_ = 0;
    currentTraceId_ = m.traceId;
    inputValid_ = true;

    // Lifecycle: the message is now visible to the handler.
    e2eLatency_.record(curTick() - m.injectTick);
    queueLatency_.record(curTick() - m.arriveTick);
    if (m.traceId != 0) {
        if (auto *s = trace::sink())
            s->record(m.traceId, trace::Stage::dispatch, node_,
                      curTick(), currentType_);
    }
    TCPNI_TRACE(DISPATCH, "dispatch id=%llu type=%u MsgIp=0x%08x",
                static_cast<unsigned long long>(m.traceId),
                currentType_, msgIp());

    // Interrupt-driven reception: a message advancing into empty
    // input registers interrupts the processor.  The enable bit
    // clears on delivery so the handler runs uninterrupted until it
    // re-enables (Section 2.1 allows either reception style).
    if (interruptSink_ && bits(control_, control::intEnableBit) &&
        config_.features.hwDispatch) {
        control_ &= ~(1u << control::intEnableBit);
        ++interrupts_;
        TCPNI_TRACE(DISPATCH, "arrival interrupt -> handler 0x%08x",
                    msgIp());
        interruptSink_(msgIp());
    }
}

CmdResult
NetworkInterface::access(Word addr, Word data, bool is_store, Word &result)
{
    unsigned reg = static_cast<unsigned>(
        bits(addr, cmdaddr::regShift + 3, cmdaddr::regShift));
    isa::NiCommand cmd;
    cmd.type = static_cast<uint8_t>(
        bits(addr, cmdaddr::typeShift + 3, cmdaddr::typeShift));
    cmd.mode = static_cast<isa::SendMode>(
        bits(addr, cmdaddr::modeShift + 1, cmdaddr::modeShift));
    cmd.next = bits(addr, cmdaddr::nextBit) != 0;
    bool scroll_in = bits(addr, cmdaddr::scrollInBit) != 0;
    bool scroll_out = bits(addr, cmdaddr::scrollOutBit) != 0;

    if (reg >= numNiRegs)
        panic("cache-mapped access to nonexistent NI register %u "
              "(addr 0x%08x)", reg, addr);

    // Register access first, then commands: a store that also SENDs
    // includes the stored value in the outgoing message (as in the
    // final store of the paper's basic off-chip handler).
    result = 0;
    if (is_store)
        writeReg(reg, data);
    else
        result = readReg(reg);

    if (scroll_out)
        scrollOut();

    CmdResult res = command(cmd);
    if (res == CmdResult::stall)
        return res;

    if (scroll_in)
        scrollIn();
    return CmdResult::ok;
}

bool
NetworkInterface::acceptFromNetwork(const Message &msg)
{
    bool pin_check = bits(control_, control::checkPinBit) != 0;
    uint8_t my_pin = static_cast<uint8_t>(
        bits(control_, control::pinShift + 7, control::pinShift));

    if (msg.privileged || (pin_check && msg.pin != my_pin)) {
        // Section 2.1.3: privileged messages and messages for inactive
        // processes are stored in privileged state for the OS.
        if (privQueue_.size() >= 1024)
            panic("privileged queue overflow on node %u", node_);
        TCPNI_TRACE(NI, "RX escrows %s to the privileged queue",
                    msg.toString().c_str());
        privQueue_.push_back(msg);
        ++privReceived_;
        raise(msg.privileged ? ExcCode::privilegedPending
                             : ExcCode::pinMismatch);
        return true;
    }

    if (inputQueue_.size() >= config_.inputQueueDepth) {
        ++refused_;
        TCPNI_TRACE(NI, "RX refused (input queue full at %zu): %s",
                    inputQueue_.size(), msg.toString().c_str());
        return false;
    }
    if (config_.traceMessages) {
        inform("%llu %s RX %s",
               static_cast<unsigned long long>(curTick()),
               name().c_str(), msg.toString().c_str());
    }

    Message m = msg;
    if (m.traceId == 0) {
        // Injected directly by a test or harness, bypassing a sending
        // NI: tag it here so the lifecycle still has a start.
        m.traceId = eventq().nextTraceId();
        m.injectTick = curTick();
    }
    m.arriveTick = curTick();
    netLatency_.record(curTick() - m.injectTick);
    if (auto *s = trace::sink())
        s->record(m.traceId, trace::Stage::arrive, node_, curTick(),
                  m.type);
    TCPNI_TRACE(NI, "RX id=%llu %s",
                static_cast<unsigned long long>(m.traceId),
                m.toString().c_str());

    const bool was_iafull = iafull();
    inputQueue_.push_back(std::move(m));
    ++received_;
    noteQueueLevels();
    if (!was_iafull && iafull()) {
        ++iafullCrossings_;
        TCPNI_TRACE(NI, "iafull asserted (input queue %zu > "
                    "threshold %u)", inputQueue_.size(), inThreshold());
    }
    refill();
    return true;
}

Message
NetworkInterface::popPrivileged()
{
    if (privQueue_.empty())
        panic("popPrivileged on empty privileged queue");
    Message m = std::move(privQueue_.front());
    privQueue_.pop_front();
    return m;
}

void
NetworkInterface::raise(ExcCode code)
{
    // First pending exception wins; the handler clears STATUS and will
    // observe any still-outstanding condition on its next dispatch.
    if (excCode_ == ExcCode::none)
        excCode_ = code;
}

void
NetworkInterface::schedulePump()
{
    if (!pumpEvent_.scheduled() && !outputQueue_.empty())
        eventq().schedule(&pumpEvent_, curTick() + 1);
}

void
NetworkInterface::pump()
{
    // One injection attempt per cycle.
    if (!outputQueue_.empty() &&
        network_.offer(node_, outputQueue_.front())) {
        const bool was_oafull = oafull();
        TCPNI_TRACE(NI, "inject id=%llu into the fabric",
                    static_cast<unsigned long long>(
                        outputQueue_.front().traceId));
        outputQueue_.pop_front();
        noteQueueLevels();
        if (was_oafull && !oafull()) {
            TCPNI_TRACE(NI, "oafull deasserted (output queue %zu <= "
                        "threshold %u)", outputQueue_.size(),
                        outThreshold());
        }
    }
    if (!outputQueue_.empty())
        eventq().schedule(&pumpEvent_, curTick() + 1);
}

} // namespace ni
} // namespace tcpni
