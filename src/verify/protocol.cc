#include "verify/protocol.hh"

#include "msg/protocol.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{
namespace verify
{

namespace
{

/** Fold a root/site type onto its graph node. */
unsigned
normType(const ni::Model &model, unsigned type)
{
    unsigned t = model.optimized ? type : msg::normalizeBasicId(type);
    return t & 0xf;
}

bool
messageRoot(const RootSummary &r)
{
    return r.kind == RootKind::handler || r.kind == RootKind::inlet;
}

} // namespace

MessageFlowGraph
buildFlowGraph(const ni::Model &model,
               const std::vector<ProtoKernel> &kernels)
{
    MessageFlowGraph g;
    bool escapes = false;

    for (const ProtoKernel &k : kernels) {
        for (const RootSummary &r : k.summary.roots) {
            bool in_handler = k.handlers && messageRoot(r);
            if (in_handler)
                g.handled[normType(model, r.type)] = true;

            for (const EmitSite &s : r.emits) {
                if (!s.typeKnown)
                    continue;   // the per-kernel send check warns
                unsigned to = normType(model, s.type);
                g.emitted[to] = true;
                if (!in_handler)
                    continue;   // sender demand creates no edge
                FlowEdge e;
                e.from = normType(model, r.type);
                e.to = to;
                e.kind = s.mode == isa::SendMode::reply
                             ? EdgeKind::reply
                             : s.mode == isa::SendMode::forward
                                   ? EdgeKind::forward
                                   : EdgeKind::send;
                e.beforeNext = s.beforeNext && r.iafull;
                e.decremented = s.decremented;
                e.words = s.words;
                e.kernel = k.name;
                e.where = r.name;
                e.addr = s.addr;
                e.line = s.line;
                g.edges.push_back(e);
            }

            if (in_handler && r.escapes) {
                escapes = true;
                FlowEdge e;
                e.from = normType(model, r.type);
                e.to = hostProxyNode;
                e.kind = EdgeKind::escape;
                e.kernel = k.name;
                e.where = r.name;
                g.edges.push_back(e);
            }
        }
    }

    if (escapes) {
        // The host proxy replays escaped messages through the
        // ordinary handlers and replies with plain SENDs / ACKs
        // (axiomatic: it is host code, not a verified kernel).
        g.handled[hostProxyNode] = true;
        for (unsigned to : {unsigned{msg::typeSend},
                            unsigned{msg::typeAck}}) {
            g.emitted[to] = true;
            FlowEdge e;
            e.from = hostProxyNode;
            e.to = to;
            e.kind = EdgeKind::send;
            e.kernel = "host-proxy";
            e.where = "host-proxy";
            g.edges.push_back(e);
        }
    }
    return g;
}

Report
analyzeProtocol(const ni::Model &model,
                const std::vector<ProtoKernel> &kernels)
{
    Report rep;
    MessageFlowGraph g = buildFlowGraph(model, kernels);

    // proto-reply (a): every emitted protocol type reaches a handler.
    for (unsigned t = 0; t < graphTypeNodes; ++t) {
        if (!g.emitted[t] || g.handled[t] || msg::isControlType(t))
            continue;
        rep.add(Severity::error, "proto-reply", 0, 0, "",
                nodeName(t) +
                    " is emitted but no handler in the corpus "
                    "implements it");
    }

    // proto-reply (b): handlers of obliged request types emit the
    // reply on some path, directly or via the host-proxy escape.
    for (unsigned t = 0; t < graphTypeNodes; ++t) {
        if (!g.handled[t])
            continue;
        auto obliged = msg::replyObligation(t);
        if (!obliged)
            continue;
        bool ok = false;
        for (const FlowEdge &e : g.edges) {
            if (e.from == t &&
                (e.to == *obliged || e.kind == EdgeKind::escape))
                ok = true;
        }
        if (!ok) {
            rep.add(Severity::error, "proto-reply", 0, 0, "",
                    "handler for " + nodeName(t) +
                        " never emits its obliged reply " +
                        nodeName(*obliged) +
                        " on any path, and never escapes to the host "
                        "proxy");
        }
    }

    // proto-forward: propagation must terminate.  Edges carrying a
    // statically-decremented hop bound break cycles; escapes cannot
    // extend a chain (the proxy's replies are modelled separately).
    {
        auto cyc = g.findCycle([](const FlowEdge &e) {
            return e.kind != EdgeKind::escape && !e.decremented;
        });
        if (!cyc.empty()) {
            rep.add(Severity::error, "proto-forward", cyc[0]->addr,
                    cyc[0]->line, cyc[0]->where,
                    "message propagation can cycle without a "
                    "statically-decremented hop bound: " +
                        describeCycle(cyc));
        }
    }

    // proto-deadlock: a cycle of handlers that emit while they may
    // still hold an input slot above the iafull threshold is the
    // cyclic-credit buffer deadlock.
    {
        auto cyc = g.findCycle([](const FlowEdge &e) {
            return e.kind != EdgeKind::escape && e.beforeNext;
        });
        if (!cyc.empty()) {
            rep.add(Severity::error, "proto-deadlock", cyc[0]->addr,
                    cyc[0]->line, cyc[0]->where,
                    "handler cycle sends with its input queue possibly "
                    "above iafull and no NEXT before the send "
                    "(consume-before-send): " +
                        describeCycle(cyc));
        }
    }

    // proto-escape: On-NI models (handlers run on the HPU) must keep
    // the single-writer I-structure rule.
    if (model.policy().handlersOnNi()) {
        for (const ProtoKernel &k : kernels) {
            if (!k.handlers)
                continue;
            for (const RootSummary &r : k.summary.roots) {
                if (!messageRoot(r))
                    continue;
                unsigned t = normType(model, r.type);
                if (t == msg::typePWrite) {
                    if (!r.escapesAlways()) {
                        rep.add(Severity::error, "proto-escape", 0, 0,
                                r.name,
                                "a PWRITE handler path completes on "
                                "the HPU without escaping through the "
                                "host ring (single-writer I-structure "
                                "rule)");
                    }
                    if (r.plainStores) {
                        rep.add(Severity::error, "proto-escape", 0, 0,
                                r.name,
                                "PWRITE handler stores to memory from "
                                "the HPU; I-structure mutation must "
                                "escape to the host proxy");
                    }
                } else if (t == msg::typePRead && r.plainStores) {
                    rep.add(Severity::error, "proto-escape", 0, 0,
                            r.name,
                            "PREAD handler stores to memory from the "
                            "HPU; only the read-only FULL path may "
                            "stay resident");
                }
            }
        }
    }

    // proto-dead: handled protocol types nothing emits.
    for (unsigned t = 0; t < graphTypeNodes; ++t) {
        if (!g.handled[t] || g.emitted[t] || msg::isControlType(t))
            continue;
        rep.add(Severity::warning, "proto-dead", 0, 0, "",
                "handler for " + nodeName(t) +
                    " is dead code: nothing in the corpus emits it");
    }

    rep.dedupe();
    return rep;
}

} // namespace verify
} // namespace tcpni
