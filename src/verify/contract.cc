#include "verify/contract.hh"

#include <sstream>

#include "common/bitfield.hh"
#include "msg/protocol.hh"
#include "ni/ni_regs.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{
namespace verify
{

AbsVal
mergeVal(const AbsVal &a, const AbsVal &b)
{
    if (a == b)
        return a;
    return {};
}

std::set<unsigned>
requiredTypes(const ni::Model &model)
{
    std::set<unsigned> types = {
        msg::typeRead, msg::typeWrite, msg::typePRead, msg::typePWrite,
        msg::typeAck, msg::typeStop,
    };
    if (model.optimized && model.policy().optimizedKernelHasEscape())
        types.insert(msg::typeEscape);
    return types;
}

std::set<unsigned>
requiredBasicIds()
{
    // The three Send variants get ids of their own (see msg::basicId);
    // the request types reuse their optimized type codes.
    return {0, 7, 8, msg::typeRead, msg::typeWrite, msg::typePRead,
            msg::typePWrite, msg::typeAck, msg::typeStop};
}

void
basicIdContract(unsigned id, unsigned &min_words, unsigned &max_words)
{
    switch (id) {
      case 0:
        // Generic Send / reply: FP, IP, 0..2 data words.
        min_words = 2;
        max_words = 4;
        return;
      case 7:
        min_words = max_words = 3;
        return;
      case 8:
        min_words = max_words = 4;
        return;
      default: {
        msg::TypeContract c = msg::typeContract(id);
        min_words = c.minWords;
        max_words = c.maxWords;
        return;
      }
    }
}

using isa::Instruction;
using isa::Opcode;

std::optional<Word>
evalAlu(Opcode op, Word a, Word b)
{
    switch (op) {
      case Opcode::add: case Opcode::addi: return a + b;
      case Opcode::sub: return a - b;
      case Opcode::and_: case Opcode::andi: return a & b;
      case Opcode::or_: case Opcode::ori: return a | b;
      case Opcode::xor_: case Opcode::xori: return a ^ b;
      case Opcode::sll: case Opcode::slli: return a << (b & 31);
      case Opcode::srl: case Opcode::srli: return a >> (b & 31);
      default: return std::nullopt;
    }
}

AbsVal
readReg(const RegEnv &env, unsigned r)
{
    if (r == 0)
        return {VKind::constant, 0};
    return env[r];
}

namespace
{

/** First label bound to @p addr, if any. */
std::string
labelAt(const isa::Program &prog, Addr addr)
{
    for (const auto &[name, val] : prog.symbols) {
        if (val == addr && prog.contains(static_cast<Addr>(val)))
            return name;
    }
    return {};
}

/** Result of symbolically executing the straight-line setup block. */
struct SetupScan
{
    RegEnv env;
    std::map<Addr, AbsVal> stores;  //!< memory image the setup wrote
    Addr ipBase = 0;
    bool ipBaseFound = false;
    size_t instructions = 0;
};

/**
 * Symbolically execute straight-line code from `entry` until the
 * first control transfer (inclusive of its delay slot).  Only the
 * constant effects that the contract depends on are interpreted.
 */
SetupScan
scanSetup(const isa::Program &prog, bool reg_mapped, Addr entry)
{
    SetupScan scan;

    size_t idx = prog.indexOf(entry);
    bool in_delay = false;
    while (idx < prog.words.size() &&
           prog.kindOf[idx] == isa::WordKind::code) {
        Instruction inst = isa::decode(prog.words[idx]);
        ++scan.instructions;

        // Stores: record the written memory image (dispatch tables)
        // and watch for the cache-mapped IpBase installation.
        if (isa::isStore(inst.op)) {
            AbsVal base = readReg(scan.env, inst.rs1);
            AbsVal off = inst.op == Opcode::st
                ? readReg(scan.env, inst.rs2)
                : AbsVal{VKind::constant, static_cast<Word>(inst.imm)};
            if (base.kind == VKind::constant &&
                off.kind == VKind::constant) {
                Addr addr = base.value + off.value;
                AbsVal val = readReg(scan.env, inst.rd);
                if ((addr & ni::cmdaddr::niAddrBase) ==
                    ni::cmdaddr::niAddrBase) {
                    unsigned reg = (addr >> ni::cmdaddr::regShift) & 0xf;
                    if (reg == ni::regIpBase &&
                        val.kind == VKind::constant) {
                        scan.ipBase = val.value;
                        scan.ipBaseFound = true;
                    }
                } else {
                    scan.stores[addr] = val;
                }
            }
        } else if (auto rd = isa::regWritten(inst)) {
            AbsVal result;
            if (inst.op == Opcode::lui) {
                result = {VKind::constant,
                          static_cast<Word>(inst.imm) << 16};
            } else if (isa::isLoad(inst.op)) {
                result = {};
            } else if (isa::isTriadic(inst.op)) {
                AbsVal a = readReg(scan.env, inst.rs1);
                AbsVal b = readReg(scan.env, inst.rs2);
                if (a.kind == VKind::constant &&
                    b.kind == VKind::constant) {
                    if (auto v = evalAlu(inst.op, a.value, b.value))
                        result = {VKind::constant, *v};
                }
            } else {
                AbsVal a = readReg(scan.env, inst.rs1);
                if (a.kind == VKind::constant) {
                    if (auto v = evalAlu(inst.op, a.value,
                                         static_cast<Word>(inst.imm)))
                        result = {VKind::constant, *v};
                }
            }
            scan.env[*rd] = result;
            // Register-mapped kernels install IpBase by writing the
            // r30 alias directly.
            if (reg_mapped && *rd == isa::niRegBase + ni::regIpBase &&
                result.kind == VKind::constant) {
                scan.ipBase = result.value;
                scan.ipBaseFound = true;
            }
        }

        if (in_delay || inst.op == Opcode::halt)
            break;
        if (isa::isBranch(inst.op)) {
            in_delay = true;    // execute the delay slot, then stop
        }
        ++idx;
    }
    return scan;
}

/** Read a software dispatch table out of the setup's store image. */
std::map<unsigned, Addr>
tableFrom(const SetupScan &scan, Addr base, unsigned entries)
{
    std::map<unsigned, Addr> table;
    for (unsigned i = 0; i < entries; ++i) {
        auto it = scan.stores.find(base + 4 * i);
        if (it != scan.stores.end() &&
            it->second.kind == VKind::constant) {
            table[i] = it->second.value;
        }
    }
    return table;
}

/** Name a root after its label when one exists. */
std::string
rootName(const isa::Program &prog, Addr addr, const std::string &fallback)
{
    std::string label = labelAt(prog, addr);
    return label.empty() ? fallback : label;
}

void
commonDerive(const isa::Program &prog, Contract &c)
{
    auto entry_it = prog.symbols.find("entry");
    if (entry_it == prog.symbols.end() ||
        !prog.contains(static_cast<Addr>(entry_it->second))) {
        c.diags.add(Severity::error, "structure", prog.base, 0, "",
                    "kernel has no 'entry' label");
        return;
    }
    Addr entry = static_cast<Addr>(entry_it->second);

    SetupScan scan = scanSetup(prog, c.kernelRegMapped, entry);
    c.pinned = scan.env;
    c.ipBase = scan.ipBase;
    c.ipBaseFound = scan.ipBaseFound;
    c.swTable = tableFrom(scan, msg::basicDispatchTable, 16);
    c.escTable = tableFrom(scan, msg::escapeTableAddr, 16);

    // A register the setup pins is only trustworthy if no other code
    // in the image ever writes it.
    size_t setup_start = prog.indexOf(entry);
    size_t setup_end = setup_start + scan.instructions;
    for (size_t i = 0; i < prog.words.size(); ++i) {
        if (i >= setup_start && i < setup_end)
            continue;
        if (prog.kindOf[i] != isa::WordKind::code)
            continue;
        if (auto rd = isa::regWritten(isa::decode(prog.words[i])))
            c.pinned[*rd] = {};
    }

    Root setup;
    setup.entry = entry;
    setup.name = "entry";
    setup.kind = RootKind::setup;
    c.roots.push_back(setup);
}

} // namespace

Contract
deriveHandlerContract(const isa::Program &prog, const ni::Model &model)
{
    using ni::dispatch::handlerAddr;

    Contract c;
    // On-NI models compile their handlers against the HPU's permanent
    // register coupling, whatever the host placement's addressing is.
    c.kernelRegMapped = model.policy().registerMapped() ||
                        model.policy().handlersOnNi();
    commonDerive(prog, c);
    if (c.roots.empty())
        return c;

    std::set<unsigned> required = requiredTypes(model);

    if (model.optimized) {
        if (!c.ipBaseFound) {
            c.diags.add(Severity::error, "dispatch", prog.base, 0,
                        "entry", "setup never installs IpBase");
            return c;
        }
        // All 64 slots: 16 types x the four threshold variants.
        for (unsigned type = 0; type < 16; ++type) {
            for (unsigned variant = 0; variant < 4; ++variant) {
                bool iafull = variant & 2;
                bool oafull = variant & 1;
                Addr addr = handlerAddr(c.ipBase, type, iafull, oafull);
                std::ostringstream os;
                os << "slot[type=" << type << ",ia=" << iafull
                   << ",oa=" << oafull << "]";
                std::string fallback = os.str();

                if (!prog.contains(addr) ||
                    prog.kindOf[prog.indexOf(addr)] !=
                        isa::WordKind::code) {
                    Severity sev = (type == 0 ||
                                    type == ni::dispatch::excType ||
                                    required.count(type))
                        ? Severity::error
                        : Severity::warning;
                    c.diags.add(sev, "dispatch", addr, 0, fallback,
                                "dispatch slot holds no code");
                    continue;
                }

                Root r;
                r.entry = addr;
                r.name = rootName(prog, addr, fallback);
                r.type = type;
                r.iafull = iafull;
                if (type == 0) {
                    r.kind = RootKind::poll;
                } else if (type == ni::dispatch::excType) {
                    r.kind = RootKind::exception;
                } else if (required.count(type)) {
                    r.kind = RootKind::handler;
                    msg::TypeContract tc = msg::typeContract(type);
                    r.minWords = tc.minWords;
                    r.maxWords = tc.maxWords;
                    if (type == msg::typeEscape)
                        r.dispatchConsumed = {4};
                    // A live type whose slot is only a halt filler has
                    // no handler at all.  STOP is exempt: halting is
                    // precisely its contract.
                    if (type != msg::typeStop &&
                        isa::decode(prog.words[prog.indexOf(addr)]).op ==
                            Opcode::halt) {
                        c.diags.add(Severity::error, "dispatch", addr, 0,
                                    fallback,
                                    "live message type dispatches to a "
                                    "halt filler");
                        continue;
                    }
                } else {
                    r.kind = RootKind::deadSlot;
                }
                c.roots.push_back(r);
            }
        }

        // The type-0 inlets, reached through message word 1.
        struct Inlet { const char *label; unsigned words; };
        static const Inlet inlets[] = {
            {"h_send0", 2}, {"h_send1", 3}, {"h_send2", 4},
        };
        for (const Inlet &in : inlets) {
            auto it = prog.symbols.find(in.label);
            if (it == prog.symbols.end()) {
                c.diags.add(Severity::error, "dispatch", prog.base, 0,
                            in.label,
                            "type-0 inlet label missing from kernel");
                continue;
            }
            Root r;
            r.entry = static_cast<Addr>(it->second);
            r.name = in.label;
            r.kind = RootKind::inlet;
            r.type = msg::typeSend;
            r.minWords = r.maxWords = in.words;
            r.dispatchConsumed = {1};
            c.roots.push_back(r);
        }

        // Escape-dispatched handlers, when the kernel installs any.
        if (required.count(msg::typeEscape)) {
            if (c.escTable.empty()) {
                c.diags.add(Severity::error, "dispatch", prog.base, 0,
                            "entry",
                            "setup installs no escape-table entries");
            }
            for (const auto &[id, addr] : c.escTable) {
                if (!prog.contains(addr)) {
                    c.diags.add(Severity::error, "dispatch", addr, 0,
                                "esc[" + std::to_string(id) + "]",
                                "escape-table entry points outside the "
                                "kernel");
                    continue;
                }
                Root r;
                r.entry = addr;
                r.name = rootName(prog, addr,
                                  "esc[" + std::to_string(id) + "]");
                r.kind = RootKind::inlet;
                r.type = msg::typeEscape;
                r.minWords = 0;
                r.maxWords = 5;
                r.dispatchConsumed = {4};
                c.roots.push_back(r);
            }
        }
    } else {
        // Basic models dispatch in software through the id table the
        // setup installs.
        for (unsigned id : requiredBasicIds()) {
            auto it = c.swTable.find(id);
            if (it == c.swTable.end()) {
                c.diags.add(Severity::error, "dispatch", prog.base, 0,
                            "id[" + std::to_string(id) + "]",
                            "software dispatch table has no entry for a "
                            "required id");
                continue;
            }
            Addr addr = it->second;
            if (!prog.contains(addr)) {
                c.diags.add(Severity::error, "dispatch", addr, 0,
                            "id[" + std::to_string(id) + "]",
                            "software dispatch entry points outside the "
                            "kernel");
                continue;
            }
            Root r;
            r.entry = addr;
            r.name = rootName(prog, addr,
                              "id[" + std::to_string(id) + "]");
            r.kind = RootKind::handler;
            r.type = id;
            basicIdContract(id, r.minWords, r.maxWords);
            // Word 4 carries the id; word 1 of the Send family names
            // the inlet the software table already encodes.
            r.dispatchConsumed = {4};
            if (id == 0 || id == 7 || id == 8)
                r.dispatchConsumed.insert(1);
            c.roots.push_back(r);
        }
    }
    return c;
}

Contract
deriveSenderContract(const isa::Program &prog, const ni::Model &model)
{
    Contract c;
    // Senders always run on the host CPU, so they see the placement's
    // own addressing even on On-NI models.
    c.kernelRegMapped = model.policy().registerMapped();
    commonDerive(prog, c);
    // A sender is one straight entry walk; nothing is pinned for it
    // (the walk itself establishes every register it uses).
    c.pinned = {};
    return c;
}

} // namespace verify
} // namespace tcpni
