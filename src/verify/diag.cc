#include "verify/diag.hh"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

namespace tcpni
{
namespace verify
{

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::error: return "error";
      case Severity::warning: return "warning";
      case Severity::note: return "note";
    }
    return "?";
}

std::string
Diag::format() const
{
    std::ostringstream os;
    os << severityName(severity) << '[' << check << "] 0x" << std::hex
       << addr << std::dec;
    if (line || !where.empty()) {
        os << " (";
        if (line)
            os << "line " << line;
        if (!where.empty())
            os << (line ? ", " : "") << where;
        os << ')';
    }
    os << ": " << message;
    return os.str();
}

bool
checkMatches(const std::string &check, const std::string &pattern)
{
    if (check == pattern)
        return true;
    return check.size() > pattern.size() &&
           check.compare(0, pattern.size(), pattern) == 0 &&
           check[pattern.size()] == '-';
}

unsigned
Report::count(Severity s) const
{
    unsigned n = 0;
    for (const Diag &d : diags) {
        if (d.severity == s)
            ++n;
    }
    return n;
}

void
Report::dedupe()
{
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diag &a, const Diag &b) {
                         return std::tie(a.addr, a.check, a.message) <
                                std::tie(b.addr, b.check, b.message);
                     });
    std::set<std::tuple<std::string, Addr, std::string>> seen;
    std::vector<Diag> kept;
    for (Diag &d : diags) {
        if (seen.insert({d.check, d.addr, d.message}).second)
            kept.push_back(std::move(d));
    }
    diags = std::move(kept);
}

void
Report::suppress(const std::vector<std::string> &patterns)
{
    std::erase_if(diags, [&](const Diag &d) {
        return std::any_of(patterns.begin(), patterns.end(),
                           [&](const std::string &p) {
                               return checkMatches(d.check, p);
                           });
    });
}

void
Report::select(const std::vector<std::string> &patterns)
{
    std::erase_if(diags, [&](const Diag &d) {
        return std::none_of(patterns.begin(), patterns.end(),
                            [&](const std::string &p) {
                                return checkMatches(d.check, p);
                            });
    });
}

void
Report::merge(const Report &other)
{
    diags.insert(diags.end(), other.diags.begin(), other.diags.end());
}

std::string
Report::format() const
{
    std::ostringstream os;
    for (const Diag &d : diags)
        os << d.format() << '\n';
    return os.str();
}

} // namespace verify
} // namespace tcpni
