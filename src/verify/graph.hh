/**
 * @file
 * The typed message-flow graph the protocol analyzer works on.
 *
 * Nodes are the sixteen 4-bit message type codes (basic-model 32-bit
 * ids are folded onto them with msg::normalizeBasicId) plus one
 * pseudo-node for the On-NI host proxy.  Edges are the SEND / REPLY /
 * FORWARD sites observed while verifying *handler* roots: an edge
 * T -> U means "handling a type-T message can emit a type-U message".
 * Escaping to the host ring adds an edge T -> host-proxy; the proxy
 * itself is modelled axiomatically (it replays the escaped message
 * through the ordinary handlers and replies with plain SENDs), so it
 * contributes host-proxy -> SEND and host-proxy -> ACK edges rather
 * than being verified as handler code.
 *
 * Sender (setup-root) emit sites do not create edges -- sender code is
 * not message-triggered, so it cannot extend a chain -- but they do
 * mark their target types as *emitted*, which is what the dead-handler
 * and missing-handler checks consume.
 */

#ifndef TCPNI_VERIFY_GRAPH_HH
#define TCPNI_VERIFY_GRAPH_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "sim/types.hh"

namespace tcpni
{
namespace verify
{

constexpr unsigned graphTypeNodes = 16;
constexpr unsigned hostProxyNode = 16;
constexpr unsigned graphNodes = 17;

/** Human-readable node name ("SEND(0)", "host-proxy"). */
std::string nodeName(unsigned node);

/** How one flow edge propagates a message. */
enum class EdgeKind : uint8_t
{
    send,
    reply,
    forward,
    escape,     //!< a post to the host-proxy ring
};

/** One observed propagation: handling @c from can emit @c to. */
struct FlowEdge
{
    unsigned from = 0;
    unsigned to = 0;
    EdgeKind kind = EdgeKind::send;

    /** The emit may issue before the handler's NEXT while the input
     *  queue may already be above its iafull threshold: the edge
     *  consumes downstream buffer space while still holding its own
     *  input slot, the raw material of a cyclic-credit deadlock. */
    bool beforeNext = false;

    /** A non-substituted emitted word is an input word minus a
     *  compile-time constant: a statically-decremented hop bound that
     *  breaks forward cycles. */
    bool decremented = false;

    unsigned words = 0;     //!< emitted payload words
    std::string kernel;     //!< kernel (lint job) the edge came from
    std::string where;      //!< verification root name
    Addr addr = 0;
    unsigned line = 0;
};

struct MessageFlowGraph
{
    /** A handler root exists for the node's type. */
    std::array<bool, graphNodes> handled{};
    /** Some sender or handler emits the node's type. */
    std::array<bool, graphNodes> emitted{};

    std::vector<FlowEdge> edges;

    /**
     * Find a cycle among the edges satisfying @p keep.  Returns the
     * edges of one cycle in order (empty if the filtered subgraph is
     * acyclic).
     */
    std::vector<const FlowEdge *>
    findCycle(const std::function<bool(const FlowEdge &)> &keep) const;
};

/** "SEND(0) -> SEND(0) [h_send0 at 0x40a0]" etc., " -> "-joined. */
std::string describeCycle(const std::vector<const FlowEdge *> &cycle);

} // namespace verify
} // namespace tcpni

#endif // TCPNI_VERIFY_GRAPH_HH
