#include "verify/verifier.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "msg/protocol.hh"
#include "ni/ni_regs.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{
namespace verify
{
namespace
{

using isa::Instruction;
using isa::Opcode;
using isa::SendMode;

constexpr uint32_t
bitOf(unsigned r)
{
    return 1u << r;
}

/** Dataflow state at one program point of one verification root. */
struct State
{
    bool live = false;          //!< reachable from the root
    uint32_t mustDef = 0;       //!< regs written on every path
    uint32_t mayWritten = 0;    //!< regs written on some path
    uint8_t oDef = 0;           //!< o-words written on every path
    uint8_t oMay = 0;           //!< o-words written on some path
    std::array<AbsVal, 5> oVals;    //!< values in o0..o4 (o4 = basic id)
    bool mayNext = false;       //!< NEXT issued on some path
    bool mustNext = false;      //!< NEXT issued on every path
    bool mayEscape = false;     //!< host-proxy post on some path
    bool mustEscape = false;    //!< host-proxy post on every path
    RegEnv env;                 //!< abstract register values
};

/** Join @p src into @p dst; true if @p dst changed. */
bool
mergeInto(State &dst, const State &src)
{
    if (!dst.live) {
        dst = src;
        dst.live = true;
        return true;
    }
    bool changed = false;
    auto join = [&](auto &d, auto v) {
        if (d != v) {
            d = v;
            changed = true;
        }
    };
    join(dst.mustDef, dst.mustDef & src.mustDef);
    join(dst.mayWritten, dst.mayWritten | src.mayWritten);
    join(dst.oDef, static_cast<uint8_t>(dst.oDef & src.oDef));
    join(dst.oMay, static_cast<uint8_t>(dst.oMay | src.oMay));
    join(dst.mayNext, dst.mayNext || src.mayNext);
    join(dst.mustNext, dst.mustNext && src.mustNext);
    join(dst.mayEscape, dst.mayEscape || src.mayEscape);
    join(dst.mustEscape, dst.mustEscape && src.mustEscape);
    for (unsigned k = 0; k < 5; ++k) {
        AbsVal v = mergeVal(dst.oVals[k], src.oVals[k]);
        if (!(v == dst.oVals[k])) {
            dst.oVals[k] = v;
            changed = true;
        }
    }
    for (unsigned r = 0; r < isa::numRegs; ++r) {
        AbsVal m = mergeVal(dst.env[r], src.env[r]);
        if (!(m == dst.env[r])) {
            dst.env[r] = m;
            changed = true;
        }
    }
    return changed;
}

/** A decoded Figure-9 command access (cache-mapped models). */
struct NiAccess
{
    bool isNi = false;
    unsigned reg = 0;
    SendMode mode = SendMode::none;
    unsigned type = 0;
    bool next = false;
};

NiAccess
decodeNiAddr(Word addr)
{
    NiAccess a;
    if ((addr & ni::cmdaddr::niAddrBase) != ni::cmdaddr::niAddrBase)
        return a;
    Word off = addr & ~ni::cmdaddr::niAddrBase;
    a.isNi = true;
    a.reg = (off >> ni::cmdaddr::regShift) & 0xf;
    a.mode = static_cast<SendMode>((off >> ni::cmdaddr::modeShift) & 3);
    a.type = (off >> ni::cmdaddr::typeShift) & 0xf;
    a.next = (off >> ni::cmdaddr::nextBit) & 1;
    return a;
}

/**
 * Abstract arithmetic on an input word: i<k> plus/minus a compile-time
 * constant stays classified as that input word, with the constant
 * folded into AbsVal::delta.  This is what lets the protocol analyzer
 * recognize a statically-decremented hop bound in a forwarded message.
 */
std::optional<AbsVal>
inputWordDelta(Opcode op, const AbsVal &a, const AbsVal &b)
{
    bool add = op == Opcode::add || op == Opcode::addi;
    bool sub = op == Opcode::sub;
    if (!add && !sub)
        return std::nullopt;
    auto shifted = [](AbsVal w, int32_t d) {
        w.delta += d;
        return w;
    };
    if (a.kind == VKind::inputWord && b.kind == VKind::constant) {
        int32_t d = static_cast<int32_t>(b.value);
        return shifted(a, add ? d : -d);
    }
    if (add && b.kind == VKind::inputWord && a.kind == VKind::constant)
        return shifted(b, static_cast<int32_t>(a.value));
    return std::nullopt;
}

/** Software dispatch-table base containing @p addr, if any. */
std::optional<Word>
tableBaseOf(Word addr)
{
    if (addr >= msg::basicDispatchTable &&
        addr < msg::basicDispatchTable + 64)
        return msg::basicDispatchTable;
    if (addr >= msg::escapeTableAddr && addr < msg::escapeTableAddr + 64)
        return msg::escapeTableAddr;
    return std::nullopt;
}

/** Verification of one root of one program. */
struct RootRun
{
    const isa::Program &prog;
    const ni::Model &model;
    const Contract &contract;
    const Root &root;
    bool regMapped;

    std::map<size_t, State> in;     //!< converged IN state per unit
    std::set<size_t> &visited;      //!< global (all roots)
    std::set<size_t> &niLoads;      //!< NI-window loads (for hazards)
    Report *rep = nullptr;          //!< null during the fixpoint pass
    RootSummary *summary = nullptr; //!< set (with rep) in the report pass
    std::set<unsigned> consumed;    //!< message words this root reads

    unsigned
    lineAt(size_t idx) const
    {
        return idx < prog.lineOf.size() ? prog.lineOf[idx] : 0;
    }

    void
    diag(Severity sev, const char *check, size_t idx,
         const std::string &message)
    {
        if (rep) {
            rep->add(sev, check, prog.base + static_cast<Addr>(idx) * 4,
                     lineAt(idx), root.name, message);
        }
    }

    void processUnit(size_t idx, std::vector<size_t> &succs);
    void applyInst(size_t idx, const Instruction &inst, State &st);
    void noteIRead(size_t idx, unsigned k, const State &st);
    void doSend(size_t idx, State &st, SendMode mode, unsigned stype,
                bool with_next);
    void classifyJmp(size_t idx, const Instruction &inst,
                     const AbsVal &target, const State &st,
                     std::vector<size_t> &succs);
    void joinTo(size_t to, const State &st, std::vector<size_t> &succs);
    void fallTo(size_t from, size_t to, const State &st,
                std::vector<size_t> &succs);

    /** The activation leaves this root (dispatch onward or halt). */
    void
    recordExit(const State &st)
    {
        if (!summary)
            return;
        ++summary->exits;
        if (st.mustEscape)
            ++summary->exitsEscaped;
    }
};

void
RootRun::noteIRead(size_t idx, unsigned k, const State &st)
{
    // Input-register reads after NEXT belong to the following message;
    // only pre-NEXT reads consume this root's message.
    if (!root.expectsMessage() || st.mayNext)
        return;
    if (!rep)
        return;
    consumed.insert(k);
    if (k >= root.maxWords) {
        diag(Severity::error, "consume", idx,
             "reads message word " + std::to_string(k) + " but type " +
                 std::to_string(root.type) + " messages carry at most " +
                 std::to_string(root.maxWords) + " words");
    }
}

void
RootRun::doSend(size_t idx, State &st, SendMode mode, unsigned stype,
                bool with_next)
{
    uint8_t filled = st.oDef;
    uint8_t substituted = 0;

    if (mode == SendMode::reply) {
        if (rep && (st.oMay & 0b00011)) {
            diag(Severity::error, "send", idx,
                 "REPLY substitutes i1,i2 for o0,o1 but this handler "
                 "wrote o0/o1");
        }
        // i1,i2 head the outgoing message when the incoming one
        // carries them (Section 2.2.2).
        for (unsigned k : {1u, 2u}) {
            if (root.expectsMessage() && k < root.minWords) {
                filled |= bitOf(k - 1);
                substituted |= bitOf(k - 1);
                noteIRead(idx, k, st);
            }
        }
    } else if (mode == SendMode::forward) {
        if (rep && (st.oMay & 0b11100)) {
            diag(Severity::error, "send", idx,
                 "FORWARD substitutes i2..i4 for o2..o4 but this "
                 "handler wrote o2/o3/o4");
        }
        for (unsigned k : {2u, 3u, 4u}) {
            if (root.expectsMessage() && k < root.minWords) {
                filled |= bitOf(k);
                substituted |= bitOf(k);
                noteIRead(idx, k, st);
            }
        }
    }

    if (!rep)
        return;

    // The message is the contiguous run of defined words from o0.  On
    // basic models o4 is the out-of-band id, not payload.
    bool basic = !model.optimized;
    uint8_t payload = basic ? (filled & 0xf) : filled;
    unsigned limit = basic ? 4 : 5;
    unsigned prefix = 0;
    while (prefix < limit && (payload & bitOf(prefix)))
        ++prefix;

    if (summary) {
        EmitSite site;
        site.mode = mode;
        site.words = prefix;
        site.substituted = substituted;
        // A send folded with !next on the same instruction retires the
        // input slot with the send; it is consume-disciplined.
        site.beforeNext = !(st.mustNext || with_next);
        site.addr = prog.base + static_cast<Addr>(idx) * 4;
        site.line = idx < prog.lineOf.size() ? prog.lineOf[idx] : 0;
        if (basic) {
            if (st.oVals[4].kind == VKind::constant) {
                site.typeKnown = true;
                site.type = st.oVals[4].value & 0xffff;
            }
        } else {
            site.typeKnown = true;
            site.type = stype;
        }
        for (unsigned k = 0; k < prefix && k < 5; ++k) {
            if (substituted & bitOf(k))
                continue;
            const AbsVal &v = st.oVals[k];
            if (v.kind == VKind::inputWord && v.delta < 0)
                site.decremented = true;
        }
        summary->emits.push_back(site);
    }

    if (payload >> prefix) {
        diag(Severity::error, "send", idx,
             "outgoing message has a gap: words above o" +
                 std::to_string(prefix) + " are written but o" +
                 std::to_string(prefix) + " is not");
        return;
    }

    unsigned minw = 0, maxw = 0;
    std::string what;
    if (basic) {
        if (!(st.oDef & bitOf(4))) {
            diag(Severity::error, "send", idx,
                 "basic-model SEND without a defined o4 id word");
            return;
        }
        if (st.oVals[4].kind != VKind::constant) {
            diag(Severity::warning, "send", idx,
                 "cannot determine the o4 message id statically");
            return;
        }
        unsigned id = st.oVals[4].value;
        bool send_family = id == 0 || id == 7 || id == 8;
        if (!send_family && !(id < 16 && msg::typeContract(id).live)) {
            diag(Severity::error, "send", idx,
                 "sends unknown message id " + std::to_string(id));
            return;
        }
        basicIdContract(id, minw, maxw);
        what = "id " + std::to_string(id);
    } else {
        msg::TypeContract tc = msg::typeContract(stype);
        if (!tc.live) {
            diag(Severity::error, "send", idx,
                 "sends non-protocol type " + std::to_string(stype));
            return;
        }
        minw = tc.minWords;
        maxw = tc.maxWords;
        what = "type " + std::to_string(stype);
    }
    if (prefix < minw || prefix > maxw) {
        diag(Severity::error, "send", idx,
             "sends " + std::to_string(prefix) + " message words but " +
                 what + " requires " + std::to_string(minw) + ".." +
                 std::to_string(maxw));
    }
}

void
RootRun::applyInst(size_t idx, const Instruction &inst, State &st)
{
    // Resolve the memory operand, if there is one.
    bool mem = isa::isLoad(inst.op) || isa::isStore(inst.op);
    AbsVal base, off;
    bool addrKnown = false;
    Word addr = 0;
    NiAccess acc;
    if (mem) {
        base = readReg(st.env, inst.rs1);
        off = (inst.op == Opcode::ld || inst.op == Opcode::st)
                  ? readReg(st.env, inst.rs2)
                  : AbsVal{VKind::constant, static_cast<Word>(inst.imm)};
        if (base.kind == VKind::constant && off.kind == VKind::constant) {
            addrKnown = true;
            addr = base.value + off.value;
        }
        if (!regMapped) {
            if (addrKnown) {
                acc = decodeNiAddr(addr);
            } else if (base.kind == VKind::constant &&
                       decodeNiAddr(base.value).isNi) {
                // NI base plus a run-time offset: the command bits are
                // unknowable, so nothing below can be checked.
                diag(Severity::warning, "send", idx,
                     "network-interface access with a command offset "
                     "that cannot be resolved statically");
            }
        }
    }
    if (acc.isNi && isa::isLoad(inst.op))
        niLoads.insert(idx);

    // 1. Reads (with the pre-instruction state).
    for (unsigned r : isa::regsRead(inst)) {
        bool alias = regMapped && r >= isa::niRegBase &&
                     r < isa::niRegBase + ni::numNiRegs;
        if (!alias && !(st.mustDef & bitOf(r))) {
            diag(Severity::error, "def-use", idx,
                 "reads " + isa::regName(r) +
                     " which may be undefined here");
        }
        if (regMapped && r >= isa::niRegBase + ni::regI0 &&
            r <= isa::niRegBase + ni::regI4)
            noteIRead(idx, r - (isa::niRegBase + ni::regI0), st);
    }
    if (acc.isNi && isa::isLoad(inst.op) && acc.reg >= ni::regI0 &&
        acc.reg <= ni::regI4)
        noteIRead(idx, acc.reg - ni::regI0, st);

    // A store to the host-proxy doorbell (On-NI models) ships the
    // whole message -- effective id plus input words -- to the host
    // service loop, consuming every word the message carries.
    if (isa::isStore(inst.op) && addrKnown &&
        addr == msg::hpuProxyAddr) {
        for (unsigned k = 0; k < root.maxWords; ++k)
            noteIRead(idx, k, st);
        st.mayEscape = true;
        st.mustEscape = true;
        if (summary)
            summary->escapes = true;
    } else if (isa::isStore(inst.op) && !acc.isNi && summary) {
        summary->plainStores = true;
    }

    // 2. The instruction's own write (visible to a folded SEND: the
    //    paper's fused "ld o2, (i0) !reply !next").
    if (auto rd = isa::regWritten(inst)) {
        AbsVal result;
        if (inst.op == Opcode::lui) {
            result = {VKind::constant, static_cast<Word>(inst.imm) << 16};
        } else if (isa::isLoad(inst.op)) {
            if (acc.isNi) {
                if (acc.reg >= ni::regI0 && acc.reg <= ni::regI4)
                    result = {VKind::inputWord,
                              static_cast<Word>(acc.reg - ni::regI0)};
                else if (acc.reg == ni::regMsgIp ||
                         acc.reg == ni::regNextMsgIp)
                    result = {VKind::dispatchPtr, 0};
            } else {
                std::optional<Word> tb;
                if (base.kind == VKind::constant)
                    tb = tableBaseOf(base.value);
                if (!tb && off.kind == VKind::constant)
                    tb = tableBaseOf(off.value);
                if (!tb && addrKnown)
                    tb = tableBaseOf(addr);
                if (tb)
                    result = {VKind::tableEntry, *tb};
            }
        } else if (inst.op == Opcode::jmp || isa::isBranch(inst.op)) {
            // Link register: pc + 8.
            result = {VKind::constant,
                      prog.base + static_cast<Word>(idx) * 4 + 8};
        } else if (isa::isTriadic(inst.op)) {
            AbsVal a = readReg(st.env, inst.rs1);
            AbsVal b = readReg(st.env, inst.rs2);
            if (a.kind == VKind::constant && b.kind == VKind::constant) {
                if (auto v = evalAlu(inst.op, a.value, b.value))
                    result = {VKind::constant, *v};
            } else if (auto w = inputWordDelta(inst.op, a, b)) {
                result = *w;
            }
        } else {
            AbsVal a = readReg(st.env, inst.rs1);
            AbsVal b{VKind::constant, static_cast<Word>(inst.imm)};
            if (a.kind == VKind::constant) {
                if (auto v = evalAlu(inst.op, a.value, b.value))
                    result = {VKind::constant, *v};
            } else if (auto w = inputWordDelta(inst.op, a, b)) {
                result = *w;
            }
        }
        st.env[*rd] = result;
        st.mustDef |= bitOf(*rd);
        st.mayWritten |= bitOf(*rd);
        if (regMapped && *rd >= isa::niRegBase + ni::regO0 &&
            *rd <= isa::niRegBase + ni::regO4) {
            unsigned k = *rd - (isa::niRegBase + ni::regO0);
            st.oDef |= bitOf(k);
            st.oMay |= bitOf(k);
            st.oVals[k] = result;
        }
    }
    if (acc.isNi && isa::isStore(inst.op) && acc.reg <= ni::regO4) {
        st.oDef |= bitOf(acc.reg);
        st.oMay |= bitOf(acc.reg);
        st.oVals[acc.reg] = readReg(st.env, inst.rd);
    }

    // 3. NI commands: folded into the instruction word, or carried by
    //    the command address (Figure 9).
    SendMode mode = SendMode::none;
    unsigned stype = 0;
    bool donext = false;
    if (inst.ni.any()) {
        mode = inst.ni.mode;
        stype = inst.ni.type;
        donext = inst.ni.next;
    }
    if (acc.isNi) {
        if (acc.mode != SendMode::none) {
            mode = acc.mode;
            stype = acc.type;
        }
        donext = donext || acc.next;
    }
    if (mode != SendMode::none)
        doSend(idx, st, mode, stype, donext);
    if (donext) {
        if (rep && st.mayNext && root.expectsMessage()) {
            diag(Severity::warning, "consume", idx,
                 "NEXT may execute twice on a path through this "
                 "handler");
        }
        st.mayNext = true;
        st.mustNext = true;
    }
}

void
RootRun::joinTo(size_t to, const State &st, std::vector<size_t> &succs)
{
    if (rep)
        return;     // states are converged in the report pass
    if (mergeInto(in[to], st))
        succs.push_back(to);
}

void
RootRun::fallTo(size_t from, size_t to, const State &st,
                std::vector<size_t> &succs)
{
    if (to >= prog.words.size() ||
        prog.kindOf[to] != isa::WordKind::code) {
        diag(Severity::error, "structure", from,
             "control falls through into non-code (off the end of the "
             "handler?)");
        return;
    }
    joinTo(to, st, succs);
}

void
RootRun::classifyJmp(size_t idx, const Instruction &inst,
                     const AbsVal &target, const State &st,
                     std::vector<size_t> &succs)
{
    unsigned rs1 = inst.rs1;

    // Register-mapped code names its dispatch source directly.
    if (regMapped && (rs1 == isa::niRegBase + ni::regMsgIp ||
                      rs1 == isa::niRegBase + ni::regNextMsgIp)) {
        if (root.expectsMessage() && !st.mustNext) {
            diag(Severity::error, "consume", idx,
                 "dispatches to the next message without issuing NEXT "
                 "for the current one");
        }
        recordExit(st);
        return;
    }
    if (regMapped && rs1 >= isa::niRegBase + ni::regI0 &&
        rs1 <= isa::niRegBase + ni::regI4) {
        unsigned k = rs1 - (isa::niRegBase + ni::regI0);
        if (k != 1) {
            diag(Severity::error, "dispatch", idx,
                 "dispatches through message word " + std::to_string(k) +
                     "; only word 1 is a dispatch address (Figure 7)");
        }
        recordExit(st);
        return;
    }

    switch (target.kind) {
      case VKind::dispatchPtr:
        if (root.expectsMessage() && !st.mustNext) {
            diag(Severity::error, "consume", idx,
                 "dispatches to the next message without issuing NEXT "
                 "for the current one");
        }
        recordExit(st);
        return;
      case VKind::inputWord:
        if (target.value != 1 || target.delta != 0) {
            diag(Severity::error, "dispatch", idx,
                 "dispatches through message word " +
                     std::to_string(target.value) +
                     "; only word 1 is a dispatch address (Figure 7)");
        }
        recordExit(st);
        return;
      case VKind::tableEntry:
        // A jump through the basic dispatch table starts the next
        // message (NEXT must precede it); a jump through the escape
        // table continues the current one.
        if (target.value == msg::basicDispatchTable &&
            root.expectsMessage() && !st.mustNext) {
            diag(Severity::error, "consume", idx,
                 "dispatches to the next message without issuing NEXT "
                 "for the current one");
        }
        recordExit(st);
        return;
      case VKind::constant: {
        Addr t = target.value;
        if (!prog.contains(t) ||
            prog.kindOf[prog.indexOf(t)] != isa::WordKind::code) {
            diag(Severity::error, "structure", idx,
                 "jumps to an address outside the program's code");
            return;
        }
        joinTo(prog.indexOf(t), st, succs);
        return;
      }
      case VKind::unknown:
        diag(Severity::error, "dispatch", idx,
             "indirect jump target is not derived from a dispatch "
             "source (MsgIp/NextMsgIp, message word 1, or a dispatch "
             "table)");
        recordExit(st);
        return;
    }
}

void
RootRun::processUnit(size_t idx, std::vector<size_t> &succs)
{
    State st = in.at(idx);
    visited.insert(idx);
    Instruction inst = isa::decode(prog.words[idx]);

    if (inst.op == Opcode::halt) {
        if (rep)
            recordExit(st);
        return;
    }

    if (!isa::isBranch(inst.op)) {
        applyInst(idx, inst, st);
        fallTo(idx, idx + 1, st, succs);
        return;
    }

    // A branch and its delay slot form one unit: the delay slot's
    // effects are visible at the branch target (Section 2.2.3 leans on
    // this for the dispatch overlap).
    AbsVal jtarget = readReg(st.env, inst.rs1);
    applyInst(idx, inst, st);

    size_t d = idx + 1;
    if (d >= prog.words.size() || prog.kindOf[d] != isa::WordKind::code) {
        diag(Severity::error, "structure", idx,
             "branch delay slot is not an instruction");
    } else {
        visited.insert(d);
        Instruction dinst = isa::decode(prog.words[d]);
        if (isa::isBranch(dinst.op) || dinst.op == Opcode::halt) {
            diag(Severity::warning, "structure", d,
                 "control transfer in a branch delay slot");
        } else {
            applyInst(d, dinst, st);
        }
    }

    if (inst.op == Opcode::jmp) {
        classifyJmp(idx, inst, jtarget, st, succs);
        return;
    }

    Addr pc = prog.base + static_cast<Addr>(idx) * 4;
    Addr target = pc + 4 + static_cast<Word>(inst.imm) * 4;
    if (!prog.contains(target) ||
        prog.kindOf[prog.indexOf(target)] != isa::WordKind::code) {
        diag(Severity::error, "structure", idx,
             "branch target is outside the program's code");
    } else {
        joinTo(prog.indexOf(target), st, succs);
    }
    if (isa::isCondBranch(inst.op))
        fallTo(idx, idx + 2, st, succs);
}

/** Initial state for a root, from the contract's pinned constants. */
State
rootEntryState(const Contract &contract, const Root &root,
               bool reg_mapped)
{
    State init;
    init.live = true;
    init.mustDef = bitOf(0);
    if (reg_mapped) {
        for (unsigned r = isa::niRegBase;
             r < isa::niRegBase + ni::numNiRegs; ++r)
            init.mustDef |= bitOf(r);
    }
    if (root.kind != RootKind::setup) {
        init.env = contract.pinned;
        for (unsigned r = 1; r < isa::numRegs; ++r) {
            if (init.env[r].kind == VKind::constant)
                init.mustDef |= bitOf(r);
        }
    }
    // Register-mapped message roots see the message in the i-register
    // aliases; name them so copies and arithmetic on input words stay
    // classified (delta tracking for forwarded hop bounds).
    if (reg_mapped && root.expectsMessage()) {
        for (unsigned k = 0; k < 5; ++k) {
            init.env[isa::niRegBase + ni::regI0 + k] =
                AbsVal{VKind::inputWord, k};
        }
    }
    return init;
}

/**
 * Statically estimate load-use stalls (notes).  Models the CPU's
 * interlock: a load's result is ready 1 + d cycles after issue, where
 * d is the interface's load-use delay for NI-window accesses (2 for
 * the off-chip placement) and 0 for plain memory.  Register-mapped
 * interface reads never interlock.
 */
void
hazardScan(const isa::Program &prog, const ni::Model &model,
           const Contract &contract, const std::set<size_t> &visited,
           const std::set<size_t> &ni_loads, Report &rep)
{
    // Kernels compiled register-mapped (including the On-NI models'
    // HPU handler kernels) never interlock on the interface.
    unsigned ni_delay = contract.kernelRegMapped
                            ? 0
                            : model.config().loadUseDelay();
    bool reg_mapped = contract.kernelRegMapped ||
                      model.policy().registerMapped();

    // Pessimistic block boundaries: every root entry and branch target
    // resets the pipeline model.
    std::set<size_t> resets;
    for (const Root &r : contract.roots) {
        if (prog.contains(r.entry))
            resets.insert(prog.indexOf(r.entry));
    }
    for (size_t i : visited) {
        Instruction inst = isa::decode(prog.words[i]);
        if (!isa::isBranch(inst.op) || inst.op == Opcode::jmp)
            continue;
        Addr pc = prog.base + static_cast<Addr>(i) * 4;
        Addr target = pc + 4 + static_cast<Word>(inst.imm) * 4;
        if (prog.contains(target))
            resets.insert(prog.indexOf(target));
    }

    std::array<int, isa::numRegs> pend{};
    auto reset = [&] { pend.fill(0); };
    size_t barrier = SIZE_MAX;
    for (size_t i = 0; i < prog.words.size(); ++i) {
        if (prog.kindOf[i] != isa::WordKind::code || !visited.count(i)) {
            reset();
            continue;
        }
        if (i == barrier || resets.count(i))
            reset();
        Instruction inst = isa::decode(prog.words[i]);
        for (int &p : pend) {
            if (p > 0)
                --p;
        }
        int stall = 0;
        unsigned stall_reg = 0;
        for (unsigned r : isa::regsRead(inst)) {
            if (reg_mapped && r >= isa::niRegBase)
                continue;   // interface registers never interlock
            if (pend[r] > stall) {
                stall = pend[r];
                stall_reg = r;
            }
        }
        if (stall > 0) {
            rep.add(Severity::note, "hazard",
                    prog.base + static_cast<Addr>(i) * 4,
                    i < prog.lineOf.size() ? prog.lineOf[i] : 0,
                    model.shortName(),
                    std::to_string(stall) + "-cycle load-use stall on " +
                        isa::regName(stall_reg));
            for (int &p : pend)
                p = std::max(0, p - stall);
        }
        if (isa::isLoad(inst.op)) {
            if (auto rd = isa::regWritten(inst)) {
                unsigned d = ni_loads.count(i) ? ni_delay : 0;
                bool alias = reg_mapped && *rd >= isa::niRegBase;
                if (!alias)
                    pend[*rd] = static_cast<int>(1 + d);
            }
        }
        if (inst.op == Opcode::br || inst.op == Opcode::jmp)
            barrier = i + 2;
        else if (inst.op == Opcode::halt)
            barrier = i + 1;
    }
}

/**
 * Handler-time budget scan (On-NI models).  sPIN's contract bounds how
 * long a handler may occupy its HPU; the kernels guarantee the bound
 * statically by keeping every handler loop-free up to its NEXT and
 * escaping unbounded work (deferred-list walks) to the host.  The scan
 * walks every path from each message-handling root, counting one cycle
 * per instruction, and terminates a path at the instruction that
 * retires NEXT, at a halt, or at an indirect jmp (dispatch: by then
 * the activation is over).  A cycle reached before NEXT is unbounded
 * occupancy; a worst-case path longer than the budget is an overrun.
 * Both are warnings, so `tcpni_lint --Werror` rejects such kernels.
 */
struct BudgetWalker
{
    const isa::Program &prog;
    std::map<size_t, uint64_t> memo;
    std::set<size_t> onpath;
    bool cyclic = false;

    uint64_t
    walk(size_t idx)
    {
        if (cyclic)
            return 0;
        auto it = memo.find(idx);
        if (it != memo.end())
            return it->second;
        if (onpath.count(idx)) {
            cyclic = true;
            return 0;
        }
        if (idx >= prog.words.size() ||
            prog.kindOf[idx] != isa::WordKind::code)
            return 0;   // structure checks report fall-offs

        onpath.insert(idx);
        Instruction inst = isa::decode(prog.words[idx]);
        uint64_t cost;
        if (inst.op == Opcode::halt) {
            cost = 1;
        } else if (!isa::isBranch(inst.op)) {
            cost = 1;
            if (!inst.ni.next)
                cost += walk(idx + 1);
        } else {
            cost = 2;   // the branch and its delay slot
            bool ends = inst.ni.next;
            if (idx + 1 < prog.words.size() &&
                prog.kindOf[idx + 1] == isa::WordKind::code)
                ends = ends || isa::decode(prog.words[idx + 1]).ni.next;
            // Indirect jumps are dispatch; the activation is over.
            if (!ends && inst.op != Opcode::jmp) {
                Addr pc = prog.base + static_cast<Addr>(idx) * 4;
                Addr target =
                    pc + 4 + static_cast<Word>(inst.imm) * 4;
                uint64_t worst = 0;
                if (prog.contains(target))
                    worst = walk(prog.indexOf(target));
                if (isa::isCondBranch(inst.op))
                    worst = std::max(worst, walk(idx + 2));
                cost += worst;
            }
        }
        onpath.erase(idx);
        memo[idx] = cost;
        return cost;
    }
};

void
budgetScan(const isa::Program &prog, const ni::Model &model,
           const Contract &contract, Report &rep)
{
    Cycles budget = model.policy().handlerTimeBudget();
    if (budget == 0)
        return;

    for (const Root &root : contract.roots) {
        if (!root.expectsMessage() || !prog.contains(root.entry))
            continue;
        size_t entry = prog.indexOf(root.entry);
        unsigned line =
            entry < prog.lineOf.size() ? prog.lineOf[entry] : 0;

        BudgetWalker bw{prog, {}, {}, false};
        uint64_t worst = bw.walk(entry);
        if (bw.cyclic) {
            rep.add(Severity::warning, "budget", root.entry, line,
                    root.name,
                    "handler occupancy is unbounded: a loop precedes "
                    "NEXT (escape this work to the host proxy)");
        } else if (worst > budget) {
            rep.add(Severity::warning, "budget", root.entry, line,
                    root.name,
                    "worst-case handler occupancy of " +
                        std::to_string(worst) +
                        " cycles exceeds the handler-time budget of " +
                        std::to_string(budget));
        }
    }
}

} // namespace

Report
verify(const isa::Program &prog, const ni::Model &model,
       const Contract &contract, const VerifyOptions &opts)
{
    Report rep = contract.diags;
    bool reg_mapped = contract.kernelRegMapped ||
                      model.policy().registerMapped();
    std::set<size_t> visited;
    std::set<size_t> ni_loads;

    for (const Root &root : contract.roots) {
        RootRun rr{prog, model, contract, root, reg_mapped,
                   {}, visited, ni_loads, nullptr, nullptr, {}};
        size_t entry = prog.indexOf(root.entry);
        mergeInto(rr.in[entry], rootEntryState(contract, root,
                                               reg_mapped));

        // Pass 1: propagate to a fixpoint.
        std::deque<size_t> work{entry};
        while (!work.empty()) {
            size_t i = work.front();
            work.pop_front();
            std::vector<size_t> succs;
            rr.processUnit(i, succs);
            for (size_t s : succs)
                work.push_back(s);
        }

        // Pass 2: report against the converged states.
        rr.rep = &rep;
        RootSummary rsum;
        if (opts.summary) {
            rsum.name = root.name;
            rsum.kind = root.kind;
            rsum.type = root.type;
            rsum.minWords = root.minWords;
            rsum.maxWords = root.maxWords;
            rsum.iafull = root.iafull;
            rr.summary = &rsum;
        }
        for (const auto &[i, st] : rr.in) {
            (void)st;
            std::vector<size_t> ignored;
            rr.processUnit(i, ignored);
        }
        if (opts.summary)
            opts.summary->roots.push_back(std::move(rsum));

        // Message-consumption completeness.
        if (root.expectsMessage()) {
            std::set<unsigned> total = rr.consumed;
            total.insert(root.dispatchConsumed.begin(),
                         root.dispatchConsumed.end());
            for (unsigned k = 0; k < root.minWords; ++k) {
                if (!total.count(k)) {
                    rep.add(Severity::warning, "consume", root.entry,
                            rr.lineAt(entry), root.name,
                            "message word " + std::to_string(k) +
                                " is never consumed by this handler");
                }
            }
        }
    }

    // Whole-program structure: unreachable code and cost-region gaps.
    for (size_t i = 0; i < prog.words.size(); ++i) {
        if (prog.kindOf[i] != isa::WordKind::code)
            continue;
        Addr addr = prog.base + static_cast<Addr>(i) * 4;
        unsigned line = i < prog.lineOf.size() ? prog.lineOf[i] : 0;
        if (!visited.count(i)) {
            rep.add(Severity::warning, "structure", addr, line, "",
                    "code is unreachable from every entry point");
        } else if (i < prog.regionOf.size() && prog.regionOf[i] == 0) {
            rep.add(Severity::warning, "region", addr, line, "",
                    "reachable code carries no .region cost tag");
        }
    }

    if (opts.hazardNotes)
        hazardScan(prog, model, contract, visited, ni_loads, rep);

    budgetScan(prog, model, contract, rep);

    rep.dedupe();
    return rep;
}

Report
verifyHandlers(const isa::Program &prog, const ni::Model &model,
               const VerifyOptions &opts)
{
    return verify(prog, model, deriveHandlerContract(prog, model), opts);
}

Report
verifySender(const isa::Program &prog, const ni::Model &model,
             const VerifyOptions &opts)
{
    return verify(prog, model, deriveSenderContract(prog, model), opts);
}

} // namespace verify
} // namespace tcpni
