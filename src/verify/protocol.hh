/**
 * @file
 * Whole-system protocol analysis over the kernel corpus of one model.
 *
 * The per-kernel verifier (verifier.hh) proves each kernel correct in
 * isolation; this pass lifts the kernels' exported summaries into a
 * typed message-flow graph (graph.hh) and checks the properties that
 * only exist *between* kernels:
 *
 *   proto-reply     every emitted protocol type has a handler, and
 *                   every handler of an obliged request type (READ /
 *                   PREAD -> SEND, PWRITE -> ACK, see
 *                   msg::replyObligation) emits the reply on some
 *                   path -- directly or by escaping to the host proxy.
 *   proto-forward   the propagation edges (a handler emitting a
 *                   handled type) form a DAG once edges carrying a
 *                   statically-decremented hop bound are removed, so
 *                   FORWARD fan-out trees (collectives) terminate.
 *   proto-deadlock  no cycle of handlers that emit before NEXT while
 *                   their own input queue may be above its iafull
 *                   threshold: each such handler holds an input slot
 *                   while demanding downstream buffer space, and a
 *                   cycle of them is the classic cyclic-credit
 *                   buffer deadlock (consume-before-send discipline).
 *   proto-escape    On-NI models only: every PWRITE handler path
 *                   escapes through the host ring before the
 *                   activation ends, and neither PREAD nor PWRITE
 *                   handlers store to plain memory from the HPU --
 *                   the single-writer I-structure rule.
 *   proto-dead      a handled non-control type nothing in the corpus
 *                   emits (warning: dead handler code).
 *
 * The corpus for one model is its handler kernel (all verified
 * variants) plus the seven sender kernels.  The host proxy is part of
 * the corpus axiomatically: it replays escaped messages and replies
 * with plain SENDs / ACKs, so it satisfies obligations of escaping
 * handlers without being verified here (it is host C code territory;
 * see DESIGN.md section 11).
 */

#ifndef TCPNI_VERIFY_PROTOCOL_HH
#define TCPNI_VERIFY_PROTOCOL_HH

#include <string>
#include <vector>

#include "ni/config.hh"
#include "verify/graph.hh"
#include "verify/verifier.hh"

namespace tcpni
{
namespace verify
{

/** One verified kernel's contribution to the corpus. */
struct ProtoKernel
{
    std::string name;           //!< lint job name ("handlers", "send0")
    bool handlers = false;      //!< handler kernel (message-triggered)
    KernelSummary summary;      //!< exported by verify()
};

/** Lift the kernels' summaries into the model's message-flow graph. */
MessageFlowGraph buildFlowGraph(const ni::Model &model,
                                const std::vector<ProtoKernel> &kernels);

/** Run the five whole-system checks for @p model's corpus. */
Report analyzeProtocol(const ni::Model &model,
                       const std::vector<ProtoKernel> &kernels);

} // namespace verify
} // namespace tcpni

#endif // TCPNI_VERIFY_PROTOCOL_HH
