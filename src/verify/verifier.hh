/**
 * @file
 * Static analysis of assembled kernels against the NI register
 * contract.
 *
 * The verifier runs a forward dataflow analysis from every root of the
 * derived Contract (see contract.hh).  Branch instructions are
 * processed together with their delay slot, so a handler's final
 * "jmp nextmsgip / <processing instruction with folded NEXT>" overlap
 * (Section 2.2.3 of the paper) is modelled exactly.  The analysis
 * tracks, per program point:
 *
 *  - which general registers must / may have been written (def-before-
 *    use; reads through the register-mapped NI aliases never count as
 *    undefined -- they are interface registers, not GPRs);
 *  - which output registers o0..o4 must / may hold a value, and the
 *    constant stored to o4 (the basic models' message id);
 *  - whether NEXT must / may have been issued;
 *  - an abstract value per register (constant, MsgIp/NextMsgIp load,
 *    input-register load, software-dispatch-table load), which is how
 *    the verifier classifies the indirect jump that ends a handler.
 *
 * Checks:
 *
 *   def-use    read of a possibly-undefined general register
 *   consume    handler for an n-word type reads exactly words
 *              0..n-1 (dispatch-consumed words included), never past
 *              the type's maximum length, and issues NEXT before
 *              dispatching to the next message
 *   send       a SEND commands a contiguous run of defined output
 *              words whose length matches the sent type's contract;
 *              REPLY / FORWARD never overwrite the substituted
 *              registers; basic-model sends define the o4 id word
 *   dispatch   indirect-jump targets derive from a dispatch source
 *              (MsgIp / NextMsgIp / word 1 / a software table)
 *   structure  fall-through off a handler / into data, branches that
 *              leave the image, unreachable code
 *   region     reachable code missing a .region cost tag
 *   hazard     (notes) statically-estimated load-use stalls under the
 *              model's interface placement (2 cycles off-chip)
 */

#ifndef TCPNI_VERIFY_VERIFIER_HH
#define TCPNI_VERIFY_VERIFIER_HH

#include "verify/contract.hh"
#include "verify/diag.hh"

namespace tcpni
{
namespace verify
{

struct VerifyOptions
{
    bool hazardNotes = true;    //!< emit load-use stall notes
};

/** Verify @p prog against an already-derived @p contract. */
Report verify(const isa::Program &prog, const ni::Model &model,
              const Contract &contract, const VerifyOptions &opts = {});

/** Derive the handler contract for @p model and verify. */
Report verifyHandlers(const isa::Program &prog, const ni::Model &model,
                      const VerifyOptions &opts = {});

/** Derive the sender contract and verify. */
Report verifySender(const isa::Program &prog, const ni::Model &model,
                    const VerifyOptions &opts = {});

} // namespace verify
} // namespace tcpni

#endif // TCPNI_VERIFY_VERIFIER_HH
