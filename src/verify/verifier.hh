/**
 * @file
 * Static analysis of assembled kernels against the NI register
 * contract.
 *
 * The verifier runs a forward dataflow analysis from every root of the
 * derived Contract (see contract.hh).  Branch instructions are
 * processed together with their delay slot, so a handler's final
 * "jmp nextmsgip / <processing instruction with folded NEXT>" overlap
 * (Section 2.2.3 of the paper) is modelled exactly.  The analysis
 * tracks, per program point:
 *
 *  - which general registers must / may have been written (def-before-
 *    use; reads through the register-mapped NI aliases never count as
 *    undefined -- they are interface registers, not GPRs);
 *  - which output registers o0..o4 must / may hold a value, and the
 *    constant stored to o4 (the basic models' message id);
 *  - whether NEXT must / may have been issued;
 *  - an abstract value per register (constant, MsgIp/NextMsgIp load,
 *    input-register load, software-dispatch-table load), which is how
 *    the verifier classifies the indirect jump that ends a handler.
 *
 * Checks:
 *
 *   def-use    read of a possibly-undefined general register
 *   consume    handler for an n-word type reads exactly words
 *              0..n-1 (dispatch-consumed words included), never past
 *              the type's maximum length, and issues NEXT before
 *              dispatching to the next message
 *   send       a SEND commands a contiguous run of defined output
 *              words whose length matches the sent type's contract;
 *              REPLY / FORWARD never overwrite the substituted
 *              registers; basic-model sends define the o4 id word
 *   dispatch   indirect-jump targets derive from a dispatch source
 *              (MsgIp / NextMsgIp / word 1 / a software table)
 *   structure  fall-through off a handler / into data, branches that
 *              leave the image, unreachable code
 *   region     reachable code missing a .region cost tag
 *   hazard     (notes) statically-estimated load-use stalls under the
 *              model's interface placement.  The stall depth is the
 *              placement policy's loadUseDelay() -- 2 cycles for the
 *              paper's off-chip NIC, 8 for the Section-4.2.3 far
 *              off-chip variant, 1 on-chip -- and 0 for kernels that
 *              run register-coupled (register-file placement, and the
 *              On-NI models' HPU handler kernels), whose interface
 *              reads never interlock.
 *
 * Besides diagnostics, verification can export a KernelSummary: the
 * per-root protocol facts (types consumed, SEND/REPLY/FORWARD emit
 * sites with lengths and substitution masks, host-proxy escape posts)
 * that verify/protocol.hh lifts into the whole-corpus message-flow
 * graph.
 */

#ifndef TCPNI_VERIFY_VERIFIER_HH
#define TCPNI_VERIFY_VERIFIER_HH

#include <string>
#include <vector>

#include "verify/contract.hh"
#include "verify/diag.hh"

namespace tcpni
{
namespace verify
{

/** One SEND/REPLY/FORWARD commanded by a kernel, observed under one
 *  verification root. */
struct EmitSite
{
    isa::SendMode mode = isa::SendMode::send;
    bool typeKnown = false;     //!< type/id resolved statically
    unsigned type = 0;          //!< 4-bit type (optimized) / o4 id (basic)
    unsigned words = 0;         //!< emitted contiguous o-word prefix
    uint8_t substituted = 0;    //!< o-words filled by REPLY/FORWARD

    /** The send may issue before this root's NEXT retires, i.e. while
     *  the handler still owns an unconsumed input-queue slot.  A send
     *  folded with !next on the same instruction is consume-
     *  disciplined and does not count. */
    bool beforeNext = false;

    /** Some emitted (non-substituted) word is an input word minus a
     *  compile-time constant: a statically-decremented hop bound. */
    bool decremented = false;

    Addr addr = 0;
    unsigned line = 0;
};

/** Protocol-relevant facts about one verification root. */
struct RootSummary
{
    std::string name;
    RootKind kind = RootKind::setup;
    unsigned type = 0;          //!< message type / basic id
    unsigned minWords = 0;
    unsigned maxWords = 0;
    bool iafull = true;         //!< may run with the input queue full

    std::vector<EmitSite> emits;

    bool escapes = false;       //!< some path posts to the host ring
    bool plainStores = false;   //!< stores to plain memory (not the NI
                                //!< window, not the host-proxy doorbell)
    unsigned exits = 0;         //!< activation exits (dispatch / halt)
    unsigned exitsEscaped = 0;  //!< exits with the escape already posted

    /** Every way out of this handler posts a host-proxy escape first
     *  (the On-NI single-writer discipline for PWRITE). */
    bool
    escapesAlways() const
    {
        return exits > 0 && exitsEscaped == exits;
    }
};

/** Everything the protocol analyzer needs to know about one kernel. */
struct KernelSummary
{
    std::vector<RootSummary> roots;
};

struct VerifyOptions
{
    bool hazardNotes = true;        //!< emit load-use stall notes
    KernelSummary *summary = nullptr;   //!< export per-root summaries
};

/** Verify @p prog against an already-derived @p contract. */
Report verify(const isa::Program &prog, const ni::Model &model,
              const Contract &contract, const VerifyOptions &opts = {});

/** Derive the handler contract for @p model and verify. */
Report verifyHandlers(const isa::Program &prog, const ni::Model &model,
                      const VerifyOptions &opts = {});

/** Derive the sender contract and verify. */
Report verifySender(const isa::Program &prog, const ni::Model &model,
                    const VerifyOptions &opts = {});

} // namespace verify
} // namespace tcpni

#endif // TCPNI_VERIFY_VERIFIER_HH
