/**
 * @file
 * The NI register contract a kernel is verified against.
 *
 * A contract is derived from an assembled Program plus the interface
 * model it targets.  Derivation symbolically executes the kernel's
 * setup block (straight-line code from `entry` up to its first
 * branch), which yields
 *
 *  - the constant environment the setup pins into registers (NI base
 *    address, dispatch-table bases, small constants) -- handlers rely
 *    on these without re-establishing them;
 *  - the dispatch-table base (IpBase) the kernel installs;
 *  - the software dispatch tables the setup stores (the basic models'
 *    id table at DISPATCH_TABLE and the escape table at ESC_TABLE);
 *
 * and from those, one verification root per entry point: each of the
 * 64 hardware dispatch slots (optimized models, all four iafull /
 * oafull variants of each type), the type-0 inlets, the software
 * dispatch-table targets (basic models), and the setup code itself.
 */

#ifndef TCPNI_VERIFY_CONTRACT_HH
#define TCPNI_VERIFY_CONTRACT_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "ni/config.hh"
#include "verify/diag.hh"

namespace tcpni
{
namespace verify
{

/** What an abstract register value is known to hold. */
enum class VKind : uint8_t
{
    unknown,
    constant,       //!< a compile-time constant (value)
    dispatchPtr,    //!< loaded from MsgIp / NextMsgIp
    inputWord,      //!< loaded from input register i<value>
    tableEntry,     //!< loaded from a software dispatch table
};

struct AbsVal
{
    VKind kind = VKind::unknown;
    Word value = 0;

    /** For inputWord values: a compile-time constant added to the
     *  loaded word (i<value> + delta).  The protocol analyzer's
     *  forward-termination check recognizes a *negative* delta in a
     *  forwarded message word as a statically-decremented hop bound
     *  (see verify/protocol.hh). */
    int32_t delta = 0;

    bool operator==(const AbsVal &) const = default;
};

/** Abstract values for the 32 general registers. */
using RegEnv = std::array<AbsVal, 32>;

/** Merge two abstract values (join: equal or unknown). */
AbsVal mergeVal(const AbsVal &a, const AbsVal &b);

/** Constant-fold one ALU op (the subset kernels use for setup). */
std::optional<Word> evalAlu(isa::Opcode op, Word a, Word b);

/** Abstract value of a register (r0 is always zero). */
AbsVal readReg(const RegEnv &env, unsigned r);

/** What kind of entry point a verification root is. */
enum class RootKind : uint8_t
{
    setup,      //!< the kernel's entry/setup code (also senders)
    poll,       //!< dispatch-slot 0: no valid message
    exception,  //!< dispatch-slot 1 (type 0001)
    handler,    //!< a live message type's handler
    inlet,      //!< a type-0 inlet reached through word 1
    deadSlot,   //!< a slot for a type the protocol does not use
};

/** One verification root: an address the NI can dispatch to, plus the
 *  message contract in force when it does. */
struct Root
{
    Addr entry = 0;
    std::string name;
    RootKind kind = RootKind::setup;
    unsigned type = 0;              //!< message type (handler slots)
    unsigned minWords = 0;          //!< shortest legal message
    unsigned maxWords = 0;          //!< longest legal message
    std::set<unsigned> dispatchConsumed;    //!< words dispatch itself used

    /** The input queue may be above its iafull threshold when this
     *  root runs.  Hardware-dispatch slots with ia=0 are only entered
     *  below the threshold; every other entry point (basic software
     *  dispatch, inlets, ia=1 slots) must assume the worst.  The
     *  protocol analyzer's buffer-deadlock check only counts SENDs
     *  issued before NEXT under roots where this is true. */
    bool iafull = true;

    /** A valid message occupies the input registers on entry. */
    bool expectsMessage() const
    {
        return kind == RootKind::handler || kind == RootKind::inlet;
    }
};

/** The derived contract for one kernel. */
struct Contract
{
    std::vector<Root> roots;

    /** The register view the kernel is compiled against.  Usually the
     *  policy's addressing mode, but On-NI models split: their
     *  *handler* kernels run on the register-coupled HPU while their
     *  *sender* kernels run on the (memory-mapped) host CPU. */
    bool kernelRegMapped = false;

    RegEnv pinned;                  //!< setup constants handlers rely on
    Addr ipBase = 0;                //!< installed dispatch-table base
    bool ipBaseFound = false;
    std::map<unsigned, Addr> swTable;   //!< basic id -> handler address
    std::map<unsigned, Addr> escTable;  //!< escape id -> handler address
    Report diags;                   //!< problems found while deriving
};

/**
 * Message types every handler kernel must implement.  The escape type
 * is only required of the register-mapped optimized kernel (the cache
 * kernels' setup does not establish the escape table).
 */
std::set<unsigned> requiredTypes(const ni::Model &model);

/** Basic-model software-table ids every kernel must install. */
std::set<unsigned> requiredBasicIds();

/** Message-length contract for a basic-model 32-bit id. */
void basicIdContract(unsigned id, unsigned &min_words,
                     unsigned &max_words);

/**
 * Derive the contract for @p prog, a handler kernel for @p model.
 * Missing entry points (incomplete dispatch table, absent inlets,
 * missing software-table entries) are reported in the returned
 * contract's diags.
 */
Contract deriveHandlerContract(const isa::Program &prog,
                               const ni::Model &model);

/** Derive the (single-root) contract for a sender program. */
Contract deriveSenderContract(const isa::Program &prog,
                              const ni::Model &model);

} // namespace verify
} // namespace tcpni

#endif // TCPNI_VERIFY_CONTRACT_HH
