#include "verify/graph.hh"

#include <sstream>

#include "msg/protocol.hh"

namespace tcpni
{
namespace verify
{

std::string
nodeName(unsigned node)
{
    if (node == hostProxyNode)
        return "host-proxy";
    const char *name = nullptr;
    switch (node) {
      case msg::typeSend: name = "SEND"; break;
      case msg::typeExc: name = "EXC"; break;
      case msg::typeRead: name = "READ"; break;
      case msg::typeWrite: name = "WRITE"; break;
      case msg::typePRead: name = "PREAD"; break;
      case msg::typePWrite: name = "PWRITE"; break;
      case msg::typeAck: name = "ACK"; break;
      case msg::typeEscape: name = "ESCAPE"; break;
      case msg::typeStop: name = "STOP"; break;
    }
    std::ostringstream os;
    if (name)
        os << name << '(' << node << ')';
    else
        os << "type " << node;
    return os.str();
}

std::vector<const FlowEdge *>
MessageFlowGraph::findCycle(
    const std::function<bool(const FlowEdge &)> &keep) const
{
    std::array<std::vector<const FlowEdge *>, graphNodes> out{};
    for (const FlowEdge &e : edges) {
        if (keep(e))
            out[e.from].push_back(&e);
    }

    // Iterative-friendly sizes (17 nodes), so plain recursive
    // three-color DFS with an explicit edge stack is fine.
    std::array<uint8_t, graphNodes> color{};    // 0 white, 1 gray, 2 black
    std::vector<const FlowEdge *> stack;
    std::vector<const FlowEdge *> cycle;

    std::function<bool(unsigned)> dfs = [&](unsigned n) -> bool {
        color[n] = 1;
        for (const FlowEdge *e : out[n]) {
            if (color[e->to] == 1) {
                // Back edge: the cycle is the stack suffix from the
                // first edge leaving e->to, plus this edge.
                stack.push_back(e);
                size_t start = 0;
                while (start < stack.size() &&
                       stack[start]->from != e->to)
                    ++start;
                cycle.assign(stack.begin() +
                                 static_cast<ptrdiff_t>(start),
                             stack.end());
                return true;
            }
            if (color[e->to] == 0) {
                stack.push_back(e);
                if (dfs(e->to))
                    return true;
                stack.pop_back();
            }
        }
        color[n] = 2;
        return false;
    };

    for (unsigned n = 0; n < graphNodes; ++n) {
        if (color[n] == 0 && dfs(n))
            return cycle;
    }
    return {};
}

std::string
describeCycle(const std::vector<const FlowEdge *> &cycle)
{
    std::ostringstream os;
    for (size_t i = 0; i < cycle.size(); ++i) {
        const FlowEdge *e = cycle[i];
        if (i == 0)
            os << nodeName(e->from);
        os << " -> " << nodeName(e->to) << " [" << e->where;
        os << " at 0x" << std::hex << e->addr << std::dec << ']';
    }
    return os.str();
}

} // namespace verify
} // namespace tcpni
