/**
 * @file
 * Diagnostics produced by the static kernel verifier.
 *
 * Every finding carries the check that produced it, the program
 * address and source line it refers to, and the handler (verification
 * root) under which it was discovered, so `tcpni_lint` output can be
 * traced straight back to the kernel assembly.
 */

#ifndef TCPNI_VERIFY_DIAG_HH
#define TCPNI_VERIFY_DIAG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tcpni
{
namespace verify
{

/**
 * Finding severities.  Errors are contract violations; warnings are
 * suspicious but not provably wrong (promoted to failures under
 * --Werror); notes are informational (e.g. load-use stall estimates)
 * and never fail a run.
 */
enum class Severity : uint8_t
{
    error,
    warning,
    note,
};

std::string severityName(Severity s);

/**
 * True when @p check matches @p pattern: exact, or @p pattern names a
 * check group by prefix ("proto" matches "proto-reply" but not
 * "protocol").  Used by `tcpni_lint -Wno-NAME` / `--only NAME`.
 */
bool checkMatches(const std::string &check, const std::string &pattern);

/** One finding. */
struct Diag
{
    Severity severity = Severity::error;
    std::string check;      //!< "def-use", "consume", "send", "dispatch",
                            //!< "hazard", "structure", "region"
    Addr addr = 0;          //!< program address the finding refers to
    unsigned line = 0;      //!< kernel source line (0 if none)
    std::string where;      //!< verification root (handler) name
    std::string message;

    /** "error[def-use] 0x4080 (line 12, h_read): ..." */
    std::string format() const;
};

/** The verifier's output for one program. */
struct Report
{
    std::vector<Diag> diags;

    void
    add(Severity sev, const std::string &check, Addr addr, unsigned line,
        const std::string &where, const std::string &message)
    {
        diags.push_back({sev, check, addr, line, where, message});
    }

    unsigned count(Severity s) const;

    /** No errors; with @p werror, no warnings either. */
    bool
    clean(bool werror) const
    {
        return count(Severity::error) == 0 &&
               (!werror || count(Severity::warning) == 0);
    }

    /** Drop duplicate findings (same check, address and message seen
     *  under several verification roots) and sort by address. */
    void dedupe();

    /** Remove findings whose check matches any of @p patterns. */
    void suppress(const std::vector<std::string> &patterns);

    /** Keep only findings whose check matches one of @p patterns. */
    void select(const std::vector<std::string> &patterns);

    /** Append another report's findings. */
    void merge(const Report &other);

    /** All findings, one per line. */
    std::string format() const;
};

} // namespace verify
} // namespace tcpni

#endif // TCPNI_VERIFY_DIAG_HH
