#include "cpu/cpu.hh"

#include "common/logging.hh"
#include "common/trace.hh"
#include "ni/placement_policy.hh"
#include "noc/message.hh"

namespace tcpni
{

using isa::Instruction;
using isa::Opcode;

Cpu::Cpu(std::string name, EventQueue &eq, Memory &mem,
         ni::NetworkInterface *ni, CpuConfig config)
    : SimObject(std::move(name), eq), mem_(mem), ni_(ni),
      config_(config), tickEvent_(*this)
{
    regMappedNi_ = ni_ && ni_->config().policy().registerMapped();
    if (ni_) {
        ni_->setInterruptSink([this](Word handler) {
            // Latched here; taken at the next instruction boundary.
            pendingInterrupt_ = handler;
        });
    }

    if (auto *r = metrics::registry()) {
        mgroup_ = r->addGroup(this->name(), eq);
        mgroup_->addCounter("instructions",
                            [this] { return instructions_; },
                            "instructions retired");
        mgroup_->addCounter("cycles", [this] { return cycles_; },
                            "cycles consumed (issue + stalls)");
        mgroup_->addCounter("stall_cycles",
                            [this] { return stallCycles_; },
                            "load-use interlock stall cycles");
        mgroup_->addCounter("ni_stall_cycles",
                            [this] { return niStallCycles_; },
                            "cycles stalled on NI SEND (full queue)");
        mgroup_->addCounter("interrupts_taken",
                            [this] { return interruptsTaken_; },
                            "message-arrival interrupts taken");
    }
}

Cpu::~Cpu()
{
    if (mgroup_)
        mgroup_->retire();
}

void
Cpu::loadProgram(const isa::Program &prog)
{
    // Merge the program's regions into the CPU's region table.
    std::vector<uint16_t> remap(prog.regionNames.size());
    for (size_t i = 0; i < prog.regionNames.size(); ++i) {
        const std::string &rn = prog.regionNames[i];
        uint16_t id = 0xffff;
        for (size_t j = 0; j < regionNames_.size(); ++j) {
            if (regionNames_[j] == rn)
                id = static_cast<uint16_t>(j);
        }
        if (id == 0xffff) {
            id = static_cast<uint16_t>(regionNames_.size());
            regionNames_.push_back(rn);
            regionCycles_.push_back(0);
            regionInsts_.push_back(0);
        }
        remap[i] = id;
    }

    for (size_t i = 0; i < prog.words.size(); ++i) {
        Addr a = prog.base + static_cast<Addr>(i * 4);
        mem_.write(a, prog.words[i]);
        regionByAddr_[a] = remap[prog.regionOf[i]];
    }
}

void
Cpu::reset(Addr pc)
{
    for (unsigned r = 0; r < isa::numRegs; ++r) {
        regs_[r] = 0;
        readyAt_[r] = 0;
    }
    pc_ = pc;
    branchTarget_.reset();
    pendingInterrupt_.reset();
    halted_ = false;
    instructions_ = cycles_ = stallCycles_ = niStallCycles_ = 0;
    interruptsTaken_ = 0;
    for (auto &c : regionCycles_)
        c = 0;
    for (auto &c : regionInsts_)
        c = 0;
}

void
Cpu::start()
{
    tcpni_assert(!halted_);
    if (!tickEvent_.scheduled())
        eventq().schedule(&tickEvent_, curTick());
}

bool
Cpu::isNiAliasedReg(unsigned r) const
{
    return regMappedNi_ && r >= isa::niRegBase &&
           r < isa::niRegBase + ni::numNiRegs;
}

Word
Cpu::readGpr(unsigned r)
{
    if (r == 0)
        return 0;
    if (isNiAliasedReg(r))
        return ni_->readReg(r - isa::niRegBase);
    return regs_[r];
}

void
Cpu::writeGpr(unsigned r, Word value, Tick ready_at)
{
    if (r == 0)
        return;
    if (isNiAliasedReg(r)) {
        // NI registers are wired into the register file; results are
        // visible to the interface immediately and never interlock.
        ni_->writeReg(r - isa::niRegBase, value);
        return;
    }
    regs_[r] = value;
    readyAt_[r] = ready_at;
}

Tick
Cpu::readyTick(const Instruction &inst) const
{
    Tick ready = curTick();
    auto consider = [&](unsigned r) {
        if (r == 0 || isNiAliasedReg(r))
            return;
        if (readyAt_[r] > ready)
            ready = readyAt_[r];
    };
    if (isa::readsRs1(inst.op))
        consider(inst.rs1);
    if (isa::readsRs2(inst.op))
        consider(inst.rs2);
    if (isa::readsRdAsSource(inst.op))
        consider(inst.rd);
    return ready;
}

uint16_t
Cpu::regionOf(Addr addr) const
{
    auto it = regionByAddr_.find(addr);
    return it == regionByAddr_.end() ? 0 : it->second;
}

void
Cpu::charge(Addr addr, uint64_t n)
{
    regionCycles_[regionOf(addr)] += n;
}

std::map<std::string, uint64_t>
Cpu::regionCycles() const
{
    std::map<std::string, uint64_t> out;
    for (size_t i = 0; i < regionNames_.size(); ++i) {
        if (regionCycles_[i])
            out[regionNames_[i]] += regionCycles_[i];
    }
    return out;
}

std::map<std::string, uint64_t>
Cpu::regionInstructions() const
{
    std::map<std::string, uint64_t> out;
    for (size_t i = 0; i < regionNames_.size(); ++i) {
        if (regionInsts_[i])
            out[regionNames_[i]] += regionInsts_[i];
    }
    return out;
}

Word
Cpu::reg(unsigned r) const
{
    tcpni_assert(r < isa::numRegs);
    if (r == 0)
        return 0;
    if (isNiAliasedReg(r))
        return const_cast<Cpu *>(this)->ni_->readReg(r - isa::niRegBase);
    return regs_[r];
}

void
Cpu::setReg(unsigned r, Word value)
{
    tcpni_assert(r < isa::numRegs);
    writeGpr(r, value, curTick());
}

void
Cpu::tick()
{
    if (halted_)
        return;

    const Tick now = curTick();

    // Take a pending message interrupt at an instruction boundary
    // (never inside a branch shadow): save the return address in the
    // interrupt link register and redirect to the handler.
    if (pendingInterrupt_ && !branchTarget_) {
        TCPNI_TRACE(CPU, "interrupt: handler entry 0x%08x "
                    "(return 0x%08x)", *pendingInterrupt_, pc_);
        writeGpr(intLinkReg, pc_, now + 1);
        pc_ = *pendingInterrupt_;
        pendingInterrupt_.reset();
        ++interruptsTaken_;
        ++cycles_;
        charge(pc_, 1);
        eventq().schedule(&tickEvent_, now + 1);
        return;
    }

    Word raw = mem_.read(pc_);
    Instruction inst = isa::decode(raw);

    // Operand interlocks.
    Tick ready = readyTick(inst);
    if (ready > now) {
        uint64_t stall = ready - now;
        stallCycles_ += stall;
        cycles_ += stall;
        charge(pc_, stall);
        eventq().schedule(&tickEvent_, ready);
        return;
    }

    if (config_.trace) {
        inform("%s %6llu  pc=%08x  %s", name().c_str(),
               static_cast<unsigned long long>(now), pc_,
               isa::disassemble(inst).c_str());
    }
    TCPNI_TRACE(CPU, "pc=0x%08x %s", pc_,
                isa::disassemble(inst).c_str());

    const Addr ipc = pc_;
    if (!execute(inst)) {
        // SEND against a full output queue with the stall policy:
        // retry the whole instruction next cycle.
        ++niStallCycles_;
        ++cycles_;
        charge(ipc, 1);
        eventq().schedule(&tickEvent_, now + 1);
        return;
    }

    ++instructions_;
    ++cycles_;
    charge(ipc, 1);
    regionInsts_[regionOf(ipc)] += 1;

    if (instructions_ > config_.maxInstructions)
        panic("CPU '%s' exceeded %llu instructions; runaway program?",
              name().c_str(),
              static_cast<unsigned long long>(config_.maxInstructions));

    if (halted_)
        return;

    eventq().schedule(&tickEvent_, now + 1);
}

bool
Cpu::execute(const Instruction &inst)
{
    const Tick now = curTick();

    // Pre-check NI command stalls so that a retried instruction has no
    // double side effects.
    if (inst.ni.mode != isa::SendMode::none) {
        if (!regMappedNi_)
            panic("NI instruction bits require the register-file "
                  "coupling (pc=0x%08x)", pc_);
        if (ni_->sendWouldStall())
            return false;
    }
    if (inst.ni.next && !regMappedNi_)
        panic("NI instruction bits require the register-file coupling "
              "(pc=0x%08x)", pc_);

    // Compute the next PC.  The instruction after a branch (its delay
    // slot) always executes; branchTarget_ holds the redirect that
    // applies after the delay slot.
    std::optional<Addr> new_target;
    Addr next_pc;
    if (branchTarget_) {
        next_pc = *branchTarget_;
        branchTarget_.reset();
        if (isa::isBranch(inst.op))
            panic("branch in a delay slot at pc=0x%08x", pc_);
    } else {
        next_pc = pc_ + 4;
    }

    auto alu = [&](Word result) { writeGpr(inst.rd, result, now + 1); };

    switch (inst.op) {
      case Opcode::add:
        alu(readGpr(inst.rs1) + readGpr(inst.rs2));
        break;
      case Opcode::sub:
        alu(readGpr(inst.rs1) - readGpr(inst.rs2));
        break;
      case Opcode::and_:
        alu(readGpr(inst.rs1) & readGpr(inst.rs2));
        break;
      case Opcode::or_:
        alu(readGpr(inst.rs1) | readGpr(inst.rs2));
        break;
      case Opcode::xor_:
        alu(readGpr(inst.rs1) ^ readGpr(inst.rs2));
        break;
      case Opcode::sll:
        alu(readGpr(inst.rs1) << (readGpr(inst.rs2) & 31));
        break;
      case Opcode::srl:
        alu(readGpr(inst.rs1) >> (readGpr(inst.rs2) & 31));
        break;
      case Opcode::sra:
        alu(static_cast<Word>(static_cast<int32_t>(readGpr(inst.rs1)) >>
                              (readGpr(inst.rs2) & 31)));
        break;
      case Opcode::slt:
        alu(static_cast<int32_t>(readGpr(inst.rs1)) <
                    static_cast<int32_t>(readGpr(inst.rs2))
                ? 1 : 0);
        break;
      case Opcode::sltu:
        alu(readGpr(inst.rs1) < readGpr(inst.rs2) ? 1 : 0);
        break;
      case Opcode::mul:
        alu(readGpr(inst.rs1) * readGpr(inst.rs2));
        break;
      case Opcode::addi:
        alu(readGpr(inst.rs1) + static_cast<Word>(inst.imm));
        break;
      case Opcode::andi:
        alu(readGpr(inst.rs1) & static_cast<Word>(inst.imm));
        break;
      case Opcode::ori:
        alu(readGpr(inst.rs1) | static_cast<Word>(inst.imm));
        break;
      case Opcode::xori:
        alu(readGpr(inst.rs1) ^ static_cast<Word>(inst.imm));
        break;
      case Opcode::lui:
        alu(static_cast<Word>(inst.imm) << 16);
        break;
      case Opcode::slli:
        alu(readGpr(inst.rs1) << (inst.imm & 31));
        break;
      case Opcode::srli:
        alu(readGpr(inst.rs1) >> (inst.imm & 31));
        break;

      case Opcode::ld:
      case Opcode::ldi: {
        Word base = readGpr(inst.rs1);
        Word off = inst.op == Opcode::ld ? readGpr(inst.rs2)
                                         : static_cast<Word>(inst.imm);
        Word vaddr = base + off;
        if (ni_ && ni::NetworkInterface::isNiAddr(vaddr)) {
            if (regMappedNi_)
                panic("cache-mapped NI access with a register-mapped "
                      "interface (pc=0x%08x)", pc_);
            // Pre-check the SEND stall before any side effect.
            auto mode = static_cast<unsigned>(
                bits(vaddr, ni::cmdaddr::modeShift + 1,
                     ni::cmdaddr::modeShift));
            if (mode != 0 && ni_->sendWouldStall())
                return false;
            Word result = 0;
            ni::CmdResult res = ni_->access(vaddr, 0, false, result);
            tcpni_assert(res == ni::CmdResult::ok);
            writeGpr(inst.rd, result,
                     now + 1 + ni_->config().loadUseDelay());
        } else {
            // The node-id bits of a global address to local memory are
            // this node's own id; the memory system ignores them.
            Word val = mem_.read(localOf(vaddr));
            writeGpr(inst.rd, val, now + 1 + config_.memLoadUseDelay);
        }
        break;
      }

      case Opcode::st:
      case Opcode::sti: {
        Word base = readGpr(inst.rs1);
        Word off = inst.op == Opcode::st ? readGpr(inst.rs2)
                                         : static_cast<Word>(inst.imm);
        Word vaddr = base + off;
        Word data = readGpr(inst.rd);
        if (ni_ && ni::NetworkInterface::isNiAddr(vaddr)) {
            if (regMappedNi_)
                panic("cache-mapped NI access with a register-mapped "
                      "interface (pc=0x%08x)", pc_);
            auto mode = static_cast<unsigned>(
                bits(vaddr, ni::cmdaddr::modeShift + 1,
                     ni::cmdaddr::modeShift));
            if (mode != 0 && ni_->sendWouldStall())
                return false;
            Word dummy = 0;
            ni::CmdResult res = ni_->access(vaddr, data, true, dummy);
            tcpni_assert(res == ni::CmdResult::ok);
        } else {
            mem_.write(localOf(vaddr), data);
        }
        break;
      }

      case Opcode::jmp: {
        Word target = readGpr(inst.rs1);
        if (inst.rd != 0)
            writeGpr(inst.rd, pc_ + 8, now + 1);
        new_target = target;
        break;
      }

      case Opcode::br: {
        Addr target = pc_ + 4 + static_cast<Addr>(inst.imm) * 4;
        if (inst.rd != 0)
            writeGpr(inst.rd, pc_ + 8, now + 1);
        new_target = target;
        break;
      }

      case Opcode::beqz:
      case Opcode::bnez:
      case Opcode::bltz:
      case Opcode::bgez: {
        Word v = readGpr(inst.rs1);
        bool taken = false;
        switch (inst.op) {
          case Opcode::beqz: taken = v == 0; break;
          case Opcode::bnez: taken = v != 0; break;
          case Opcode::bltz:
            taken = static_cast<int32_t>(v) < 0;
            break;
          default:
            taken = static_cast<int32_t>(v) >= 0;
            break;
        }
        if (taken)
            new_target = pc_ + 4 + static_cast<Addr>(inst.imm) * 4;
        break;
      }

      case Opcode::halt:
        TCPNI_TRACE(CPU, "halt after %llu instructions",
                    static_cast<unsigned long long>(instructions_ + 1));
        halted_ = true;
        return true;
    }

    // Execute folded NI commands after the instruction's own
    // operation, in SEND-then-NEXT order.
    if (inst.ni.any()) {
        ni::CmdResult res = ni_->command(inst.ni);
        tcpni_assert(res == ni::CmdResult::ok);
    }

    pc_ = next_pc;
    if (new_target)
        branchTarget_ = new_target;
    return true;
}

} // namespace tcpni
