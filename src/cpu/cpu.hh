/**
 * @file
 * An in-order, single-issue RISC processor timing model in the style of
 * the Motorola 88100 the paper hand-counts cycles for.
 *
 * Timing rules (Section 4.1's counting model):
 *
 *  - one instruction issues per cycle;
 *  - a loaded value is not available to a subsequent instruction until
 *    load-use-delay extra cycles have elapsed: 0 for the local data
 *    cache and the on-chip interface, 2 (configurable; Section 4.2.3
 *    studies 8) for the off-chip interface.  An instruction that needs
 *    a value too early interlocks, and the stall cycles are charged to
 *    its cost region;
 *  - branches and jumps have one delay slot which always executes;
 *  - reads of register-mapped NI registers are ordinary register reads
 *    and never interlock.
 *
 * Coupling to the network interface:
 *
 *  - register-file placement: r16..r30 alias the NI registers, and the
 *    NEXT/SEND command bits of triadic instructions are forwarded to
 *    the NI after the instruction's own operation completes;
 *  - cache-mapped placements: loads/stores whose effective address
 *    falls in the 0xffff0000 window are routed to
 *    NetworkInterface::access(), executing any Figure-9 encoded
 *    commands.
 *
 * A SEND against a full output queue under the stall policy holds the
 * instruction at issue, retrying each cycle, exactly like the paper's
 * "stall the processor until the output queue empties".
 *
 * Cost regions: every instruction belongs to the `.region` its source
 * line was tagged with in the assembler; the cycles (including stalls)
 * it consumes are accumulated per region.  The Table-1 harness tags its
 * kernels with "sending" / "dispatching" / "processing" regions.
 */

#ifndef TCPNI_CPU_CPU_HH
#define TCPNI_CPU_CPU_HH

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/assembler.hh"
#include "isa/isa.hh"
#include "mem/memory.hh"
#include "ni/network_interface.hh"
#include "sim/sim_object.hh"

namespace tcpni
{

/** CPU configuration. */
struct CpuConfig
{
    /** Extra load-use delay for local memory loads (88100 data cache
     *  loads are usable the next cycle, so 0). */
    Cycles memLoadUseDelay = 0;

    /** Upper bound on executed instructions; exceeding it panics.
     *  Guards tests and kernels against runaway loops. */
    uint64_t maxInstructions = 100'000'000;

    /** Emit a disassembly trace of every executed instruction. */
    bool trace = false;
};

/** Interrupt link register: a taken message interrupt saves the
 *  return address here (handlers end with `jmp r14`). */
constexpr unsigned intLinkReg = 14;

/** The processor model. */
class Cpu : public SimObject
{
  public:
    /**
     * @param ni  the node's network interface, or nullptr for a CPU
     *            with no network coupling (pure-ISA tests)
     */
    Cpu(std::string name, EventQueue &eq, Memory &mem,
        ni::NetworkInterface *ni, CpuConfig config = {});
    ~Cpu() override;

    /** Copy a program image into memory and adopt its cost regions. */
    void loadProgram(const isa::Program &prog);

    /** Reset architectural state and set the PC. */
    void reset(Addr pc);

    /** Begin execution (schedules the first tick). */
    void start();

    bool halted() const { return halted_; }

    /** @{ Architectural state access for harnesses and tests. */
    Word reg(unsigned r) const;
    void setReg(unsigned r, Word value);
    Addr pc() const { return pc_; }
    /** @} */

    /** @{ Accounting. */
    uint64_t instructions() const { return instructions_; }
    uint64_t cycles() const { return cycles_; }
    uint64_t stallCycles() const { return stallCycles_; }
    uint64_t niStallCycles() const { return niStallCycles_; }
    uint64_t interruptsTaken() const { return interruptsTaken_; }

    /** Cycles charged to each named cost region. */
    std::map<std::string, uint64_t> regionCycles() const;

    /** Instructions charged to each named cost region. */
    std::map<std::string, uint64_t> regionInstructions() const;
    /** @} */

  private:
    class TickEvent : public Event
    {
      public:
        explicit TickEvent(Cpu &cpu) : Event(cpuPri), cpu_(cpu) {}
        void process() override { cpu_.tick(); }
        std::string name() const override { return "cpu-tick"; }

      private:
        Cpu &cpu_;
    };

    void tick();

    /** Execute @p inst; returns false if the instruction must retry
     *  (NI send stall). */
    bool execute(const isa::Instruction &inst);

    /** True if GPR @p r aliases an NI register in this coupling. */
    bool isNiAliasedReg(unsigned r) const;

    Word readGpr(unsigned r);
    void writeGpr(unsigned r, Word value, Tick ready_at);

    /** Earliest tick at which @p inst can issue (interlocks). */
    Tick readyTick(const isa::Instruction &inst) const;

    /** Charge @p n cycles to the region of address @p addr. */
    void charge(Addr addr, uint64_t n);

    std::string regionNameOf(uint16_t id) const;
    uint16_t regionOf(Addr addr) const;

    Memory &mem_;
    ni::NetworkInterface *ni_;
    CpuConfig config_;
    bool regMappedNi_ = false;

    Word regs_[isa::numRegs] = {};
    Tick readyAt_[isa::numRegs] = {};
    Addr pc_ = 0;
    std::optional<Addr> branchTarget_;  //!< pending after delay slot
    /** Handler address of a message-arrival interrupt awaiting an
     *  instruction boundary (interrupt-driven reception). */
    std::optional<Word> pendingInterrupt_;
    bool halted_ = true;

    uint64_t instructions_ = 0;
    uint64_t cycles_ = 0;
    uint64_t stallCycles_ = 0;
    uint64_t niStallCycles_ = 0;
    uint64_t interruptsTaken_ = 0;

    /** Per-word region tags of loaded programs. */
    std::unordered_map<Addr, uint16_t> regionByAddr_;
    std::vector<std::string> regionNames_{""};
    std::vector<uint64_t> regionCycles_{0};
    std::vector<uint64_t> regionInsts_{0};

    TickEvent tickEvent_;

    /** Telemetry group; null unless a metrics registry was installed
     *  when this CPU was constructed. */
    std::shared_ptr<metrics::Group> mgroup_;
};

} // namespace tcpni

#endif // TCPNI_CPU_CPU_HH
