/**
 * @file
 * The 88100-flavoured RISC ISA used by the simulated processors.
 *
 * The paper hand-writes its handler kernels for the Motorola 88100.  We
 * define a compact RISC ISA with the properties the evaluation depends
 * on:
 *
 *  - triadic (three-register) instructions with spare encoding bits,
 *    into which the network-interface commands (SEND with a 4-bit type
 *    and a reply/forward mode, and NEXT) can be folded, exactly as
 *    Section 3.3 of the paper proposes;
 *  - delayed loads with an implementation-dependent load-use latency
 *    (2 extra cycles for the off-chip interface, per Section 3.1);
 *  - one branch delay slot, 88100 style.
 *
 * Instruction word layout (32 bits):
 *
 *   [31:26] opcode
 *   [25:21] rd     (destination; for ST the value source; for branches
 *                   unused)
 *   [20:16] rs1
 *
 * Triadic format (register-register ALU ops, LD, ST, JMP):
 *   [15:11] rs2
 *   [10]    NEXT command
 *   [9:8]   send mode (0 none, 1 SEND, 2 SEND-REPLY, 3 SEND-FORWARD)
 *   [7:4]   send type (4-bit message type)
 *   [3:0]   reserved (zero)
 *
 * Immediate format (ADDI .. STI, branches):
 *   [15:0]  16-bit immediate (sign- or zero-extended per opcode)
 *
 * Registers: 32 GPRs, r0 hardwired to zero.  When the register-mapped
 * network interface is attached, r16..r30 alias the interface
 * registers (see NiReg).
 */

#ifndef TCPNI_ISA_ISA_HH
#define TCPNI_ISA_ISA_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitfield.hh"
#include "sim/types.hh"

namespace tcpni
{
namespace isa
{

/** Number of general-purpose registers. */
constexpr unsigned numRegs = 32;

/** First GPR aliased to the NI register file (register-mapped NI). */
constexpr unsigned niRegBase = 16;

/** Opcodes. */
enum class Opcode : uint8_t
{
    // Triadic register-register format (may carry NI commands).
    add = 1,
    sub = 2,
    and_ = 3,
    or_ = 4,
    xor_ = 5,
    sll = 6,
    srl = 7,
    sra = 8,
    slt = 9,
    sltu = 10,
    mul = 11,
    ld = 12,    //!< rd = mem[rs1 + rs2]
    st = 13,    //!< mem[rs1 + rs2] = rd
    jmp = 14,   //!< rd = pc + 8 (link), pc = rs1; 1 delay slot

    // Immediate format.
    addi = 16,  //!< rd = rs1 + sext(imm)
    andi = 17,  //!< rd = rs1 & zext(imm)
    ori = 18,   //!< rd = rs1 | zext(imm)
    xori = 19,  //!< rd = rs1 ^ zext(imm)
    lui = 20,   //!< rd = imm << 16
    ldi = 21,   //!< rd = mem[rs1 + sext(imm)]
    sti = 22,   //!< mem[rs1 + sext(imm)] = rd
    slli = 23,  //!< rd = rs1 << imm[4:0]
    srli = 24,  //!< rd = rs1 >> imm[4:0] (logical)

    // Branches: target = pc + 4 + sext(imm)*4; 1 delay slot.
    beqz = 32,
    bnez = 33,
    bltz = 34,
    bgez = 35,
    br = 36,    //!< unconditional; rd = link register (r0 if unused)

    halt = 63,
};

/** SEND mode carried in the NI command field / command address. */
enum class SendMode : uint8_t
{
    none = 0,
    send = 1,       //!< plain SEND from o0..o4
    reply = 2,      //!< SEND with i1,i2 substituted for o0,o1
    forward = 3,    //!< SEND with i2,i3,i4 substituted for o2,o3,o4
};

/** NI commands optionally folded into a triadic instruction. */
struct NiCommand
{
    SendMode mode = SendMode::none;
    uint8_t type = 0;       //!< 4-bit message type for SEND
    bool next = false;      //!< pop the next message into the input regs

    bool any() const { return mode != SendMode::none || next; }

    bool operator==(const NiCommand &) const = default;
};

/** A decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::add;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;        //!< already extended per opcode
    NiCommand ni;

    bool operator==(const Instruction &) const = default;
};

/** True for opcodes using the triadic register-register format. */
bool isTriadic(Opcode op);

/** True for branch opcodes (which have a delay slot). */
bool isBranch(Opcode op);

/** True if this opcode reads rs1 / rs2 / rd-as-source. */
bool readsRs1(Opcode op);
bool readsRs2(Opcode op);
bool readsRdAsSource(Opcode op);

/** True if the opcode writes rd. */
bool writesRd(Opcode op);

/** True if the immediate is sign-extended (vs zero-extended). */
bool immIsSigned(Opcode op);

/** True for memory loads (ld/ldi) / stores (st/sti). */
bool isLoad(Opcode op);
bool isStore(Opcode op);

/** True for the conditional branches (beqz/bnez/bltz/bgez). */
bool isCondBranch(Opcode op);

/** True if @p imm is representable in the opcode's 16-bit field. */
bool immFits(Opcode op, int32_t imm);

/**
 * Register numbers a decoded instruction reads, r0 excluded and
 * duplicates removed.  Includes rd when the opcode reads it as a
 * source (stores).  Does NOT include the input registers implicitly
 * consumed by a folded REPLY/FORWARD command; callers modelling the
 * NI contract handle those from Instruction::ni directly.
 */
std::vector<unsigned> regsRead(const Instruction &inst);

/** Register the instruction writes, if any (r0 sinks return nullopt). */
std::optional<unsigned> regWritten(const Instruction &inst);

/** Encode a decoded instruction into a 32-bit word.  Panics if the
 *  instruction cannot be represented (e.g. immediate out of range, or
 *  NI commands on a non-triadic opcode). */
Word encode(const Instruction &inst);

/** Decode a 32-bit word.  Unknown opcodes panic. */
Instruction decode(Word w);

/** Mnemonic for an opcode. */
std::string opcodeName(Opcode op);

/** Render an instruction as assembly text (for tracing/tests). */
std::string disassemble(const Instruction &inst);

/** Canonical register name (rN, or the NI alias where one exists). */
std::string regName(unsigned reg);

/** Parse a register name ("r5", "i0", "o3", "status", ...). */
std::optional<unsigned> parseRegName(const std::string &name);

} // namespace isa
} // namespace tcpni

#endif // TCPNI_ISA_ISA_HH
