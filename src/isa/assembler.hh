/**
 * @file
 * A two-pass assembler for the tcpni ISA.
 *
 * The paper's handler kernels are hand-written assembly; we keep them
 * that way.  Kernels are C++ string literals assembled at run time into
 * Program images which the CPU model executes.
 *
 * Supported syntax:
 *
 *   ; comment                         (also "//")
 *   .org  EXPR                        set the load address
 *   .equ  NAME, EXPR                  define a symbol
 *   .word EXPR                        emit a literal data word
 *   .space N                          emit N zero words
 *   .align N                          pad to an N-byte boundary
 *   .region NAME                      tag following words with a cost
 *                                     region (used for per-phase cycle
 *                                     attribution in Table 1)
 *   label:
 *   add   rd, rs1, rs2 [!send=T|!reply=T|!forward=T] [!next]
 *   ldi   rd, rs1, EXPR
 *   beqz  rs1, TARGET                 (TARGET is an address expression)
 *   ...
 *
 * Pseudo-instructions: nop, mov, li (lui+ori, always 2 words), lis
 * (addi from r0), br, call (br with link r31), ret (jmp r31),
 * jmpl, send/reply/forward/next (nop carrying the NI command), halt.
 *
 * Registers: r0..r31 plus the NI aliases o0..o4 (r16..r20), i0..i4
 * (r21..r25), status, control, msgip, nextmsgip, ipbase (r26..r30).
 *
 * Expressions support + - * / % | & ^ << >> ~ and parentheses, decimal
 * / 0x / 0b literals, symbols, `.` (current address), and hi16()/lo16().
 *
 * Errors carry the source line number.  assembleAll() collects every
 * error in one pass (each bad statement is skipped or padded so later
 * diagnostics keep accurate addresses); assemble() wraps it and
 * fatal()s with the full list, so a kernel with three typos reports
 * all three at once.
 */

#ifndef TCPNI_ISA_ASSEMBLER_HH
#define TCPNI_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "sim/types.hh"

namespace tcpni
{
namespace isa
{

/** What a program word was emitted as (for static analysis). */
enum class WordKind : uint8_t
{
    code,       //!< an encoded instruction
    data,       //!< .word literal
    pad,        //!< .space / .align filler
};

/** An assembled program image. */
struct Program
{
    Addr base = 0;                      //!< load address of words[0]
    std::vector<Word> words;            //!< instruction/data words
    std::map<std::string, uint64_t> symbols;    //!< labels and .equ
    std::vector<uint16_t> regionOf;     //!< per-word region id
    std::vector<std::string> regionNames;   //!< region id -> name
    std::vector<unsigned> lineOf;       //!< per-word source line
    std::vector<WordKind> kindOf;       //!< per-word emission kind

    /** Address of a label; fatal() if undefined. */
    Addr addrOf(const std::string &label) const;

    /** Region id for a name; fatal() if unknown. */
    uint16_t regionId(const std::string &name) const;

    /** Size in bytes. */
    Addr sizeBytes() const { return static_cast<Addr>(words.size() * 4); }

    /** True if @p addr falls inside the image. */
    bool
    contains(Addr addr) const
    {
        return addr >= base && addr < base + sizeBytes();
    }

    /** Word index of @p addr; the address must be inside the image. */
    size_t
    indexOf(Addr addr) const
    {
        return static_cast<size_t>((addr - base) / 4);
    }
};

/** One assembly error, tied to its source line. */
struct AsmDiag
{
    unsigned line = 0;
    std::string message;
};

/** Program plus every error found while assembling it. */
struct AsmResult
{
    Program program;
    std::vector<AsmDiag> errors;

    bool ok() const { return errors.empty(); }
};

/**
 * Assemble @p source, collecting all errors instead of stopping at
 * the first.  The returned program is only meaningful when ok().
 *
 * @param source     assembly text
 * @param predefined extra symbols visible to the program (e.g. NI
 *                   command-address constants)
 */
AsmResult assembleAll(const std::string &source,
                      const std::map<std::string, uint64_t> &predefined =
                          {});

/**
 * Assemble @p source into a Program; fatal() listing every error if
 * the source does not assemble cleanly.
 */
Program assemble(const std::string &source,
                 const std::map<std::string, uint64_t> &predefined = {});

} // namespace isa
} // namespace tcpni

#endif // TCPNI_ISA_ASSEMBLER_HH
