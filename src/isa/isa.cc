#include "isa/isa.hh"

#include <array>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace tcpni
{
namespace isa
{

bool
isTriadic(Opcode op)
{
    switch (op) {
      case Opcode::add:
      case Opcode::sub:
      case Opcode::and_:
      case Opcode::or_:
      case Opcode::xor_:
      case Opcode::sll:
      case Opcode::srl:
      case Opcode::sra:
      case Opcode::slt:
      case Opcode::sltu:
      case Opcode::mul:
      case Opcode::ld:
      case Opcode::st:
      case Opcode::jmp:
        return true;
      default:
        return false;
    }
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::beqz:
      case Opcode::bnez:
      case Opcode::bltz:
      case Opcode::bgez:
      case Opcode::br:
      case Opcode::jmp:
        return true;
      default:
        return false;
    }
}

bool
readsRs1(Opcode op)
{
    switch (op) {
      case Opcode::lui:
      case Opcode::br:
      case Opcode::halt:
        return false;
      default:
        return true;
    }
}

bool
readsRs2(Opcode op)
{
    switch (op) {
      case Opcode::add:
      case Opcode::sub:
      case Opcode::and_:
      case Opcode::or_:
      case Opcode::xor_:
      case Opcode::sll:
      case Opcode::srl:
      case Opcode::sra:
      case Opcode::slt:
      case Opcode::sltu:
      case Opcode::mul:
      case Opcode::ld:
      case Opcode::st:
        return true;
      default:
        return false;
    }
}

bool
readsRdAsSource(Opcode op)
{
    return op == Opcode::st || op == Opcode::sti;
}

bool
writesRd(Opcode op)
{
    switch (op) {
      case Opcode::st:
      case Opcode::sti:
      case Opcode::beqz:
      case Opcode::bnez:
      case Opcode::bltz:
      case Opcode::bgez:
      case Opcode::halt:
        return false;
      case Opcode::br:
      case Opcode::jmp:
        return true;    // link register (r0 when unused)
      default:
        return true;
    }
}

bool
isLoad(Opcode op)
{
    return op == Opcode::ld || op == Opcode::ldi;
}

bool
isStore(Opcode op)
{
    return op == Opcode::st || op == Opcode::sti;
}

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::beqz:
      case Opcode::bnez:
      case Opcode::bltz:
      case Opcode::bgez:
        return true;
      default:
        return false;
    }
}

bool
immFits(Opcode op, int32_t imm)
{
    if (isTriadic(op))
        return true;    // no immediate field
    if (immIsSigned(op))
        return fitsSigned(imm, 16);
    return fitsUnsigned(static_cast<uint32_t>(imm), 16);
}

std::vector<unsigned>
regsRead(const Instruction &inst)
{
    std::vector<unsigned> regs;
    auto add = [&](unsigned r) {
        if (r == 0)
            return;
        for (unsigned have : regs) {
            if (have == r)
                return;
        }
        regs.push_back(r);
    };
    if (readsRs1(inst.op))
        add(inst.rs1);
    if (readsRs2(inst.op))
        add(inst.rs2);
    if (readsRdAsSource(inst.op))
        add(inst.rd);
    return regs;
}

std::optional<unsigned>
regWritten(const Instruction &inst)
{
    if (!writesRd(inst.op) || inst.rd == 0)
        return std::nullopt;
    return inst.rd;
}

bool
immIsSigned(Opcode op)
{
    switch (op) {
      case Opcode::andi:
      case Opcode::ori:
      case Opcode::xori:
      case Opcode::lui:
      case Opcode::slli:
      case Opcode::srli:
        return false;
      default:
        return true;
    }
}

Word
encode(const Instruction &inst)
{
    Word w = 0;
    w = insertBits(w, 31, 26, static_cast<uint64_t>(inst.op));
    w = insertBits(w, 25, 21, inst.rd);
    w = insertBits(w, 20, 16, inst.rs1);

    if (isTriadic(inst.op)) {
        w = insertBits(w, 15, 11, inst.rs2);
        w = insertBits(w, 10, 10, inst.ni.next ? 1 : 0);
        w = insertBits(w, 9, 8, static_cast<uint64_t>(inst.ni.mode));
        w = insertBits(w, 7, 4, inst.ni.type);
    } else {
        if (inst.ni.any())
            panic("NI commands require a triadic opcode (got %s)",
                  opcodeName(inst.op).c_str());
        if (immIsSigned(inst.op)) {
            if (!fitsSigned(inst.imm, 16))
                panic("immediate %d out of signed 16-bit range in %s",
                      inst.imm, opcodeName(inst.op).c_str());
        } else {
            if (!fitsUnsigned(static_cast<uint32_t>(inst.imm), 16))
                panic("immediate %d out of unsigned 16-bit range in %s",
                      inst.imm, opcodeName(inst.op).c_str());
        }
        w = insertBits(w, 15, 0, static_cast<uint32_t>(inst.imm));
    }
    return w;
}

Instruction
decode(Word w)
{
    Instruction inst;
    auto op_bits = bits(w, 31, 26);
    inst.op = static_cast<Opcode>(op_bits);

    // Validate the opcode.
    switch (inst.op) {
      case Opcode::add: case Opcode::sub: case Opcode::and_:
      case Opcode::or_: case Opcode::xor_: case Opcode::sll:
      case Opcode::srl: case Opcode::sra: case Opcode::slt:
      case Opcode::sltu: case Opcode::mul: case Opcode::ld:
      case Opcode::st: case Opcode::jmp: case Opcode::addi:
      case Opcode::andi: case Opcode::ori: case Opcode::xori:
      case Opcode::lui: case Opcode::ldi: case Opcode::sti:
      case Opcode::slli: case Opcode::srli: case Opcode::beqz:
      case Opcode::bnez: case Opcode::bltz: case Opcode::bgez:
      case Opcode::br: case Opcode::halt:
        break;
      default:
        panic("decode of unknown opcode %u (word 0x%08x)",
              static_cast<unsigned>(op_bits), w);
    }

    inst.rd = static_cast<uint8_t>(bits(w, 25, 21));
    inst.rs1 = static_cast<uint8_t>(bits(w, 20, 16));

    if (isTriadic(inst.op)) {
        inst.rs2 = static_cast<uint8_t>(bits(w, 15, 11));
        inst.ni.next = bits(w, 10) != 0;
        inst.ni.mode = static_cast<SendMode>(bits(w, 9, 8));
        inst.ni.type = static_cast<uint8_t>(bits(w, 7, 4));
    } else {
        uint32_t raw = static_cast<uint32_t>(bits(w, 15, 0));
        inst.imm = immIsSigned(inst.op)
            ? static_cast<int32_t>(sext(raw, 16))
            : static_cast<int32_t>(raw);
    }
    return inst;
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::add: return "add";
      case Opcode::sub: return "sub";
      case Opcode::and_: return "and";
      case Opcode::or_: return "or";
      case Opcode::xor_: return "xor";
      case Opcode::sll: return "sll";
      case Opcode::srl: return "srl";
      case Opcode::sra: return "sra";
      case Opcode::slt: return "slt";
      case Opcode::sltu: return "sltu";
      case Opcode::mul: return "mul";
      case Opcode::ld: return "ld";
      case Opcode::st: return "st";
      case Opcode::jmp: return "jmp";
      case Opcode::addi: return "addi";
      case Opcode::andi: return "andi";
      case Opcode::ori: return "ori";
      case Opcode::xori: return "xori";
      case Opcode::lui: return "lui";
      case Opcode::ldi: return "ldi";
      case Opcode::sti: return "sti";
      case Opcode::slli: return "slli";
      case Opcode::srli: return "srli";
      case Opcode::beqz: return "beqz";
      case Opcode::bnez: return "bnez";
      case Opcode::bltz: return "bltz";
      case Opcode::bgez: return "bgez";
      case Opcode::br: return "br";
      case Opcode::halt: return "halt";
    }
    return "???";
}

std::string
regName(unsigned reg)
{
    static const char *aliases[] = {
        "o0", "o1", "o2", "o3", "o4",
        "i0", "i1", "i2", "i3", "i4",
        "status", "control", "msgip", "nextmsgip", "ipbase",
    };
    if (reg >= niRegBase && reg < niRegBase + 15)
        return aliases[reg - niRegBase];
    return "r" + std::to_string(reg);
}

std::optional<unsigned>
parseRegName(const std::string &name)
{
    static const std::unordered_map<std::string, unsigned> aliases = {
        {"o0", 16}, {"o1", 17}, {"o2", 18}, {"o3", 19}, {"o4", 20},
        {"i0", 21}, {"i1", 22}, {"i2", 23}, {"i3", 24}, {"i4", 25},
        {"status", 26}, {"control", 27}, {"msgip", 28},
        {"nextmsgip", 29}, {"ipbase", 30},
    };
    auto it = aliases.find(name);
    if (it != aliases.end())
        return it->second;
    if (name.size() >= 2 && name[0] == 'r') {
        unsigned v = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (name[i] < '0' || name[i] > '9')
                return std::nullopt;
            v = v * 10 + static_cast<unsigned>(name[i] - '0');
        }
        if (v < numRegs)
            return v;
    }
    return std::nullopt;
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);

    auto r = [](unsigned reg) { return regName(reg); };

    switch (inst.op) {
      case Opcode::add: case Opcode::sub: case Opcode::and_:
      case Opcode::or_: case Opcode::xor_: case Opcode::sll:
      case Opcode::srl: case Opcode::sra: case Opcode::slt:
      case Opcode::sltu: case Opcode::mul:
      case Opcode::ld: case Opcode::st:
        os << ' ' << r(inst.rd) << ", " << r(inst.rs1) << ", "
           << r(inst.rs2);
        break;
      case Opcode::jmp:
        os << ' ' << r(inst.rs1);
        if (inst.rd != 0)
            os << " (link " << r(inst.rd) << ")";
        break;
      case Opcode::addi: case Opcode::andi: case Opcode::ori:
      case Opcode::xori: case Opcode::ldi: case Opcode::sti:
      case Opcode::slli: case Opcode::srli:
        os << ' ' << r(inst.rd) << ", " << r(inst.rs1) << ", "
           << inst.imm;
        break;
      case Opcode::lui:
        os << ' ' << r(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::beqz: case Opcode::bnez: case Opcode::bltz:
      case Opcode::bgez:
        os << ' ' << r(inst.rs1) << ", " << inst.imm;
        break;
      case Opcode::br:
        os << ' ' << inst.imm;
        if (inst.rd != 0)
            os << " (link " << r(inst.rd) << ")";
        break;
      case Opcode::halt:
        break;
    }

    if (isTriadic(inst.op) && inst.ni.any()) {
        switch (inst.ni.mode) {
          case SendMode::send:
            os << " !send=" << static_cast<int>(inst.ni.type);
            break;
          case SendMode::reply:
            os << " !reply=" << static_cast<int>(inst.ni.type);
            break;
          case SendMode::forward:
            os << " !forward=" << static_cast<int>(inst.ni.type);
            break;
          case SendMode::none:
            break;
        }
        if (inst.ni.next)
            os << " !next";
    }
    return os.str();
}

} // namespace isa
} // namespace tcpni
