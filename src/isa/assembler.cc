#include "isa/assembler.hh"

#include <cctype>
#include <sstream>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace tcpni
{
namespace isa
{

Addr
Program::addrOf(const std::string &label) const
{
    auto it = symbols.find(label);
    if (it == symbols.end())
        fatal("undefined label '%s'", label.c_str());
    return static_cast<Addr>(it->second);
}

uint16_t
Program::regionId(const std::string &name) const
{
    for (size_t i = 0; i < regionNames.size(); ++i) {
        if (regionNames[i] == name)
            return static_cast<uint16_t>(i);
    }
    fatal("unknown region '%s'", name.c_str());
    return 0;
}

namespace
{

/**
 * Internal error raised while assembling one statement; caught by the
 * pass loops, recorded as an AsmDiag, and recovery continues with the
 * next statement.
 */
struct StmtError
{
    unsigned line;
    std::string message;
};

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = logging::vformat(fmt, ap);
    va_end(ap);
    return s;
}

/** Recursive-descent expression evaluator over the symbol table. */
class ExprParser
{
  public:
    ExprParser(const std::string &text,
               const std::map<std::string, uint64_t> &symbols,
               uint64_t cur_addr, unsigned line, bool allow_undefined)
        : text_(text), symbols_(symbols), curAddr_(cur_addr), line_(line),
          allowUndefined_(allow_undefined)
    {}

    /** Evaluate the whole string as one expression. */
    uint64_t evaluate()
    {
        uint64_t v = parseOr();
        skipWs();
        if (pos_ != text_.size())
            err("trailing characters in expression");
        return v;
    }

    bool sawUndefined() const { return sawUndefined_; }

  private:
    [[noreturn]] void err(const std::string &what)
    {
        throw StmtError{line_, what + " in expression '" + text_ + "'"};
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool eat(const char *tok)
    {
        skipWs();
        size_t n = std::string(tok).size();
        if (text_.compare(pos_, n, tok) == 0) {
            // Don't let "<" match "<<" etc.
            pos_ += n;
            return true;
        }
        return false;
    }

    char peek()
    {
        skipWs();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    uint64_t parseOr()
    {
        uint64_t v = parseXor();
        for (;;) {
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '|') {
                ++pos_;
                v |= parseXor();
            } else {
                return v;
            }
        }
    }

    uint64_t parseXor()
    {
        uint64_t v = parseAnd();
        for (;;) {
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '^') {
                ++pos_;
                v ^= parseAnd();
            } else {
                return v;
            }
        }
    }

    uint64_t parseAnd()
    {
        uint64_t v = parseShift();
        for (;;) {
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '&') {
                ++pos_;
                v &= parseShift();
            } else {
                return v;
            }
        }
    }

    uint64_t parseShift()
    {
        uint64_t v = parseAdd();
        for (;;) {
            if (eat("<<")) {
                v <<= parseAdd();
            } else if (eat(">>")) {
                v >>= parseAdd();
            } else {
                return v;
            }
        }
    }

    uint64_t parseAdd()
    {
        uint64_t v = parseMul();
        for (;;) {
            skipWs();
            char c = pos_ < text_.size() ? text_[pos_] : '\0';
            if (c == '+') {
                ++pos_;
                v += parseMul();
            } else if (c == '-') {
                ++pos_;
                v -= parseMul();
            } else {
                return v;
            }
        }
    }

    uint64_t parseMul()
    {
        uint64_t v = parseUnary();
        for (;;) {
            skipWs();
            char c = pos_ < text_.size() ? text_[pos_] : '\0';
            if (c == '*') {
                ++pos_;
                v *= parseUnary();
            } else if (c == '/') {
                ++pos_;
                uint64_t d = parseUnary();
                if (d == 0)
                    err("division by zero");
                v /= d;
            } else if (c == '%') {
                ++pos_;
                uint64_t d = parseUnary();
                if (d == 0)
                    err("modulo by zero");
                v %= d;
            } else {
                return v;
            }
        }
    }

    uint64_t parseUnary()
    {
        skipWs();
        char c = peek();
        if (c == '-') {
            ++pos_;
            return ~parseUnary() + 1;
        }
        if (c == '~') {
            ++pos_;
            return ~parseUnary();
        }
        if (c == '+') {
            ++pos_;
            return parseUnary();
        }
        return parsePrimary();
    }

    uint64_t parsePrimary()
    {
        skipWs();
        if (pos_ >= text_.size())
            err("unexpected end");
        char c = text_[pos_];

        if (c == '(') {
            ++pos_;
            uint64_t v = parseOr();
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ')')
                err("missing ')'");
            ++pos_;
            return v;
        }

        if (c == '.') {
            // '.' is the current address unless it starts an identifier.
            ++pos_;
            return curAddr_;
        }

        if (std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber();

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return parseSymbolOrFunc();

        err("unexpected character");
    }

    uint64_t parseNumber()
    {
        size_t start = pos_;
        int base = 10;
        if (text_[pos_] == '0' && pos_ + 1 < text_.size()) {
            char n = text_[pos_ + 1];
            if (n == 'x' || n == 'X') {
                base = 16;
                pos_ += 2;
                start = pos_;
            } else if (n == 'b' || n == 'B') {
                base = 2;
                pos_ += 2;
                start = pos_;
            }
        }
        uint64_t v = 0;
        bool any = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                digit = c - 'A' + 10;
            else if (c == '_') {
                ++pos_;
                continue;
            } else {
                break;
            }
            if (digit >= base)
                break;
            v = v * static_cast<uint64_t>(base) +
                static_cast<uint64_t>(digit);
            any = true;
            ++pos_;
        }
        if (!any && start == pos_ && base == 10)
            err("bad number");
        return v;
    }

    uint64_t parseSymbolOrFunc()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.'))
            ++pos_;
        std::string name = text_.substr(start, pos_ - start);

        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '(' &&
            (name == "hi16" || name == "lo16")) {
            ++pos_;
            uint64_t v = parseOr();
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ')')
                err("missing ')' after " + name);
            ++pos_;
            return name == "hi16" ? (v >> 16) & 0xffff : v & 0xffff;
        }

        auto it = symbols_.find(name);
        if (it == symbols_.end()) {
            if (allowUndefined_) {
                sawUndefined_ = true;
                return 0;
            }
            err("undefined symbol '" + name + "'");
        }
        return it->second;
    }

    const std::string &text_;
    const std::map<std::string, uint64_t> &symbols_;
    uint64_t curAddr_;
    unsigned line_;
    bool allowUndefined_;
    bool sawUndefined_ = false;
    size_t pos_ = 0;
};

/** One parsed source statement. */
struct Stmt
{
    unsigned line = 0;
    std::string label;          //!< label defined on this line, if any
    std::string mnemonic;       //!< lowercased, empty if label-only
    std::vector<std::string> operands;  //!< comma-separated operand text
    std::vector<std::string> clauses;   //!< "!" clauses (without '!')
};

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Split on top-level commas (respecting parentheses). */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (char c : s) {
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    std::string last = trim(cur);
    if (!last.empty())
        out.push_back(last);
    return out;
}

std::vector<Stmt>
parseLines(const std::string &source)
{
    std::vector<Stmt> stmts;
    std::istringstream is(source);
    std::string raw;
    unsigned line_no = 0;
    while (std::getline(is, raw)) {
        ++line_no;
        // Strip comments.
        size_t p = raw.find(';');
        if (p != std::string::npos)
            raw.resize(p);
        p = raw.find("//");
        if (p != std::string::npos)
            raw.resize(p);

        std::string text = trim(raw);
        if (text.empty())
            continue;

        Stmt stmt;
        stmt.line = line_no;

        // Labels: "name:" possibly followed by an instruction.
        size_t colon = text.find(':');
        if (colon != std::string::npos &&
            text.find_first_of(" \t(") > colon) {
            stmt.label = trim(text.substr(0, colon));
            text = trim(text.substr(colon + 1));
        }

        if (!text.empty()) {
            // "!" clauses at the end.
            size_t bang = text.find('!');
            std::string body = bang == std::string::npos
                ? text : trim(text.substr(0, bang));
            std::string clause_text = bang == std::string::npos
                ? "" : text.substr(bang);
            while (!clause_text.empty()) {
                size_t next_bang = clause_text.find('!', 1);
                std::string one = next_bang == std::string::npos
                    ? clause_text : clause_text.substr(0, next_bang);
                stmt.clauses.push_back(toLower(trim(one.substr(1))));
                clause_text = next_bang == std::string::npos
                    ? "" : clause_text.substr(next_bang);
            }

            size_t sp = body.find_first_of(" \t");
            stmt.mnemonic = toLower(sp == std::string::npos
                                    ? body : body.substr(0, sp));
            if (sp != std::string::npos)
                stmt.operands = splitOperands(trim(body.substr(sp)));
        }
        stmts.push_back(std::move(stmt));
    }
    return stmts;
}

/** Number of words a statement will occupy (pass 1 sizing). */
size_t
stmtSize(const Stmt &stmt,
         const std::map<std::string, uint64_t> &symbols, uint64_t addr)
{
    const std::string &m = stmt.mnemonic;
    if (m.empty() || m == ".org" || m == ".equ" || m == ".region")
        return 0;
    if (m == ".word")
        return 1;
    if (m == ".space") {
        if (stmt.operands.empty())
            throw StmtError{stmt.line, ".space needs a count"};
        ExprParser ep(stmt.operands.at(0), symbols, addr, stmt.line, true);
        return static_cast<size_t>(ep.evaluate());
    }
    if (m == ".align") {
        if (stmt.operands.empty())
            throw StmtError{stmt.line, ".align needs an alignment"};
        ExprParser ep(stmt.operands.at(0), symbols, addr, stmt.line, true);
        uint64_t align = ep.evaluate();
        if (align == 0 || (align & 3))
            throw StmtError{stmt.line,
                            ".align must be a positive multiple of 4"};
        uint64_t next = (addr + align - 1) / align * align;
        return static_cast<size_t>((next - addr) / 4);
    }
    if (m == "li")
        return 2;
    return 1;
}

struct Emitter
{
    Program &prog;
    uint16_t curRegion = 0;
    unsigned line = 0;

    void word(Word w, WordKind kind = WordKind::code)
    {
        prog.words.push_back(w);
        prog.regionOf.push_back(curRegion);
        prog.lineOf.push_back(line);
        prog.kindOf.push_back(kind);
    }

    void
    inst(const Instruction &i)
    {
        if (!isTriadic(i.op) && !immFits(i.op, i.imm)) {
            throw StmtError{line, strformat(
                "immediate %d out of %s 16-bit range for '%s'", i.imm,
                immIsSigned(i.op) ? "signed" : "unsigned",
                opcodeName(i.op).c_str())};
        }
        word(encode(i));
    }
};

unsigned
regOperand(const Stmt &stmt, size_t idx)
{
    if (idx >= stmt.operands.size())
        throw StmtError{stmt.line, strformat(
            "missing register operand %zu for '%s'", idx,
            stmt.mnemonic.c_str())};
    auto reg = parseRegName(toLower(stmt.operands[idx]));
    if (!reg)
        throw StmtError{stmt.line, strformat(
            "bad register name '%s'", stmt.operands[idx].c_str())};
    return *reg;
}

uint64_t
exprOperand(const Stmt &stmt, size_t idx,
            const std::map<std::string, uint64_t> &symbols, uint64_t addr)
{
    if (idx >= stmt.operands.size())
        throw StmtError{stmt.line, strformat(
            "missing operand %zu for '%s'", idx, stmt.mnemonic.c_str())};
    ExprParser ep(stmt.operands[idx], symbols, addr, stmt.line, false);
    return ep.evaluate();
}

NiCommand
parseClauses(const Stmt &stmt)
{
    NiCommand ni;
    for (const std::string &clause : stmt.clauses) {
        if (clause == "next") {
            ni.next = true;
            continue;
        }
        size_t eq = clause.find('=');
        std::string key = trim(eq == std::string::npos
                               ? clause : clause.substr(0, eq));
        if (key != "send" && key != "reply" && key != "forward")
            throw StmtError{stmt.line, strformat(
                "unknown clause '!%s'", clause.c_str())};
        if (ni.mode != SendMode::none)
            throw StmtError{stmt.line, "multiple send clauses"};
        if (key == "send")
            ni.mode = SendMode::send;
        else if (key == "reply")
            ni.mode = SendMode::reply;
        else
            ni.mode = SendMode::forward;
        if (eq != std::string::npos) {
            std::string val = trim(clause.substr(eq + 1));
            uint64_t t = 0;
            for (char c : val) {
                if (!std::isdigit(static_cast<unsigned char>(c)))
                    throw StmtError{stmt.line, strformat(
                        "bad send type '%s'", val.c_str())};
                t = t * 10 + static_cast<uint64_t>(c - '0');
            }
            if (t > 15)
                throw StmtError{stmt.line, strformat(
                    "send type %llu exceeds 4 bits",
                    static_cast<unsigned long long>(t))};
            ni.type = static_cast<uint8_t>(t);
        }
    }
    return ni;
}

int32_t
branchOffset(uint64_t target, uint64_t pc, unsigned line)
{
    int64_t delta = static_cast<int64_t>(target) -
                    static_cast<int64_t>(pc + 4);
    if (delta & 3)
        throw StmtError{line, "branch target not word aligned"};
    int64_t off = delta / 4;
    if (!fitsSigned(off, 16))
        throw StmtError{line, "branch target out of range"};
    return static_cast<int32_t>(off);
}

/** Operand text at @p idx, or a recorded error when missing. */
const std::string &
operandText(const Stmt &stmt, size_t idx)
{
    if (idx >= stmt.operands.size())
        throw StmtError{stmt.line, strformat(
            "missing operand %zu for '%s'", idx, stmt.mnemonic.c_str())};
    return stmt.operands[idx];
}

void emitStmt(const Stmt &stmt, Emitter &em, Program &prog,
              uint64_t &addr);

} // namespace

AsmResult
assembleAll(const std::string &source,
            const std::map<std::string, uint64_t> &predefined)
{
    std::vector<Stmt> stmts = parseLines(source);

    AsmResult result;
    Program &prog = result.program;
    prog.symbols = predefined;
    prog.regionNames.push_back("");

    auto record = [&](const StmtError &e) {
        for (const AsmDiag &have : result.errors) {
            if (have.line == e.line && have.message == e.message)
                return;
        }
        result.errors.push_back({e.line, e.message});
    };

    // Statements whose size could not be determined in pass 1 occupy
    // zero words in both passes so later addresses stay meaningful.
    std::vector<bool> unsized(stmts.size(), false);

    // Pass 1: establish the base address, label addresses and .equ
    // symbols.  .equ expressions may reference earlier labels only.
    bool org_seen = false;
    uint64_t addr = 0;
    for (size_t si = 0; si < stmts.size(); ++si) {
        const Stmt &stmt = stmts[si];
        try {
            if (!stmt.label.empty()) {
                if (prog.symbols.count(stmt.label)) {
                    record({stmt.line, strformat(
                        "symbol '%s' redefined", stmt.label.c_str())});
                } else {
                    prog.symbols[stmt.label] = addr;
                }
            }
            if (stmt.mnemonic == ".org") {
                if (org_seen)
                    throw StmtError{stmt.line, "multiple .org directives"};
                ExprParser ep(operandText(stmt, 0), prog.symbols, addr,
                              stmt.line, false);
                prog.base = static_cast<Addr>(ep.evaluate());
                if (prog.base & 3)
                    throw StmtError{stmt.line,
                                    ".org address must be word aligned"};
                addr = prog.base;
                org_seen = true;
                // Re-bind any label that appeared on this same line.
                if (!stmt.label.empty())
                    prog.symbols[stmt.label] = addr;
                continue;
            }
            if (stmt.mnemonic == ".equ") {
                if (stmt.operands.size() != 2)
                    throw StmtError{stmt.line, ".equ needs NAME, EXPR"};
                std::string name = trim(stmt.operands[0]);
                ExprParser ep(stmt.operands[1], prog.symbols, addr,
                              stmt.line, true);
                uint64_t v = ep.evaluate();
                if (ep.sawUndefined())
                    throw StmtError{stmt.line, strformat(
                        ".equ '%s' references undefined symbol",
                        name.c_str())};
                if (prog.symbols.count(name))
                    throw StmtError{stmt.line, strformat(
                        "symbol '%s' redefined", name.c_str())};
                prog.symbols[name] = v;
                continue;
            }
            addr += 4 * stmtSize(stmt, prog.symbols, addr);
        } catch (const StmtError &e) {
            record(e);
            unsized[si] = true;
        }
    }

    if (!org_seen)
        prog.base = 0;

    // Pass 2: emit.  A statement that fails mid-way is padded with
    // zero words to the size pass 1 gave it, so every later label and
    // diagnostic still refers to the right address.
    Emitter em{prog};
    addr = prog.base;
    for (size_t si = 0; si < stmts.size(); ++si) {
        const Stmt &stmt = stmts[si];
        if (unsized[si])
            continue;
        em.line = stmt.line;
        const size_t start_words = prog.words.size();
        size_t expect = 0;
        try {
            expect = stmtSize(stmt, prog.symbols, addr);
        } catch (const StmtError &) {
            // Recorded in pass 1.
        }
        try {
            emitStmt(stmt, em, prog, addr);
        } catch (const StmtError &e) {
            record(e);
            while (prog.words.size() < start_words + expect)
                em.word(0, WordKind::pad);
            addr = prog.base + 4 * prog.words.size();
        }
    }

    return result;
}

Program
assemble(const std::string &source,
         const std::map<std::string, uint64_t> &predefined)
{
    AsmResult result = assembleAll(source, predefined);
    if (!result.ok()) {
        std::ostringstream os;
        for (const AsmDiag &e : result.errors)
            os << "\n  line " << e.line << ": " << e.message;
        fatal("assembly failed with %zu error%s:%s", result.errors.size(),
              result.errors.size() == 1 ? "" : "s", os.str().c_str());
    }
    return std::move(result.program);
}

namespace
{

/** Emit one non-directive pass-2 statement (may throw StmtError). */
void
emitStmt(const Stmt &stmt, Emitter &em, Program &prog, uint64_t &addr)
{
    const std::string &m = stmt.mnemonic;
    if (m.empty() || m == ".org" || m == ".equ")
        return;
    {

        auto expr = [&](size_t idx) {
            return exprOperand(stmt, idx, prog.symbols, addr);
        };
        auto reg = [&](size_t idx) {
            return static_cast<uint8_t>(regOperand(stmt, idx));
        };
        NiCommand ni = parseClauses(stmt);
        auto no_ni = [&]() {
            if (ni.any())
                throw StmtError{stmt.line, strformat(
                    "'!' clauses not allowed on '%s'", m.c_str())};
        };

        if (m == ".region") {
            no_ni();
            std::string name = trim(operandText(stmt, 0));
            uint16_t id = 0xffff;
            for (size_t i = 0; i < prog.regionNames.size(); ++i) {
                if (prog.regionNames[i] == name)
                    id = static_cast<uint16_t>(i);
            }
            if (id == 0xffff) {
                id = static_cast<uint16_t>(prog.regionNames.size());
                prog.regionNames.push_back(name);
            }
            em.curRegion = id;
            return;
        }
        if (m == ".word") {
            no_ni();
            em.word(static_cast<Word>(expr(0)), WordKind::data);
            addr += 4;
            return;
        }
        if (m == ".space") {
            no_ni();
            uint64_t n = expr(0);
            for (uint64_t i = 0; i < n; ++i)
                em.word(0, WordKind::pad);
            addr += 4 * n;
            return;
        }
        if (m == ".align") {
            no_ni();
            uint64_t align = expr(0);
            if (align == 0 || (align & 3))
                throw StmtError{stmt.line,
                                ".align must be a positive multiple of 4"};
            while (addr % align != 0) {
                em.word(0, WordKind::pad);
                addr += 4;
            }
            return;
        }

        Instruction inst;
        inst.ni = ni;

        auto triadic = [&](Opcode op) {
            inst.op = op;
            inst.rd = reg(0);
            inst.rs1 = reg(1);
            inst.rs2 = reg(2);
        };
        auto immform = [&](Opcode op) {
            no_ni();
            inst.op = op;
            inst.rd = reg(0);
            inst.rs1 = reg(1);
            inst.imm = static_cast<int32_t>(expr(2));
        };

        if (m == "add") triadic(Opcode::add);
        else if (m == "sub") triadic(Opcode::sub);
        else if (m == "and") triadic(Opcode::and_);
        else if (m == "or") triadic(Opcode::or_);
        else if (m == "xor") triadic(Opcode::xor_);
        else if (m == "sll") triadic(Opcode::sll);
        else if (m == "srl") triadic(Opcode::srl);
        else if (m == "sra") triadic(Opcode::sra);
        else if (m == "slt") triadic(Opcode::slt);
        else if (m == "sltu") triadic(Opcode::sltu);
        else if (m == "mul") triadic(Opcode::mul);
        else if (m == "ld") triadic(Opcode::ld);
        else if (m == "st") triadic(Opcode::st);
        else if (m == "addi") immform(Opcode::addi);
        else if (m == "andi") immform(Opcode::andi);
        else if (m == "ori") immform(Opcode::ori);
        else if (m == "xori") immform(Opcode::xori);
        else if (m == "ldi") immform(Opcode::ldi);
        else if (m == "sti") immform(Opcode::sti);
        else if (m == "slli") immform(Opcode::slli);
        else if (m == "srli") immform(Opcode::srli);
        else if (m == "lui") {
            no_ni();
            inst.op = Opcode::lui;
            inst.rd = reg(0);
            inst.imm = static_cast<int32_t>(expr(1) & 0xffff);
        } else if (m == "jmp") {
            inst.op = Opcode::jmp;
            inst.rd = 0;
            inst.rs1 = reg(0);
        } else if (m == "jmpl") {
            inst.op = Opcode::jmp;
            inst.rd = reg(0);
            inst.rs1 = reg(1);
        } else if (m == "ret") {
            inst.op = Opcode::jmp;
            inst.rd = 0;
            inst.rs1 = 31;
        } else if (m == "beqz" || m == "bnez" || m == "bltz" ||
                   m == "bgez") {
            no_ni();
            inst.op = m == "beqz" ? Opcode::beqz
                    : m == "bnez" ? Opcode::bnez
                    : m == "bltz" ? Opcode::bltz : Opcode::bgez;
            inst.rs1 = reg(0);
            inst.imm = branchOffset(expr(1), addr, stmt.line);
        } else if (m == "br") {
            no_ni();
            inst.op = Opcode::br;
            inst.rd = 0;
            inst.imm = branchOffset(expr(0), addr, stmt.line);
        } else if (m == "call") {
            no_ni();
            inst.op = Opcode::br;
            inst.rd = 31;
            inst.imm = branchOffset(expr(0), addr, stmt.line);
        } else if (m == "nop") {
            inst.op = Opcode::add;
        } else if (m == "mov") {
            inst.op = Opcode::add;
            inst.rd = reg(0);
            inst.rs1 = reg(1);
        } else if (m == "send" || m == "reply" || m == "forward") {
            // Standalone NI command: a nop carrying the command bits.
            if (inst.ni.mode != SendMode::none)
                throw StmtError{stmt.line,
                                "send clause on a send pseudo-op"};
            inst.op = Opcode::add;
            inst.ni.mode = m == "send" ? SendMode::send
                         : m == "reply" ? SendMode::reply
                         : SendMode::forward;
            if (!stmt.operands.empty()) {
                uint64_t t = expr(0);
                if (t > 15)
                    throw StmtError{stmt.line, "send type out of range"};
                inst.ni.type = static_cast<uint8_t>(t);
            }
        } else if (m == "next") {
            inst.op = Opcode::add;
            inst.ni.next = true;
        } else if (m == "lis") {
            no_ni();
            inst.op = Opcode::addi;
            inst.rd = reg(0);
            inst.imm = static_cast<int32_t>(expr(1));
        } else if (m == "li") {
            no_ni();
            uint8_t rd = reg(0);
            uint32_t v = static_cast<uint32_t>(expr(1));
            Instruction hi{Opcode::lui, rd, 0, 0,
                           static_cast<int32_t>((v >> 16) & 0xffff), {}};
            Instruction lo{Opcode::ori, rd, rd, 0,
                           static_cast<int32_t>(v & 0xffff), {}};
            em.inst(hi);
            em.inst(lo);
            addr += 8;
            return;
        } else if (m == "halt") {
            no_ni();
            inst.op = Opcode::halt;
        } else {
            throw StmtError{stmt.line, strformat(
                "unknown mnemonic '%s'", m.c_str())};
        }

        em.inst(inst);
        addr += 4;
    }
}

} // namespace

} // namespace isa
} // namespace tcpni
