#include "apps/matmul.hh"

#include <memory>
#include <vector>

#include "common/logging.hh"

namespace tcpni
{
namespace apps
{

using tam::CodeBlock;
using tam::Frame;
using tam::Machine;
using tam::Value;

namespace
{

/** Deterministic input matrices (exact in doubles). */
double
aVal(unsigned i, unsigned j)
{
    return static_cast<double>((i * 3 + j * 7) % 11) - 5.0;
}

double
bVal(unsigned i, unsigned j)
{
    return static_cast<double>((i * 5 + j * 2) % 13) - 6.0;
}

} // namespace

MatMulResult
runMatMul(unsigned n, unsigned block, tam::MachineConfig cfg)
{
    if (n == 0 || block == 0 || n % block != 0)
        fatal("matmul: n (%u) must be a positive multiple of the "
              "block size (%u)", n, block);

    Machine m(cfg);
    const unsigned nb = n / block;           // blocks per dimension
    const unsigned bb = block * block;       // elements per block

    tam::ArrayRef array_a = m.heapAlloc(n * n);
    tam::ArrayRef array_b = m.heapAlloc(n * n);
    tam::ArrayRef array_c = m.heapAlloc(n * n);

    // Block frame layout.
    const unsigned slotBi = 0, slotBj = 1, slotKb = 2, slotSync = 3;
    const unsigned slotAcc = 4;              // bb accumulators
    const unsigned slotA = slotAcc + bb;     // bb fetched A values
    const unsigned slotB = slotA + bb;       // bb fetched B values

    auto main_cb = std::make_unique<CodeBlock>();
    auto block_cb = std::make_unique<CodeBlock>();
    uint32_t main_frame_id = 0;

    // ---- the per-output-block code block ----
    block_cb->name = "mm_block";
    block_cb->numLocals = slotB + bb;

    // Inlet 0: arguments (bi, bj).
    block_cb->inlets.push_back(
        [=](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.move(2);
            mm.frameSet(f, slotBi, vals.at(0));
            mm.frameSet(f, slotBj, vals.at(1));
            mm.frameSet(f, slotKb, 0);
            mm.fork(f, 0);
        });

    // Inlets 1..2*bb: one landing site per fetched element.
    for (unsigned e = 0; e < 2 * bb; ++e) {
        unsigned slot = (e < bb ? slotA : slotB) + (e % bb);
        block_cb->inlets.push_back(
            [=](Machine &mm, Frame &f, const std::vector<Value> &vals) {
                mm.move(1);
                mm.frameSet(f, slot, vals.at(0));
                mm.syncDec(f, slotSync, 1);
            });
    }

    // Thread 0: request the two input blocks for this k-step.
    block_cb->threads.push_back([=](Machine &mm, Frame &f) {
        unsigned bi = static_cast<unsigned>(mm.frameGet(f, slotBi));
        unsigned bj = static_cast<unsigned>(mm.frameGet(f, slotBj));
        unsigned kb = static_cast<unsigned>(mm.frameGet(f, slotKb));
        mm.frameSet(f, slotSync, 2.0 * bb);
        for (unsigned i = 0; i < block; ++i) {
            for (unsigned k = 0; k < block; ++k) {
                unsigned e = i * block + k;
                mm.iop(2);    // row*n + col address arithmetic
                mm.ifetch(array_a,
                          (bi * block + i) * n + (kb * block + k),
                          mm.cont(f, 1 + e));
                mm.iop(2);
                // B[kb*block+k][bj*block+i] lands in slot k*block+i.
                mm.ifetch(array_b,
                          (kb * block + k) * n + (bj * block + i),
                          mm.cont(f, 1 + bb + (k * block + i)));
            }
        }
    });

    // Thread 1: multiply-accumulate, then advance k or finish.
    block_cb->threads.push_back([=](Machine &mm, Frame &f) {
        for (unsigned i = 0; i < block; ++i) {
            for (unsigned j = 0; j < block; ++j) {
                for (unsigned k = 0; k < block; ++k) {
                    mm.iop(2);    // index arithmetic of the inner loop
                    Value a = mm.frameGet(f, slotA + i * block + k);
                    Value b = mm.frameGet(f, slotB + k * block + j);
                    Value acc = mm.frameGet(f, slotAcc + i * block + j);
                    mm.fop(2);    // multiply + add
                    mm.frameSet(f, slotAcc + i * block + j,
                                acc + a * b);
                }
            }
        }
        mm.iop(2);    // kb increment + compare
        unsigned kb = static_cast<unsigned>(mm.frameGet(f, slotKb)) + 1;
        mm.frameSet(f, slotKb, kb);
        mm.fork(f, kb < nb ? 0 : 2);
    });

    // Thread 2: istore the finished block and report completion.
    CodeBlock *main_ptr = main_cb.get();
    (void)main_ptr;
    block_cb->threads.push_back([=, &main_frame_id](Machine &mm,
                                                    Frame &f) {
        unsigned bi = static_cast<unsigned>(mm.frameGet(f, slotBi));
        unsigned bj = static_cast<unsigned>(mm.frameGet(f, slotBj));
        for (unsigned i = 0; i < block; ++i) {
            for (unsigned j = 0; j < block; ++j) {
                mm.iop(2);
                Value acc = mm.frameGet(f, slotAcc + i * block + j);
                mm.istore(array_c,
                          (bi * block + i) * n + (bj * block + j), acc);
            }
        }
        mm.send(mm.cont(mm.frame(main_frame_id), 0), {});
        mm.ffree(f);
    });

    // ---- the main code block ----
    main_cb->name = "mm_main";
    main_cb->numLocals = 1;      // [0] = blocks outstanding

    // Inlet 0: a block finished.
    main_cb->inlets.push_back(
        [](Machine &mm, Frame &f, const std::vector<Value> &) {
            mm.syncDec(f, 0, 1);
        });

    // Thread 0: initialize all but the last block of rows of A/B,
    // then spawn every block, leaving the tail initialization to run
    // *after* the consumers have started (LIFO order), so fetches see
    // a natural, mostly-FULL mix with some EMPTY and DEFERRED
    // elements -- the kind of ratio Mint reported for the paper.
    const unsigned init_rows = n - block;
    CodeBlock *block_ptr = block_cb.get();
    main_cb->threads.push_back([=](Machine &mm, Frame &f) {
        mm.frameSet(f, 0, static_cast<Value>(nb) * nb);
        for (unsigned i = 0; i < init_rows; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                mm.iop(1);
                mm.istore(array_a, i * n + j, aVal(i, j));
                mm.iop(1);
                mm.istore(array_b, i * n + j, bVal(i, j));
            }
        }
        mm.fork(f, 2);    // second-half init runs last (LIFO)
        for (unsigned bi = 0; bi < nb; ++bi) {
            for (unsigned bj = 0; bj < nb; ++bj) {
                Frame &bf = mm.falloc(block_ptr);
                mm.send(mm.cont(bf, 0),
                        {static_cast<Value>(bi),
                         static_cast<Value>(bj)});
            }
        }
    });

    // Thread 1: all blocks done.
    main_cb->threads.push_back([](Machine &, Frame &) {});

    // Thread 2: initialize the remaining rows of A/B.
    main_cb->threads.push_back([=](Machine &mm, Frame &f) {
        (void)f;
        for (unsigned i = init_rows; i < n; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                mm.iop(1);
                mm.istore(array_a, i * n + j, aVal(i, j));
                mm.iop(1);
                mm.istore(array_b, i * n + j, bVal(i, j));
            }
        }
    });

    Frame &main_frame = m.falloc(main_cb.get());
    main_frame_id = main_frame.id();
    m.fork(main_frame, 0);
    m.run();

    // Verification against a straightforward reference product.
    bool ok = true;
    for (unsigned i = 0; i < n && ok; ++i) {
        for (unsigned j = 0; j < n && ok; ++j) {
            double ref = 0;
            for (unsigned k = 0; k < n; ++k)
                ref += aVal(i, k) * bVal(k, j);
            if (m.arrayState(array_c, i * n + j) != Presence::full ||
                m.arrayPeek(array_c, i * n + j) != ref) {
                ok = false;
            }
        }
    }

    MatMulResult result;
    result.stats = m.stats();
    result.verified = ok;
    result.n = n;
    result.flopsPerMessage =
        static_cast<double>(result.stats.flops()) /
        static_cast<double>(result.stats.totalMessages());
    return result;
}

} // namespace apps
} // namespace tcpni
