#include "apps/gamteb.hh"

#include <memory>
#include <vector>

#include "common/logging.hh"

namespace tcpni
{
namespace apps
{

using tam::CodeBlock;
using tam::Frame;
using tam::Machine;
using tam::Value;

namespace
{

/** Energy groups (coarse multigroup approximation). */
constexpr unsigned numGroups = 30;

/** Pair production occurs only above this energy (low group index). */
constexpr unsigned pairThreshold = 5;

/** Energy group of pair-production secondaries (0.511 MeV photons). */
constexpr unsigned pairGroup = 12;

/** Scaled (x1000) absorption probability per group: absorption grows
 *  as the photon loses energy. */
unsigned
absorbMil(unsigned group)
{
    return 120 + group * 14;
}

/** Scaled (x1000) pair-production probability per group. */
unsigned
pairMil(unsigned group)
{
    return group < pairThreshold ? 260 - group * 30 : 0;
}

/** Geometric escape probability per flight (x1000). */
constexpr unsigned escapeMil = 130;

} // namespace

GamtebResult
runGamteb(unsigned particles, tam::MachineConfig cfg)
{
    if (particles == 0)
        fatal("gamteb: need at least one source particle");

    Machine m(cfg);

    // Cross-section table: two I-structure entries per group.
    tam::ArrayRef xs = m.heapAlloc(2 * numGroups);

    // Tally cells, updated with Read + Write message pairs.
    tam::CellRef cell_escaped = m.cellAlloc(0);
    tam::CellRef cell_absorbed = m.cellAlloc(0);
    tam::CellRef cell_pairs = m.cellAlloc(0);
    tam::CellRef cell_collisions = m.cellAlloc(0);
    tam::CellRef cell_total = m.cellAlloc(0);

    // Photon frame layout.
    const unsigned slotGroup = 0, slotWeight = 1, slotSync = 2;
    const unsigned slotAbs = 3, slotPair = 4, slotCollisions = 5;
    const unsigned slotTallyTmp = 6, slotTallyCell = 7;

    auto photon_cb = std::make_unique<CodeBlock>();
    auto main_cb = std::make_unique<CodeBlock>();
    uint32_t main_frame_id = 0;

    photon_cb->name = "photon";
    photon_cb->numLocals = 8;
    CodeBlock *photon_ptr = photon_cb.get();

    // Inlet 0: birth (group, weight).
    photon_cb->inlets.push_back(
        [=](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.move(2);
            mm.frameSet(f, slotGroup, vals.at(0));
            mm.frameSet(f, slotWeight, vals.at(1));
            mm.frameSet(f, slotCollisions, 0);
            mm.fork(f, 0);
        });

    // Inlet 1/2: cross-section values arrive.
    for (unsigned e = 0; e < 2; ++e) {
        unsigned slot = e == 0 ? slotAbs : slotPair;
        photon_cb->inlets.push_back(
            [=](Machine &mm, Frame &f, const std::vector<Value> &vals) {
                mm.move(1);
                mm.frameSet(f, slot, vals.at(0));
                mm.syncDec(f, slotSync, 1);
            });
    }

    // Inlet 3: tally read-modify-write: old value arrives, write back
    // the incremented tally, then finish dying (thread 2).
    photon_cb->inlets.push_back(
        [=](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.move(1);
            mm.iop(1);
            tam::CellRef cell{static_cast<uint32_t>(
                mm.frameGet(f, slotTallyCell))};
            mm.remoteWrite(cell, vals.at(0) +
                                     mm.frameGet(f, slotTallyTmp));
            mm.fork(f, 2);
        });

    // Thread 0: fetch cross sections for the current group.
    photon_cb->threads.push_back([=](Machine &mm, Frame &f) {
        unsigned group = static_cast<unsigned>(
            mm.frameGet(f, slotGroup));
        mm.frameSet(f, slotSync, 2);
        mm.iop(1);
        mm.ifetch(xs, 2 * group, mm.cont(f, 1));
        mm.iop(1);
        mm.ifetch(xs, 2 * group + 1, mm.cont(f, 2));
    });

    // Thread 1: one collision / flight.
    photon_cb->threads.push_back([=, &main_frame_id](Machine &mm,
                                                     Frame &f) {
        mm.frameSet(f, slotCollisions,
                    mm.frameGet(f, slotCollisions) + 1);

        // Sample the flight distance (exponential) and the event.
        mm.fop(6);    // log, divide, compare against the boundary
        double u_esc = mm.rng().uniformDouble() * 1000.0;

        auto die = [&](tam::CellRef tally) {
            // Accumulate this photon's collision count, then the
            // tally read-modify-write (inlet 3 finishes the death).
            mm.iop(2);
            mm.frameSet(f, slotTallyTmp, 1);
            mm.frameSet(f, slotTallyCell, tally.id);
            mm.remoteRead(tally, mm.cont(f, 3));
        };

        if (u_esc < escapeMil) {
            die(cell_escaped);
            return;
        }

        double p_abs = mm.frameGet(f, slotAbs);
        double p_pair = mm.frameGet(f, slotPair);
        mm.fop(2);
        double u = mm.rng().uniformDouble() * 1000.0;

        if (u < p_abs) {
            die(cell_absorbed);
            return;
        }

        if (u < p_abs + p_pair) {
            // Pair production: two secondaries at 0.511 MeV.
            mm.iop(1);
            double w = mm.frameGet(f, slotWeight);
            mm.fop(1);
            for (int child = 0; child < 2; ++child) {
                Frame &cf = mm.falloc(photon_ptr);
                mm.send(mm.cont(cf, 0),
                        {static_cast<Value>(pairGroup), w / 2});
                // Tell main a particle was born.
                mm.send(mm.cont(mm.frame(main_frame_id), 0), {});
            }
            die(cell_pairs);
            return;
        }

        // Compton scatter: lose energy, keep tracking.
        mm.fop(4);    // scattering angle + energy update
        unsigned group = static_cast<unsigned>(
            mm.frameGet(f, slotGroup));
        group += 1 + (mm.rng().next32() & 1);
        if (group >= numGroups) {
            die(cell_absorbed);    // thermalized
            return;
        }
        mm.frameSet(f, slotGroup, static_cast<Value>(group));
        mm.fork(f, 0);
    });

    // Thread 2: finish dying -- flush the collision tally and report.
    photon_cb->threads.push_back([=, &main_frame_id](Machine &mm,
                                                     Frame &f) {
        // Collisions accumulate via a second read-modify-write pair,
        // done inline here (Read reply consumed immediately).
        mm.iop(1);
        mm.remoteWrite(cell_collisions,
                       mm.cellValue(cell_collisions) +
                           mm.frameGet(f, slotCollisions));
        // One death notification to main.
        mm.send(mm.cont(mm.frame(main_frame_id), 1), {});
        mm.ffree(f);
    });

    // ---- main ----
    main_cb->name = "gamteb_main";
    main_cb->numLocals = 2;     // [0] births, [1] deaths

    main_cb->inlets.push_back(
        [=](Machine &mm, Frame &f, const std::vector<Value> &) {
            mm.iop(1);
            mm.frameSet(f, 0, mm.frameGet(f, 0) + 1);
            mm.remoteWrite(cell_total, mm.frameGet(f, 0));
        });
    main_cb->inlets.push_back(
        [=](Machine &mm, Frame &f, const std::vector<Value> &) {
            mm.iop(1);
            mm.frameSet(f, 1, mm.frameGet(f, 1) + 1);
        });

    // Thread 0: spawn the source particles, then (LIFO: runs last)
    // thread 1 fills the cross-section table, so early fetches defer.
    main_cb->threads.push_back([=](Machine &mm, Frame &f) {
        mm.fork(f, 1);
        for (unsigned p = 0; p < particles; ++p) {
            Frame &pf = mm.falloc(photon_ptr);
            // Source spectrum: cycle over the high-energy groups.
            unsigned group = p % pairThreshold;
            mm.send(mm.cont(pf, 0),
                    {static_cast<Value>(group), 1.0});
            mm.send(mm.cont(f, 0), {});     // birth
        }
    });

    // Thread 1: initialize the cross-section table.
    main_cb->threads.push_back([=](Machine &mm, Frame &f) {
        (void)f;
        for (unsigned g = 0; g < numGroups; ++g) {
            mm.iop(1);
            mm.istore(xs, 2 * g, static_cast<Value>(absorbMil(g)));
            mm.iop(1);
            mm.istore(xs, 2 * g + 1, static_cast<Value>(pairMil(g)));
        }
    });

    Frame &main_frame = m.falloc(main_cb.get());
    main_frame_id = main_frame.id();
    m.fork(main_frame, 0);
    m.run();

    GamtebResult r;
    r.stats = m.stats();
    r.sourceParticles = particles;
    r.totalParticles = static_cast<uint64_t>(m.cellValue(cell_total));
    r.escaped = static_cast<uint64_t>(m.cellValue(cell_escaped));
    r.absorbed = static_cast<uint64_t>(m.cellValue(cell_absorbed));
    r.pairProductions =
        static_cast<uint64_t>(m.cellValue(cell_pairs));
    r.collisions =
        static_cast<uint64_t>(m.cellValue(cell_collisions));
    return r;
}

} // namespace apps
} // namespace tcpni
