/**
 * @file
 * The paper's Matrix Multiply workload: N x N matrices multiplied in
 * 4 x 4 blocks, hand-compiled to the TAM runtime the way the Id
 * compiler compiled it for Figure 12 -- every inter-invocation
 * interaction is a message, and matrix elements live in I-structures
 * accessed with PRead/PWrite.
 *
 * One code-block activation computes one output block: it fetches the
 * two input blocks for each k-step with 32 ifetches, multiply-
 * accumulates when they arrive, and finally istores its 16 results.
 * Producer (initialization) and consumers run concurrently under the
 * LIFO scheduler, so fetches hit a natural mix of FULL, EMPTY and
 * DEFERRED elements -- the ratios the paper measured with Mint.
 */

#ifndef TCPNI_APPS_MATMUL_HH
#define TCPNI_APPS_MATMUL_HH

#include "tam/machine.hh"

namespace tcpni
{
namespace apps
{

struct MatMulResult
{
    tam::TamStats stats;
    bool verified = false;          //!< C matched the reference product
    unsigned n = 0;
    double flopsPerMessage = 0;     //!< paper quotes ~3 for this program
};

/**
 * Run the blocked matrix multiply on a TAM machine.
 *
 * @param n      matrix dimension (must be a multiple of the block size)
 * @param block  block edge (the paper uses 4)
 */
MatMulResult runMatMul(unsigned n = 100, unsigned block = 4,
                       tam::MachineConfig cfg = {});

} // namespace apps
} // namespace tcpni

#endif // TCPNI_APPS_MATMUL_HH
