/**
 * @file
 * The paper's Gamteb workload: a Monte Carlo photon-transport
 * simulation (the Id benchmark models photons traversing a carbon
 * cylinder), hand-compiled to the TAM runtime.
 *
 * Each source particle is one code-block activation.  A photon
 * repeatedly fetches cross-section data for its current energy group
 * from an I-structure table (PRead messages), samples its next event
 * with the deterministic RNG, and either escapes, is absorbed,
 * Compton-scatters to a lower energy group, or -- at high energies --
 * pair-produces two secondary photons (new activations, spawned with
 * Send messages).  Tallies are kept in remote cells updated with
 * Read/Write message pairs.
 *
 * "16 Gamteb" in Figure 12 is the 16-source-particle configuration.
 */

#ifndef TCPNI_APPS_GAMTEB_HH
#define TCPNI_APPS_GAMTEB_HH

#include "tam/machine.hh"

namespace tcpni
{
namespace apps
{

struct GamtebResult
{
    tam::TamStats stats;

    uint64_t sourceParticles = 0;
    uint64_t totalParticles = 0;    //!< sources + pair-production secondaries
    uint64_t escaped = 0;
    uint64_t absorbed = 0;
    uint64_t pairProductions = 0;
    uint64_t collisions = 0;

    /** Conservation: every particle ends exactly one way (escape,
     *  absorption, or conversion into an electron-positron pair), and
     *  each pair production added exactly two secondaries. */
    bool
    conserved() const
    {
        return escaped + absorbed + pairProductions == totalParticles &&
               totalParticles == sourceParticles + 2 * pairProductions;
    }
};

/** Run Gamteb with @p particles source particles (the paper uses 16). */
GamtebResult runGamteb(unsigned particles = 16,
                       tam::MachineConfig cfg = {});

} // namespace apps
} // namespace tcpni

#endif // TCPNI_APPS_GAMTEB_HH
