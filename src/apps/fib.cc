#include "apps/fib.hh"

#include <memory>

#include "common/logging.hh"

namespace tcpni
{
namespace apps
{

using tam::CodeBlock;
using tam::Frame;
using tam::Machine;
using tam::Value;

FibResult
runFib(unsigned n, tam::MachineConfig cfg)
{
    Machine m(cfg);

    // Frame layout: [0] = n, [1] = parent frame id, [2] = accumulated
    // result, [3] = children outstanding.
    const unsigned slotN = 0, slotParent = 1, slotAcc = 2,
                   slotSync = 3;

    auto fib_cb = std::make_unique<CodeBlock>();
    auto root_cb = std::make_unique<CodeBlock>();
    CodeBlock *fib_ptr = fib_cb.get();
    uint64_t activations = 0;

    fib_cb->name = "fib";
    fib_cb->numLocals = 4;

    // Inlet 0: the call (n, parent frame).
    fib_cb->inlets.push_back(
        [=](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.move(2);
            mm.frameSet(f, slotN, vals.at(0));
            mm.frameSet(f, slotParent, vals.at(1));
            mm.fork(f, 0);
        });

    // Inlet 1: a child's result.
    fib_cb->inlets.push_back(
        [=](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.move(1);
            mm.iop(1);
            mm.frameSet(f, slotAcc,
                        mm.frameGet(f, slotAcc) + vals.at(0));
            mm.syncDec(f, slotSync, 1);
        });

    // Thread 0: the call body.
    fib_cb->threads.push_back([=, &activations](Machine &mm, Frame &f) {
        ++activations;
        mm.iop(1);
        double nv = mm.frameGet(f, slotN);
        if (nv < 2) {
            mm.fork(f, 1);
            mm.frameSet(f, slotAcc, 1);
            return;
        }
        mm.frameSet(f, slotAcc, 0);
        mm.frameSet(f, slotSync, 2);
        for (int child = 0; child < 2; ++child) {
            mm.iop(1);
            Frame &cf = mm.falloc(fib_ptr);
            mm.send(mm.cont(cf, 0),
                    {nv - 1 - child, static_cast<Value>(f.id())});
        }
    });

    // Thread 1: both children returned -- return to the parent.
    fib_cb->threads.push_back([=](Machine &mm, Frame &f) {
        Value acc = mm.frameGet(f, slotAcc);
        uint32_t parent =
            static_cast<uint32_t>(mm.frameGet(f, slotParent));
        mm.send(mm.cont(mm.frame(parent), 1), {acc});
        mm.ffree(f);
    });

    // Root: receives the final result in slot 0.
    root_cb->name = "fib_root";
    root_cb->numLocals = 1;
    root_cb->inlets.push_back(
        [](Machine &, Frame &, const std::vector<Value> &) {});
    root_cb->inlets.push_back(
        [](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.frameSet(f, 0, vals.at(0));
        });

    Frame &root = m.falloc(root_cb.get());
    Frame &top = m.falloc(fib_ptr);
    m.send(m.cont(top, 0),
           {static_cast<Value>(n), static_cast<Value>(root.id())});
    m.run();

    FibResult r;
    r.stats = m.stats();
    r.value = static_cast<uint64_t>(root.locals[0]);
    r.activations = activations;
    r.n = n;
    return r;
}

} // namespace apps
} // namespace tcpni
