/**
 * @file
 * A synthetic ping-pong microworkload: two activations exchange
 * 1-word Send messages for a configurable number of round trips.
 * Its message profile is 100% Send traffic, making it a clean probe
 * of pure dispatch + Send costs (and a simple first TAM program).
 */

#ifndef TCPNI_APPS_PINGPONG_HH
#define TCPNI_APPS_PINGPONG_HH

#include "tam/machine.hh"

namespace tcpni
{
namespace apps
{

struct PingPongResult
{
    tam::TamStats stats;
    uint64_t roundTrips = 0;
    double finalValue = 0;      //!< value accumulated over the trips
};

/** Run @p round_trips ping-pong exchanges. */
PingPongResult runPingPong(unsigned round_trips = 1000,
                           tam::MachineConfig cfg = {});

} // namespace apps
} // namespace tcpni

#endif // TCPNI_APPS_PINGPONG_HH
