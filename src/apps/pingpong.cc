#include "apps/pingpong.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"

namespace tcpni
{
namespace apps
{

using tam::CodeBlock;
using tam::Frame;
using tam::Machine;
using tam::Value;

PingPongResult
runPingPong(unsigned round_trips, tam::MachineConfig cfg)
{
    Machine m(cfg);

    // Frame layout: [0] = remaining trips, [1] = received value,
    // [2] = peer frame id.
    auto cb = std::make_unique<CodeBlock>();
    cb->name = "pingpong";
    cb->numLocals = 3;

    // Inlet 0: a ball arrives.
    cb->inlets.push_back(
        [](Machine &mm, Frame &f, const std::vector<Value> &vals) {
            mm.move(1);
            mm.frameSet(f, 1, vals.at(0));
            mm.fork(f, 0);
        });

    // Thread 0: hit it back (or stop).
    cb->threads.push_back([](Machine &mm, Frame &f) {
        mm.iop(1);
        double remaining = mm.frameGet(f, 0);
        if (remaining < 0.5)
            return;
        mm.frameSet(f, 0, remaining - 1);
        mm.iop(1);
        Value v = mm.frameGet(f, 1) + 1;
        Frame &peer = mm.frame(
            static_cast<uint32_t>(mm.frameGet(f, 2)));
        mm.send(mm.cont(peer, 0), {v});
    });

    Frame &a = m.falloc(cb.get());
    Frame &b = m.falloc(cb.get());
    m.frameSet(a, 0, round_trips);
    m.frameSet(a, 2, b.id());
    m.frameSet(b, 0, round_trips);
    m.frameSet(b, 2, a.id());

    // Serve.
    m.send(m.cont(a, 0), {0.0});
    m.run();

    PingPongResult r;
    r.stats = m.stats();
    r.roundTrips = round_trips;
    r.finalValue = std::max(m.frameGet(a, 1), m.frameGet(b, 1));
    return r;
}

} // namespace apps
} // namespace tcpni
