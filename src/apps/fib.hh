/**
 * @file
 * Fine-grain recursive Fibonacci on the TAM runtime.
 *
 * The classic fine-grain benchmark shape: every call is a fresh
 * activation spawned with a Send message, and every result returns as
 * a Send -- a pure argument/result-passing profile with no heap
 * traffic, complementing Matrix Multiply (I-structure dominated) and
 * Gamteb (mixed).  The paper notes its other programs "give similar
 * results"; fib probes the Send/dispatch-dominated end of the space.
 */

#ifndef TCPNI_APPS_FIB_HH
#define TCPNI_APPS_FIB_HH

#include "tam/machine.hh"

namespace tcpni
{
namespace apps
{

struct FibResult
{
    tam::TamStats stats;
    uint64_t value = 0;         //!< fib(n)
    uint64_t activations = 0;   //!< call-tree size
    unsigned n = 0;
};

/** Compute fib(n) (fib(0) = fib(1) = 1) with one activation per
 *  call. */
FibResult runFib(unsigned n = 15, tam::MachineConfig cfg = {});

} // namespace apps
} // namespace tcpni

#endif // TCPNI_APPS_FIB_HH
