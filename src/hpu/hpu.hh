/**
 * @file
 * The Handler Processing Unit: a small in-order core inside the
 * network interface that runs the dispatch loop and the message
 * handlers on the NI itself, in the style of sPIN's HPUs.
 *
 * The HPU is permanently register-coupled to its interface: r16..r30
 * alias the NI registers, folded SEND/NEXT/REPLY/FORWARD instruction
 * bits are always available, and NI-register reads never interlock --
 * there is no MsgIp/NextMsgIp round-trip through the host CPU and no
 * load-use stall on the dispatch path, whatever the *host's* placement
 * looks like.  Handler memory (the dispatch tables, I-structure state)
 * is the node memory, reached with a configurable handler-memory
 * load-use delay.
 *
 * Differences from the host Cpu model:
 *
 *  - issue width: up to issueWidth independent instructions retire per
 *    cycle (1 reproduces the 88100-style counting model exactly; the
 *    bundle breaks on an operand interlock, an NI stall, or a control
 *    transfer);
 *  - handler-time budget: each handler activation (first cycle with a
 *    valid message through the cycle its NEXT retires) is measured
 *    against the policy's handlerTimeBudget(); overruns are counted,
 *    traced (TCPNI_TRACE=HPU) and recorded in the lifecycle stream;
 *  - host-proxy escape: a store to msg::hpuProxyAddr posts the current
 *    message (effective id + input words) into the host ring
 *    (msg::hostRingBase) and charges hostProxyCycles, modeling the
 *    cost of shipping CPU-only work (deferred-list walks) to the host;
 *  - the cache-mapped NI command window is unreachable: handlers that
 *    touch 0xffff0000 addresses are a kernel-selection bug and panic.
 *
 * Escape-ring discipline (statically enforced).  The host CPU is the
 * single writer of I-structure state; the HPU may read it but never
 * mutate it.  Concretely, for HPU-resident handler kernels:
 *
 *  - every PWRITE handler path must end in a hpuProxyAddr post -- the
 *    presence bits and deferred-reader list are only ever written by
 *    the host proxy draining the ring, so writes cannot race reads;
 *  - only the read-only PREAD FULL path may complete on the HPU; the
 *    EMPTY/DEFERRED paths (which enqueue a reader) must escape;
 *  - neither handler may issue a plain store to node memory.
 *
 * The protocol analyzer's proto-escape check (verify/protocol.cc)
 * rejects kernels that violate this at lint time, so a violation
 * cannot reach simulation.
 *
 * Cost regions work exactly as on the Cpu, so the Table-1 harness can
 * difference "dispatching"/"processing" cycles measured on the HPU.
 */

#ifndef TCPNI_HPU_HPU_HH
#define TCPNI_HPU_HPU_HH

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/assembler.hh"
#include "isa/isa.hh"
#include "mem/memory.hh"
#include "ni/network_interface.hh"
#include "sim/sim_object.hh"

namespace tcpni
{

/** HPU configuration. */
struct HpuConfig
{
    /** Instructions retired per cycle (sPIN evaluates small
     *  multi-issue HPUs; 1 matches the paper's counting model). */
    unsigned issueWidth = 1;

    /** Extra load-use delay for handler-memory loads. */
    Cycles handlerMemDelay = 0;

    /** Handler-time budget override in cycles; 0 takes the placement
     *  policy's handlerTimeBudget(). */
    Cycles handlerBudget = 0;

    /** Extra cycles a host-proxy post occupies the HPU. */
    Cycles hostProxyCycles = 2;

    /** Upper bound on executed instructions; exceeding it panics. */
    uint64_t maxInstructions = 100'000'000;

    /** Emit a disassembly trace of every executed instruction. */
    bool trace = false;
};

/** The on-NI handler processor. */
class Hpu : public SimObject
{
  public:
    Hpu(std::string name, EventQueue &eq, Memory &mem,
        ni::NetworkInterface &ni, HpuConfig config = {});
    ~Hpu() override;

    /** Copy a program image into memory and adopt its cost regions. */
    void loadProgram(const isa::Program &prog);

    /** Reset architectural state and set the PC. */
    void reset(Addr pc);

    /** Begin execution (schedules the first tick). */
    void start();

    bool halted() const { return halted_; }

    /** @{ Architectural state access for harnesses and tests. */
    Word reg(unsigned r) const;
    void setReg(unsigned r, Word value);
    Addr pc() const { return pc_; }
    /** @} */

    /** @{ Accounting. */
    uint64_t instructions() const { return instructions_; }
    uint64_t cycles() const { return cycles_; }
    uint64_t stallCycles() const { return stallCycles_; }
    uint64_t niStallCycles() const { return niStallCycles_; }
    /** Handler activations completed (NEXT retired or halt). */
    uint64_t handlersRun() const { return handlersRun_; }
    /** Activations that exceeded the handler-time budget. */
    uint64_t budgetOverruns() const { return budgetOverruns_; }
    /** Longest single handler activation observed (cycles). */
    uint64_t maxHandlerCycles() const { return maxHandlerCycles_; }
    /** Messages escaped to the host through the proxy ring. */
    uint64_t hostProxies() const { return hostProxies_; }
    /** Total cycles spent inside handler activations (occupancy
     *  numerator; divide by cycles() for HPU utilization). */
    uint64_t handlerBusyCycles() const { return handlerBusyCycles_; }
    /** The effective handler-time budget (0 = unbounded). */
    Cycles budget() const { return budget_; }

    /** Cycles charged to each named cost region. */
    std::map<std::string, uint64_t> regionCycles() const;

    /** Instructions charged to each named cost region. */
    std::map<std::string, uint64_t> regionInstructions() const;
    /** @} */

  private:
    class TickEvent : public Event
    {
      public:
        explicit TickEvent(Hpu &hpu) : Event(cpuPri), hpu_(hpu) {}
        void process() override { hpu_.tick(); }
        std::string name() const override { return "hpu-tick"; }

      private:
        Hpu &hpu_;
    };

    void tick();

    /** Execute @p inst; returns false if the instruction must retry
     *  (NI send stall). */
    bool execute(const isa::Instruction &inst);

    /** True if GPR @p r aliases an NI register (always, on the HPU). */
    static bool
    isNiAliasedReg(unsigned r)
    {
        return r >= isa::niRegBase &&
               r < isa::niRegBase + ni::numNiRegs;
    }

    Word readGpr(unsigned r);
    void writeGpr(unsigned r, Word value, Tick ready_at);

    /** Earliest tick at which @p inst can issue (interlocks). */
    Tick readyTick(const isa::Instruction &inst) const;

    /** Charge @p n cycles to the region of address @p addr. */
    void charge(Addr addr, uint64_t n);

    uint16_t regionOf(Addr addr) const;

    /** Post the current message into the host ring (store to
     *  msg::hpuProxyAddr). */
    void postProxy();

    /** @{ Handler-activation accounting (budget + lifecycle). */
    void beginHandler();
    void endHandler();
    void handlerTick(uint64_t n);
    /** @} */

    Memory &mem_;
    ni::NetworkInterface &ni_;
    HpuConfig config_;
    Cycles budget_ = 0;

    Word regs_[isa::numRegs] = {};
    Tick readyAt_[isa::numRegs] = {};
    Addr pc_ = 0;
    std::optional<Addr> branchTarget_;  //!< pending after delay slot
    bool halted_ = true;

    uint64_t instructions_ = 0;
    uint64_t cycles_ = 0;
    uint64_t stallCycles_ = 0;
    uint64_t niStallCycles_ = 0;
    uint64_t handlersRun_ = 0;
    uint64_t budgetOverruns_ = 0;
    uint64_t maxHandlerCycles_ = 0;
    uint64_t hostProxies_ = 0;
    uint64_t handlerBusyCycles_ = 0;

    /** @{ The activation in flight: valid message being handled. */
    bool handlerActive_ = false;
    uint64_t handlerCycles_ = 0;
    uint64_t handlerTraceId_ = 0;
    uint8_t handlerType_ = 0;
    /** @} */

    /** Set by execute() when the instruction retires a NEXT. */
    bool nextRetired_ = false;

    /** Extra cycles the retiring instruction owes (host proxy). */
    Cycles extraCost_ = 0;

    /** Host-ring producer index (mirrored to msg::hostRingPiAddr). */
    Word ringPi_ = 0;

    /** Per-word region tags of loaded programs. */
    std::unordered_map<Addr, uint16_t> regionByAddr_;
    std::vector<std::string> regionNames_{""};
    std::vector<uint64_t> regionCycles_{0};
    std::vector<uint64_t> regionInsts_{0};

    TickEvent tickEvent_;

    /** Telemetry group; null unless a metrics registry was installed
     *  when this HPU was constructed. */
    std::shared_ptr<metrics::Group> mgroup_;
};

} // namespace tcpni

#endif // TCPNI_HPU_HPU_HH
