#include "hpu/hpu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/trace.hh"
#include "msg/protocol.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{

using isa::Instruction;
using isa::Opcode;

Hpu::Hpu(std::string name, EventQueue &eq, Memory &mem,
         ni::NetworkInterface &ni, HpuConfig config)
    : SimObject(std::move(name), eq), mem_(mem), ni_(ni),
      config_(config), tickEvent_(*this)
{
    tcpni_assert(config_.issueWidth >= 1);
    budget_ = config_.handlerBudget
                  ? config_.handlerBudget
                  : ni_.config().policy().handlerTimeBudget();
    // No interrupt sink: the HPU *is* the reception path, polling the
    // input registers directly.  Interrupt-driven reception remains a
    // host-CPU facility.

    if (auto *r = metrics::registry()) {
        mgroup_ = r->addGroup(this->name(), eq);
        mgroup_->addCounter("instructions",
                            [this] { return instructions_; },
                            "instructions retired");
        mgroup_->addCounter("cycles", [this] { return cycles_; },
                            "cycles consumed (issue + stalls)");
        mgroup_->addCounter("stall_cycles",
                            [this] { return stallCycles_; },
                            "load-use interlock stall cycles");
        mgroup_->addCounter("ni_stall_cycles",
                            [this] { return niStallCycles_; },
                            "cycles stalled on NI SEND (full queue)");
        mgroup_->addCounter("handlers_run",
                            [this] { return handlersRun_; },
                            "handler activations completed");
        mgroup_->addCounter("handler_busy_cycles",
                            [this] { return handlerBusyCycles_; },
                            "cycles inside handler activations");
        mgroup_->addCounter("budget_overruns",
                            [this] { return budgetOverruns_; },
                            "activations over the handler budget");
        mgroup_->addCounter("host_proxies",
                            [this] { return hostProxies_; },
                            "messages escaped to the host ring");
        mgroup_->addGauge("max_handler_cycles",
                          [this] { return maxHandlerCycles_; },
                          "longest handler activation (cycles)");
    }
}

Hpu::~Hpu()
{
    if (mgroup_)
        mgroup_->retire();
}

void
Hpu::loadProgram(const isa::Program &prog)
{
    // Merge the program's regions into the HPU's region table.
    std::vector<uint16_t> remap(prog.regionNames.size());
    for (size_t i = 0; i < prog.regionNames.size(); ++i) {
        const std::string &rn = prog.regionNames[i];
        uint16_t id = 0xffff;
        for (size_t j = 0; j < regionNames_.size(); ++j) {
            if (regionNames_[j] == rn)
                id = static_cast<uint16_t>(j);
        }
        if (id == 0xffff) {
            id = static_cast<uint16_t>(regionNames_.size());
            regionNames_.push_back(rn);
            regionCycles_.push_back(0);
            regionInsts_.push_back(0);
        }
        remap[i] = id;
    }

    for (size_t i = 0; i < prog.words.size(); ++i) {
        Addr a = prog.base + static_cast<Addr>(i * 4);
        mem_.write(a, prog.words[i]);
        regionByAddr_[a] = remap[prog.regionOf[i]];
    }
}

void
Hpu::reset(Addr pc)
{
    for (unsigned r = 0; r < isa::numRegs; ++r) {
        regs_[r] = 0;
        readyAt_[r] = 0;
    }
    pc_ = pc;
    branchTarget_.reset();
    halted_ = false;
    instructions_ = cycles_ = stallCycles_ = niStallCycles_ = 0;
    handlersRun_ = budgetOverruns_ = maxHandlerCycles_ = 0;
    hostProxies_ = 0;
    handlerBusyCycles_ = 0;
    handlerActive_ = false;
    handlerCycles_ = 0;
    ringPi_ = 0;
    for (auto &c : regionCycles_)
        c = 0;
    for (auto &c : regionInsts_)
        c = 0;
}

void
Hpu::start()
{
    tcpni_assert(!halted_);
    if (!tickEvent_.scheduled())
        eventq().schedule(&tickEvent_, curTick());
}

Word
Hpu::readGpr(unsigned r)
{
    if (r == 0)
        return 0;
    if (isNiAliasedReg(r))
        return ni_.readReg(r - isa::niRegBase);
    return regs_[r];
}

void
Hpu::writeGpr(unsigned r, Word value, Tick ready_at)
{
    if (r == 0)
        return;
    if (isNiAliasedReg(r)) {
        // NI registers are the HPU's own state; results are visible
        // immediately and never interlock.
        ni_.writeReg(r - isa::niRegBase, value);
        return;
    }
    regs_[r] = value;
    readyAt_[r] = ready_at;
}

Tick
Hpu::readyTick(const Instruction &inst) const
{
    Tick ready = curTick();
    auto consider = [&](unsigned r) {
        if (r == 0 || isNiAliasedReg(r))
            return;
        if (readyAt_[r] > ready)
            ready = readyAt_[r];
    };
    if (isa::readsRs1(inst.op))
        consider(inst.rs1);
    if (isa::readsRs2(inst.op))
        consider(inst.rs2);
    if (isa::readsRdAsSource(inst.op))
        consider(inst.rd);
    return ready;
}

uint16_t
Hpu::regionOf(Addr addr) const
{
    auto it = regionByAddr_.find(addr);
    return it == regionByAddr_.end() ? 0 : it->second;
}

void
Hpu::charge(Addr addr, uint64_t n)
{
    regionCycles_[regionOf(addr)] += n;
}

std::map<std::string, uint64_t>
Hpu::regionCycles() const
{
    std::map<std::string, uint64_t> out;
    for (size_t i = 0; i < regionNames_.size(); ++i) {
        if (regionCycles_[i])
            out[regionNames_[i]] += regionCycles_[i];
    }
    return out;
}

std::map<std::string, uint64_t>
Hpu::regionInstructions() const
{
    std::map<std::string, uint64_t> out;
    for (size_t i = 0; i < regionNames_.size(); ++i) {
        if (regionInsts_[i])
            out[regionNames_[i]] += regionInsts_[i];
    }
    return out;
}

Word
Hpu::reg(unsigned r) const
{
    tcpni_assert(r < isa::numRegs);
    if (r == 0)
        return 0;
    if (isNiAliasedReg(r))
        return const_cast<Hpu *>(this)->ni_.readReg(r - isa::niRegBase);
    return regs_[r];
}

void
Hpu::setReg(unsigned r, Word value)
{
    tcpni_assert(r < isa::numRegs);
    writeGpr(r, value, curTick());
}

void
Hpu::beginHandler()
{
    handlerActive_ = true;
    handlerCycles_ = 0;
    handlerTraceId_ = ni_.currentTraceId();
    handlerType_ = ni_.currentType();
    TCPNI_TRACE(HPU, "handler start: type %u msg #%llu",
                handlerType_,
                static_cast<unsigned long long>(handlerTraceId_));
    if (trace::TraceSink *s = trace::sink()) {
        s->record(handlerTraceId_, trace::Stage::hpuStart, ni_.node(),
                  curTick(), handlerType_);
    }
}

void
Hpu::endHandler()
{
    ++handlersRun_;
    maxHandlerCycles_ = std::max(maxHandlerCycles_, handlerCycles_);
    handlerBusyCycles_ += handlerCycles_;
    // The activation ends with the cycle its NEXT (or halt) retires.
    const Tick end = curTick() + 1;
    TCPNI_TRACE(HPU, "handler end: type %u msg #%llu, %llu cycle(s)",
                handlerType_,
                static_cast<unsigned long long>(handlerTraceId_),
                static_cast<unsigned long long>(handlerCycles_));
    if (trace::TraceSink *s = trace::sink()) {
        s->record(handlerTraceId_, trace::Stage::hpuEnd, ni_.node(),
                  end, handlerType_);
    }
    if (budget_ && handlerCycles_ > budget_) {
        ++budgetOverruns_;
        TCPNI_TRACE(HPU, "handler budget overrun: %llu cycles against "
                    "a budget of %llu (type %u msg #%llu)",
                    static_cast<unsigned long long>(handlerCycles_),
                    static_cast<unsigned long long>(budget_),
                    handlerType_,
                    static_cast<unsigned long long>(handlerTraceId_));
        if (trace::TraceSink *s = trace::sink()) {
            s->record(handlerTraceId_, trace::Stage::hpuOverrun,
                      ni_.node(), end, handlerType_);
        }
    }
    handlerActive_ = false;
}

void
Hpu::handlerTick(uint64_t n)
{
    if (handlerActive_)
        handlerCycles_ += n;
}

void
Hpu::postProxy()
{
    Word ci = mem_.read(msg::hostRingCiAddr);
    if (ringPi_ - ci >= msg::hostRingSlots)
        panic("HPU '%s' host-proxy ring overflow (pi=%u ci=%u)",
              name().c_str(), ringPi_, ci);

    // The effective handler id: the encoded 4-bit type when the
    // interface has Section-2.2.1 types, the word-4 software id
    // otherwise.  The protocol assigns them the same values.
    Word id = ni_.config().features.encodedTypes
                  ? ni_.currentType()
                  : ni_.readReg(ni::regI4);
    Addr slot = msg::hostRingBase +
                (ringPi_ & (msg::hostRingSlots - 1)) *
                    msg::hostRingSlotBytes;
    mem_.write(slot, id);
    for (unsigned w = 0; w < msgWords; ++w)
        mem_.write(slot + 4 + 4 * w, ni_.readReg(ni::regI0 + w));
    ++ringPi_;
    mem_.write(msg::hostRingPiAddr, ringPi_);
    ++hostProxies_;
    extraCost_ = config_.hostProxyCycles;
    TCPNI_TRACE(HPU, "host proxy: id %u -> ring slot %u (pi=%u)",
                id, (ringPi_ - 1) & (msg::hostRingSlots - 1), ringPi_);
}

void
Hpu::tick()
{
    if (halted_)
        return;

    const Tick now = curTick();

    // A valid message at the start of a cycle opens (or continues) a
    // handler activation; the dispatch jump through MsgIp counts
    // toward the activation, matching sPIN's occupancy accounting.
    if (!handlerActive_ && ni_.msgValid())
        beginHandler();

    unsigned issued = 0;
    while (true) {
        Word raw = mem_.read(pc_);
        Instruction inst = isa::decode(raw);

        // Operand interlocks break (or, alone, stall) the bundle.
        Tick ready = readyTick(inst);
        if (ready > now) {
            if (issued == 0) {
                uint64_t stall = ready - now;
                stallCycles_ += stall;
                cycles_ += stall;
                charge(pc_, stall);
                handlerTick(stall);
                eventq().schedule(&tickEvent_, ready);
                return;
            }
            break;
        }

        if (config_.trace) {
            inform("%s %6llu  pc=%08x  %s", name().c_str(),
                   static_cast<unsigned long long>(now), pc_,
                   isa::disassemble(inst).c_str());
        }

        const Addr ipc = pc_;
        extraCost_ = 0;
        nextRetired_ = false;
        if (!execute(inst)) {
            // SEND against a full output queue with the stall policy.
            if (issued == 0) {
                ++niStallCycles_;
                ++cycles_;
                charge(ipc, 1);
                handlerTick(1);
                eventq().schedule(&tickEvent_, now + 1);
                return;
            }
            break;
        }

        ++instructions_;
        regionInsts_[regionOf(ipc)] += 1;
        ++issued;
        if (issued == 1) {
            ++cycles_;
            charge(ipc, 1);
            handlerTick(1);
        }
        if (extraCost_) {
            cycles_ += extraCost_;
            charge(ipc, extraCost_);
            handlerTick(extraCost_);
        }

        if (instructions_ > config_.maxInstructions)
            panic("HPU '%s' exceeded %llu instructions; runaway "
                  "handler?", name().c_str(),
                  static_cast<unsigned long long>(
                      config_.maxInstructions));

        if (halted_) {
            if (handlerActive_)
                endHandler();
            return;
        }
        if (nextRetired_ && handlerActive_)
            endHandler();

        // One control transfer (or proxy post) per cycle; otherwise
        // fill the issue width.
        if (isa::isBranch(inst.op) || extraCost_ ||
            issued >= config_.issueWidth)
            break;
    }

    eventq().schedule(&tickEvent_, now + 1);
}

bool
Hpu::execute(const Instruction &inst)
{
    const Tick now = curTick();

    // Pre-check NI command stalls so that a retried instruction has no
    // double side effects.  Unlike the host CPU, folded NI bits are
    // always legal here: the HPU is register-coupled by construction.
    if (inst.ni.mode != isa::SendMode::none && ni_.sendWouldStall())
        return false;

    // Compute the next PC.  The instruction after a branch (its delay
    // slot) always executes; branchTarget_ holds the redirect that
    // applies after the delay slot.
    std::optional<Addr> new_target;
    Addr next_pc;
    if (branchTarget_) {
        next_pc = *branchTarget_;
        branchTarget_.reset();
        if (isa::isBranch(inst.op))
            panic("branch in a delay slot at pc=0x%08x", pc_);
    } else {
        next_pc = pc_ + 4;
    }

    auto alu = [&](Word result) { writeGpr(inst.rd, result, now + 1); };

    switch (inst.op) {
      case Opcode::add:
        alu(readGpr(inst.rs1) + readGpr(inst.rs2));
        break;
      case Opcode::sub:
        alu(readGpr(inst.rs1) - readGpr(inst.rs2));
        break;
      case Opcode::and_:
        alu(readGpr(inst.rs1) & readGpr(inst.rs2));
        break;
      case Opcode::or_:
        alu(readGpr(inst.rs1) | readGpr(inst.rs2));
        break;
      case Opcode::xor_:
        alu(readGpr(inst.rs1) ^ readGpr(inst.rs2));
        break;
      case Opcode::sll:
        alu(readGpr(inst.rs1) << (readGpr(inst.rs2) & 31));
        break;
      case Opcode::srl:
        alu(readGpr(inst.rs1) >> (readGpr(inst.rs2) & 31));
        break;
      case Opcode::sra:
        alu(static_cast<Word>(static_cast<int32_t>(readGpr(inst.rs1)) >>
                              (readGpr(inst.rs2) & 31)));
        break;
      case Opcode::slt:
        alu(static_cast<int32_t>(readGpr(inst.rs1)) <
                    static_cast<int32_t>(readGpr(inst.rs2))
                ? 1 : 0);
        break;
      case Opcode::sltu:
        alu(readGpr(inst.rs1) < readGpr(inst.rs2) ? 1 : 0);
        break;
      case Opcode::mul:
        alu(readGpr(inst.rs1) * readGpr(inst.rs2));
        break;
      case Opcode::addi:
        alu(readGpr(inst.rs1) + static_cast<Word>(inst.imm));
        break;
      case Opcode::andi:
        alu(readGpr(inst.rs1) & static_cast<Word>(inst.imm));
        break;
      case Opcode::ori:
        alu(readGpr(inst.rs1) | static_cast<Word>(inst.imm));
        break;
      case Opcode::xori:
        alu(readGpr(inst.rs1) ^ static_cast<Word>(inst.imm));
        break;
      case Opcode::lui:
        alu(static_cast<Word>(inst.imm) << 16);
        break;
      case Opcode::slli:
        alu(readGpr(inst.rs1) << (inst.imm & 31));
        break;
      case Opcode::srli:
        alu(readGpr(inst.rs1) >> (inst.imm & 31));
        break;

      case Opcode::ld:
      case Opcode::ldi: {
        Word base = readGpr(inst.rs1);
        Word off = inst.op == Opcode::ld ? readGpr(inst.rs2)
                                         : static_cast<Word>(inst.imm);
        Word vaddr = base + off;
        if (ni::NetworkInterface::isNiAddr(vaddr))
            panic("HPU handlers reach the NI through the register "
                  "file, not the command window (pc=0x%08x)", pc_);
        Word val = mem_.read(localOf(vaddr));
        writeGpr(inst.rd, val, now + 1 + config_.handlerMemDelay);
        break;
      }

      case Opcode::st:
      case Opcode::sti: {
        Word base = readGpr(inst.rs1);
        Word off = inst.op == Opcode::st ? readGpr(inst.rs2)
                                         : static_cast<Word>(inst.imm);
        Word vaddr = base + off;
        if (ni::NetworkInterface::isNiAddr(vaddr))
            panic("HPU handlers reach the NI through the register "
                  "file, not the command window (pc=0x%08x)", pc_);
        if (vaddr == msg::hpuProxyAddr)
            postProxy();
        else
            mem_.write(localOf(vaddr), readGpr(inst.rd));
        break;
      }

      case Opcode::jmp: {
        Word target = readGpr(inst.rs1);
        if (inst.rd != 0)
            writeGpr(inst.rd, pc_ + 8, now + 1);
        new_target = target;
        break;
      }

      case Opcode::br: {
        Addr target = pc_ + 4 + static_cast<Addr>(inst.imm) * 4;
        if (inst.rd != 0)
            writeGpr(inst.rd, pc_ + 8, now + 1);
        new_target = target;
        break;
      }

      case Opcode::beqz:
      case Opcode::bnez:
      case Opcode::bltz:
      case Opcode::bgez: {
        Word v = readGpr(inst.rs1);
        bool taken = false;
        switch (inst.op) {
          case Opcode::beqz: taken = v == 0; break;
          case Opcode::bnez: taken = v != 0; break;
          case Opcode::bltz:
            taken = static_cast<int32_t>(v) < 0;
            break;
          default:
            taken = static_cast<int32_t>(v) >= 0;
            break;
        }
        if (taken)
            new_target = pc_ + 4 + static_cast<Addr>(inst.imm) * 4;
        break;
      }

      case Opcode::halt:
        TCPNI_TRACE(HPU, "halt after %llu instructions",
                    static_cast<unsigned long long>(instructions_ + 1));
        halted_ = true;
        return true;
    }

    // Execute folded NI commands after the instruction's own
    // operation, in SEND-then-NEXT order.
    if (inst.ni.any()) {
        ni::CmdResult res = ni_.command(inst.ni);
        tcpni_assert(res == ni::CmdResult::ok);
        if (inst.ni.next)
            nextRetired_ = true;
    }

    pc_ = next_pc;
    if (new_target)
        branchTarget_ = new_target;
    return true;
}

} // namespace tcpni
