/**
 * @file
 * I-structure memory: array storage with per-element presence bits.
 *
 * I-structures (Arvind, Nikhil & Pingali, TOPLAS 1989) give every array
 * element a presence state:
 *
 *  - EMPTY    -- not yet written; a read must defer.
 *  - FULL     -- written; reads return the value immediately.
 *  - DEFERRED -- not yet written, and one or more readers are waiting;
 *               their continuations are chained in a deferred list.
 *
 * The paper's PRead / PWrite messages operate on exactly this storage:
 * a PRead of a FULL element replies right away; of an EMPTY/DEFERRED
 * element it appends the reader's continuation (FP, IP) to the deferred
 * list; a PWrite of an element with deferred readers forwards the value
 * to each of the n waiting readers (Table 1's "PWrite (deferred)"
 * 15+6n-style rows).
 *
 * This class is the functional model used by the TAM interpreter and
 * the protocol tests.  The cycle-accurate path goes through the same
 * layout in simulated Memory (see msg/kernels.hh) so that handler
 * assembly can walk the deferred lists itself.
 */

#ifndef TCPNI_MEM_ISTRUCT_MEMORY_HH
#define TCPNI_MEM_ISTRUCT_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace tcpni
{

/** Presence state of an I-structure element. */
enum class Presence : uint8_t
{
    empty = 0,
    full = 1,
    deferred = 2,
};

/** A reader continuation waiting on an empty element. */
struct DeferredReader
{
    Word fp;    //!< frame pointer of the thread awaiting the value
    Word ip;    //!< instruction pointer of that thread's inlet
};

/** Result of an I-structure read attempt. */
struct IReadResult
{
    bool full;      //!< true if the value was present
    Word value;     //!< valid when full
};

/** Result of an I-structure write. */
struct IWriteResult
{
    /** Readers that were waiting and must now be sent the value. */
    std::vector<DeferredReader> readers;
};

/** A region of I-structure storage with presence bits. */
class IStructMemory
{
  public:
    /** Create storage for @p nelems elements, all EMPTY. */
    explicit IStructMemory(size_t nelems);

    size_t size() const { return elems_.size(); }

    Presence state(size_t idx) const;

    /**
     * Attempt to read element @p idx.  If FULL, returns the value.
     * Otherwise appends (fp, ip) to the deferred list and the element
     * becomes DEFERRED.
     */
    IReadResult read(size_t idx, Word fp, Word ip);

    /**
     * Write element @p idx.  Writing a FULL element violates the
     * single-assignment rule and panics (the paper's model treats it as
     * a program error).  Returns the deferred readers to notify, in
     * arrival order.
     */
    IWriteResult write(size_t idx, Word value);

    /** Read a FULL element's value without a continuation (test use). */
    Word peek(size_t idx) const;

    /** Number of deferred readers currently waiting on @p idx. */
    size_t deferredCount(size_t idx) const;

    /** Reset every element to EMPTY. */
    void clear();

  private:
    struct Elem
    {
        Presence state = Presence::empty;
        Word value = 0;
        std::vector<DeferredReader> waiters;
    };

    const Elem &at(size_t idx) const;
    Elem &at(size_t idx);

    std::vector<Elem> elems_;
};

} // namespace tcpni

#endif // TCPNI_MEM_ISTRUCT_MEMORY_HH
