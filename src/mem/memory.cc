#include "mem/memory.hh"

#include "common/logging.hh"

namespace tcpni
{

Memory::Memory(Addr size_bytes)
    : words_((size_bytes + 3) / 4, 0)
{
}

void
Memory::check(Addr addr) const
{
    if (addr & 3)
        panic("unaligned word access at 0x%08x", addr);
    if (addr / 4 >= words_.size())
        panic("memory access out of bounds at 0x%08x (size 0x%08x)",
              addr, size());
}

Word
Memory::read(Addr addr) const
{
    check(addr);
    return words_[addr / 4];
}

void
Memory::write(Addr addr, Word value)
{
    check(addr);
    words_[addr / 4] = value;
}

void
Memory::clear()
{
    for (Word &w : words_)
        w = 0;
}

} // namespace tcpni
