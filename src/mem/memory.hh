/**
 * @file
 * A node's local memory.
 *
 * Memory is byte-addressed but only word (32-bit) accesses are
 * supported, matching the RISC load/store model the paper's handlers
 * use.  Addresses must be word aligned.
 */

#ifndef TCPNI_MEM_MEMORY_HH
#define TCPNI_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace tcpni
{

/** Word-access local memory of one node. */
class Memory
{
  public:
    /** Create a memory of @p size_bytes bytes (rounded up to a word). */
    explicit Memory(Addr size_bytes);

    /** Read the word at byte address @p addr (must be aligned). */
    Word read(Addr addr) const;

    /** Write the word at byte address @p addr (must be aligned). */
    void write(Addr addr, Word value);

    /** Memory size in bytes. */
    Addr size() const { return static_cast<Addr>(words_.size() * 4); }

    /** Zero all of memory. */
    void clear();

  private:
    void check(Addr addr) const;

    std::vector<Word> words_;
};

} // namespace tcpni

#endif // TCPNI_MEM_MEMORY_HH
