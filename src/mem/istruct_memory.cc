#include "mem/istruct_memory.hh"

#include "common/logging.hh"

namespace tcpni
{

IStructMemory::IStructMemory(size_t nelems)
    : elems_(nelems)
{
}

const IStructMemory::Elem &
IStructMemory::at(size_t idx) const
{
    if (idx >= elems_.size())
        panic("I-structure index %zu out of range (size %zu)", idx,
              elems_.size());
    return elems_[idx];
}

IStructMemory::Elem &
IStructMemory::at(size_t idx)
{
    return const_cast<Elem &>(
        static_cast<const IStructMemory *>(this)->at(idx));
}

Presence
IStructMemory::state(size_t idx) const
{
    return at(idx).state;
}

IReadResult
IStructMemory::read(size_t idx, Word fp, Word ip)
{
    Elem &e = at(idx);
    if (e.state == Presence::full)
        return {true, e.value};
    e.waiters.push_back({fp, ip});
    e.state = Presence::deferred;
    return {false, 0};
}

IWriteResult
IStructMemory::write(size_t idx, Word value)
{
    Elem &e = at(idx);
    if (e.state == Presence::full)
        panic("I-structure element %zu written twice", idx);
    IWriteResult result;
    result.readers = std::move(e.waiters);
    e.waiters.clear();
    e.state = Presence::full;
    e.value = value;
    return result;
}

Word
IStructMemory::peek(size_t idx) const
{
    const Elem &e = at(idx);
    if (e.state != Presence::full)
        panic("peek of non-full I-structure element %zu", idx);
    return e.value;
}

size_t
IStructMemory::deferredCount(size_t idx) const
{
    return at(idx).waiters.size();
}

void
IStructMemory::clear()
{
    for (Elem &e : elems_) {
        e.state = Presence::empty;
        e.value = 0;
        e.waiters.clear();
    }
}

} // namespace tcpni
