#include "msg/kernels.hh"

#include <sstream>

#include "common/logging.hh"
#include "msg/protocol.hh"
#include "ni/ni_regs.hh"
#include "ni/placement_policy.hh"

namespace tcpni
{
namespace msg
{

std::string
kindName(Kind k)
{
    switch (k) {
      case Kind::send0: return "Send (0 words)";
      case Kind::send1: return "Send (1 word)";
      case Kind::send2: return "Send (2 words)";
      case Kind::read: return "Read";
      case Kind::write: return "Write";
      case Kind::pread: return "PRead";
      case Kind::pwrite: return "PWrite";
    }
    return "?";
}

unsigned
basicId(Kind k)
{
    // The basic models dispatch on the 32-bit id in word 4.  Ids of
    // the shared request types coincide with the optimized 4-bit type
    // codes; the Send variants get ids of their own since the basic
    // table has no word-1 indirection.
    switch (k) {
      case Kind::send0: return 0;
      case Kind::send1: return 7;
      case Kind::send2: return 8;
      case Kind::read: return typeRead;
      case Kind::write: return typeWrite;
      case Kind::pread: return typePRead;
      case Kind::pwrite: return typePWrite;
    }
    return 0;
}

unsigned
directlyComputableWords(Kind k)
{
    // How many message values a compiler could compute straight into
    // the output registers (register-mapped models), giving the lower
    // bound of the paper's sending-cost ranges.
    switch (k) {
      case Kind::send0: return 0;
      case Kind::send1: return 1;
      case Kind::send2: return 2;
      case Kind::read: return 1;
      case Kind::write: return 2;
      case Kind::pread: return 2;
      case Kind::pwrite: return 3;
    }
    return 0;
}

std::map<std::string, uint64_t>
kernelSymbols()
{
    auto syms = ni::asmSymbols();
    for (const auto &[k, v] : protoSymbols())
        syms[k] = v;
    return syms;
}

isa::Program
assembleKernel(const std::string &src)
{
    return isa::assemble(src, kernelSymbols());
}

namespace
{

/** Pad to the next dispatch-table slot. */
const char *slotAlign = "    .align HANDLER_STRIDE\n";

/**
 * The three threshold-variant dispatch banks (Section 2.2.4).  When a
 * queue crosses its threshold the MsgIp composition sets the oafull /
 * iafull bits, steering dispatch into the matching bank.  A real
 * runtime would shed load here before handling the message; ours does
 * the minimal correct thing: the type-0 slot doubles as the
 * above-threshold poll handler (the hardware suppresses the word-1
 * shortcut, so a valid Send dispatches here and is forwarded through
 * word 1 by software), and every other live type defers to its base
 * handler.  The measurement harness runs with thresholds maxed so none
 * of this is ever executed; it exists so that the dispatch table is
 * complete for all four variants of every live type, which the static
 * verifier checks.
 */
std::string
optVariantBanks(bool reg_mapped, bool has_escape)
{
    struct Target { unsigned type; const char *label; };
    static const Target targets[] = {
        {typeRead, "h_read"}, {typeWrite, "h_write"},
        {typePRead, "h_pread"}, {typePWrite, "h_pwrite"},
        {typeAck, "h_ack"}, {typeEscape, "h_escape"},
        {typeStop, "h_stop"},
    };
    static const char *banks[] = {"oa", "ia", "iaoa"};

    std::ostringstream os;
    for (const char *bank : banks) {
        os << "    ; ---- " << bank << "-full variant bank ----\n"
           << "    .region dispatching\n"
           << "v_" << bank << "_poll:\n";
        if (reg_mapped) {
            os << "    srli r5, status, ST_VALID_SHIFT\n"
                  "    andi r5, r5, 1\n"
                  "    beqz r5, poll\n"
                  "    nop\n"
                  "    jmp  i1\n"
                  "    nop\n";
        } else {
            os << "    ldi  r5, r10, NI_STATUS\n"
                  "    srli r5, r5, ST_VALID_SHIFT\n"
                  "    andi r5, r5, 1\n"
                  "    beqz r5, poll\n"
                  "    nop\n"
                  "    ldi  r15, r10, NI_I1\n"
                  "    jmp  r15\n"
                  "    nop\n";
        }
        os << slotAlign
           << "v_" << bank << "_exc:\n"
           << "    br   exc\n"
           << "    nop\n" << slotAlign;
        unsigned next_slot = 2;
        for (const auto &t : targets) {
            for (; next_slot < t.type; ++next_slot)
                os << "    halt\n" << slotAlign;
            if (t.type == typeEscape && !has_escape) {
                os << "    halt\n" << slotAlign;
            } else {
                os << "    br   " << t.label << "\n"
                   << "    nop\n" << slotAlign;
            }
            ++next_slot;
        }
    }
    return os.str();
}

/**
 * The optimized register-mapped handler set.  Handlers live in the
 * MsgIp dispatch table; every handler ends with `jmp nextmsgip` whose
 * delay slot holds the final processing instruction (the Section-2.2.3
 * overlap), so dispatch costs a single cycle.
 */
std::string
regOptHandlers()
{
    std::ostringstream os;
    os << R"(
    ; ------ optimized register-mapped handler table ------
    .org 0x4000

    ; slot 0: poll/idle -- spin on MsgIp until a message dispatches.
    .region dispatching
poll:
    jmp  msgip
    nop
)" << slotAlign << R"(
    ; slot 1: exception handler.
    .region exception
exc:
    halt
)" << slotAlign << R"(
    ; slot 2: READ -- the paper's two-instruction remote read.
    .region dispatching
h_read:
    jmp  nextmsgip
    .region processing
    ld   o2, i0, r0 !reply=0 !next
)" << slotAlign << R"(
    ; slot 3: WRITE.
    .region dispatching
h_write:
    jmp  nextmsgip
    .region processing
    st   i1, i0, r0 !next
)" << slotAlign << R"(
    ; slot 4: PREAD.  i0 = element, i1 = FP, i2 = IP.
    .region processing
h_pread:
    ld   r5, i0, r0            ; tag
    ld   r6, i0, r4            ; value / deferred-list head
    addi r7, r5, -TAG_FULL
    bnez r7, pread_slow
    add  o2, r6, r0            ; delay: value into o2 (harmless if slow)
    ; FULL: reply (i1,i2 head the message via REPLY mode).
    .region dispatching
    jmp  nextmsgip
    .region processing
    reply 0 !next
pread_slow:
    ; EMPTY or DEFERRED: append this reader to the deferred list.
    ldi  r8, r0, ALLOC_PTR
    addi r7, r8, DN_SIZE
    sti  r7, r0, ALLOC_PTR
    st   i1, r8, r0            ; node.fp
    bnez r5, pread_defer
    sti  i2, r8, DN_IP         ; delay: node.ip
    sti  r0, r8, DN_NEXT       ; EMPTY: list ends here
    br   pread_link
    nop
pread_defer:
    sti  r6, r8, DN_NEXT       ; DEFERRED: chain the old head
pread_link:
    sti  r8, i0, IS_VALUE
    addi r7, r0, TAG_DEFERRED
    .region dispatching
    jmp  nextmsgip
    .region processing
    st   r7, i0, r0 !next
)" << slotAlign << R"(
    ; slot 5: PWRITE.  i0 = element, i1 = ack word, i2 = value.
    .region processing
h_pwrite:
    ld   r5, i0, r0            ; tag
    ld   r6, i0, r4            ; deferred-list head (if any)
    st   i2, i0, r4            ; value
    addi r7, r0, TAG_FULL
    st   r7, i0, r0            ; tag = FULL
    beqz i1, pwrite_chk
    add  o0, i1, r0            ; delay: ack destination (harmless)
    send T_ACK
pwrite_chk:
    addi r7, r5, -TAG_DEFERRED
    bnez r7, pwrite_done
    nop
pwrite_loop:
    ; Forward the value to each deferred reader.  FORWARD mode takes
    ; the value straight from i2 (Section 2.2.2).
    ldi  o0, r6, DN_FP
    ldi  o1, r6, DN_IP
    forward 0
    ldi  r6, r6, DN_NEXT
    bnez r6, pwrite_loop
    nop
pwrite_done:
    .region dispatching
    jmp  nextmsgip
    .region processing
    next
)" << slotAlign << R"(
    ; slot 6: ACK -- decrement the addressed completion counter.
    .region processing
h_ack:
    ld   r5, i0, r0
    addi r5, r5, -1
    .region dispatching
    jmp  nextmsgip
    .region processing
    st   r5, i0, r0 !next
)" << slotAlign;

    // Slots 7..13: unassigned types halt loudly.
    for (int s = 7; s <= 13; ++s)
        os << "    halt\n" << slotAlign;

    os << R"(
    ; slot 14: the ESCAPE type (Section 2.2.1): messages whose real
    ; identifier does not fit in four bits carry it in word 4; the
    ; escape handler dispatches through a software table, exactly the
    ; way the basic architecture dispatches everything.
    .region dispatching
h_escape:
    slli r5, i4, 2
    ld   r6, r13, r5           ; r13 = escape table base (setup)
    jmp  r6
    nop
)" << slotAlign << R"(
    ; slot 15: STOP -- the harness halts the server.
h_stop:
    halt
)" << slotAlign << optVariantBanks(true, true) << R"(
    ; ------ escape-dispatched handlers (identifiers >= 16) ------
    ; id 0 in the escape table: store word 2 at the address in word 1.
    .region processing
h_esc_poke:
    st   i2, i1, r0 !next
    .region dispatching
    jmp  nextmsgip
    nop

    ; ------ type-0 (Send) inlets, dispatched through word 1 ------
    .region dispatching
h_send0:
    jmp  nextmsgip
    .region processing
    add  r9, i0, r0 !next      ; frame pointer into the thread register

    .region processing
h_send1:
    add  r9, i0, r0
    .region dispatching
    jmp  nextmsgip
    .region processing
    st   i2, r9, r0 !next      ; data word 0 into the frame

    .region processing
h_send2:
    add  r9, i0, r0
    st   i2, r9, r0
    .region dispatching
    jmp  nextmsgip
    .region processing
    st   i3, r9, r4 !next      ; data word 1

    ; ------ entry ------
    .region setup
entry:
    li   ipbase, 0x4000
    addi r4, r0, 4
    ; escape dispatch table: one entry so far
    li   r13, ESC_TABLE
    li   r2, h_esc_poke
    sti  r2, r13, 0
    br   poll
    nop
)";
    return os.str();
}

/**
 * The optimized cache-mapped handler set (on- and off-chip share the
 * code; only the access latency differs).  Canonical schedule: the
 * NextMsgIp load is hoisted to the top of each handler so the off-chip
 * latency overlaps with processing; NEXT is folded into the handler's
 * final NI access; the jmp delay slot holds a processing instruction.
 */
std::string
cacheOptHandlers()
{
    std::ostringstream os;
    os << R"(
    ; ------ optimized cache-mapped handler table ------
    ; r10 = NI_BASE, r11 = reply-store offset, r4 = 4, r15 = target
    .org 0x4000

    .region dispatching
poll:
    ldi  r15, r10, NI_MSGIP
    jmp  r15
    nop
)" << slotAlign << R"(
    .region exception
exc:
    halt
)" << slotAlign << R"(
    ; slot 2: READ.
    .region dispatching
h_read:
    ldi  r15, r10, NI_NEXTMSGIP
    .region processing
    ldi  r5, r10, NI_I0        ; requested address
    ld   r6, r5, r0            ; value
    .region dispatching
    jmp  r15
    .region processing
    st   r6, r10, r11          ; o2 + SEND-reply + NEXT (Figure 9)
)" << slotAlign << R"(
    ; slot 3: WRITE.
    .region dispatching
h_write:
    ldi  r15, r10, NI_NEXTMSGIP
    .region processing
    ldi  r5, r10, NI_I0        ; address
    ldi  r6, r10, NI_I1 | NI_NEXT  ; value, then advance
    .region dispatching
    jmp  r15
    .region processing
    st   r6, r5, r0
)" << slotAlign << R"(
    ; slot 4: PREAD.
    .region dispatching
h_pread:
    ldi  r15, r10, NI_NEXTMSGIP
    .region processing
    ldi  r5, r10, NI_I0        ; element
    ldi  r7, r10, NI_I1        ; FP
    ldi  r8, r10, NI_I2        ; IP
    ld   r6, r5, r0            ; tag
    ld   r9, r5, r4            ; value / head
    addi r2, r6, -TAG_FULL
    bnez r2, cpread_slow
    nop
    .region dispatching
    jmp  r15
    .region processing
    st   r9, r10, r11          ; value -> o2 + SEND-reply + NEXT
cpread_slow:
    ldi  r2, r0, ALLOC_PTR
    addi r3, r2, DN_SIZE
    sti  r3, r0, ALLOC_PTR
    sti  r7, r2, DN_FP
    bnez r6, cpread_defer
    sti  r8, r2, DN_IP         ; delay
    sti  r0, r2, DN_NEXT
    br   cpread_link
    nop
cpread_defer:
    sti  r9, r2, DN_NEXT
cpread_link:
    sti  r2, r5, IS_VALUE
    addi r3, r0, TAG_DEFERRED
    sti  r3, r5, IS_TAG
    .region dispatching
    jmp  r15
    .region processing
    ldi  r0, r10, NI_NEXT      ; NEXT-only command access
)" << slotAlign << R"(
    ; slot 5: PWRITE.
    .region dispatching
h_pwrite:
    ldi  r15, r10, NI_NEXTMSGIP
    .region processing
    ldi  r5, r10, NI_I0        ; element
    ldi  r7, r10, NI_I1        ; ack word
    ldi  r8, r10, NI_I2        ; value
    ld   r6, r5, r4            ; old head
    ld   r2, r5, r0            ; tag
    sti  r8, r5, IS_VALUE
    addi r3, r0, TAG_FULL
    sti  r3, r5, IS_TAG
    beqz r7, cpwrite_chk
    sti  r7, r10, NI_O0        ; delay: ack destination
    ldi  r0, r10, NI_SEND | NI_TYPE*T_ACK
cpwrite_chk:
    addi r3, r2, -TAG_DEFERRED
    bnez r3, cpwrite_done
    nop
cpwrite_loop:
    ; FORWARD mode supplies the value from i2; one explicit SEND
    ; access per forwarded reader.
    ldi  r2, r6, DN_FP
    ldi  r3, r6, DN_IP
    sti  r2, r10, NI_O0
    sti  r3, r10, NI_O1
    ldi  r0, r10, NI_FWD
    ldi  r6, r6, DN_NEXT
    bnez r6, cpwrite_loop
    nop
cpwrite_done:
    .region dispatching
    jmp  r15
    .region processing
    ldi  r0, r10, NI_NEXT
)" << slotAlign << R"(
    ; slot 6: ACK.
    .region dispatching
h_ack:
    ldi  r15, r10, NI_NEXTMSGIP
    .region processing
    ldi  r5, r10, NI_I0
    ld   r6, r5, r0
    addi r6, r6, -1
    st   r6, r5, r0
    .region dispatching
    jmp  r15
    .region processing
    ldi  r0, r10, NI_NEXT
)" << slotAlign;

    for (int s = 7; s <= 14; ++s)
        os << "    halt\n" << slotAlign;

    os << R"(
h_stop:
    halt
)" << slotAlign << optVariantBanks(false, false) << R"(
    ; ------ type-0 (Send) inlets ------
    .region dispatching
h_send0:
    ldi  r15, r10, NI_NEXTMSGIP
    .region processing
    ldi  r9, r10, NI_I0 | NI_NEXT
    .region dispatching
    jmp  r15
    .region work
    add  r2, r9, r0            ; the thread's first use of its FP

    .region dispatching
h_send1:
    ldi  r15, r10, NI_NEXTMSGIP
    .region processing
    ldi  r9, r10, NI_I0
    ldi  r6, r10, NI_I2 | NI_NEXT
    .region dispatching
    jmp  r15
    .region processing
    st   r6, r9, r0

    .region dispatching
h_send2:
    ldi  r15, r10, NI_NEXTMSGIP
    .region processing
    ldi  r9, r10, NI_I0
    ldi  r6, r10, NI_I2
    ldi  r7, r10, NI_I3 | NI_NEXT
    st   r6, r9, r0
    .region dispatching
    jmp  r15
    .region processing
    st   r7, r9, r4

    ; ------ entry ------
    .region setup
entry:
    li   r10, NI_BASE
    li   r11, NI_O2 | NI_REPLY | NI_NEXT
    addi r4, r0, 4
    li   r5, 0x4000
    sti  r5, r10, NI_IPBASE
    br   poll
    nop
)";
    return os.str();
}

/**
 * The optimized cache-mapped handlers *without* the NextMsgIp
 * overlap: every handler finishes its processing (NEXT folded into
 * the final NI access), then reads MsgIp and jumps.  The MsgIp read
 * happens after NEXT, so it reflects the new current message --
 * correct, but the load-use latency and the jump's delay slot are
 * fully exposed, which is exactly the cost the NextMsgIp register
 * exists to hide (Section 2.2.3).
 */
std::string
cacheOptHandlersNoOverlap()
{
    // The dispatch tail shared by every handler.
    auto tail = [] {
        return std::string(
            "    .region dispatching\n"
            "    ldi  r15, r10, NI_MSGIP\n"
            "    jmp  r15\n"
            "    nop\n");
    };

    std::ostringstream os;
    os << R"(
    ; ------ optimized cache-mapped handlers, no dispatch overlap ------
    .org 0x4000

    .region dispatching
poll:
    ldi  r15, r10, NI_MSGIP
    jmp  r15
    nop
)" << slotAlign << R"(
    .region exception
exc:
    halt
)" << slotAlign << R"(
    .region processing
h_read:
    ldi  r5, r10, NI_I0
    ld   r6, r5, r0
    st   r6, r10, r11          ; o2 + SEND-reply + NEXT
)" << tail() << slotAlign << R"(
    .region processing
h_write:
    ldi  r5, r10, NI_I0
    ldi  r6, r10, NI_I1 | NI_NEXT
    st   r6, r5, r0
)" << tail() << slotAlign << R"(
    .region processing
h_pread:
    ldi  r5, r10, NI_I0
    ldi  r7, r10, NI_I1
    ldi  r8, r10, NI_I2
    ld   r6, r5, r0
    ld   r9, r5, r4
    addi r2, r6, -TAG_FULL
    bnez r2, nopread_slow
    nop
    st   r9, r10, r11
)" << tail() << R"(
nopread_slow:
    .region processing
    ldi  r2, r0, ALLOC_PTR
    addi r3, r2, DN_SIZE
    sti  r3, r0, ALLOC_PTR
    sti  r7, r2, DN_FP
    bnez r6, nopread_defer
    sti  r8, r2, DN_IP
    sti  r0, r2, DN_NEXT
    br   nopread_link
    nop
nopread_defer:
    sti  r9, r2, DN_NEXT
nopread_link:
    sti  r2, r5, IS_VALUE
    addi r3, r0, TAG_DEFERRED
    sti  r3, r5, IS_TAG
    ldi  r0, r10, NI_NEXT
)" << tail() << slotAlign << R"(
    .region processing
h_pwrite:
    ldi  r5, r10, NI_I0
    ldi  r7, r10, NI_I1
    ldi  r8, r10, NI_I2
    ld   r6, r5, r4
    ld   r2, r5, r0
    sti  r8, r5, IS_VALUE
    addi r3, r0, TAG_FULL
    sti  r3, r5, IS_TAG
    beqz r7, nopwrite_chk
    sti  r7, r10, NI_O0
    ldi  r0, r10, NI_SEND | NI_TYPE*T_ACK
nopwrite_chk:
    addi r3, r2, -TAG_DEFERRED
    bnez r3, nopwrite_done
    nop
nopwrite_loop:
    ldi  r2, r6, DN_FP
    ldi  r3, r6, DN_IP
    sti  r2, r10, NI_O0
    sti  r3, r10, NI_O1
    ldi  r0, r10, NI_FWD
    ldi  r6, r6, DN_NEXT
    bnez r6, nopwrite_loop
    nop
nopwrite_done:
    ldi  r0, r10, NI_NEXT
)" << tail() << slotAlign << R"(
    .region processing
h_ack:
    ldi  r5, r10, NI_I0
    ld   r6, r5, r0
    addi r6, r6, -1
    st   r6, r5, r0
    ldi  r0, r10, NI_NEXT
)" << tail() << slotAlign;

    for (int s = 7; s <= 14; ++s)
        os << "    halt\n" << slotAlign;

    os << R"(
h_stop:
    halt
)" << slotAlign << optVariantBanks(false, false) << R"(
    ; ------ type-0 (Send) inlets ------
    .region processing
h_send0:
    ldi  r9, r10, NI_I0 | NI_NEXT
)" << tail() << R"(
    .region processing
h_send1:
    ldi  r9, r10, NI_I0
    ldi  r6, r10, NI_I2 | NI_NEXT
    st   r6, r9, r0
)" << tail() << R"(
    .region processing
h_send2:
    ldi  r9, r10, NI_I0
    ldi  r6, r10, NI_I2
    ldi  r7, r10, NI_I3 | NI_NEXT
    st   r6, r9, r0
    st   r7, r9, r4
)" << tail() << R"(
    ; ------ entry ------
    .region setup
entry:
    li   r10, NI_BASE
    li   r11, NI_O2 | NI_REPLY | NI_NEXT
    addi r4, r0, 4
    li   r5, 0x4000
    sti  r5, r10, NI_IPBASE
    br   poll
    nop
)";
    return os.str();
}

/** Software poll-and-dispatch tail for the basic register model
 *  (Figure 5, lines 1-6).  With @p sw_checks the tail also tests the
 *  queue-threshold bits of STATUS (Section 2.2.4). */
std::string
regBasicDispTail(const std::string &tag, bool sw_checks)
{
    std::ostringstream os;
    os << "    .region dispatching\n"
       << "disp_" << tag << ":\n"
       << "    and  r5, status, r12\n"
       << "    beqz r5, disp_" << tag << "\n"
       << "    slli r6, i4, 2\n";         // delay slot: table offset
    if (sw_checks) {
        os << "    and  r7, status, r11\n"
           << "    bnez r7, qfull\n";
        // Delay slot holds the table load (harmless when branching).
    }
    os << "    ld   r7, r13, r6\n"
       << "    jmp  r7\n"
       << "    nop\n";
    return os.str();
}

/** Software poll-and-dispatch tail for the basic cache models. */
std::string
cacheBasicDispTail(const std::string &tag, bool sw_checks)
{
    std::ostringstream os;
    os << "    .region dispatching\n"
       << "disp_" << tag << ":\n"
       << "    ldi  r5, r10, NI_STATUS\n"
       << "    ldi  r6, r10, NI_I4\n";
    if (sw_checks) {
        os << "    and  r8, r5, r11\n"
           << "    bnez r8, qfull\n";
    }
    os << "    and  r5, r5, r12\n"
       << "    beqz r5, disp_" << tag << "\n"
       << "    slli r6, r6, 2\n"          // delay slot
       << "    ld   r7, r13, r6\n"
       << "    jmp  r7\n"
       << "    nop\n";
    return os.str();
}

/** Emit code to fill the software dispatch table (basic models). */
std::string
basicTableInit()
{
    struct Entry { unsigned id; const char *label; };
    static const Entry entries[] = {
        {0, "hb_send0"}, {7, "hb_send1"}, {8, "hb_send2"},
        {2, "hb_read"}, {3, "hb_write"}, {4, "hb_pread"},
        {5, "hb_pwrite"}, {6, "hb_ack"}, {15, "hb_stop"},
    };
    std::ostringstream os;
    for (const auto &e : entries) {
        os << "    li   r2, " << e.label << "\n"
           << "    sti  r2, r13, " << e.id * 4 << "\n";
    }
    return os.str();
}

/** The basic register-mapped handler set. */
std::string
regBasicHandlers(bool sw_checks)
{
    std::ostringstream os;
    os << R"(
    ; ------ basic register-mapped handlers ------
    ; r12 = msg-valid mask, r13 = dispatch table, r4 = 4
    .org 0x4000
    .region setup
entry:
    li   r12, ST_MSGVALID
    li   r11, ST_IAFULL | ST_OAFULL
    li   r13, DISPATCH_TABLE
    addi r4, r0, 4
)" << basicTableInit() << R"(
    br   disp_poll
    nop
)" << regBasicDispTail("poll", sw_checks) << R"(
    ; READ: copy the continuation, set the reply id, fused load+send.
    .region processing
hb_read:
    add  o0, i1, r0
    add  o1, i2, r0
    addi o4, r0, T_SEND
    ld   o2, i0, r0 !send !next
)" << regBasicDispTail("read", sw_checks) << R"(
    .region processing
hb_write:
    st   i1, i0, r0 !next
)" << regBasicDispTail("write", sw_checks) << R"(
    .region processing
hb_send0:
    add  r9, i0, r0 !next
)" << regBasicDispTail("send0", sw_checks) << R"(
    .region processing
hb_send1:
    add  r9, i0, r0
    st   i2, r9, r0 !next
)" << regBasicDispTail("send1", sw_checks) << R"(
    .region processing
hb_send2:
    add  r9, i0, r0
    st   i2, r9, r0
    st   i3, r9, r4 !next
)" << regBasicDispTail("send2", sw_checks) << R"(
    .region processing
hb_pread:
    ld   r5, i0, r0
    ld   r6, i0, r4
    addi r7, r5, -TAG_FULL
    beqz r7, bpread_full
    nop
    ; EMPTY or DEFERRED (same code as optimized: no reply to build).
    ldi  r8, r0, ALLOC_PTR
    addi r7, r8, DN_SIZE
    sti  r7, r0, ALLOC_PTR
    st   i1, r8, r0
    bnez r5, bpread_defer
    sti  i2, r8, DN_IP
    sti  r0, r8, DN_NEXT
    br   bpread_link
    nop
bpread_defer:
    sti  r6, r8, DN_NEXT
bpread_link:
    sti  r8, i0, IS_VALUE
    addi r7, r0, TAG_DEFERRED
    st   r7, i0, r0 !next
)" << regBasicDispTail("pread_slow", sw_checks) << R"(
    .region processing
bpread_full:
    add  o0, i1, r0
    add  o1, i2, r0
    addi o4, r0, T_SEND
    add  o2, r6, r0 !send !next
)" << regBasicDispTail("pread_full", sw_checks) << R"(
    .region processing
hb_pwrite:
    ld   r5, i0, r0
    ld   r6, i0, r4
    st   i2, i0, r4
    addi r7, r0, TAG_FULL
    st   r7, i0, r0
    beqz i1, bpwrite_chk
    add  o0, i1, r0
    addi o4, r0, T_ACK
    send
bpwrite_chk:
    addi r7, r5, -TAG_DEFERRED
    bnez r7, bpwrite_done
    nop
    add  o2, i2, r0            ; value persists across sends
    addi o4, r0, T_SEND
bpwrite_loop:
    ldi  o0, r6, DN_FP
    ldi  o1, r6, DN_IP
    send
    ldi  r6, r6, DN_NEXT
    bnez r6, bpwrite_loop
    nop
bpwrite_done:
    next
)" << regBasicDispTail("pwrite", sw_checks) << R"(
    .region processing
hb_ack:
    ld   r5, i0, r0
    addi r5, r5, -1
    st   r5, i0, r0 !next
)" << regBasicDispTail("ack", sw_checks) << R"(
hb_stop:
    halt
)";
    if (sw_checks) {
        // A queue crossed its threshold: a real runtime would shed
        // load here (Section 2.2.4); the measurement harness never
        // triggers it.  Only emitted when the dispatch tails test the
        // threshold bits, so there is no unreferenced code otherwise.
        os << "qfull:\n    halt\n";
    }
    return os.str();
}

/** The basic cache-mapped handler set. */
std::string
cacheBasicHandlers(bool sw_checks)
{
    std::ostringstream os;
    os << R"(
    ; ------ basic cache-mapped handlers ------
    ; r10 = NI_BASE, r12 = msg-valid mask, r13 = table, r4 = 4,
    ; r14 = generic reply id (T_SEND)
    .org 0x4000
    .region setup
entry:
    li   r10, NI_BASE
    li   r12, ST_MSGVALID
    li   r11, ST_IAFULL | ST_OAFULL
    li   r13, DISPATCH_TABLE
    addi r4, r0, 4
    addi r14, r0, T_SEND
)" << basicTableInit() << R"(
    br   disp_poll
    nop
)" << cacheBasicDispTail("poll", sw_checks) << R"(
    ; READ (Figure 5): copy continuation, load value, id, send, next.
    .region processing
hb_read:
    ldi  r5, r10, NI_I1        ; reply FP
    ldi  r6, r10, NI_I2        ; reply IP
    ldi  r7, r10, NI_I0        ; address
    sti  r5, r10, NI_O0
    sti  r6, r10, NI_O1
    ld   r8, r7, r0            ; value
    sti  r8, r10, NI_O2
    sti  r14, r10, NI_O4 | NI_SEND | NI_NEXT
)" << cacheBasicDispTail("read", sw_checks) << R"(
    .region processing
hb_write:
    ldi  r5, r10, NI_I0
    ldi  r6, r10, NI_I1 | NI_NEXT
    st   r6, r5, r0
)" << cacheBasicDispTail("write", sw_checks) << R"(
    .region processing
hb_send0:
    ldi  r9, r10, NI_I0 | NI_NEXT
)" << cacheBasicDispTail("send0", sw_checks) << R"(
    .region processing
hb_send1:
    ldi  r9, r10, NI_I0
    ldi  r6, r10, NI_I2 | NI_NEXT
    st   r6, r9, r0
)" << cacheBasicDispTail("send1", sw_checks) << R"(
    .region processing
hb_send2:
    ldi  r9, r10, NI_I0
    ldi  r6, r10, NI_I2
    ldi  r7, r10, NI_I3 | NI_NEXT
    st   r6, r9, r0
    st   r7, r9, r4
)" << cacheBasicDispTail("send2", sw_checks) << R"(
    .region processing
hb_pread:
    ldi  r5, r10, NI_I0        ; element
    ldi  r7, r10, NI_I1        ; FP
    ldi  r8, r10, NI_I2        ; IP
    ld   r6, r5, r0            ; tag
    ld   r9, r5, r4            ; value / head
    addi r2, r6, -TAG_FULL
    beqz r2, cbpread_full
    nop
    ldi  r2, r0, ALLOC_PTR
    addi r3, r2, DN_SIZE
    sti  r3, r0, ALLOC_PTR
    sti  r7, r2, DN_FP
    bnez r6, cbpread_defer
    sti  r8, r2, DN_IP
    sti  r0, r2, DN_NEXT
    br   cbpread_link
    nop
cbpread_defer:
    sti  r9, r2, DN_NEXT
cbpread_link:
    sti  r2, r5, IS_VALUE
    addi r3, r0, TAG_DEFERRED
    sti  r3, r5, IS_TAG
    ldi  r0, r10, NI_NEXT
)" << cacheBasicDispTail("pread_slow", sw_checks) << R"(
    .region processing
cbpread_full:
    sti  r7, r10, NI_O0
    sti  r8, r10, NI_O1
    sti  r9, r10, NI_O2
    sti  r14, r10, NI_O4 | NI_SEND | NI_NEXT
)" << cacheBasicDispTail("pread_full", sw_checks) << R"(
    .region processing
hb_pwrite:
    ldi  r5, r10, NI_I0
    ldi  r7, r10, NI_I1        ; ack word
    ldi  r8, r10, NI_I2        ; value
    ld   r6, r5, r4            ; old head
    ld   r2, r5, r0            ; tag
    sti  r8, r5, IS_VALUE
    addi r3, r0, TAG_FULL
    sti  r3, r5, IS_TAG
    beqz r7, cbpwrite_chk
    sti  r7, r10, NI_O0
    addi r3, r0, T_ACK
    sti  r3, r10, NI_O4 | NI_SEND
cbpwrite_chk:
    addi r3, r2, -TAG_DEFERRED
    bnez r3, cbpwrite_done
    nop
    sti  r8, r10, NI_O2        ; value persists across sends
    sti  r14, r10, NI_O4       ; generic reply id
cbpwrite_loop:
    ldi  r2, r6, DN_FP
    ldi  r3, r6, DN_IP
    sti  r2, r10, NI_O0
    sti  r3, r10, NI_O1
    ldi  r0, r10, NI_SEND
    ldi  r6, r6, DN_NEXT
    bnez r6, cbpwrite_loop
    nop
cbpwrite_done:
    ldi  r0, r10, NI_NEXT
)" << cacheBasicDispTail("pwrite", sw_checks) << R"(
    .region processing
hb_ack:
    ldi  r5, r10, NI_I0
    ld   r6, r5, r0
    addi r6, r6, -1
    st   r6, r5, r0
    ldi  r0, r10, NI_NEXT
)" << cacheBasicDispTail("ack", sw_checks) << R"(
hb_stop:
    halt
)";
    if (sw_checks)
        os << "qfull:\n    halt\n";
    return os.str();
}

/**
 * The On-NI (HPU) optimized handler set.  The HPU is permanently
 * register-coupled to its interface, so the fast paths are exactly the
 * optimized register-mapped handlers: one-cycle dispatch through MsgIp
 * with the final processing instruction in the jmp delay slot.  What
 * changes is the sPIN-style division of labor: anything that builds or
 * walks the deferred-reader lists (unbounded pointer-chasing work)
 * escapes to the host through the proxy ring -- a single store to
 * HPU_PROXY (pinned in r3 by setup) ships the message's effective id
 * and input words to the host service loop (hostProxyProgram), keeping
 * every handler's on-NI occupancy within the policy's handler-time
 * budget.
 */
std::string
hpuOptHandlers()
{
    std::ostringstream os;
    os << R"(
    ; ------ optimized On-NI (HPU) handler table ------
    .org 0x4000

    ; slot 0: poll/idle -- spin on MsgIp until a message dispatches.
    .region dispatching
poll:
    jmp  msgip
    nop
)" << slotAlign << R"(
    ; slot 1: exception handler.
    .region exception
exc:
    halt
)" << slotAlign << R"(
    ; slot 2: READ -- the paper's two-instruction remote read.
    .region dispatching
h_read:
    jmp  nextmsgip
    .region processing
    ld   o2, i0, r0 !reply=0 !next
)" << slotAlign << R"(
    ; slot 3: WRITE.
    .region dispatching
h_write:
    jmp  nextmsgip
    .region processing
    st   i1, i0, r0 !next
)" << slotAlign << R"(
    ; slot 4: PREAD.  i0 = element, i1 = FP, i2 = IP.
    .region processing
h_pread:
    ld   r5, i0, r0            ; tag
    ld   r6, i0, r4            ; value / deferred-list head
    addi r7, r5, -TAG_FULL
    bnez r7, pread_slow
    add  o2, r6, r0            ; delay: value into o2 (harmless if slow)
    ; FULL: reply (i1,i2 head the message via REPLY mode).
    .region dispatching
    jmp  nextmsgip
    .region processing
    reply 0 !next
pread_slow:
    ; EMPTY or DEFERRED: parking this reader on the deferred list is
    ; host work -- post the message to the proxy ring and move on.
    .region dispatching
    jmp  nextmsgip
    .region processing
    st   r0, r3, r0 !next
)" << slotAlign << R"(
    ; slot 5: PWRITE.  i0 = element, i1 = ack word, i2 = value.
    ; Every PWRITE escapes: the host proxy is the *single writer* of
    ; I-structure state, so an HPU-side fill could never race a park
    ; the host is executing concurrently.  The ring is FIFO, which
    ; serializes this PWrite behind any PRead it raced on the wire.
    .region dispatching
h_pwrite:
    jmp  nextmsgip
    .region processing
    st   r0, r3, r0 !next
)" << slotAlign << R"(
    ; slot 6: ACK -- decrement the addressed completion counter.
    .region processing
h_ack:
    ld   r5, i0, r0
    addi r5, r5, -1
    .region dispatching
    jmp  nextmsgip
    .region processing
    st   r5, i0, r0 !next
)" << slotAlign;

    // Slots 7..13: unassigned types halt loudly.
    for (int s = 7; s <= 13; ++s)
        os << "    halt\n" << slotAlign;

    os << R"(
    ; slot 14: the ESCAPE type, dispatched through a software table
    ; exactly as on the register-mapped optimized model.
    .region dispatching
h_escape:
    slli r5, i4, 2
    ld   r6, r13, r5           ; r13 = escape table base (setup)
    jmp  r6
    nop
)" << slotAlign << R"(
    ; slot 15: STOP -- tell the host service loop to halt, then stop.
    .region processing
h_stop:
    sti  r0, r3, 0
    halt
)" << slotAlign << optVariantBanks(true, true) << R"(
    ; ------ escape-dispatched handlers (identifiers >= 16) ------
    ; id 0 in the escape table: store word 2 at the address in word 1.
    .region processing
h_esc_poke:
    st   i2, i1, r0 !next
    .region dispatching
    jmp  nextmsgip
    nop

    ; ------ type-0 (Send) inlets, dispatched through word 1 ------
    .region dispatching
h_send0:
    jmp  nextmsgip
    .region processing
    add  r9, i0, r0 !next      ; frame pointer into the thread register

    .region processing
h_send1:
    add  r9, i0, r0
    .region dispatching
    jmp  nextmsgip
    .region processing
    st   i2, r9, r0 !next      ; data word 0 into the frame

    .region processing
h_send2:
    add  r9, i0, r0
    st   i2, r9, r0
    .region dispatching
    jmp  nextmsgip
    .region processing
    st   i3, r9, r4 !next      ; data word 1

    ; ------ entry ------
    .region setup
entry:
    li   ipbase, 0x4000
    addi r4, r0, 4
    li   r3, HPU_PROXY
    ; escape dispatch table: one entry so far
    li   r13, ESC_TABLE
    li   r2, h_esc_poke
    sti  r2, r13, 0
    br   poll
    nop
)";
    return os.str();
}

/** The basic On-NI (HPU) handler set: the basic register-mapped
 *  handlers with the same host-proxy escapes as hpuOptHandlers(). */
std::string
hpuBasicHandlers(bool sw_checks)
{
    std::ostringstream os;
    os << R"(
    ; ------ basic On-NI (HPU) handlers ------
    ; r12 = msg-valid mask, r13 = dispatch table, r4 = 4, r3 = proxy
    .org 0x4000
    .region setup
entry:
    li   r12, ST_MSGVALID
    li   r11, ST_IAFULL | ST_OAFULL
    li   r13, DISPATCH_TABLE
    li   r3, HPU_PROXY
    addi r4, r0, 4
)" << basicTableInit() << R"(
    br   disp_poll
    nop
)" << regBasicDispTail("poll", sw_checks) << R"(
    ; READ: copy the continuation, set the reply id, fused load+send.
    .region processing
hb_read:
    add  o0, i1, r0
    add  o1, i2, r0
    addi o4, r0, T_SEND
    ld   o2, i0, r0 !send !next
)" << regBasicDispTail("read", sw_checks) << R"(
    .region processing
hb_write:
    st   i1, i0, r0 !next
)" << regBasicDispTail("write", sw_checks) << R"(
    .region processing
hb_send0:
    add  r9, i0, r0 !next
)" << regBasicDispTail("send0", sw_checks) << R"(
    .region processing
hb_send1:
    add  r9, i0, r0
    st   i2, r9, r0 !next
)" << regBasicDispTail("send1", sw_checks) << R"(
    .region processing
hb_send2:
    add  r9, i0, r0
    st   i2, r9, r0
    st   i3, r9, r4 !next
)" << regBasicDispTail("send2", sw_checks) << R"(
    .region processing
hb_pread:
    ld   r5, i0, r0
    ld   r6, i0, r4
    addi r7, r5, -TAG_FULL
    beqz r7, bpread_full
    nop
    ; EMPTY or DEFERRED: parking this reader is host work.
    st   r0, r3, r0 !next
)" << regBasicDispTail("pread_slow", sw_checks) << R"(
    .region processing
bpread_full:
    add  o0, i1, r0
    add  o1, i2, r0
    addi o4, r0, T_SEND
    add  o2, r6, r0 !send !next
)" << regBasicDispTail("pread_full", sw_checks) << R"(
    .region processing
hb_pwrite:
    ; Every PWRITE escapes: the host proxy is the single writer of
    ; I-structure state (see hpuOptHandlers).
    st   r0, r3, r0 !next
)" << regBasicDispTail("pwrite", sw_checks) << R"(
    .region processing
hb_ack:
    ld   r5, i0, r0
    addi r5, r5, -1
    st   r5, i0, r0 !next
)" << regBasicDispTail("ack", sw_checks) << R"(
    .region processing
hb_stop:
    sti  r0, r3, 0             ; tell the host service loop to halt
    halt
)";
    if (sw_checks)
        os << "qfull:\n    halt\n";
    return os.str();
}

} // namespace

std::string
handlerProgram(const ni::Model &model, bool basic_sw_checks,
               bool no_overlap)
{
    // The policy's addressing mode is the instruction-sequence
    // selection hook: register-operand kernels for a register-file
    // coupling, load/store kernels for a memory-mapped one.  On-NI
    // models override both: the HPU is register-coupled whatever the
    // host placement looks like, and CPU-only work escapes through
    // the host-proxy ring.
    if (model.policy().handlersOnNi()) {
        return model.optimized ? hpuOptHandlers()
                               : hpuBasicHandlers(basic_sw_checks);
    }
    bool reg = model.policy().registerMapped();
    if (model.optimized) {
        if (reg)
            return regOptHandlers();
        return no_overlap ? cacheOptHandlersNoOverlap()
                          : cacheOptHandlers();
    }
    return reg ? regBasicHandlers(basic_sw_checks)
               : cacheBasicHandlers(basic_sw_checks);
}

std::string
hostProxyProgram(const ni::Model &model)
{
    // The messages the HPU escapes carry their effective id in slot
    // word 0 and the input registers in words 1..5.  The host touches
    // the interface only to send: reception belongs to the HPU, so
    // REPLY/FORWARD substitution (which reads the *current* input
    // registers, long since advanced) is unusable here -- every
    // outgoing message is a plain SEND with o0..o2 stored explicitly
    // through the cache-mapped command window.
    bool basic = !model.optimized;

    auto send_t = [&](unsigned type) {
        std::ostringstream s;
        if (basic) {
            if (type != typeSend)
                s << "    addi r1, r0, " << type << "\n";
            s << "    sti  " << (type == typeSend ? "r0" : "r1")
              << ", r10, NI_O4\n"
                 "    ldi  r0, r10, NI_SEND\n";
        } else {
            s << "    ldi  r0, r10, NI_SEND | NI_TYPE*" << type << "\n";
        }
        return s.str();
    };

    std::ostringstream os;
    os << R"(
    ; ------ host-side proxy service loop (On-NI models) ------
    ; Drains the HPU's escape ring: each slot is one message whose
    ; handler needed CPU-only work (deferred-list manipulation), or
    ; the STOP that ends the run.
    .org 0x1000
    .region host_setup
entry:
    li   r10, NI_BASE
    li   r13, HP_RING
    li   r12, HP_PI
    addi r9, r0, 0             ; consumer index
    addi r4, r0, 4
    br   hp_poll
    nop

    .region host_dispatch
hp_poll:
    ld   r1, r12, r0           ; producer index (written by the HPU)
    sub  r1, r1, r9
    beqz r1, hp_poll
    nop
    andi r2, r9, HP_RING_MASK
    slli r2, r2, 5             ; * HP_SLOT_BYTES
    add  r2, r13, r2           ; slot address
    ld   r3, r2, r0            ; effective id
    addi r5, r3, -T_PREAD
    beqz r5, hp_pread
    addi r5, r3, -T_PWRITE     ; delay: next comparison (harmless)
    beqz r5, hp_pwrite
    nop
    halt                       ; T_STOP: the ring is drained

    ; PREAD escape: slot i0 = element, i1 = FP, i2 = IP.
    .region host_proc
hp_pread:
    ldi  r5, r2, 4             ; element
    ldi  r6, r2, 8             ; reader FP
    ldi  r7, r2, 12            ; reader IP
    ld   r3, r5, r0            ; tag, re-read: may have filled in flight
    ld   r8, r5, r4            ; value / deferred-list head
    addi r1, r3, -TAG_FULL
    bnez r1, hp_pread_park
    nop
    ; a PWrite earlier in the ring filled the element: reply directly.
    sti  r6, r10, NI_O0
    sti  r7, r10, NI_O1
    sti  r8, r10, NI_O2
)" << send_t(typeSend) << R"(
    br   hp_next
    nop
hp_pread_park:
    ldi  r1, r0, ALLOC_PTR
    addi r2, r1, DN_SIZE
    sti  r2, r0, ALLOC_PTR
    st   r6, r1, r0            ; node.fp
    sti  r7, r1, DN_IP         ; node.ip
    bnez r3, hp_pread_defer    ; EMPTY lists end here,
    nop
    sti  r0, r1, DN_NEXT
    br   hp_pread_link
    nop
hp_pread_defer:
    sti  r8, r1, DN_NEXT       ; ... DEFERRED chains the old head
hp_pread_link:
    sti  r1, r5, IS_VALUE
    addi r3, r0, TAG_DEFERRED
    sti  r3, r5, IS_TAG
    br   hp_next
    nop

    ; PWRITE escape: slot i0 = element, i1 = ack word, i2 = value.
    ; Every PWRITE escapes, so the host is the single writer of
    ; I-structure state and this tag read cannot race anything.  The
    ; ring is FIFO: a PWrite that chased a PRead through the ring is
    ; consumed after the PRead's park and sees its node on the list.
    .region host_proc
hp_pwrite:
    ldi  r5, r2, 4             ; element
    ldi  r6, r2, 8             ; ack word
    ldi  r7, r2, 12            ; value
    ld   r3, r5, r0            ; tag (the host is the only writer)
    ld   r8, r5, r4            ; deferred-list head (if any)
    sti  r7, r5, IS_VALUE
    addi r1, r0, TAG_FULL
    sti  r1, r5, IS_TAG
    beqz r6, hp_pwrite_chk
    nop
    sti  r6, r10, NI_O0
)" << send_t(typeAck) << R"(
hp_pwrite_chk:
    addi r3, r3, -TAG_DEFERRED
    bnez r3, hp_next           ; EMPTY or FULL: nobody parked
    nop
    ; forward the value to every parked reader.
    sti  r7, r10, NI_O2        ; value persists across sends
hp_pwrite_loop:
    ldi  r1, r8, DN_FP
    ldi  r3, r8, DN_IP
    sti  r1, r10, NI_O0
    sti  r3, r10, NI_O1
)" << send_t(typeSend) << R"(
    ldi  r8, r8, DN_NEXT
    bnez r8, hp_pwrite_loop
    nop

    .region host_dispatch
hp_next:
    addi r9, r9, 1
    sti  r9, r0, HP_CI         ; publish consumption to the HPU
    br   hp_poll
    nop
)";
    return os.str();
}

namespace
{

/** Sender-side message field values (destination is node 1). */
struct SendFields
{
    // Preloaded into r5..r8 by the setup code.
    uint64_t v5, v6, v7, v8;
};

SendFields
fieldsFor(Kind k)
{
    const uint64_t dest_frame = (1ull << 24) | 0x2000;  // FP on node 1
    const uint64_t dest_addr = (1ull << 24) | 0x2100;
    const uint64_t elem_base = (1ull << 24) | 0x2200;
    const uint64_t ack_word = 0;    // no ack by default
    switch (k) {
      case Kind::send0:
      case Kind::send1:
      case Kind::send2:
        // FP, IP, data, data.
        return {dest_frame, 0x9000, 0x1234, 0x5678};
      case Kind::read:
      case Kind::write:
        // addr, FP/value, IP.
        return {dest_addr, dest_frame, 0x9000, 0};
      case Kind::pread:
        // element base, offset, FP, IP.
        return {elem_base, 8, dest_frame, 0x9000};
      case Kind::pwrite:
        // element, ack, value.
        return {elem_base, ack_word, 0x4242, 0};
    }
    return {};
}

/** Per-message composition for the register-mapped models. */
std::string
regSendBody(Kind k, bool basic)
{
    std::ostringstream os;
    auto id_line = [&]() {
        if (basic)
            os << "    addi o4, r0, " << basicId(k) << "\n";
    };
    // `!send` carries the type on optimized models and is ignored on
    // basic ones.
    auto send_t = [&](unsigned type) {
        return std::string(" !send=") + std::to_string(basic ? 0 : type);
    };

    switch (k) {
      case Kind::send0:
        id_line();
        os << "    add  o0, r5, r0\n"
           << "    add  o1, r6, r0" << send_t(typeSend) << "\n";
        break;
      case Kind::send1:
        id_line();
        os << "    add  o0, r5, r0\n"
           << "    add  o1, r6, r0\n"
           << "    add  o2, r7, r0" << send_t(typeSend) << "\n";
        break;
      case Kind::send2:
        id_line();
        os << "    add  o0, r5, r0\n"
           << "    add  o1, r6, r0\n"
           << "    add  o2, r7, r0\n"
           << "    add  o3, r8, r0" << send_t(typeSend) << "\n";
        break;
      case Kind::read:
        id_line();
        os << "    add  o0, r5, r0\n"
           << "    add  o1, r6, r0\n"
           << "    add  o2, r7, r0" << send_t(typeRead) << "\n";
        break;
      case Kind::write:
        id_line();
        os << "    add  o0, r5, r0\n"
           << "    add  o1, r6, r0" << send_t(typeWrite) << "\n";
        break;
      case Kind::pread:
        id_line();
        os << "    add  r3, r5, r6\n"      // element address compute
           << "    add  o0, r3, r0\n"
           << "    add  o1, r7, r0\n"
           << "    add  o2, r8, r0" << send_t(typePRead) << "\n";
        break;
      case Kind::pwrite:
        id_line();
        os << "    add  o0, r5, r0\n"
           << "    add  o1, r6, r0\n"
           << "    add  o2, r7, r0" << send_t(typePWrite) << "\n";
        break;
    }
    return os.str();
}

/** Per-message composition for the cache-mapped models. */
std::string
cacheSendBody(Kind k, bool basic)
{
    std::ostringstream os;
    unsigned type = 0;
    switch (k) {
      case Kind::send0: case Kind::send1: case Kind::send2:
        type = typeSend;
        break;
      case Kind::read: type = typeRead; break;
      case Kind::write: type = typeWrite; break;
      case Kind::pread: type = typePRead; break;
      case Kind::pwrite: type = typePWrite; break;
    }

    auto store = [&](const char *src, const char *reg) {
        os << "    sti  " << src << ", r10, " << reg << "\n";
    };

    switch (k) {
      case Kind::send0:
        store("r5", "NI_O0");
        store("r6", "NI_O1");
        break;
      case Kind::send1:
        store("r5", "NI_O0");
        store("r6", "NI_O1");
        store("r7", "NI_O2");
        break;
      case Kind::send2:
        store("r5", "NI_O0");
        store("r6", "NI_O1");
        store("r7", "NI_O2");
        store("r8", "NI_O3");
        break;
      case Kind::read:
        store("r5", "NI_O0");
        store("r6", "NI_O1");
        store("r7", "NI_O2");
        break;
      case Kind::write:
        store("r5", "NI_O0");
        store("r6", "NI_O1");
        break;
      case Kind::pread:
        os << "    add  r3, r5, r6\n";     // element address compute
        store("r3", "NI_O0");
        store("r7", "NI_O1");
        store("r8", "NI_O2");
        break;
      case Kind::pwrite:
        store("r5", "NI_O0");
        store("r6", "NI_O1");
        store("r7", "NI_O2");
        break;
    }

    if (basic) {
        bool is_send_kind = k == Kind::send0 || k == Kind::send1 ||
                            k == Kind::send2;
        if (is_send_kind) {
            // The generic id stays hot in r14.
            os << "    sti  r14, r10, NI_O4\n";
        } else {
            os << "    addi r2, r0, " << basicId(k) << "\n"
               << "    sti  r2, r10, NI_O4\n";
        }
        os << "    ldi  r0, r10, NI_SEND\n";
    } else {
        os << "    ldi  r0, r10, NI_SEND | NI_TYPE*" << type << "\n";
    }
    return os.str();
}

} // namespace

std::string
senderProgram(const ni::Model &model, Kind kind, unsigned count)
{
    bool reg = model.policy().registerMapped();
    bool basic = !model.optimized;
    SendFields f = fieldsFor(kind);

    std::ostringstream os;
    os << "    .org 0x1000\n"
       << "    .region setup\n"
       << "entry:\n";
    if (!reg)
        os << "    li   r10, NI_BASE\n";
    if (basic && !reg)
        os << "    addi r14, r0, " << basicId(Kind::send0) << "\n";
    os << "    li   r5, " << f.v5 << "\n"
       << "    li   r6, " << f.v6 << "\n"
       << "    li   r7, " << f.v7 << "\n"
       << "    li   r8, " << f.v8 << "\n"
       << "    lis  r1, " << count << "\n"
       << "loop:\n"
       << "    .region sending\n"
       << (reg ? regSendBody(kind, basic) : cacheSendBody(kind, basic))
       << "    .region loop\n"
       << "    addi r1, r1, -1\n"
       << "    bnez r1, loop\n"
       << "    nop\n"
       << "    halt\n";
    return os.str();
}

std::vector<CorpusJob>
kernelCorpus(const ni::Model &model)
{
    std::vector<CorpusJob> jobs;

    if (model.optimized) {
        jobs.push_back({"handlers", handlerProgram(model), true});
        // The no-overlap variant exists only for the cache-mapped
        // host kernels; On-NI handlers are register-coupled.
        if (!model.policy().registerMapped() &&
            !model.policy().handlersOnNi()) {
            jobs.push_back({"handlers-no-overlap",
                            handlerProgram(model, false, true), true});
        }
    } else {
        jobs.push_back({"handlers", handlerProgram(model, false), true});
        jobs.push_back({"handlers-sw-checks",
                        handlerProgram(model, true), true});
    }

    static const Kind kinds[] = {
        Kind::send0, Kind::send1, Kind::send2, Kind::read, Kind::write,
        Kind::pread, Kind::pwrite,
    };
    for (Kind k : kinds) {
        jobs.push_back({"send-" + kindName(k),
                        senderProgram(model, k, 4), false});
    }
    return jobs;
}

} // namespace msg
} // namespace tcpni
