/**
 * @file
 * Message-protocol conventions built on the paper's architecture.
 *
 * The paper evaluates the message types needed "to communicate
 * arguments and results between procedures, to access remote memory,
 * and to access remote memory with presence bits" (Section 4.1).  We
 * assign them 4-bit type codes (optimized interfaces) which double as
 * the 32-bit message ids carried in word 4 by the basic interfaces:
 *
 *   SEND (0)  -- general thread invocation (the paper's Send / *T
 *                Start message).  w0 = FP (global frame pointer; its
 *                high bits address the destination node), w1 = IP of
 *                the inlet/thread, w2..w3 = 0..2 data words.  Replies
 *                to every other request are SEND messages, which is
 *                why type 0 gets the Figure-7 word-1 dispatch shortcut.
 *   READ (2)  -- remote read request (Figure 3): w0 = global address,
 *                w1 = reply FP, w2 = reply IP.
 *   WRITE (3) -- remote write: w0 = global address, w1 = value.
 *   PREAD (4) -- I-structure read: w0 = global element address,
 *                w1 = reply FP, w2 = reply IP.
 *   PWRITE (5)-- I-structure write: w0 = global element address,
 *                w1 = value, w2 = ack word (global address of a
 *                completion counter on the writer's node; 0 = no ack).
 *   ACK (6)   -- PWRITE completion: w0 = global counter address.
 *                The handler decrements the addressed counter.
 *   STOP (15) -- harness control: the handler loop halts.
 *
 * Type 1 is reserved for the exception handler (Section 2.2.4).
 *
 * I-structure storage layout (walked by the PREAD/PWRITE handler
 * assembly): each element is two words,
 *
 *   +0  tag    (0 = EMPTY, 1 = FULL, 2 = DEFERRED)
 *   +4  value  (FULL) or head of the deferred-reader list (DEFERRED)
 *
 * A deferred-reader node is three words: +0 FP, +4 IP, +8 next (0 ends
 * the list).  Nodes come from a bump allocator whose free pointer
 * lives at the fixed local address allocPtrAddr.
 */

#ifndef TCPNI_MSG_PROTOCOL_HH
#define TCPNI_MSG_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sim/types.hh"

namespace tcpni
{
namespace msg
{

/** Protocol message types (optimized) / message ids (basic). */
enum MsgType : uint8_t
{
    typeSend = 0,
    typeExc = 1,        //!< reserved (Section 2.2.4)
    typeRead = 2,
    typeWrite = 3,
    typePRead = 4,
    typePWrite = 5,
    typeAck = 6,
    /** Section 2.2.1's "escape" type: the real (32-bit) identifier
     *  rides in word 4 and the handler dispatches through a software
     *  table, like the basic architecture. */
    typeEscape = 14,
    typeStop = 15,
};

/** Local address of the escape-type software dispatch table. */
constexpr Addr escapeTableAddr = 0x140;

/** @{ I-structure element layout (bytes). */
constexpr Word istructTagOffset = 0;
constexpr Word istructValueOffset = 4;
constexpr Word istructElemSize = 8;

constexpr Word tagEmpty = 0;
constexpr Word tagFull = 1;
constexpr Word tagDeferred = 2;
/** @} */

/** @{ Deferred-reader node layout (bytes). */
constexpr Word defNodeFpOffset = 0;
constexpr Word defNodeIpOffset = 4;
constexpr Word defNodeNextOffset = 8;
constexpr Word defNodeSize = 12;
/** @} */

/** Local address of the deferred-node bump-allocator free pointer. */
constexpr Addr allocPtrAddr = 0x80;

/** Local address of the software dispatch table used by the basic
 *  (no-MsgIp) handler loops: 16 words of handler addresses indexed by
 *  the 32-bit message id in word 4. */
constexpr Addr basicDispatchTable = 0x100;

/**
 * @{ Host-proxy escape path of the on-NI placement (src/hpu).
 *
 * HPU handlers must stay short and loop-free (the handler-time
 * budget), so CPU-only work -- the deferred-reader list walks of
 * PREAD/PWRITE -- escapes to the host: the handler stores once to the
 * magic hpuProxyAddr and the HPU posts the current message (its
 * effective id plus input words 0..4) into a ring of
 * hostRingSlots x hostRingSlotBytes bytes in node memory at
 * hostRingBase.  The HPU-owned producer index lives at
 * hostRingPiAddr; the host-kernel-owned consumer index at
 * hostRingCiAddr.  The host proxy kernel polls the indices, replays
 * the slot through the ordinary protocol handlers, and replies with
 * plain SENDs through its own (cache-mapped) view of the interface.
 */
constexpr Word hpuProxyAddr = 0xfffe0000u;
constexpr Addr hostRingBase = 0x8000;
constexpr unsigned hostRingSlots = 64;
constexpr unsigned hostRingSlotBytes = 32;
constexpr Addr hostRingPiAddr = 0x7f00;
constexpr Addr hostRingCiAddr = 0x7f04;
/** @} */

/**
 * Message-length contract for one protocol type: which word indices a
 * handler for that type is entitled (and required) to consume.  The
 * static verifier checks handler kernels against this table; keep it
 * in sync with the header comment above when adding types.
 */
struct TypeContract
{
    bool live = false;      //!< type the shipped kernels must handle
    unsigned minWords = 0;  //!< shortest meaningful payload (words)
    unsigned maxWords = 0;  //!< longest meaningful payload (words)
};

/** Contract for a 4-bit type code.  Non-protocol types are not live. */
constexpr TypeContract
typeContract(unsigned type)
{
    switch (type) {
      case typeSend:
        // w0 = FP, w1 = IP, w2..w3 = 0..2 data words.
        return {true, 2, 4};
      case typeRead:
      case typePRead:
        // w0 = address, w1 = reply FP, w2 = reply IP.
        return {true, 3, 3};
      case typeWrite:
        // w0 = address, w1 = value.
        return {true, 2, 2};
      case typePWrite:
        // w0 = address, w1 = value, w2 = ack word.
        return {true, 3, 3};
      case typeAck:
        // w0 = counter address.
        return {true, 1, 1};
      case typeEscape:
        // Software-dispatched: w4 is the id; all five words may carry
        // payload.
        return {true, 0, 5};
      case typeStop:
        // Pure control; no payload.
        return {true, 0, 0};
      default:
        return {};
    }
}

/**
 * The reply a request type obliges the receiving node to produce:
 * READ/PREAD block the requester on a SEND carrying the value back to
 * the reply inlet, and a PWRITE with a non-zero ack word completes
 * with an ACK to the writer's counter.  Types without an obligation
 * (fire-and-forget SEND/WRITE, control types) return nullopt.  The
 * protocol analyzer (verify/protocol.hh) checks that every handler of
 * an obliged type emits the reply on some path, directly or through
 * the host-proxy escape.
 */
constexpr std::optional<unsigned>
replyObligation(unsigned type)
{
    switch (type) {
      case typeRead:
      case typePRead:
        return typeSend;
      case typePWrite:
        return typeAck;
      default:
        return std::nullopt;
    }
}

/** Control types: reserved/exception, software-dispatched escape, and
 *  harness stop.  Exempt from the analyzer's dead-handler check. */
constexpr bool
isControlType(unsigned type)
{
    return type == typeExc || type == typeEscape || type == typeStop;
}

/**
 * Fold a basic-model 32-bit message id onto its protocol type node.
 * Ids 7 and 8 are the SEND length variants (FP+IP plus one / two data
 * words) the basic senders use because the id word cannot also carry
 * the length; they land on the SEND handler family.
 */
constexpr unsigned
normalizeBasicId(unsigned id)
{
    return (id == 7 || id == 8) ? unsigned{typeSend} : id;
}

/**
 * Assembler symbols for the protocol constants, to be merged with
 * ni::asmSymbols() when assembling handler kernels.
 */
std::map<std::string, uint64_t> protoSymbols();

} // namespace msg
} // namespace tcpni

#endif // TCPNI_MSG_PROTOCOL_HH
