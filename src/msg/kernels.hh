/**
 * @file
 * The handler-kernel library: hand-written assembly implementing the
 * paper's message handlers for every interface model.
 *
 * Two kinds of programs are generated:
 *
 *  - handlerProgram(model): a complete message-handling server -- the
 *    dispatch machinery plus handlers for every protocol message type
 *    (Send with 0/1/2 data words, Read, Write, PRead, PWrite, Ack,
 *    Stop).  Optimized models dispatch through MsgIp / NextMsgIp with
 *    handlers living in the hardware dispatch table; basic models poll
 *    STATUS and dispatch through a software table indexed by the
 *    32-bit message id in word 4 (the Figure-5 sequence).
 *
 *  - senderProgram(model, kind, count): a loop that composes and sends
 *    `count` identical messages of the given kind, with the per-message
 *    composition instructions tagged `.region sending`.
 *
 * Every instruction is tagged with a cost region ("sending",
 * "dispatching", "processing", ...) so the Table-1 harness can measure
 * exactly the quantities the paper reports.
 *
 * Conventions (documented in EXPERIMENTS.md):
 *  - processing kernels fold SEND/NEXT commands into their final
 *    access, as the paper's optimized examples do;
 *  - sending kernels issue an explicit SEND (matching the paper's
 *    sending counts, which list the SEND as its own step);
 *  - optimized handlers hoist the NextMsgIp read to the top of the
 *    handler so the off-chip load latency is overlapped with
 *    processing (the paper's Section 2.2.3 overlap);
 *  - basic handlers inline the poll-and-dispatch tail (Figure 5,
 *    lines 1-6) at the end of each handler;
 *  - basic Send-kind messages keep the generic reply id in a register
 *    (+1 instruction vs optimized); basic memory-op requests generate
 *    a fresh id per message (+2 on cache-mapped, +1 register-mapped).
 */

#ifndef TCPNI_MSG_KERNELS_HH
#define TCPNI_MSG_KERNELS_HH

#include <map>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "ni/config.hh"

namespace tcpni
{
namespace msg
{

/** Message kinds measured in Table 1. */
enum class Kind
{
    send0,      //!< Send, 0 data words
    send1,      //!< Send, 1 data word
    send2,      //!< Send, 2 data words
    read,
    write,
    pread,
    pwrite,
};

std::string kindName(Kind k);

/** Base address of the handler program (IpBase for optimized models). */
constexpr Addr handlerBase = 0x4000;

/** Predefined assembler symbols for kernels (NI + protocol). */
std::map<std::string, uint64_t> kernelSymbols();

/**
 * The complete handler-loop server program for @p model.
 *
 * Exposed labels: `entry` (program entry point), `h_send0`, `h_send1`,
 * `h_send2` (type-0 inlet addresses to place in word 1 of Send
 * messages, optimized models only).
 *
 * @param basic_sw_checks  when true, the *basic* models' dispatch
 *   tails also check the queue thresholds in software (read STATUS,
 *   mask, branch) -- the work Section 2.2.4 argues a deployed basic
 *   interface must do on every dispatch and which the optimized
 *   MsgIp hardware folds in for free.  Table 1 keeps this off (its
 *   caption notes the comparison favors the basic models); the
 *   Figure-12 program-level expansion turns it on.
 *
 * @param no_overlap  when true, the *optimized cache-mapped* handlers
 *   dispatch the straightforward way -- NEXT first, then read MsgIp
 *   and jump -- instead of hoisting the NextMsgIp load to overlap the
 *   interface latency with processing.  Isolates the benefit of the
 *   NextMsgIp register (Section 2.2.3); measured with
 *   `bench/table1 --no-overlap`.
 */
std::string handlerProgram(const ni::Model &model,
                           bool basic_sw_checks = false,
                           bool no_overlap = false);

/**
 * A sender loop composing @p count messages of kind @p kind addressed
 * to node 1.  Values are copied from scalar registers into the message
 * (the upper end of the paper's register-mapped ranges).
 */
std::string senderProgram(const ni::Model &model, Kind kind,
                          unsigned count);

/**
 * The host-side service loop paired with the On-NI handler kernels: a
 * CPU program that drains the HPU's host-proxy ring (msg::hostRingBase
 * / hostRingPiAddr / hostRingCiAddr), performing the deferred-list
 * work the HPU escaped (PREAD parking, PWRITE reader walks) and
 * halting when the STOP message's escape arrives.  Exposed labels:
 * `entry`.  Regions are tagged `host_setup` / `host_dispatch` /
 * `host_proc` so harnesses can report host occupancy separately from
 * the HPU's "dispatching"/"processing" cycles.
 */
std::string hostProxyProgram(const ni::Model &model);

/**
 * Number of message values that could have been computed directly into
 * the output registers for this kind (the paper's range lower bound =
 * measured copy cost minus this, register-mapped models only).
 */
unsigned directlyComputableWords(Kind k);

/** Message ids used by the basic models' software dispatch (word 4). */
unsigned basicId(Kind k);

/**
 * One kernel of a model's static-analysis corpus (tcpni_lint and the
 * whole-system protocol analyzer in verify/protocol.hh).
 */
struct CorpusJob
{
    std::string name;       //!< "handlers", "handlers-sw-checks",
                            //!< "send-read", ...
    std::string source;     //!< assembly source
    bool handlers = false;  //!< message-triggered handler kernel
};

/**
 * The full kernel corpus for @p model: every handler-kernel variant
 * the linter verifies plus the seven Table-1 sender kernels.  The
 * On-NI host proxy (hostProxyProgram) is deliberately NOT part of the
 * corpus -- the protocol analyzer models it axiomatically.
 */
std::vector<CorpusJob> kernelCorpus(const ni::Model &model);

/** Assemble a kernel program with the kernel symbol table. */
isa::Program assembleKernel(const std::string &src);

} // namespace msg
} // namespace tcpni

#endif // TCPNI_MSG_KERNELS_HH
