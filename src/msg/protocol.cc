#include "msg/protocol.hh"

namespace tcpni
{
namespace msg
{

std::map<std::string, uint64_t>
protoSymbols()
{
    std::map<std::string, uint64_t> syms;
    syms["T_SEND"] = typeSend;
    syms["T_READ"] = typeRead;
    syms["T_WRITE"] = typeWrite;
    syms["T_PREAD"] = typePRead;
    syms["T_PWRITE"] = typePWrite;
    syms["T_ACK"] = typeAck;
    syms["T_STOP"] = typeStop;

    syms["IS_TAG"] = istructTagOffset;
    syms["IS_VALUE"] = istructValueOffset;
    syms["IS_ELEM_SIZE"] = istructElemSize;
    syms["TAG_EMPTY"] = tagEmpty;
    syms["TAG_FULL"] = tagFull;
    syms["TAG_DEFERRED"] = tagDeferred;

    syms["DN_FP"] = defNodeFpOffset;
    syms["DN_IP"] = defNodeIpOffset;
    syms["DN_NEXT"] = defNodeNextOffset;
    syms["DN_SIZE"] = defNodeSize;

    syms["T_ESCAPE"] = typeEscape;
    syms["ALLOC_PTR"] = allocPtrAddr;
    syms["DISPATCH_TABLE"] = basicDispatchTable;
    syms["ESC_TABLE"] = escapeTableAddr;

    syms["HPU_PROXY"] = hpuProxyAddr;
    syms["HP_RING"] = hostRingBase;
    syms["HP_RING_MASK"] = hostRingSlots - 1;
    syms["HP_SLOT_BYTES"] = hostRingSlotBytes;
    syms["HP_PI"] = hostRingPiAddr;
    syms["HP_CI"] = hostRingCiAddr;
    return syms;
}

} // namespace msg
} // namespace tcpni
