#include "common/trace.hh"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdlib>
#include <iostream>
#include <map>
#include <ostream>

#include "common/logging.hh"

namespace tcpni
{
namespace trace
{

namespace detail
{
uint32_t enabledMask = 0;
} // namespace detail

namespace
{

// Thread-local so concurrent simulations (SweepRunner workers) can
// each trace independently without synchronization.
thread_local std::ostream *stream_ = nullptr;
thread_local TraceSink *sink_ = nullptr;

struct FlagEntry
{
    const char *name;
    Flag flag;
};

constexpr FlagEntry flagTable[] = {
    {"NI", Flag::NI},           {"NOC", Flag::NOC},
    {"CPU", Flag::CPU},         {"DISPATCH", Flag::DISPATCH},
    {"EVENT", Flag::EVENT},     {"TAM", Flag::TAM},
    {"HPU", Flag::HPU},
};

/** Apply TCPNI_TRACE once at program start. */
struct EnvInit
{
    EnvInit() { initFromEnv(); }
} envInit;

} // namespace

void
enable(Flag f)
{
    detail::enabledMask |= static_cast<uint32_t>(f);
}

void
disable(Flag f)
{
    detail::enabledMask &= ~static_cast<uint32_t>(f);
}

void
enableAll()
{
    detail::enabledMask = allFlagsMask;
}

void
disableAll()
{
    detail::enabledMask = 0;
}

const char *
flagName(Flag f)
{
    for (const FlagEntry &e : flagTable) {
        if (e.flag == f)
            return e.name;
    }
    return "?";
}

bool
parseFlag(const std::string &name, Flag &out)
{
    std::string upper;
    for (char c : name)
        upper.push_back(static_cast<char>(std::toupper(c)));
    for (const FlagEntry &e : flagTable) {
        if (upper == e.name) {
            out = e.flag;
            return true;
        }
    }
    return false;
}

bool
setFromString(const std::string &spec)
{
    bool all_known = true;
    std::string token;
    auto apply = [&]() {
        if (token.empty())
            return;
        std::string upper;
        for (char c : token)
            upper.push_back(static_cast<char>(std::toupper(c)));
        if (upper == "ALL") {
            enableAll();
        } else {
            Flag f;
            if (parseFlag(token, f)) {
                enable(f);
            } else {
                warn("unknown trace flag '%s' ignored (known: NI NOC "
                     "CPU DISPATCH EVENT TAM HPU ALL)", token.c_str());
                all_known = false;
            }
        }
        token.clear();
    };
    for (char c : spec) {
        if (c == ',' || c == ' ' || c == '\t')
            apply();
        else
            token.push_back(c);
    }
    apply();
    return all_known;
}

void
initFromEnv()
{
    const char *env = std::getenv("TCPNI_TRACE");
    if (env && env[0])
        setFromString(env);
}

void
setStream(std::ostream *os)
{
    stream_ = os;
}

std::ostream &
stream()
{
    return stream_ ? *stream_ : std::cerr;
}

void
emit(Flag, Tick tick, const std::string &who, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = logging::vformat(fmt, ap);
    va_end(ap);
    stream() << tick << ": " << who << ": " << msg << '\n';
}

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::inject: return "inject";
      case Stage::hop: return "hop";
      case Stage::arrive: return "arrive";
      case Stage::dispatch: return "dispatch";
      case Stage::done: return "done";
      case Stage::hpuStart: return "hpuStart";
      case Stage::hpuEnd: return "hpuEnd";
      case Stage::hpuOverrun: return "hpuOverrun";
    }
    return "?";
}

TraceSink *
sink()
{
    return sink_;
}

void
setSink(TraceSink *s)
{
    sink_ = s;
}

void
TraceSink::record(uint64_t id, Stage stage, NodeId node, Tick tick,
                  uint8_t type)
{
    if (events_.size() >= limit_) {
        if (dropped_++ == 0)
            warn("trace sink full (%zu events); further lifecycle "
                 "events dropped", limit_);
        return;
    }
    events_.push_back({id, stage, node, tick, type});
}

std::vector<LifecycleEvent>
TraceSink::lifecycle(uint64_t id) const
{
    std::vector<LifecycleEvent> out;
    for (const LifecycleEvent &e : events_) {
        if (e.id == id)
            out.push_back(e);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const LifecycleEvent &a, const LifecycleEvent &b) {
                         if (a.tick != b.tick)
                             return a.tick < b.tick;
                         return static_cast<uint8_t>(a.stage) <
                                static_cast<uint8_t>(b.stage);
                     });
    return out;
}

size_t
TraceSink::completeLifecycles() const
{
    std::map<uint64_t, unsigned> seen;
    for (const LifecycleEvent &e : events_) {
        if (e.stage == Stage::inject || e.stage == Stage::arrive)
            seen[e.id] |= 1;
        if (e.stage == Stage::dispatch)
            seen[e.id] |= 2;
    }
    size_t n = 0;
    for (const auto &[id, mask] : seen) {
        (void)id;
        if (mask == 3)
            ++n;
    }
    return n;
}

void
TraceSink::clear()
{
    events_.clear();
    dropped_ = 0;
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    // Group events per message, ordered by time.
    std::map<uint64_t, std::vector<LifecycleEvent>> byId;
    std::map<NodeId, bool> nodes;
    for (const LifecycleEvent &e : events_) {
        byId[e.id].push_back(e);
        nodes[e.node] = true;
    }

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // One named track per node.
    for (const auto &[node, unused] : nodes) {
        (void)unused;
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << node << ",\"args\":{\"name\":\"node "
           << node << "\"}}";
    }

    auto slice = [&](const char *phase, Tick start, Tick end, NodeId tid,
                     uint64_t id, uint8_t type) {
        sep();
        os << "{\"name\":\"" << phase << "\",\"cat\":\"msg\","
           << "\"ph\":\"X\",\"ts\":" << start << ",\"dur\":"
           << (end - start) << ",\"pid\":0,\"tid\":" << tid
           << ",\"args\":{\"id\":" << id << ",\"type\":"
           << unsigned(type) << "}}";
    };

    for (const auto &[id, raw] : byId) {
        std::vector<LifecycleEvent> evs = lifecycle(id);
        const LifecycleEvent *inject = nullptr, *arrive = nullptr;
        const LifecycleEvent *dispatch = nullptr, *done = nullptr;
        const LifecycleEvent *hpu_start = nullptr, *hpu_end = nullptr;
        for (const LifecycleEvent &e : evs) {
            switch (e.stage) {
              case Stage::inject: if (!inject) inject = &e; break;
              case Stage::arrive: if (!arrive) arrive = &e; break;
              case Stage::dispatch: if (!dispatch) dispatch = &e; break;
              case Stage::done: if (!done) done = &e; break;
              case Stage::hpuStart:
                if (!hpu_start) hpu_start = &e;
                break;
              case Stage::hpuEnd: if (!hpu_end) hpu_end = &e; break;
              case Stage::hpuOverrun: {
                sep();
                os << "{\"name\":\"budget_overrun\",\"cat\":\"msg\","
                   << "\"ph\":\"i\",\"ts\":" << e.tick
                   << ",\"pid\":0,\"tid\":" << e.node
                   << ",\"s\":\"t\",\"args\":{\"id\":" << id << "}}";
                break;
              }
              case Stage::hop: {
                // Instant event on the router's track.
                sep();
                os << "{\"name\":\"hop\",\"cat\":\"msg\",\"ph\":\"i\","
                   << "\"ts\":" << e.tick << ",\"pid\":0,\"tid\":"
                   << e.node << ",\"s\":\"t\",\"args\":{\"id\":" << id
                   << "}}";
                break;
              }
            }
        }
        uint8_t type = evs.empty() ? 0 : evs.front().type;
        if (hpu_start && hpu_end)
            slice("hpu_handler", hpu_start->tick, hpu_end->tick,
                  hpu_end->node, id, type);
        if (inject && arrive)
            slice("network", inject->tick, arrive->tick, arrive->node,
                  id, type);
        if (arrive && dispatch)
            slice("queued", arrive->tick, dispatch->tick, dispatch->node,
                  id, type);
        if (dispatch && done)
            slice("handler", dispatch->tick, done->tick, done->node, id,
                  type);
    }

    if (dropped_ > 0) {
        sep();
        os << "{\"name\":\"trace_truncated\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":0,\"args\":{\"dropped_events\":" << dropped_
           << "}}";
    }
    os << "\n]}\n";
}

} // namespace trace
} // namespace tcpni
