#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace tcpni
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    tcpni_assert(header_.empty() || cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::separator()
{
    rows_.push_back({"\x01"});
}

void
TextTable::print(std::ostream &os) const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_) {
        if (r.size() != 1 || r[0] != "\x01")
            ncols = std::max(ncols, r.size());
    }

    std::vector<size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    measure(header_);
    for (const auto &r : rows_) {
        if (r.size() == 1 && r[0] == "\x01")
            continue;
        measure(r);
    }

    size_t total = 0;
    for (size_t w : widths)
        total += w + 3;

    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < ncols; ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            os << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < ncols)
                os << " | ";
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_) {
        if (r.size() == 1 && r[0] == "\x01")
            os << std::string(total, '-') << '\n';
        else
            emit(r);
    }
}

std::string
fmt(double v)
{
    char buf[32];
    if (v == static_cast<long>(v))
        std::snprintf(buf, sizeof(buf), "%ld", static_cast<long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

std::string
fmtRange(double lo, double hi)
{
    if (lo == hi)
        return fmt(lo);
    return fmt(lo) + "-" + fmt(hi);
}

std::string
fmtLinear(double base, double slope)
{
    if (slope == 0)
        return fmt(base);
    return fmt(base) + "+" + fmt(slope) + "n";
}

std::string
fmtK(double v)
{
    char buf[32];
    if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
    return buf;
}

std::string
pct(double v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100);
    return buf;
}

} // namespace tcpni
