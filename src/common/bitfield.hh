/**
 * @file
 * Bit-field extraction and insertion helpers.
 *
 * These mirror the helpers every hardware model needs when packing
 * architectural state (status words, instruction encodings, NI command
 * addresses) into fixed-width integers.  All bit positions are
 * little-endian bit numbers: bit 0 is the least significant bit.
 */

#ifndef TCPNI_COMMON_BITFIELD_HH
#define TCPNI_COMMON_BITFIELD_HH

#include <cstdint>

#include "common/logging.hh"

namespace tcpni
{

/** Return a mask of @p nbits ones in the low bits. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ULL : (1ULL << nbits) - 1;
}

/** Extract bits [first, last] (inclusive, first >= last) of @p val. */
constexpr uint64_t
bits(uint64_t val, unsigned first, unsigned last)
{
    return (val >> last) & mask(first - last + 1);
}

/** Extract single bit @p pos of @p val. */
constexpr uint64_t
bits(uint64_t val, unsigned pos)
{
    return (val >> pos) & 1ULL;
}

/**
 * Return @p val with bits [first, last] replaced by the low bits of
 * @p bit_val.
 */
constexpr uint64_t
insertBits(uint64_t val, unsigned first, unsigned last, uint64_t bit_val)
{
    uint64_t m = mask(first - last + 1);
    return (val & ~(m << last)) | ((bit_val & m) << last);
}

/** Sign-extend the low @p nbits bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    uint64_t sign = 1ULL << (nbits - 1);
    uint64_t m = mask(nbits);
    val &= m;
    return static_cast<int64_t>((val ^ sign) - sign);
}

/** True if @p val fits in @p nbits as a signed two's-complement value. */
constexpr bool
fitsSigned(int64_t val, unsigned nbits)
{
    int64_t lo = -(1LL << (nbits - 1));
    int64_t hi = (1LL << (nbits - 1)) - 1;
    return val >= lo && val <= hi;
}

/** True if @p val fits in @p nbits as an unsigned value. */
constexpr bool
fitsUnsigned(uint64_t val, unsigned nbits)
{
    return val <= mask(nbits);
}

} // namespace tcpni

#endif // TCPNI_COMMON_BITFIELD_HH
