/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * Two classes of terminating errors are distinguished:
 *
 *  - panic()  -- an internal invariant of the simulator has been violated;
 *               this is a bug in tcpni itself.  Aborts (may dump core).
 *  - fatal()  -- the simulation cannot continue because of a user error
 *               (bad configuration, invalid arguments).  Exits with
 *               status 1.
 *
 * Non-terminating messages:
 *
 *  - inform() -- normal operating status.
 *  - warn()   -- something is probably not what the user intended, but
 *               the simulation can continue.
 */

#ifndef TCPNI_COMMON_LOGGING_HH
#define TCPNI_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tcpni
{

/** Exception thrown by panic()/fatal() when throw-mode is enabled. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what) : std::runtime_error(what) {}
};

/** Exception thrown by panic() when throw-mode is enabled. */
class PanicError : public SimError
{
  public:
    explicit PanicError(const std::string &what) : SimError(what) {}
};

/** Exception thrown by fatal() when throw-mode is enabled. */
class FatalError : public SimError
{
  public:
    explicit FatalError(const std::string &what) : SimError(what) {}
};

namespace logging
{

/**
 * When true (the default, and always true under the test harness),
 * panic() and fatal() throw PanicError/FatalError instead of terminating
 * the process.  Tests rely on this to exercise error paths.
 */
extern bool throwOnError;

/** When true, suppress inform()/warn() output (used by benchmarks). */
extern bool quiet;

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** Emit a message with a severity prefix to stderr. */
void emit(const char *prefix, const std::string &msg);

} // namespace logging

/** Report a simulator bug and terminate (or throw PanicError). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and terminate (or throw). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant; on failure, panic with location info.
 * Unlike assert(), this is active in all build types.
 */
#define tcpni_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tcpni::panic("assertion '%s' failed at %s:%d", #cond,         \
                           __FILE__, __LINE__);                             \
        }                                                                   \
    } while (0)

} // namespace tcpni

#endif // TCPNI_COMMON_LOGGING_HH
