/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (the Gamteb photon-transport
 * workload, randomized traffic generators, property-test inputs) draws
 * from this generator so that runs are reproducible from a seed.  The
 * core is xoshiro128**, a small, fast, well-distributed 32-bit PRNG.
 */

#ifndef TCPNI_COMMON_RANDOM_HH
#define TCPNI_COMMON_RANDOM_HH

#include <cstdint>

namespace tcpni
{

/** A small deterministic PRNG (xoshiro128**). */
class Random
{
  public:
    /** Construct from a 64-bit seed; any seed (including 0) is valid. */
    explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Reseed the generator, restoring a deterministic stream. */
    void seed(uint64_t seed);

    /** Next raw 32-bit value. */
    uint32_t next32();

    /** Next raw 64-bit value. */
    uint64_t next64();

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    uint32_t uniform(uint32_t lo, uint32_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Bernoulli trial: true with probability p. */
    bool chance(double p);

  private:
    uint32_t s_[4];

    static uint32_t rotl(uint32_t x, int k) {
        return (x << k) | (x >> (32 - k));
    }
};

} // namespace tcpni

#endif // TCPNI_COMMON_RANDOM_HH
